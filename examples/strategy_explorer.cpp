/**
 * @file
 * Strategy explorer: compare explicit hybrid-parallelism strategies on
 * the wafer — the workflow a performance engineer uses before
 * committing to a training configuration.
 *
 *   ./strategy_explorer ["Llama2 7B"] [seq] [batch]
 *
 * Evaluates a line-up of representative (DP,TP,SP,TATP) tuples plus the
 * solver's own pick, and prints a ranked comparison: step time, memory,
 * what is exposed and what is hidden. All requests route through one
 * TempService, so the line-up and the solver share a single cached
 * framework (and its evaluator memo).
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "api/service.hpp"
#include "common/table.hpp"

using namespace temp;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "Llama2 7B";
    model::ModelConfig model = model::modelByName(name);
    if (argc > 3)
        model = model.withSeqBatch(std::atoi(argv[2]), std::atoi(argv[3]));

    std::printf("Strategy explorer — %s (seq %d, batch %d) on 32 dies\n",
                model.name.c_str(), model.seq, model.batch);

    api::TempService service;
    const hw::WaferConfig wafer = hw::WaferConfig::paperDefault();

    // A representative line-up: pure DP, Megatron-style TP, sequence
    // parallelism, pure TATP, and hybrids around the sweet spot.
    struct Candidate
    {
        const char *label;
        parallel::ParallelSpec spec;
    };
    auto make = [](int dp, int tp, int sp, int tatp) {
        parallel::ParallelSpec s;
        s.dp = dp;
        s.tp = tp;
        s.sp = sp;
        s.tatp = tatp;
        return s;
    };
    const std::vector<Candidate> lineup = {
        {"pure DP", make(32, 1, 1, 1)},
        {"Megatron TP8 x DP4", make(4, 8, 1, 1)},
        {"SP8 x DP4", make(4, 1, 8, 1)},
        {"pure TATP", make(1, 1, 1, 32)},
        {"TATP8 x DP4 (sweet spot)", make(4, 1, 1, 8)},
        {"TATP16 x TP2", make(1, 2, 1, 16)},
    };

    struct Row
    {
        std::string label;
        sim::PerfReport report;
    };
    std::vector<Row> rows;
    for (const Candidate &c : lineup) {
        api::StrategyRequest request{model, wafer, {}, c.spec};
        const api::Response response = service.run(request);
        if (response.ok && response.report.feasible)
            rows.push_back({std::string(c.label) + " " + c.spec.str(),
                            response.report});
    }

    // And the solver's own answer for reference.
    const api::Response solved =
        service.run(api::OptimizeRequest{model, wafer, {}});
    if (solved.ok && solved.solver.feasible)
        rows.push_back({"DLWS solver pick (per-op mix)", solved.report});

    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        return a.report.step_time < b.report.step_time;
    });

    TablePrinter t({"Strategy", "Step (ms)", "Mem (GB)", "Exposed comm",
                    "Hidden stream", "Accum", "Status"});
    for (const Row &row : rows) {
        const auto &r = row.report;
        t.addRow({row.label, TablePrinter::fmt(r.step_time * 1e3, 1),
                  TablePrinter::fmt(r.peak_mem_bytes / 1e9, 1),
                  TablePrinter::fmtPct(r.exposed_comm / r.step_time),
                  TablePrinter::fmt(r.stream_comm_time * 1e3, 1) + " ms",
                  std::to_string(r.grad_accum),
                  r.oom ? "OOM" : (r.recompute ? "recompute" : "ok")});
    }
    t.print("Ranked strategies (fastest first)");

    if (!rows.empty()) {
        std::printf("\nWinner: %s\n", rows.front().label.c_str());
        std::printf("Slowest-to-fastest spread: %.2fx\n",
                    rows.back().report.step_time /
                        rows.front().report.step_time);
    }
    const api::TempService::Stats stats = service.stats();
    std::printf("All %ld requests shared %ld cached framework(s) "
                "(%ld reuses).\n",
                stats.requests, stats.frameworks_built,
                stats.framework_cache_hits);
    return 0;
}
