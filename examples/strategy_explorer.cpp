/**
 * @file
 * Strategy explorer: compare explicit hybrid-parallelism strategies on
 * the wafer — the workflow a performance engineer uses before
 * committing to a training configuration.
 *
 *   ./strategy_explorer ["Llama2 7B"] [seq] [batch]
 *
 * Evaluates a line-up of representative (DP,TP,SP,TATP) tuples plus the
 * solver's own pick, and prints a ranked comparison: step time, memory,
 * what is exposed and what is hidden.
 */
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/table.hpp"
#include "core/framework.hpp"

using namespace temp;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "Llama2 7B";
    model::ModelConfig model = model::modelByName(name);
    if (argc > 3)
        model = model.withSeqBatch(std::atoi(argv[2]), std::atoi(argv[3]));

    std::printf("Strategy explorer — %s (seq %d, batch %d) on 32 dies\n",
                model.name.c_str(), model.seq, model.batch);

    core::TempFramework framework(hw::WaferConfig::paperDefault());

    // A representative line-up: pure DP, Megatron-style TP, sequence
    // parallelism, pure TATP, and hybrids around the sweet spot.
    struct Candidate
    {
        const char *label;
        parallel::ParallelSpec spec;
    };
    auto make = [](int dp, int tp, int sp, int tatp) {
        parallel::ParallelSpec s;
        s.dp = dp;
        s.tp = tp;
        s.sp = sp;
        s.tatp = tatp;
        return s;
    };
    const std::vector<Candidate> lineup = {
        {"pure DP", make(32, 1, 1, 1)},
        {"Megatron TP8 x DP4", make(4, 8, 1, 1)},
        {"SP8 x DP4", make(4, 1, 8, 1)},
        {"pure TATP", make(1, 1, 1, 32)},
        {"TATP8 x DP4 (sweet spot)", make(4, 1, 1, 8)},
        {"TATP16 x TP2", make(1, 2, 1, 16)},
    };

    struct Row
    {
        std::string label;
        sim::PerfReport report;
    };
    std::vector<Row> rows;
    for (const Candidate &c : lineup) {
        const sim::PerfReport r =
            framework.evaluateStrategy(model, c.spec);
        if (r.feasible)
            rows.push_back({std::string(c.label) + " " + c.spec.str(), r});
    }

    // And the solver's own answer for reference.
    const solver::SolverResult solved = framework.optimize(model);
    if (solved.feasible)
        rows.push_back({"DLWS solver pick (per-op mix)", solved.report});

    std::sort(rows.begin(), rows.end(), [](const Row &a, const Row &b) {
        return a.report.step_time < b.report.step_time;
    });

    TablePrinter t({"Strategy", "Step (ms)", "Mem (GB)", "Exposed comm",
                    "Hidden stream", "Accum", "Status"});
    for (const Row &row : rows) {
        const auto &r = row.report;
        t.addRow({row.label, TablePrinter::fmt(r.step_time * 1e3, 1),
                  TablePrinter::fmt(r.peak_mem_bytes / 1e9, 1),
                  TablePrinter::fmtPct(r.exposed_comm / r.step_time),
                  TablePrinter::fmt(r.stream_comm_time * 1e3, 1) + " ms",
                  std::to_string(r.grad_accum),
                  r.oom ? "OOM" : (r.recompute ? "recompute" : "ok")});
    }
    t.print("Ranked strategies (fastest first)");

    if (!rows.empty()) {
        std::printf("\nWinner: %s\n", rows.front().label.c_str());
        std::printf("Slowest-to-fastest spread: %.2fx\n",
                    rows.back().report.step_time /
                        rows.front().report.step_time);
    }
    return 0;
}
