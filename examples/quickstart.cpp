/**
 * @file
 * Quickstart: run the full TEMP pipeline on one model — through the
 * service API, the same route temp_cli and a serving process use.
 *
 *   ./quickstart ["GPT-3 6.7B"]              # a zoo model by name
 *   ./quickstart path/to/model.conf [wafer.conf]
 *
 * Builds the paper's 4x8 wafer (Table I), submits an OptimizeRequest
 * to a TempService (which owns the framework and its evaluator cache),
 * and prints the chosen per-operator strategies plus the simulated
 * training-step report.
 */
#include <cstdio>

#include "api/service.hpp"
#include "core/config_io.hpp"

using namespace temp;

int
main(int argc, char **argv)
{
    const std::string model_arg = argc > 1 ? argv[1] : "GPT-3 6.7B";
    const model::ModelConfig model =
        core::isConfigFile(model_arg)
            ? core::modelFromConfig(core::loadConfigFile(model_arg))
            : model::modelByName(model_arg);
    const hw::WaferConfig wafer_config =
        argc > 2 && core::isConfigFile(argv[2])
            ? core::waferFromConfig(core::loadConfigFile(argv[2]))
            : hw::WaferConfig::paperDefault();

    std::printf("TEMP quickstart — %s on a %dx%d wafer\n",
                model.name.c_str(), wafer_config.rows,
                wafer_config.cols);
    std::printf("  %.1fB parameters, batch %d, sequence %d\n\n",
                model.paramCount() / 1e9, model.batch, model.seq);

    // 1. One service instance; it builds (and caches) the framework.
    api::TempService service;

    // 2. Run the DLWS search (strategy space -> DP -> GA -> simulation)
    //    as a typed request.
    const api::Response response =
        service.run(api::OptimizeRequest{model, wafer_config, {}});
    const solver::SolverResult &result = response.solver;
    if (!response.ok || !result.feasible) {
        std::printf("No feasible strategy found.\n");
        return 1;
    }

    // 3. Inspect the chosen per-operator parallel strategies.
    std::printf("Optimal per-operator strategies "
                "(search took %.2f s over %d candidates):\n",
                result.search_time_s, result.candidate_count);
    for (std::size_t i = 0; i < result.per_op_specs.size(); ++i) {
        std::printf("  %-10s -> %s\n", response.op_names[i].c_str(),
                    result.per_op_specs[i].str().c_str());
    }

    // 4. Read the simulated training-step report.
    const sim::PerfReport &r = result.report;
    std::printf("\nSimulated training step:\n");
    std::printf("  step time           %.1f ms  (grad accum x%d%s)\n",
                r.step_time * 1e3, r.grad_accum,
                r.recompute ? ", activation recompute" : "");
    std::printf("  compute             %.1f ms\n", r.comp_time * 1e3);
    std::printf("  exposed comm        %.1f ms\n", r.exposed_comm * 1e3);
    std::printf("  stream comm         %.1f ms (overlapped)\n",
                r.stream_comm_time * 1e3);
    std::printf("  peak memory/die     %.1f GB %s\n",
                r.peak_mem_bytes / 1e9, r.oom ? "(OOM!)" : "");
    std::printf("  throughput          %.0f tokens/s\n",
                r.throughput_tokens_per_s);
    std::printf("  average power       %.1f kW\n", r.avg_power_w / 1e3);
    std::printf("  power efficiency    %.2f GFLOPs/J\n",
                r.power_efficiency / 1e9);
    return 0;
}
