/**
 * @file
 * Quickstart: run the full TEMP pipeline on one model.
 *
 *   ./quickstart ["GPT-3 6.7B"]              # a zoo model by name
 *   ./quickstart path/to/model.conf [wafer.conf]
 *
 * Builds the paper's 4x8 wafer (Table I), searches the TATP-extended
 * strategy space with the dual-level wafer solver, maps it with the
 * traffic-conscious engine, and prints the chosen per-operator
 * strategies plus the simulated training-step report.
 */
#include <cstdio>

#include "core/config_io.hpp"
#include "core/framework.hpp"

using namespace temp;

namespace {

bool
isConfigFile(const std::string &arg)
{
    return arg.size() > 5 && arg.substr(arg.size() - 5) == ".conf";
}

}  // namespace

int
main(int argc, char **argv)
{
    const std::string model_arg = argc > 1 ? argv[1] : "GPT-3 6.7B";
    const model::ModelConfig model =
        isConfigFile(model_arg)
            ? core::modelFromConfig(core::loadConfigFile(model_arg))
            : model::modelByName(model_arg);
    const hw::WaferConfig wafer_config =
        argc > 2 && isConfigFile(argv[2])
            ? core::waferFromConfig(core::loadConfigFile(argv[2]))
            : hw::WaferConfig::paperDefault();

    std::printf("TEMP quickstart — %s on a %dx%d wafer\n",
                model.name.c_str(), wafer_config.rows,
                wafer_config.cols);
    std::printf("  %.1fB parameters, batch %d, sequence %d\n\n",
                model.paramCount() / 1e9, model.batch, model.seq);

    // 1. Construct the framework over the wafer configuration.
    core::TempFramework framework(wafer_config);

    // 2. Run the DLWS search (strategy space -> DP -> GA -> simulation).
    const solver::SolverResult result = framework.optimize(model);
    if (!result.feasible) {
        std::printf("No feasible strategy found.\n");
        return 1;
    }

    // 3. Inspect the chosen per-operator parallel strategies.
    const model::ComputeGraph graph =
        model::ComputeGraph::transformer(model);
    std::printf("Optimal per-operator strategies "
                "(search took %.2f s over %d candidates):\n",
                result.search_time_s, result.candidate_count);
    for (int i = 0; i < graph.opCount(); ++i) {
        std::printf("  %-10s -> %s\n", graph.op(i).name.c_str(),
                    result.per_op_specs[i].str().c_str());
    }

    // 4. Read the simulated training-step report.
    const sim::PerfReport &r = result.report;
    std::printf("\nSimulated training step:\n");
    std::printf("  step time           %.1f ms  (grad accum x%d%s)\n",
                r.step_time * 1e3, r.grad_accum,
                r.recompute ? ", activation recompute" : "");
    std::printf("  compute             %.1f ms\n", r.comp_time * 1e3);
    std::printf("  exposed comm        %.1f ms\n", r.exposed_comm * 1e3);
    std::printf("  stream comm         %.1f ms (overlapped)\n",
                r.stream_comm_time * 1e3);
    std::printf("  peak memory/die     %.1f GB %s\n",
                r.peak_mem_bytes / 1e9, r.oom ? "(OOM!)" : "");
    std::printf("  throughput          %.0f tokens/s\n",
                r.throughput_tokens_per_s);
    std::printf("  average power       %.1f kW\n", r.avg_power_w / 1e3);
    std::printf("  power efficiency    %.2f GFLOPs/J\n",
                r.power_efficiency / 1e9);
    return 0;
}
