/**
 * @file
 * Fault-aware training: operate a wafer through progressive hardware
 * degradation — the Sec. VIII-F scenario, driven through the service
 * API: one healthy OptimizeRequest, then one FaultRequest per
 * degradation scenario (the service regenerates each scenario's
 * FaultMap from its rates + seed, localises the faults, re-balances
 * the partitioning and re-routes communication).
 *
 *   ./fault_aware_training ["Llama2 7B"]
 */
#include <cstdio>

#include "api/service.hpp"
#include "common/table.hpp"

using namespace temp;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "Llama2 7B";
    const model::ModelConfig model = model::modelByName(name);
    const hw::WaferConfig wafer_config = hw::WaferConfig::paperDefault();

    std::printf("Fault-aware training — %s\n\n", model.name.c_str());
    api::TempService service;

    const api::Response healthy =
        service.run(api::OptimizeRequest{model, wafer_config, {}});
    if (!healthy.ok || !healthy.solver.feasible) {
        std::printf("healthy wafer: no feasible strategy\n");
        return 1;
    }
    std::printf("Healthy wafer: %.1f ms/step with %s\n\n",
                healthy.solver.step_time_s * 1e3,
                healthy.report.strategy_desc.c_str());

    TablePrinter t({"Scenario", "Usable dies", "Strategy", "Step (ms)",
                    "Throughput vs healthy"});
    t.addRow({"healthy", std::to_string(wafer_config.dieCount()),
              healthy.report.strategy_desc,
              TablePrinter::fmt(healthy.solver.step_time_s * 1e3, 1),
              "1.00x"});

    struct Scenario
    {
        const char *label;
        double link_rate;
        double core_rate;
        std::uint64_t seed;
    };
    const Scenario scenarios[] = {
        {"5% link faults", 0.05, 0.0, 11},
        {"15% link faults", 0.15, 0.0, 12},
        {"35% link faults", 0.35, 0.0, 13},
        {"10% core faults", 0.0, 0.10, 14},
        {"25% core faults", 0.0, 0.25, 15},
        {"15% links + 10% cores", 0.15, 0.10, 16},
    };

    for (const Scenario &sc : scenarios) {
        api::FaultRequest request{model, wafer_config, {}};
        request.link_fault_rate = sc.link_rate;
        request.core_fault_rate = sc.core_rate;
        request.fault_seed = sc.seed;
        const api::Response response = service.run(request);
        if (!response.ok || !response.solver.feasible) {
            t.addRow({sc.label, std::to_string(response.usable_dies),
                      "-", "-", "unrecoverable"});
            continue;
        }
        t.addRow({sc.label, std::to_string(response.usable_dies),
                  response.report.strategy_desc,
                  TablePrinter::fmt(response.solver.step_time_s * 1e3,
                                    1),
                  TablePrinter::fmt(
                      response.report.throughput_tokens_per_s /
                      healthy.report.throughput_tokens_per_s) +
                      "x"});
    }
    t.print("Framework-level fault tolerance (Fig. 20a pipeline)");
    std::printf("\nThe framework relocates work onto the largest usable "
                "component, re-balances shard sizes around derated dies "
                "and re-routes collectives around dead links — no "
                "physical redundancy required.\n");
    return 0;
}
