/**
 * @file
 * Fault-aware training: operate a wafer through progressive hardware
 * degradation — the Sec. VIII-F scenario.
 *
 *   ./fault_aware_training ["Llama2 7B"]
 *
 * Injects link and core faults, lets the framework localise them,
 * re-balance the tensor partitioning onto the surviving dies and
 * re-route communication, then reports how throughput degrades.
 */
#include <cstdio>

#include "common/table.hpp"
#include "core/framework.hpp"

using namespace temp;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "Llama2 7B";
    const model::ModelConfig model = model::modelByName(name);

    std::printf("Fault-aware training — %s\n\n", model.name.c_str());
    core::TempFramework framework(hw::WaferConfig::paperDefault());
    hw::Wafer probe(hw::WaferConfig::paperDefault());

    const solver::SolverResult healthy = framework.optimize(model);
    if (!healthy.feasible) {
        std::printf("healthy wafer: no feasible strategy\n");
        return 1;
    }
    std::printf("Healthy wafer: %.1f ms/step with %s\n\n",
                healthy.step_time_s * 1e3,
                healthy.report.strategy_desc.c_str());

    TablePrinter t({"Scenario", "Usable dies", "Strategy", "Step (ms)",
                    "Throughput vs healthy"});
    t.addRow({"healthy", "32", healthy.report.strategy_desc,
              TablePrinter::fmt(healthy.step_time_s * 1e3, 1), "1.00x"});

    struct Scenario
    {
        const char *label;
        double link_rate;
        double core_rate;
        std::uint64_t seed;
    };
    const Scenario scenarios[] = {
        {"5% link faults", 0.05, 0.0, 11},
        {"15% link faults", 0.15, 0.0, 12},
        {"35% link faults", 0.35, 0.0, 13},
        {"10% core faults", 0.0, 0.10, 14},
        {"25% core faults", 0.0, 0.25, 15},
        {"15% links + 10% cores", 0.15, 0.10, 16},
    };

    for (const Scenario &sc : scenarios) {
        Rng rng(sc.seed);
        hw::FaultMap faults =
            sc.link_rate > 0.0
                ? hw::FaultMap::randomLinkFaults(probe.topology(),
                                                 sc.link_rate, rng)
                : hw::FaultMap(probe.dieCount(),
                               probe.topology().linkCount());
        if (sc.core_rate > 0.0) {
            const hw::FaultMap cores = hw::FaultMap::randomCoreFaults(
                probe.topology(), sc.core_rate, rng);
            for (hw::DieId die = 0; die < probe.dieCount(); ++die)
                faults.setCoreFaultFraction(
                    die, cores.coreFaultFraction(die));
        }

        hw::Wafer degraded_probe(hw::WaferConfig::paperDefault(), faults);
        const int usable = degraded_probe.usableDieCount();
        const solver::SolverResult result =
            framework.optimizeWithFaults(model, faults);
        if (!result.feasible) {
            t.addRow({sc.label, std::to_string(usable), "-", "-",
                      "unrecoverable"});
            continue;
        }
        t.addRow({sc.label, std::to_string(usable),
                  result.report.strategy_desc,
                  TablePrinter::fmt(result.step_time_s * 1e3, 1),
                  TablePrinter::fmt(
                      result.report.throughput_tokens_per_s /
                      healthy.report.throughput_tokens_per_s) +
                      "x"});
    }
    t.print("Framework-level fault tolerance (Fig. 20a pipeline)");
    std::printf("\nThe framework relocates work onto the largest usable "
                "component, re-balances shard sizes around derated dies "
                "and re-routes collectives around dead links — no "
                "physical redundancy required.\n");
    return 0;
}
