/**
 * @file
 * Multi-wafer training planner: size a wafer pod and pick the pipeline
 * configuration for a frontier-scale model (the Sec. VIII-E scenario),
 * sweeping MultiWaferRequests through the service API — the pod
 * simulator (and its per-pp stage contexts) is cached across the whole
 * sweep.
 *
 *   ./multi_wafer_planner ["GPT-3 504B"] [wafer_count]
 *
 * Sweeps pipeline degrees and microbatch counts over the pod, with TATP
 * inside each stage, and prints the plan a training-infra team would
 * deploy: stage fabric, bubble fraction, memory and throughput.
 */
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "api/service.hpp"
#include "common/table.hpp"

using namespace temp;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "GPT-3 504B";
    const int wafers = argc > 2 ? std::atoi(argv[2]) : 6;
    const model::ModelConfig model = model::modelByName(name);

    std::printf("Multi-wafer planner — %s (%.0fB params) on %d wafers\n\n",
                model.name.c_str(), model.paramCount() / 1e9, wafers);

    api::TempService service;
    hw::MultiWaferConfig pod;
    pod.wafer = hw::WaferConfig::paperDefault();
    pod.wafer_count = wafers;

    auto spec = [](int dp, int tatp) {
        parallel::ParallelSpec s;
        s.dp = dp;
        s.tatp = tatp;
        return s;
    };

    TablePrinter t({"PP", "Stage fabric", "Intra-stage", "Microbatches",
                    "Step (s)", "Bubble", "Mem/die (GB)", "Status"});
    struct Best
    {
        double step = 0.0;
        std::string desc;
    } best;

    for (int pp : {wafers, 2 * wafers}) {
        for (int micro : {8, 16, 32}) {
            for (const auto &intra :
                 {spec(2, 16), spec(1, 16), spec(4, 8), spec(2, 8)}) {
                api::MultiWaferRequest request;
                request.model = model;
                request.pod = pod;
                request.intra_spec = intra;
                request.pp = pp;
                request.microbatches = micro;
                const api::Response response = service.run(request);
                // Invalid combinations (layer/batch divisibility, spec
                // vs stage fabric) come back as error responses, not
                // process aborts — skip them.
                if (!response.ok || !response.report.feasible)
                    continue;
                const sim::PerfReport &r = response.report;
                char fabric_str[32];
                std::snprintf(fabric_str, sizeof(fabric_str), "%dx%d",
                              response.stage_fabric.rows,
                              response.stage_fabric.cols);
                t.addRow({std::to_string(pp), fabric_str, intra.str(),
                          std::to_string(micro),
                          TablePrinter::fmt(r.step_time, 2),
                          TablePrinter::fmtPct(r.bubble_time /
                                               r.step_time),
                          TablePrinter::fmt(r.peak_mem_bytes / 1e9, 1),
                          r.oom ? "OOM" : "ok"});
                if (!r.oom &&
                    (best.step == 0.0 || r.step_time < best.step)) {
                    best.step = r.step_time;
                    best.desc = "pp=" + std::to_string(pp) + ", " +
                                intra.str() + ", m=" +
                                std::to_string(micro);
                }
            }
        }
    }
    t.print("Pipeline plans across the pod");

    if (best.step > 0.0) {
        std::printf("\nRecommended plan: %s (%.2f s/step, %.0f tokens/s)\n",
                    best.desc.c_str(), best.step,
                    model.batch * static_cast<double>(model.seq) /
                        best.step);
        std::printf("Takeaway 3 of the paper: TATP inside stages lets the "
                    "pod run the LOW pipeline degree (pp = wafers), "
                    "cutting bubbles.\n");
    }
    return 0;
}
