/**
 * @file
 * Multi-wafer training planner: size a wafer pod and pick the pipeline
 * configuration for a frontier-scale model (the Sec. VIII-E scenario).
 *
 *   ./multi_wafer_planner ["GPT-3 504B"] [wafer_count]
 *
 * Sweeps pipeline degrees and microbatch counts over the pod, with TATP
 * inside each stage, and prints the plan a training-infra team would
 * deploy: stage fabric, bubble fraction, memory and throughput.
 */
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/table.hpp"
#include "sim/multi_wafer.hpp"

using namespace temp;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "GPT-3 504B";
    const int wafers = argc > 2 ? std::atoi(argv[2]) : 6;
    const model::ModelConfig model = model::modelByName(name);
    const model::ComputeGraph graph =
        model::ComputeGraph::transformer(model);

    std::printf("Multi-wafer planner — %s (%.0fB params) on %d wafers\n\n",
                model.name.c_str(), model.paramCount() / 1e9, wafers);

    hw::MultiWaferConfig pod;
    pod.wafer = hw::WaferConfig::paperDefault();
    pod.wafer_count = wafers;
    sim::MultiWaferSimulator sim(
        pod, tcme::MappingPolicy{tcme::MappingEngineKind::TCME});

    auto spec = [](int dp, int tatp) {
        parallel::ParallelSpec s;
        s.dp = dp;
        s.tatp = tatp;
        return s;
    };

    TablePrinter t({"PP", "Stage fabric", "Intra-stage", "Microbatches",
                    "Step (s)", "Bubble", "Mem/die (GB)", "Status"});
    struct Best
    {
        double step = 0.0;
        std::string desc;
    } best;

    for (int pp : {wafers, 2 * wafers}) {
        if (model.layers % pp != 0)
            continue;
        const hw::WaferConfig fabric = sim.stageFabric(pp);
        for (int micro : {8, 16, 32}) {
            if (model.batch % micro != 0)
                continue;
            for (const auto &intra :
                 {spec(2, 16), spec(1, 16), spec(4, 8), spec(2, 8)}) {
                if (intra.totalDegree() > fabric.dieCount())
                    continue;
                const sim::PerfReport r =
                    sim.simulate(graph, intra, pp, micro);
                if (!r.feasible)
                    continue;
                char fabric_str[32];
                std::snprintf(fabric_str, sizeof(fabric_str), "%dx%d",
                              fabric.rows, fabric.cols);
                t.addRow({std::to_string(pp), fabric_str, intra.str(),
                          std::to_string(micro),
                          TablePrinter::fmt(r.step_time, 2),
                          TablePrinter::fmtPct(r.bubble_time /
                                               r.step_time),
                          TablePrinter::fmt(r.peak_mem_bytes / 1e9, 1),
                          r.oom ? "OOM" : "ok"});
                if (!r.oom &&
                    (best.step == 0.0 || r.step_time < best.step)) {
                    best.step = r.step_time;
                    best.desc = "pp=" + std::to_string(pp) + ", " +
                                intra.str() + ", m=" +
                                std::to_string(micro);
                }
            }
        }
    }
    t.print("Pipeline plans across the pod");

    if (best.step > 0.0) {
        std::printf("\nRecommended plan: %s (%.2f s/step, %.0f tokens/s)\n",
                    best.desc.c_str(), best.step,
                    model.batch * static_cast<double>(model.seq) /
                        best.step);
        std::printf("Takeaway 3 of the paper: TATP inside stages lets the "
                    "pod run the LOW pipeline degree (pp = wafers), "
                    "cutting bubbles.\n");
    }
    return 0;
}
