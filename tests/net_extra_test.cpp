/**
 * @file
 * Extended network-layer tests: tree collectives, adaptive algorithm
 * selection, fault-aware routing fallbacks, and contention-model
 * properties.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "hw/fault.hpp"
#include "hw/topology.hpp"
#include "net/collective.hpp"
#include "net/contention.hpp"
#include "net/route.hpp"

namespace temp::net {
namespace {

using hw::DieId;
using hw::MeshTopology;

class TreeAllReduce : public ::testing::TestWithParam<int>
{
};

TEST_P(TreeAllReduce, RoundCountIsLogarithmic)
{
    const int n = GetParam();
    MeshTopology mesh(4, 8);
    Router router(mesh);
    CollectiveScheduler sched(router);
    std::vector<DieId> group;
    for (int i = 0; i < n; ++i)
        group.push_back(i);
    const CommSchedule s = sched.treeAllReduce(group, 1e6);
    const int log2n =
        static_cast<int>(std::ceil(std::log2(static_cast<double>(n))));
    EXPECT_EQ(s.roundCount(), 2 * log2n);
}

TEST_P(TreeAllReduce, ReducePhaseConvergesToRoot)
{
    // After the reduce phase, every rank's contribution must have
    // reached group[0] through some chain of transfers.
    const int n = GetParam();
    MeshTopology mesh(4, 8);
    Router router(mesh);
    CollectiveScheduler sched(router);
    std::vector<DieId> group;
    for (int i = 0; i < n; ++i)
        group.push_back(i);
    const CommSchedule s = sched.treeAllReduce(group, 1e6);

    // Track which root each rank's data has merged into.
    std::vector<int> merged_into(n);
    for (int i = 0; i < n; ++i)
        merged_into[i] = i;
    const int log2n =
        static_cast<int>(std::ceil(std::log2(static_cast<double>(n))));
    for (int r = 0; r < log2n && r < s.roundCount(); ++r) {
        for (const Flow &f : s.round(r)) {
            for (int i = 0; i < n; ++i)
                if (group[merged_into[i]] == f.src)
                    for (int j = 0; j < n; ++j)
                        if (group[j] == f.dst)
                            merged_into[i] = j;
        }
    }
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(merged_into[i], 0) << "rank " << i << " never reduced";
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeAllReduce,
                         ::testing::Values(2, 4, 8, 16, 32));

TEST(TreeAllReduceFixed, MovesMoreBytesThanRingForLargeGroups)
{
    // Tree carries the full tensor per hop; ring only 2(N-1)/N of it.
    MeshTopology mesh(4, 8);
    Router router(mesh);
    CollectiveScheduler sched(router);
    std::vector<DieId> group{0, 1, 2, 3, 4, 5, 6, 7};
    const CommSchedule tree = sched.treeAllReduce(group, 8e6);
    const CommSchedule ring = sched.ringAllReduce(group, 8e6);
    EXPECT_GT(tree.payload_bytes, ring.payload_bytes * 0.9);
    // But uses far fewer rounds.
    EXPECT_LT(tree.roundCount(), ring.roundCount());
}

TEST(TreeAllReduceFixed, BestAllReducePicksTreeForSmallPayloads)
{
    MeshTopology mesh(4, 8);
    Router router(mesh);
    CollectiveScheduler sched(router);
    std::vector<DieId> group{0, 1, 2, 3, 4, 5, 6, 7};
    const double bw = 4e12;
    const double lat = 200e-9;

    // Tiny payload: latency dominates, tree's 2*log2(8)=6 rounds beat
    // the ring's 14.
    const CommSchedule small = sched.bestAllReduce(group, 1024.0, bw, lat);
    EXPECT_EQ(small.roundCount(), 6);
    // Huge payload: bandwidth dominates, ring wins.
    const CommSchedule big = sched.bestAllReduce(group, 1e9, bw, lat);
    EXPECT_EQ(big.roundCount(), 14);
}

TEST(TreeAllReduceFixed, DegenerateGroupIsFree)
{
    MeshTopology mesh(2, 2);
    Router router(mesh);
    CollectiveScheduler sched(router);
    EXPECT_TRUE(sched.treeAllReduce({0}, 1e6).empty());
}

TEST(SafeRoute, PrefersXyFallsBackToYxThenBfs)
{
    MeshTopology mesh(3, 3);
    hw::FaultMap faults(mesh.dieCount(), mesh.linkCount());
    Router healthy(mesh, &faults);
    // Healthy: XY route.
    auto r = healthy.safeRoute(0, 8);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->hops(), 4);

    // Cut the first XY link (0->1 both ways): YX route still works.
    faults.failLink(mesh.linkId(0, 1));
    faults.failLink(mesh.linkId(1, 0));
    Router router(mesh, &faults);
    auto r2 = router.safeRoute(0, 8);
    ASSERT_TRUE(r2.has_value());
    EXPECT_EQ(r2->hops(), 4);
    for (hw::LinkId l : r2->links)
        EXPECT_FALSE(faults.linkFailed(l));
}

TEST(SafeRoute, ReturnsNulloptOnPartition)
{
    MeshTopology mesh(1, 3);
    hw::FaultMap faults(mesh.dieCount(), mesh.linkCount());
    faults.failLink(mesh.linkId(1, 2));
    faults.failLink(mesh.linkId(2, 1));
    Router router(mesh, &faults);
    EXPECT_FALSE(router.safeRoute(0, 2).has_value());
    EXPECT_TRUE(router.safeRoute(0, 1).has_value());
}

TEST(MulticastFaults, IncompleteTreeFlagged)
{
    MeshTopology mesh(1, 4);
    hw::FaultMap faults(mesh.dieCount(), mesh.linkCount());
    faults.failLink(mesh.linkId(2, 3));
    faults.failLink(mesh.linkId(3, 2));
    Router router(mesh, &faults);
    const MulticastTree tree = buildMulticastTree(router, 0, {1, 2, 3});
    EXPECT_FALSE(tree.complete);
    // Reachable leaves are still covered.
    EXPECT_GE(tree.links.size(), 2u);
}

TEST(ContentionProperty, AddingFlowsNeverSpeedsUpPhase)
{
    MeshTopology mesh(4, 8);
    Router router(mesh);
    ContentionModel model(mesh, 4e12, 200e-9);
    std::vector<Flow> flows;
    double prev = 0.0;
    for (int i = 0; i < 12; ++i) {
        Flow f;
        f.src = (i * 7) % 32;
        f.dst = (i * 13 + 5) % 32;
        if (f.src == f.dst)
            f.dst = (f.dst + 1) % 32;
        f.bytes = 32e6;
        f.route = router.route(f.src, f.dst);
        flows.push_back(f);
        const double t = model.evaluate(flows).time_s;
        EXPECT_GE(t, prev - 1e-15) << "after flow " << i;
        prev = t;
    }
}

TEST(ContentionProperty, SerialTimeScalesLinearlyWithBytes)
{
    MeshTopology mesh(2, 4);
    Router router(mesh);
    ContentionModel model(mesh, 4e12, 200e-9);
    Flow f;
    f.src = 0;
    f.dst = 7;
    f.bytes = 1e6;
    f.route = router.route(0, 7);
    const double t1 = model.evaluate({f}).serial_time_s;
    f.bytes = 4e6;
    const double t4 = model.evaluate({f}).serial_time_s;
    EXPECT_NEAR(t4 / t1, 4.0, 1e-9);
}

TEST(ContentionProperty, UtilisationBounded)
{
    MeshTopology mesh(4, 8);
    Router router(mesh);
    CollectiveScheduler sched(router);
    ContentionModel model(mesh, 4e12, 200e-9);
    std::vector<DieId> group;
    for (int i = 0; i < 32; ++i)
        group.push_back(i);
    const CommSchedule s = sched.ringAllReduce(group, 256e6);
    const PhaseTiming t = model.evaluateSequence(s);
    EXPECT_GT(t.bandwidth_utilization, 0.0);
    EXPECT_LE(t.bandwidth_utilization, 1.0 + 1e-9);
}

TEST(ContentionProperty, BottleneckIdentificationMatchesMaxLoad)
{
    MeshTopology mesh(1, 4);
    Router router(mesh);
    ContentionModel model(mesh, 4e12, 0.0);
    std::vector<Flow> flows;
    for (DieId dst : {1, 2, 3}) {
        Flow f;
        f.src = 0;
        f.dst = dst;
        f.bytes = 1e6;
        f.route = router.route(0, dst);
        flows.push_back(f);
    }
    const PhaseTiming t = model.evaluate(flows);
    // Link 0->1 carries all three flows.
    EXPECT_EQ(t.bottleneck_link, mesh.linkId(0, 1));
    EXPECT_DOUBLE_EQ(t.bottleneck_bytes, 3e6);
}

}  // namespace
}  // namespace temp::net
