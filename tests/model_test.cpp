/**
 * @file
 * Unit tests for the workload model: operator FLOP/byte counters, the
 * transformer graph builder and the Table II model zoo.
 */
#include <gtest/gtest.h>

#include "model/graph.hpp"
#include "model/model_zoo.hpp"
#include "model/operator.hpp"

namespace temp::model {
namespace {

Operator
gemm(double b, double m, double n, double k, bool weighted = true)
{
    Operator op;
    op.type = OpType::Gemm;
    op.b = b;
    op.m = m;
    op.n = n;
    op.k = k;
    op.has_weight = weighted;
    return op;
}

TEST(Operator, GemmFlops)
{
    const Operator op = gemm(2, 128, 512, 1024);
    EXPECT_DOUBLE_EQ(op.forwardFlops(), 2.0 * 2 * 128 * 512 * 1024);
    EXPECT_DOUBLE_EQ(op.backwardFlops(), 2.0 * op.forwardFlops());
    EXPECT_DOUBLE_EQ(op.trainingFlops(), 3.0 * op.forwardFlops());
}

TEST(Operator, ByteCounters)
{
    const Operator op = gemm(1, 64, 128, 256);
    EXPECT_DOUBLE_EQ(op.inputBytes(), 64.0 * 128 * 2);
    EXPECT_DOUBLE_EQ(op.weightBytes(), 128.0 * 256 * 2);
    EXPECT_DOUBLE_EQ(op.outputBytes(), 64.0 * 256 * 2);
    EXPECT_DOUBLE_EQ(op.weightBytes(kBytesFp32), 128.0 * 256 * 4);
}

TEST(Operator, WeightlessOpsHaveNoWeightBytes)
{
    Operator op = gemm(4, 64, 64, 64, false);
    op.type = OpType::AttentionScore;
    EXPECT_DOUBLE_EQ(op.weightBytes(), 0.0);
    EXPECT_TRUE(op.isGemm());
}

TEST(Operator, ElementwiseFlopsScaleWithExtent)
{
    Operator op;
    op.type = OpType::Softmax;
    op.b = 2;
    op.m = 8;
    op.n = 16;
    EXPECT_DOUBLE_EQ(op.forwardFlops(), 5.0 * 2 * 8 * 16);
    op.type = OpType::Residual;
    EXPECT_DOUBLE_EQ(op.forwardFlops(), 1.0 * 2 * 8 * 16);
    // Elementwise backward is ~forward, not 2x.
    EXPECT_DOUBLE_EQ(op.backwardFlops(), op.forwardFlops());
}

TEST(Operator, ArithmeticIntensityGrowsWithSize)
{
    const Operator small = gemm(1, 128, 128, 128);
    const Operator large = gemm(1, 4096, 4096, 4096);
    EXPECT_GT(large.arithmeticIntensity(), small.arithmeticIntensity());
}

TEST(ModelZoo, TableTwoRoster)
{
    const auto models = evaluationModels();
    ASSERT_EQ(models.size(), 6u);
    EXPECT_EQ(models[0].name, "GPT-3 6.7B");
    EXPECT_EQ(models[5].name, "OPT 175B");
}

TEST(ModelZoo, ParamCountsMatchNominalSizes)
{
    // Parameter formula should land within ~15% of each model's nominal
    // size (the names encode the ground truth).
    struct Expected { const char *name; double params; };
    const Expected expected[] = {
        {"GPT-3 6.7B", 6.7e9},   {"Llama2 7B", 7e9},
        {"Llama3 70B", 70e9},    {"GPT-3 76B", 76e9},
        {"GPT-3 175B", 175e9},   {"OPT 175B", 175e9},
        {"Grok-1 341B", 341e9},  {"Llama3 405B", 405e9},
        {"GPT-3 504B", 504e9},
    };
    for (const auto &e : expected) {
        const ModelConfig m = modelByName(e.name);
        EXPECT_NEAR(m.paramCount() / e.params, 1.0, 0.15)
            << m.name << " => " << m.paramCount();
    }
}

TEST(ModelZoo, GPT3_175BConfig)
{
    const ModelConfig m = modelByName("GPT-3 175B");
    EXPECT_EQ(m.heads, 96);
    EXPECT_EQ(m.hidden, 12288);
    EXPECT_EQ(m.layers, 96);
    EXPECT_EQ(m.seq, 2048);
    EXPECT_EQ(m.headDim(), 128);
    EXPECT_EQ(m.intermediate(), 4 * 12288);
}

TEST(ModelZoo, WithSeqBatchOverrides)
{
    const ModelConfig m = modelByName("Llama2 7B").withSeqBatch(16384, 32);
    EXPECT_EQ(m.seq, 16384);
    EXPECT_EQ(m.batch, 32);
    EXPECT_EQ(m.hidden, 4096);
}

TEST(Graph, TransformerHasTwelveOps)
{
    const ComputeGraph graph =
        ComputeGraph::transformer(modelByName("GPT-3 6.7B"));
    EXPECT_EQ(graph.opCount(), 12);
    EXPECT_EQ(graph.layerCount(), 32);
    // Chain edges plus two residual edges.
    EXPECT_EQ(graph.edges().size(), 11u + 2u);
}

TEST(Graph, ResidualEdgesCloseAtResidualAdds)
{
    const ComputeGraph graph =
        ComputeGraph::transformer(modelByName("GPT-3 6.7B"));
    int residual_ops = 0;
    for (const Operator &op : graph.ops())
        if (op.type == OpType::Residual) {
            ++residual_ops;
            EXPECT_TRUE(op.closes_residual);
        }
    EXPECT_EQ(residual_ops, 2);
}

TEST(Graph, CutPointsAvoidResidualSpans)
{
    const ComputeGraph graph =
        ComputeGraph::transformer(modelByName("GPT-3 6.7B"));
    const auto cuts = graph.residualFreeCutPoints();
    // The only residual-free boundaries in the block are around the two
    // residual adds: after ln1 would cross residual1's skip edge, etc.
    // Cut at 7 (between residual1 and ln2) must be legal.
    EXPECT_NE(std::find(cuts.begin(), cuts.end(), 7), cuts.end());
    // Cut at 3 (inside the attention block) must be illegal.
    EXPECT_EQ(std::find(cuts.begin(), cuts.end(), 3), cuts.end());
}

TEST(Graph, LayerFlopsMatchAnalyticFormula)
{
    const ModelConfig m = modelByName("GPT-3 6.7B");
    const ComputeGraph graph = ComputeGraph::transformer(m);
    // Dense GEMM forward FLOPs per layer:
    //   QKV: 2*B*S*H*3H, proj: 2*B*S*H*H, FC1/FC2: 2 * 2*B*S*H*4H,
    //   attention: 2 * 2*B*S*S*H.
    const double b = m.batch, s = m.seq, h = m.hidden;
    const double gemm_flops = 2 * b * s * h * (3 * h) + 2 * b * s * h * h +
                              2 * (2 * b * s * h * (4 * h)) +
                              2 * (2 * b * s * s * h);
    EXPECT_GT(graph.layerForwardFlops(), gemm_flops);
    // Element-wise ops contribute only a few percent.
    EXPECT_LT(graph.layerForwardFlops(), 1.05 * gemm_flops);
}

TEST(Graph, TrainingFlopsRoughlyThreeTimesForward)
{
    const ComputeGraph graph =
        ComputeGraph::transformer(modelByName("GPT-3 175B"));
    const double ratio =
        graph.layerTrainingFlops() / graph.layerForwardFlops();
    EXPECT_GT(ratio, 2.8);
    EXPECT_LE(ratio, 3.0);
}

TEST(Graph, WeightBytesMatchTwelveHSquared)
{
    const ModelConfig m = modelByName("GPT-3 6.7B");
    const ComputeGraph graph = ComputeGraph::transformer(m);
    const double h = m.hidden;
    EXPECT_DOUBLE_EQ(graph.layerWeightBytes(), 12.0 * h * h * kBytesFp16);
}

TEST(Graph, TotalFlopsScaleWithLayers)
{
    const ComputeGraph graph =
        ComputeGraph::transformer(modelByName("GPT-3 6.7B"));
    EXPECT_DOUBLE_EQ(graph.totalTrainingFlops(),
                     32.0 * graph.layerTrainingFlops());
}

}  // namespace
}  // namespace temp::model
