/**
 * @file
 * Tests for the Dual-Level Wafer Solver: strategy enumeration, the DP +
 * GA search, and the exhaustive (ILP-substitute) baseline.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/budget.hpp"
#include "common/thread_pool.hpp"
#include "cost/breakdown_reduce.hpp"
#include "eval/cost_evaluator.hpp"
#include "eval/step_evaluator.hpp"
#include "model/graph.hpp"
#include "model/model_zoo.hpp"
#include "sim/trainer_sim.hpp"
#include "solver/dls_solver.hpp"
#include "solver/portfolio.hpp"
#include "solver/search_engine.hpp"
#include "solver/solve_budget.hpp"
#include "solver/strategy_space.hpp"

namespace temp::solver {
namespace {

using parallel::ParallelSpec;

TEST(StrategySpace, FullOccupancyProductsMatchDieCount)
{
    const auto model = model::modelByName("GPT-3 6.7B");
    StrategySpaceOptions options;
    const auto specs = enumerateStrategies(32, model, options);
    ASSERT_FALSE(specs.empty());
    for (const ParallelSpec &s : specs) {
        EXPECT_EQ(s.totalDegree(), 32);
        EXPECT_TRUE(s.valid());
    }
}

TEST(StrategySpace, AxisGatingWorks)
{
    const auto model = model::modelByName("GPT-3 6.7B");
    StrategySpaceOptions options;
    options.allow_tatp = false;
    options.allow_sp = false;
    for (const ParallelSpec &s : enumerateStrategies(32, model, options)) {
        EXPECT_EQ(s.tatp, 1);
        EXPECT_EQ(s.sp, 1);
    }
}

TEST(StrategySpace, TpCapHonoursModelHeadsAndOption)
{
    auto model = model::modelByName("GPT-3 6.7B");
    StrategySpaceOptions options;
    options.max_tp = 8;
    for (const ParallelSpec &s : enumerateStrategies(32, model, options))
        EXPECT_LE(s.tp, 8);
    model.heads = 4;
    options.max_tp = 1 << 20;
    for (const ParallelSpec &s : enumerateStrategies(32, model, options))
        EXPECT_LE(s.tp, 4);
}

TEST(StrategySpace, DpBoundedByBatch)
{
    auto model = model::modelByName("GPT-3 6.7B");
    model.batch = 8;
    StrategySpaceOptions options;
    for (const ParallelSpec &s : enumerateStrategies(32, model, options))
        EXPECT_LE(s.dp, 8);
}

TEST(StrategySpace, PartialOccupancyWhenAllowed)
{
    const auto model = model::modelByName("GPT-3 6.7B");
    StrategySpaceOptions options;
    options.full_occupancy = false;
    bool found_partial = false;
    for (const ParallelSpec &s : enumerateStrategies(32, model, options))
        found_partial = found_partial || s.totalDegree() < 32;
    EXPECT_TRUE(found_partial);
}

class SolverTest : public ::testing::Test
{
  protected:
    SolverTest()
        : wafer_(hw::WaferConfig::paperDefault()),
          sim_(wafer_, tcme::MappingPolicy{tcme::MappingEngineKind::TCME})
    {
    }

    hw::Wafer wafer_;
    sim::TrainingSimulator sim_;
};

TEST_F(SolverTest, FindsFeasibleStrategyForSmallModel)
{
    DlsSolver solver(sim_);
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));
    const SolverResult result = solver.solve(graph);
    ASSERT_TRUE(result.feasible);
    EXPECT_EQ(static_cast<int>(result.per_op_specs.size()),
              graph.opCount());
    EXPECT_GT(result.step_time_s, 0.0);
    EXPECT_FALSE(result.report.oom);
    EXPECT_GT(result.candidate_count, 10);
}

TEST_F(SolverTest, BeatsEveryUniformCandidateOrTies)
{
    DlsSolver solver(sim_);
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("Llama2 7B"));
    const SolverResult result = solver.solve(graph);
    ASSERT_TRUE(result.feasible);

    StrategySpaceOptions space;
    for (const ParallelSpec &s :
         enumerateStrategies(32, graph.config(), space)) {
        const sim::PerfReport r = sim_.simulate(graph, s);
        if (!r.feasible || r.oom)
            continue;
        EXPECT_LE(result.step_time_s, r.step_time * 1.0001)
            << "uniform " << s.str() << " beats the solver";
    }
}

TEST_F(SolverTest, MemoryFeasibleOnLargeModel)
{
    DlsSolver solver(sim_);
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 175B"));
    const SolverResult result = solver.solve(graph);
    ASSERT_TRUE(result.feasible);
    EXPECT_FALSE(result.report.oom)
        << "best plan must fit memory: " << result.report.peak_mem_bytes;
    // Parameter-state sharding must come from the weighted ops.
    for (int i = 0; i < graph.opCount(); ++i) {
        if (graph.op(i).has_weight) {
            const ParallelSpec &s = result.per_op_specs[i];
            EXPECT_GE(s.tatp * s.tp * s.fsdp, 8)
                << "weighted op " << graph.op(i).name << " under-sharded";
        }
    }
}

TEST_F(SolverTest, TatpAppearsInOptimalPlans)
{
    // The headline claim: the TATP-extended space beats TATP-free plans.
    DlsSolver with_tatp(sim_);
    SolverConfig no_tatp_cfg;
    no_tatp_cfg.space.allow_tatp = false;
    DlsSolver without_tatp(sim_, no_tatp_cfg);

    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("Llama3 70B"));
    const SolverResult with = with_tatp.solve(graph);
    const SolverResult without = without_tatp.solve(graph);
    ASSERT_TRUE(with.feasible);
    ASSERT_TRUE(without.feasible);
    EXPECT_LE(with.step_time_s, without.step_time_s);
    bool uses_tatp = false;
    for (const ParallelSpec &s : with.per_op_specs)
        uses_tatp = uses_tatp || s.tatp > 1;
    EXPECT_TRUE(uses_tatp);
}

TEST_F(SolverTest, DeterministicUnderFixedSeed)
{
    DlsSolver solver(sim_);
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));
    const SolverResult a = solver.solve(graph);
    const SolverResult b = solver.solve(graph);
    ASSERT_TRUE(a.feasible);
    EXPECT_EQ(a.per_op_specs.size(), b.per_op_specs.size());
    for (std::size_t i = 0; i < a.per_op_specs.size(); ++i)
        EXPECT_TRUE(a.per_op_specs[i] == b.per_op_specs[i]);
    EXPECT_DOUBLE_EQ(a.step_time_s, b.step_time_s);
}

TEST_F(SolverTest, GaRefinesOrMatchesDp)
{
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 175B"));
    SolverConfig no_ga;
    no_ga.enable_ga = false;
    const SolverResult dp_only = DlsSolver(sim_, no_ga).solve(graph);
    const SolverResult full = DlsSolver(sim_).solve(graph);
    ASSERT_TRUE(dp_only.feasible);
    ASSERT_TRUE(full.feasible);
    EXPECT_LE(full.step_time_s, dp_only.step_time_s * 1.0001);
}

TEST_F(SolverTest, NoRefineEngineMatchesLegacyEnableGaSwitch)
{
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));
    SolverConfig legacy;
    legacy.enable_ga = false;
    SolverConfig engine;
    engine.engine = SearchEngineKind::NoRefine;
    const SolverResult a = DlsSolver(sim_, legacy).solve(graph);
    const SolverResult b = DlsSolver(sim_, engine).solve(graph);
    ASSERT_TRUE(a.feasible);
    ASSERT_TRUE(b.feasible);
    EXPECT_EQ(a.per_op_specs, b.per_op_specs);
    EXPECT_DOUBLE_EQ(a.step_time_s, b.step_time_s);
    EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST_F(SolverTest, AnnealingEngineRefinesOrMatchesDpAndIsDeterministic)
{
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("Llama2 7B"));
    SolverConfig dp_cfg;
    dp_cfg.engine = SearchEngineKind::NoRefine;
    SolverConfig sa_cfg;
    sa_cfg.engine = SearchEngineKind::Annealing;
    sa_cfg.annealing.iterations = 20;

    const SolverResult dp_only = DlsSolver(sim_, dp_cfg).solve(graph);
    const SolverResult annealed = DlsSolver(sim_, sa_cfg).solve(graph);
    ASSERT_TRUE(dp_only.feasible);
    ASSERT_TRUE(annealed.feasible);
    // The engine keeps the DP incumbent, so it can never end up worse.
    EXPECT_LE(annealed.step_time_s, dp_only.step_time_s * 1.0001);
    // Annealing queried full-step fitness beyond the DP-only floor.
    EXPECT_GT(annealed.step_sims + annealed.step_cache_hits,
              dp_only.step_sims + dp_only.step_cache_hits);

    const SolverResult repeat = DlsSolver(sim_, sa_cfg).solve(graph);
    ASSERT_TRUE(repeat.feasible);
    EXPECT_EQ(repeat.per_op_specs, annealed.per_op_specs);
    EXPECT_DOUBLE_EQ(repeat.step_time_s, annealed.step_time_s);
}

TEST_F(SolverTest, RefinerDeterministicAcrossEvalThreads)
{
    // The refiner's batched fitness must be bit-exact for any pool
    // width: same plan, same step time, same accounting.
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));
    std::vector<SolverResult> results;
    for (int threads : {1, 2, 4}) {
        SolverConfig cfg;
        cfg.eval_threads = threads;
        results.push_back(DlsSolver(sim_, cfg).solve(graph));
        ASSERT_TRUE(results.back().feasible);
    }
    for (std::size_t r = 1; r < results.size(); ++r) {
        EXPECT_EQ(results[r].per_op_specs, results[0].per_op_specs);
        EXPECT_DOUBLE_EQ(results[r].step_time_s,
                         results[0].step_time_s);
        EXPECT_EQ(results[r].evaluations, results[0].evaluations);
        EXPECT_EQ(results[r].step_sims, results[0].step_sims);
        EXPECT_EQ(results[r].step_cache_hits,
                  results[0].step_cache_hits);
    }
}

TEST_F(SolverTest, StepAccountingIsHonest)
{
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));
    DlsSolver solver(sim_);
    const SolverResult result = solver.solve(graph);
    ASSERT_TRUE(result.feasible);

    // The refiner's full-step queries are visible: unique simulations
    // plus memo hits, both non-zero for a GA run on a fresh solver
    // (the seed pool recurs, the final report is a hit).
    EXPECT_GT(result.step_sims, 0);
    EXPECT_GT(result.step_cache_hits, 0);
    // Every step query is also counted in `evaluations`, alongside the
    // matrix queries — the work the algorithm asked for includes the
    // full-step fitness the GA used to be silent about.
    EXPECT_GE(result.evaluations,
              result.step_sims + result.step_cache_hits);
    EXPECT_GE(result.evaluations,
              result.matrix_measurements + result.cache_hits +
                  result.step_sims + result.step_cache_hits);

    // A repeat solve on the same solver re-simulates nothing: the step
    // memo serves every query, and the answer is unchanged.
    const SolverResult repeat = solver.solve(graph);
    ASSERT_TRUE(repeat.feasible);
    EXPECT_EQ(repeat.step_sims, 0);
    EXPECT_EQ(repeat.step_cache_hits,
              result.step_sims + result.step_cache_hits);
    EXPECT_EQ(repeat.per_op_specs, result.per_op_specs);
    EXPECT_EQ(repeat.evaluations, result.evaluations);
}

TEST_F(SolverTest, ExhaustiveAgreesWithDpOnAdditiveObjective)
{
    // On a small instance the branch-and-bound enumeration and the DP
    // optimise the same additive objective; the DP must not be worse.
    StrategySpaceOptions space;
    space.allow_sp = false;
    space.allow_cp = false;
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));

    ExhaustiveSolver exhaustive(sim_, space);
    const SolverResult ex = exhaustive.solve(graph, /*op_limit=*/4,
                                             /*time_budget_s=*/60.0);
    ASSERT_TRUE(ex.feasible);
    EXPECT_GT(ex.evaluations, 0);
    EXPECT_GT(ex.search_time_s, 0.0);
}

TEST_F(SolverTest, DlsOrdersOfMagnitudeFasterThanExhaustive)
{
    // Sec. VIII-H: DLS explores the same space in polynomial time while
    // the exhaustive baseline grows exponentially in operator count.
    StrategySpaceOptions space;
    space.allow_sp = false;
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));

    SolverConfig dls_cfg;
    dls_cfg.space = space;
    dls_cfg.enable_ga = false;  // isolate the DP level
    DlsSolver dls(sim_, dls_cfg);
    const SolverResult fast = dls.solve(graph);

    ExhaustiveSolver exhaustive(sim_, space);
    const SolverResult slow = exhaustive.solve(graph, /*op_limit=*/5,
                                               /*time_budget_s=*/120.0);
    ASSERT_TRUE(fast.feasible);
    ASSERT_TRUE(slow.feasible);
    // The exhaustive pass covered 5 of 12 ops yet did far more work.
    EXPECT_GT(slow.evaluations, 4 * fast.evaluations);
}

/**
 * Builds a RefineContext the way the solver's level 1 does — uniform
 * reports, OOM-penalised ordering, a uniform DP plan — but over a
 * trimmed candidate set so the engine checkpoint tests stay fast.
 */
class RefineHarness
{
  public:
    explicit RefineHarness(const sim::TrainingSimulator &sim)
        : graph_(model::ComputeGraph::transformer(
              model::modelByName("GPT-3 6.7B"))),
          pool_(2), steps_(sim, &pool_)
    {
        StrategySpaceOptions space;
        candidates_ = enumerateStrategies(32, graph_.config(), space);
        if (candidates_.size() > 10)
            candidates_.resize(10);
        boundaries_ = {0, graph_.opCount()};

        std::vector<std::vector<ParallelSpec>> uniform;
        for (const ParallelSpec &spec : candidates_)
            uniform.emplace_back(
                static_cast<std::size_t>(graph_.opCount()), spec);
        uniform_reports_ = steps_.evaluateBatch(graph_, uniform);
        for (std::size_t s = 0; s < candidates_.size(); ++s)
            if (uniform_reports_[s].feasible)
                uniform_order_.push_back(s);
        std::sort(uniform_order_.begin(), uniform_order_.end(),
                  [&](std::size_t a, std::size_t b) {
                      const auto &ra = uniform_reports_[a];
                      const auto &rb = uniform_reports_[b];
                      const double fa =
                          ra.step_time * (ra.oom ? 1e3 : 1.0);
                      const double fb =
                          rb.step_time * (rb.oom ? 1e3 : 1.0);
                      return fa < fb;
                  });

        dp_assignment_.assign(
            static_cast<std::size_t>(graph_.opCount()),
            static_cast<int>(uniform_order_.front()));
        dp_fitness_ = stepFitness(
            uniform_reports_[uniform_order_.front()]);
    }

    RefineContext ctx() const
    {
        return {graph_,          candidates_,    boundaries_,
                uniform_reports_, uniform_order_, dp_assignment_,
                dp_fitness_};
    }

    eval::StepEvaluator &steps() { return steps_; }

  private:
    model::ComputeGraph graph_;
    ThreadPool pool_;
    eval::StepEvaluator steps_;
    std::vector<ParallelSpec> candidates_;
    std::vector<int> boundaries_;
    std::vector<sim::PerfReport> uniform_reports_;
    std::vector<std::size_t> uniform_order_;
    std::vector<int> dp_assignment_;
    double dp_fitness_ = 0.0;
};

/// refine(ctx) must equal refinePartial(k) + encode + decode + resume
/// bit-identically, counters included, for the engine under test.
void
expectCheckpointRoundTripMatchesFullRefine(const SearchEngine &engine,
                                           RefineHarness &harness,
                                           int partial_steps)
{
    const RefineContext ctx = harness.ctx();
    const RefineOutcome full = engine.refine(ctx, harness.steps());

    RefineCheckpoint taken;
    const RefineOutcome partial = engine.refinePartial(
        ctx, harness.steps(), partial_steps, &taken);
    EXPECT_EQ(taken.steps_done, partial_steps);
    EXPECT_EQ(partial.fitness_queries, taken.fitness_queries);

    // Through the byte codec, as a real save/load would go.
    const std::string bytes = encodeRefineCheckpoint(taken);
    RefineCheckpoint restored;
    std::string error;
    ASSERT_TRUE(decodeRefineCheckpoint(bytes, &restored, &error))
        << error;
    EXPECT_EQ(restored.engine, taken.engine);
    EXPECT_EQ(restored.rng_state, taken.rng_state);

    const RefineOutcome resumed =
        engine.resume(ctx, harness.steps(), restored);
    EXPECT_EQ(resumed.assignment, full.assignment);
    EXPECT_DOUBLE_EQ(resumed.fitness, full.fitness);
    EXPECT_EQ(resumed.fitness_queries, full.fitness_queries);
}

TEST_F(SolverTest, GeneticCheckpointResumeIsBitIdentical)
{
    RefineHarness harness(sim_);
    const GeneticRefiner engine(/*population=*/8, /*generations=*/6,
                                /*mutation_rate=*/0.15, /*seed=*/42);
    expectCheckpointRoundTripMatchesFullRefine(engine, harness,
                                               /*partial_steps=*/2);
}

TEST_F(SolverTest, AnnealingCheckpointResumeIsBitIdentical)
{
    RefineHarness harness(sim_);
    AnnealingConfig config;
    config.iterations = 8;
    config.proposals = 4;
    const AnnealingRefiner engine(config, /*seed=*/42);
    expectCheckpointRoundTripMatchesFullRefine(engine, harness,
                                               /*partial_steps=*/3);
}

TEST_F(SolverTest, CompletedCheckpointResumesAsNoOp)
{
    RefineHarness harness(sim_);
    const GeneticRefiner engine(/*population=*/8, /*generations=*/4,
                                /*mutation_rate=*/0.15, /*seed=*/7);
    const RefineContext ctx = harness.ctx();

    // max_steps beyond the configured total is a full refine; resuming
    // its checkpoint re-runs nothing (no new fitness queries).
    RefineCheckpoint done;
    const RefineOutcome full =
        engine.refinePartial(ctx, harness.steps(), 100, &done);
    EXPECT_EQ(done.steps_done, 4);
    const RefineOutcome resumed =
        engine.resume(ctx, harness.steps(), done);
    EXPECT_EQ(resumed.assignment, full.assignment);
    EXPECT_EQ(resumed.fitness_queries, full.fitness_queries);
}

TEST_F(SolverTest, DamagedCheckpointBytesAreRejected)
{
    RefineHarness harness(sim_);
    const GeneticRefiner engine(/*population=*/8, /*generations=*/4,
                                /*mutation_rate=*/0.15, /*seed=*/42);
    RefineCheckpoint taken;
    engine.refinePartial(harness.ctx(), harness.steps(), 2, &taken);
    const std::string bytes = encodeRefineCheckpoint(taken);

    // Every single-byte flip is caught by the checksum (or the magic /
    // version gates before it); spot-check a spread of offsets.
    for (const std::size_t at :
         {std::size_t{0}, std::size_t{5}, bytes.size() / 2,
          bytes.size() - 1}) {
        std::string corrupt = bytes;
        corrupt[at] = static_cast<char>(corrupt[at] ^ 0x40);
        RefineCheckpoint out;
        std::string error;
        EXPECT_FALSE(decodeRefineCheckpoint(corrupt, &out, &error))
            << "flip at " << at << " was accepted";
        EXPECT_FALSE(error.empty());
        EXPECT_TRUE(out.best.empty());
    }

    // Truncation at any prefix is rejected too.
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{3}, bytes.size() / 2,
          bytes.size() - 1}) {
        RefineCheckpoint out;
        EXPECT_FALSE(
            decodeRefineCheckpoint(bytes.substr(0, keep), &out));
    }
}

TEST_F(SolverTest, ForeignCheckpointDegradesToColdRefine)
{
    RefineHarness harness(sim_);
    const GeneticRefiner ga(/*population=*/8, /*generations=*/4,
                            /*mutation_rate=*/0.15, /*seed=*/42);
    AnnealingConfig config;
    config.iterations = 6;
    config.proposals = 4;
    const AnnealingRefiner annealer(config, /*seed=*/42);

    RefineCheckpoint ga_checkpoint;
    ga.refinePartial(harness.ctx(), harness.steps(), 2,
                     &ga_checkpoint);

    // Handing a GA checkpoint to the annealer must not poison it: the
    // resume degrades to the annealer's own cold refine, bit-exactly.
    const RefineOutcome cold =
        annealer.refine(harness.ctx(), harness.steps());
    const RefineOutcome resumed =
        annealer.resume(harness.ctx(), harness.steps(), ga_checkpoint);
    EXPECT_EQ(resumed.assignment, cold.assignment);
    EXPECT_DOUBLE_EQ(resumed.fitness, cold.fitness);
    EXPECT_EQ(resumed.fitness_queries, cold.fitness_queries);
}

// ---------------------------------------------------------------------
// SolveBudget: quantum caps, prefix identity, the portfolio race and
// the exact certification engine.
// ---------------------------------------------------------------------

TEST_F(SolverTest, BudgetedRefineIsBitExactPrefixOfUnbudgeted)
{
    RefineHarness harness(sim_);
    const GeneticRefiner engine(/*population=*/8, /*generations=*/6,
                                /*mutation_rate=*/0.15, /*seed=*/42);

    const RefineOutcome full = engine.refine(harness.ctx(), harness.steps());
    EXPECT_FALSE(full.budget_exhausted);
    ASSERT_EQ(full.accounts.size(), 1u);
    const int total_steps = full.accounts[0].steps;
    EXPECT_EQ(total_steps, 6);

    // A quantum cap that trips mid-run: the driver stops at the next
    // slice boundary and returns the best-so-far prefix, flagged.
    SolveBudget budget;
    budget.max_quanta = full.fitness_queries / 2;
    common::BudgetGauge gauge = budget.gauge();
    RefineContext capped = harness.ctx();
    capped.gauge = &gauge;
    const RefineOutcome truncated =
        engine.refine(capped, harness.steps());
    EXPECT_TRUE(truncated.budget_exhausted);
    ASSERT_EQ(truncated.accounts.size(), 1u);
    const int k = truncated.accounts[0].steps;
    EXPECT_LT(k, total_steps);
    EXPECT_GE(gauge.used(), budget.max_quanta);

    // The truncated run is bit-identical to an explicit k-step partial
    // of the unbudgeted run — same incumbent, fitness and accounting.
    RefineCheckpoint ignored;
    const RefineOutcome prefix = engine.refinePartial(
        harness.ctx(), harness.steps(), k, &ignored);
    EXPECT_EQ(truncated.assignment, prefix.assignment);
    EXPECT_DOUBLE_EQ(truncated.fitness, prefix.fitness);
    EXPECT_EQ(truncated.fitness_queries, prefix.fitness_queries);

    // And the trip point is deterministic: a repeat under the same
    // quantum budget stops at the same boundary with the same plan.
    common::BudgetGauge again_gauge = budget.gauge();
    RefineContext again_ctx = harness.ctx();
    again_ctx.gauge = &again_gauge;
    const RefineOutcome again = engine.refine(again_ctx, harness.steps());
    EXPECT_EQ(again.assignment, truncated.assignment);
    EXPECT_EQ(again.fitness_queries, truncated.fitness_queries);
    EXPECT_EQ(again.accounts[0].steps, k);
}

TEST_F(SolverTest, SolverQuantumBudgetReturnsDeterministicBestSoFar)
{
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));
    SolverConfig cfg;
    cfg.ga_generations = 8;
    const SolverResult full = DlsSolver(sim_, cfg).solve(graph);
    ASSERT_TRUE(full.feasible);
    EXPECT_FALSE(full.budget_exhausted);
    ASSERT_GT(full.quanta_used, 0);

    // A budget of exactly the full run's quanta never trips between
    // slices: the solve is bit-identical and unflagged.
    SolverConfig enough = cfg;
    enough.deadline.max_quanta = full.quanta_used;
    const SolverResult same = DlsSolver(sim_, enough).solve(graph);
    ASSERT_TRUE(same.feasible);
    EXPECT_FALSE(same.budget_exhausted);
    EXPECT_EQ(same.per_op_specs, full.per_op_specs);
    EXPECT_DOUBLE_EQ(same.step_time_s, full.step_time_s);
    EXPECT_EQ(same.quanta_used, full.quanta_used);

    // A tight cap truncates: still feasible (the preamble always
    // completes), flagged, cheaper than the full run, and bit-identical
    // across repeats — the budget is part of the result identity.
    SolverConfig tight = cfg;
    tight.deadline.max_quanta = full.quanta_used / 2;
    const SolverResult a = DlsSolver(sim_, tight).solve(graph);
    const SolverResult b = DlsSolver(sim_, tight).solve(graph);
    ASSERT_TRUE(a.feasible);
    EXPECT_TRUE(a.budget_exhausted);
    EXPECT_GE(a.quanta_used, tight.deadline.max_quanta);
    EXPECT_LT(a.quanta_used, full.quanta_used);
    // The prefix can only be as good as the full search.
    EXPECT_LE(full.step_time_s, a.step_time_s * 1.0001);
    EXPECT_EQ(a.per_op_specs, b.per_op_specs);
    EXPECT_DOUBLE_EQ(a.step_time_s, b.step_time_s);
    EXPECT_EQ(a.quanta_used, b.quanta_used);
    EXPECT_EQ(a.budget_exhausted, b.budget_exhausted);
}

TEST_F(SolverTest, PortfolioDeterministicAcrossEvalThreadsUnderBudget)
{
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));
    SolverConfig cfg;
    cfg.engine = SearchEngineKind::Portfolio;
    cfg.ga_generations = 6;
    cfg.annealing.iterations = 6;
    const SolverResult free_run = DlsSolver(sim_, cfg).solve(graph);
    ASSERT_TRUE(free_run.feasible);
    ASSERT_GT(free_run.quanta_used, 0);

    // Race the members under a binding quantum budget at three pool
    // widths: the truncated race must be bit-identical everywhere,
    // per-member accounts included.
    std::vector<SolverResult> results;
    for (int threads : {1, 2, 4}) {
        SolverConfig capped = cfg;
        capped.eval_threads = threads;
        capped.deadline.max_quanta = free_run.quanta_used * 2 / 3;
        results.push_back(DlsSolver(sim_, capped).solve(graph));
        ASSERT_TRUE(results.back().feasible);
    }
    const SolverResult &first = results.front();
    EXPECT_TRUE(first.budget_exhausted);
    ASSERT_FALSE(first.engine_accounts.empty());
    int winners = 0;
    for (const EngineAccount &account : first.engine_accounts)
        winners += account.winner ? 1 : 0;
    EXPECT_LE(winners, 1);
    for (std::size_t r = 1; r < results.size(); ++r) {
        const SolverResult &other = results[r];
        EXPECT_EQ(other.per_op_specs, first.per_op_specs);
        EXPECT_DOUBLE_EQ(other.step_time_s, first.step_time_s);
        EXPECT_EQ(other.quanta_used, first.quanta_used);
        EXPECT_EQ(other.budget_exhausted, first.budget_exhausted);
        ASSERT_EQ(other.engine_accounts.size(),
                  first.engine_accounts.size());
        for (std::size_t e = 0; e < first.engine_accounts.size(); ++e) {
            const EngineAccount &want = first.engine_accounts[e];
            const EngineAccount &got = other.engine_accounts[e];
            EXPECT_EQ(got.engine, want.engine);
            EXPECT_EQ(got.steps, want.steps);
            EXPECT_EQ(got.fitness_queries, want.fitness_queries);
            EXPECT_DOUBLE_EQ(got.best_fitness, want.best_fitness);
            EXPECT_EQ(got.feasible, want.feasible);
            EXPECT_EQ(got.winner, want.winner);
        }
    }
}

TEST_F(SolverTest, PortfolioNeverWorseThanAnyMemberEngine)
{
    // Unbudgeted, every member runs to completion inside the race, so
    // the portfolio's pick is the best member outcome by construction.
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("Llama2 7B"));
    auto solveWith = [&](SearchEngineKind kind) {
        SolverConfig cfg;
        cfg.engine = kind;
        cfg.ga_generations = 6;
        cfg.annealing.iterations = 6;
        return DlsSolver(sim_, cfg).solve(graph);
    };
    const SolverResult portfolio =
        solveWith(SearchEngineKind::Portfolio);
    ASSERT_TRUE(portfolio.feasible);
    EXPECT_FALSE(portfolio.budget_exhausted);
    EXPECT_EQ(portfolio.engine_accounts.size(), 3u);
    for (const SearchEngineKind kind :
         {SearchEngineKind::Genetic, SearchEngineKind::Annealing,
          SearchEngineKind::BeamTabu}) {
        const SolverResult single = solveWith(kind);
        ASSERT_TRUE(single.feasible);
        EXPECT_LE(portfolio.step_time_s, single.step_time_s * 1.0001)
            << searchEngineName(kind) << " beat the portfolio";
    }
}

TEST_F(SolverTest, ExactEngineMatchesExhaustiveBitForBit)
{
    // Same space, same truncated chain: the B&B inside the engine and
    // the exhaustive baseline must agree on the additive optimum
    // exactly — same assignment, same objective bits.
    StrategySpaceOptions space;
    space.allow_sp = false;
    space.allow_cp = false;
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));
    constexpr int kOps = 4;

    ExhaustiveSolver exhaustive(sim_, space);
    const SolverResult ex =
        exhaustive.solve(graph, /*op_limit=*/kOps, /*time_budget_s=*/60.0);
    ASSERT_TRUE(ex.feasible);

    // Rebuild the identical additive matrix the exhaustive pass used.
    const std::vector<ParallelSpec> candidates = enumerateStrategies(
        sim_.wafer().dieCount(), graph.config(), space);
    ASSERT_LE(static_cast<int>(candidates.size()),
              ExactChainEngine::kMaxCands);
    eval::ExactEvaluator eval(sim_.costModel());
    std::vector<eval::EvalRequest> requests;
    for (int i = 0; i < kOps; ++i)
        for (const ParallelSpec &spec : candidates)
            requests.push_back({i, spec, true});
    const std::vector<cost::OpCostBreakdown> cells =
        eval.evaluateBatch(graph, requests);
    std::vector<double> totals(cells.size());
    cost::breakdownTotals(cells, totals.data());
    std::vector<std::vector<double>> op_cost(kOps);
    for (int i = 0; i < kOps; ++i) {
        const double *row = totals.data() +
                            static_cast<std::size_t>(i) *
                                candidates.size();
        op_cost[i].assign(row, row + candidates.size());
    }

    const ExactChainEngine::BnbResult bnb =
        ExactChainEngine::branchAndBound(graph, candidates, op_cost,
                                         sim_.costModel(),
                                         ExactChainEngine::kMaxNodes);
    EXPECT_TRUE(bnb.complete);
    ASSERT_EQ(bnb.assignment.size(), static_cast<std::size_t>(kOps));
    EXPECT_EQ(bnb.additive_cost, ex.step_time_s);  // bit-for-bit
    for (int i = 0; i < kOps; ++i)
        EXPECT_TRUE(candidates[static_cast<std::size_t>(
                        bnb.assignment[i])] == ex.per_op_specs[i])
            << "op " << i << " disagrees";
}

TEST_F(SolverTest, ExactEngineEndToEndCertifiesOrKeepsDpPlan)
{
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));
    SolverConfig dp_cfg;
    dp_cfg.engine = SearchEngineKind::NoRefine;
    SolverConfig exact_cfg;
    exact_cfg.engine = SearchEngineKind::Exact;
    const SolverResult dp = DlsSolver(sim_, dp_cfg).solve(graph);
    const SolverResult exact = DlsSolver(sim_, exact_cfg).solve(graph);
    const SolverResult repeat = DlsSolver(sim_, exact_cfg).solve(graph);
    ASSERT_TRUE(dp.feasible);
    ASSERT_TRUE(exact.feasible);
    // The engine keeps the better of {DP incumbent, certified additive
    // optimum}, so it can never end up worse than DP-only.
    EXPECT_LE(exact.step_time_s, dp.step_time_s * 1.0001);
    ASSERT_EQ(exact.engine_accounts.size(), 1u);
    EXPECT_EQ(exact.engine_accounts[0].engine, "exact");
    EXPECT_EQ(exact.per_op_specs, repeat.per_op_specs);
    EXPECT_DOUBLE_EQ(exact.step_time_s, repeat.step_time_s);
}

}  // namespace
}  // namespace temp::solver
