/**
 * @file
 * Tests for the Dual-Level Wafer Solver: strategy enumeration, the DP +
 * GA search, and the exhaustive (ILP-substitute) baseline.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "eval/step_evaluator.hpp"
#include "model/graph.hpp"
#include "model/model_zoo.hpp"
#include "sim/trainer_sim.hpp"
#include "solver/dls_solver.hpp"
#include "solver/search_engine.hpp"
#include "solver/strategy_space.hpp"

namespace temp::solver {
namespace {

using parallel::ParallelSpec;

TEST(StrategySpace, FullOccupancyProductsMatchDieCount)
{
    const auto model = model::modelByName("GPT-3 6.7B");
    StrategySpaceOptions options;
    const auto specs = enumerateStrategies(32, model, options);
    ASSERT_FALSE(specs.empty());
    for (const ParallelSpec &s : specs) {
        EXPECT_EQ(s.totalDegree(), 32);
        EXPECT_TRUE(s.valid());
    }
}

TEST(StrategySpace, AxisGatingWorks)
{
    const auto model = model::modelByName("GPT-3 6.7B");
    StrategySpaceOptions options;
    options.allow_tatp = false;
    options.allow_sp = false;
    for (const ParallelSpec &s : enumerateStrategies(32, model, options)) {
        EXPECT_EQ(s.tatp, 1);
        EXPECT_EQ(s.sp, 1);
    }
}

TEST(StrategySpace, TpCapHonoursModelHeadsAndOption)
{
    auto model = model::modelByName("GPT-3 6.7B");
    StrategySpaceOptions options;
    options.max_tp = 8;
    for (const ParallelSpec &s : enumerateStrategies(32, model, options))
        EXPECT_LE(s.tp, 8);
    model.heads = 4;
    options.max_tp = 1 << 20;
    for (const ParallelSpec &s : enumerateStrategies(32, model, options))
        EXPECT_LE(s.tp, 4);
}

TEST(StrategySpace, DpBoundedByBatch)
{
    auto model = model::modelByName("GPT-3 6.7B");
    model.batch = 8;
    StrategySpaceOptions options;
    for (const ParallelSpec &s : enumerateStrategies(32, model, options))
        EXPECT_LE(s.dp, 8);
}

TEST(StrategySpace, PartialOccupancyWhenAllowed)
{
    const auto model = model::modelByName("GPT-3 6.7B");
    StrategySpaceOptions options;
    options.full_occupancy = false;
    bool found_partial = false;
    for (const ParallelSpec &s : enumerateStrategies(32, model, options))
        found_partial = found_partial || s.totalDegree() < 32;
    EXPECT_TRUE(found_partial);
}

class SolverTest : public ::testing::Test
{
  protected:
    SolverTest()
        : wafer_(hw::WaferConfig::paperDefault()),
          sim_(wafer_, tcme::MappingPolicy{tcme::MappingEngineKind::TCME})
    {
    }

    hw::Wafer wafer_;
    sim::TrainingSimulator sim_;
};

TEST_F(SolverTest, FindsFeasibleStrategyForSmallModel)
{
    DlsSolver solver(sim_);
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));
    const SolverResult result = solver.solve(graph);
    ASSERT_TRUE(result.feasible);
    EXPECT_EQ(static_cast<int>(result.per_op_specs.size()),
              graph.opCount());
    EXPECT_GT(result.step_time_s, 0.0);
    EXPECT_FALSE(result.report.oom);
    EXPECT_GT(result.candidate_count, 10);
}

TEST_F(SolverTest, BeatsEveryUniformCandidateOrTies)
{
    DlsSolver solver(sim_);
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("Llama2 7B"));
    const SolverResult result = solver.solve(graph);
    ASSERT_TRUE(result.feasible);

    StrategySpaceOptions space;
    for (const ParallelSpec &s :
         enumerateStrategies(32, graph.config(), space)) {
        const sim::PerfReport r = sim_.simulate(graph, s);
        if (!r.feasible || r.oom)
            continue;
        EXPECT_LE(result.step_time_s, r.step_time * 1.0001)
            << "uniform " << s.str() << " beats the solver";
    }
}

TEST_F(SolverTest, MemoryFeasibleOnLargeModel)
{
    DlsSolver solver(sim_);
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 175B"));
    const SolverResult result = solver.solve(graph);
    ASSERT_TRUE(result.feasible);
    EXPECT_FALSE(result.report.oom)
        << "best plan must fit memory: " << result.report.peak_mem_bytes;
    // Parameter-state sharding must come from the weighted ops.
    for (int i = 0; i < graph.opCount(); ++i) {
        if (graph.op(i).has_weight) {
            const ParallelSpec &s = result.per_op_specs[i];
            EXPECT_GE(s.tatp * s.tp * s.fsdp, 8)
                << "weighted op " << graph.op(i).name << " under-sharded";
        }
    }
}

TEST_F(SolverTest, TatpAppearsInOptimalPlans)
{
    // The headline claim: the TATP-extended space beats TATP-free plans.
    DlsSolver with_tatp(sim_);
    SolverConfig no_tatp_cfg;
    no_tatp_cfg.space.allow_tatp = false;
    DlsSolver without_tatp(sim_, no_tatp_cfg);

    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("Llama3 70B"));
    const SolverResult with = with_tatp.solve(graph);
    const SolverResult without = without_tatp.solve(graph);
    ASSERT_TRUE(with.feasible);
    ASSERT_TRUE(without.feasible);
    EXPECT_LE(with.step_time_s, without.step_time_s);
    bool uses_tatp = false;
    for (const ParallelSpec &s : with.per_op_specs)
        uses_tatp = uses_tatp || s.tatp > 1;
    EXPECT_TRUE(uses_tatp);
}

TEST_F(SolverTest, DeterministicUnderFixedSeed)
{
    DlsSolver solver(sim_);
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));
    const SolverResult a = solver.solve(graph);
    const SolverResult b = solver.solve(graph);
    ASSERT_TRUE(a.feasible);
    EXPECT_EQ(a.per_op_specs.size(), b.per_op_specs.size());
    for (std::size_t i = 0; i < a.per_op_specs.size(); ++i)
        EXPECT_TRUE(a.per_op_specs[i] == b.per_op_specs[i]);
    EXPECT_DOUBLE_EQ(a.step_time_s, b.step_time_s);
}

TEST_F(SolverTest, GaRefinesOrMatchesDp)
{
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 175B"));
    SolverConfig no_ga;
    no_ga.enable_ga = false;
    const SolverResult dp_only = DlsSolver(sim_, no_ga).solve(graph);
    const SolverResult full = DlsSolver(sim_).solve(graph);
    ASSERT_TRUE(dp_only.feasible);
    ASSERT_TRUE(full.feasible);
    EXPECT_LE(full.step_time_s, dp_only.step_time_s * 1.0001);
}

TEST_F(SolverTest, NoRefineEngineMatchesLegacyEnableGaSwitch)
{
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));
    SolverConfig legacy;
    legacy.enable_ga = false;
    SolverConfig engine;
    engine.engine = SearchEngineKind::NoRefine;
    const SolverResult a = DlsSolver(sim_, legacy).solve(graph);
    const SolverResult b = DlsSolver(sim_, engine).solve(graph);
    ASSERT_TRUE(a.feasible);
    ASSERT_TRUE(b.feasible);
    EXPECT_EQ(a.per_op_specs, b.per_op_specs);
    EXPECT_DOUBLE_EQ(a.step_time_s, b.step_time_s);
    EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST_F(SolverTest, AnnealingEngineRefinesOrMatchesDpAndIsDeterministic)
{
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("Llama2 7B"));
    SolverConfig dp_cfg;
    dp_cfg.engine = SearchEngineKind::NoRefine;
    SolverConfig sa_cfg;
    sa_cfg.engine = SearchEngineKind::Annealing;
    sa_cfg.annealing.iterations = 20;

    const SolverResult dp_only = DlsSolver(sim_, dp_cfg).solve(graph);
    const SolverResult annealed = DlsSolver(sim_, sa_cfg).solve(graph);
    ASSERT_TRUE(dp_only.feasible);
    ASSERT_TRUE(annealed.feasible);
    // The engine keeps the DP incumbent, so it can never end up worse.
    EXPECT_LE(annealed.step_time_s, dp_only.step_time_s * 1.0001);
    // Annealing queried full-step fitness beyond the DP-only floor.
    EXPECT_GT(annealed.step_sims + annealed.step_cache_hits,
              dp_only.step_sims + dp_only.step_cache_hits);

    const SolverResult repeat = DlsSolver(sim_, sa_cfg).solve(graph);
    ASSERT_TRUE(repeat.feasible);
    EXPECT_EQ(repeat.per_op_specs, annealed.per_op_specs);
    EXPECT_DOUBLE_EQ(repeat.step_time_s, annealed.step_time_s);
}

TEST_F(SolverTest, RefinerDeterministicAcrossEvalThreads)
{
    // The refiner's batched fitness must be bit-exact for any pool
    // width: same plan, same step time, same accounting.
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));
    std::vector<SolverResult> results;
    for (int threads : {1, 2, 4}) {
        SolverConfig cfg;
        cfg.eval_threads = threads;
        results.push_back(DlsSolver(sim_, cfg).solve(graph));
        ASSERT_TRUE(results.back().feasible);
    }
    for (std::size_t r = 1; r < results.size(); ++r) {
        EXPECT_EQ(results[r].per_op_specs, results[0].per_op_specs);
        EXPECT_DOUBLE_EQ(results[r].step_time_s,
                         results[0].step_time_s);
        EXPECT_EQ(results[r].evaluations, results[0].evaluations);
        EXPECT_EQ(results[r].step_sims, results[0].step_sims);
        EXPECT_EQ(results[r].step_cache_hits,
                  results[0].step_cache_hits);
    }
}

TEST_F(SolverTest, StepAccountingIsHonest)
{
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));
    DlsSolver solver(sim_);
    const SolverResult result = solver.solve(graph);
    ASSERT_TRUE(result.feasible);

    // The refiner's full-step queries are visible: unique simulations
    // plus memo hits, both non-zero for a GA run on a fresh solver
    // (the seed pool recurs, the final report is a hit).
    EXPECT_GT(result.step_sims, 0);
    EXPECT_GT(result.step_cache_hits, 0);
    // Every step query is also counted in `evaluations`, alongside the
    // matrix queries — the work the algorithm asked for includes the
    // full-step fitness the GA used to be silent about.
    EXPECT_GE(result.evaluations,
              result.step_sims + result.step_cache_hits);
    EXPECT_GE(result.evaluations,
              result.matrix_measurements + result.cache_hits +
                  result.step_sims + result.step_cache_hits);

    // A repeat solve on the same solver re-simulates nothing: the step
    // memo serves every query, and the answer is unchanged.
    const SolverResult repeat = solver.solve(graph);
    ASSERT_TRUE(repeat.feasible);
    EXPECT_EQ(repeat.step_sims, 0);
    EXPECT_EQ(repeat.step_cache_hits,
              result.step_sims + result.step_cache_hits);
    EXPECT_EQ(repeat.per_op_specs, result.per_op_specs);
    EXPECT_EQ(repeat.evaluations, result.evaluations);
}

TEST_F(SolverTest, ExhaustiveAgreesWithDpOnAdditiveObjective)
{
    // On a small instance the branch-and-bound enumeration and the DP
    // optimise the same additive objective; the DP must not be worse.
    StrategySpaceOptions space;
    space.allow_sp = false;
    space.allow_cp = false;
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));

    ExhaustiveSolver exhaustive(sim_, space);
    const SolverResult ex = exhaustive.solve(graph, /*op_limit=*/4,
                                             /*time_budget_s=*/60.0);
    ASSERT_TRUE(ex.feasible);
    EXPECT_GT(ex.evaluations, 0);
    EXPECT_GT(ex.search_time_s, 0.0);
}

TEST_F(SolverTest, DlsOrdersOfMagnitudeFasterThanExhaustive)
{
    // Sec. VIII-H: DLS explores the same space in polynomial time while
    // the exhaustive baseline grows exponentially in operator count.
    StrategySpaceOptions space;
    space.allow_sp = false;
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));

    SolverConfig dls_cfg;
    dls_cfg.space = space;
    dls_cfg.enable_ga = false;  // isolate the DP level
    DlsSolver dls(sim_, dls_cfg);
    const SolverResult fast = dls.solve(graph);

    ExhaustiveSolver exhaustive(sim_, space);
    const SolverResult slow = exhaustive.solve(graph, /*op_limit=*/5,
                                               /*time_budget_s=*/120.0);
    ASSERT_TRUE(fast.feasible);
    ASSERT_TRUE(slow.feasible);
    // The exhaustive pass covered 5 of 12 ops yet did far more work.
    EXPECT_GT(slow.evaluations, 4 * fast.evaluations);
}

/**
 * Builds a RefineContext the way the solver's level 1 does — uniform
 * reports, OOM-penalised ordering, a uniform DP plan — but over a
 * trimmed candidate set so the engine checkpoint tests stay fast.
 */
class RefineHarness
{
  public:
    explicit RefineHarness(const sim::TrainingSimulator &sim)
        : graph_(model::ComputeGraph::transformer(
              model::modelByName("GPT-3 6.7B"))),
          pool_(2), steps_(sim, &pool_)
    {
        StrategySpaceOptions space;
        candidates_ = enumerateStrategies(32, graph_.config(), space);
        if (candidates_.size() > 10)
            candidates_.resize(10);
        boundaries_ = {0, graph_.opCount()};

        std::vector<std::vector<ParallelSpec>> uniform;
        for (const ParallelSpec &spec : candidates_)
            uniform.emplace_back(
                static_cast<std::size_t>(graph_.opCount()), spec);
        uniform_reports_ = steps_.evaluateBatch(graph_, uniform);
        for (std::size_t s = 0; s < candidates_.size(); ++s)
            if (uniform_reports_[s].feasible)
                uniform_order_.push_back(s);
        std::sort(uniform_order_.begin(), uniform_order_.end(),
                  [&](std::size_t a, std::size_t b) {
                      const auto &ra = uniform_reports_[a];
                      const auto &rb = uniform_reports_[b];
                      const double fa =
                          ra.step_time * (ra.oom ? 1e3 : 1.0);
                      const double fb =
                          rb.step_time * (rb.oom ? 1e3 : 1.0);
                      return fa < fb;
                  });

        dp_assignment_.assign(
            static_cast<std::size_t>(graph_.opCount()),
            static_cast<int>(uniform_order_.front()));
        dp_fitness_ = stepFitness(
            uniform_reports_[uniform_order_.front()]);
    }

    RefineContext ctx() const
    {
        return {graph_,          candidates_,    boundaries_,
                uniform_reports_, uniform_order_, dp_assignment_,
                dp_fitness_};
    }

    eval::StepEvaluator &steps() { return steps_; }

  private:
    model::ComputeGraph graph_;
    ThreadPool pool_;
    eval::StepEvaluator steps_;
    std::vector<ParallelSpec> candidates_;
    std::vector<int> boundaries_;
    std::vector<sim::PerfReport> uniform_reports_;
    std::vector<std::size_t> uniform_order_;
    std::vector<int> dp_assignment_;
    double dp_fitness_ = 0.0;
};

/// refine(ctx) must equal refinePartial(k) + encode + decode + resume
/// bit-identically, counters included, for the engine under test.
void
expectCheckpointRoundTripMatchesFullRefine(const SearchEngine &engine,
                                           RefineHarness &harness,
                                           int partial_steps)
{
    const RefineContext ctx = harness.ctx();
    const RefineOutcome full = engine.refine(ctx, harness.steps());

    RefineCheckpoint taken;
    const RefineOutcome partial = engine.refinePartial(
        ctx, harness.steps(), partial_steps, &taken);
    EXPECT_EQ(taken.steps_done, partial_steps);
    EXPECT_EQ(partial.fitness_queries, taken.fitness_queries);

    // Through the byte codec, as a real save/load would go.
    const std::string bytes = encodeRefineCheckpoint(taken);
    RefineCheckpoint restored;
    std::string error;
    ASSERT_TRUE(decodeRefineCheckpoint(bytes, &restored, &error))
        << error;
    EXPECT_EQ(restored.engine, taken.engine);
    EXPECT_EQ(restored.rng_state, taken.rng_state);

    const RefineOutcome resumed =
        engine.resume(ctx, harness.steps(), restored);
    EXPECT_EQ(resumed.assignment, full.assignment);
    EXPECT_DOUBLE_EQ(resumed.fitness, full.fitness);
    EXPECT_EQ(resumed.fitness_queries, full.fitness_queries);
}

TEST_F(SolverTest, GeneticCheckpointResumeIsBitIdentical)
{
    RefineHarness harness(sim_);
    const GeneticRefiner engine(/*population=*/8, /*generations=*/6,
                                /*mutation_rate=*/0.15, /*seed=*/42);
    expectCheckpointRoundTripMatchesFullRefine(engine, harness,
                                               /*partial_steps=*/2);
}

TEST_F(SolverTest, AnnealingCheckpointResumeIsBitIdentical)
{
    RefineHarness harness(sim_);
    AnnealingConfig config;
    config.iterations = 8;
    config.proposals = 4;
    const AnnealingRefiner engine(config, /*seed=*/42);
    expectCheckpointRoundTripMatchesFullRefine(engine, harness,
                                               /*partial_steps=*/3);
}

TEST_F(SolverTest, CompletedCheckpointResumesAsNoOp)
{
    RefineHarness harness(sim_);
    const GeneticRefiner engine(/*population=*/8, /*generations=*/4,
                                /*mutation_rate=*/0.15, /*seed=*/7);
    const RefineContext ctx = harness.ctx();

    // max_steps beyond the configured total is a full refine; resuming
    // its checkpoint re-runs nothing (no new fitness queries).
    RefineCheckpoint done;
    const RefineOutcome full =
        engine.refinePartial(ctx, harness.steps(), 100, &done);
    EXPECT_EQ(done.steps_done, 4);
    const RefineOutcome resumed =
        engine.resume(ctx, harness.steps(), done);
    EXPECT_EQ(resumed.assignment, full.assignment);
    EXPECT_EQ(resumed.fitness_queries, full.fitness_queries);
}

TEST_F(SolverTest, DamagedCheckpointBytesAreRejected)
{
    RefineHarness harness(sim_);
    const GeneticRefiner engine(/*population=*/8, /*generations=*/4,
                                /*mutation_rate=*/0.15, /*seed=*/42);
    RefineCheckpoint taken;
    engine.refinePartial(harness.ctx(), harness.steps(), 2, &taken);
    const std::string bytes = encodeRefineCheckpoint(taken);

    // Every single-byte flip is caught by the checksum (or the magic /
    // version gates before it); spot-check a spread of offsets.
    for (const std::size_t at :
         {std::size_t{0}, std::size_t{5}, bytes.size() / 2,
          bytes.size() - 1}) {
        std::string corrupt = bytes;
        corrupt[at] = static_cast<char>(corrupt[at] ^ 0x40);
        RefineCheckpoint out;
        std::string error;
        EXPECT_FALSE(decodeRefineCheckpoint(corrupt, &out, &error))
            << "flip at " << at << " was accepted";
        EXPECT_FALSE(error.empty());
        EXPECT_TRUE(out.best.empty());
    }

    // Truncation at any prefix is rejected too.
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{3}, bytes.size() / 2,
          bytes.size() - 1}) {
        RefineCheckpoint out;
        EXPECT_FALSE(
            decodeRefineCheckpoint(bytes.substr(0, keep), &out));
    }
}

TEST_F(SolverTest, ForeignCheckpointDegradesToColdRefine)
{
    RefineHarness harness(sim_);
    const GeneticRefiner ga(/*population=*/8, /*generations=*/4,
                            /*mutation_rate=*/0.15, /*seed=*/42);
    AnnealingConfig config;
    config.iterations = 6;
    config.proposals = 4;
    const AnnealingRefiner annealer(config, /*seed=*/42);

    RefineCheckpoint ga_checkpoint;
    ga.refinePartial(harness.ctx(), harness.steps(), 2,
                     &ga_checkpoint);

    // Handing a GA checkpoint to the annealer must not poison it: the
    // resume degrades to the annealer's own cold refine, bit-exactly.
    const RefineOutcome cold =
        annealer.refine(harness.ctx(), harness.steps());
    const RefineOutcome resumed =
        annealer.resume(harness.ctx(), harness.steps(), ga_checkpoint);
    EXPECT_EQ(resumed.assignment, cold.assignment);
    EXPECT_DOUBLE_EQ(resumed.fitness, cold.fitness);
    EXPECT_EQ(resumed.fitness_queries, cold.fitness_queries);
}

}  // namespace
}  // namespace temp::solver
