/**
 * @file
 * Tests for the service front end (src/serve): in-flight coalescing,
 * admission control, per-tenant fairness, graceful drain, and the
 * network server's round-trip contract — the response a client reads
 * off the wire is byte-identical to the in-process run() path.
 *
 * The concurrency tests run under ThreadSanitizer in CI; they are
 * written to be deterministic (a gate in the executor seam holds
 * solves in flight until the scenario is fully staged).
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "api/request_io.hpp"
#include "api/serialize.hpp"
#include "api/service.hpp"
#include "model/model_zoo.hpp"
#include "serve/client.hpp"
#include "serve/dispatcher.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

namespace temp::serve {
namespace {

core::FrameworkOptions
fastOptions()
{
    core::FrameworkOptions options;
    options.solver.ga_population = 8;
    options.solver.ga_generations = 4;
    options.eval_threads = 2;
    return options;
}

api::Request
optimizeWithSeed(std::uint64_t seed)
{
    api::OptimizeRequest request;
    request.model = model::modelByName("GPT-3 6.7B");
    request.options = fastOptions();
    request.options.solver.seed = seed;
    return request;
}

/// Holds executor calls open until release(); lets a test stage N
/// requests in flight deterministically.
struct Gate
{
    std::mutex mutex;
    std::condition_variable cv;
    bool open = false;
    int started = 0;

    void waitOpen()
    {
        std::unique_lock<std::mutex> lock(mutex);
        ++started;
        cv.notify_all();
        cv.wait(lock, [this] { return open; });
    }

    void release()
    {
        std::lock_guard<std::mutex> lock(mutex);
        open = true;
        cv.notify_all();
    }

    int startedCount()
    {
        std::lock_guard<std::mutex> lock(mutex);
        return started;
    }
};

/// Spins (1 ms steps, 20 s cap) until the predicate holds.
template <typename Pred>
::testing::AssertionResult
waitUntil(Pred &&pred)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(20);
    while (!pred()) {
        if (std::chrono::steady_clock::now() > deadline)
            return ::testing::AssertionFailure()
                   << "timed out waiting for condition";
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return ::testing::AssertionSuccess();
}

TEST(Dispatcher, NIdenticalRequestsCostOneSolve)
{
    api::TempService service;
    Gate gate;
    std::atomic<int> solves{0};
    DispatcherOptions options;
    options.workers = 2;
    options.executor = [&](const api::Request &,
                           const solver::SolveBudget &) {
        ++solves;
        gate.waitOpen();
        api::Response response;
        response.ok = true;
        response.wall_time_s = 42.0;  // payload marker
        return response;
    };
    Dispatcher dispatcher(service, options);

    const api::Request request = optimizeWithSeed(7);
    constexpr int kCallers = 8;
    std::vector<api::Response> responses(kCallers);
    std::vector<std::thread> threads;
    for (int i = 0; i < kCallers; ++i)
        threads.emplace_back([&, i] {
            responses[static_cast<std::size_t>(i)] =
                dispatcher.dispatch(request,
                                    "tenant-" + std::to_string(i));
        });
    // All callers admitted (1 host + 7 riders) before the solve may
    // finish.
    ASSERT_TRUE(waitUntil(
        [&] { return dispatcher.stats().accepted == kCallers; }));
    gate.release();
    for (std::thread &thread : threads)
        thread.join();

    const DispatchStats stats = dispatcher.stats();
    EXPECT_EQ(stats.executed, 1);
    EXPECT_EQ(stats.coalesced, kCallers - 1);
    EXPECT_EQ(stats.completed, kCallers);
    EXPECT_EQ(stats.shed, 0);
    EXPECT_EQ(solves.load(), 1);

    int riders = 0;
    for (int i = 0; i < kCallers; ++i) {
        const api::Response &response =
            responses[static_cast<std::size_t>(i)];
        EXPECT_TRUE(response.ok);
        // Every caller holds the one shared payload, personalized
        // with its own tenant and rider flag.
        EXPECT_DOUBLE_EQ(response.wall_time_s, 42.0);
        EXPECT_EQ(response.coalesced_requests, kCallers);
        EXPECT_EQ(response.tenant, "tenant-" + std::to_string(i));
        riders += response.coalesced ? 1 : 0;
    }
    EXPECT_EQ(riders, kCallers - 1);
    EXPECT_EQ(dispatcher.inFlight(), 0);
}

TEST(Dispatcher, CacheStatsIsNeverCoalesced)
{
    api::TempService service;
    Gate gate;
    DispatcherOptions options;
    options.workers = 2;
    options.executor = [&](const api::Request &,
                           const solver::SolveBudget &) {
        gate.waitOpen();
        api::Response response;
        response.ok = true;
        return response;
    };
    Dispatcher dispatcher(service, options);

    std::vector<std::thread> threads;
    for (int i = 0; i < 3; ++i)
        threads.emplace_back([&] {
            dispatcher.dispatch(api::CacheStatsRequest{}, "obs");
        });
    ASSERT_TRUE(
        waitUntil([&] { return dispatcher.stats().accepted == 3; }));
    gate.release();
    for (std::thread &thread : threads)
        thread.join();

    const DispatchStats stats = dispatcher.stats();
    EXPECT_EQ(stats.executed, 3);  // a snapshot per request
    EXPECT_EQ(stats.coalesced, 0);
}

TEST(Dispatcher, QueueFullSheds)
{
    api::TempService service;
    Gate gate;
    DispatcherOptions options;
    options.workers = 1;
    options.max_queue = 1;
    options.executor = [&](const api::Request &,
                           const solver::SolveBudget &) {
        gate.waitOpen();
        api::Response response;
        response.ok = true;
        return response;
    };
    Dispatcher dispatcher(service, options);

    // r1 occupies the worker, r2 the single queue slot; r3 must be
    // shed immediately with an explicit response.
    std::thread first(
        [&] { dispatcher.dispatch(optimizeWithSeed(1), "a"); });
    ASSERT_TRUE(waitUntil([&] { return gate.startedCount() == 1; }));
    std::thread second(
        [&] { dispatcher.dispatch(optimizeWithSeed(2), "a"); });
    ASSERT_TRUE(
        waitUntil([&] { return dispatcher.stats().accepted == 2; }));

    const api::Response shed =
        dispatcher.dispatch(optimizeWithSeed(3), "a");
    EXPECT_FALSE(shed.ok);
    EXPECT_TRUE(shed.shed);
    EXPECT_NE(shed.error.find("queue full (1 requests)"),
              std::string::npos)
        << shed.error;

    // An identical duplicate of the *executing* request still rides:
    // the admission bound does not apply to coalesced attachments.
    std::thread rider([&] {
        const api::Response response =
            dispatcher.dispatch(optimizeWithSeed(1), "b");
        EXPECT_TRUE(response.coalesced);
        EXPECT_FALSE(response.shed);
    });
    ASSERT_TRUE(waitUntil(
        [&] { return dispatcher.stats().coalesced == 1; }));

    gate.release();
    first.join();
    second.join();
    rider.join();
    const DispatchStats stats = dispatcher.stats();
    EXPECT_EQ(stats.shed, 1);
    EXPECT_EQ(stats.executed, 2);
    EXPECT_EQ(stats.coalesced, 1);
}

TEST(Dispatcher, TenantsAreServedRoundRobin)
{
    api::TempService service;
    Gate gate;
    std::mutex order_mutex;
    std::vector<std::uint64_t> order;
    DispatcherOptions options;
    options.workers = 1;
    options.executor = [&](const api::Request &request,
                           const solver::SolveBudget &) {
        gate.waitOpen();
        {
            std::lock_guard<std::mutex> lock(order_mutex);
            order.push_back(std::get<api::OptimizeRequest>(request)
                                .options.solver.seed);
        }
        api::Response response;
        response.ok = true;
        return response;
    };
    Dispatcher dispatcher(service, options);

    // Tenant A floods 8 requests, then tenant B sends 2; with one
    // worker and round-robin dequeue B is answered interleaved, not
    // after A's whole backlog.
    std::vector<std::thread> threads;
    threads.emplace_back(
        [&] { dispatcher.dispatch(optimizeWithSeed(100), "A"); });
    ASSERT_TRUE(waitUntil([&] { return gate.startedCount() == 1; }));
    for (std::uint64_t i = 1; i < 8; ++i)
        threads.emplace_back([&, i] {
            dispatcher.dispatch(optimizeWithSeed(100 + i), "A");
        });
    ASSERT_TRUE(
        waitUntil([&] { return dispatcher.stats().accepted == 8; }));
    for (std::uint64_t j = 0; j < 2; ++j)
        threads.emplace_back([&, j] {
            dispatcher.dispatch(optimizeWithSeed(200 + j), "B");
        });
    ASSERT_TRUE(
        waitUntil([&] { return dispatcher.stats().accepted == 10; }));

    gate.release();
    for (std::thread &thread : threads)
        thread.join();

    ASSERT_EQ(order.size(), 10u);
    const auto position = [&](std::uint64_t seed) {
        return std::find(order.begin(), order.end(), seed) -
               order.begin();
    };
    // B arrived last yet both its requests execute within the first
    // half of the schedule; A's backlog tail runs last.
    EXPECT_LE(position(200), 3);
    EXPECT_LE(position(201), 5);
    EXPECT_EQ(position(107), 9);
}

TEST(Dispatcher, DrainRefusesNewWorkAndFinishesAdmitted)
{
    api::TempService service;
    DispatcherOptions options;
    options.workers = 2;
    options.executor = [](const api::Request &,
                          const solver::SolveBudget &) {
        api::Response response;
        response.ok = true;
        return response;
    };
    Dispatcher dispatcher(service, options);

    const api::Response before =
        dispatcher.dispatch(optimizeWithSeed(1), "t");
    EXPECT_TRUE(before.ok);

    dispatcher.stop();
    const api::Response after =
        dispatcher.dispatch(optimizeWithSeed(2), "t");
    EXPECT_FALSE(after.ok);
    EXPECT_TRUE(after.shed);
    EXPECT_NE(after.error.find("draining"), std::string::npos);

    const DispatchStats stats = dispatcher.stats();
    EXPECT_EQ(stats.accepted, 2);
    EXPECT_EQ(stats.executed, 1);
    EXPECT_EQ(stats.shed, 1);
    EXPECT_EQ(stats.completed, 1);
}

TEST(Dispatcher, GracefulDrainUnderConcurrentLoad)
{
    api::TempService service;
    DispatcherOptions options;
    options.workers = 2;
    options.executor = [](const api::Request &,
                          const solver::SolveBudget &) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        api::Response response;
        response.ok = true;
        return response;
    };
    Dispatcher dispatcher(service, options);

    std::atomic<int> answered{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&, t] {
            for (std::uint64_t i = 0; i < 5; ++i) {
                const api::Response response = dispatcher.dispatch(
                    optimizeWithSeed(static_cast<std::uint64_t>(t) *
                                         100 +
                                     i),
                    t % 2 == 0 ? "even" : "odd");
                // Every dispatch is answered: a real response before
                // the drain, an explicit refusal after.
                EXPECT_TRUE(response.ok || response.shed);
                ++answered;
            }
        });
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    dispatcher.stop();  // races with in-flight dispatches on purpose
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(answered.load(), 20);
    const DispatchStats stats = dispatcher.stats();
    EXPECT_EQ(stats.accepted,
              stats.executed + stats.coalesced + stats.shed);
    EXPECT_EQ(dispatcher.inFlight(), 0);
}

/// Zeroes the wall-clock fields, the only nondeterministic bytes in a
/// response document.
std::string
normalizeTimings(const std::string &json)
{
    static const std::regex timing(
        "\"(wall_time_s|queue_time_s|search_time_s)\":[-0-9.eE+]+");
    return std::regex_replace(json, timing, "\"$1\":0");
}

TEST(Server, RoundTripMatchesInProcessByteForByte)
{
    const api::Request request = optimizeWithSeed(11);

    // In-process reference path, on its own service so both sides
    // compute from a cold framework cache.
    api::TempService local;
    const std::string expected =
        normalizeTimings(api::toJson(local.run(request)));

    api::TempService service;
    Server server(service, ServerOptions{});
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error))
        << error;
    std::string wire_response;
    ASSERT_TRUE(client.call(request, "", &wire_response, &error))
        << error;
    EXPECT_EQ(normalizeTimings(wire_response), expected);

    // Same connection, second call: the framed session is reusable,
    // and the repeat is served from the cached framework.
    std::string repeat;
    ASSERT_TRUE(client.call(request, "", &repeat, &error)) << error;
    EXPECT_NE(repeat.find("\"framework_reused\":true"),
              std::string::npos);
    server.stop();
}

TEST(Server, FramedSessionAnswersBadDocumentsInBand)
{
    api::TempService service;
    Server server(service, ServerOptions{});
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error))
        << error;
    std::string response;
    // Not JSON at all: the server answers with an ok=false document
    // instead of dropping the connection...
    ASSERT_TRUE(client.callRaw("!!definitely not json", &response,
                               &error))
        << error;
    EXPECT_NE(response.find("\"ok\":false"), std::string::npos);
    // ...so the same connection still serves the next request.
    ASSERT_TRUE(client.call(api::CacheStatsRequest{}, "obs",
                            &response, &error))
        << error;
    EXPECT_NE(response.find("\"ok\":true"), std::string::npos);
    EXPECT_NE(response.find("\"tenant\":\"obs\""), std::string::npos);
    server.stop();
}

TEST(Server, HttpEndpoints)
{
    api::TempService service;
    Server server(service, ServerOptions{});
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    const int port = server.port();

    int status = 0;
    std::string body;
    ASSERT_TRUE(Client::httpPost("127.0.0.1", port, "/healthz", "",
                                 &status, &body, &error))
        << error;
    EXPECT_EQ(status, 200);
    EXPECT_EQ(body, "{\"ok\":true}");

    ASSERT_TRUE(Client::httpPost("127.0.0.1", port, "/v1/requests",
                                 "{\"kind\":\"frobnicate\"}", &status,
                                 &body, &error))
        << error;
    EXPECT_EQ(status, 400);
    EXPECT_NE(body.find("unknown kind"), std::string::npos);

    ASSERT_TRUE(Client::httpPost(
        "127.0.0.1", port, "/v1/requests",
        api::toJson(api::CacheStatsRequest{}, "http-tenant"), &status,
        &body, &error))
        << error;
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"ok\":true"), std::string::npos);
    EXPECT_NE(body.find("\"tenant\":\"http-tenant\""),
              std::string::npos);

    ASSERT_TRUE(Client::httpPost("127.0.0.1", port, "/stats", "",
                                 &status, &body, &error))
        << error;
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"accepted\":"), std::string::npos);

    ASSERT_TRUE(Client::httpPost("127.0.0.1", port, "/nope", "",
                                 &status, &body, &error))
        << error;
    EXPECT_EQ(status, 404);
    server.stop();
}

TEST(Server, HttpKeepAliveServesSequentialExchanges)
{
    api::TempService service;
    Server server(service, ServerOptions{});
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    // One socket, many exchanges: probe, work, observability — the
    // connection survives each response.
    HttpClient client;
    ASSERT_TRUE(client.connect("127.0.0.1", server.port(), &error))
        << error;

    int status = 0;
    std::string body;
    ASSERT_TRUE(client.exchange("/healthz", "", &status, &body, &error))
        << error;
    EXPECT_EQ(status, 200);
    EXPECT_EQ(body, "{\"ok\":true}");
    EXPECT_TRUE(client.connected());

    ASSERT_TRUE(client.exchange(
        "/v1/requests", api::toJson(optimizeWithSeed(13), "ka-tenant"),
        &status, &body, &error))
        << error;
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"ok\":true"), std::string::npos);
    EXPECT_NE(body.find("\"tenant\":\"ka-tenant\""), std::string::npos);

    // The repeat rides the same connection and the cached framework.
    ASSERT_TRUE(client.exchange(
        "/v1/requests", api::toJson(optimizeWithSeed(13), "ka-tenant"),
        &status, &body, &error))
        << error;
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"framework_reused\":true"),
              std::string::npos);

    ASSERT_TRUE(client.exchange("/stats", "", &status, &body, &error))
        << error;
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"accepted\":"), std::string::npos);
    EXPECT_TRUE(client.connected());
    server.stop();
}

TEST(Server, HttpKeepAliveConnectionHoldsItsSessionSlot)
{
    api::TempService service;
    ServerOptions options;
    options.max_sessions = 1;
    Server server(service, options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    const int port = server.port();

    // Complete one exchange so the keep-alive session is definitely
    // registered before the over-cap connection arrives.
    HttpClient held;
    ASSERT_TRUE(held.connect("127.0.0.1", port, &error)) << error;
    int status = 0;
    std::string body;
    ASSERT_TRUE(held.exchange("/healthz", "", &status, &body, &error))
        << error;
    EXPECT_EQ(status, 200);

    // The idle-but-open connection still occupies the only slot: a
    // one-shot probe on a fresh connection is refused at the cap.
    std::string probe_error;
    EXPECT_FALSE(Client::httpPost("127.0.0.1", port, "/healthz", "",
                                  &status, &body, &probe_error));

    // The held connection was not disturbed...
    ASSERT_TRUE(held.exchange("/healthz", "", &status, &body, &error))
        << error;
    EXPECT_EQ(status, 200);

    // ...and closing it frees the slot for new clients.
    held.close();
    bool admitted = false;
    for (int i = 0; i < 2000 && !admitted; ++i) {
        std::string retry_error;
        admitted = Client::httpPost("127.0.0.1", port, "/healthz", "",
                                    &status, &body, &retry_error);
        if (!admitted)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(admitted);
    server.stop();
}

TEST(Server, HttpConnectionCloseAndHttp10EndTheSession)
{
    api::TempService service;
    Server server(service, ServerOptions{});
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    // Raw HTTP/1.0 request with no Connection header: the default is
    // close, so the server answers and then ends the connection (EOF).
    const auto closesAfter = [&](const std::string &request) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)),
                  0);
        EXPECT_TRUE(writeAll(fd, request.data(), request.size()));
        int status = 0;
        std::string body;
        std::string read_error;
        EXPECT_TRUE(
            readHttpResponse(fd, &status, &body, &read_error))
            << read_error;
        EXPECT_EQ(status, 200);
        // After the response the server must close: the next read is
        // a clean EOF, never a hang on a half-open connection.
        char byte = 0;
        const bool got_eof = !readExact(fd, &byte, 1);
        ::close(fd);
        return got_eof;
    };

    EXPECT_TRUE(closesAfter("GET /healthz HTTP/1.0\r\n\r\n"));
    EXPECT_TRUE(closesAfter(
        "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"));
    server.stop();
}

TEST(Server, StopDrainsInFlightSessions)
{
    api::TempService service;
    Server server(service, ServerOptions{});
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    const int port = server.port();

    // Clients race the shutdown: each call either completes with a
    // real document or fails as a clean transport error — never a
    // hang, never a crash.
    std::atomic<int> completed{0};
    std::vector<std::thread> threads;
    for (std::uint64_t i = 0; i < 3; ++i)
        threads.emplace_back([&, i] {
            Client client;
            std::string client_error;
            if (!client.connect("127.0.0.1", port, &client_error))
                return;
            std::string response;
            if (client.call(optimizeWithSeed(50 + i), "race",
                            &response, &client_error))
                ++completed;
        });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    server.stop();
    for (std::thread &thread : threads)
        thread.join();

    const DispatchStats stats = server.stats();
    EXPECT_EQ(stats.accepted,
              stats.executed + stats.coalesced + stats.shed);
    EXPECT_GE(completed.load(), 0);
}

TEST(Server, SessionCapRefusesExtraConnections)
{
    api::TempService service;
    ServerOptions options;
    options.max_sessions = 1;
    Server server(service, options);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    // Complete one call so the first session is definitely
    // registered before the over-cap connection arrives.
    Client first;
    ASSERT_TRUE(first.connect("127.0.0.1", server.port(), &error))
        << error;
    std::string response;
    ASSERT_TRUE(first.call(api::CacheStatsRequest{}, "", &response,
                           &error))
        << error;

    // A second connection clears the TCP handshake (backlog), but the
    // server closes it at the cap: the call fails as a clean
    // transport error and never gets a document.
    Client second;
    std::string second_error;
    if (second.connect("127.0.0.1", server.port(), &second_error)) {
        std::string ignored;
        EXPECT_FALSE(second.callRaw(
            api::toJson(api::CacheStatsRequest{}, ""), &ignored,
            &second_error));
    }

    // The refused connection did not disturb the live session...
    ASSERT_TRUE(first.call(api::CacheStatsRequest{}, "", &response,
                           &error))
        << error;

    // ...and once it ends, capacity frees up again.
    first.close();
    bool reconnected = false;
    for (int i = 0; i < 2000 && !reconnected; ++i) {
        Client retry;
        std::string retry_error;
        std::string document;
        if (retry.connect("127.0.0.1", server.port(),
                          &retry_error) &&
            retry.call(api::CacheStatsRequest{}, "", &document,
                       &retry_error))
            reconnected = true;
        else
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(reconnected);
    server.stop();
}

TEST(Dispatcher, DeadlineExpiredRequestsAreShedExplicitly)
{
    api::TempService service;
    Gate gate;
    DispatcherOptions options;
    options.workers = 1;
    options.deadline_ms = 10;
    options.executor = [&](const api::Request &,
                           const solver::SolveBudget &) {
        gate.waitOpen();
        api::Response response;
        response.ok = true;
        return response;
    };
    Dispatcher dispatcher(service, options);

    // r1 occupies the single worker; r2 queues behind it and ages past
    // the deadline while the gate is closed.
    std::thread first(
        [&] { dispatcher.dispatch(optimizeWithSeed(1), "a"); });
    ASSERT_TRUE(waitUntil([&] { return gate.startedCount() == 1; }));
    std::thread second([&] {
        const api::Response response =
            dispatcher.dispatch(optimizeWithSeed(2), "a");
        EXPECT_FALSE(response.ok);
        EXPECT_TRUE(response.shed);
        EXPECT_TRUE(response.deadline_exceeded);
        EXPECT_NE(response.error.find("deadline exceeded"),
                  std::string::npos)
            << response.error;
        EXPECT_NE(response.error.find("serve.deadline_ms=10"),
                  std::string::npos)
            << response.error;
    });
    ASSERT_TRUE(
        waitUntil([&] { return dispatcher.stats().accepted == 2; }));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    gate.release();
    first.join();
    second.join();

    const DispatchStats stats = dispatcher.stats();
    EXPECT_EQ(stats.deadline_expired, 1);
    EXPECT_EQ(stats.shed, 1);
    EXPECT_EQ(stats.executed, 1);
    // deadline_expired is a subset of shed: the accounting identity
    // is unchanged.
    EXPECT_EQ(stats.accepted,
              stats.coalesced + stats.executed + stats.shed);
}

TEST(Dispatcher, DeadlineZeroMeansNoDeadline)
{
    api::TempService service;
    Gate gate;
    DispatcherOptions options;
    options.workers = 1;
    options.deadline_ms = 0;
    options.executor = [&](const api::Request &,
                           const solver::SolveBudget &) {
        gate.waitOpen();
        api::Response response;
        response.ok = true;
        return response;
    };
    Dispatcher dispatcher(service, options);

    std::thread first(
        [&] { dispatcher.dispatch(optimizeWithSeed(1), "a"); });
    ASSERT_TRUE(waitUntil([&] { return gate.startedCount() == 1; }));
    std::thread second([&] {
        const api::Response response =
            dispatcher.dispatch(optimizeWithSeed(2), "a");
        EXPECT_TRUE(response.ok);
        EXPECT_FALSE(response.deadline_exceeded);
    });
    ASSERT_TRUE(
        waitUntil([&] { return dispatcher.stats().accepted == 2; }));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    gate.release();
    first.join();
    second.join();
    EXPECT_EQ(dispatcher.stats().deadline_expired, 0);
    EXPECT_EQ(dispatcher.stats().executed, 2);
}

TEST(Dispatcher, DeadlineCancelsInFlightSolveAtBudgetBoundary)
{
    api::TempService service;
    Gate gate;
    std::atomic<bool> budget_armed{false};
    DispatcherOptions options;
    options.workers = 1;
    // Generous enough that the dequeue-time check never sheds: the
    // cancellation below is purely the in-flight channel.
    options.deadline_ms = 60000;
    options.executor = [&](const api::Request &,
                           const solver::SolveBudget &budget) {
        // Under a serve deadline every executed request carries a
        // wall-capped, cancellable budget.
        budget_armed = budget.limited() && budget.cancel.armed() &&
                       budget.max_wall_ms > 0.0;
        gate.waitOpen();
        // Model the solver's contract: cancellation is observed at the
        // next quantum boundary and the run returns its best-so-far
        // partial, flagged.
        budget.cancel.requestCancel();
        common::BudgetGauge gauge = budget.gauge();
        gauge.charge(3);
        EXPECT_TRUE(gauge.exhausted());
        api::Response response;
        response.ok = true;
        response.budget_exhausted = gauge.exhausted();
        response.quanta_used = gauge.used();
        return response;
    };
    Dispatcher dispatcher(service, options);

    // A host request held in flight plus a rider coalesced onto it:
    // one truncated solve must answer both.
    const api::Request request = optimizeWithSeed(31);
    api::Response host_response;
    api::Response rider_response;
    std::thread host(
        [&] { host_response = dispatcher.dispatch(request, "a"); });
    ASSERT_TRUE(waitUntil([&] { return gate.startedCount() == 1; }));
    std::thread rider(
        [&] { rider_response = dispatcher.dispatch(request, "b"); });
    ASSERT_TRUE(
        waitUntil([&] { return dispatcher.stats().coalesced == 1; }));
    gate.release();
    host.join();
    rider.join();

    EXPECT_TRUE(budget_armed.load());
    for (const api::Response *r : {&host_response, &rider_response}) {
        EXPECT_TRUE(r->ok);
        EXPECT_TRUE(r->budget_exhausted);
        EXPECT_EQ(r->quanta_used, 3);
        EXPECT_FALSE(r->deadline_exceeded);
        EXPECT_FALSE(r->shed);
    }
    const DispatchStats stats = dispatcher.stats();
    EXPECT_EQ(stats.executed, 1);
    EXPECT_EQ(stats.coalesced, 1);
    EXPECT_EQ(stats.deadline_cancelled, 1);
    EXPECT_EQ(stats.deadline_expired, 0);
    // deadline_cancelled is a subset of executed: the drain identity
    // still balances.
    EXPECT_EQ(stats.accepted,
              stats.coalesced + stats.executed + stats.shed);
}

TEST(Dispatcher, DeadlineTruncatesRealSolveEndToEnd)
{
    // No executor seam: the remainder budget flows into a real solve,
    // whose wall cap is far below a cold solve's runtime. Depending on
    // scheduling the millisecond is gone either before dequeue (an
    // explicit shed) or mid-solve (a flagged best-so-far partial) —
    // both are deadline enforcement, neither holds the worker.
    api::TempService service;
    DispatcherOptions options;
    options.workers = 1;
    options.deadline_ms = 1;
    Dispatcher dispatcher(service, options);
    const api::Response response =
        dispatcher.dispatch(optimizeWithSeed(99), "t");
    if (response.deadline_exceeded) {
        EXPECT_FALSE(response.ok);
        EXPECT_TRUE(response.shed);
        EXPECT_EQ(dispatcher.stats().deadline_expired, 1);
    } else {
        ASSERT_TRUE(response.ok) << response.error;
        EXPECT_TRUE(response.budget_exhausted);
        EXPECT_GT(response.quanta_used, 0);
        EXPECT_TRUE(response.solver.feasible);
        EXPECT_EQ(dispatcher.stats().deadline_cancelled, 1);
    }
}

/// Reserves an ephemeral TCP port and releases it: the number is free
/// (modulo an unlikely race) for a server started later in the test.
int
reservePort()
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                            &len),
              0);
    const int port = ntohs(addr.sin_port);
    ::close(fd);
    return port;
}

TEST(Client, RetryIsOffByDefaultAndBoundedWhenOn)
{
    const int port = reservePort();
    std::string error;

    // Off by default: one dial, immediate failure.
    Client plain;
    EXPECT_FALSE(plain.connect("127.0.0.1", port, &error));
    EXPECT_EQ(error.find("(after"), std::string::npos) << error;

    // Bounded: retries exhaust and the error says how many attempts.
    RetryPolicy two;
    two.retries = 2;
    two.base_delay_ms = 1;
    two.max_delay_ms = 4;
    Client bounded;
    EXPECT_FALSE(bounded.connect("127.0.0.1", port, two, &error));
    EXPECT_NE(error.find("(after 3 attempts)"), std::string::npos)
        << error;

    // A non-transient failure is never retried, even with retries on.
    Client hopeless;
    EXPECT_FALSE(
        hopeless.connect("definitely not a host", 80, two, &error));
    EXPECT_NE(error.find("invalid address"), std::string::npos)
        << error;
    EXPECT_EQ(error.find("(after"), std::string::npos) << error;
}

TEST(Client, RetryConnectsToLateBindingServer)
{
    const int port = reservePort();
    api::TempService service;
    ServerOptions server_options;
    server_options.port = port;
    Server server(service, server_options);

    // The server binds only after the client's first dial has failed:
    // without retries the connect is a guaranteed miss, with them the
    // backoff loop finds the socket once it exists.
    std::thread late([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(40));
        std::string start_error;
        ASSERT_TRUE(server.start(&start_error)) << start_error;
    });

    RetryPolicy patient;
    patient.retries = 10;
    patient.base_delay_ms = 10;
    patient.max_delay_ms = 50;
    Client client;
    std::string error;
    ASSERT_TRUE(client.connect("127.0.0.1", port, patient, &error))
        << error;
    late.join();

    std::string response;
    ASSERT_TRUE(
        client.call(api::CacheStatsRequest{}, "", &response, &error))
        << error;
    EXPECT_NE(response.find("\"ok\":true"), std::string::npos);
    client.close();

    // The HTTP face takes the same policy (here the server is already
    // up, so the first dial wins and no retry fires).
    HttpClient http;
    ASSERT_TRUE(http.connect("127.0.0.1", port, patient, &error))
        << error;
    int status = 0;
    std::string body;
    ASSERT_TRUE(http.exchange("/healthz", "", &status, &body, &error))
        << error;
    EXPECT_EQ(status, 200);
    http.close();
    server.stop();
}

}  // namespace
}  // namespace temp::serve
