/**
 * @file
 * Tests for the simulation layer: single-wafer training steps (with
 * gradient accumulation and recompute fallbacks), multi-wafer pipeline
 * simulation, and the GPU-cluster reference.
 */
#include <gtest/gtest.h>

#include "model/graph.hpp"
#include "model/model_zoo.hpp"
#include "sim/gpu_cluster.hpp"
#include "sim/multi_wafer.hpp"
#include "sim/trainer_sim.hpp"

namespace temp::sim {
namespace {

using parallel::ParallelSpec;

ParallelSpec
spec(int dp, int tp, int sp, int tatp, int fsdp = 1, int cp = 1)
{
    ParallelSpec s;
    s.dp = dp;
    s.tp = tp;
    s.sp = sp;
    s.tatp = tatp;
    s.fsdp = fsdp;
    s.cp = cp;
    return s;
}

class TrainerSimTest : public ::testing::Test
{
  protected:
    TrainerSimTest()
        : wafer_(hw::WaferConfig::paperDefault()),
          sim_(wafer_, tcme::MappingPolicy{tcme::MappingEngineKind::TCME})
    {
    }

    PerfReport
    run(const char *model, const ParallelSpec &s)
    {
        const auto graph =
            model::ComputeGraph::transformer(model::modelByName(model));
        return sim_.simulate(graph, s);
    }

    hw::Wafer wafer_;
    TrainingSimulator sim_;
};

TEST_F(TrainerSimTest, SmallModelPureDpIsComputeBound)
{
    const PerfReport r = run("GPT-3 6.7B", spec(32, 1, 1, 1));
    EXPECT_TRUE(r.feasible);
    EXPECT_FALSE(r.oom);
    EXPECT_GT(r.step_time, 0.0);
    // Compute dominates; exposed communication is a small fraction.
    EXPECT_LT(r.exposed_comm, 0.2 * r.step_time);
    EXPECT_GT(r.throughput_tokens_per_s, 0.0);
    EXPECT_GT(r.total_flops, 0.0);
}

TEST_F(TrainerSimTest, StepTimeDecomposesConsistently)
{
    const PerfReport r = run("GPT-3 6.7B", spec(4, 2, 1, 4));
    // Wall time is at least the compute time and at least the exposed
    // communication.
    EXPECT_GE(r.step_time, r.comp_time * 0.999);
    EXPECT_GE(r.step_time, r.exposed_comm * 0.999);
    EXPECT_GE(r.collective_time, r.grad_sync_time);
}

TEST_F(TrainerSimTest, GradAccumulationKicksInUnderMemoryPressure)
{
    // Full-batch activations cannot fit; accumulation must engage.
    const PerfReport r = run("Llama3 70B", spec(1, 1, 1, 32));
    EXPECT_TRUE(r.feasible);
    EXPECT_GT(r.grad_accum, 1);
    EXPECT_FALSE(r.oom);
}

TEST_F(TrainerSimTest, MemoryShrinksWithShardingDegree)
{
    const PerfReport wide = run("Llama2 7B", spec(1, 1, 1, 32));
    const PerfReport narrow = run("Llama2 7B", spec(32, 1, 1, 1));
    // Full replication (dp) holds the whole model per die; tatp shards.
    EXPECT_LT(wide.peak_footprint[mem::MemClass::Weights],
              narrow.peak_footprint[mem::MemClass::Weights]);
    // Gradients are not ZeRO-sharded across dp, so full replication
    // keeps the whole gradient buffer per die.
    EXPECT_LT(wide.peak_footprint[mem::MemClass::Gradients],
              narrow.peak_footprint[mem::MemClass::Gradients]);
}

TEST_F(TrainerSimTest, MegatronStyleOomsOnHugeModel)
{
    // TP capped at 8 leaves >= 1/8 of the 175B state per die: OOM even
    // with accumulation and recompute.
    parallel::TrainingOptions no_zero;
    no_zero.zero1_optimizer = false;
    TrainingSimulator mega_sim(
        wafer_, tcme::MappingPolicy{tcme::MappingEngineKind::SMap},
        no_zero);
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 175B"));
    const PerfReport r = mega_sim.simulate(graph, spec(4, 8, 1, 1));
    EXPECT_TRUE(r.feasible);
    EXPECT_TRUE(r.oom);
}

TEST_F(TrainerSimTest, InvalidSpecIsInfeasible)
{
    const PerfReport r = run("GPT-3 6.7B", spec(64, 2, 1, 1));  // 128 > 32
    EXPECT_FALSE(r.feasible);
}

TEST_F(TrainerSimTest, MixedPerOpSpecsPayResharding)
{
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));
    std::vector<ParallelSpec> specs(graph.opCount(), spec(4, 1, 1, 8));
    specs[4] = spec(32, 1, 1, 1);
    const PerfReport mixed = sim_.simulate(graph, specs);
    EXPECT_TRUE(mixed.feasible);
    EXPECT_GT(mixed.reshard_time, 0.0);
    const PerfReport uniform = sim_.simulate(graph, spec(4, 1, 1, 8));
    EXPECT_DOUBLE_EQ(uniform.reshard_time, 0.0);
}

TEST_F(TrainerSimTest, EnergyBreakdownPopulated)
{
    const PerfReport r = run("GPT-3 6.7B", spec(2, 2, 1, 8));
    EXPECT_GT(r.energy.compute_j, 0.0);
    EXPECT_GT(r.energy.dram_j, 0.0);
    EXPECT_GT(r.energy.d2d_j, 0.0);
    EXPECT_GT(r.avg_power_w, 0.0);
    EXPECT_GT(r.power_efficiency, 0.0);
    // Compute should dominate total power (Sec. VIII-B: >50%).
    EXPECT_GT(r.energy.compute_j, 0.5 * r.energy.total());
}

TEST_F(TrainerSimTest, TatpSweetSpotBetweenExtremes)
{
    // Fig. 9: degree 8-16 beats both very low and very high degrees for
    // a big model (per-die memory pressure vs. fragmentation).
    const double t2 = run("GPT-3 175B", spec(2, 1, 1, 16)).step_time;
    const double t32 = run("GPT-3 175B", spec(1, 1, 1, 32)).step_time;
    const double t_tp = run("GPT-3 175B", spec(1, 8, 1, 4)).step_time;
    EXPECT_LT(t2, t_tp);
    (void)t32;
}

class MultiWaferTest : public ::testing::Test
{
  protected:
    hw::MultiWaferConfig
    config(int wafers)
    {
        hw::MultiWaferConfig cfg;
        cfg.wafer = hw::WaferConfig::paperDefault();
        cfg.wafer_count = wafers;
        return cfg;
    }
};

TEST_F(MultiWaferTest, StageFabricGeometry)
{
    MultiWaferSimulator sim(config(4),
                            tcme::MappingPolicy{
                                tcme::MappingEngineKind::TCME});
    // pp == wafers: one wafer per stage.
    EXPECT_EQ(sim.stageFabric(4).dieCount(), 32);
    // pp < wafers: stages span several wafers.
    EXPECT_EQ(sim.stageFabric(2).dieCount(), 64);
    // pp > wafers: wafer column-split into slices.
    EXPECT_EQ(sim.stageFabric(8).dieCount(), 16);
}

TEST_F(MultiWaferTest, BubbleShrinksWithMicrobatches)
{
    MultiWaferSimulator sim(config(2),
                            tcme::MappingPolicy{
                                tcme::MappingEngineKind::TCME});
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 175B"));
    const PerfReport few = sim.simulate(graph, spec(1, 1, 1, 16, 1, 1),
                                        /*pp=*/2, /*microbatches=*/4);
    const PerfReport many = sim.simulate(graph, spec(1, 1, 1, 16, 1, 1),
                                         /*pp=*/2, /*microbatches=*/16);
    ASSERT_TRUE(few.feasible);
    ASSERT_TRUE(many.feasible);
    // Bubble fraction (pp-1)/(m+pp-1) shrinks with m.
    EXPECT_GT(few.bubble_time / few.step_time,
              many.bubble_time / many.step_time);
}

TEST_F(MultiWaferTest, HigherPpMeansMoreBubbleTime)
{
    MultiWaferSimulator sim(config(4),
                            tcme::MappingPolicy{
                                tcme::MappingEngineKind::TCME});
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("Llama3 405B"));
    // Llama3 405B has 126 layers; neither 4 nor 8 divide it. Use the
    // 124-layer GPT-3 504B for the pp sweep instead.
    const auto graph2 = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 504B"));
    (void)graph;
    const PerfReport low = sim.simulate(graph2, spec(1, 1, 1, 8, 1, 1),
                                        /*pp=*/4, /*microbatches=*/8);
    ASSERT_TRUE(low.feasible);
    EXPECT_GT(low.bubble_time, 0.0);
    EXPECT_LT(low.bubble_time, low.step_time);
}

TEST_F(MultiWaferTest, RejectsIncompatiblePp)
{
    MultiWaferSimulator sim(config(4),
                            tcme::MappingPolicy{
                                tcme::MappingEngineKind::TCME});
    EXPECT_EQ(sim.stageFabric(1).dieCount(), 4 * 32);
}

TEST(GpuCluster, MatchesWaferAggregateCompute)
{
    // Sec. VIII-B: 32 x 312 TFLOPS A100s vs 32-die WSC comparison setup.
    const hw::GpuClusterConfig cfg = hw::GpuClusterConfig::a100Default();
    EXPECT_EQ(cfg.gpu_count, 32);
    EXPECT_DOUBLE_EQ(cfg.peak_flops, 312e12);
}

TEST(GpuCluster, SimulatesMegatronStyleTraining)
{
    GpuClusterSimulator sim(hw::GpuClusterConfig::a100Default());
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B").withSeqBatch(2048, 8));
    const PerfReport r = sim.simulate(graph, spec(4, 8, 1, 1));
    EXPECT_TRUE(r.feasible);
    EXPECT_GT(r.step_time, 0.0);
    EXPECT_GT(r.collective_time, 0.0);
}

TEST(GpuCluster, NicBandwidthMakesCollectivesExpensive)
{
    // The same collective volume is far more expensive on 600 GB/s NICs
    // than on 4 TB/s D2D links — the Fig. 15 contrast.
    GpuClusterSimulator gpu(hw::GpuClusterConfig::a100Default());
    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    TrainingSimulator wsc(wafer,
                          tcme::MappingPolicy{tcme::MappingEngineKind::TCME});
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B").withSeqBatch(2048, 8));
    const PerfReport g = gpu.simulate(graph, spec(4, 8, 1, 1));
    const PerfReport w = wsc.simulate(graph, spec(4, 8, 1, 1));
    ASSERT_TRUE(g.feasible);
    ASSERT_TRUE(w.feasible);
    EXPECT_GT(g.collective_time, w.collective_time);
}

}  // namespace
}  // namespace temp::sim
