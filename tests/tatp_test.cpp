/**
 * @file
 * Unit and property tests for the TATP module: the bidirectional
 * orchestrator (reconstructed Alg. 1), chain mapping, and the stream
 * executor's timing model.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "hw/topology.hpp"
#include "net/route.hpp"
#include "tatp/chain_mapper.hpp"
#include "tatp/executor.hpp"
#include "tatp/orchestrator.hpp"

namespace temp::tatp {
namespace {

using hw::DieId;
using hw::MeshTopology;

// ---------------------------------------------------------------------
// Orchestrator: property tests across degrees (the paper's Alg. 1).
// ---------------------------------------------------------------------

class OrchestratorProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(OrchestratorProperty, ScheduleIsFeasible)
{
    const int n = GetParam();
    BidirectionalOrchestrator orch(n);
    const ValidationResult result = orch.validate();
    EXPECT_TRUE(result.ok) << result.error;
}

TEST_P(OrchestratorProperty, EveryTransferIsOneHop)
{
    const int n = GetParam();
    BidirectionalOrchestrator orch(n);
    for (const RoundSchedule &round : orch.rounds())
        for (const TransferTask &x : round.transfers)
            EXPECT_EQ(std::abs(x.from_slot - x.to_slot), 1);
}

TEST_P(OrchestratorProperty, OneComputePerSlotPerRound)
{
    const int n = GetParam();
    BidirectionalOrchestrator orch(n);
    for (const RoundSchedule &round : orch.rounds()) {
        std::set<int> slots;
        for (const ComputeTask &c : round.computes)
            EXPECT_TRUE(slots.insert(c.slot).second);
        EXPECT_EQ(static_cast<int>(slots.size()), n);
    }
}

TEST_P(OrchestratorProperty, PerLinkPerRoundLoadIsOneSubtensor)
{
    // Each directed chain link carries at most one sub-tensor per round:
    // the stream saturates but never oversubscribes the fabric.
    const int n = GetParam();
    BidirectionalOrchestrator orch(n);
    for (const RoundSchedule &round : orch.rounds()) {
        std::set<std::pair<int, int>> used;
        for (const TransferTask &x : round.transfers)
            EXPECT_TRUE(used.insert({x.from_slot, x.to_slot}).second)
                << "link " << x.from_slot << "->" << x.to_slot
                << " carries two sub-tensors in one round";
    }
}

TEST_P(OrchestratorProperty, AllOutputsComputedExactlyOnce)
{
    const int n = GetParam();
    BidirectionalOrchestrator orch(n);
    for (int s = 0; s < n; ++s) {
        std::set<int> subs;
        for (const RoundSchedule &round : orch.rounds())
            for (const ComputeTask &c : round.computes)
                if (c.slot == s)
                    EXPECT_TRUE(subs.insert(c.subtensor).second);
        EXPECT_EQ(static_cast<int>(subs.size()), n);
    }
}

INSTANTIATE_TEST_SUITE_P(Degrees, OrchestratorProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 12, 16, 32));

TEST(Orchestrator, MatchesPaperN4Example)
{
    // Fig. 8(c): in round 0 Die 3 sends W3 to Die 2; Die 2 computes O21
    // in round 1 (uses subT[1]); Die 1 computes O13 in round 2.
    BidirectionalOrchestrator orch(4);
    const auto &round0 = orch.rounds()[0];
    bool die3_sends_w3_down = false;
    for (const TransferTask &x : round0.transfers)
        if (x.from_slot == 3 && x.to_slot == 2 && x.subtensor == 3)
            die3_sends_w3_down = true;
    EXPECT_TRUE(die3_sends_w3_down);

    EXPECT_EQ(BidirectionalOrchestrator::computeSubtensor(4, 2, 1), 1);
    EXPECT_EQ(BidirectionalOrchestrator::computeSubtensor(4, 1, 2), 3);
    // Die 3 computes O33, O32, O31, O30 in that order.
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(BidirectionalOrchestrator::computeSubtensor(4, 3, t),
                  (3 - t + 4) % 4);
}

TEST(Orchestrator, PeakBuffersGrowLinearly)
{
    // The bidirectional relay holds ~N/2 sub-tensors on the worst slot
    // (wrap-need holding); this is what the partitioner's comm-buffer
    // model charges.
    EXPECT_EQ(BidirectionalOrchestrator::peakBuffersForDegree(1), 1);
    EXPECT_LE(BidirectionalOrchestrator::peakBuffersForDegree(4), 4);
    const int p16 = BidirectionalOrchestrator::peakBuffersForDegree(16);
    EXPECT_GE(p16, 4);
    EXPECT_LE(p16, 10);  // ~N/2 + in-flight
}

TEST(Orchestrator, PeakBuffersMatchPartitionerFormula)
{
    // The partitioner charges (floor(N/2 - 1) + 2) sub-tensor buffers
    // per die for the bidirectional relay; the buffer-accurate
    // orchestrator simulation must stay within one double-buffer slot
    // of that for every degree.
    for (int n : {2, 4, 8, 16, 32}) {
        const int measured =
            BidirectionalOrchestrator::peakBuffersForDegree(n);
        const int charged =
            static_cast<int>(std::floor(n / 2.0 - 1.0)) + 2;
        EXPECT_LE(measured, charged + 1) << "degree " << n;
        EXPECT_GE(measured, charged - 2) << "degree " << n;
    }
}

TEST(Orchestrator, NaiveRingRotatesSubtensors)
{
    NaiveRingOrchestrator orch(4);
    ASSERT_EQ(orch.rounds().size(), 4u);
    // Round 0: slot s computes its own sub-tensor.
    for (const ComputeTask &c : orch.rounds()[0].computes)
        EXPECT_EQ(c.subtensor, c.slot);
    // Wrap transfer present: slot 3 -> slot 0.
    bool wrap = false;
    for (const TransferTask &x : orch.rounds()[0].transfers)
        if (x.from_slot == 3 && x.to_slot == 0)
            wrap = true;
    EXPECT_TRUE(wrap);
    // Every slot computes all sub-tensors across rounds.
    for (int s = 0; s < 4; ++s) {
        std::set<int> subs;
        for (const auto &round : orch.rounds())
            for (const ComputeTask &c : round.computes)
                if (c.slot == s)
                    subs.insert(c.subtensor);
        EXPECT_EQ(subs.size(), 4u);
    }
}

// ---------------------------------------------------------------------
// Chain mapper.
// ---------------------------------------------------------------------

TEST(ChainMapper, ContiguousSnakeChain)
{
    MeshTopology mesh(4, 8);
    ChainMapper mapper(mesh);
    std::vector<DieId> chain{mesh.dieAt(0, 0), mesh.dieAt(0, 1),
                             mesh.dieAt(1, 1), mesh.dieAt(1, 0)};
    const ChainInfo info = mapper.analyzeChain(chain);
    EXPECT_TRUE(info.contiguous);
    EXPECT_EQ(info.max_hop, 1);
    EXPECT_EQ(info.total_hops, 3);
}

TEST(ChainMapper, TetrisGroupIsNonContiguous)
{
    // Fig. 7(a): a group whose members are not chain-adjacent.
    MeshTopology mesh(4, 8);
    ChainMapper mapper(mesh);
    std::vector<DieId> chain{mesh.dieAt(0, 0), mesh.dieAt(0, 2),
                             mesh.dieAt(2, 2), mesh.dieAt(2, 0)};
    const ChainInfo info = mapper.analyzeChain(chain);
    EXPECT_FALSE(info.contiguous);
    EXPECT_EQ(info.max_hop, 2);
}

TEST(ChainMapper, LinearChainRingHasLongWrap)
{
    // Fig. 5(a): dies 0..7 in a row; the logical ring's wrap transfer
    // needs 7 physical hops while neighbours need 1.
    MeshTopology mesh(1, 8);
    ChainMapper mapper(mesh);
    std::vector<DieId> ring{0, 1, 2, 3, 4, 5, 6, 7};
    const RingInfo info = mapper.analyzeRing(ring);
    EXPECT_TRUE(info.chain.contiguous);
    EXPECT_EQ(info.wrap_hops, 7);
    EXPECT_FALSE(info.physical_ring);
    EXPECT_EQ(info.max_hop, 7);
}

TEST(ChainMapper, BoustrophedonRingOnEvenGridIsPhysical)
{
    MeshTopology mesh(2, 4);
    ChainMapper mapper(mesh);
    std::vector<DieId> ring{mesh.dieAt(0, 0), mesh.dieAt(0, 1),
                            mesh.dieAt(0, 2), mesh.dieAt(0, 3),
                            mesh.dieAt(1, 3), mesh.dieAt(1, 2),
                            mesh.dieAt(1, 1), mesh.dieAt(1, 0)};
    const RingInfo info = mapper.analyzeRing(ring);
    EXPECT_TRUE(info.physical_ring);
    EXPECT_EQ(info.max_hop, 1);
}

TEST(ChainMapper, OrderAsChainRecoversSnakeOnBlock)
{
    MeshTopology mesh(4, 8);
    ChainMapper mapper(mesh);
    // A scrambled 2x4 block.
    std::vector<DieId> dies{mesh.dieAt(1, 2), mesh.dieAt(0, 0),
                            mesh.dieAt(1, 0), mesh.dieAt(0, 3),
                            mesh.dieAt(1, 3), mesh.dieAt(0, 1),
                            mesh.dieAt(1, 1), mesh.dieAt(0, 2)};
    const auto ordered = mapper.orderAsChain(dies);
    const ChainInfo info = mapper.analyzeChain(ordered);
    EXPECT_TRUE(info.contiguous) << "total hops " << info.total_hops;
}

TEST(ChainMapper, OrderAsChainImprovesScatteredGroups)
{
    MeshTopology mesh(4, 8);
    ChainMapper mapper(mesh);
    std::vector<DieId> scattered{mesh.dieAt(0, 0), mesh.dieAt(3, 7),
                                 mesh.dieAt(0, 1), mesh.dieAt(3, 6)};
    const ChainInfo naive = mapper.analyzeChain(scattered);
    const ChainInfo opt = mapper.analyzeChain(mapper.orderAsChain(scattered));
    EXPECT_LT(opt.total_hops, naive.total_hops);
}

TEST(ChainMapper, PhysicalRingExistence)
{
    EXPECT_FALSE(ChainMapper::physicalRingExists(1, 8));
    EXPECT_TRUE(ChainMapper::physicalRingExists(2, 4));
    EXPECT_TRUE(ChainMapper::physicalRingExists(4, 8));
    EXPECT_FALSE(ChainMapper::physicalRingExists(3, 3));  // odd cells
    EXPECT_TRUE(ChainMapper::physicalRingExists(3, 4));
}

// ---------------------------------------------------------------------
// Executor timing.
// ---------------------------------------------------------------------

class ExecutorTest : public ::testing::Test
{
  protected:
    ExecutorTest() : mesh_(4, 8), mapper_(mesh_), exec_(hw::D2dConfig{}) {}

    ChainInfo
    contiguousChain(int n)
    {
        parallel::ParallelSpec s;
        s.tatp = n;
        parallel::GroupLayout layout(mesh_, s);
        return mapper_.analyzeChain(layout.groups(parallel::Axis::TATP)[0]);
    }

    MeshTopology mesh_;
    ChainMapper mapper_;
    TatpExecutor exec_;
};

TEST_F(ExecutorTest, ComputeBoundPassHidesCommunication)
{
    const ChainInfo chain = contiguousChain(8);
    // Huge compute per round vs. tiny transfers.
    const TatpTiming t =
        exec_.timePass(1e12, 1e6, 8, chain, hw::DieConfig{}.peak_flops);
    // Only the one-time pipeline fill separates total from compute.
    EXPECT_NEAR(t.time_s, t.comp_time_s, 0.01 * t.comp_time_s);
    EXPECT_DOUBLE_EQ(t.exposed_comm_s, 0.0);
    EXPECT_NEAR(t.overlap_efficiency, 1.0, 0.01);
}

TEST_F(ExecutorTest, CommBoundPassExposesTransferTime)
{
    const ChainInfo chain = contiguousChain(8);
    const TatpTiming t =
        exec_.timePass(1e6, 256e6, 8, chain, hw::DieConfig{}.peak_flops);
    EXPECT_GT(t.exposed_comm_s, 0.0);
    // Total = per-round transfers plus the one-time fill.
    EXPECT_GE(t.time_s, t.comm_time_s);
    EXPECT_LE(t.time_s, 1.2 * t.comm_time_s);
    EXPECT_LT(t.overlap_efficiency, 0.1);
}

TEST_F(ExecutorTest, NonContiguousChainAddsTailLatency)
{
    MeshTopology mesh(4, 8);
    ChainMapper mapper(mesh);
    std::vector<DieId> tetris{mesh.dieAt(0, 0), mesh.dieAt(0, 2),
                              mesh.dieAt(2, 2), mesh.dieAt(2, 4),
                              mesh.dieAt(0, 4), mesh.dieAt(0, 6),
                              mesh.dieAt(2, 6), mesh.dieAt(3, 7)};
    const ChainInfo bad = mapper.analyzeChain(tetris);
    ASSERT_FALSE(bad.contiguous);
    const ChainInfo good = contiguousChain(8);

    const TatpTiming t_bad =
        exec_.timePass(1e6, 64e6, 8, bad, hw::DieConfig{}.peak_flops);
    const TatpTiming t_good =
        exec_.timePass(1e6, 64e6, 8, good, hw::DieConfig{}.peak_flops);
    EXPECT_GT(t_bad.time_s, t_good.time_s);
    EXPECT_GT(t_bad.tail_latency_s, 0.0);
    EXPECT_DOUBLE_EQ(t_good.tail_latency_s, 0.0);
}

TEST_F(ExecutorTest, NaiveRingWrapDominatesOnChain)
{
    // Comm-bound regime: the naive ring on a 1 x 8 chain pays ~7x the
    // per-round transfer time of the bidirectional orchestration.
    MeshTopology line(1, 8);
    ChainMapper mapper(line);
    std::vector<DieId> dies{0, 1, 2, 3, 4, 5, 6, 7};
    const RingInfo ring = mapper.analyzeRing(dies);
    const ChainInfo chain = mapper.analyzeChain(dies);

    const double flops = 1e6;  // negligible compute
    const TatpTiming naive = exec_.timeNaiveRingPass(
        flops, 64e6, 8, ring, hw::DieConfig{}.peak_flops);
    const TatpTiming tatp =
        exec_.timePass(flops, 64e6, 8, chain, hw::DieConfig{}.peak_flops);
    // Naive pays the 7-hop wrap store-and-forward every round; the
    // bidirectional relay streams 1-hop transfers (latency pipelined).
    EXPECT_GT(naive.time_s / tatp.time_s, 5.5);
    EXPECT_LT(naive.time_s / tatp.time_s, 8.0);
}

TEST_F(ExecutorTest, SmallMessagesLoseBandwidthEfficiency)
{
    // Sec. III-B: D2D links need tens-of-MB transfers for peak
    // efficiency; over-fragmented streams fall off the bandwidth curve.
    const double big = 64e6;
    const double small = 1e6;
    const double t_big = exec_.hopTransferTime(big, 1);
    const double t_small = exec_.hopTransferTime(small, 1);
    // Per-byte cost of the small message is several times worse than
    // the big one's: fragmentation wastes link efficiency.
    EXPECT_GT((t_small / small) / (t_big / big), 5.0);
}

TEST_F(ExecutorTest, StreamFlowsMatchOrchestratorSchedule)
{
    parallel::ParallelSpec s;
    s.tatp = 4;
    s.dp = 2;
    parallel::GroupLayout layout(mesh_, s);
    net::Router router(mesh_);

    parallel::TatpStream stream;
    stream.active = true;
    stream.degree = 4;
    stream.bytes_per_round = 1e6;

    std::vector<ChainInfo> chains;
    for (const auto &group : layout.groups(parallel::Axis::TATP))
        chains.push_back(mapper_.analyzeChain(group));

    const net::CommSchedule sched =
        exec_.streamFlows(stream, chains, router, false);
    ASSERT_EQ(sched.roundCount(), 4);
    // Each flow is 1 hop (contiguous chains from the layout).
    for (const net::Flow &f : sched.flows())
        EXPECT_EQ(f.route.hops(), 1);
    // Backward doubles per-round bytes.
    const net::CommSchedule bwd =
        exec_.streamFlows(stream, chains, router, true);
    EXPECT_DOUBLE_EQ(bwd.round(0)[0].bytes,
                     2.0 * sched.round(0)[0].bytes);
}

TEST_F(ExecutorTest, LinkBytesScaleQuadratically)
{
    // Relay waves move N(N-1) sub-tensors across the fabric.
    const ChainInfo c4 = contiguousChain(4);
    const ChainInfo c8 = contiguousChain(8);
    const TatpTiming t4 = exec_.timePass(1e9, 1e6, 4, c4, 1e15);
    const TatpTiming t8 = exec_.timePass(1e9, 1e6, 8, c8, 1e15);
    EXPECT_NEAR(t4.link_bytes, 1e6 * 4 * 3, 1.0);
    EXPECT_NEAR(t8.link_bytes, 1e6 * 8 * 7, 1.0);
}

}  // namespace
}  // namespace temp::tatp
