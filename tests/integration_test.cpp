/**
 * @file
 * Cross-module integration and property tests: conservation laws that
 * must hold for every spec (work, parameters), simulator monotonicity,
 * baseline-family structure, fault-aware layout, and the
 * surrogate-driven solver.
 */
#include <gtest/gtest.h>

#include "baselines/strategies.hpp"
#include "core/framework.hpp"
#include "eval/surrogate_evaluator.hpp"

namespace temp {
namespace {

using parallel::ParallelSpec;

ParallelSpec
spec(int dp, int tp, int sp, int tatp, int fsdp = 1, int cp = 1)
{
    ParallelSpec s;
    s.dp = dp;
    s.tp = tp;
    s.sp = sp;
    s.tatp = tatp;
    s.fsdp = fsdp;
    s.cp = cp;
    return s;
}

/// Representative spec sweep used by the property tests.
std::vector<ParallelSpec>
specSweep()
{
    return {
        spec(32, 1, 1, 1), spec(1, 1, 1, 32), spec(4, 1, 1, 8),
        spec(1, 8, 1, 4),  spec(2, 2, 2, 4),  spec(1, 1, 1, 4, 8),
        spec(2, 1, 1, 8, 1, 2),
    };
}

// ---------------------------------------------------------------------
// Conservation properties of the unified representation.
// ---------------------------------------------------------------------

sim::PerfReport
simResult(const sim::TrainingSimulator &sim, const ParallelSpec &s)
{
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));
    return sim.simulate(graph, s);
}

class ConservationTest : public ::testing::TestWithParam<int>
{
  protected:
    ConservationTest()
        : mesh_(4, 8),
          graph_(model::ComputeGraph::transformer(
              model::modelByName("GPT-3 6.7B")))
    {
    }

    hw::MeshTopology mesh_;
    model::ComputeGraph graph_;
};

TEST_P(ConservationTest, GemmWorkIsConservedAcrossDies)
{
    // Sum of per-die FLOPs over all active dies equals the operator's
    // total FLOPs for GEMM-family ops (no work is lost or duplicated),
    // for every parallel spec.
    const ParallelSpec s = specSweep()[GetParam()];
    parallel::GroupLayout layout(mesh_, s);
    parallel::Partitioner part;
    for (const model::Operator &op : graph_.ops()) {
        if (!op.isGemm())
            continue;
        const parallel::OpExecution exec = part.analyze(op, layout);
        EXPECT_NEAR(exec.fwd_flops_per_die * layout.usedDies(),
                    op.forwardFlops(), op.forwardFlops() * 1e-9)
            << op.name << " under " << s.str();
    }
}

TEST_P(ConservationTest, ParameterStateIsNeverLost)
{
    // Per-die weight bytes x weight shards == full weights: sharding
    // partitions, replication multiplies, but nothing disappears.
    const ParallelSpec s = specSweep()[GetParam()];
    parallel::GroupLayout layout(mesh_, s);
    parallel::Partitioner part;
    const double shards = s.tp * s.tatp * s.fsdp;
    for (const model::Operator &op : graph_.ops()) {
        if (!op.has_weight)
            continue;
        const parallel::OpExecution exec = part.analyze(op, layout);
        EXPECT_NEAR(exec.weight_bytes * shards, op.weightBytes(),
                    op.weightBytes() * 1e-9)
            << op.name << " under " << s.str();
    }
}

TEST_P(ConservationTest, SimulatedFlopsMatchModelTotals)
{
    // The simulator's reported useful FLOPs equal the graph's training
    // FLOPs (x accumulation handled internally, recompute adds more).
    const ParallelSpec s = specSweep()[GetParam()];
    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    sim::TrainingSimulator sim(
        wafer, tcme::MappingPolicy{tcme::MappingEngineKind::TCME});
    const sim::PerfReport r = simResult(sim, s);
    if (!r.feasible)
        GTEST_SKIP();
    const double expected = graph_.totalTrainingFlops();
    const double factor = r.recompute ? 4.0 / 3.0 : 1.0;
    EXPECT_NEAR(r.total_flops, expected * factor, expected * 0.02)
        << s.str();
}

INSTANTIATE_TEST_SUITE_P(Specs, ConservationTest,
                         ::testing::Range(0, 7));

// ---------------------------------------------------------------------
// Simulator monotonicity.
// ---------------------------------------------------------------------

TEST(SimulatorProperty, MoreLayersCostMoreTime)
{
    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    sim::TrainingSimulator sim(
        wafer, tcme::MappingPolicy{tcme::MappingEngineKind::TCME});
    auto small_cfg = model::modelByName("GPT-3 6.7B");
    auto big_cfg = small_cfg;
    big_cfg.layers *= 2;
    const auto s = spec(4, 1, 1, 8);
    const auto small = sim.simulate(
        model::ComputeGraph::transformer(small_cfg), s);
    const auto big =
        sim.simulate(model::ComputeGraph::transformer(big_cfg), s);
    EXPECT_NEAR(big.step_time / small.step_time, 2.0, 0.1);
}

TEST(SimulatorProperty, BiggerBatchCostsMoreTime)
{
    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    sim::TrainingSimulator sim(
        wafer, tcme::MappingPolicy{tcme::MappingEngineKind::TCME});
    const auto base = model::modelByName("GPT-3 6.7B");
    const auto s = spec(4, 1, 1, 8);
    const auto b64 = sim.simulate(
        model::ComputeGraph::transformer(base.withSeqBatch(2048, 64)), s);
    const auto b128 = sim.simulate(
        model::ComputeGraph::transformer(base.withSeqBatch(2048, 128)),
        s);
    EXPECT_GT(b128.step_time, b64.step_time);
    // Throughput (tokens/s) should not degrade with batch.
    EXPECT_GE(b128.throughput_tokens_per_s,
              0.9 * b64.throughput_tokens_per_s);
}

TEST(SimulatorProperty, FasterLinksNeverHurt)
{
    hw::WaferConfig slow_cfg = hw::WaferConfig::paperDefault();
    slow_cfg.d2d.bandwidth_bytes_per_s /= 8.0;
    hw::Wafer fast(hw::WaferConfig::paperDefault());
    hw::Wafer slow(slow_cfg);
    sim::TrainingSimulator fast_sim(
        fast, tcme::MappingPolicy{tcme::MappingEngineKind::TCME});
    sim::TrainingSimulator slow_sim(
        slow, tcme::MappingPolicy{tcme::MappingEngineKind::TCME});
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));
    for (const auto &s : {spec(1, 8, 1, 4), spec(1, 1, 1, 32)}) {
        const auto f = fast_sim.simulate(graph, s);
        const auto sl = slow_sim.simulate(graph, s);
        EXPECT_LE(f.step_time, sl.step_time * 1.0001) << s.str();
    }
}

// ---------------------------------------------------------------------
// Baseline families.
// ---------------------------------------------------------------------

TEST(Baselines, FamilyStructuresMatchTheirPapers)
{
    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    sim::TrainingSimulator sim(
        wafer, tcme::MappingPolicy{tcme::MappingEngineKind::SMap});
    baselines::BaselineGenerator gen(sim);
    const auto model = model::modelByName("GPT-3 175B");

    for (const auto &s : gen.candidateFamily(
             baselines::BaselineKind::Megatron1, model)) {
        EXPECT_EQ(s.tatp, 1);
        EXPECT_EQ(s.sp, 1);
        EXPECT_EQ(s.cp, 1);
        EXPECT_EQ(s.fsdp, 1);
        EXPECT_LE(s.tp, 8);  // NVLink-era cap
    }
    for (const auto &s : gen.candidateFamily(
             baselines::BaselineKind::MegatronSP, model)) {
        EXPECT_EQ(s.tatp, 1);
        EXPECT_EQ(s.coupled_sp, s.tp > 1);
        EXPECT_LE(s.tp, 32);
    }
    for (const auto &s :
         gen.candidateFamily(baselines::BaselineKind::Fsdp, model)) {
        EXPECT_EQ(s.tatp, 1);
        EXPECT_EQ(s.tp, 1);
        EXPECT_EQ(s.dp, 1);
        EXPECT_GE(s.fsdp, 1);
    }
}

TEST(Baselines, Names)
{
    EXPECT_STREQ(baselines::baselineName(
                     baselines::BaselineKind::Megatron1),
                 "Mega");
    EXPECT_STREQ(baselines::baselineName(
                     baselines::BaselineKind::MegatronSP),
                 "MeSP");
    EXPECT_STREQ(baselines::baselineName(baselines::BaselineKind::Fsdp),
                 "FSDP");
}

// ---------------------------------------------------------------------
// Fault-aware layout and solving.
// ---------------------------------------------------------------------

TEST(FaultAware, UsableDiesExcludesStrandedComponent)
{
    hw::WaferConfig config = hw::WaferConfig::paperDefault();
    hw::FaultMap faults(32, 0);
    hw::Wafer probe(config);
    const auto &mesh = probe.topology();
    // Cut off the left 4x2 block.
    for (int r = 0; r < 4; ++r) {
        faults.failLink(mesh.linkId(mesh.dieAt(r, 1), mesh.dieAt(r, 2)));
        faults.failLink(mesh.linkId(mesh.dieAt(r, 2), mesh.dieAt(r, 1)));
    }
    hw::Wafer wafer(config, faults);
    EXPECT_EQ(wafer.usableDieCount(), 24);
    for (hw::DieId die : wafer.usableDies())
        EXPECT_GE(mesh.coordOf(die).col, 2);
}

TEST(FaultAware, DeadDiesExcluded)
{
    hw::WaferConfig config = hw::WaferConfig::paperDefault();
    hw::FaultMap faults(32, 0);
    faults.setCoreFaultFraction(5, 1.0);  // fully dead die
    hw::Wafer wafer(config, faults);
    EXPECT_EQ(wafer.usableDieCount(), 31);
}

TEST(FaultAware, SolverCoversSurvivingDies)
{
    hw::FaultMap faults(32, 0);
    faults.setCoreFaultFraction(31, 1.0);
    core::TempFramework fw(hw::WaferConfig::paperDefault());
    const auto result = fw.optimizeWithFaults(
        model::modelByName("GPT-3 6.7B"), faults);
    ASSERT_TRUE(result.feasible);
    // With 31 usable dies, dense-DP enumeration still covers > half.
    for (const auto &s : result.per_op_specs)
        EXPECT_GT(s.totalDegree(), 15);
}

// ---------------------------------------------------------------------
// Surrogate-driven search.
// ---------------------------------------------------------------------

TEST(SurrogateSearch, FeaturesDistinguishSpecs)
{
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));
    const auto f1 = eval::OpCostSurrogate::features(graph.op(1),
                                                      spec(4, 1, 1, 8));
    const auto f2 = eval::OpCostSurrogate::features(graph.op(1),
                                                      spec(1, 8, 1, 4));
    EXPECT_EQ(f1.size(), f2.size());
    EXPECT_NE(f1, f2);
}

TEST(SurrogateSearch, SolverWithSurrogateFindsFeasiblePlan)
{
    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    sim::TrainingSimulator sim(
        wafer, tcme::MappingPolicy{tcme::MappingEngineKind::TCME});
    solver::SolverConfig cfg;
    cfg.use_surrogate = true;
    cfg.surrogate_sample_fraction = 0.3;
    solver::DlsSolver solver(sim, cfg);
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));
    const auto result = solver.solve(graph);
    ASSERT_TRUE(result.feasible);
    EXPECT_FALSE(result.report.oom);
    // Fewer exact measurements than the full matrix.
    EXPECT_LT(result.matrix_measurements,
              static_cast<long>(graph.opCount()) *
                  result.candidate_count);

    // Quality within 15% of the exact search.
    solver::SolverConfig exact_cfg;
    const auto exact =
        solver::DlsSolver(sim, exact_cfg).solve(graph);
    ASSERT_TRUE(exact.feasible);
    EXPECT_LE(result.step_time_s, exact.step_time_s * 1.15);
}

}  // namespace
}  // namespace temp
