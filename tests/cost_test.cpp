/**
 * @file
 * Unit tests for the cost module: compute roofline, power model, the
 * wafer cost model (Eqs. 2-4) and the learned surrogates.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "cost/cost_model.hpp"
#include "cost/mlp.hpp"
#include "cost/power_model.hpp"
#include "cost/surrogate.hpp"
#include "model/graph.hpp"
#include "model/model_zoo.hpp"

namespace temp::cost {
namespace {

using parallel::ParallelSpec;

ParallelSpec
spec(int dp, int tp, int sp, int tatp)
{
    ParallelSpec s;
    s.dp = dp;
    s.tp = tp;
    s.sp = sp;
    s.tatp = tatp;
    return s;
}

const model::Operator &
findOp(const model::ComputeGraph &graph, const std::string &name)
{
    for (const model::Operator &op : graph.ops())
        if (op.name == name)
            return op;
    ADD_FAILURE() << "op not found: " << name;
    static model::Operator dummy;
    return dummy;
}

TEST(ComputeModel, GemmEfficiencyRampsWithSize)
{
    ComputeModel cm(hw::DieConfig{}, hw::HbmConfig{});
    EXPECT_LT(cm.gemmEfficiency(1e9), cm.gemmEfficiency(1e12));
    EXPECT_DOUBLE_EQ(cm.gemmEfficiency(1e15),
                     ComputeModel::kMaxGemmEfficiency);
    EXPECT_GE(cm.gemmEfficiency(1.0), ComputeModel::kMinGemmEfficiency);
}

TEST(ComputeModel, RooflineSwitchesBetweenComputeAndMemory)
{
    ComputeModel cm(hw::DieConfig{}, hw::HbmConfig{});
    // Compute-bound: huge FLOPs, tiny bytes.
    const double t1 = cm.opTime(1e15, 1e3, true);
    EXPECT_GT(t1, 0.5);
    // Memory-bound: tiny FLOPs, huge bytes (2 TB at ~1.84 TB/s).
    const double t2 = cm.opTime(1e6, 2e12, false);
    EXPECT_GT(t2, 1.0);
}

TEST(ComputeModel, DerateSlowsCompute)
{
    ComputeModel cm(hw::DieConfig{}, hw::HbmConfig{});
    const double full = cm.opTime(1e15, 1e3, true, 1.0);
    const double half = cm.opTime(1e15, 1e3, true, 0.5);
    EXPECT_NEAR(half / full, 2.0, 1e-9);
}

TEST(PowerModel, EnergyFollowsTableOneRatings)
{
    PowerModel pm(hw::WaferConfig::paperDefault());
    const EnergyBreakdown e = pm.stepEnergy(1e15, 1e12, 1e12);
    EXPECT_NEAR(e.compute_j, 1e15 * 0.5e-12, 1.0);  // 0.5 pJ/FLOP
    EXPECT_NEAR(e.dram_j, 1e12 * 48e-12, 1e-3);     // 6 pJ/bit
    EXPECT_NEAR(e.d2d_j, 1e12 * 40e-12, 1e-3);      // 5 pJ/bit
    EXPECT_NEAR(e.total(), e.compute_j + e.dram_j + e.d2d_j, 1e-9);
}

TEST(PowerModel, PowerEfficiencyMonotoneInEnergy)
{
    PowerModel pm(hw::WaferConfig::paperDefault());
    const EnergyBreakdown cheap = pm.stepEnergy(1e15, 1e10, 1e10);
    const EnergyBreakdown pricey = pm.stepEnergy(1e15, 1e13, 1e13);
    EXPECT_GT(pm.powerEfficiency(1e15, cheap),
              pm.powerEfficiency(1e15, pricey));
}

class CostModelTest : public ::testing::Test
{
  protected:
    CostModelTest()
        : wafer_(hw::WaferConfig::paperDefault()),
          graph_(model::ComputeGraph::transformer(
              model::modelByName("GPT-3 6.7B")))
    {
    }

    OpCostBreakdown
    cost(const std::string &op, const ParallelSpec &s,
         tcme::MappingEngineKind kind = tcme::MappingEngineKind::TCME)
    {
        WaferCostModel model(wafer_, tcme::MappingPolicy{kind});
        const parallel::GroupLayout layout = model.buildLayout(graph_, s);
        return model.opCost(findOp(graph_, op), layout);
    }

    hw::Wafer wafer_;
    model::ComputeGraph graph_;
};

TEST_F(CostModelTest, SerialOpIsPureCompute)
{
    const OpCostBreakdown c = cost("qkv", ParallelSpec::serial());
    EXPECT_TRUE(c.feasible);
    EXPECT_GT(c.comp_time, 0.0);
    EXPECT_DOUBLE_EQ(c.collective_time, 0.0);
    EXPECT_DOUBLE_EQ(c.exposed_comm, 0.0);
    EXPECT_NEAR(c.total(), c.comp_time, 1e-12);
}

TEST_F(CostModelTest, TpPaysExposedCollectives)
{
    const OpCostBreakdown c = cost("proj", spec(1, 8, 1, 1));
    EXPECT_GT(c.collective_time, 0.0);
    EXPECT_GT(c.exposed_comm, 0.0);
    EXPECT_GT(c.total(), c.comp_time);
}

TEST_F(CostModelTest, TatpOverlapsStreamWithCompute)
{
    // For a large GEMM the per-round compute dominates the one-hop
    // stream transfer: communication fully hidden (Sec. V's promise).
    const OpCostBreakdown c = cost("fc1", spec(1, 1, 1, 8));
    EXPECT_TRUE(c.feasible);
    EXPECT_GT(c.stream_comm_time, 0.0);
    EXPECT_DOUBLE_EQ(c.collective_time, 0.0);
    EXPECT_NEAR(c.exposed_comm, 0.0, 1e-9);
    EXPECT_NEAR(c.total(), c.comp_time, c.comp_time * 0.01);
}

TEST_F(CostModelTest, TatpBeatsTpOnSameDegree)
{
    // Headline comparison: same 8-way parallelism of a row-parallel
    // GEMM, TATP hides the transfer, TP exposes an all-reduce.
    const OpCostBreakdown tatp = cost("proj", spec(1, 1, 1, 8));
    const OpCostBreakdown tp = cost("proj", spec(1, 8, 1, 1));
    EXPECT_LT(tatp.total(), tp.total());
}

TEST_F(CostModelTest, SMapScattersTatpChains)
{
    // Under SMap TATP groups land outermost (strided), so stream steps
    // span multiple hops: the per-round stream communication inflates.
    const OpCostBreakdown tcme = cost("fc1", spec(2, 2, 1, 8),
                                      tcme::MappingEngineKind::TCME);
    const OpCostBreakdown smap = cost("fc1", spec(2, 2, 1, 8),
                                      tcme::MappingEngineKind::SMap);
    EXPECT_GT(smap.stream_comm_time, 1.5 * tcme.stream_comm_time);
    EXPECT_GE(smap.tail_latency, tcme.tail_latency);
}

TEST_F(CostModelTest, StepCommPartiallyOverlapped)
{
    const OpCostBreakdown c = cost("fc1", spec(4, 8, 1, 1));
    EXPECT_GT(c.step_comm_time, 0.0);
    // Exposed share is (1 - overlap) of the raw collective time.
    EXPECT_LT(WaferCostModel::kGradSyncOverlap, 1.0);
}

TEST_F(CostModelTest, EnergyCountersPopulated)
{
    const OpCostBreakdown c = cost("fc1", spec(2, 2, 1, 8));
    EXPECT_GT(c.flops, 0.0);
    EXPECT_GT(c.dram_bytes, 0.0);
    EXPECT_GT(c.d2d_link_bytes, 0.0);
}

TEST_F(CostModelTest, InterOpReshardingCost)
{
    WaferCostModel model(wafer_,
                         tcme::MappingPolicy{tcme::MappingEngineKind::TCME});
    const model::Operator &op = findOp(graph_, "qkv");
    EXPECT_DOUBLE_EQ(
        model.interOpTime(op, spec(2, 2, 1, 8), spec(2, 2, 1, 8)), 0.0);
    EXPECT_GT(model.interOpTime(op, spec(8, 1, 1, 1), spec(1, 8, 1, 1)),
              0.0);
}

TEST_F(CostModelTest, FaultPartitionMakesOpsInfeasible)
{
    // Cut the wafer into two halves: collectives spanning the cut can't
    // route and the op becomes infeasible.
    hw::WaferConfig config = hw::WaferConfig::paperDefault();
    hw::Wafer broken(config);
    hw::FaultMap faults(broken.dieCount(),
                        broken.topology().linkCount());
    const auto &mesh = broken.topology();
    for (int r = 0; r < mesh.rows(); ++r) {
        faults.failLink(mesh.linkId(mesh.dieAt(r, 3), mesh.dieAt(r, 4)));
        faults.failLink(mesh.linkId(mesh.dieAt(r, 4), mesh.dieAt(r, 3)));
    }
    broken.setFaults(faults);

    WaferCostModel model(broken,
                         tcme::MappingPolicy{tcme::MappingEngineKind::TCME});
    const parallel::GroupLayout layout =
        model.buildLayout(graph_, spec(1, 32, 1, 1));
    const OpCostBreakdown c = model.opCost(findOp(graph_, "proj"), layout);
    EXPECT_FALSE(c.feasible);
}

TEST_F(CostModelTest, AxisVolumeEstimatesDriveOrdering)
{
    WaferCostModel model(wafer_,
                         tcme::MappingPolicy{tcme::MappingEngineKind::TCME});
    const tcme::AxisVolumes volumes =
        model.estimateAxisVolumes(graph_, spec(2, 2, 1, 8));
    EXPECT_GT(volumes[static_cast<std::size_t>(parallel::Axis::TP)], 0.0);
    EXPECT_GT(volumes[static_cast<std::size_t>(parallel::Axis::TATP)], 0.0);
    EXPECT_GT(volumes[static_cast<std::size_t>(parallel::Axis::DP)], 0.0);
    EXPECT_DOUBLE_EQ(volumes[static_cast<std::size_t>(parallel::Axis::CP)],
                     0.0);
}

TEST(Mlp, LearnsLinearFunction)
{
    Rng rng(3);
    Mlp mlp({2, 16, 1}, rng);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 64; ++i) {
        const double a = rng.uniformReal(-1, 1);
        const double b = rng.uniformReal(-1, 1);
        xs.push_back({a, b});
        ys.push_back(3.0 * a - 2.0 * b + 0.5);
    }
    const double mse = mlp.train(xs, ys, 800, 1e-2);
    EXPECT_LT(mse, 1e-3);
    EXPECT_NEAR(mlp.predictScalar({0.5, 0.5}), 1.0, 0.1);
}

TEST(Mlp, LearnsNonlinearFunction)
{
    Rng rng(5);
    Mlp mlp({1, 24, 24, 1}, rng);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (int i = 0; i < 100; ++i) {
        const double x = rng.uniformReal(-2, 2);
        xs.push_back({x});
        ys.push_back(x * x);
    }
    mlp.train(xs, ys, 1500, 1e-2);
    EXPECT_NEAR(mlp.predictScalar({1.0}), 1.0, 0.2);
    EXPECT_NEAR(mlp.predictScalar({-1.5}), 2.25, 0.4);
}

TEST(Surrogate, DatasetGeneratorProducesFiniteSamples)
{
    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    CostDatasetGenerator gen(wafer);
    Rng rng(11);
    for (CostTargetKind kind :
         {CostTargetKind::Computation, CostTargetKind::Communication,
          CostTargetKind::Overlap}) {
        const auto samples = gen.generate(kind, 50, rng);
        ASSERT_EQ(samples.size(), 50u);
        for (const CostSample &s : samples) {
            EXPECT_TRUE(std::isfinite(s.latency_s));
            EXPECT_GT(s.latency_s, 0.0);
            EXPECT_FALSE(s.features.empty());
        }
    }
}

TEST(Surrogate, DnnBeatsLinearBaseline)
{
    // The Fig. 21 shape: DNN correlation > linear, DNN error < linear.
    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    CostDatasetGenerator gen(wafer);
    Rng rng(13);
    const auto train = gen.generate(CostTargetKind::Computation, 200, rng);
    const auto test = gen.generate(CostTargetKind::Computation, 80, rng);

    DnnCostModel dnn(17);
    dnn.epochs = 800;  // shortened for test runtime
    dnn.fit(train);
    LinearCostModel linear;
    linear.fit(train);

    const FidelityReport dnn_report = evaluatePredictor(dnn, test);
    const FidelityReport lin_report = evaluatePredictor(linear, test);
    EXPECT_GT(dnn_report.correlation, 0.95);
    EXPECT_LT(dnn_report.mape, lin_report.mape);
}

}  // namespace
}  // namespace temp::cost
