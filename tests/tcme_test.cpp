/**
 * @file
 * Unit tests for TCME: the traffic-conscious communication optimizer
 * (Fig. 11) and the mapping-engine policies.
 */
#include <gtest/gtest.h>

#include "hw/topology.hpp"
#include "net/collective.hpp"
#include "net/contention.hpp"
#include "net/route.hpp"
#include "tcme/mapping_policy.hpp"
#include "tcme/optimizer.hpp"

namespace temp::tcme {
namespace {

using hw::DieId;
using hw::MeshTopology;
using net::Flow;
using parallel::Axis;

Flow
makeFlow(const net::Router &router, DieId src, DieId dst, double bytes,
         int tag = 0)
{
    Flow f;
    f.src = src;
    f.dst = dst;
    f.bytes = bytes;
    f.route = router.route(src, dst);
    f.tag = tag;
    return f;
}

TEST(Optimizer, ReroutesContendingFlowsOntoIdleLinks)
{
    // The Fig. 5(b) scenario on a 2 x 4 mesh: two flows forced through
    // link 1->2 by XY routing while the second row sits idle.
    MeshTopology mesh(2, 4);
    net::Router router(mesh);
    TrafficOptimizer opt(router);

    std::vector<Flow> flows;
    flows.push_back(makeFlow(router, mesh.dieAt(0, 0), mesh.dieAt(0, 2),
                             1e9, 1));
    flows.push_back(makeFlow(router, mesh.dieAt(0, 1), mesh.dieAt(0, 3),
                             1e9, 2));

    const OptimizationStats stats = opt.optimizePhase(flows);
    EXPECT_DOUBLE_EQ(stats.initial_max_load, 2e9);
    EXPECT_LT(stats.final_max_load, 2e9);
    EXPECT_GE(stats.reroutes, 1);
    EXPECT_GE(stats.improvement(), 1.9);

    // Verify with the contention model: the optimized phase is faster.
    net::ContentionModel model(mesh, 4e12, 0.0);
    EXPECT_NEAR(model.evaluate(flows).time_s, 1e9 / 4e12, 1e-9);
}

TEST(Optimizer, MergesDuplicatePayloadsIntoMulticast)
{
    // One source sends the same payload to three dies down a line; the
    // unicasts pile 3x the load on the first link. Merging folds them
    // into a tree with one copy per link.
    MeshTopology mesh(1, 4);
    net::Router router(mesh);
    TrafficOptimizer opt(router);

    std::vector<Flow> flows;
    for (DieId dst : {1, 2, 3})
        flows.push_back(makeFlow(router, 0, dst, 1e9, 7));

    const OptimizationStats stats = opt.optimizePhase(flows);
    EXPECT_GE(stats.merges, 1);
    EXPECT_DOUBLE_EQ(stats.initial_max_load, 3e9);
    EXPECT_DOUBLE_EQ(stats.final_max_load, 1e9);
    // Tree has 3 links, each carrying the payload once.
    EXPECT_EQ(flows.size(), 3u);
    for (const Flow &f : flows)
        EXPECT_EQ(f.route.hops(), 1);
}

TEST(Optimizer, LeavesContentionFreePhasesAlone)
{
    MeshTopology mesh(2, 4);
    net::Router router(mesh);
    TrafficOptimizer opt(router);
    std::vector<Flow> flows;
    flows.push_back(makeFlow(router, mesh.dieAt(0, 0), mesh.dieAt(0, 1),
                             1e9, 1));
    flows.push_back(makeFlow(router, mesh.dieAt(1, 0), mesh.dieAt(1, 1),
                             1e9, 2));
    const OptimizationStats stats = opt.optimizePhase(flows);
    EXPECT_EQ(stats.reroutes, 0);
    EXPECT_DOUBLE_EQ(stats.final_max_load, stats.initial_max_load);
}

TEST(Optimizer, RespectsDisabledFeatures)
{
    MeshTopology mesh(1, 4);
    net::Router router(mesh);
    TrafficOptimizer::Config config;
    config.enable_merging = false;
    config.enable_rerouting = false;
    TrafficOptimizer opt(router, config);

    std::vector<Flow> flows;
    for (DieId dst : {1, 2, 3})
        flows.push_back(makeFlow(router, 0, dst, 1e9, 7));
    const OptimizationStats stats = opt.optimizePhase(flows);
    EXPECT_EQ(stats.merges, 0);
    EXPECT_EQ(stats.reroutes, 0);
    EXPECT_DOUBLE_EQ(stats.final_max_load, stats.initial_max_load);
}

TEST(Optimizer, OptimizesWholeSchedules)
{
    MeshTopology mesh(2, 4);
    net::Router router(mesh);
    TrafficOptimizer opt(router);
    net::CommSchedule sched;
    for (int r = 0; r < 2; ++r) {
        sched.addFlow(
            makeFlow(router, mesh.dieAt(0, 0), mesh.dieAt(0, 2), 1e9, 1));
        sched.addFlow(
            makeFlow(router, mesh.dieAt(0, 1), mesh.dieAt(0, 3), 1e9, 2));
        sched.sealRound();
    }
    const OptimizationStats stats = opt.optimize(sched);
    EXPECT_EQ(stats.phases, 2);
    EXPECT_LT(stats.final_max_load, stats.initial_max_load);
}

TEST(Optimizer, EmptyPhaseIsNoop)
{
    MeshTopology mesh(2, 2);
    net::Router router(mesh);
    TrafficOptimizer opt(router);
    std::vector<Flow> flows;
    const OptimizationStats stats = opt.optimizePhase(flows);
    EXPECT_DOUBLE_EQ(stats.initial_max_load, 0.0);
    EXPECT_EQ(stats.iterations, 0);
}

TEST(Policy, SMapOrderIsFixed)
{
    const auto order = MappingPolicy::smapOrder();
    ASSERT_EQ(order.size(), static_cast<std::size_t>(Axis::Count));
    EXPECT_EQ(order.front(), Axis::DP);
    EXPECT_EQ(order.back(), Axis::TATP);
}

TEST(Policy, GMapOrdersByVolume)
{
    AxisVolumes volumes{};
    volumes[static_cast<std::size_t>(Axis::TP)] = 100.0;
    volumes[static_cast<std::size_t>(Axis::DP)] = 10.0;
    const auto order = MappingPolicy::gmapOrder(volumes);
    EXPECT_EQ(order.front(), Axis::TP);
}

TEST(Policy, TcmePinsTatpInnermost)
{
    AxisVolumes volumes{};
    volumes[static_cast<std::size_t>(Axis::TP)] = 1e12;
    volumes[static_cast<std::size_t>(Axis::TATP)] = 1.0;
    const auto order = MappingPolicy::tcmeOrder(volumes);
    EXPECT_EQ(order.front(), Axis::TATP);
    EXPECT_EQ(order[1], Axis::TP);
    ASSERT_EQ(order.size(), static_cast<std::size_t>(Axis::Count));
}

TEST(Policy, ContentionOptOnlyForTcme)
{
    EXPECT_TRUE(MappingPolicy{MappingEngineKind::TCME}
                    .contentionOptimization());
    EXPECT_FALSE(MappingPolicy{MappingEngineKind::SMap}
                     .contentionOptimization());
    EXPECT_FALSE(MappingPolicy{MappingEngineKind::GMap}
                     .contentionOptimization());
}

TEST(Policy, EngineNames)
{
    EXPECT_STREQ(mappingEngineName(MappingEngineKind::SMap), "SMap");
    EXPECT_STREQ(mappingEngineName(MappingEngineKind::TCME), "TCME");
}

}  // namespace
}  // namespace temp::tcme
