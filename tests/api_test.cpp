/**
 * @file
 * Tests for the service API layer: request round-trips vs direct
 * TempFramework calls (bit-identical results), framework-cache reuse
 * (a repeated request is served entirely from the shared evaluator —
 * zero new matrix measurements), concurrent submit() of mixed request
 * kinds, error responses for invalid requests, and JSON output being
 * parseable and stable.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <future>
#include <stdexcept>
#include <vector>

#include "api/serialize.hpp"
#include "api/service.hpp"
#include "core/config_io.hpp"

namespace temp::api {
namespace {

/// A fast solver configuration for test-sized searches.
core::FrameworkOptions
fastOptions()
{
    core::FrameworkOptions options;
    options.solver.ga_population = 8;
    options.solver.ga_generations = 4;
    options.eval_threads = 2;
    return options;
}

model::ModelConfig
testModel()
{
    return model::modelByName("GPT-3 6.7B");
}

// ---------------------------------------------------------------
// Minimal recursive-descent JSON validator (value grammar only) so
// tests can assert CLI/serialize output is well-formed without an
// external JSON dependency.
// ---------------------------------------------------------------
class JsonValidator
{
  public:
    explicit JsonValidator(const std::string &text) : text_(text) {}

    bool valid()
    {
        pos_ = 0;
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    bool value()
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
        case '{': return object();
        case '[': return array();
        case '"': return string();
        case 't': return literal("true");
        case 'f': return literal("false");
        case 'n': return literal("null");
        default: return number();
        }
    }

    bool object()
    {
        ++pos_;  // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool array()
    {
        ++pos_;  // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_;  // closing quote
        return true;
    }

    bool number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool literal(const char *word)
    {
        const std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    char peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

TEST(ApiService, OptimizeRoundTripsBitIdenticalToDirectFramework)
{
    const model::ModelConfig model = testModel();
    const hw::WaferConfig wafer = hw::WaferConfig::paperDefault();
    const core::FrameworkOptions options = fastOptions();

    const core::TempFramework direct(wafer, options);
    const solver::SolverResult expected = direct.optimize(model);

    TempService service;
    const Response response =
        service.run(OptimizeRequest{model, wafer, options});

    ASSERT_TRUE(response.ok);
    ASSERT_TRUE(response.solver.feasible);
    ASSERT_EQ(response.solver.per_op_specs.size(),
              expected.per_op_specs.size());
    for (std::size_t i = 0; i < expected.per_op_specs.size(); ++i)
        EXPECT_EQ(response.solver.per_op_specs[i],
                  expected.per_op_specs[i])
            << "op " << i;
    EXPECT_DOUBLE_EQ(response.solver.step_time_s, expected.step_time_s);
    EXPECT_EQ(response.solver.evaluations, expected.evaluations);
    EXPECT_EQ(response.op_names.size(),
              response.solver.per_op_specs.size());
    EXPECT_FALSE(response.framework_reused);
    EXPECT_GT(response.wall_time_s, 0.0);
}

TEST(ApiService, StrategyAndBaselineMatchDirectCalls)
{
    const model::ModelConfig model = testModel();
    const hw::WaferConfig wafer = hw::WaferConfig::paperDefault();
    const core::FrameworkOptions options = fastOptions();
    const core::TempFramework direct(wafer, options);
    TempService service;

    parallel::ParallelSpec spec;
    spec.dp = 4;
    spec.tatp = 8;
    const sim::PerfReport expected_report =
        direct.evaluateStrategy(model, spec);
    const Response strategy =
        service.run(StrategyRequest{model, wafer, options, spec});
    ASSERT_TRUE(strategy.ok);
    EXPECT_DOUBLE_EQ(strategy.report.step_time,
                     expected_report.step_time);
    EXPECT_DOUBLE_EQ(strategy.report.peak_mem_bytes,
                     expected_report.peak_mem_bytes);

    const baselines::TunedBaseline expected_baseline =
        direct.evaluateBaseline(baselines::BaselineKind::MegatronSP,
                                tcme::MappingEngineKind::TCME, model);
    BaselineRequest baseline_request{model, wafer, options};
    const Response baseline = service.run(baseline_request);
    ASSERT_TRUE(baseline.ok);
    EXPECT_EQ(baseline.baseline.spec, expected_baseline.spec);
    EXPECT_DOUBLE_EQ(baseline.baseline.report.step_time,
                     expected_baseline.report.step_time);
}

TEST(ApiService, RepeatedOptimizeIsServedEntirelyFromEvaluatorCache)
{
    TempService service;
    const OptimizeRequest request{testModel(),
                                  hw::WaferConfig::paperDefault(),
                                  fastOptions()};

    const Response first = service.run(request);
    ASSERT_TRUE(first.ok);
    EXPECT_FALSE(first.framework_reused);
    EXPECT_GT(first.solver.matrix_measurements, 0);

    const Response repeat = service.run(request);
    ASSERT_TRUE(repeat.ok);
    EXPECT_TRUE(repeat.framework_reused);
    // The acceptance bar: the repeat performs ZERO new matrix
    // measurements — every cell is a hit on the shared evaluator.
    EXPECT_EQ(repeat.solver.matrix_measurements, 0);
    EXPECT_GT(repeat.solver.cache_hits, 0);
    // ...and ZERO new full-step simulations — the refiner's fitness
    // queries are all served from the shared StepEvaluator memo.
    EXPECT_GT(first.solver.step_sims, 0);
    EXPECT_EQ(repeat.solver.step_sims, 0);
    EXPECT_GT(repeat.solver.step_cache_hits, 0);
    // ...and ZERO new collective-schedule lowerings one layer further
    // down: the network hot path re-lowers nothing either, while a
    // cold solve's lookups hit the shared ScheduleCache more than half
    // the time.
    EXPECT_GT(first.solver.schedule_lowerings, 0);
    EXPECT_GT(first.solver.schedule_cache_hits,
              first.solver.schedule_lowerings);  // >50% cold hit rate
    EXPECT_EQ(repeat.solver.schedule_lowerings, 0);
    EXPECT_GT(repeat.solver.schedule_cache_hits, 0);
    // Cumulative counters corroborate: no growth in measurements or
    // simulations, growth in hits.
    EXPECT_EQ(repeat.evaluator_stats.measurements,
              first.evaluator_stats.measurements);
    EXPECT_GT(repeat.evaluator_stats.cache_hits,
              first.evaluator_stats.cache_hits);
    EXPECT_EQ(repeat.step_stats.sims, first.step_stats.sims);
    EXPECT_GT(repeat.step_stats.cache_hits,
              first.step_stats.cache_hits);
    // And the answers are identical.
    EXPECT_EQ(repeat.solver.per_op_specs, first.solver.per_op_specs);
    EXPECT_DOUBLE_EQ(repeat.solver.step_time_s,
                     first.solver.step_time_s);

    const TempService::Stats stats = service.stats();
    EXPECT_EQ(stats.frameworks_built, 1);
    EXPECT_EQ(stats.framework_cache_hits, 1);
    EXPECT_EQ(stats.requests, 2);
}

TEST(ApiService, DifferentOptionsGetDistinctFrameworks)
{
    TempService service;
    OptimizeRequest request{testModel(),
                            hw::WaferConfig::paperDefault(),
                            fastOptions()};
    (void)service.run(request);
    request.options.solver.seed = 99;
    const Response other = service.run(request);
    EXPECT_FALSE(other.framework_reused);
    EXPECT_EQ(service.stats().frameworks_built, 2);
}

TEST(ApiService, SearchEngineSelectionRoundTripsThroughService)
{
    // Engine selection is part of the framework cache key and of the
    // solve: each engine gets its own framework, every engine returns
    // a feasible plan, and the NoRefine plan matches the legacy
    // enable_ga=false switch bit-for-bit.
    TempService service;
    OptimizeRequest request{testModel(),
                            hw::WaferConfig::paperDefault(),
                            fastOptions()};
    request.options.solver.annealing.iterations = 10;

    Response by_engine[3];
    const solver::SearchEngineKind kinds[3] = {
        solver::SearchEngineKind::Genetic,
        solver::SearchEngineKind::NoRefine,
        solver::SearchEngineKind::Annealing};
    for (int k = 0; k < 3; ++k) {
        request.options.solver.engine = kinds[k];
        by_engine[k] = service.run(request);
        ASSERT_TRUE(by_engine[k].ok);
        ASSERT_TRUE(by_engine[k].solver.feasible)
            << solver::searchEngineName(kinds[k]);
        EXPECT_FALSE(by_engine[k].framework_reused);
    }
    EXPECT_EQ(service.stats().frameworks_built, 3);

    // Refining engines never do worse than the DP-only plan.
    EXPECT_LE(by_engine[0].solver.step_time_s,
              by_engine[1].solver.step_time_s * 1.0001);
    EXPECT_LE(by_engine[2].solver.step_time_s,
              by_engine[1].solver.step_time_s * 1.0001);

    request.options.solver.engine = solver::SearchEngineKind::Genetic;
    request.options.solver.enable_ga = false;  // legacy NoRefine alias
    const Response legacy = service.run(request);
    ASSERT_TRUE(legacy.ok);
    EXPECT_EQ(legacy.solver.per_op_specs,
              by_engine[1].solver.per_op_specs);
    EXPECT_DOUBLE_EQ(legacy.solver.step_time_s,
                     by_engine[1].solver.step_time_s);
}

TEST(ApiService, ConcurrentSubmitOfMixedKindsMatchesSequentialRuns)
{
    const model::ModelConfig model = testModel();
    const hw::WaferConfig wafer = hw::WaferConfig::paperDefault();
    const core::FrameworkOptions options = fastOptions();

    parallel::ParallelSpec spec;
    spec.dp = 8;
    spec.tatp = 4;

    ServiceOptions service_options;
    service_options.request_threads = 4;
    TempService service(service_options);

    std::vector<std::future<Response>> futures;
    futures.push_back(
        service.submit(OptimizeRequest{model, wafer, options}));
    futures.push_back(
        service.submit(StrategyRequest{model, wafer, options, spec}));
    futures.push_back(
        service.submit(BaselineRequest{model, wafer, options}));
    futures.push_back(
        service.submit(OptimizeRequest{model, wafer, options}));

    std::vector<Response> responses;
    for (std::future<Response> &f : futures)
        responses.push_back(f.get());
    for (const Response &r : responses)
        EXPECT_TRUE(r.ok) << r.error;

    // Both optimizes agree with each other and with a direct solve.
    const core::TempFramework direct(wafer, options);
    const solver::SolverResult expected = direct.optimize(model);
    EXPECT_EQ(responses[0].solver.per_op_specs,
              expected.per_op_specs);
    EXPECT_EQ(responses[3].solver.per_op_specs,
              expected.per_op_specs);
    EXPECT_DOUBLE_EQ(responses[0].solver.step_time_s,
                     expected.step_time_s);
    EXPECT_DOUBLE_EQ(responses[1].report.step_time,
                     direct.evaluateStrategy(model, spec).step_time);

    // All four shared one framework.
    EXPECT_EQ(service.stats().frameworks_built, 1);
    EXPECT_EQ(service.stats().framework_cache_hits, 3);
}

TEST(ApiService, InvalidRequestsReturnErrorResponsesNotAborts)
{
    TempService service;

    StrategyRequest bad_spec{testModel(),
                             hw::WaferConfig::paperDefault(),
                             fastOptions()};
    bad_spec.spec.dp = 1024;  // needs 1024 dies on a 32-die wafer
    const Response strategy = service.run(bad_spec);
    EXPECT_FALSE(strategy.ok);
    EXPECT_FALSE(strategy.error.empty());

    MultiWaferRequest bad_pp;
    bad_pp.model = testModel();
    bad_pp.pod.wafer_count = 6;
    bad_pp.pp = 5;  // neither divides nor multiplies 6 wafers
    const Response pod = service.run(bad_pp);
    EXPECT_FALSE(pod.ok);
    EXPECT_FALSE(pod.error.empty());

    // Invalid requests never built a framework or pod.
    EXPECT_EQ(service.stats().pods_built, 0);
}

TEST(ApiService, MultiWaferRequestMatchesDirectSimulator)
{
    const model::ModelConfig model = model::modelByName("GPT-3 175B");
    MultiWaferRequest request;
    request.model = model;
    request.pod.wafer_count = 2;
    request.pp = 2;
    request.microbatches = 8;
    request.intra_spec.dp = 2;
    request.intra_spec.tatp = 16;

    sim::MultiWaferSimulator direct(
        request.pod, tcme::MappingPolicy{tcme::MappingEngineKind::TCME});
    const sim::PerfReport expected = direct.simulate(
        model::ComputeGraph::transformer(model), request.intra_spec,
        request.pp, request.microbatches);

    TempService service;
    const Response response = service.run(request);
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_DOUBLE_EQ(response.report.step_time, expected.step_time);
    EXPECT_EQ(response.stage_fabric.dieCount(),
              direct.stageFabric(request.pp).dieCount());

    // The pod simulator (and its per-pp stage cache) is reused.
    const Response repeat = service.run(request);
    EXPECT_TRUE(repeat.framework_reused);
    EXPECT_EQ(service.stats().pods_built, 1);
    EXPECT_EQ(service.stats().pod_cache_hits, 1);
}

TEST(ApiJson, ResponseJsonIsParseableAndStable)
{
    TempService service;
    const OptimizeRequest request{testModel(),
                                  hw::WaferConfig::paperDefault(),
                                  fastOptions()};
    const Response response = service.run(request);

    const std::string json = toJson(response);
    EXPECT_TRUE(JsonValidator(json).valid()) << json;
    // Stable: the same response always renders byte-identically.
    EXPECT_EQ(json, toJson(response));
    // Spot-check the envelope.
    EXPECT_NE(json.find("\"kind\":\"optimize\""), std::string::npos);
    EXPECT_NE(json.find("\"matrix_measurements\":"), std::string::npos);
    EXPECT_NE(json.find("\"step_sims\":"), std::string::npos);
    EXPECT_NE(json.find("\"schedule_lowerings\":"), std::string::npos);
    EXPECT_NE(json.find("\"schedule_cache_hits\":"), std::string::npos);
    EXPECT_NE(json.find("\"step_evaluator\":{\"sims\":"),
              std::string::npos);
    EXPECT_NE(json.find("\"per_op_specs\":["), std::string::npos);
    EXPECT_NE(json.find("\"throughput_tokens_per_s\":"),
              std::string::npos);
}

TEST(ApiJson, ErrorAndKindSpecificPayloadsSerialize)
{
    TempService service;

    StrategyRequest bad{testModel(), hw::WaferConfig::paperDefault(),
                        fastOptions()};
    bad.spec.dp = 1024;
    const std::string error_json = toJson(service.run(bad));
    EXPECT_TRUE(JsonValidator(error_json).valid()) << error_json;
    EXPECT_NE(error_json.find("\"ok\":false"), std::string::npos);

    MultiWaferRequest pod;
    pod.model = model::modelByName("GPT-3 175B");
    pod.pod.wafer_count = 2;
    pod.pp = 2;
    pod.microbatches = 8;
    pod.intra_spec.dp = 2;
    pod.intra_spec.tatp = 16;
    const std::string pod_json = toJson(service.run(pod));
    EXPECT_TRUE(JsonValidator(pod_json).valid()) << pod_json;
    EXPECT_NE(pod_json.find("\"stage_fabric\":"), std::string::npos);

    BaselineRequest baseline{testModel(),
                             hw::WaferConfig::paperDefault(),
                             fastOptions()};
    const std::string baseline_json = toJson(service.run(baseline));
    EXPECT_TRUE(JsonValidator(baseline_json).valid()) << baseline_json;
    EXPECT_NE(baseline_json.find("\"all_oom\":"), std::string::npos);
}

TEST(ApiJson, EscapingAndNonFiniteNumbersAreWellFormed)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(jsonNumber(1.0 / 0.0), "null");
    EXPECT_EQ(jsonNumber(0.0 / 0.0), "null");
    const std::string json = JsonObject()
                                 .add("weird", "q\"uote\tt")
                                 .add("inf", 1e308 * 10)
                                 .str();
    EXPECT_TRUE(JsonValidator(json).valid()) << json;
}

TEST(ApiThreadPool, SubmitResolvesFuturesAndPropagatesExceptions)
{
    ThreadPool pool(3);
    std::future<int> value = pool.submit([] { return 41 + 1; });
    EXPECT_EQ(value.get(), 42);

    std::future<void> boom =
        pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(boom.get(), std::runtime_error);

    // Inline fallback on a workerless pool.
    ThreadPool inline_pool(1);
    EXPECT_EQ(inline_pool.submit([] { return 7; }).get(), 7);

    // Tasks interleave with parallelFor on the same pool.
    std::future<long> sum = pool.submit([&pool] {
        std::atomic<long> total{0};
        pool.parallelFor(100, [&](std::size_t i) {
            total += static_cast<long>(i);
        });
        return total.load();
    });
    EXPECT_EQ(sum.get(), 99L * 100 / 2);
}

}  // namespace
}  // namespace temp::api
