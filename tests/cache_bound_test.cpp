/**
 * @file
 * Cache-governance tests: LRU eviction correctness of the
 * common::LruMap/BoundedCache machinery (order, pinning, honest
 * recounting of evicted keys), bounded-vs-unbounded bit-exactness of
 * a real solve, per-layer budget enforcement observed through
 * CacheStatsRequest, the torn-snapshot regression of
 * ScheduleCache::stats() (TSan-exercised), eager epoch flushing, and
 * queue-time-aware submit() latency.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "api/serialize.hpp"
#include "api/service.hpp"
#include "common/bounded_cache.hpp"
#include "cost/cost_model.hpp"
#include "hw/wafer.hpp"
#include "model/model_zoo.hpp"
#include "net/schedule_cache.hpp"

namespace temp {
namespace {

// ---------------------------------------------------------------
// LruMap / BoundedCache unit behaviour
// ---------------------------------------------------------------

TEST(LruMap, EvictsLeastRecentlyUsedAndCountsEvictions)
{
    common::LruMap<int, int> map(2);
    map.insert(1, 10);
    map.insert(2, 20);
    ASSERT_NE(map.touch(1), nullptr);  // 1 is now most recent
    map.insert(3, 30);                 // evicts 2, the LRU entry
    EXPECT_EQ(map.size(), 2u);
    EXPECT_EQ(map.peek(2), nullptr);
    ASSERT_NE(map.peek(1), nullptr);
    EXPECT_EQ(*map.peek(1), 10);
    ASSERT_NE(map.peek(3), nullptr);
    EXPECT_EQ(map.evictions(), 1);

    // Shrinking the budget evicts immediately (keeping the MRU).
    map.setCapacity(1);
    EXPECT_EQ(map.size(), 1u);
    EXPECT_EQ(map.evictions(), 2);
}

TEST(LruMap, PinnedEntriesSurviveEvictionAndMruIsNeverDropped)
{
    common::LruMap<int, std::shared_ptr<int>> map(2);
    map.setEvictable([](const std::shared_ptr<int> &v) {
        return v.use_count() <= 1;  // pinned while a caller holds it
    });
    auto pinned_a = std::make_shared<int>(1);
    auto pinned_b = std::make_shared<int>(2);
    map.insert(1, pinned_a);
    map.insert(2, pinned_b);
    // Everything is pinned: the insert may transiently exceed the
    // budget rather than drop live data, and the freshly inserted
    // (MRU) entry is never evicted even though it is the only
    // unpinned one.
    auto [resident, inserted] = map.insert(3, std::make_shared<int>(3));
    EXPECT_TRUE(inserted);
    EXPECT_EQ(**resident, 3);  // the returned pointer stays valid
    EXPECT_EQ(map.size(), 3u);
    EXPECT_EQ(map.evictions(), 0);

    // Unpinning makes the stale entries evictable on the next insert.
    pinned_a.reset();
    pinned_b.reset();
    map.insert(4, std::make_shared<int>(4));
    EXPECT_LE(map.size(), 2u);
    EXPECT_GT(map.evictions(), 0);
}

TEST(BoundedCache, EvictedKeysRecountAsMissesHonestly)
{
    common::BoundedCache<std::string, int> cache(2);
    EXPECT_FALSE(cache.get("a").has_value());  // miss 1
    cache.insert("a", 1);
    cache.insert("b", 2);
    EXPECT_TRUE(cache.get("a").has_value());  // hit (a is now MRU)
    cache.insert("c", 3);                     // evicts b
    EXPECT_LE(cache.stats().entries, 2);
    EXPECT_EQ(cache.stats().evictions, 1);

    // The evicted key is gone and honestly recounts as a miss — the
    // cache never pretends evicted work was free.
    EXPECT_FALSE(cache.get("b").has_value());
    const common::CacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1);
    EXPECT_EQ(stats.misses, 2);  // the cold "a" probe and the re-probe
    EXPECT_GT(stats.bytes_est, 0);

    // Unbounded caches never evict.
    common::BoundedCache<std::string, int> unbounded;
    for (int i = 0; i < 100; ++i)
        unbounded.insert(std::to_string(i), i);
    EXPECT_EQ(unbounded.stats().entries, 100);
    EXPECT_EQ(unbounded.stats().evictions, 0);
}

TEST(LruMap, ByteBudgetEvictsOverBytesAndKeepsMru)
{
    common::LruMap<int, std::string> map;
    map.setByteEstimate([](const int &, const std::string &value) {
        return static_cast<long>(value.size());
    });
    map.setMaxBytes(100);

    map.insert(1, std::string(40, 'a'));
    map.insert(2, std::string(40, 'b'));
    EXPECT_EQ(map.size(), 2u);
    EXPECT_EQ(map.bytesEstimate(), 80);

    // The third 40-byte value breaks the 100-byte budget: the LRU
    // entry goes, the gauge stays honest.
    map.insert(3, std::string(40, 'c'));
    EXPECT_EQ(map.size(), 2u);
    EXPECT_EQ(map.peek(1), nullptr);
    EXPECT_LE(map.bytesEstimate(), 100);
    EXPECT_EQ(map.evictions(), 1);

    // One value larger than the whole budget: everything else is
    // evicted, but the fresh (MRU) entry itself is never dropped —
    // a budget may transiently overshoot rather than refuse work.
    map.insert(4, std::string(400, 'd'));
    EXPECT_EQ(map.size(), 1u);
    ASSERT_NE(map.peek(4), nullptr);
    EXPECT_EQ(map.bytesEstimate(), 400);

    // Shrinking the byte budget later cannot drop the lone MRU either.
    map.setMaxBytes(10);
    EXPECT_EQ(map.size(), 1u);

    // The budgets compose: a roomy byte budget with a 1-entry cap
    // still evicts down to one entry.
    map.setMaxBytes(1 << 20);
    map.insert(5, std::string(8, 'e'));
    map.setCapacity(1);
    EXPECT_EQ(map.size(), 1u);
    ASSERT_NE(map.peek(5), nullptr);  // the MRU survives
}

TEST(BoundedCache, ByteBudgetComposesWithEntryBudget)
{
    common::BoundedCache<std::string, std::string> cache;
    cache.setMaxBytes(1 << 10);
    EXPECT_TRUE(cache.bounded());  // byte budget alone bounds it

    // ~96 bytes of payload per entry (plus key overhead): a 1 KiB
    // budget holds only a handful of the 64 inserted entries.
    for (int i = 0; i < 64; ++i)
        cache.insert("key-" + std::to_string(i),
                     std::string(96, 'x'));
    common::CacheStats stats = cache.stats();
    EXPECT_LT(stats.entries, 64);
    EXPECT_GT(stats.evictions, 0);
    EXPECT_GT(stats.bytes_est, 0);

    // Evicted values recount as misses; resident ones still hit.
    EXPECT_FALSE(cache.get("key-0").has_value());
    EXPECT_TRUE(cache.get("key-63").has_value());

    // Lifting the byte budget stops further eviction pressure.
    cache.setMaxBytes(0);
    const long evictions_before = cache.stats().evictions;
    for (int i = 64; i < 96; ++i)
        cache.insert("key-" + std::to_string(i),
                     std::string(96, 'x'));
    EXPECT_EQ(cache.stats().evictions, evictions_before);
}

// ---------------------------------------------------------------
// Bounded solves: bit-exact results, budgets enforced end to end
// ---------------------------------------------------------------

core::FrameworkOptions
fastOptions()
{
    core::FrameworkOptions options;
    options.solver.ga_population = 8;
    options.solver.ga_generations = 4;
    options.eval_threads = 2;
    return options;
}

/// The issue's acceptance budget: two entries per memo layer (the
/// route pool gets room for its pinned entries — routes referenced by
/// live flows are never dropped).
common::CacheBudget
tinyBudget()
{
    common::CacheBudget budget;
    budget.max_eval_entries = 2;
    budget.max_step_entries = 2;
    budget.max_layout_entries = 2;
    budget.max_schedule_entries = 2;
    budget.max_route_entries = 1024;
    return budget;
}

TEST(CacheBound, BudgetTwoSolveIsBitIdenticalToUnbounded)
{
    const model::ModelConfig model = model::modelByName("GPT-3 6.7B");
    const hw::WaferConfig wafer = hw::WaferConfig::paperDefault();

    const core::TempFramework unbounded(wafer, fastOptions());
    const solver::SolverResult expected = unbounded.optimize(model);
    ASSERT_TRUE(expected.feasible);
    EXPECT_EQ(expected.cache_evictions, 0);  // default budgets: none

    core::FrameworkOptions bounded_options = fastOptions();
    bounded_options.cache = tinyBudget();
    const core::TempFramework bounded(wafer, bounded_options);
    const solver::SolverResult result = bounded.optimize(model);

    // Eviction changes memory residency, never answers: every cached
    // value is a pure function of its key, so recomputation is
    // bit-identical.
    ASSERT_TRUE(result.feasible);
    EXPECT_EQ(result.per_op_specs, expected.per_op_specs);
    EXPECT_DOUBLE_EQ(result.step_time_s, expected.step_time_s);
    // ...and the budget pressure is honestly visible.
    EXPECT_GT(result.cache_evictions, 0);

    // A repeat on the bounded framework re-measures evicted cells and
    // recounts them as measurements — unlike the unbounded repeat,
    // which is served entirely from the memo stack.
    const solver::SolverResult repeat = bounded.optimize(model);
    EXPECT_EQ(repeat.per_op_specs, expected.per_op_specs);
    EXPECT_DOUBLE_EQ(repeat.step_time_s, expected.step_time_s);
    EXPECT_GT(repeat.matrix_measurements, 0);
    const solver::SolverResult unbounded_repeat =
        unbounded.optimize(model);
    EXPECT_EQ(unbounded_repeat.matrix_measurements, 0);
    EXPECT_EQ(unbounded_repeat.step_sims, 0);

    // Every layer honours its budget ("layouts" aggregates the two
    // layout caches — simulator + exact evaluator — so its bound is
    // twice the per-cache budget).
    for (const auto &[layer, stats] : bounded.cacheStats()) {
        if (layer == "eval_breakdowns" || layer == "step_reports" ||
            layer == "schedules")
            EXPECT_LE(stats.entries, 2) << layer;
        else if (layer == "layouts")
            EXPECT_LE(stats.entries, 4) << layer;
        EXPECT_GE(stats.entries, 0) << layer;
    }
}

TEST(CacheBound, ByteBudgetedSolveIsBitIdenticalAndVisible)
{
    const model::ModelConfig model = model::modelByName("GPT-3 6.7B");
    const hw::WaferConfig wafer = hw::WaferConfig::paperDefault();

    const core::TempFramework unbounded(wafer, fastOptions());
    const solver::SolverResult expected = unbounded.optimize(model);
    ASSERT_TRUE(expected.feasible);

    // Byte budgets only — entry budgets stay unbounded, so every
    // eviction here is driven by the bytes_est estimators.
    core::FrameworkOptions options = fastOptions();
    options.cache.max_eval_bytes = 64 << 10;
    options.cache.max_step_bytes = 8 << 10;
    options.cache.max_layout_bytes = 64 << 10;
    options.cache.max_schedule_bytes = 32 << 10;
    const core::TempFramework bounded(wafer, options);
    const solver::SolverResult result = bounded.optimize(model);

    ASSERT_TRUE(result.feasible);
    EXPECT_EQ(result.per_op_specs, expected.per_op_specs);
    EXPECT_DOUBLE_EQ(result.step_time_s, expected.step_time_s);
    EXPECT_GT(result.cache_evictions, 0);

    // The gauges respect the budgets they were given ("layouts"
    // aggregates two caches, so its bound is twice the per-cache
    // budget; the route pool is unbudgeted here).
    for (const auto &[layer, stats] : bounded.cacheStats()) {
        if (layer == "eval_breakdowns")
            EXPECT_LE(stats.bytes_est, 64 << 10) << layer;
        else if (layer == "step_reports")
            EXPECT_LE(stats.bytes_est, 8 << 10) << layer;
        else if (layer == "layouts")
            EXPECT_LE(stats.bytes_est, 2 * (64 << 10)) << layer;
        else if (layer == "schedules")
            EXPECT_LE(stats.bytes_est, 32 << 10) << layer;
        EXPECT_GE(stats.bytes_est, 0) << layer;
    }
}

TEST(CacheBound, ServiceBudgetsHoldAfterEveryRequestAndEvictLru)
{
    api::ServiceOptions service_options;
    service_options.cache.max_frameworks = 1;
    api::TempService service(service_options);

    core::FrameworkOptions options = fastOptions();
    options.cache = tinyBudget();
    const api::OptimizeRequest request{
        model::modelByName("GPT-3 6.7B"),
        hw::WaferConfig::paperDefault(), options};

    const auto check_budgets = [&] {
        const api::Response stats =
            service.run(api::CacheStatsRequest{});
        ASSERT_TRUE(stats.ok);
        for (const api::CacheLayerStats &layer : stats.cache_layers) {
            if (layer.layer == "service_frameworks")
                EXPECT_LE(layer.stats.entries, 1);
            else if (layer.layer == "eval_breakdowns" ||
                     layer.layer == "step_reports" ||
                     layer.layer == "schedules")
                EXPECT_LE(layer.stats.entries, 2) << layer.layer;
            else if (layer.layer == "layouts")
                EXPECT_LE(layer.stats.entries, 4) << layer.layer;
        }
    };

    const api::Response first = service.run(request);
    ASSERT_TRUE(first.ok);
    check_budgets();

    // A second option set evicts the first framework (LRU, budget 1)...
    api::OptimizeRequest other = request;
    other.options.solver.seed = 99;
    ASSERT_TRUE(service.run(other).ok);
    check_budgets();
    EXPECT_EQ(service.stats().frameworks_built, 2);

    // ...and returning to the first recounts as a fresh build, not a
    // phantom cache hit.
    const api::Response again = service.run(request);
    ASSERT_TRUE(again.ok);
    EXPECT_FALSE(again.framework_reused);
    EXPECT_EQ(service.stats().frameworks_built, 3);
    check_budgets();

    // The repeat against the *resident* framework reuses it — but its
    // budget-2 memos evicted nearly everything, so the re-measurement
    // is honestly reported instead of pretending a phantom cache hit.
    const api::Response repeat = service.run(request);
    EXPECT_TRUE(repeat.framework_reused);
    EXPECT_GT(repeat.solver.matrix_measurements, 0);
    EXPECT_GT(repeat.solver.cache_evictions, 0);
    EXPECT_EQ(repeat.solver.per_op_specs, first.solver.per_op_specs);

    // The stats response itself serializes with every layer present.
    const std::string json =
        api::toJson(service.run(api::CacheStatsRequest{}));
    for (const char *layer :
         {"service_frameworks", "service_pods", "eval_breakdowns",
          "step_reports", "layouts", "schedules", "routes"})
        EXPECT_NE(json.find(layer), std::string::npos) << layer;
    EXPECT_NE(json.find("\"evictions\":"), std::string::npos);
}

// ---------------------------------------------------------------
// ScheduleCache: consistent stats snapshots (the torn-read bug) and
// eager epoch flushing
// ---------------------------------------------------------------

TEST(CacheBound, ScheduleCacheStatsSnapshotsAreConsistentUnderLoad)
{
    // Regression for the torn stats() snapshot: lowerings_ and hits_
    // were read as two independent atomic loads, so a reader racing
    // the lookup path could observe a hit whose sibling lowering was
    // not yet visible, making interval deltas transiently dishonest.
    // stats() now snapshots under the exclusive lock; this test runs
    // lookups and polls concurrently (TSan-exercised in CI) and
    // checks every snapshot's invariants.
    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    net::Router router(wafer.topology(), &wafer.faults());
    net::CollectiveScheduler scheduler(router);
    net::ScheduleCache cache(scheduler);

    constexpr int kUniqueTasks = 16;
    constexpr int kLookupsPerThread = 400;
    constexpr int kThreads = 4;

    std::atomic<bool> done{false};
    std::thread poller([&] {
        net::ScheduleCacheStats last;
        while (!done.load()) {
            const net::ScheduleCacheStats snap = cache.stats();
            // Monotonic counters, never more unique lowerings than
            // unique tasks, and a hit rate that cannot exceed 1.
            EXPECT_GE(snap.lowerings, last.lowerings);
            EXPECT_GE(snap.hits, last.hits);
            EXPECT_LE(snap.lowerings, kUniqueTasks);
            EXPECT_LE(snap.hitRate(), 1.0);
            const net::ScheduleCacheStats delta = snap - last;
            EXPECT_GE(delta.lowerings, 0);
            EXPECT_GE(delta.hits, 0);
            last = snap;
        }
    });

    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            for (int i = 0; i < kLookupsPerThread; ++i) {
                net::CollectiveTask task;
                task.kind = net::CollectiveKind::AllReduce;
                task.group = {0, 1, 2, 3};
                task.bytes = 1e6;
                task.tag = (t + i) % kUniqueTasks;
                cache.lowered(task, wafer.faultEpoch());
            }
        });
    }
    for (std::thread &w : workers)
        w.join();
    done.store(true);
    poller.join();

    // Quiesced: the books balance exactly.
    const net::ScheduleCacheStats final_stats = cache.stats();
    EXPECT_EQ(final_stats.lowerings + final_stats.hits,
              static_cast<long>(kThreads) * kLookupsPerThread);
    EXPECT_EQ(final_stats.lowerings, kUniqueTasks);
}

TEST(CacheBound, SetFaultsFlushesScheduleCacheAndRoutePoolEagerly)
{
    // Satellite: fault-injection sweeps must not retain a dead
    // epoch's schedules/routes until some later lookup happens to
    // notice the epoch moved.
    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    cost::WaferCostModel model(
        wafer, tcme::MappingPolicy{tcme::MappingEngineKind::TCME});

    net::CollectiveTask task;
    task.kind = net::CollectiveKind::AllReduce;
    task.group = {0, 1, 2, 3};
    task.bytes = 64e6;
    (void)model.timeCollectiveTasks({task});
    EXPECT_GT(model.scheduleCacheStats().entries, 0);
    EXPECT_GT(model.routePoolStats().entries, 0);

    hw::FaultMap faults(wafer.dieCount(), wafer.topology().linkCount());
    faults.failLink(wafer.topology().linkId(1, 2));
    wafer.setFaults(faults);

    // No lookup has run since the injection: the dead epoch's entries
    // are already gone.
    EXPECT_EQ(model.scheduleCacheStats().entries, 0);
    EXPECT_EQ(model.routePoolStats().entries, 0);

    // And the next evaluation repopulates against the degraded fabric.
    (void)model.timeCollectiveTasks({task});
    EXPECT_GT(model.scheduleCacheStats().entries, 0);
}

TEST(CacheBound, BoundedScheduleCacheEvictsWithinEpochBitExactly)
{
    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    net::Router router(wafer.topology(), &wafer.faults());
    net::CollectiveScheduler scheduler(router);
    net::ScheduleCache unbounded(scheduler);
    net::ScheduleCache bounded(scheduler);
    bounded.setMaxEntries(2);

    std::vector<net::CollectiveTask> tasks;
    for (int size : {2, 4, 8, 16}) {
        net::CollectiveTask task;
        task.kind = net::CollectiveKind::AllReduce;
        for (int i = 0; i < size; ++i)
            task.group.push_back(i);
        task.bytes = 1e6 * size;
        tasks.push_back(std::move(task));
    }
    for (int rep = 0; rep < 3; ++rep) {
        for (const net::CollectiveTask &task : tasks) {
            const auto a = unbounded.lowered(task, wafer.faultEpoch());
            const auto b = bounded.lowered(task, wafer.faultEpoch());
            EXPECT_EQ(a->linkBytes(), b->linkBytes());
            EXPECT_EQ(a->flowCount(), b->flowCount());
            EXPECT_LE(bounded.size(), 2u);
        }
    }
    EXPECT_GT(bounded.cacheStats().evictions, 0);
    EXPECT_EQ(unbounded.cacheStats().evictions, 0);
    // Unbounded: 4 lowerings, everything else hits. Bounded: the
    // cyclic sweep defeats a 2-entry LRU, so re-lowerings recount
    // honestly as misses.
    EXPECT_EQ(unbounded.stats().lowerings, 4);
    EXPECT_GT(bounded.stats().lowerings, 4);
}

// ---------------------------------------------------------------
// submit() latency accounting
// ---------------------------------------------------------------

TEST(CacheBound, SubmitReportsQueueTimeAndEndToEndWallTime)
{
    api::ServiceOptions service_options;
    service_options.request_threads = 2;
    api::TempService service(service_options);

    const model::ModelConfig model = model::modelByName("GPT-3 6.7B");
    const hw::WaferConfig wafer = hw::WaferConfig::paperDefault();
    const core::FrameworkOptions options = fastOptions();

    parallel::ParallelSpec spec;
    spec.dp = 4;
    spec.tatp = 8;

    // Synchronous run(): no queue, wall time is the execution span.
    const api::Response sync =
        service.run(api::StrategyRequest{model, wafer, options, spec});
    ASSERT_TRUE(sync.ok);
    EXPECT_EQ(sync.queue_time_s, 0.0);
    EXPECT_GT(sync.wall_time_s, 0.0);

    // submit(): wall time is measured from the enqueue, so it always
    // covers the queue wait (the historical bug under-reported by
    // exactly queue_time_s when the pool was busy).
    std::vector<std::future<api::Response>> futures;
    for (int i = 0; i < 4; ++i)
        futures.push_back(service.submit(
            api::StrategyRequest{model, wafer, options, spec}));
    for (std::future<api::Response> &f : futures) {
        const api::Response r = f.get();
        ASSERT_TRUE(r.ok);
        EXPECT_GE(r.queue_time_s, 0.0);
        EXPECT_GE(r.wall_time_s, r.queue_time_s);
        EXPECT_GT(r.wall_time_s, 0.0);
    }

    // queue_time_s is part of the JSON envelope.
    const std::string json = api::toJson(sync);
    EXPECT_NE(json.find("\"queue_time_s\":"), std::string::npos);
}

}  // namespace
}  // namespace temp
