/**
 * @file
 * The robustness suite: fault-delta plumbing, epoch churn on a live
 * wafer, and the scenario engine's determinism / warm-recovery /
 * degraded-answer contracts (src/scenario/README.md). Runs under TSan
 * in CI — the listener-storm tests exist precisely for that build.
 */
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include <gtest/gtest.h>

#include "api/request_io.hpp"
#include "api/request_key.hpp"
#include "api/serialize.hpp"
#include "api/service.hpp"
#include "core/framework.hpp"
#include "hw/wafer.hpp"
#include "model/model_zoo.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace temp;

// ---------------------------------------------------------------------
// hw: fault deltas and fingerprints.
// ---------------------------------------------------------------------

TEST(FaultDelta, ApplyFailsRestoresAndSetsFractions)
{
    hw::FaultMap map(4, 16);
    map.failLink(3);
    const std::uint64_t before = map.revision();

    hw::FaultDelta delta;
    delta.fail_links = {5, 7};
    delta.restore_links = {3};
    delta.core_fractions = {{1, 0.25}};
    EXPECT_FALSE(delta.empty());
    map.applyDelta(delta);

    EXPECT_FALSE(map.linkFailed(3));
    EXPECT_TRUE(map.linkFailed(5));
    EXPECT_TRUE(map.linkFailed(7));
    EXPECT_DOUBLE_EQ(map.coreFaultFraction(1), 0.25);
    EXPECT_GT(map.revision(), before);
    EXPECT_TRUE(hw::FaultDelta{}.empty());
}

TEST(FaultDelta, DeltaBetweenRoundTrips)
{
    hw::FaultMap from(4, 16);
    from.failLink(1);
    from.failLink(2);
    from.setCoreFaultFraction(0, 0.5);

    hw::FaultMap to(4, 16);
    to.failLink(2);
    to.failLink(9);
    to.setCoreFaultFraction(3, 0.125);

    const hw::FaultDelta delta = hw::FaultMap::deltaBetween(from, to);
    from.applyDelta(delta);
    EXPECT_EQ(from.failedLinks(), to.failedLinks());
    for (int die = 0; die < 4; ++die)
        EXPECT_DOUBLE_EQ(from.coreFaultFraction(die),
                         to.coreFaultFraction(die));
    EXPECT_EQ(from.contentFingerprint(), to.contentFingerprint());
}

TEST(FaultDelta, FingerprintIsContentAddressed)
{
    // Same content reached along different histories must match.
    hw::FaultMap a(4, 16);
    a.failLink(9);
    a.failLink(2);

    hw::FaultMap b(4, 16);
    b.failLink(2);
    b.failLink(4);
    b.restoreLink(4);
    b.failLink(9);

    EXPECT_EQ(a.contentFingerprint(), b.contentFingerprint());
    EXPECT_NE(a.revision(), b.revision());

    // Probing a healthy die (trailing zero fraction) must not change
    // the fingerprint; a real fraction must.
    hw::FaultMap c = a;
    c.setCoreFaultFraction(3, 0.0);
    EXPECT_EQ(a.contentFingerprint(), c.contentFingerprint());
    c.setCoreFaultFraction(3, 0.5);
    EXPECT_NE(a.contentFingerprint(), c.contentFingerprint());
}

// ---------------------------------------------------------------------
// hw: epoch churn on a live wafer.
// ---------------------------------------------------------------------

TEST(WaferChurn, BackToBackDeltasStrictlyIncreaseEpoch)
{
    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    std::uint64_t last = wafer.faultEpoch();
    for (int i = 0; i < 32; ++i) {
        hw::FaultDelta delta;
        if (i % 3 == 2)
            delta.restore_links.push_back(i - 1);
        else
            delta.fail_links.push_back(i);
        delta.core_fractions.emplace_back(i % wafer.dieCount(),
                                          (i % 2) ? 0.25 : 0.0);
        wafer.applyFaultDelta(delta);
        EXPECT_GT(wafer.faultEpoch(), last);
        last = wafer.faultEpoch();
    }
}

TEST(WaferChurn, ListenersSeeStrictlyIncreasingEpochsDuringStorm)
{
    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    std::vector<std::uint64_t> seen;
    const std::uint64_t id = wafer.addEpochListener(
        [&seen](std::uint64_t epoch) { seen.push_back(epoch); });
    for (int i = 0; i < 64; ++i) {
        hw::FaultDelta delta;
        delta.fail_links.push_back(i % 8);
        wafer.applyFaultDelta(delta);
    }
    wafer.removeEpochListener(id);
    // Removed: a further storm event must not reach the listener.
    const std::size_t count = seen.size();
    wafer.setFaults(hw::FaultMap(wafer.dieCount(),
                                 wafer.topology().linkCount()));
    EXPECT_EQ(seen.size(), count);
    ASSERT_EQ(count, 64u);
    for (std::size_t i = 1; i < seen.size(); ++i)
        EXPECT_GT(seen[i], seen[i - 1]);
}

TEST(WaferChurn, ListenerRegistrationRacesStormSafely)
{
    // One thread storms deltas; another registers/unregisters
    // listeners the whole time. TSan verifies the registry locking;
    // the assertion verifies no notification is lost or reordered for
    // a listener held across the storm.
    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    std::vector<std::uint64_t> seen;
    const std::uint64_t stable = wafer.addEpochListener(
        [&seen](std::uint64_t epoch) { seen.push_back(epoch); });

    std::atomic<bool> storm_done{false};
    std::thread churner([&] {
        for (int i = 0; i < 200; ++i) {
            hw::FaultDelta delta;
            delta.fail_links.push_back(i % 16);
            if (i % 4 == 3)
                delta.restore_links.push_back((i - 2) % 16);
            wafer.applyFaultDelta(delta);
        }
        storm_done.store(true);
    });
    while (!storm_done.load()) {
        const std::uint64_t id =
            wafer.addEpochListener([](std::uint64_t) {});
        wafer.removeEpochListener(id);
    }
    churner.join();

    wafer.removeEpochListener(stable);
    ASSERT_EQ(seen.size(), 200u);
    for (std::size_t i = 1; i < seen.size(); ++i)
        EXPECT_GT(seen[i], seen[i - 1]);
}

// ---------------------------------------------------------------------
// Scenario engine contracts. NoRefine keeps the solves cheap; the
// contracts under test are engine-independent.
// ---------------------------------------------------------------------

core::FrameworkOptions
cheapOptions()
{
    core::FrameworkOptions options;
    options.solver.engine = solver::SearchEngineKind::NoRefine;
    options.eval_threads = 2;
    return options;
}

std::shared_ptr<core::TempFramework>
freshFramework()
{
    return std::make_shared<core::TempFramework>(
        hw::WaferConfig::paperDefault(), cheapOptions());
}

scenario::Event
faultEvent(double at_s, double link_rate, std::uint64_t seed,
           double core_rate = 0.0)
{
    scenario::Event event;
    event.kind = scenario::Event::Kind::SetFaults;
    event.at_s = at_s;
    event.link_fault_rate = link_rate;
    event.core_fault_rate = core_rate;
    event.fault_seed = seed;
    return event;
}

scenario::Event
plainEvent(scenario::Event::Kind kind, double at_s)
{
    scenario::Event event;
    event.kind = kind;
    event.at_s = at_s;
    return event;
}

const model::ModelConfig kModel = model::modelByName("Llama2 7B");

std::vector<scenario::Event>
stormTimeline()
{
    using Kind = scenario::Event::Kind;
    return {faultEvent(10, 0.08, 7),
            plainEvent(Kind::WaferJoin, 20),
            faultEvent(30, 0.05, 13, 0.10),
            plainEvent(Kind::Reoptimize, 40),
            plainEvent(Kind::ClearFaults, 50),
            faultEvent(60, 0.08, 7),
            plainEvent(Kind::WaferLeave, 70)};
}

TEST(ScenarioEngine, ReplaysBitIdentically)
{
    const std::vector<scenario::Event> events = stormTimeline();
    scenario::ScenarioEngine first(freshFramework());
    scenario::ScenarioEngine second(freshFramework());
    const scenario::ScenarioReport a = first.replay(kModel, events);
    const scenario::ScenarioReport b = second.replay(kModel, events);

    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        const scenario::EventReport &x = a.events[i];
        const scenario::EventReport &y = b.events[i];
        EXPECT_EQ(x.index, y.index);
        EXPECT_EQ(x.at_s, y.at_s);
        EXPECT_EQ(x.kind, y.kind);
        EXPECT_EQ(x.step_sims, y.step_sims);
        EXPECT_EQ(x.matrix_measurements, y.matrix_measurements);
        EXPECT_EQ(x.step_cache_hits, y.step_cache_hits);
        EXPECT_EQ(x.matrix_cache_hits, y.matrix_cache_hits);
        // Bit-identical, not approximately equal: the determinism
        // contract covers every mantissa bit.
        EXPECT_EQ(x.throughput_before, y.throughput_before);
        EXPECT_EQ(x.throughput_after, y.throughput_after);
        EXPECT_EQ(x.step_time_s, y.step_time_s);
        EXPECT_EQ(x.usable_dies, y.usable_dies);
        EXPECT_EQ(x.failed_links, y.failed_links);
        EXPECT_EQ(x.wafer_count, y.wafer_count);
        EXPECT_EQ(x.fault_fingerprint, y.fault_fingerprint);
        EXPECT_EQ(x.resolved, y.resolved);
        EXPECT_EQ(x.warm_seeded, y.warm_seeded);
        EXPECT_EQ(x.context_reused, y.context_reused);
        EXPECT_EQ(x.fallback_to_last_feasible,
                  y.fallback_to_last_feasible);
        EXPECT_EQ(x.degradation, y.degradation);
    }
    EXPECT_EQ(a.replay_digest, b.replay_digest);
    EXPECT_EQ(a.total_step_sims, b.total_step_sims);
    EXPECT_EQ(a.total_matrix_measurements,
              b.total_matrix_measurements);
}

TEST(ScenarioEngine, WarmRecoveryRunsFewerStepSimsThanCold)
{
    const std::vector<scenario::Event> events = stormTimeline();
    scenario::ScenarioEngine::Options cold_options;
    cold_options.warm_seed = false;
    scenario::ScenarioEngine warm_engine(freshFramework());
    scenario::ScenarioEngine cold_engine(freshFramework(),
                                         cold_options);
    const scenario::ScenarioReport warm =
        warm_engine.replay(kModel, events);
    const scenario::ScenarioReport cold =
        cold_engine.replay(kModel, events);

    ASSERT_EQ(warm.events.size(), cold.events.size());
    bool compared = false;
    for (std::size_t i = 0; i < warm.events.size(); ++i) {
        const scenario::EventReport &w = warm.events[i];
        EXPECT_FALSE(cold.events[i].warm_seeded);
        // Fresh-fault-state warm solves only: a revisited context is
        // memo-served (near-free) in both replays.
        if (!w.warm_seeded || w.context_reused)
            continue;
        compared = true;
        EXPECT_LT(w.step_sims, cold.events[i].step_sims)
            << "event " << i;
    }
    EXPECT_TRUE(compared);
    EXPECT_LT(warm.total_step_sims, cold.total_step_sims);
}

TEST(ScenarioEngine, RevisitedFaultStateReusesContextForFree)
{
    const std::vector<scenario::Event> events = stormTimeline();
    scenario::ScenarioEngine engine(freshFramework());
    const scenario::ScenarioReport report =
        engine.replay(kModel, events);

    // Event 5 re-draws event 0's faults on the repaired wafer: same
    // content fingerprint, so the context — and its memos — must be
    // reused with zero new matrix measurements.
    ASSERT_EQ(report.events.size(), events.size());
    const scenario::EventReport &revisit = report.events[5];
    EXPECT_EQ(revisit.fault_fingerprint,
              report.events[0].fault_fingerprint);
    EXPECT_TRUE(revisit.context_reused);
    EXPECT_EQ(revisit.matrix_measurements, 0);
    // The reoptimize of an unchanged state is served from the resident
    // context's memos too.
    const scenario::EventReport &repeat = report.events[3];
    EXPECT_TRUE(repeat.context_reused);
    EXPECT_EQ(repeat.matrix_measurements, 0);
    EXPECT_EQ(repeat.step_sims, 0);
}

TEST(ScenarioEngine, InfeasibleResolveFallsBackExplicitly)
{
    // Bricking every die is the one genuinely infeasible state: as
    // long as a single die lives, a degree-1 plan exists (random
    // draws clamp at 0.9 precisely so dies stay usable — hence the
    // deterministic kill_dies payload).
    scenario::Event kill;
    kill.kind = scenario::Event::Kind::SetFaults;
    kill.at_s = 10;
    const hw::WaferConfig wafer = hw::WaferConfig::paperDefault();
    for (int die = 0; die < wafer.rows * wafer.cols; ++die)
        kill.kill_dies.push_back(die);
    std::vector<scenario::Event> events = {kill};
    scenario::ScenarioEngine engine(freshFramework());
    const scenario::ScenarioReport report =
        engine.replay(kModel, events);

    ASSERT_EQ(report.events.size(), 1u);
    const scenario::EventReport &er = report.events[0];
    EXPECT_EQ(er.usable_dies, 0);
    EXPECT_EQ(er.degradation, "infeasible");
    EXPECT_TRUE(er.fallback_to_last_feasible);
    EXPECT_EQ(report.infeasible_events, 1);
    EXPECT_EQ(report.fallback_events, 1);
    // Degraded-answer policy: the reported operating point is the last
    // feasible assignment (the healthy baseline), not zero and not the
    // infeasible solve's garbage.
    EXPECT_EQ(er.throughput_after, er.throughput_before);
    EXPECT_GT(er.throughput_after, 0.0);
}

TEST(ScenarioEngine, DigestCoversDeterministicFieldsOnly)
{
    scenario::EventReport er;
    er.index = 1;
    er.step_sims = 10;
    er.degradation = "degraded";
    const std::uint64_t base =
        scenario::foldEventReport(14695981039346656037ULL, er);

    scenario::EventReport wall = er;
    wall.recovery_wall_s = 123.456;  // the one nondeterministic field
    EXPECT_EQ(scenario::foldEventReport(14695981039346656037ULL, wall),
              base);

    scenario::EventReport changed = er;
    changed.step_sims = 11;
    EXPECT_NE(
        scenario::foldEventReport(14695981039346656037ULL, changed),
        base);
    scenario::EventReport flagged = er;
    flagged.fallback_to_last_feasible = true;
    EXPECT_NE(
        scenario::foldEventReport(14695981039346656037ULL, flagged),
        base);
}

// ---------------------------------------------------------------------
// Cache-layer accounting across fault epochs.
// ---------------------------------------------------------------------

TEST(ScenarioEngine, CacheLayerCountersStayHonestAcrossEpochs)
{
    api::TempService service;
    api::OptimizeRequest healthy{kModel,
                                 hw::WaferConfig::paperDefault(),
                                 cheapOptions()};
    ASSERT_TRUE(service.run(healthy).ok);
    const api::Response before = service.run(api::CacheStatsRequest{});
    ASSERT_TRUE(before.ok);

    api::FaultRequest fault{kModel, hw::WaferConfig::paperDefault(),
                            cheapOptions()};
    fault.link_fault_rate = 0.08;
    fault.fault_seed = 7;
    ASSERT_TRUE(service.run(fault).ok);
    ASSERT_TRUE(service.run(healthy).ok);
    const api::Response after = service.run(api::CacheStatsRequest{});
    ASSERT_TRUE(after.ok);

    // Counters are cumulative and monotonic: a fault epoch in between
    // must never reset or double-count a layer.
    ASSERT_EQ(before.cache_layers.size(), after.cache_layers.size());
    for (std::size_t i = 0; i < before.cache_layers.size(); ++i) {
        const api::CacheLayerStats &b = before.cache_layers[i];
        const api::CacheLayerStats &a = after.cache_layers[i];
        EXPECT_EQ(b.layer, a.layer);
        EXPECT_GE(a.stats.hits, b.stats.hits) << a.layer;
        EXPECT_GE(a.stats.misses, b.stats.misses) << a.layer;
        EXPECT_GE(a.stats.evictions, b.stats.evictions) << a.layer;
    }
}

// ---------------------------------------------------------------------
// api: the scenario request surface.
// ---------------------------------------------------------------------

api::ScenarioRequest
sampleRequest()
{
    api::ScenarioRequest request;
    request.model = kModel;
    request.options = cheapOptions();
    request.warm_seed = true;
    request.events = stormTimeline();
    request.events[0].kill_dies = {3, 5};
    scenario::Event model_switch;
    model_switch.kind = scenario::Event::Kind::ModelSwitch;
    model_switch.at_s = 80;
    model_switch.model = model::modelByName("GPT-3 6.7B");
    request.events.push_back(model_switch);
    return request;
}

TEST(ScenarioRequestIo, JsonRoundTripPreservesRequestKey)
{
    const api::Request original = sampleRequest();
    const std::string json = api::toJson(original, "tenant-a");

    api::ParsedRequest parsed;
    std::string error;
    ASSERT_TRUE(api::parseRequest(json, &parsed, &error)) << error;
    EXPECT_EQ(parsed.tenant, "tenant-a");
    ASSERT_TRUE(std::holds_alternative<api::ScenarioRequest>(
        parsed.request));
    EXPECT_EQ(api::requestKey(parsed.request),
              api::requestKey(original));
    // Byte-stable re-serialization (the coalescing key's foundation).
    EXPECT_EQ(api::toJson(parsed.request, "tenant-a"), json);
}

TEST(ScenarioRequestIo, RejectsMalformedTimelines)
{
    api::ParsedRequest parsed;
    std::string error;

    EXPECT_FALSE(api::parseRequest(
        R"({"kind":"scenario","model":{"base":"Llama2 7B"}})", &parsed,
        &error));
    EXPECT_NE(error.find("'events' is required"), std::string::npos);

    EXPECT_FALSE(api::parseRequest(
        R"({"kind":"scenario","model":{"base":"Llama2 7B"},)"
        R"("events":[{"type":"warp_core_breach"}]})",
        &parsed, &error));
    EXPECT_NE(error.find("unknown events[0] type"), std::string::npos);

    EXPECT_FALSE(api::parseRequest(
        R"({"kind":"scenario","model":{"base":"Llama2 7B"},)"
        R"("events":[{"type":"reoptimize","link_fault_rate":0.5}]})",
        &parsed, &error));
    EXPECT_NE(error.find("not a set_faults"), std::string::npos);

    EXPECT_FALSE(api::parseRequest(
        R"({"kind":"scenario","model":{"base":"Llama2 7B"},)"
        R"("events":[{"type":"model_switch"}]})",
        &parsed, &error));
    EXPECT_NE(error.find("requires 'model'"), std::string::npos);

    EXPECT_FALSE(api::parseRequest(
        R"({"kind":"scenario","model":{"base":"Llama2 7B"},)"
        R"("events":[{"type":"set_faults","kill_dies":[-1]}]})",
        &parsed, &error));
    EXPECT_NE(error.find("must be >= 0"), std::string::npos);

    // The kind list in the unknown-kind error advertises scenario.
    EXPECT_FALSE(api::parseRequest(R"({"kind":"nope"})", &parsed,
                                   &error));
    EXPECT_NE(error.find("scenario"), std::string::npos);
}

TEST(ScenarioService, RunsTimelineAndRejectsEmptyOne)
{
    api::TempService service;

    api::ScenarioRequest empty;
    empty.model = kModel;
    empty.options = cheapOptions();
    const api::Response bad = service.run(empty);
    EXPECT_FALSE(bad.ok);
    EXPECT_NE(bad.error.find("empty event timeline"),
              std::string::npos);

    api::ScenarioRequest request;
    request.model = kModel;
    request.options = cheapOptions();
    request.events = {faultEvent(10, 0.08, 7),
                      plainEvent(scenario::Event::Kind::ClearFaults,
                                 20)};
    const api::Response response = service.run(request);
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_EQ(response.kind, api::RequestKind::Scenario);
    ASSERT_EQ(response.scenario.events.size(), 2u);
    EXPECT_TRUE(response.scenario.events[0].resolved);
    EXPECT_NE(response.scenario.replay_digest, 0u);
    // The JSON face carries the payload.
    const std::string json = api::toJson(response);
    EXPECT_NE(json.find("\"replay_digest\""), std::string::npos);
    EXPECT_NE(json.find("\"deadline_exceeded\":false"),
              std::string::npos);
}

TEST(ScenarioEngine, QuantumBudgetBoundsEveryRecoveryDeterministically)
{
    // A refining engine so the unbudgeted replay has real work the
    // budget can cut off.
    core::FrameworkOptions options = cheapOptions();
    options.solver.engine = solver::SearchEngineKind::Genetic;
    options.solver.ga_population = 8;
    options.solver.ga_generations = 4;
    auto framework = [&] {
        return std::make_shared<core::TempFramework>(
            hw::WaferConfig::paperDefault(), options);
    };
    const std::vector<scenario::Event> events = stormTimeline();

    scenario::ScenarioEngine free_engine(framework());
    const scenario::ScenarioReport free_replay =
        free_engine.replay(kModel, events);

    // The budget bounds EACH re-solve (baseline included), not the
    // whole timeline: a fault storm of N events costs at most N bounded
    // recoveries.
    scenario::ScenarioEngine::Options bounded;
    bounded.solve_budget.max_quanta = 1;
    scenario::ScenarioEngine first(framework(), bounded);
    scenario::ScenarioEngine second(framework(), bounded);
    const scenario::ScenarioReport a = first.replay(kModel, events);
    const scenario::ScenarioReport b = second.replay(kModel, events);

    // Quantum budgets keep the replay bit-identical; the budget fields
    // are folded into the digest, so equality covers them too.
    EXPECT_EQ(a.replay_digest, b.replay_digest);
    EXPECT_EQ(a.total_quanta, b.total_quanta);
    EXPECT_EQ(a.budget_exhausted_events, b.budget_exhausted_events);

    // Every re-solve was truncated (flagged, not silent) yet still
    // produced a fully simulated feasible plan from the preamble.
    ASSERT_EQ(a.events.size(), events.size());
    EXPECT_GT(a.budget_exhausted_events, 0);
    for (const scenario::EventReport &er : a.events) {
        if (!er.resolved)
            continue;
        EXPECT_TRUE(er.budget_exhausted) << "event " << er.index;
        EXPECT_GT(er.quanta_used, 0) << "event " << er.index;
        EXPECT_FALSE(er.fallback_to_last_feasible)
            << "event " << er.index;
    }

    // Bounded recovery is strictly cheaper than open-ended recovery,
    // and the truncation is visible in the replay identity.
    EXPECT_GT(free_replay.total_quanta, a.total_quanta);
    EXPECT_EQ(free_replay.budget_exhausted_events, 0);
    EXPECT_NE(free_replay.replay_digest, a.replay_digest);
}

}  // namespace
