/**
 * @file
 * Unit tests for the common module: units, stats, linear algebra,
 * RNG, JSON parsing.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace temp {
namespace {

TEST(Json, UnicodeEscapesDecodeToUtf8)
{
    common::JsonValue v;
    std::string error;
    ASSERT_TRUE(common::parseJson("\"\\u00e9\\u20ac\"", &v, &error))
        << error;
    EXPECT_EQ(v.text, "\xc3\xa9\xe2\x82\xac");  // é€
}

TEST(Json, SurrogatePairsCombineToOneCodePoint)
{
    // "\ud83d\ude00" is U+1F600; it must decode to the 4-byte UTF-8
    // sequence, not two raw 3-byte surrogate encodings (CESU-8).
    common::JsonValue v;
    std::string error;
    ASSERT_TRUE(
        common::parseJson("\"\\ud83d\\ude00\"", &v, &error))
        << error;
    EXPECT_EQ(v.text, "\xf0\x9f\x98\x80");
}

TEST(Json, UnpairedSurrogatesAreRejected)
{
    common::JsonValue v;
    std::string error;
    // Lone high surrogate (end of string).
    EXPECT_FALSE(common::parseJson("\"\\ud83d\"", &v, &error));
    // High surrogate followed by a non-surrogate escape.
    EXPECT_FALSE(
        common::parseJson("\"\\ud83d\\u0041\"", &v, &error));
    // High surrogate followed by a plain character.
    EXPECT_FALSE(common::parseJson("\"\\ud83dx\"", &v, &error));
    // Lone low surrogate.
    EXPECT_FALSE(common::parseJson("\"\\ude00\"", &v, &error));
}

TEST(Units, BandwidthConversions)
{
    EXPECT_DOUBLE_EQ(tbPerSec(4.0), 4e12);
    EXPECT_DOUBLE_EQ(gbPerSec(600.0), 600e9);
    EXPECT_DOUBLE_EQ(tflops(1800.0), 1.8e15);
}

TEST(Units, EnergyConversion)
{
    // 5 pJ/bit == 40 pJ/byte.
    EXPECT_NEAR(pjPerBitToJoulePerByte(5.0), 40e-12, 1e-18);
}

TEST(Units, MemorySizes)
{
    EXPECT_DOUBLE_EQ(gigabytes(72.0), 72e9);
    EXPECT_DOUBLE_EQ(megabytes(80.0), 80e6);
}

TEST(Stats, MeanAndStddev)
{
    std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Stats, MeanOfEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({}), 0.0);
}

TEST(Stats, PearsonPerfectCorrelation)
{
    std::vector<double> xs{1, 2, 3, 4, 5};
    std::vector<double> ys{2, 4, 6, 8, 10};
    EXPECT_NEAR(pearsonCorrelation(xs, ys), 1.0, 1e-12);
}

TEST(Stats, PearsonAntiCorrelation)
{
    std::vector<double> xs{1, 2, 3, 4, 5};
    std::vector<double> ys{10, 8, 6, 4, 2};
    EXPECT_NEAR(pearsonCorrelation(xs, ys), -1.0, 1e-12);
}

TEST(Stats, PearsonUncorrelatedConstant)
{
    std::vector<double> xs{1, 2, 3};
    std::vector<double> ys{5, 5, 5};
    EXPECT_DOUBLE_EQ(pearsonCorrelation(xs, ys), 0.0);
}

TEST(Stats, MapeBasic)
{
    std::vector<double> pred{110, 90};
    std::vector<double> ref{100, 100};
    EXPECT_NEAR(meanAbsPercentError(pred, ref), 10.0, 1e-12);
}

TEST(Stats, MapeSkipsZeroReference)
{
    std::vector<double> pred{110, 42};
    std::vector<double> ref{100, 0};
    EXPECT_NEAR(meanAbsPercentError(pred, ref), 10.0, 1e-12);
}

TEST(Stats, Geomean)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Matrix, MultiplyIdentity)
{
    Matrix a(2, 2);
    a.at(0, 0) = 1.0;
    a.at(1, 1) = 1.0;
    Matrix b(2, 2);
    b.at(0, 0) = 3.0;
    b.at(0, 1) = 4.0;
    b.at(1, 0) = 5.0;
    b.at(1, 1) = 6.0;
    Matrix c = a.multiply(b);
    EXPECT_DOUBLE_EQ(c.at(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(c.at(0, 1), 4.0);
    EXPECT_DOUBLE_EQ(c.at(1, 0), 5.0);
    EXPECT_DOUBLE_EQ(c.at(1, 1), 6.0);
}

TEST(Matrix, Transpose)
{
    Matrix a(2, 3);
    a.at(0, 2) = 7.0;
    Matrix t = a.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_DOUBLE_EQ(t.at(2, 0), 7.0);
}

TEST(LinearSolve, TwoByTwo)
{
    Matrix a(2, 2);
    a.at(0, 0) = 2.0;
    a.at(0, 1) = 1.0;
    a.at(1, 0) = 1.0;
    a.at(1, 1) = 3.0;
    std::vector<double> b{5.0, 10.0};
    auto x = solveLinearSystem(a, b);
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LinearSolve, RequiresPivoting)
{
    // a(0,0) == 0 forces a row swap.
    Matrix a(2, 2);
    a.at(0, 0) = 0.0;
    a.at(0, 1) = 1.0;
    a.at(1, 0) = 1.0;
    a.at(1, 1) = 0.0;
    std::vector<double> b{2.0, 3.0};
    auto x = solveLinearSystem(a, b);
    EXPECT_NEAR(x[0], 3.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LeastSquares, RecoversLinearModel)
{
    // y = 3 + 2*x, exactly.
    Matrix x(5, 2);
    std::vector<double> y;
    for (int i = 0; i < 5; ++i) {
        x.at(i, 0) = 1.0;
        x.at(i, 1) = i;
        y.push_back(3.0 + 2.0 * i);
    }
    auto w = leastSquares(x, y);
    EXPECT_NEAR(w[0], 3.0, 1e-6);
    EXPECT_NEAR(w[1], 2.0, 1e-6);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformInt(0, 1000), b.uniformInt(0, 1000));
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const int v = rng.uniformInt(3, 9);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 9);
    }
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, UniformRealInRange)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniformReal(-2.0, 5.0);
        EXPECT_GE(v, -2.0);
        EXPECT_LT(v, 5.0);
    }
}

TEST(Table, FormattersProduceExpectedStrings)
{
    EXPECT_EQ(TablePrinter::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(TablePrinter::fmtX(1.7, 1), "1.7x");
    EXPECT_EQ(TablePrinter::fmtPct(0.384, 1), "38.4%");
}

}  // namespace
}  // namespace temp
