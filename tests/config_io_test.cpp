/**
 * @file
 * Tests for the plain-text configuration loader (custom wafers and
 * models without recompiling).
 */
#include <gtest/gtest.h>

#include "core/config_io.hpp"

namespace temp::core {
namespace {

TEST(ConfigParse, KeyValueAndComments)
{
    const ConfigMap config = parseConfigText(
        "# a comment\n"
        "rows = 6   # trailing comment\n"
        "\n"
        "cols=9\n"
        "  peak_tflops =  900  \n");
    EXPECT_EQ(config.size(), 3u);
    EXPECT_EQ(config.at("rows"), "6");
    EXPECT_EQ(config.at("cols"), "9");
    EXPECT_EQ(config.at("peak_tflops"), "900");
}

TEST(ConfigParse, EmptyTextIsEmptyMap)
{
    EXPECT_TRUE(parseConfigText("").empty());
    EXPECT_TRUE(parseConfigText("# only comments\n\n").empty());
}

TEST(WaferConfig, DefaultsWhenEmpty)
{
    const hw::WaferConfig wafer = waferFromConfig({});
    const hw::WaferConfig ref = hw::WaferConfig::paperDefault();
    EXPECT_EQ(wafer.rows, ref.rows);
    EXPECT_DOUBLE_EQ(wafer.die.peak_flops, ref.die.peak_flops);
    EXPECT_DOUBLE_EQ(wafer.hbm.capacity_bytes, ref.hbm.capacity_bytes);
}

TEST(WaferConfig, OverridesApply)
{
    const ConfigMap config = parseConfigText(
        "rows = 6\ncols = 9\npeak_tflops = 900\nd2d_tbps = 2\n"
        "hbm_stacks = 3\nhbm_gb_per_stack = 48\n");
    const hw::WaferConfig wafer = waferFromConfig(config);
    EXPECT_EQ(wafer.dieCount(), 54);
    EXPECT_DOUBLE_EQ(wafer.die.peak_flops, 900e12);
    EXPECT_DOUBLE_EQ(wafer.d2d.bandwidth_bytes_per_s, 2e12);
    EXPECT_DOUBLE_EQ(wafer.hbm.capacity_bytes, 3 * 48e9);
    EXPECT_DOUBLE_EQ(wafer.hbm.bandwidth_bytes_per_s, 3e12);
}

TEST(ModelConfig, FromScratch)
{
    const ConfigMap config = parseConfigText(
        "name = MyNet 1B\nheads = 16\nhidden = 2048\nlayers = 24\n"
        "seq = 4096\nbatch = 64\n");
    const model::ModelConfig model = modelFromConfig(config);
    EXPECT_EQ(model.name, "MyNet 1B");
    EXPECT_EQ(model.headDim(), 128);
    EXPECT_EQ(model.layers, 24);
    EXPECT_GT(model.paramCount(), 1e9);
}

TEST(ModelConfig, BaseModelOverride)
{
    const ConfigMap config =
        parseConfigText("base = Llama2 7B\nseq = 16384\nbatch = 32\n");
    const model::ModelConfig model = modelFromConfig(config);
    EXPECT_EQ(model.hidden, 4096);  // inherited
    EXPECT_EQ(model.seq, 16384);    // overridden
    EXPECT_EQ(model.batch, 32);
}

TEST(FrameworkOptionsConfig, DefaultsWhenEmpty)
{
    const FrameworkOptions options = frameworkOptionsFromConfig({});
    EXPECT_EQ(options.policy.kind, tcme::MappingEngineKind::TCME);
    EXPECT_TRUE(options.solver.enable_ga);
    EXPECT_EQ(options.eval_threads, 0);
}

TEST(FrameworkOptionsConfig, SolverTrainingAndPolicyKeysApply)
{
    const ConfigMap config = parseConfigText(
        "policy = gmap\n"
        "eval_threads = 3\n"
        "training.flash_attention = false\n"
        "training.optimizer_bytes_per_param = 16\n"
        "solver.enable_ga = 0\n"
        "solver.ga_population = 24\n"
        "solver.ga_mutation_rate = 0.5\n"
        "solver.seed = 7\n"
        "solver.use_surrogate = true\n"
        "solver.surrogate_sample_fraction = 0.2\n"
        "solver.space.allow_sp = false\n"
        "solver.space.max_tp = 8\n"
        "solver.space.full_occupancy = 0\n");
    const FrameworkOptions options = frameworkOptionsFromConfig(config);
    EXPECT_EQ(options.policy.kind, tcme::MappingEngineKind::GMap);
    EXPECT_EQ(options.eval_threads, 3);
    EXPECT_FALSE(options.training.flash_attention);
    EXPECT_DOUBLE_EQ(options.training.optimizer_bytes_per_param, 16.0);
    EXPECT_FALSE(options.solver.enable_ga);
    EXPECT_EQ(options.solver.ga_population, 24);
    EXPECT_DOUBLE_EQ(options.solver.ga_mutation_rate, 0.5);
    EXPECT_EQ(options.solver.seed, 7u);
    EXPECT_TRUE(options.solver.use_surrogate);
    EXPECT_DOUBLE_EQ(options.solver.surrogate_sample_fraction, 0.2);
    EXPECT_FALSE(options.solver.space.allow_sp);
    EXPECT_EQ(options.solver.space.max_tp, 8);
    EXPECT_FALSE(options.solver.space.full_occupancy);
    // Untouched keys keep their defaults.
    EXPECT_TRUE(options.solver.space.allow_tatp);
    EXPECT_TRUE(options.training.zero1_optimizer);
}

TEST(FrameworkOptionsConfig, SearchEngineAndAnnealingKeysApply)
{
    const FrameworkOptions defaults = frameworkOptionsFromConfig({});
    EXPECT_EQ(defaults.solver.engine, solver::SearchEngineKind::Genetic);

    const ConfigMap config = parseConfigText(
        "solver.engine = annealing\n"
        "solver.annealing.iterations = 12\n"
        "solver.annealing.proposals = 4\n"
        "solver.annealing.initial_temp = 0.5\n"
        "solver.annealing.cooling = 0.8\n");
    const FrameworkOptions options = frameworkOptionsFromConfig(config);
    EXPECT_EQ(options.solver.engine,
              solver::SearchEngineKind::Annealing);
    EXPECT_EQ(options.solver.annealing.iterations, 12);
    EXPECT_EQ(options.solver.annealing.proposals, 4);
    EXPECT_DOUBLE_EQ(options.solver.annealing.initial_temp, 0.5);
    EXPECT_DOUBLE_EQ(options.solver.annealing.cooling, 0.8);

    // Canonical names and aliases round-trip through the parser.
    EXPECT_EQ(frameworkOptionsFromConfig(
                  parseConfigText("solver.engine = none\n"))
                  .solver.engine,
              solver::SearchEngineKind::NoRefine);
    EXPECT_EQ(frameworkOptionsFromConfig(
                  parseConfigText("solver.engine = ga\n"))
                  .solver.engine,
              solver::SearchEngineKind::Genetic);
    EXPECT_STREQ(
        solver::searchEngineName(options.solver.engine), "annealing");
}

TEST(ConfigFileDetection, DotConfSuffixOnly)
{
    EXPECT_TRUE(isConfigFile("wafer.conf"));
    EXPECT_TRUE(isConfigFile("path/to/model.conf"));
    EXPECT_FALSE(isConfigFile("GPT-3 6.7B"));
    EXPECT_FALSE(isConfigFile(".conf"));
    EXPECT_FALSE(isConfigFile("conf"));
}

using ConfigDeath = ::testing::Test;

TEST(ConfigDeath, RejectsUnknownWaferKey)
{
    EXPECT_EXIT(waferFromConfig(parseConfigText("bogus = 1\n")),
                ::testing::ExitedWithCode(1), "unknown wafer key");
}

TEST(ConfigDeath, RejectsMalformedLine)
{
    EXPECT_EXIT(parseConfigText("no equals sign here\n"),
                ::testing::ExitedWithCode(1), "expected");
}

TEST(ConfigDeath, RejectsNonNumericValue)
{
    EXPECT_EXIT(waferFromConfig(parseConfigText("rows = many\n")),
                ::testing::ExitedWithCode(1), "non-numeric");
}

TEST(ConfigDeath, ModelNeedsNameOrBase)
{
    EXPECT_EXIT(modelFromConfig(parseConfigText("heads = 8\n")),
                ::testing::ExitedWithCode(1), "name");
}

TEST(ConfigDeath, HiddenMustDivideByHeads)
{
    EXPECT_EXIT(
        modelFromConfig(parseConfigText(
            "name = X\nheads = 7\nhidden = 100\n")),
        ::testing::ExitedWithCode(1), "divide");
}

TEST(ConfigDeath, RejectsUnknownOptionsKey)
{
    EXPECT_EXIT(
        frameworkOptionsFromConfig(parseConfigText("solver.bogus = 1\n")),
        ::testing::ExitedWithCode(1), "unknown options key");
}

TEST(ConfigDeath, RejectsNonBooleanAndUnknownEngine)
{
    EXPECT_EXIT(frameworkOptionsFromConfig(
                    parseConfigText("solver.enable_ga = maybe\n")),
                ::testing::ExitedWithCode(1), "non-boolean");
    EXPECT_EXIT(
        frameworkOptionsFromConfig(parseConfigText("policy = alpa\n")),
        ::testing::ExitedWithCode(1), "unknown engine");
    EXPECT_EXIT(frameworkOptionsFromConfig(
                    parseConfigText("solver.engine = tabu\n")),
                ::testing::ExitedWithCode(1), "unknown search engine");
}

}  // namespace
}  // namespace temp::core
