/**
 * @file
 * Tests for the unified cost-evaluation layer: the thread pool, memo
 * correctness (cached == recomputed, bit-exact), parallel batch
 * determinism across thread counts, honest measurement/hit accounting,
 * the surrogate's infeasible-column and exact-fallback handling, and
 * solver invariance under evaluator sharing.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <string>

#include "common/thread_pool.hpp"
#include "eval/cost_evaluator.hpp"
#include "eval/step_evaluator.hpp"
#include "eval/surrogate_evaluator.hpp"
#include "model/graph.hpp"
#include "model/model_zoo.hpp"
#include "sim/trainer_sim.hpp"
#include "solver/dls_solver.hpp"
#include "solver/strategy_space.hpp"

namespace temp::eval {
namespace {

using parallel::ParallelSpec;

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4);
    std::vector<std::atomic<int>> visits(1000);
    pool.parallelFor(visits.size(),
                     [&](std::size_t i) { ++visits[i]; });
    for (const std::atomic<int> &v : visits)
        EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, ReusableAcrossJobsAndPropagatesExceptions)
{
    ThreadPool pool(3);
    long sum = 0;
    std::mutex m;
    for (int round = 0; round < 5; ++round) {
        pool.parallelFor(100, [&](std::size_t i) {
            std::lock_guard<std::mutex> lock(m);
            sum += static_cast<long>(i);
        });
    }
    EXPECT_EQ(sum, 5 * (99 * 100 / 2));
    EXPECT_THROW(pool.parallelFor(10,
                                  [](std::size_t i) {
                                      if (i == 7)
                                          throw std::runtime_error("x");
                                  }),
                 std::runtime_error);
    // Pool still functional after the throwing job.
    std::atomic<int> count{0};
    pool.parallelFor(50, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 50);
}

class EvalTest : public ::testing::Test
{
  protected:
    EvalTest()
        : wafer_(hw::WaferConfig::paperDefault()),
          sim_(wafer_, tcme::MappingPolicy{tcme::MappingEngineKind::TCME}),
          graph_(model::ComputeGraph::transformer(
              model::modelByName("GPT-3 6.7B")))
    {
        solver::StrategySpaceOptions space;
        space.allow_sp = false;  // keep the matrix small and fast
        candidates_ = solver::enumerateStrategies(wafer_.dieCount(),
                                                  graph_.config(), space);
    }

    std::vector<EvalRequest>
    fullMatrix() const
    {
        std::vector<EvalRequest> requests;
        for (int i = 0; i < graph_.opCount(); ++i)
            for (const ParallelSpec &spec : candidates_)
                requests.push_back({i, spec, true});
        return requests;
    }

    static void
    expectBitExact(const cost::OpCostBreakdown &a,
                   const cost::OpCostBreakdown &b)
    {
        EXPECT_EQ(a.feasible, b.feasible);
        EXPECT_EQ(a.fwd_time, b.fwd_time);
        EXPECT_EQ(a.bwd_time, b.bwd_time);
        EXPECT_EQ(a.step_comm_time, b.step_comm_time);
        EXPECT_EQ(a.comp_time, b.comp_time);
        EXPECT_EQ(a.collective_time, b.collective_time);
        EXPECT_EQ(a.stream_comm_time, b.stream_comm_time);
        EXPECT_EQ(a.exposed_comm, b.exposed_comm);
        EXPECT_EQ(a.tail_latency, b.tail_latency);
        EXPECT_EQ(a.d2d_link_bytes, b.d2d_link_bytes);
        EXPECT_EQ(a.dram_bytes, b.dram_bytes);
        EXPECT_EQ(a.flops, b.flops);
        EXPECT_EQ(a.bw_utilization, b.bw_utilization);
    }

    hw::Wafer wafer_;
    sim::TrainingSimulator sim_;
    model::ComputeGraph graph_;
    std::vector<ParallelSpec> candidates_;
};

TEST_F(EvalTest, CachedBreakdownEqualsRecomputedBitExact)
{
    ASSERT_FALSE(candidates_.empty());
    ExactEvaluator cached(sim_.costModel());
    ExactEvaluator fresh(sim_.costModel(), nullptr,
                         /*memoize_breakdowns=*/false);
    const EvalRequest request{3, candidates_[candidates_.size() / 2],
                              true};
    const cost::OpCostBreakdown first = cached.evaluate(graph_, request);
    const cost::OpCostBreakdown hit = cached.evaluate(graph_, request);
    const cost::OpCostBreakdown recomputed =
        fresh.evaluate(graph_, request);
    expectBitExact(first, hit);
    expectBitExact(first, recomputed);
    EXPECT_EQ(cached.stats().measurements, 1);
    EXPECT_EQ(cached.stats().cache_hits, 1);
}

TEST_F(EvalTest, BatchDeterministicAcrossThreadCounts)
{
    const std::vector<EvalRequest> requests = fullMatrix();
    std::vector<std::vector<cost::OpCostBreakdown>> runs;
    for (int threads : {1, 2, 4}) {
        ThreadPool pool(threads);
        ExactEvaluator evaluator(sim_.costModel(), &pool);
        runs.push_back(evaluator.evaluateBatch(graph_, requests));
        EXPECT_EQ(evaluator.stats().measurements,
                  static_cast<long>(requests.size()));
    }
    for (std::size_t r = 1; r < runs.size(); ++r) {
        ASSERT_EQ(runs[r].size(), runs[0].size());
        for (std::size_t i = 0; i < runs[0].size(); ++i)
            expectBitExact(runs[0][i], runs[r][i]);
    }
}

TEST_F(EvalTest, BatchMatchesSingleEvaluate)
{
    ThreadPool pool(2);
    ExactEvaluator batched(sim_.costModel(), &pool);
    ExactEvaluator single(sim_.costModel());
    const std::vector<EvalRequest> requests = fullMatrix();
    const std::vector<cost::OpCostBreakdown> batch =
        batched.evaluateBatch(graph_, requests);
    for (std::size_t i = 0; i < requests.size(); i += 37)
        expectBitExact(batch[i], single.evaluate(graph_, requests[i]));
}

TEST_F(EvalTest, StatsCountUniqueMeasurementsOnceAndHitsSeparately)
{
    ExactEvaluator exact(sim_.costModel(), nullptr,
                         /*memoize_breakdowns=*/false);
    CachingEvaluator caching(exact);
    const std::vector<EvalRequest> requests = fullMatrix();
    const long n = static_cast<long>(requests.size());

    caching.evaluateBatch(graph_, requests);
    EXPECT_EQ(caching.stats().measurements, n);
    EXPECT_EQ(caching.stats().cache_hits, 0);

    // A second identical batch is served entirely from the memo.
    caching.evaluateBatch(graph_, requests);
    EXPECT_EQ(caching.stats().measurements, n);
    EXPECT_EQ(caching.stats().cache_hits, n);

    // Layouts were built once per candidate, not once per cell.
    EXPECT_EQ(caching.stats().layouts_built,
              static_cast<long>(candidates_.size()));
}

TEST_F(EvalTest, DuplicateRequestsWithinOneBatchMeasureOnce)
{
    ExactEvaluator evaluator(sim_.costModel());
    std::vector<EvalRequest> requests;
    for (int rep = 0; rep < 5; ++rep)
        requests.push_back({0, candidates_[0], true});
    const auto results = evaluator.evaluateBatch(graph_, requests);
    for (int rep = 1; rep < 5; ++rep)
        expectBitExact(results[0], results[rep]);
    EXPECT_EQ(evaluator.stats().measurements, 1);
    EXPECT_EQ(evaluator.stats().cache_hits, 4);
}

TEST_F(EvalTest, NonMemoizingBatchNeverFabricatesHits)
{
    // Without a memo there is nothing to serve duplicates from, so the
    // hit counter must stay zero and every request is a measurement.
    ExactEvaluator evaluator(sim_.costModel(), nullptr,
                             /*memoize_breakdowns=*/false);
    std::vector<EvalRequest> requests(3,
                                      EvalRequest{0, candidates_[0], true});
    const auto results = evaluator.evaluateBatch(graph_, requests);
    expectBitExact(results[0], results[1]);
    expectBitExact(results[0], results[2]);
    EXPECT_EQ(evaluator.stats().measurements, 3);
    EXPECT_EQ(evaluator.stats().cache_hits, 0);
}

TEST_F(EvalTest, DistinctGraphsDoNotCollideInTheCache)
{
    ExactEvaluator evaluator(sim_.costModel());
    const model::ComputeGraph half = model::ComputeGraph::transformer(
        graph_.config().withSeqBatch(graph_.config().seq,
                                     graph_.config().batch / 2));
    const EvalRequest request{1, candidates_[0], true};
    const cost::OpCostBreakdown full_batch =
        evaluator.evaluate(graph_, request);
    const cost::OpCostBreakdown half_batch =
        evaluator.evaluate(half, request);
    EXPECT_EQ(evaluator.stats().measurements, 2);
    EXPECT_NE(full_batch.flops, half_batch.flops);
}

// ---------------------------------------------------------------------
// Step evaluator (full-step simulation memo).
// ---------------------------------------------------------------------

namespace {

void
expectReportBitExact(const sim::PerfReport &a, const sim::PerfReport &b)
{
    EXPECT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.oom, b.oom);
    EXPECT_EQ(a.step_time, b.step_time);
    EXPECT_EQ(a.comp_time, b.comp_time);
    EXPECT_EQ(a.collective_time, b.collective_time);
    EXPECT_EQ(a.exposed_comm, b.exposed_comm);
    EXPECT_EQ(a.reshard_time, b.reshard_time);
    EXPECT_EQ(a.grad_sync_time, b.grad_sync_time);
    EXPECT_EQ(a.grad_accum, b.grad_accum);
    EXPECT_EQ(a.recompute, b.recompute);
    EXPECT_EQ(a.peak_mem_bytes, b.peak_mem_bytes);
    EXPECT_EQ(a.avg_power_w, b.avg_power_w);
    EXPECT_EQ(a.total_flops, b.total_flops);
    EXPECT_EQ(a.throughput_tokens_per_s, b.throughput_tokens_per_s);
    EXPECT_EQ(a.strategy_desc, b.strategy_desc);
}

}  // namespace

TEST_F(EvalTest, StepEvaluatorCachedReportEqualsDirectSimulation)
{
    ASSERT_GE(candidates_.size(), 2u);
    StepEvaluator steps(sim_);
    std::vector<ParallelSpec> mixed(
        static_cast<std::size_t>(graph_.opCount()), candidates_[0]);
    for (std::size_t i = 0; i < mixed.size(); i += 2)
        mixed[i] = candidates_[1];

    const sim::PerfReport first = steps.evaluate(graph_, mixed);
    const sim::PerfReport hit = steps.evaluate(graph_, mixed);
    const sim::PerfReport direct = sim_.simulate(graph_, mixed);
    expectReportBitExact(first, hit);
    expectReportBitExact(first, direct);
    EXPECT_EQ(steps.stats().sims, 1);
    EXPECT_EQ(steps.stats().cache_hits, 1);
}

TEST_F(EvalTest, StepEvaluatorUniformOverloadSharesBroadcastKey)
{
    StepEvaluator steps(sim_);
    const sim::PerfReport uniform =
        steps.evaluate(graph_, candidates_[0]);
    const sim::PerfReport broadcast = steps.evaluate(
        graph_, std::vector<ParallelSpec>(
                    static_cast<std::size_t>(graph_.opCount()),
                    candidates_[0]));
    expectReportBitExact(uniform, broadcast);
    EXPECT_EQ(steps.stats().sims, 1);
    EXPECT_EQ(steps.stats().cache_hits, 1);
}

TEST_F(EvalTest, StepBatchDeterministicAcrossThreadCountsAndDedups)
{
    // A generation-sized batch with recurring genomes: results must be
    // bit-exact for any pool width, and duplicates simulate once.
    std::vector<std::vector<ParallelSpec>> generation;
    const std::size_t n_ops =
        static_cast<std::size_t>(graph_.opCount());
    for (std::size_t g = 0; g < 24; ++g) {
        std::vector<ParallelSpec> genome(
            n_ops, candidates_[g % candidates_.size()]);
        genome[g % n_ops] = candidates_[(g / 2) % candidates_.size()];
        generation.push_back(std::move(genome));
    }
    generation.push_back(generation[0]);  // in-batch duplicate
    generation.push_back(generation[5]);

    std::set<std::string> unique_keys;
    for (const std::vector<ParallelSpec> &genome : generation)
        unique_keys.insert(stepKey(graphFingerprint(graph_), genome));
    const long unique = static_cast<long>(unique_keys.size());
    const long total = static_cast<long>(generation.size());
    ASSERT_LT(unique, total);  // the duplicates really are duplicates

    std::vector<std::vector<sim::PerfReport>> runs;
    for (int threads : {1, 2, 4}) {
        ThreadPool pool(threads);
        StepEvaluator steps(sim_, &pool);
        runs.push_back(steps.evaluateBatch(graph_, generation));
        EXPECT_EQ(steps.stats().sims, unique);
        EXPECT_EQ(steps.stats().cache_hits, total - unique);

        // A repeat batch is served entirely from the memo.
        steps.evaluateBatch(graph_, generation);
        EXPECT_EQ(steps.stats().sims, unique);
        EXPECT_EQ(steps.stats().cache_hits, (total - unique) + total);
    }
    for (std::size_t r = 1; r < runs.size(); ++r) {
        ASSERT_EQ(runs[r].size(), runs[0].size());
        for (std::size_t i = 0; i < runs[0].size(); ++i)
            expectReportBitExact(runs[0][i], runs[r][i]);
    }
    // Duplicates carry the same bits as their originals.
    expectReportBitExact(runs[0][generation.size() - 2], runs[0][0]);
    expectReportBitExact(runs[0][generation.size() - 1], runs[0][5]);
}

// ---------------------------------------------------------------------
// Surrogate evaluator.
// ---------------------------------------------------------------------

TEST_F(EvalTest, SurrogateUnfittedFallsBackToExact)
{
    ExactEvaluator exact(sim_.costModel());
    SurrogateEvaluator surrogate(exact, 0.3);
    ASSERT_FALSE(surrogate.fitted());
    const EvalRequest request{2, candidates_[1], true};
    const cost::OpCostBreakdown via_surrogate =
        surrogate.evaluate(graph_, request);
    const cost::OpCostBreakdown via_exact =
        exact.evaluate(graph_, request);
    expectBitExact(via_surrogate, via_exact);
}

TEST_F(EvalTest, SurrogateMatrixMeasuresSubsetAndPredictsRest)
{
    ExactEvaluator exact(sim_.costModel());
    SurrogateEvaluator surrogate(exact, 0.3);
    Rng rng(97);
    const auto fill =
        surrogate.fillMatrix(graph_, candidates_, rng);
    const long cells = static_cast<long>(graph_.opCount()) *
                       static_cast<long>(candidates_.size());
    EXPECT_EQ(fill.sampled + fill.predicted + fill.exact_fallbacks,
              cells);
    EXPECT_GT(fill.predicted, 0);
    EXPECT_LT(fill.sampled, cells);
    EXPECT_TRUE(surrogate.fitted());
    for (const auto &row : fill.cost)
        for (double c : row)
            EXPECT_GT(c, 0.0);
}

TEST(SurrogateFaults, InfeasibleColumnsNeverPredictedFinite)
{
    // Link faults isolate one corner die: full-occupancy (32-die)
    // strategies route through the dead links and are infeasible;
    // partial strategies fit on the surviving component and stay
    // feasible.
    hw::Wafer healthy(hw::WaferConfig::paperDefault());
    const hw::MeshTopology &topo = healthy.topology();
    hw::FaultMap faults(topo.dieCount(), topo.linkCount());
    const hw::DieId dead = topo.dieCount() - 1;
    for (hw::DieId neighbor : topo.neighbors(dead)) {
        faults.failLink(topo.linkId(dead, neighbor));
        faults.failLink(topo.linkId(neighbor, dead));
    }
    hw::Wafer wafer(hw::WaferConfig::paperDefault(), faults);
    sim::TrainingSimulator sim(
        wafer, tcme::MappingPolicy{tcme::MappingEngineKind::TCME});
    const auto graph = model::ComputeGraph::transformer(
        model::modelByName("GPT-3 6.7B"));

    solver::StrategySpaceOptions space;
    space.allow_sp = false;
    space.full_occupancy = false;
    const std::vector<ParallelSpec> candidates =
        solver::enumerateStrategies(wafer.dieCount(), graph.config(),
                                    space);

    ExactEvaluator exact(sim.costModel());
    SurrogateEvaluator surrogate(exact, 0.25);
    Rng rng(5);
    const auto fill = surrogate.fillMatrix(graph, candidates, rng);

    // Ground truth per cell from the exact evaluator. Columns where the
    // sampling pass saw at least one infeasible cell must carry *no*
    // finite prediction on any truly-infeasible cell (the fallback
    // measures them exactly instead).
    int infeasible_cells = 0;
    int suspect_columns = 0;
    for (std::size_t s = 0; s < candidates.size(); ++s) {
        bool measured_infeasible = false;
        std::vector<bool> truth_infeasible(graph.opCount(), false);
        for (int i = 0; i < graph.opCount(); ++i) {
            const cost::OpCostBreakdown truth =
                exact.evaluate(graph, {i, candidates[s], true});
            truth_infeasible[i] = !truth.feasible;
            if (!truth.feasible)
                ++infeasible_cells;
            if (!truth.feasible && std::isinf(fill.cost[i][s]))
                measured_infeasible = true;
        }
        if (!measured_infeasible)
            continue;
        ++suspect_columns;
        for (int i = 0; i < graph.opCount(); ++i) {
            if (truth_infeasible[i])
                EXPECT_TRUE(std::isinf(fill.cost[i][s]))
                    << "suspect column " << candidates[s].str()
                    << " op " << i << " predicted finite";
        }
    }
    EXPECT_GT(infeasible_cells, 0)
        << "fault scenario produced no infeasible cells";
    EXPECT_GT(suspect_columns, 0)
        << "sampling pass never saw an infeasible cell";
    EXPECT_GT(fill.exact_fallbacks, 0);
    EXPECT_GT(fill.predicted, 0)
        << "feasible columns should still be predicted";
}

// ---------------------------------------------------------------------
// Solver integration: evaluator sharing must not change results.
// ---------------------------------------------------------------------

TEST_F(EvalTest, SolverIdenticalWithOwnedAndSharedEvaluator)
{
    solver::DlsSolver owned(sim_);
    const solver::SolverResult a = owned.solve(graph_);

    ThreadPool pool(2);
    ExactEvaluator exact(sim_.costModel(), &pool,
                         /*memoize_breakdowns=*/false);
    CachingEvaluator shared(exact);
    solver::DlsSolver injected(sim_, solver::SolverConfig{}, &shared);
    const solver::SolverResult b = injected.solve(graph_);

    ASSERT_TRUE(a.feasible);
    ASSERT_TRUE(b.feasible);
    ASSERT_EQ(a.per_op_specs.size(), b.per_op_specs.size());
    for (std::size_t i = 0; i < a.per_op_specs.size(); ++i)
        EXPECT_TRUE(a.per_op_specs[i] == b.per_op_specs[i]);
    EXPECT_DOUBLE_EQ(a.step_time_s, b.step_time_s);

    // First solve measured every cell once...
    EXPECT_GT(b.matrix_measurements, 0);
    EXPECT_EQ(b.cache_hits, 0);

    // ...a repeat solve through the shared evaluator re-measures none.
    const solver::SolverResult c = injected.solve(graph_);
    ASSERT_TRUE(c.feasible);
    EXPECT_EQ(c.matrix_measurements, 0);
    EXPECT_GT(c.cache_hits, 0);
    EXPECT_EQ(c.cache_hits, b.matrix_measurements);
    for (std::size_t i = 0; i < a.per_op_specs.size(); ++i)
        EXPECT_TRUE(c.per_op_specs[i] == a.per_op_specs[i]);
}

}  // namespace
}  // namespace temp::eval
