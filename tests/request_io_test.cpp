/**
 * @file
 * Tests for the service wire format (api/request_io): the round-trip
 * contract serialize -> parse -> identical canonical request key, and
 * config_io-grade strictness (unknown keys are errors) on hostile
 * input — with no fatal() anywhere in the path.
 */
#include <gtest/gtest.h>

#include <cstdint>

#include "api/request_io.hpp"
#include "api/request_key.hpp"
#include "model/model_zoo.hpp"

namespace temp::api {
namespace {

/// The round-trip contract: the wire format is lossless with respect
/// to what a request computes (identical canonical key), and the
/// envelope tenant survives.
void
expectRoundTrip(const Request &request, const std::string &tenant)
{
    const std::string wire = toJson(request, tenant);
    ParsedRequest parsed;
    std::string error;
    ASSERT_TRUE(parseRequest(wire, &parsed, &error))
        << error << "\nwire: " << wire;
    EXPECT_EQ(requestKey(parsed.request), requestKey(request))
        << "wire: " << wire;
    EXPECT_EQ(parsed.tenant, tenant);
    // Re-serializing the parsed request reproduces the document
    // byte-for-byte: parse loses nothing toJson renders.
    EXPECT_EQ(toJson(parsed.request, parsed.tenant), wire);
}

TEST(RequestRoundTrip, Optimize)
{
    OptimizeRequest request;
    request.model = model::modelByName("GPT-3 6.7B");
    request.options.solver.ga_population = 8;
    request.options.solver.ga_generations = 4;
    request.options.solver.seed = 12345;
    expectRoundTrip(request, "team-a");
}

TEST(RequestRoundTrip, OptimizeNonCanonicalDoubles)
{
    OptimizeRequest request;
    request.model = model::modelByName("Llama2 7B");
    // Doubles with no short decimal rendering must survive %.17g.
    request.wafer.hbm.latency_s = 0.1 + 0.2;
    request.wafer.die.peak_flops = 1.234567890123e15;
    request.options.solver.ga_mutation_rate = 1.0 / 3.0;
    expectRoundTrip(request, "");
}

TEST(RequestRoundTrip, SeedsAreNotDoubles)
{
    // A uint64 seed above 2^53 cannot round through a double; the raw
    // decimal lexeme must carry it.
    OptimizeRequest request;
    request.model = model::modelByName("GPT-3 6.7B");
    request.options.solver.seed = 18446744073709551615ull;
    expectRoundTrip(request, "big-seed");
}

TEST(RequestRoundTrip, Baseline)
{
    BaselineRequest request;
    request.model = model::modelByName("GPT-3 6.7B");
    request.kind = baselines::BaselineKind::Megatron1;
    request.engine = tcme::MappingEngineKind::SMap;
    expectRoundTrip(request, "baseline-tenant");
}

TEST(RequestRoundTrip, Strategy)
{
    StrategyRequest request;
    request.model = model::modelByName("GPT-3 6.7B");
    request.spec.dp = 2;
    request.spec.tp = 4;
    request.spec.tatp = 2;
    request.spec.coupled_sp = true;
    expectRoundTrip(request, "");
}

TEST(RequestRoundTrip, FaultWithRates)
{
    FaultRequest request;
    request.model = model::modelByName("GPT-3 6.7B");
    request.link_fault_rate = 0.07;
    request.core_fault_rate = 1.0 / 30.0;
    request.fault_seed = 18446744073709551615ull;
    expectRoundTrip(request, "ops");
}

TEST(RequestRoundTrip, FaultWithExplicitMap)
{
    FaultRequest request;
    request.model = model::modelByName("GPT-3 6.7B");
    hw::FaultMap faults(4, 0);
    faults.failLink(3);
    faults.failLink(1);
    faults.setCoreFaultFraction(2, 0.25);
    request.faults = faults;
    expectRoundTrip(request, "ops");
}

TEST(RequestRoundTrip, MultiWafer)
{
    MultiWaferRequest request;
    request.model = model::modelByName("GPT-3 6.7B");
    request.pod.wafer_count = 4;
    request.pod.inter_wafer_latency_s = 2.5e-6;
    request.pp = 4;
    request.microbatches = 16;
    request.intra_spec.tp = 8;
    expectRoundTrip(request, "pod-team");
}

TEST(RequestRoundTrip, CacheStats)
{
    expectRoundTrip(CacheStatsRequest{}, "observer");
}

TEST(RequestParse, GoldenDocument)
{
    // A hand-written minimal document (only non-default fields) must
    // mean the same computation as the struct it describes.
    const std::string wire =
        "{\"kind\":\"strategy\",\"tenant\":\"t\","
        "\"model\":{\"base\":\"GPT-3 6.7B\"},"
        "\"wafer\":{\"rows\":4,\"cols\":4},"
        "\"options\":{\"eval_threads\":3},"
        "\"spec\":{\"dp\":2,\"tp\":8}}";
    ParsedRequest parsed;
    std::string error;
    ASSERT_TRUE(parseRequest(wire, &parsed, &error)) << error;

    StrategyRequest expected;
    expected.model = model::modelByName("GPT-3 6.7B");
    expected.wafer.rows = 4;
    expected.wafer.cols = 4;
    expected.options.eval_threads = 3;
    expected.spec.dp = 2;
    expected.spec.tp = 8;
    EXPECT_EQ(requestKey(parsed.request), requestKey(expected));
    EXPECT_EQ(parsed.tenant, "t");
}

TEST(RequestParse, DistinctRequestsHaveDistinctKeys)
{
    OptimizeRequest a;
    a.model = model::modelByName("GPT-3 6.7B");
    OptimizeRequest b = a;
    b.options.solver.seed = a.options.solver.seed + 1;
    EXPECT_NE(requestKey(Request{a}), requestKey(Request{b}));
}

/// Parse must fail with a message containing `needle`.
void
expectReject(const std::string &wire, const std::string &needle)
{
    ParsedRequest parsed;
    std::string error;
    ASSERT_FALSE(parseRequest(wire, &parsed, &error))
        << "accepted: " << wire;
    EXPECT_NE(error.find(needle), std::string::npos)
        << "error '" << error << "' lacks '" << needle << "'";
}

TEST(RequestParse, RejectsMalformedJson)
{
    expectReject("{\"kind\":", "request:");
    expectReject("[1,2,3]", "must be an object");
    expectReject("{}", "'kind' is required");
    expectReject("{\"kind\":\"frobnicate\"}", "unknown kind");
    expectReject("{\"kind\":42}", "must be a string");
}

TEST(RequestParse, RejectsUnknownKeysEverywhere)
{
    // Envelope, model, wafer, options, spec, faults, pod: a typo must
    // never silently configure the default (config_io parity).
    expectReject("{\"kind\":\"optimize\",\"bogus\":1,"
                 "\"model\":{\"base\":\"GPT-3 6.7B\"}}",
                 "unknown key 'bogus' for kind 'optimize'");
    expectReject("{\"kind\":\"optimize\",\"spec\":{},"
                 "\"model\":{\"base\":\"GPT-3 6.7B\"}}",
                 "unknown key 'spec' for kind 'optimize'");
    expectReject("{\"kind\":\"optimize\","
                 "\"model\":{\"base\":\"GPT-3 6.7B\",\"hat\":1}}",
                 "unknown model key 'hat'");
    expectReject("{\"kind\":\"optimize\",\"wafer\":{\"rows\":4,"
                 "\"hbm_gb\":99},\"model\":{\"base\":\"GPT-3 6.7B\"}}",
                 "unknown wafer key 'hbm_gb'");
    expectReject("{\"kind\":\"optimize\",\"options\":{\"ga_pop\":9},"
                 "\"model\":{\"base\":\"GPT-3 6.7B\"}}",
                 "unknown options key 'ga_pop'");
    expectReject("{\"kind\":\"strategy\",\"spec\":{\"ep\":2},"
                 "\"model\":{\"base\":\"GPT-3 6.7B\"}}",
                 "unknown spec key 'ep'");
    expectReject("{\"kind\":\"fault\",\"faults\":{\"dies\":4},"
                 "\"model\":{\"base\":\"GPT-3 6.7B\"}}",
                 "unknown faults key 'dies'");
    expectReject("{\"kind\":\"multiwafer\",\"pod\":{\"wafers\":4},"
                 "\"model\":{\"base\":\"GPT-3 6.7B\"}}",
                 "unknown pod key 'wafers'");
    expectReject("{\"kind\":\"cache-stats\",\"model\":{}}",
                 "unknown key 'model' for kind 'cache-stats'");
}

TEST(RequestParse, RejectsSemanticErrors)
{
    expectReject("{\"kind\":\"optimize\"}",
                 "'model' is required for kind 'optimize'");
    expectReject("{\"kind\":\"optimize\","
                 "\"model\":{\"base\":\"GPT-9 999T\"}}",
                 "unknown base model");
    expectReject("{\"kind\":\"optimize\",\"tenant\":7,"
                 "\"model\":{\"base\":\"GPT-3 6.7B\"}}",
                 "tenant must be a string");
    expectReject("{\"kind\":\"optimize\","
                 "\"wafer\":{\"rows\":0},"
                 "\"model\":{\"base\":\"GPT-3 6.7B\"}}",
                 "at least 1x1");
    expectReject("{\"kind\":\"optimize\",\"wafer\":{\"rows\":1.5},"
                 "\"model\":{\"base\":\"GPT-3 6.7B\"}}",
                 "must be an integer");
    expectReject("{\"kind\":\"baseline\",\"baseline_kind\":\"zero\","
                 "\"model\":{\"base\":\"GPT-3 6.7B\"}}",
                 "unknown baseline_kind 'zero'");
    expectReject("{\"kind\":\"baseline\",\"mapping_engine\":\"amap\","
                 "\"model\":{\"base\":\"GPT-3 6.7B\"}}",
                 "unknown mapping_engine 'amap'");
    expectReject("{\"kind\":\"fault\",\"fault_seed\":1.5,"
                 "\"model\":{\"base\":\"GPT-3 6.7B\"}}",
                 "fault_seed must be a non-negative integer");
    expectReject("{\"kind\":\"fault\",\"fault_seed\":-4,"
                 "\"model\":{\"base\":\"GPT-3 6.7B\"}}",
                 "fault_seed must be a non-negative integer");
    expectReject("{\"kind\":\"fault\",\"faults\":{\"die_count\":2,"
                 "\"failed_links\":[-1]},"
                 "\"model\":{\"base\":\"GPT-3 6.7B\"}}",
                 "failed_links entries must be >= 0");
    expectReject("{\"kind\":\"fault\",\"faults\":{\"die_count\":2,"
                 "\"core_fault_fractions\":[0.5]},"
                 "\"model\":{\"base\":\"GPT-3 6.7B\"}}",
                 "must have die_count entries");
    expectReject("{\"kind\":\"optimize\",\"model\":"
                 "{\"base\":\"GPT-3 6.7B\",\"layers\":{}}}",
                 "must be a scalar");
}

TEST(RequestParse, BoundsHostileAllocationSizes)
{
    // These fields size real allocations and topology builds; a
    // hostile one-line request must be rejected at parse time, not
    // allocate gigabytes (or terminate the server on bad_alloc).
    expectReject("{\"kind\":\"fault\",\"faults\":"
                 "{\"die_count\":2000000000},"
                 "\"model\":{\"base\":\"GPT-3 6.7B\"}}",
                 "faults.die_count exceeds");
    expectReject("{\"kind\":\"optimize\","
                 "\"wafer\":{\"rows\":46341,\"cols\":46341},"
                 "\"model\":{\"base\":\"GPT-3 6.7B\"}}",
                 "grid exceeds");
    expectReject("{\"kind\":\"multiwafer\","
                 "\"pod\":{\"wafer_count\":1000000},"
                 "\"model\":{\"base\":\"GPT-3 6.7B\"}}",
                 "pod.wafer_count exceeds");
}

}  // namespace
}  // namespace temp::api
