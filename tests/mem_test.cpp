/**
 * @file
 * Unit tests for the memory substrate: HBM timing/energy model and the
 * per-die memory ledger with OOM detection.
 */
#include <gtest/gtest.h>

#include "hw/config.hpp"
#include "mem/hbm_model.hpp"
#include "mem/memory_ledger.hpp"

namespace temp::mem {
namespace {

TEST(Hbm, SequentialBandwidthNearPeak)
{
    HbmModel hbm(hw::HbmConfig{});
    EXPECT_NEAR(hbm.sustainedBandwidth(AccessPattern::Sequential),
                0.92 * hw::HbmConfig{}.bandwidth_bytes_per_s, 1e6);
}

TEST(Hbm, PatternOrdering)
{
    HbmModel hbm(hw::HbmConfig{});
    EXPECT_GT(hbm.sustainedBandwidth(AccessPattern::Sequential),
              hbm.sustainedBandwidth(AccessPattern::Strided));
    EXPECT_GT(hbm.sustainedBandwidth(AccessPattern::Strided),
              hbm.sustainedBandwidth(AccessPattern::Random));
}

TEST(Hbm, AccessTimeIncludesLatency)
{
    HbmModel hbm(hw::HbmConfig{});
    const double t =
        hbm.accessTime(0.92 * hw::HbmConfig{}.bandwidth_bytes_per_s);
    EXPECT_NEAR(t, 1.0 + 100e-9, 1e-6);  // one second of payload
    EXPECT_DOUBLE_EQ(hbm.accessTime(0.0), 0.0);
}

TEST(Hbm, EnergyPerByte)
{
    HbmModel hbm(hw::HbmConfig{});
    // 6 pJ/bit -> 48 pJ/B.
    EXPECT_NEAR(hbm.accessEnergy(1e9), 48e-3, 1e-9);
}

TEST(Footprint, TotalsAndArithmetic)
{
    MemoryFootprint fp;
    fp[MemClass::Weights] = 10.0;
    fp[MemClass::Activations] = 5.0;
    EXPECT_DOUBLE_EQ(fp.total(), 15.0);
    const MemoryFootprint doubled = fp + fp;
    EXPECT_DOUBLE_EQ(doubled.total(), 30.0);
    EXPECT_DOUBLE_EQ(fp.scaled(3.0)[MemClass::Weights], 30.0);
}

TEST(Ledger, TracksPeakPerDie)
{
    MemoryLedger ledger(2, 100.0);
    ledger.allocate(0, MemClass::Activations, 40.0);
    ledger.allocate(0, MemClass::Activations, 30.0);
    ledger.release(0, MemClass::Activations, 50.0);
    ledger.allocate(0, MemClass::Weights, 10.0);
    EXPECT_DOUBLE_EQ(ledger.liveBytes(0), 30.0);
    EXPECT_DOUBLE_EQ(ledger.peakBytes(0), 70.0);
    EXPECT_DOUBLE_EQ(ledger.peakBytes(1), 0.0);
    EXPECT_FALSE(ledger.oom());
}

TEST(Ledger, DetectsOom)
{
    MemoryLedger ledger(2, 100.0);
    ledger.allocate(1, MemClass::Weights, 60.0);
    ledger.allocate(1, MemClass::OptimizerState, 70.0);
    EXPECT_TRUE(ledger.oom());
    const auto dies = ledger.oomDies();
    ASSERT_EQ(dies.size(), 1u);
    EXPECT_EQ(dies[0], 1);
}

TEST(Ledger, ReleaseNeverGoesNegative)
{
    MemoryLedger ledger(1, 100.0);
    ledger.allocate(0, MemClass::CommBuffers, 5.0);
    ledger.release(0, MemClass::CommBuffers, 50.0);
    EXPECT_DOUBLE_EQ(ledger.liveBytes(0), 0.0);
}

TEST(Ledger, PeakFootprintSnapshotsBreakdown)
{
    MemoryLedger ledger(1, 1000.0);
    ledger.allocate(0, MemClass::Weights, 100.0);
    ledger.allocate(0, MemClass::Activations, 200.0);
    ledger.release(0, MemClass::Activations, 200.0);
    ledger.allocate(0, MemClass::Gradients, 50.0);
    const MemoryFootprint &peak = ledger.peakFootprint(0);
    EXPECT_DOUBLE_EQ(peak[MemClass::Weights], 100.0);
    EXPECT_DOUBLE_EQ(peak[MemClass::Activations], 200.0);
    EXPECT_DOUBLE_EQ(peak[MemClass::Gradients], 0.0);
    EXPECT_DOUBLE_EQ(ledger.maxPeakBytes(), 300.0);
}

TEST(Ledger, MemClassNames)
{
    EXPECT_STREQ(memClassName(MemClass::Weights), "weights");
    EXPECT_STREQ(memClassName(MemClass::OptimizerState), "optimizer");
}

}  // namespace
}  // namespace temp::mem
