/**
 * @file
 * Tests for the persistent memo tier (src/persist): the snapshot byte
 * format's validation contract (truncation, bit flips, version and
 * contract-fingerprint mismatches all cold-start, never corrupt), and
 * the TempService warm-start path — a snapshot-warmed fresh service
 * answers a repeat request with zero new matrix measurements and
 * bit-identical results, including under finite byte budgets.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/request_key.hpp"
#include "api/service.hpp"
#include "persist/codec.hpp"
#include "persist/snapshot.hpp"

namespace temp::persist {
namespace {

/// A fast solver configuration for test-sized searches.
core::FrameworkOptions
fastOptions()
{
    core::FrameworkOptions options;
    options.solver.ga_population = 8;
    options.solver.ga_generations = 4;
    options.eval_threads = 2;
    return options;
}

api::OptimizeRequest
testRequest()
{
    return {model::modelByName("GPT-3 6.7B"),
            hw::WaferConfig::paperDefault(), fastOptions()};
}

/// A unique path under the gtest temp dir; removed on destruction.
class TempFile
{
  public:
    explicit TempFile(const std::string &name)
        : path_(::testing::TempDir() + "persist_test_" + name)
    {
        std::remove(path_.c_str());
    }
    ~TempFile() { std::remove(path_.c_str()); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/// A small synthetic snapshot exercising every section kind.
Snapshot
syntheticSnapshot()
{
    MemoBlock block;
    block.framework_key = "wafer{4x8}|opts{test}";

    cost::OpCostBreakdown breakdown;
    breakdown.fwd_time = 1.5;
    breakdown.bwd_time = 3.0;
    breakdown.step_comm_time = 0.25;
    block.breakdowns.emplace_back("eval-key-1", breakdown);
    breakdown.feasible = false;
    block.breakdowns.emplace_back("eval-key-2", breakdown);

    sim::PerfReport report;
    report.step_time = 0.125;
    report.oom = true;
    report.grad_accum = 4;
    block.step_reports.emplace_back("step-key-1", report);

    net::CollectiveTask task;
    task.kind = net::CollectiveKind::AllReduce;
    task.group = {net::DieId{0}, net::DieId{1}, net::DieId{5}};
    task.bytes = 1.0e6;
    task.tag = 3;
    block.schedule_tasks.push_back(task);

    Snapshot snapshot;
    snapshot.blocks.push_back(std::move(block));
    return snapshot;
}

TEST(SnapshotCodec, EncodeDecodeRoundTripsByteStable)
{
    const Snapshot snapshot = syntheticSnapshot();
    const std::string bytes = encodeSnapshot(snapshot);

    Snapshot decoded;
    std::string error;
    ASSERT_TRUE(decodeSnapshot(bytes, &decoded, &error)) << error;
    ASSERT_EQ(decoded.blocks.size(), 1u);
    const MemoBlock &block = decoded.blocks[0];
    EXPECT_EQ(block.framework_key, snapshot.blocks[0].framework_key);
    ASSERT_EQ(block.breakdowns.size(), 2u);
    EXPECT_EQ(block.breakdowns[0].first, "eval-key-1");
    EXPECT_DOUBLE_EQ(block.breakdowns[0].second.bwd_time, 3.0);
    EXPECT_FALSE(block.breakdowns[1].second.feasible);
    ASSERT_EQ(block.step_reports.size(), 1u);
    EXPECT_TRUE(block.step_reports[0].second.oom);
    EXPECT_EQ(block.step_reports[0].second.grad_accum, 4);
    ASSERT_EQ(block.schedule_tasks.size(), 1u);
    EXPECT_EQ(block.schedule_tasks[0].group.size(), 3u);
    EXPECT_EQ(block.schedule_tasks[0].tag, 3);

    // Decode then re-encode is the identity on the byte image: the
    // format has one canonical serialization.
    EXPECT_EQ(encodeSnapshot(decoded), bytes);
}

TEST(SnapshotCodec, EveryHeaderFieldIsValidated)
{
    const std::string bytes = encodeSnapshot(syntheticSnapshot());

    struct Case
    {
        const char *what;
        std::size_t offset;
    };
    // Layout: magic [0,8), version [8,12), fingerprint [12,20).
    for (const Case c : {Case{"magic", 0}, Case{"version", 8},
                         Case{"fingerprint", 12}}) {
        std::string corrupt = bytes;
        corrupt[c.offset] = static_cast<char>(corrupt[c.offset] ^ 0x01);
        Snapshot out;
        std::string error;
        EXPECT_FALSE(decodeSnapshot(corrupt, &out, &error))
            << c.what << " flip was accepted";
        EXPECT_FALSE(error.empty()) << c.what;
        EXPECT_TRUE(out.blocks.empty()) << c.what;
    }
}

TEST(SnapshotCodec, PayloadBitFlipsFailTheChecksum)
{
    const std::string bytes = encodeSnapshot(syntheticSnapshot());
    // Flip one bit in each quarter of the body past the header: every
    // section is covered by its FNV checksum (or the structural
    // bounds checks around it).
    for (const std::size_t at :
         {std::size_t{24}, bytes.size() / 2, (3 * bytes.size()) / 4,
          bytes.size() - 1}) {
        std::string corrupt = bytes;
        corrupt[at] = static_cast<char>(corrupt[at] ^ 0x10);
        Snapshot out;
        std::string error;
        EXPECT_FALSE(decodeSnapshot(corrupt, &out, &error))
            << "flip at " << at << " was accepted";
        EXPECT_TRUE(out.blocks.empty());
    }
}

TEST(SnapshotCodec, TruncationAtAnyPrefixIsRejected)
{
    const std::string bytes = encodeSnapshot(syntheticSnapshot());
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{7}, std::size_t{12},
          std::size_t{21}, bytes.size() / 2, bytes.size() - 1}) {
        Snapshot out;
        std::string error;
        EXPECT_FALSE(
            decodeSnapshot(bytes.substr(0, keep), &out, &error))
            << "prefix of " << keep << " bytes was accepted";
        EXPECT_TRUE(out.blocks.empty());
    }
    // Trailing garbage is no better than missing bytes.
    Snapshot out;
    std::string error;
    EXPECT_FALSE(decodeSnapshot(bytes + "x", &out, &error));
}

TEST(SnapshotFile, SaveLoadRoundTripsAndMissingFileFailsCleanly)
{
    TempFile file("roundtrip.snap");
    const Snapshot snapshot = syntheticSnapshot();
    std::string error;
    ASSERT_TRUE(saveSnapshotFile(file.path(), snapshot, &error))
        << error;

    Snapshot loaded;
    ASSERT_TRUE(loadSnapshotFile(file.path(), &loaded, &error))
        << error;
    EXPECT_EQ(encodeSnapshot(loaded), encodeSnapshot(snapshot));

    Snapshot missing;
    EXPECT_FALSE(loadSnapshotFile(file.path() + ".nope", &missing,
                                  &error));
    EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------
// TempService warm start
// ---------------------------------------------------------------

TEST(ServiceWarmStart, SnapshotServesRepeatWorkWithZeroMeasurements)
{
    TempFile file("warm.snap");
    const api::OptimizeRequest request = testRequest();

    // Cold process: solve, then persist the memo stack.
    api::Response cold;
    {
        api::TempService service;
        cold = service.run(request);
        ASSERT_TRUE(cold.ok) << cold.error;
        EXPECT_GT(cold.solver.matrix_measurements, 0);
        std::string error;
        ASSERT_TRUE(service.saveSnapshot(file.path(), &error)) << error;
        EXPECT_EQ(service.persistStats().saves, 1);
    }

    // Fresh process: warm-start, then the same request re-measures
    // nothing and re-simulates nothing — and answers identically.
    api::TempService warmed;
    std::string error;
    ASSERT_TRUE(warmed.warmStart(file.path(), &error)) << error;
    const api::TempService::PersistStats staged = warmed.persistStats();
    EXPECT_EQ(staged.loads, 1);
    EXPECT_EQ(staged.blocks_staged, 1);
    EXPECT_EQ(staged.frameworks_warmed, 0);  // consumed lazily

    const api::Response warm = warmed.run(request);
    ASSERT_TRUE(warm.ok) << warm.error;
    EXPECT_EQ(warm.solver.matrix_measurements, 0);
    EXPECT_EQ(warm.solver.step_sims, 0);
    EXPECT_GT(warm.solver.cache_hits, 0);
    EXPECT_EQ(warmed.persistStats().frameworks_warmed, 1);

    EXPECT_EQ(warm.solver.per_op_specs, cold.solver.per_op_specs);
    EXPECT_DOUBLE_EQ(warm.solver.step_time_s, cold.solver.step_time_s);
    EXPECT_EQ(warm.solver.evaluations, cold.solver.evaluations);
}

TEST(ServiceWarmStart, ByteBudgetedCachesStayBitIdentical)
{
    TempFile file("budgeted.snap");
    api::OptimizeRequest request = testRequest();
    // Finite byte budgets on every layer: residency shrinks, results
    // must not move (evicted entries recompute bit-identically).
    request.options.cache.max_eval_bytes = 256 << 10;
    request.options.cache.max_step_bytes = 128 << 10;
    request.options.cache.max_layout_bytes = 256 << 10;
    request.options.cache.max_schedule_bytes = 256 << 10;
    request.options.cache.max_route_bytes = 1 << 20;

    api::OptimizeRequest unbounded = testRequest();

    api::Response cold_unbounded;
    api::Response cold;
    {
        api::TempService service;
        cold_unbounded = service.run(unbounded);
        cold = service.run(request);
        ASSERT_TRUE(cold.ok) << cold.error;
        std::string error;
        ASSERT_TRUE(service.saveSnapshot(file.path(), &error)) << error;
    }
    // Budgets changed residency, not answers.
    EXPECT_EQ(cold.solver.per_op_specs,
              cold_unbounded.solver.per_op_specs);
    EXPECT_DOUBLE_EQ(cold.solver.step_time_s,
                     cold_unbounded.solver.step_time_s);

    api::TempService warmed;
    std::string error;
    ASSERT_TRUE(warmed.warmStart(file.path(), &error)) << error;
    const api::Response warm = warmed.run(request);
    ASSERT_TRUE(warm.ok) << warm.error;
    EXPECT_EQ(warm.solver.per_op_specs, cold.solver.per_op_specs);
    EXPECT_DOUBLE_EQ(warm.solver.step_time_s, cold.solver.step_time_s);
}

TEST(ServiceWarmStart, CorruptSnapshotColdStartsAndCounts)
{
    TempFile file("corrupt.snap");
    const api::OptimizeRequest request = testRequest();
    {
        api::TempService service;
        ASSERT_TRUE(service.run(request).ok);
        std::string error;
        ASSERT_TRUE(service.saveSnapshot(file.path(), &error)) << error;
    }
    // Damage the file on disk.
    {
        Snapshot loaded;
        std::string error;
        ASSERT_TRUE(loadSnapshotFile(file.path(), &loaded, &error));
        std::string bytes = encodeSnapshot(loaded);
        bytes[bytes.size() / 2] =
            static_cast<char>(bytes[bytes.size() / 2] ^ 0x20);
        std::FILE *f = std::fopen(file.path().c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fwrite(bytes.data(), 1, bytes.size(), f);
        std::fclose(f);
    }

    api::TempService service;
    std::string error;
    EXPECT_FALSE(service.warmStart(file.path(), &error));
    EXPECT_FALSE(error.empty());
    EXPECT_EQ(service.persistStats().load_failures, 1);
    EXPECT_EQ(service.persistStats().blocks_staged, 0);

    // The service still works — a failed load is a cold start, not a
    // failure mode.
    const api::Response response = service.run(request);
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_GT(response.solver.matrix_measurements, 0);
}

TEST(ServiceWarmStart, DifferentWaferSnapshotStaysPending)
{
    TempFile file("other_wafer.snap");
    const api::OptimizeRequest request = testRequest();
    {
        api::TempService service;
        ASSERT_TRUE(service.run(request).ok);
        std::string error;
        ASSERT_TRUE(service.saveSnapshot(file.path(), &error)) << error;
    }

    // A 4x4 wafer never matches the snapshot's 4x8 framework key: the
    // block stages harmlessly and the solve is an honest cold start.
    api::OptimizeRequest other = testRequest();
    other.wafer = hw::WaferConfig::paperDefault().withGrid(4, 4);

    api::TempService service;
    std::string error;
    ASSERT_TRUE(service.warmStart(file.path(), &error)) << error;
    EXPECT_EQ(service.persistStats().blocks_staged, 1);

    const api::Response response = service.run(other);
    ASSERT_TRUE(response.ok) << response.error;
    EXPECT_GT(response.solver.matrix_measurements, 0);
    EXPECT_EQ(service.persistStats().frameworks_warmed, 0);

    // A save from this process carries the still-pending foreign block
    // alongside the newly warmed one — no data is silently dropped.
    TempFile carried("carried.snap");
    ASSERT_TRUE(service.saveSnapshot(carried.path(), &error)) << error;
    Snapshot resaved;
    ASSERT_TRUE(loadSnapshotFile(carried.path(), &resaved, &error))
        << error;
    EXPECT_EQ(resaved.blocks.size(), 2u);
}

TEST(ServiceWarmStart, ConcurrentConsumptionAndSaveAreSafe)
{
    TempFile file("concurrent.snap");
    const api::OptimizeRequest request = testRequest();
    {
        api::TempService service;
        ASSERT_TRUE(service.run(request).ok);
        std::string error;
        ASSERT_TRUE(service.saveSnapshot(file.path(), &error)) << error;
    }

    api::TempService service;
    std::string error;
    ASSERT_TRUE(service.warmStart(file.path(), &error)) << error;

    // Racing identical requests consume the one staged block exactly
    // once while a saver exports mid-flight (TSan watches the
    // pending-block handoff); every answer must still be warm-served.
    TempFile resaved("concurrent_resave.snap");
    std::atomic<int> ok{0};
    std::atomic<long> measured{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < 4; ++i)
        threads.emplace_back([&] {
            const api::Response response = service.run(request);
            if (response.ok)
                ++ok;
            measured += response.solver.matrix_measurements;
        });
    std::thread saver([&] {
        std::string save_error;
        service.saveSnapshot(resaved.path(), &save_error);
    });
    for (std::thread &thread : threads)
        thread.join();
    saver.join();

    EXPECT_EQ(ok.load(), 4);
    EXPECT_EQ(measured.load(), 0);  // all four rode the warm memos
    EXPECT_EQ(service.persistStats().frameworks_warmed, 1);
}

}  // namespace
}  // namespace temp::persist
