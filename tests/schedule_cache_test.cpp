/**
 * @file
 * Tests for the network hot path's schedule layer: ScheduleCache
 * hit/miss accounting, bit-exact cached vs. uncached timings,
 * fault-epoch invalidation (injected faults must not reuse stale
 * routes), flat-arena CommSchedule invariants, and determinism of the
 * whole stack across eval_threads.
 */
#include <gtest/gtest.h>

#include <vector>

#include "core/framework.hpp"
#include "cost/cost_model.hpp"
#include "hw/wafer.hpp"
#include "model/model_zoo.hpp"
#include "net/collective.hpp"
#include "net/schedule_cache.hpp"

namespace temp::net {
namespace {

CollectiveTask
allReduceTask(std::vector<DieId> group, double bytes, int tag = 0)
{
    CollectiveTask task;
    task.kind = CollectiveKind::AllReduce;
    task.group = std::move(group);
    task.bytes = bytes;
    task.tag = tag;
    return task;
}

TEST(ScheduleCache, CountsLoweringsAndHitsHonestly)
{
    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    Router router(wafer.topology(), &wafer.faults());
    CollectiveScheduler scheduler(router);
    ScheduleCache cache(scheduler);

    const CollectiveTask task = allReduceTask({0, 1, 2, 3}, 4e6);
    bool hit = true;
    const auto first = cache.lowered(task, wafer.faultEpoch(), &hit);
    EXPECT_FALSE(hit);
    const auto second = cache.lowered(task, wafer.faultEpoch(), &hit);
    EXPECT_TRUE(hit);
    // Hits share the lowered instance, they do not re-lower.
    EXPECT_EQ(first.get(), second.get());

    const ScheduleCacheStats stats = cache.stats();
    EXPECT_EQ(stats.lowerings, 1);
    EXPECT_EQ(stats.hits, 1);
    EXPECT_DOUBLE_EQ(stats.hitRate(), 0.5);
    EXPECT_EQ(cache.size(), 1u);

    // A different signature (bytes) is its own entry.
    cache.lowered(allReduceTask({0, 1, 2, 3}, 8e6), wafer.faultEpoch());
    EXPECT_EQ(cache.stats().lowerings, 2);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ScheduleCache, CachedScheduleTimesBitExactly)
{
    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    Router router(wafer.topology(), &wafer.faults());
    CollectiveScheduler scheduler(router);
    ScheduleCache cache(scheduler);
    ContentionModel contention(wafer, 200e-9);

    for (int size : {2, 4, 8, 16}) {
        std::vector<DieId> group;
        for (int i = 0; i < size; ++i)
            group.push_back(i);
        const CollectiveTask task = allReduceTask(group, 1e6 * size);

        const CommSchedule fresh = scheduler.schedule(task);
        const auto cached = cache.lowered(task, wafer.faultEpoch());
        const auto served = cache.lowered(task, wafer.faultEpoch());

        const PhaseTiming t_fresh = contention.evaluateSequence(fresh);
        const PhaseTiming t_cached = contention.evaluateSequence(*cached);
        const PhaseTiming t_served = contention.evaluateSequence(*served);
        EXPECT_EQ(t_fresh.time_s, t_cached.time_s);
        EXPECT_EQ(t_fresh.time_s, t_served.time_s);
        EXPECT_EQ(t_fresh.total_bytes, t_cached.total_bytes);
        EXPECT_EQ(t_fresh.bottleneck_link, t_cached.bottleneck_link);
        EXPECT_EQ(fresh.linkBytes(), cached->linkBytes());
    }
}

TEST(ScheduleCache, FaultInjectionBumpsEpochAndInvalidates)
{
    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    Router router(wafer.topology(), &wafer.faults());
    CollectiveScheduler scheduler(router);
    ScheduleCache cache(scheduler);

    const std::uint64_t healthy_epoch = wafer.faultEpoch();
    const CollectiveTask task = allReduceTask({0, 1, 2, 3}, 4e6);
    const auto healthy = cache.lowered(task, healthy_epoch);
    EXPECT_TRUE(healthy->feasible);

    // Fail the 1->2 channel (both directions), which the healthy ring
    // crosses.
    hw::FaultMap faults(wafer.dieCount(), wafer.topology().linkCount());
    faults.failLink(wafer.topology().linkId(1, 2));
    faults.failLink(wafer.topology().linkId(2, 1));
    wafer.setFaults(faults);
    EXPECT_GT(wafer.faultEpoch(), healthy_epoch);

    // The stale schedule must not be served: the lookup re-lowers
    // against the degraded fabric and the detour shows up as longer
    // routes.
    bool hit = true;
    const auto degraded = cache.lowered(task, wafer.faultEpoch(), &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(cache.stats().lowerings, 2);
    EXPECT_TRUE(degraded->feasible);
    EXPECT_GT(degraded->linkBytes(), healthy->linkBytes());
    for (const Flow &flow : degraded->flows())
        for (LinkId link : flow.route.links())
            EXPECT_TRUE(wafer.linkUsable(link));

    // Same epoch again: served from the rebuilt cache.
    cache.lowered(task, wafer.faultEpoch(), &hit);
    EXPECT_TRUE(hit);
}

TEST(ScheduleCache, CostModelReactsToLiveFaultInjection)
{
    // End-to-end: the cost model's shared cache and its wafer-bound
    // contention snapshot must both observe setFaults() on a live
    // wafer.
    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    cost::WaferCostModel model(
        wafer, tcme::MappingPolicy{tcme::MappingEngineKind::TCME});
    const std::vector<CollectiveTask> tasks{
        allReduceTask({0, 1, 2, 3}, 64e6)};

    const PhaseTiming healthy = model.timeCollectiveTasks(tasks);
    const net::ScheduleCacheStats before = model.scheduleStats();
    EXPECT_GT(before.lowerings, 0);

    hw::FaultMap faults(wafer.dieCount(), wafer.topology().linkCount());
    faults.failLink(wafer.topology().linkId(1, 2));
    faults.failLink(wafer.topology().linkId(2, 1));
    wafer.setFaults(faults);

    const PhaseTiming degraded = model.timeCollectiveTasks(tasks);
    const net::ScheduleCacheStats after = model.scheduleStats();
    // Epoch bump forced a re-lowering instead of a stale hit...
    EXPECT_GT(after.lowerings, before.lowerings);
    // ...and the detour costs more wall time than the healthy ring.
    EXPECT_GT(degraded.time_s, healthy.time_s);
}

TEST(CommSchedule, FlatArenaRoundsPartitionTheFlowArena)
{
    hw::Wafer wafer(hw::WaferConfig::paperDefault());
    Router router(wafer.topology(), &wafer.faults());
    CollectiveScheduler scheduler(router);

    const CommSchedule s = scheduler.ringAllReduce(
        {0, 1, 2, 3, 4, 5, 6, 7}, 32e6);
    std::size_t spanned = 0;
    for (int r = 0; r < s.roundCount(); ++r) {
        const auto round = s.round(r);
        // Rounds are contiguous, ordered slices of flows().
        EXPECT_EQ(round.data(), s.flows().data() + spanned);
        spanned += round.size();
    }
    EXPECT_EQ(spanned, s.flowCount());

    // combine() interleaves per round and preserves totals.
    const CommSchedule a = scheduler.p2p(0, 3, 1e6);
    const CommSchedule b = scheduler.ringAllGather({4, 5, 6, 7}, 2e6);
    const CommSchedule *parts[] = {&a, &b};
    const CommSchedule merged = CommSchedule::combine(parts);
    EXPECT_EQ(merged.roundCount(), b.roundCount());
    EXPECT_EQ(merged.flowCount(), a.flowCount() + b.flowCount());
    EXPECT_DOUBLE_EQ(merged.payload_bytes,
                     a.payload_bytes + b.payload_bytes);
    EXPECT_DOUBLE_EQ(merged.linkBytes(), a.linkBytes() + b.linkBytes());
}

TEST(ScheduleCache, SolveIsDeterministicAcrossEvalThreads)
{
    // The flat-arena schedules and the shared cache must not leak any
    // thread-count dependence into results: identical per-op specs and
    // bit-identical step time for 1-thread and 4-thread frameworks,
    // and the schedule accounting's total lookup count matches too
    // (the lowerings/hits split is attribution, the sum is work).
    const model::ModelConfig model = model::modelByName("GPT-3 6.7B");
    core::FrameworkOptions serial;
    serial.eval_threads = 1;
    serial.solver.ga_population = 8;
    serial.solver.ga_generations = 4;
    core::FrameworkOptions wide = serial;
    wide.eval_threads = 4;

    const core::TempFramework f1(hw::WaferConfig::paperDefault(), serial);
    const core::TempFramework f4(hw::WaferConfig::paperDefault(), wide);
    const solver::SolverResult r1 = f1.optimize(model);
    const solver::SolverResult r4 = f4.optimize(model);

    ASSERT_TRUE(r1.feasible);
    ASSERT_TRUE(r4.feasible);
    EXPECT_EQ(r1.per_op_specs, r4.per_op_specs);
    EXPECT_DOUBLE_EQ(r1.step_time_s, r4.step_time_s);
    EXPECT_GT(r1.schedule_lowerings, 0);
    EXPECT_GT(r1.schedule_cache_hits, 0);
    EXPECT_EQ(r1.schedule_lowerings + r1.schedule_cache_hits,
              r4.schedule_lowerings + r4.schedule_cache_hits);
    // Cold-solve acceptance: most lookups are served by the cache.
    const double hit_rate =
        static_cast<double>(r1.schedule_cache_hits) /
        static_cast<double>(r1.schedule_lowerings +
                            r1.schedule_cache_hits);
    EXPECT_GT(hit_rate, 0.5);
}

}  // namespace
}  // namespace temp::net
