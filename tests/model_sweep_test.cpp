/**
 * @file
 * Assurance sweep across every Table II model: the full framework must
 * find a feasible, memory-fitting strategy for each, and the paper's
 * structural claims (TEMP fastest, TATP in the plan, sane metrics) must
 * hold model by model. This is the regression suite guarding the
 * headline Fig. 13 shape.
 */
#include <gtest/gtest.h>

#include "core/framework.hpp"

namespace temp {
namespace {

class ModelSweep : public ::testing::TestWithParam<int>
{
  protected:
    static model::ModelConfig
    theModel()
    {
        return model::evaluationModels()[GetParam()];
    }
};

TEST_P(ModelSweep, TempFindsMemoryFeasiblePlan)
{
    core::TempFramework fw(hw::WaferConfig::paperDefault());
    const auto result = fw.optimize(theModel());
    ASSERT_TRUE(result.feasible) << theModel().name;
    EXPECT_FALSE(result.report.oom) << theModel().name;
    EXPECT_GT(result.report.throughput_tokens_per_s, 0.0);
    EXPECT_LE(result.report.peak_mem_bytes,
              hw::WaferConfig::paperDefault().hbm.capacity_bytes);
}

TEST_P(ModelSweep, TempMatchesOrBeatsFsdpBaseline)
{
    // FSDP+SMap trains every model (the paper's ablation base); TEMP
    // must never lose to it.
    core::TempFramework fw(hw::WaferConfig::paperDefault());
    const auto temp_result = fw.optimize(theModel());
    ASSERT_TRUE(temp_result.feasible);
    const auto fsdp = fw.evaluateBaseline(
        baselines::BaselineKind::Fsdp, tcme::MappingEngineKind::SMap,
        theModel());
    ASSERT_FALSE(fsdp.all_oom) << theModel().name;
    EXPECT_LE(temp_result.step_time_s, fsdp.report.step_time * 1.001)
        << theModel().name;
}

TEST_P(ModelSweep, PlanUsesTensorStreaming)
{
    // Every optimal plan exercises TATP on at least one weighted GEMM
    // (the premise of the whole paper).
    core::TempFramework fw(hw::WaferConfig::paperDefault());
    const auto result = fw.optimize(theModel());
    ASSERT_TRUE(result.feasible);
    const auto graph = model::ComputeGraph::transformer(theModel());
    bool streamed = false;
    for (int i = 0; i < graph.opCount(); ++i)
        if (graph.op(i).has_weight && result.per_op_specs[i].tatp > 1)
            streamed = true;
    EXPECT_TRUE(streamed) << theModel().name;
}

TEST_P(ModelSweep, MetricsAreInternallyConsistent)
{
    core::TempFramework fw(hw::WaferConfig::paperDefault());
    const auto result = fw.optimize(theModel());
    ASSERT_TRUE(result.feasible);
    const sim::PerfReport &r = result.report;
    // Wall time dominates each of its components.
    EXPECT_GE(r.step_time * 1.001, r.exposed_comm);
    EXPECT_GE(r.step_time * 1.001, r.comp_time);
    // Energy breakdown sums and power derives from it.
    EXPECT_NEAR(r.energy.total(),
                r.energy.compute_j + r.energy.dram_j + r.energy.d2d_j +
                    r.energy.static_j,
                r.energy.total() * 1e-9);
    EXPECT_NEAR(r.avg_power_w, r.energy.total() / r.step_time,
                r.avg_power_w * 1e-6);
    // Throughput equals tokens per step time.
    const double tokens = static_cast<double>(theModel().batch) *
                          theModel().seq;
    EXPECT_NEAR(r.throughput_tokens_per_s, tokens / r.step_time,
                r.throughput_tokens_per_s * 1e-6);
}

INSTANTIATE_TEST_SUITE_P(TableTwo, ModelSweep, ::testing::Range(0, 6),
                         [](const auto &info) {
                             std::string name =
                                 model::evaluationModels()[info.param]
                                     .name;
                             for (char &c : name)
                                 if (!isalnum(static_cast<unsigned char>(
                                         c)))
                                     c = '_';
                             return name;
                         });

}  // namespace
}  // namespace temp
