/**
 * @file
 * Unit tests for the network layer: routing, link loads, the contention
 * model, collective schedules and multicast trees.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "hw/fault.hpp"
#include "hw/topology.hpp"
#include "net/collective.hpp"
#include "net/contention.hpp"
#include "net/route.hpp"

namespace temp::net {
namespace {

using hw::DieId;
using hw::LinkId;
using hw::MeshTopology;

/// Walks a route and returns the die sequence it visits.
std::vector<DieId>
visitedDies(const MeshTopology &mesh, const Route &route)
{
    std::vector<DieId> dies{route.src};
    for (LinkId link : route.links)
        dies.push_back(mesh.link(link).dst);
    return dies;
}

TEST(Router, XYRouteHasManhattanLength)
{
    MeshTopology mesh(4, 8);
    Router router(mesh);
    const DieId src = mesh.dieAt(0, 0);
    const DieId dst = mesh.dieAt(3, 5);
    const Route route = router.route(src, dst, RoutePolicy::XY);
    EXPECT_EQ(route.hops(), mesh.hopDistance(src, dst));
    // XY: column moves first.
    const auto dies = visitedDies(mesh, route);
    EXPECT_EQ(dies.front(), src);
    EXPECT_EQ(dies.back(), dst);
    EXPECT_EQ(mesh.coordOf(dies[1]).row, 0);
    EXPECT_EQ(mesh.coordOf(dies[1]).col, 1);
}

TEST(Router, YXRouteMovesRowsFirst)
{
    MeshTopology mesh(4, 8);
    Router router(mesh);
    const Route route =
        router.route(mesh.dieAt(0, 0), mesh.dieAt(3, 5), RoutePolicy::YX);
    EXPECT_EQ(route.hops(), 8);
    const auto dies = visitedDies(mesh, route);
    EXPECT_EQ(mesh.coordOf(dies[1]).row, 1);
    EXPECT_EQ(mesh.coordOf(dies[1]).col, 0);
}

TEST(Router, SelfRouteIsEmpty)
{
    MeshTopology mesh(2, 2);
    Router router(mesh);
    EXPECT_TRUE(router.route(0, 0).empty());
}

TEST(Router, RouteViaWaypointConcatenates)
{
    MeshTopology mesh(4, 8);
    Router router(mesh);
    const DieId src = mesh.dieAt(0, 0);
    const DieId way = mesh.dieAt(2, 0);
    const DieId dst = mesh.dieAt(0, 2);
    const Route route = router.routeVia(src, way, dst);
    EXPECT_EQ(route.hops(), 2 + 4);  // down 2, then XY back up and across
    EXPECT_EQ(route.src, src);
    EXPECT_EQ(route.dst, dst);
}

TEST(Router, ShortestPathAvoidsFailedLinks)
{
    MeshTopology mesh(3, 3);
    hw::FaultMap faults(mesh.dieCount(), mesh.linkCount());
    // Cut the direct horizontal link 0->1 (and reverse).
    faults.failLink(mesh.linkId(0, 1));
    faults.failLink(mesh.linkId(1, 0));
    Router router(mesh, &faults);
    const auto path = router.shortestPath(0, 1);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->hops(), 3);  // detour through the next row
    for (LinkId link : path->links)
        EXPECT_FALSE(faults.linkFailed(link));
}

TEST(Router, ShortestPathReportsPartition)
{
    MeshTopology mesh(1, 2);
    hw::FaultMap faults(mesh.dieCount(), mesh.linkCount());
    faults.failLink(mesh.linkId(0, 1));
    faults.failLink(mesh.linkId(1, 0));
    Router router(mesh, &faults);
    EXPECT_FALSE(router.shortestPath(0, 1).has_value());
}

TEST(Router, CandidateRoutesAreDistinctAndValid)
{
    MeshTopology mesh(4, 8);
    Router router(mesh);
    const DieId src = mesh.dieAt(1, 1);
    const DieId dst = mesh.dieAt(2, 4);
    const auto candidates = router.candidateRoutes(src, dst);
    EXPECT_GE(candidates.size(), 2u);
    for (const Route &r : candidates) {
        EXPECT_EQ(r.src, src);
        EXPECT_EQ(r.dst, dst);
        const auto dies = visitedDies(mesh, r);
        EXPECT_EQ(dies.back(), dst);
    }
    // All candidates have distinct link sequences.
    for (std::size_t i = 0; i < candidates.size(); ++i)
        for (std::size_t j = i + 1; j < candidates.size(); ++j)
            EXPECT_NE(candidates[i].links, candidates[j].links);
}

TEST(LinkLoad, AddRemoveAndMax)
{
    MeshTopology mesh(2, 2);
    Router router(mesh);
    LinkLoadMap loads(mesh.linkCount());
    const Route route = router.route(0, 3);
    loads.add(route, 100.0);
    EXPECT_DOUBLE_EQ(loads.maxLoad(), 100.0);
    EXPECT_EQ(loads.activeLinkCount(), 2);
    loads.remove(route, 100.0);
    EXPECT_DOUBLE_EQ(loads.maxLoad(), 0.0);
}

TEST(Contention, SingleFlowTime)
{
    MeshTopology mesh(1, 8);
    Router router(mesh);
    ContentionModel model(mesh, 4e12, 200e-9);
    Flow flow;
    flow.src = 0;
    flow.dst = 7;
    flow.bytes = 4e9;  // 4 GB over 4 TB/s = 1 ms
    flow.route = router.route(0, 7);
    const PhaseTiming t = model.evaluate({flow});
    EXPECT_NEAR(t.time_s, 1e-3 + 7 * 200e-9, 1e-9);
    EXPECT_EQ(t.max_hops, 7);
}

TEST(Contention, SharedLinkDoublesTime)
{
    // The Fig. 5(b) scenario: two flows forced through one link take >2x
    // the contention-free time.
    MeshTopology mesh(1, 4);
    Router router(mesh);
    ContentionModel model(mesh, 4e12, 0.0);

    Flow a;
    a.src = 0;
    a.dst = 2;
    a.bytes = 1e9;
    a.route = router.route(0, 2);
    Flow b;
    b.src = 1;
    b.dst = 3;
    b.bytes = 1e9;
    b.route = router.route(1, 3);

    const double solo = model.evaluate({a}).time_s;
    const double both = model.evaluate({a, b}).time_s;
    EXPECT_NEAR(both / solo, 2.0, 1e-9);
    // Bottleneck is the shared link 1->2.
    const PhaseTiming t = model.evaluate({a, b});
    EXPECT_EQ(t.bottleneck_link, mesh.linkId(1, 2));
    EXPECT_DOUBLE_EQ(t.bottleneck_bytes, 2e9);
}

TEST(Contention, DisjointFlowsRunConcurrently)
{
    MeshTopology mesh(2, 4);
    Router router(mesh);
    ContentionModel model(mesh, 4e12, 0.0);
    Flow a;
    a.src = mesh.dieAt(0, 0);
    a.dst = mesh.dieAt(0, 1);
    a.bytes = 1e9;
    a.route = router.route(a.src, a.dst);
    Flow b;
    b.src = mesh.dieAt(1, 0);
    b.dst = mesh.dieAt(1, 1);
    b.bytes = 1e9;
    b.route = router.route(b.src, b.dst);
    const double solo = model.evaluate({a}).time_s;
    const double both = model.evaluate({a, b}).time_s;
    EXPECT_NEAR(both, solo, 1e-12);
}

TEST(Contention, EmptyPhaseIsFree)
{
    MeshTopology mesh(2, 2);
    ContentionModel model(mesh, 4e12, 200e-9);
    EXPECT_DOUBLE_EQ(model.evaluate(std::vector<Flow>{}).time_s, 0.0);
}

TEST(Contention, SequenceSumsRounds)
{
    MeshTopology mesh(1, 2);
    Router router(mesh);
    ContentionModel model(mesh, 1e12, 0.0);
    Flow f;
    f.src = 0;
    f.dst = 1;
    f.bytes = 1e9;
    f.route = router.route(0, 1);
    const PhaseTiming t = model.evaluateSequence({{f}, {f}, {f}});
    EXPECT_NEAR(t.time_s, 3e-3, 1e-12);
    EXPECT_DOUBLE_EQ(t.total_bytes, 3e9);
}

TEST(Collective, RingAllGatherRoundsAndVolume)
{
    MeshTopology mesh(1, 4);
    Router router(mesh);
    CollectiveScheduler sched(router);
    std::vector<DieId> group{0, 1, 2, 3};
    const CommSchedule s = sched.ringAllGather(group, 1e6);
    EXPECT_EQ(s.roundCount(), 3);  // N-1 rounds
    for (int r = 0; r < s.roundCount(); ++r)
        EXPECT_EQ(s.round(r).size(), 4u);  // every member forwards
    EXPECT_DOUBLE_EQ(s.payload_bytes, 1e6 * 4 * 3);
}

TEST(Collective, AllReduceMovesTwiceTheScatterVolume)
{
    MeshTopology mesh(1, 4);
    Router router(mesh);
    CollectiveScheduler sched(router);
    std::vector<DieId> group{0, 1, 2, 3};
    const CommSchedule rs = sched.ringReduceScatter(group, 4e6);
    const CommSchedule ar = sched.ringAllReduce(group, 4e6);
    EXPECT_EQ(ar.roundCount(), 2 * rs.roundCount());
    EXPECT_NEAR(ar.payload_bytes, 2 * rs.payload_bytes, 1e-6);
}

TEST(Collective, ContiguousRingAllGatherMatchesLowerBound)
{
    // A ring mapped onto a contiguous physical ring (2 x 4 sub-grid,
    // boustrophedon order) achieves the analytic lower bound.
    MeshTopology mesh(2, 4);
    Router router(mesh);
    CollectiveScheduler sched(router);
    // Physical ring: (0,0)(0,1)(0,2)(0,3)(1,3)(1,2)(1,1)(1,0).
    std::vector<DieId> ring{mesh.dieAt(0, 0), mesh.dieAt(0, 1),
                            mesh.dieAt(0, 2), mesh.dieAt(0, 3),
                            mesh.dieAt(1, 3), mesh.dieAt(1, 2),
                            mesh.dieAt(1, 1), mesh.dieAt(1, 0)};
    const double bw = 4e12;
    const double lat = 200e-9;
    ContentionModel model(mesh, bw, lat);
    const CommSchedule s = sched.ringAllGather(ring, 8e6);
    const double t = model.evaluateSequence(s).time_s;
    const double bound = collectiveLowerBoundTime(CollectiveKind::AllGather,
                                                  8, 8e6, bw, lat);
    EXPECT_NEAR(t, bound, 1e-12);
}

TEST(Collective, InterleavedRingOrderContends)
{
    // A ring order that interleaves dies (0,2,1,3 on a chain) forces two
    // same-direction flows through link 1->2 every round, doubling the
    // bandwidth term relative to the in-order ring (Challenge 2).
    MeshTopology mesh(1, 4);
    Router router(mesh);
    CollectiveScheduler sched(router);
    ContentionModel model(mesh, 4e12, 0.0);

    std::vector<DieId> in_order{0, 1, 2, 3};
    std::vector<DieId> interleaved{0, 2, 1, 3};
    const double t_good =
        model.evaluateSequence(sched.ringAllGather(in_order, 8e6))
            .time_s;
    const double t_bad =
        model.evaluateSequence(sched.ringAllGather(interleaved, 8e6))
            .time_s;
    EXPECT_NEAR(t_bad / t_good, 2.0, 1e-9);
}

TEST(Collective, MultiHopRingPaysTailLatency)
{
    // Small shards on a linear chain: the wrap-around transfer traverses
    // N-1 hops, so per-round latency is dominated by the longest flow
    // (the Fig. 5(a) tail-latency effect).
    MeshTopology mesh(1, 8);
    Router router(mesh);
    CollectiveScheduler sched(router);
    ContentionModel model(mesh, 4e12, 200e-9);

    // 64 KiB shards: bandwidth term 16 ns, latency term dominates.
    const CommSchedule s = sched.ringAllGather({0, 1, 2, 3, 4, 5, 6, 7},
                                               64.0 * 1024.0);
    const PhaseTiming t = model.evaluateSequence(s);
    EXPECT_EQ(t.max_hops, 7);
    // Each of the 7 rounds pays the 7-hop wrap latency.
    EXPECT_GT(t.time_s, 7 * 7 * 200e-9);
}

TEST(Collective, BroadcastBuildsMulticastTree)
{
    MeshTopology mesh(2, 4);
    Router router(mesh);
    CollectiveScheduler sched(router);
    std::vector<DieId> group{mesh.dieAt(0, 0), mesh.dieAt(0, 1),
                             mesh.dieAt(0, 2), mesh.dieAt(0, 3)};
    const CommSchedule s = sched.broadcast(group, 1e6);
    ASSERT_EQ(s.roundCount(), 1);
    // Chain multicast: three links, each carrying the payload once.
    EXPECT_EQ(s.round(0).size(), 3u);
    for (const Flow &f : s.round(0))
        EXPECT_DOUBLE_EQ(f.bytes, 1e6);
}

TEST(Collective, MulticastTreeDeduplicatesSharedPrefix)
{
    MeshTopology mesh(1, 5);
    Router router(mesh);
    // Root 0, leaves 3 and 4: routes share links 0->1->2->3.
    const MulticastTree tree = buildMulticastTree(router, 0, {3, 4});
    EXPECT_EQ(tree.links.size(), 4u);
    EXPECT_EQ(tree.depth, 4);
}

TEST(Collective, P2PSchedule)
{
    MeshTopology mesh(1, 4);
    Router router(mesh);
    CollectiveScheduler sched(router);
    const CommSchedule s = sched.p2p(0, 3, 5e6, 42);
    ASSERT_EQ(s.roundCount(), 1);
    ASSERT_EQ(s.round(0).size(), 1u);
    EXPECT_EQ(s.round(0)[0].tag, 42);
    EXPECT_EQ(s.round(0)[0].route.hops(), 3);
}

TEST(Collective, DegenerateGroupsAreFree)
{
    MeshTopology mesh(2, 2);
    Router router(mesh);
    CollectiveScheduler sched(router);
    EXPECT_TRUE(sched.ringAllGather({0}, 1e6).empty());
    EXPECT_TRUE(sched.ringAllReduce({2}, 1e6).empty());
    EXPECT_TRUE(sched.p2p(1, 1, 1e6).empty());
}

TEST(Collective, LowerBoundFormulas)
{
    const double bw = 1e12;
    EXPECT_NEAR(collectiveLowerBoundTime(CollectiveKind::AllReduce, 4, 4e9,
                                         bw, 0.0),
                2.0 * 3.0 / 4.0 * 4e-3, 1e-12);
    EXPECT_NEAR(collectiveLowerBoundTime(CollectiveKind::AllGather, 4, 1e9,
                                         bw, 0.0),
                3e-3, 1e-12);
    EXPECT_DOUBLE_EQ(
        collectiveLowerBoundTime(CollectiveKind::AllReduce, 1, 1e9, bw, 0.0),
        0.0);
}

TEST(CommSchedule, OverlayMergesRounds)
{
    MeshTopology mesh(1, 4);
    Router router(mesh);
    CollectiveScheduler sched(router);
    CommSchedule a = sched.p2p(0, 1, 1e6);
    const CommSchedule b = sched.p2p(2, 3, 1e6);
    a.overlay(b);
    ASSERT_EQ(a.roundCount(), 1);
    EXPECT_EQ(a.round(0).size(), 2u);
    EXPECT_DOUBLE_EQ(a.payload_bytes, 2e6);
}

TEST(CommSchedule, LinkBytesCountsHops)
{
    MeshTopology mesh(1, 4);
    Router router(mesh);
    CollectiveScheduler sched(router);
    const CommSchedule s = sched.p2p(0, 3, 1e6);
    EXPECT_DOUBLE_EQ(s.linkBytes(), 3e6);
}

}  // namespace
}  // namespace temp::net
