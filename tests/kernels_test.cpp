/**
 * @file
 * Bit-exactness tests for the data-oriented kernels: every vector path
 * against its reference scalar twin on randomized inputs (ragged
 * routes, zero-byte flows, ties, dead links), the contention model's
 * SoA vs AoS walks, the LinkLoadMap O(active) stats against a dense
 * reference, and an end-to-end solve that must be bit-identical with
 * the SIMD paths forced on and off and across eval_threads.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "common/kernels.hpp"
#include "core/framework.hpp"
#include "cost/breakdown_reduce.hpp"
#include "hw/config.hpp"
#include "model/model_zoo.hpp"
#include "net/collective.hpp"
#include "net/contention.hpp"
#include "net/route.hpp"

namespace temp {
namespace {

using hw::DieId;
using hw::LinkId;
using hw::MeshTopology;

constexpr double kInf = std::numeric_limits<double>::infinity();

bool
bitEqual(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Field-wise MaxDrain comparison — memcmp over the struct would read
/// the padding holes after its int32 members.
void
expectSameDrain(const kernels::MaxDrain &s, const kernels::MaxDrain &v)
{
    ASSERT_EQ(s.dead_link, v.dead_link);
    if (s.dead_link >= 0)
        return;  // partial worst/link fields are never observed
    EXPECT_TRUE(bitEqual(s.worst, v.worst));
    EXPECT_EQ(s.link, v.link);
    EXPECT_TRUE(bitEqual(s.link_load, v.link_load));
}

TEST(MaxDrainKernel, MatchesScalarOnRandomInputs)
{
    std::mt19937_64 rng(7);
    std::uniform_real_distribution<double> load(0.0, 1e9);
    std::uniform_real_distribution<double> bw(1e9, 4e9);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (const int n : {0, 1, 5, 15, 16, 17, 31, 64, 513}) {
        for (int trial = 0; trial < 50; ++trial) {
            const std::uint32_t epoch = 40 + trial;
            std::vector<double> loads(n), bandwidth(n);
            std::vector<std::uint32_t> stamps(n);
            for (int i = 0; i < n; ++i) {
                stamps[i] = unit(rng) < 0.6 ? epoch : epoch - 1;
                loads[i] = unit(rng) < 0.1 ? 0.0 : load(rng);
                bandwidth[i] = bw(rng);
            }
            const kernels::MaxDrain s = kernels::maxDrainArgmaxScalar(
                loads.data(), stamps.data(), epoch, bandwidth.data(), n);
            const kernels::MaxDrain v = kernels::maxDrainArgmaxSimd(
                loads.data(), stamps.data(), epoch, bandwidth.data(), n);
            expectSameDrain(s, v);
        }
    }
}

TEST(MaxDrainKernel, FirstOfTiedMaximaWins)
{
    // Two exactly equal drains: both paths must report the first.
    const int n = 40;
    std::vector<double> loads(n, 1.0), bandwidth(n, 8.0);
    std::vector<std::uint32_t> stamps(n, 5);
    loads[9] = 4.0;
    loads[30] = 4.0;  // same bits, later index
    const kernels::MaxDrain s = kernels::maxDrainArgmaxScalar(
        loads.data(), stamps.data(), 5, bandwidth.data(), n);
    const kernels::MaxDrain v = kernels::maxDrainArgmaxSimd(
        loads.data(), stamps.data(), 5, bandwidth.data(), n);
    EXPECT_EQ(s.link, 9);
    expectSameDrain(s, v);
}

TEST(MaxDrainKernel, UntouchedDeadLinksAreIgnored)
{
    // Zero bandwidth on links whose stamp is stale must not trip the
    // dead-link detector or poison the max (the blend substitutes
    // 0.0 / 1.0 for untouched lanes).
    const int n = 48;
    std::vector<double> loads(n, 2.0), bandwidth(n, 0.0);
    std::vector<std::uint32_t> stamps(n, 1);
    for (int i = 0; i < n; i += 3) {
        stamps[i] = 2;  // touched
        bandwidth[i] = 4.0;
    }
    const kernels::MaxDrain s = kernels::maxDrainArgmaxScalar(
        loads.data(), stamps.data(), 2, bandwidth.data(), n);
    const kernels::MaxDrain v = kernels::maxDrainArgmaxSimd(
        loads.data(), stamps.data(), 2, bandwidth.data(), n);
    EXPECT_EQ(s.dead_link, -1);
    expectSameDrain(s, v);
}

TEST(MaxDrainKernel, ReportsFirstTouchedDeadLink)
{
    std::mt19937_64 rng(11);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (const int dead_at : {0, 3, 16, 20, 47, 63}) {
        const int n = 64;
        std::vector<double> loads(n, 1.0), bandwidth(n, 2.0);
        std::vector<std::uint32_t> stamps(n);
        for (int i = 0; i < n; ++i)
            stamps[i] = unit(rng) < 0.7 ? 9u : 8u;
        stamps[dead_at] = 9;
        bandwidth[dead_at] = 0.0;
        // A second dead link later must not shadow the first.
        if (dead_at + 7 < n) {
            stamps[dead_at + 7] = 9;
            bandwidth[dead_at + 7] = 0.0;
        }
        const kernels::MaxDrain s = kernels::maxDrainArgmaxScalar(
            loads.data(), stamps.data(), 9, bandwidth.data(), n);
        const kernels::MaxDrain v = kernels::maxDrainArgmaxSimd(
            loads.data(), stamps.data(), 9, bandwidth.data(), n);
        EXPECT_EQ(s.dead_link, dead_at);
        EXPECT_EQ(v.dead_link, dead_at);
    }
}

TEST(MinPlusKernel, MatchesScalarWithInfsAndTies)
{
    std::mt19937_64 rng(13);
    std::uniform_real_distribution<double> v(0.0, 1e3);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    for (const int n : {0, 1, 7, 16, 33, 256, 511}) {
        for (int trial = 0; trial < 50; ++trial) {
            std::vector<double> prev(n), trans(n);
            for (int i = 0; i < n; ++i) {
                prev[i] = unit(rng) < 0.15 ? kInf : v(rng);
                trans[i] = v(rng);
            }
            if (n > 2) {
                prev[n / 2] = prev[0];  // manufacture potential ties
                trans[n / 2] = trans[0];
            }
            const double c = v(rng);
            const kernels::MinPlus s =
                kernels::minPlusArgminScalar(prev.data(), trans.data(), c, n);
            const kernels::MinPlus p =
                kernels::minPlusArgminSimd(prev.data(), trans.data(), c, n);
            EXPECT_TRUE(bitEqual(s.value, p.value));
            EXPECT_EQ(s.index, p.index);
        }
    }
}

TEST(MinPlusKernel, AllInfeasibleYieldsNoIndex)
{
    const int n = 37;
    std::vector<double> prev(n, kInf), trans(n, 1.0);
    const kernels::MinPlus s =
        kernels::minPlusArgminScalar(prev.data(), trans.data(), 0.5, n);
    const kernels::MinPlus p =
        kernels::minPlusArgminSimd(prev.data(), trans.data(), 0.5, n);
    EXPECT_EQ(s.index, -1);
    EXPECT_EQ(p.index, -1);
    EXPECT_TRUE(bitEqual(s.value, kInf));
    EXPECT_TRUE(bitEqual(p.value, kInf));
}

std::vector<cost::OpCostBreakdown>
randomCells(int n, std::mt19937_64 &rng)
{
    std::uniform_real_distribution<double> v(0.0, 1.0);
    std::vector<cost::OpCostBreakdown> cells(n);
    for (cost::OpCostBreakdown &c : cells) {
        c.fwd_time = v(rng);
        c.bwd_time = v(rng);
        c.comp_time = v(rng);
        c.collective_time = v(rng);
        c.stream_comm_time = v(rng);
        c.step_comm_time = v(rng);
        c.exposed_comm = v(rng);
        c.tail_latency = v(rng);
        c.flops = v(rng) * 1e12;
        c.dram_bytes = v(rng) * 1e9;
        c.d2d_link_bytes = v(rng) < 0.75 ? v(rng) * 1e9 : 0.0;
        c.bw_utilization = v(rng) < 0.9 ? v(rng) : 0.0;
        c.feasible = v(rng) < 0.9;
    }
    return cells;
}

TEST(BreakdownReduce, SumsAndTotalsMatchScalar)
{
    std::mt19937_64 rng(17);
    for (const int n : {0, 1, 3, 64, 1000, 4096}) {
        const std::vector<cost::OpCostBreakdown> cells = randomCells(n, rng);
        const cost::BreakdownSums s = cost::reduceBreakdownsScalar(cells);
        const cost::BreakdownSums v = cost::reduceBreakdownsSimd(cells);
        // BreakdownSums is all-double, memcmp-safe.
        EXPECT_EQ(std::memcmp(&s, &v, sizeof s), 0);

        std::vector<double> ta(n), tb(n);
        cost::breakdownTotalsScalar(cells, ta.data());
        cost::breakdownTotalsSimd(cells, tb.data());
        for (int i = 0; i < n; ++i) {
            EXPECT_TRUE(bitEqual(ta[i], tb[i]));
            EXPECT_TRUE(bitEqual(
                ta[i], cells[i].feasible ? cells[i].total() : kInf));
        }
    }
}

/// PhaseTiming comparison, field-wise and bit-exact.
void
expectSameTiming(const net::PhaseTiming &a, const net::PhaseTiming &b)
{
    EXPECT_TRUE(bitEqual(a.time_s, b.time_s));
    EXPECT_TRUE(bitEqual(a.serial_time_s, b.serial_time_s));
    EXPECT_EQ(a.bottleneck_link, b.bottleneck_link);
    EXPECT_TRUE(bitEqual(a.bottleneck_bytes, b.bottleneck_bytes));
    EXPECT_TRUE(bitEqual(a.total_bytes, b.total_bytes));
    EXPECT_TRUE(bitEqual(a.link_bytes, b.link_bytes));
    EXPECT_EQ(a.max_hops, b.max_hops);
    EXPECT_TRUE(bitEqual(a.bandwidth_utilization, b.bandwidth_utilization));
}

class SimdToggleGuard
{
  public:
    ~SimdToggleGuard() { kernels::setSimdActive(true); }
};

TEST(ContentionSoa, FinalizedSoaMatchesAosAndScalarPath)
{
    // A ring all-gather over a boustrophedon ring produces ragged,
    // partially overlapping routes; the schedule walked through its
    // finalized SoA view, the per-flow AoS view, and with the SIMD
    // dispatch forced off must all time bit-identically.
    SimdToggleGuard guard;
    MeshTopology mesh(2, 4);
    net::Router router(mesh);
    net::CollectiveScheduler sched(router);
    std::vector<DieId> ring{mesh.dieAt(0, 0), mesh.dieAt(0, 1),
                            mesh.dieAt(0, 2), mesh.dieAt(0, 3),
                            mesh.dieAt(1, 3), mesh.dieAt(1, 2),
                            mesh.dieAt(1, 1), mesh.dieAt(1, 0)};
    net::ContentionModel model(mesh, 4e12, 200e-9);
    net::CommSchedule s = sched.ringAllGather(ring, 8e6);

    const net::PhaseTiming aos = model.evaluateSequence(s);
    s.finalize();
    const net::PhaseTiming soa = model.evaluateSequence(s);
    expectSameTiming(aos, soa);

    kernels::setSimdActive(false);
    const net::PhaseTiming scalar_soa = model.evaluateSequence(s);
    kernels::setSimdActive(true);
    expectSameTiming(aos, scalar_soa);
}

TEST(ContentionSoa, ZeroByteFlowsAreExact)
{
    SimdToggleGuard guard;
    MeshTopology mesh(2, 3);
    net::Router router(mesh);
    net::CommSchedule s;
    const auto add = [&](DieId src, DieId dst, double bytes) {
        net::Flow f;
        f.src = src;
        f.dst = dst;
        f.bytes = bytes;
        f.route = router.route(src, dst);
        s.addFlow(f);
    };
    add(0, 5, 0.0);  // zero-byte flow still occupies its route
    add(1, 4, 3e6);
    s.sealRound();
    add(2, 3, 0.0);
    s.sealRound();

    net::ContentionModel model(mesh, 1e12, 100e-9);
    const net::PhaseTiming aos = model.evaluateSequence(s);
    s.finalize();
    const net::PhaseTiming soa = model.evaluateSequence(s);
    expectSameTiming(aos, soa);

    kernels::setSimdActive(false);
    const net::PhaseTiming scalar_soa = model.evaluateSequence(s);
    kernels::setSimdActive(true);
    expectSameTiming(aos, scalar_soa);
}

using ContentionSoaDeathTest = ::testing::Test;

TEST(ContentionSoaDeathTest, DeadLinkPanicsInBothModes)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    MeshTopology mesh(1, 2);
    net::Router router(mesh);
    net::Flow f;
    f.src = 0;
    f.dst = 1;
    f.bytes = 1e6;
    f.route = router.route(0, 1);
    net::CommSchedule s;
    s.addFlow(f);
    s.sealRound();
    s.finalize();
    // Zero link bandwidth: every touched link is dead.
    net::ContentionModel model(mesh, 0.0, 0.0);
    EXPECT_DEATH(model.evaluateSequence(s), "dead link");
    kernels::setSimdActive(false);
    EXPECT_DEATH(model.evaluateSequence(s), "dead link");
    kernels::setSimdActive(true);
}

TEST(LinkLoadMapStats, MatchDenseReferenceUnderChurn)
{
    std::mt19937_64 rng(23);
    MeshTopology mesh(3, 3);
    net::Router router(mesh);
    net::LinkLoadMap map(mesh.linkCount());
    std::vector<double> dense(mesh.linkCount(), 0.0);
    std::uniform_int_distribution<DieId> die(0, mesh.dieCount() - 1);
    std::uniform_real_distribution<double> bytes(1e3, 1e6);

    const auto checkAgainstDense = [&] {
        double max_load = 0.0;
        double total = 0.0;
        int active = 0;
        LinkId max_link = -1;
        double best = -1.0;
        for (LinkId l = 0; l < map.linkCount(); ++l) {
            total += dense[l];
            max_load = std::max(max_load, dense[l]);
            active += dense[l] > 0.0 ? 1 : 0;
            if (dense[l] > best) {
                best = dense[l];
                max_link = l;
            }
        }
        if (best <= 0.0)
            max_link = map.linkCount() > 0 ? 0 : -1;
        EXPECT_EQ(map.maxLoadLink(), max_link);
        EXPECT_TRUE(bitEqual(map.maxLoad(), max_load));
        EXPECT_TRUE(bitEqual(map.totalLoad(), total));
        EXPECT_EQ(map.activeLinkCount(), active);
    };

    checkAgainstDense();  // all-zero map: dense-scan semantics (link 0)

    struct Added
    {
        net::RouteRef route;
        double bytes;
    };
    std::vector<Added> live;
    for (int step = 0; step < 200; ++step) {
        const bool remove = !live.empty() && step % 3 == 2;
        if (remove) {
            const Added a = live.back();
            live.pop_back();
            map.remove(a.route, a.bytes);
            for (LinkId l : a.route.links())
                dense[l] = std::max(0.0, dense[l] - a.bytes);
        } else {
            const DieId src = die(rng);
            DieId dst = die(rng);
            if (dst == src)
                dst = (dst + 1) % mesh.dieCount();
            Added a{router.route(src, dst), bytes(rng)};
            map.add(a.route, a.bytes);
            for (LinkId l : a.route.links())
                dense[l] += a.bytes;
            live.push_back(a);
        }
        checkAgainstDense();
    }
    // Drain everything. Interleaved add/remove can leave floating-point
    // residue on a link ((a + b) - b need not equal a), so the test
    // asserts map == dense rather than a residue-free map; removed-to-
    // zero links must stay counted as touched either way.
    while (!live.empty()) {
        const Added a = live.back();
        live.pop_back();
        map.remove(a.route, a.bytes);
        for (LinkId l : a.route.links())
            dense[l] = std::max(0.0, dense[l] - a.bytes);
    }
    checkAgainstDense();
    EXPECT_GT(map.touchedLinkCount(), 0);
    EXPECT_EQ(map.activeLinkCount(),
              static_cast<int>(std::count_if(
                  dense.begin(), dense.end(),
                  [](double load) { return load > 0.0; })));
}

TEST(EndToEnd, SolveBitIdenticalAcrossSimdAndEvalThreads)
{
    // The full search must not observe the kernel dispatch or the
    // evaluator's thread count: identical per-op specs and bit-exact
    // step time for SIMD on/off and 1 vs 2 eval threads.
    SimdToggleGuard guard;
    const model::ModelConfig model = model::modelByName("GPT-3 6.7B");
    core::FrameworkOptions opts;
    opts.eval_threads = 1;
    opts.solver.ga_population = 8;
    opts.solver.ga_generations = 4;
    core::FrameworkOptions wide = opts;
    wide.eval_threads = 2;

    const auto solve = [&](const core::FrameworkOptions &o) {
        const core::TempFramework f(hw::WaferConfig::paperDefault(), o);
        return f.optimize(model);
    };
    const solver::SolverResult simd_on = solve(opts);
    kernels::setSimdActive(false);
    const solver::SolverResult simd_off = solve(opts);
    kernels::setSimdActive(true);
    const solver::SolverResult threaded = solve(wide);

    ASSERT_TRUE(simd_on.feasible);
    EXPECT_EQ(simd_on.per_op_specs, simd_off.per_op_specs);
    EXPECT_EQ(simd_on.per_op_specs, threaded.per_op_specs);
    EXPECT_TRUE(bitEqual(simd_on.step_time_s, simd_off.step_time_s));
    EXPECT_TRUE(bitEqual(simd_on.step_time_s, threaded.step_time_s));
}

}  // namespace
}  // namespace temp
