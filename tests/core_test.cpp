/**
 * @file
 * Integration tests for the TEMP framework facade and the baseline
 * matrix: end-to-end optimisation, the six-baseline comparison shape
 * (Fig. 13), fault-tolerant re-optimisation (Fig. 20), and ablations
 * (Fig. 16).
 */
#include <gtest/gtest.h>

#include "baselines/strategies.hpp"
#include "core/framework.hpp"

namespace temp::core {
namespace {

using baselines::BaselineKind;
using tcme::MappingEngineKind;

class FrameworkTest : public ::testing::Test
{
  protected:
    FrameworkTest() : fw_(hw::WaferConfig::paperDefault()) {}

    TempFramework fw_;
};

TEST_F(FrameworkTest, OptimizesSmallModelEndToEnd)
{
    const auto result = fw_.optimize(model::modelByName("GPT-3 6.7B"));
    ASSERT_TRUE(result.feasible);
    EXPECT_FALSE(result.report.oom);
    EXPECT_GT(result.report.throughput_tokens_per_s, 0.0);
    EXPECT_GT(result.search_time_s, 0.0);
    // Sec. VIII-H: single-wafer search completes in minutes (here
    // seconds — we are not running 40-hour ILP).
    EXPECT_LT(result.search_time_s, 60.0);
}

TEST_F(FrameworkTest, TempBeatsAllSixBaselines)
{
    // The Fig. 13 shape on one mid-size model: TEMP's step time is the
    // minimum across the baseline matrix.
    const auto model = model::modelByName("Llama3 70B");
    const auto temp_result = fw_.optimize(model);
    ASSERT_TRUE(temp_result.feasible);
    ASSERT_FALSE(temp_result.report.oom);

    for (BaselineKind kind : {BaselineKind::Megatron1,
                              BaselineKind::MegatronSP,
                              BaselineKind::Fsdp}) {
        for (MappingEngineKind engine :
             {MappingEngineKind::SMap, MappingEngineKind::GMap}) {
            const auto baseline =
                fw_.evaluateBaseline(kind, engine, model);
            EXPECT_LE(temp_result.step_time_s,
                      baseline.report.step_time * 1.001)
                << baselines::baselineName(kind) << "+"
                << tcme::mappingEngineName(engine);
        }
    }
}

TEST_F(FrameworkTest, MegatronOomsOnHugeModelTempDoesNot)
{
    const auto model = model::modelByName("GPT-3 175B");
    const auto temp_result = fw_.optimize(model);
    ASSERT_TRUE(temp_result.feasible);
    EXPECT_FALSE(temp_result.report.oom);

    const auto mega = fw_.evaluateBaseline(BaselineKind::Megatron1,
                                           MappingEngineKind::SMap, model);
    EXPECT_TRUE(mega.all_oom);
}

TEST_F(FrameworkTest, BaselineTuningPicksMemoryFeasibleConfigs)
{
    const auto model = model::modelByName("Llama2 7B");
    for (BaselineKind kind : {BaselineKind::Megatron1,
                              BaselineKind::MegatronSP,
                              BaselineKind::Fsdp}) {
        const auto tuned =
            fw_.evaluateBaseline(kind, MappingEngineKind::GMap, model);
        EXPECT_FALSE(tuned.all_oom)
            << baselines::baselineName(kind) << " on a 7B model";
        EXPECT_FALSE(tuned.report.oom);
    }
}

TEST_F(FrameworkTest, MeSPUsesCoupledSpFsdpUsesSharding)
{
    const auto model = model::modelByName("Llama3 70B");
    const auto mesp = fw_.evaluateBaseline(BaselineKind::MegatronSP,
                                           MappingEngineKind::GMap, model);
    EXPECT_TRUE(mesp.spec.tp > 1 ? mesp.spec.coupled_sp : true);
    const auto fsdp = fw_.evaluateBaseline(BaselineKind::Fsdp,
                                           MappingEngineKind::GMap, model);
    EXPECT_GT(fsdp.spec.fsdp, 1);
    EXPECT_EQ(fsdp.spec.tatp, 1);
}

TEST_F(FrameworkTest, AblationOrderingHolds)
{
    // Fig. 16: Base (FSDP+SMap) <= +TATP <= +TATP+TCME in throughput.
    const auto model = model::modelByName("Llama3 70B");
    const auto base = fw_.evaluateBaseline(BaselineKind::Fsdp,
                                           MappingEngineKind::SMap, model);
    ASSERT_FALSE(base.all_oom);

    // +TATP: TATP-extended search but SMap mapping (no TCME).
    FrameworkOptions tatp_only;
    tatp_only.policy = tcme::MappingPolicy{MappingEngineKind::SMap};
    TempFramework fw_tatp(hw::WaferConfig::paperDefault(), tatp_only);
    const auto plus_tatp = fw_tatp.optimize(model);
    ASSERT_TRUE(plus_tatp.feasible);

    const auto full = fw_.optimize(model);
    ASSERT_TRUE(full.feasible);

    EXPECT_LE(plus_tatp.step_time_s, base.report.step_time * 1.001);
    EXPECT_LE(full.step_time_s, plus_tatp.step_time_s * 1.001);
}

TEST_F(FrameworkTest, FaultToleranceGracefulForCoreFaults)
{
    // Fig. 20(c): moderate core faults degrade throughput gracefully.
    const auto model = model::modelByName("GPT-3 6.7B");
    const auto healthy = fw_.optimize(model);
    ASSERT_TRUE(healthy.feasible);

    Rng rng(21);
    hw::Wafer probe(hw::WaferConfig::paperDefault());
    const auto faults = hw::FaultMap::randomCoreFaults(
        probe.topology(), 0.10, rng);
    const auto degraded = fw_.optimizeWithFaults(model, faults);
    ASSERT_TRUE(degraded.feasible);
    const double ratio = healthy.report.throughput_tokens_per_s /
                         degraded.report.throughput_tokens_per_s;
    EXPECT_GT(ratio, 1.0);
    EXPECT_LT(ratio, 1.5);  // ~10% core loss, < 50% throughput loss
}

TEST_F(FrameworkTest, FaultToleranceSurvivesLinkFaults)
{
    const auto model = model::modelByName("GPT-3 6.7B");
    Rng rng(22);
    hw::Wafer probe(hw::WaferConfig::paperDefault());
    const auto faults = hw::FaultMap::randomLinkFaults(
        probe.topology(), 0.08, rng);

    // The framework can route around faults only while the fabric stays
    // connected; a fully disconnected die is beyond framework-level
    // repair (Sec. VIII-F). Check connectivity first.
    hw::Wafer degraded_probe(hw::WaferConfig::paperDefault(), faults);
    net::Router router(degraded_probe.topology(),
                       &degraded_probe.faults());
    bool connected = true;
    for (hw::DieId die = 1; die < degraded_probe.dieCount(); ++die)
        connected = connected && router.shortestPath(0, die).has_value();

    const auto degraded = fw_.optimizeWithFaults(model, faults);
    EXPECT_EQ(degraded.feasible, connected);
    if (connected) {
        const auto healthy = fw_.optimize(model);
        // Re-routing costs something but not everything.
        EXPECT_GT(degraded.report.throughput_tokens_per_s,
                  0.3 * healthy.report.throughput_tokens_per_s);
    }
}

TEST_F(FrameworkTest, StrategyEvaluationMatchesSimulator)
{
    const auto model = model::modelByName("GPT-3 6.7B");
    parallel::ParallelSpec spec;
    spec.dp = 4;
    spec.tatp = 8;
    const auto report = fw_.evaluateStrategy(model, spec);
    EXPECT_TRUE(report.feasible);
    EXPECT_GT(report.step_time, 0.0);
}

}  // namespace
}  // namespace temp::core
