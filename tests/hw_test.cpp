/**
 * @file
 * Unit tests for the hardware substrate: configs, mesh/switch topologies,
 * fault maps, the Wafer object and signal-integrity feasibility.
 */
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "hw/config.hpp"
#include "hw/fault.hpp"
#include "hw/topology.hpp"
#include "hw/wafer.hpp"

namespace temp::hw {
namespace {

TEST(Config, PaperDefaultMatchesTableOne)
{
    const WaferConfig config = WaferConfig::paperDefault();
    EXPECT_EQ(config.rows, 4);
    EXPECT_EQ(config.cols, 8);
    EXPECT_EQ(config.dieCount(), 32);
    EXPECT_DOUBLE_EQ(config.die.peak_flops, 1.8e15);
    EXPECT_DOUBLE_EQ(config.die.sram_bytes, 80e6);
    // Two 72 GB / 1 TB/s stacks per die (Table I per-stack ratings,
    // Fig. 3 floorplan).
    EXPECT_DOUBLE_EQ(config.hbm.capacity_bytes, 144e9);
    EXPECT_DOUBLE_EQ(config.hbm.bandwidth_bytes_per_s, 2e12);
    EXPECT_DOUBLE_EQ(config.d2d.bandwidth_bytes_per_s, 4e12);
    EXPECT_DOUBLE_EQ(config.d2d.latency_s, 200e-9);
}

TEST(Config, DerivedEnergyNumbers)
{
    const WaferConfig config = WaferConfig::paperDefault();
    // 2 TFLOPS/W -> 0.5 pJ/FLOP.
    EXPECT_NEAR(config.die.joulesPerFlop(), 0.5e-12, 1e-18);
    // 5 pJ/bit -> 40 pJ/B.
    EXPECT_NEAR(config.d2d.joulesPerByte(), 40e-12, 1e-18);
    EXPECT_NEAR(config.hbm.joulesPerByte(), 48e-12, 1e-18);
}

TEST(Config, EffectiveBandwidthRampsWithMessageSize)
{
    const D2dConfig d2d;
    const double peak = d2d.bandwidth_bytes_per_s;
    EXPECT_DOUBLE_EQ(d2d.effectiveBandwidth(d2d.efficient_transfer_bytes),
                     peak);
    EXPECT_DOUBLE_EQ(d2d.effectiveBandwidth(2 * d2d.efficient_transfer_bytes),
                     peak);
    EXPECT_LT(d2d.effectiveBandwidth(d2d.efficient_transfer_bytes / 4), peak);
    // Tiny messages are floored at 10% of peak.
    EXPECT_DOUBLE_EQ(d2d.effectiveBandwidth(1.0), 0.1 * peak);
}

TEST(Config, GridVariantKeepsDieConfig)
{
    const WaferConfig base = WaferConfig::paperDefault();
    const WaferConfig big = base.withGrid(8, 10);
    EXPECT_EQ(big.dieCount(), 80);
    EXPECT_DOUBLE_EQ(big.die.peak_flops, base.die.peak_flops);
}

TEST(Mesh, DieCoordRoundTrip)
{
    MeshTopology mesh(4, 8);
    for (DieId die = 0; die < mesh.dieCount(); ++die) {
        const DieCoord c = mesh.coordOf(die);
        EXPECT_EQ(mesh.dieAt(c.row, c.col), die);
    }
}

TEST(Mesh, LinkCountMatchesFormula)
{
    // Directed links on an R x C mesh: 2*(R*(C-1) + C*(R-1)).
    MeshTopology mesh(4, 8);
    EXPECT_EQ(mesh.linkCount(), 2 * (4 * 7 + 8 * 3));
}

TEST(Mesh, NeighborsAreAdjacent)
{
    MeshTopology mesh(3, 3);
    const DieId center = mesh.dieAt(1, 1);
    EXPECT_EQ(mesh.neighbors(center).size(), 4u);
    const DieId corner = mesh.dieAt(0, 0);
    EXPECT_EQ(mesh.neighbors(corner).size(), 2u);
    for (DieId n : mesh.neighbors(center))
        EXPECT_EQ(mesh.hopDistance(center, n), 1);
}

TEST(Mesh, HopDistanceIsManhattan)
{
    MeshTopology mesh(4, 8);
    EXPECT_EQ(mesh.hopDistance(mesh.dieAt(0, 0), mesh.dieAt(3, 7)), 10);
    EXPECT_EQ(mesh.hopDistance(mesh.dieAt(2, 3), mesh.dieAt(2, 3)), 0);
    EXPECT_EQ(mesh.hopDistance(mesh.dieAt(0, 0), mesh.dieAt(0, 7)), 7);
}

TEST(Mesh, LinkLookupIsConsistent)
{
    MeshTopology mesh(2, 2);
    const DieId a = mesh.dieAt(0, 0);
    const DieId b = mesh.dieAt(0, 1);
    ASSERT_TRUE(mesh.hasLink(a, b));
    const LinkId id = mesh.linkId(a, b);
    EXPECT_EQ(mesh.link(id).src, a);
    EXPECT_EQ(mesh.link(id).dst, b);
    // Reverse direction is a distinct link.
    EXPECT_NE(mesh.linkId(b, a), id);
    // No diagonal links.
    EXPECT_FALSE(mesh.hasLink(mesh.dieAt(0, 0), mesh.dieAt(1, 1)));
}

TEST(Mesh, TorusShortensWrapDistance)
{
    MeshTopology torus(4, 8, true);
    EXPECT_EQ(torus.hopDistance(torus.dieAt(0, 0), torus.dieAt(0, 7)), 1);
    EXPECT_TRUE(torus.hasLink(torus.dieAt(0, 0), torus.dieAt(0, 7)));
}

TEST(Mesh, PhysicalDistanceUsesDieFootprint)
{
    MeshTopology mesh(4, 8);
    const double d = mesh.physicalDistanceMm(mesh.dieAt(0, 0),
                                             mesh.dieAt(0, 1), 24.99, 33.25);
    EXPECT_NEAR(d, 24.99, 1e-9);
}

TEST(Switch, AllToAllHopDistance)
{
    SwitchTopology fabric(8);
    EXPECT_EQ(fabric.dieCount(), 8);
    EXPECT_EQ(fabric.hopDistance(0, 5), 2);
    EXPECT_EQ(fabric.hopDistance(3, 3), 0);
    EXPECT_EQ(fabric.neighbors(0).size(), 7u);
}

TEST(Switch, UplinkDownlinkIds)
{
    SwitchTopology fabric(4);
    EXPECT_EQ(fabric.linkCount(), 8);
    EXPECT_EQ(fabric.uplink(2), 4);
    EXPECT_EQ(fabric.downlink(2), 5);
    EXPECT_EQ(fabric.link(fabric.uplink(2)).src, 2);
    EXPECT_EQ(fabric.link(fabric.downlink(2)).dst, 2);
}

TEST(Fault, HealthyByDefault)
{
    MeshTopology mesh(4, 8);
    FaultMap map(mesh.dieCount(), mesh.linkCount());
    EXPECT_TRUE(map.healthy());
    EXPECT_DOUBLE_EQ(map.computeDerate(0), 1.0);
}

TEST(Fault, LinkFaultInjection)
{
    MeshTopology mesh(4, 8);
    FaultMap map(mesh.dieCount(), mesh.linkCount());
    const LinkId link = mesh.linkId(0, 1);
    map.failLink(link);
    EXPECT_TRUE(map.linkFailed(link));
    EXPECT_FALSE(map.healthy());
    EXPECT_EQ(map.failedLinkCount(), 1);
}

TEST(Fault, CoreFaultClampsToValidRange)
{
    FaultMap map(4, 0);
    map.setCoreFaultFraction(1, 2.0);
    EXPECT_DOUBLE_EQ(map.coreFaultFraction(1), 1.0);
    map.setCoreFaultFraction(1, -1.0);
    EXPECT_DOUBLE_EQ(map.coreFaultFraction(1), 0.0);
}

TEST(Fault, RandomLinkFaultsAreSymmetric)
{
    MeshTopology mesh(4, 8);
    Rng rng(3);
    const FaultMap map = FaultMap::randomLinkFaults(mesh, 0.3, rng);
    for (LinkId id = 0; id < mesh.linkCount(); ++id) {
        const Link &link = mesh.link(id);
        const LinkId rev = mesh.linkId(link.dst, link.src);
        EXPECT_EQ(map.linkFailed(id), map.linkFailed(rev));
    }
}

TEST(Fault, RandomLinkFaultRateIsApproximate)
{
    MeshTopology mesh(10, 10);
    Rng rng(5);
    const FaultMap map = FaultMap::randomLinkFaults(mesh, 0.2, rng);
    const double observed =
        static_cast<double>(map.failedLinkCount()) / mesh.linkCount();
    EXPECT_GT(observed, 0.08);
    EXPECT_LT(observed, 0.35);
}

TEST(Fault, RandomCoreFaultsDerateCompute)
{
    MeshTopology mesh(4, 8);
    Rng rng(9);
    const FaultMap map = FaultMap::randomCoreFaults(mesh, 0.1, rng);
    double total = 0.0;
    for (DieId die = 0; die < mesh.dieCount(); ++die) {
        EXPECT_GE(map.coreFaultFraction(die), 0.0);
        EXPECT_LE(map.coreFaultFraction(die), 0.9);
        total += map.coreFaultFraction(die);
    }
    const double avg = total / mesh.dieCount();
    EXPECT_GT(avg, 0.05);
    EXPECT_LT(avg, 0.15);
}

TEST(Wafer, EffectiveFlopsHonoursCoreFaults)
{
    WaferConfig config = WaferConfig::paperDefault();
    Wafer wafer(config);
    EXPECT_DOUBLE_EQ(wafer.effectiveFlops(0), config.die.peak_flops);

    FaultMap faults(wafer.dieCount(), wafer.topology().linkCount());
    faults.setCoreFaultFraction(0, 0.25);
    wafer.setFaults(faults);
    EXPECT_DOUBLE_EQ(wafer.effectiveFlops(0), 0.75 * config.die.peak_flops);
}

TEST(Wafer, LinkBandwidthZeroWhenFailed)
{
    Wafer wafer(WaferConfig::paperDefault());
    const LinkId link = wafer.topology().linkId(0, 1);
    EXPECT_GT(wafer.linkBandwidth(link), 0.0);

    FaultMap faults(wafer.dieCount(), wafer.topology().linkCount());
    faults.failLink(link);
    wafer.setFaults(faults);
    EXPECT_FALSE(wafer.linkUsable(link));
    EXPECT_DOUBLE_EQ(wafer.linkBandwidth(link), 0.0);
}

TEST(Wafer, SignalIntegrityForbidsLongLinks)
{
    // Sec. III-B: adjacent-die links are fine; wrap/diagonal links exceed
    // the 50 mm signal-integrity budget.
    Wafer wafer(WaferConfig::paperDefault());
    const MeshTopology &mesh = wafer.topology();
    EXPECT_TRUE(wafer.directLinkFeasible(mesh.dieAt(0, 0), mesh.dieAt(0, 1)));
    EXPECT_TRUE(wafer.directLinkFeasible(mesh.dieAt(0, 0), mesh.dieAt(1, 0)));
    EXPECT_FALSE(wafer.directLinkFeasible(mesh.dieAt(0, 0), mesh.dieAt(1, 1)));
    EXPECT_FALSE(wafer.directLinkFeasible(mesh.dieAt(0, 0), mesh.dieAt(0, 7)));
}

}  // namespace
}  // namespace temp::hw
