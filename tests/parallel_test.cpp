/**
 * @file
 * Unit tests for the unified parallelism representation: specs, group
 * layouts on the mesh, and the partitioner's compute/memory/comm
 * derivations.
 */
#include <gtest/gtest.h>

#include <set>

#include "hw/topology.hpp"
#include "model/graph.hpp"
#include "model/model_zoo.hpp"
#include "parallel/layout.hpp"
#include "parallel/partitioner.hpp"
#include "parallel/spec.hpp"

namespace temp::parallel {
namespace {

using hw::DieId;
using hw::MeshTopology;

ParallelSpec
spec(int dp, int tp, int sp, int tatp, int fsdp = 1, int cp = 1)
{
    ParallelSpec s;
    s.dp = dp;
    s.tp = tp;
    s.sp = sp;
    s.tatp = tatp;
    s.fsdp = fsdp;
    s.cp = cp;
    return s;
}

const model::Operator &
findOp(const model::ComputeGraph &graph, const std::string &name)
{
    for (const model::Operator &op : graph.ops())
        if (op.name == name)
            return op;
    ADD_FAILURE() << "op not found: " << name;
    static model::Operator dummy;
    return dummy;
}

TEST(Spec, DegreeAccessorsRoundTrip)
{
    ParallelSpec s;
    for (int a = 0; a < static_cast<int>(Axis::Count); ++a) {
        s.setDegree(static_cast<Axis>(a), a + 2);
        EXPECT_EQ(s.degree(static_cast<Axis>(a)), a + 2);
    }
}

TEST(Spec, TotalDegreeExcludesPP)
{
    ParallelSpec s = spec(2, 4, 1, 2);
    s.pp = 4;
    EXPECT_EQ(s.totalDegree(), 16);
}

TEST(Spec, ValidityRules)
{
    EXPECT_TRUE(spec(2, 4, 4, 2).valid());
    EXPECT_TRUE(ParallelSpec::serial().valid());
    // dp and fsdp cannot be combined.
    EXPECT_FALSE(spec(2, 1, 1, 1, 2).valid());
    // SP is an independent axis (paper's (DP,TP,SP,TATP) tuples).
    EXPECT_TRUE(spec(1, 2, 4, 1).valid());
    ParallelSpec bad;
    bad.tp = 0;
    EXPECT_FALSE(bad.valid());
}

TEST(Spec, StringFormat)
{
    EXPECT_EQ(spec(2, 4, 1, 8).str(), "(dp=2,tp=4,sp=1,tatp=8)");
    ParallelSpec s = spec(1, 1, 1, 4, 2);
    EXPECT_NE(s.str().find("fsdp=2"), std::string::npos);
}

TEST(Layout, SnakeOrderVisitsAdjacentDies)
{
    MeshTopology mesh(4, 8);
    const auto snake = GroupLayout::snakeOrder(mesh);
    ASSERT_EQ(snake.size(), 32u);
    for (std::size_t i = 0; i + 1 < snake.size(); ++i)
        EXPECT_EQ(mesh.hopDistance(snake[i], snake[i + 1]), 1)
            << "snake break at index " << i;
    // All dies visited exactly once.
    std::set<DieId> unique(snake.begin(), snake.end());
    EXPECT_EQ(unique.size(), 32u);
}

TEST(Layout, InnermostAxisGroupsAreContiguousChains)
{
    MeshTopology mesh(4, 8);
    GroupLayout layout(mesh, spec(2, 2, 1, 8));
    const auto &tatp_groups = layout.groups(Axis::TATP);
    ASSERT_EQ(tatp_groups.size(), 4u);
    for (const auto &group : tatp_groups) {
        ASSERT_EQ(group.size(), 8u);
        for (std::size_t i = 0; i + 1 < group.size(); ++i)
            EXPECT_EQ(mesh.hopDistance(group[i], group[i + 1]), 1);
    }
}

TEST(Layout, GroupsPartitionActiveDies)
{
    MeshTopology mesh(4, 8);
    GroupLayout layout(mesh, spec(4, 2, 1, 4));
    for (Axis axis : {Axis::DP, Axis::TP, Axis::TATP}) {
        std::set<DieId> seen;
        for (const auto &group : layout.groups(axis))
            for (DieId die : group)
                EXPECT_TRUE(seen.insert(die).second)
                    << "die repeated in " << axisName(axis);
        EXPECT_EQ(seen.size(), 32u);
    }
}

TEST(Layout, DegreeOneAxisHasNoGroups)
{
    MeshTopology mesh(4, 8);
    GroupLayout layout(mesh, spec(4, 8, 1, 1));
    EXPECT_TRUE(layout.groups(Axis::TATP).empty());
    EXPECT_TRUE(layout.groups(Axis::CP).empty());
}

TEST(Layout, PartialOccupancyUsesSnakePrefix)
{
    MeshTopology mesh(4, 8);
    GroupLayout layout(mesh, spec(1, 2, 1, 4));
    EXPECT_EQ(layout.usedDies(), 8);
    const auto snake = GroupLayout::snakeOrder(mesh);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(layout.activeDies()[i], snake[i]);
}

TEST(Layout, GroupOfFindsOwningGroup)
{
    MeshTopology mesh(4, 8);
    GroupLayout layout(mesh, spec(2, 2, 1, 8));
    for (DieId die : layout.activeDies()) {
        const auto &group = layout.groupOf(Axis::TATP, die);
        EXPECT_NE(std::find(group.begin(), group.end(), die), group.end());
    }
}

TEST(Layout, GroupCountsMatchDegrees)
{
    MeshTopology mesh(4, 8);
    GroupLayout layout(mesh, spec(2, 4, 1, 4));
    EXPECT_EQ(layout.groups(Axis::DP).size(), 16u);   // 32/2
    EXPECT_EQ(layout.groups(Axis::TP).size(), 8u);    // 32/4
    EXPECT_EQ(layout.groups(Axis::TATP).size(), 8u);  // 32/4
}

class PartitionerTest : public ::testing::Test
{
  protected:
    PartitionerTest()
        : mesh_(4, 8),
          graph_(model::ComputeGraph::transformer(
              model::modelByName("GPT-3 6.7B")))
    {
    }

    OpExecution
    analyze(const std::string &op_name, const ParallelSpec &s)
    {
        GroupLayout layout(mesh_, s);
        Partitioner part;
        return part.analyze(findOp(graph_, op_name), layout);
    }

    MeshTopology mesh_;
    model::ComputeGraph graph_;
};

TEST_F(PartitionerTest, SerialExecutionKeepsEverythingLocal)
{
    const OpExecution exec = analyze("qkv", ParallelSpec::serial());
    const model::Operator &op = findOp(graph_, "qkv");
    EXPECT_DOUBLE_EQ(exec.fwd_flops_per_die, op.forwardFlops());
    EXPECT_DOUBLE_EQ(exec.weight_bytes, op.weightBytes());
    EXPECT_TRUE(exec.fwd_collectives.empty());
    EXPECT_TRUE(exec.bwd_collectives.empty());
    EXPECT_TRUE(exec.step_collectives.empty());
    EXPECT_FALSE(exec.tatp.active);
}

TEST_F(PartitionerTest, TpShardsWeightsAndReducesRowParallelOutput)
{
    const OpExecution exec = analyze("proj", spec(1, 8, 1, 1));
    const model::Operator &op = findOp(graph_, "proj");
    EXPECT_DOUBLE_EQ(exec.weight_bytes, op.weightBytes() / 8.0);
    EXPECT_DOUBLE_EQ(exec.fwd_flops_per_die, op.forwardFlops() / 8.0);
    // Row-parallel forward all-reduce over the (single active) TP group.
    ASSERT_EQ(exec.fwd_collectives.size(), 1u);
    EXPECT_EQ(exec.fwd_collectives[0].kind, net::CollectiveKind::AllReduce);
    EXPECT_EQ(exec.fwd_collectives[0].group.size(), 8u);
    EXPECT_DOUBLE_EQ(exec.fwd_collectives[0].bytes, op.outputBytes());
}

TEST_F(PartitionerTest, TpColumnParallelReducesOnlyBackward)
{
    const OpExecution exec = analyze("qkv", spec(1, 8, 1, 1));
    EXPECT_TRUE(exec.fwd_collectives.empty());
    ASSERT_FALSE(exec.bwd_collectives.empty());
    EXPECT_EQ(exec.bwd_collectives[0].kind, net::CollectiveKind::AllReduce);
}

TEST_F(PartitionerTest, SequenceParallelGathersKvForAttention)
{
    // SP splits the sequence; attention must gather K/V with an exposed
    // all-gather (the overhead the paper contrasts TATP against).
    const OpExecution exec = analyze("qk^T", spec(1, 1, 8, 1));
    ASSERT_FALSE(exec.fwd_collectives.empty());
    EXPECT_EQ(exec.fwd_collectives[0].kind, net::CollectiveKind::AllGather);
    EXPECT_TRUE(exec.overlap_collectives.empty());
    // SP replicates weights -> per-step gradient sync on weighted ops.
    const OpExecution fc1 = analyze("fc1", spec(1, 1, 8, 1));
    ASSERT_FALSE(fc1.step_collectives.empty());
    EXPECT_EQ(fc1.step_collectives[0].kind, net::CollectiveKind::AllReduce);
}

TEST_F(PartitionerTest, ContextParallelOverlapsKvExchange)
{
    const OpExecution exec = analyze("qk^T", spec(1, 1, 1, 1, 1, 8));
    EXPECT_TRUE(exec.fwd_collectives.empty());
    ASSERT_FALSE(exec.overlap_collectives.empty());
    EXPECT_EQ(exec.overlap_collectives[0].kind,
              net::CollectiveKind::AllGather);
}

TEST_F(PartitionerTest, TpReplicatesNormComputeButSpSplitsIt)
{
    const OpExecution tp_norm = analyze("ln1", spec(1, 8, 1, 1));
    const OpExecution sp_norm = analyze("ln1", spec(1, 1, 8, 1));
    // TP leaves the norm region replicated (compute and activations).
    EXPECT_NEAR(tp_norm.activation_bytes / sp_norm.activation_bytes, 8.0,
                1e-9);
    EXPECT_NEAR(tp_norm.fwd_flops_per_die / sp_norm.fwd_flops_per_die, 8.0,
                1e-9);
}

TEST_F(PartitionerTest, DpEmitsGradientAllReduce)
{
    const OpExecution exec = analyze("fc1", spec(4, 1, 1, 1));
    EXPECT_TRUE(exec.fwd_collectives.empty());
    ASSERT_EQ(exec.step_collectives.size(), 1u);  // one active DP group
    EXPECT_EQ(exec.step_collectives[0].kind,
              net::CollectiveKind::AllReduce);
    const model::Operator &op = findOp(graph_, "fc1");
    EXPECT_DOUBLE_EQ(exec.step_collectives[0].bytes, op.weightBytes());
    // DP replicates parameters.
    EXPECT_DOUBLE_EQ(exec.weight_bytes, op.weightBytes());
}

TEST_F(PartitionerTest, FsdpShardsAllStateAndGathersWeights)
{
    const OpExecution exec = analyze("fc1", spec(1, 1, 1, 1, 4));
    const model::Operator &op = findOp(graph_, "fc1");
    EXPECT_DOUBLE_EQ(exec.weight_bytes, op.weightBytes() / 4.0);
    EXPECT_DOUBLE_EQ(exec.optimizer_bytes,
                     op.n * op.k * 12.0 / 4.0);
    // All-gather of weight shards in fwd and bwd.
    ASSERT_FALSE(exec.fwd_collectives.empty());
    EXPECT_EQ(exec.fwd_collectives[0].kind, net::CollectiveKind::AllGather);
    ASSERT_FALSE(exec.bwd_collectives.empty());
    // Reduce-scatter of gradients at step end.
    ASSERT_FALSE(exec.step_collectives.empty());
    EXPECT_EQ(exec.step_collectives[0].kind,
              net::CollectiveKind::ReduceScatter);
    // Transient unsharded weight buffer counted.
    EXPECT_GT(exec.comm_buffer_bytes, 0.0);
}

TEST_F(PartitionerTest, TatpStreamsWithoutCollectives)
{
    const OpExecution exec = analyze("fc1", spec(1, 1, 1, 8));
    EXPECT_TRUE(exec.fwd_collectives.empty());
    EXPECT_TRUE(exec.bwd_collectives.empty());
    EXPECT_TRUE(exec.step_collectives.empty());
    ASSERT_TRUE(exec.tatp.active);
    EXPECT_EQ(exec.tatp.degree, 8);
    const model::Operator &op = findOp(graph_, "fc1");
    // Weights sharded by the stream degree.
    EXPECT_DOUBLE_EQ(exec.weight_bytes, op.weightBytes() / 8.0);
    // No tensor replication: activations sharded by the stream degree.
    EXPECT_DOUBLE_EQ(exec.activation_bytes, op.outputBytes() / 8.0);
}

TEST_F(PartitionerTest, SelectiveTransferPicksSmallerTensor)
{
    // Long sequence: activations >> weights, so stream weights.
    const auto long_seq = model::modelByName("Llama2 7B")
                              .withSeqBatch(16384, 32);
    const auto graph = model::ComputeGraph::transformer(long_seq);
    GroupLayout layout(mesh_, spec(1, 1, 1, 8));
    Partitioner part;
    const OpExecution exec = part.analyze(findOp(graph, "fc1"), layout);
    ASSERT_TRUE(exec.tatp.active);
    EXPECT_TRUE(exec.tatp.stream_weights);

    // Tiny sequence: weights >> activations, so stream activations.
    const auto short_seq = model::modelByName("Llama2 7B")
                               .withSeqBatch(128, 1);
    const auto graph2 = model::ComputeGraph::transformer(short_seq);
    const OpExecution exec2 = part.analyze(findOp(graph2, "fc1"), layout);
    ASSERT_TRUE(exec2.tatp.active);
    EXPECT_FALSE(exec2.tatp.stream_weights);
}

TEST_F(PartitionerTest, TatpStreamVolumeMatchesShardSize)
{
    const OpExecution exec = analyze("fc1", spec(1, 1, 1, 8));
    EXPECT_NEAR(exec.tatp.bytes_per_round,
                exec.tatp.group_tensor_bytes / 8.0, 1e-9);
    EXPECT_NEAR(exec.tatp.fwd_flops_per_round * 8.0,
                exec.fwd_flops_per_die, 1e-6);
}

TEST_F(PartitionerTest, HybridSpecCombinesAxes)
{
    const OpExecution exec = analyze("fc1", spec(2, 2, 1, 8));
    const model::Operator &op = findOp(graph_, "fc1");
    EXPECT_DOUBLE_EQ(exec.fwd_flops_per_die, op.forwardFlops() / 32.0);
    EXPECT_DOUBLE_EQ(exec.weight_bytes, op.weightBytes() / 16.0);
    EXPECT_TRUE(exec.tatp.active);
    // DP grad sync still present.
    EXPECT_FALSE(exec.step_collectives.empty());
}

TEST_F(PartitionerTest, FlashAttentionSkipsScoreActivations)
{
    const OpExecution softmax = analyze("softmax", spec(1, 1, 1, 1));
    EXPECT_DOUBLE_EQ(softmax.activation_bytes, 0.0);

    TrainingOptions opts;
    opts.flash_attention = false;
    Partitioner part(opts);
    GroupLayout layout(mesh_, ParallelSpec::serial());
    const OpExecution stored =
        part.analyze(findOp(graph_, "softmax"), layout);
    EXPECT_GT(stored.activation_bytes, 0.0);
}

TEST_F(PartitionerTest, MemoryReplicationShowsUpAcrossDp)
{
    // Fig. 4(a) motivation: replication-relying TP/DP keeps row-parallel
    // outputs and the norm region replicated across the TP group; TATP
    // shards everything.
    const OpExecution megatron = analyze("proj", spec(4, 8, 1, 1));
    const OpExecution tatp = analyze("proj", spec(1, 1, 1, 32));
    EXPECT_GT(megatron.activation_bytes, tatp.activation_bytes);
    EXPECT_GT(megatron.weight_bytes, tatp.weight_bytes);
    const OpExecution mega_norm = analyze("ln1", spec(4, 8, 1, 1));
    const OpExecution tatp_norm = analyze("ln1", spec(1, 1, 1, 32));
    EXPECT_NEAR(mega_norm.activation_bytes / tatp_norm.activation_bytes,
                8.0, 1e-9);
}

TEST_F(PartitionerTest, CollectivePayloadBytesAccounting)
{
    const OpExecution exec = analyze("proj", spec(1, 8, 1, 1));
    // 4 groups x all-reduce of outputBytes over 8 members:
    // 2*(8-1)*bytes each.
    const model::Operator &op = findOp(graph_, "proj");
    // One active group, all-reduce of outputBytes over 8 members.
    const double expected = 2.0 * 7.0 * op.outputBytes();
    EXPECT_NEAR(exec.collectivePayloadBytes(), expected, 1.0);
}

TEST(Reshard, IdenticalSpecsAreFree)
{
    const auto graph =
        model::ComputeGraph::transformer(model::modelByName("GPT-3 6.7B"));
    TrainingOptions opts;
    EXPECT_DOUBLE_EQ(
        reshardBytesPerDie(graph.op(1), spec(2, 4, 1, 4), spec(2, 4, 1, 4),
                           opts),
        0.0);
}

TEST(Reshard, MismatchedSpecsMoveData)
{
    const auto graph =
        model::ComputeGraph::transformer(model::modelByName("GPT-3 6.7B"));
    TrainingOptions opts;
    const double bytes = reshardBytesPerDie(graph.op(1), spec(8, 1, 1, 1),
                                            spec(1, 8, 1, 1), opts);
    EXPECT_GT(bytes, 0.0);
    // Bounded by the producer's full output per die.
    EXPECT_LE(bytes, graph.op(1).outputBytes());
}

}  // namespace
}  // namespace temp::parallel
