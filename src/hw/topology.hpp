/**
 * @file
 * Interconnect topologies: the wafer's 2D mesh of dies and the
 * switch-based all-to-all fabric of a GPU cluster.
 *
 * Dies are addressed by a dense integer DieId; directed links by a dense
 * LinkId. The net layer builds routes as LinkId sequences and accumulates
 * per-link loads, so dense ids keep the hot paths allocation-free.
 */
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

namespace temp::hw {

using DieId = int;
using LinkId = int;

/// Grid position of a die on the wafer.
struct DieCoord
{
    int row = 0;
    int col = 0;

    bool operator==(const DieCoord &other) const = default;
};

/// A directed point-to-point link between two dies (or die and switch).
struct Link
{
    DieId src = -1;
    DieId dst = -1;
};

/**
 * Abstract interconnect topology.
 *
 * Concrete implementations enumerate the directed links at construction
 * time so that LinkIds are dense and stable.
 */
class Topology
{
  public:
    virtual ~Topology() = default;

    /// Number of dies (endpoints) in the fabric.
    virtual int dieCount() const = 0;

    /// Number of directed links.
    int linkCount() const { return static_cast<int>(links_.size()); }

    /// The endpoints of a link.
    const Link &link(LinkId id) const { return links_[id]; }

    /// Dies directly reachable from the given die.
    const std::vector<DieId> &neighbors(DieId die) const
    {
        return neighbors_[die];
    }

    /// True if a directed link src->dst exists.
    bool hasLink(DieId src, DieId dst) const;

    /// The id of the directed link src->dst; panics if absent.
    LinkId linkId(DieId src, DieId dst) const;

    /// Minimum number of link traversals between two dies.
    virtual int hopDistance(DieId src, DieId dst) const = 0;

    /// Human-readable name of the die (for traces and reports).
    virtual std::string dieName(DieId die) const;

  protected:
    /// Registers a directed link during construction; returns its id.
    LinkId addLink(DieId src, DieId dst);

    std::vector<Link> links_;
    std::vector<std::vector<DieId>> neighbors_;
    std::unordered_map<long long, LinkId> link_index_;

    static long long pairKey(DieId src, DieId dst)
    {
        return (static_cast<long long>(src) << 32) |
               static_cast<unsigned int>(dst);
    }
};

/**
 * 2D mesh of rows x cols dies; dies are connected to their N/S/E/W
 * neighbours only (Sec. II-B / Fig. 3). An optional torus mode exists
 * purely for what-if studies — the paper argues wrap links are infeasible
 * at wafer scale (Sec. III-B).
 */
class MeshTopology : public Topology
{
  public:
    MeshTopology(int rows, int cols, bool torus = false);

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    bool isTorus() const { return torus_; }

    int dieCount() const override { return rows_ * cols_; }

    /// Grid coordinate of a die id.
    DieCoord coordOf(DieId die) const;

    /// Die id at a grid coordinate (must be in range).
    DieId dieAt(int row, int col) const;

    /// True if the coordinate lies on the wafer.
    bool inBounds(int row, int col) const
    {
        return row >= 0 && row < rows_ && col >= 0 && col < cols_;
    }

    int hopDistance(DieId src, DieId dst) const override;

    std::string dieName(DieId die) const override;

    /**
     * Physical centre-to-centre distance between two dies in millimetres,
     * given the die footprint (used by signal-integrity feasibility
     * checks for hypothetical long links).
     */
    double physicalDistanceMm(DieId src, DieId dst, double die_width_mm,
                              double die_height_mm) const;

  private:
    int rows_;
    int cols_;
    bool torus_;
};

/**
 * Switch-based all-to-all fabric (GPU cluster). Each GPU owns an uplink
 * and a downlink to a central switch; a route between two GPUs uses the
 * source uplink and destination downlink, which is where NIC contention
 * materialises.
 */
class SwitchTopology : public Topology
{
  public:
    explicit SwitchTopology(int endpoint_count);

    int dieCount() const override { return endpoints_; }

    int hopDistance(DieId src, DieId dst) const override
    {
        return src == dst ? 0 : 2;
    }

    /// Uplink (endpoint -> switch) id for an endpoint.
    LinkId uplink(DieId die) const { return 2 * die; }

    /// Downlink (switch -> endpoint) id for an endpoint.
    LinkId downlink(DieId die) const { return 2 * die + 1; }

    std::string dieName(DieId die) const override;

  private:
    int endpoints_;
};

}  // namespace temp::hw
