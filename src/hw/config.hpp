/**
 * @file
 * Hardware configuration records for wafer-scale chips (Table I of the
 * paper), multi-wafer systems (Sec. VIII-E) and the A100 GPU-cluster
 * reference system (Fig. 15).
 */
#pragma once

#include "common/units.hpp"

namespace temp::hw {

/// Compute (logic) die parameters — Table I "Logic Die".
struct DieConfig
{
    double area_mm2 = 500.0;
    double sram_bytes = megabytes(80.0);
    double frequency_hz = 2000.0 * kMega;
    /// Peak mixed-precision throughput per die.
    double peak_flops = tflops(1800.0);
    /// Compute energy efficiency (2 TFLOPS/Watt in Table I).
    double flops_per_watt = tflops(2.0);

    /// Joules consumed per FLOP, derived from the efficiency rating.
    double joulesPerFlop() const { return 1.0 / flops_per_watt; }
};

/// Per-die HBM parameters. Table I rates one stack at 72 GB and
/// 1 TB/s; Fig. 3 shows each compute die flanked by multiple stacks,
/// and the paper's Fig. 4(c) capacity line (~144 GB) implies two
/// stacks per die, which is what we model.
struct HbmConfig
{
    double area_mm2 = 210.0;
    int stacks_per_die = 2;
    double capacity_bytes = stacks_per_die * gigabytes(72.0);
    double bandwidth_bytes_per_s = stacks_per_die * tbPerSec(1.0);
    double latency_s = 100.0 * kNano;
    double energy_pj_per_bit = 6.0;

    /// Joules consumed per byte moved to/from DRAM.
    double joulesPerByte() const
    {
        return pjPerBitToJoulePerByte(energy_pj_per_bit);
    }
};

/// Die-to-die interconnect parameters — Table I.
struct D2dConfig
{
    double bandwidth_bytes_per_s = tbPerSec(4.0);
    double latency_s = 200.0 * kNano;
    double energy_pj_per_bit = 5.0;
    /**
     * Minimum transfer granularity at which the link reaches peak
     * efficiency (Sec. III-B cites tens-to-hundreds of MB); transfers
     * smaller than this see proportionally lower effective bandwidth.
     */
    double efficient_transfer_bytes = megabytes(32.0);

    /// Joules consumed per byte crossing one D2D hop.
    double joulesPerByte() const
    {
        return pjPerBitToJoulePerByte(energy_pj_per_bit);
    }

    /**
     * Effective bandwidth for a transfer of the given size: ramps linearly
     * with message size up to the efficient granularity, floored at 10% of
     * peak so tiny control messages are not infinitely slow.
     */
    double effectiveBandwidth(double bytes) const;
};

/// A single wafer: a rows x cols 2D-mesh of identical dies.
struct WaferConfig
{
    int rows = 4;
    int cols = 8;
    DieConfig die;
    HbmConfig hbm;
    D2dConfig d2d;

    /// Number of dies on the wafer.
    int dieCount() const { return rows * cols; }

    /// Aggregate peak compute of the wafer.
    double totalFlops() const { return dieCount() * die.peak_flops; }

    /// Aggregate HBM capacity of the wafer.
    double totalHbmBytes() const { return dieCount() * hbm.capacity_bytes; }

    /// The evaluation configuration of Sec. VIII-A (4x8 dies at 2 GHz).
    static WaferConfig paperDefault();

    /// Variant with a different die-array geometry, same die/link configs.
    WaferConfig withGrid(int rows, int cols) const;
};

/// Multi-wafer system (Sec. VIII-E): wafers joined by inter-wafer links.
struct MultiWaferConfig
{
    WaferConfig wafer;
    int wafer_count = 2;
    /// Inter-wafer bandwidth; the paper cites 9 TB/s (Dojo-style [109]).
    double inter_wafer_bandwidth_bytes_per_s = tbPerSec(9.0);
    double inter_wafer_latency_s = 1.0 * kMicro;

    int totalDies() const { return wafer_count * wafer.dieCount(); }
};

/**
 * A100-style GPU cluster used as the Fig. 15 reference: switch-connected
 * all-to-all topology (NVLink/NVSwitch), matching the WSC's aggregate
 * FP16 peak (32 x 312 TFLOPS).
 */
struct GpuClusterConfig
{
    int gpu_count = 32;
    double peak_flops = tflops(312.0);
    double mem_capacity_bytes = gigabytes(80.0);
    double mem_bandwidth_bytes_per_s = tbPerSec(2.0);
    /// Per-GPU injection bandwidth into the intra-node NVSwitch fabric.
    double nic_bandwidth_bytes_per_s = gbPerSec(600.0);
    /// Per-GPU share of the inter-node fabric (4xHDR InfiniBand per
    /// 8-GPU node): collectives spanning nodes ride this tier.
    double inter_node_bandwidth_bytes_per_s = gbPerSec(100.0);
    /// GPUs per NVSwitch domain (node).
    int gpus_per_node = 8;
    double nic_latency_s = 1.0 * kMicro;
    double nic_energy_pj_per_bit = 10.0;
    double flops_per_watt = tflops(0.8);

    static GpuClusterConfig a100Default();
};

}  // namespace temp::hw
