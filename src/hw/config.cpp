#include "hw/config.hpp"

#include <algorithm>

namespace temp::hw {

double
D2dConfig::effectiveBandwidth(double bytes) const
{
    if (bytes <= 0.0)
        return bandwidth_bytes_per_s;
    const double ramp = bytes / efficient_transfer_bytes;
    const double fraction = std::clamp(ramp, 0.1, 1.0);
    return bandwidth_bytes_per_s * fraction;
}

WaferConfig
WaferConfig::paperDefault()
{
    return WaferConfig{};
}

WaferConfig
WaferConfig::withGrid(int new_rows, int new_cols) const
{
    WaferConfig config = *this;
    config.rows = new_rows;
    config.cols = new_cols;
    return config;
}

GpuClusterConfig
GpuClusterConfig::a100Default()
{
    return GpuClusterConfig{};
}

}  // namespace temp::hw
