#include "hw/topology.hpp"

#include <cmath>
#include <cstdlib>

#include "common/logging.hpp"

namespace temp::hw {

bool
Topology::hasLink(DieId src, DieId dst) const
{
    return link_index_.count(pairKey(src, dst)) > 0;
}

LinkId
Topology::linkId(DieId src, DieId dst) const
{
    auto it = link_index_.find(pairKey(src, dst));
    if (it == link_index_.end())
        panic("Topology::linkId: no link %d->%d", src, dst);
    return it->second;
}

std::string
Topology::dieName(DieId die) const
{
    return "D" + std::to_string(die);
}

LinkId
Topology::addLink(DieId src, DieId dst)
{
    const LinkId id = static_cast<LinkId>(links_.size());
    links_.push_back(Link{src, dst});
    link_index_.emplace(pairKey(src, dst), id);
    return id;
}

MeshTopology::MeshTopology(int rows, int cols, bool torus)
    : rows_(rows), cols_(cols), torus_(torus)
{
    if (rows < 1 || cols < 1)
        fatal("MeshTopology: invalid grid %dx%d", rows, cols);

    neighbors_.resize(dieCount());
    auto connect = [this](DieId a, DieId b) {
        if (!hasLink(a, b)) {
            addLink(a, b);
            neighbors_[a].push_back(b);
        }
    };

    for (int r = 0; r < rows_; ++r) {
        for (int c = 0; c < cols_; ++c) {
            const DieId die = dieAt(r, c);
            if (inBounds(r - 1, c))
                connect(die, dieAt(r - 1, c));
            if (inBounds(r + 1, c))
                connect(die, dieAt(r + 1, c));
            if (inBounds(r, c - 1))
                connect(die, dieAt(r, c - 1));
            if (inBounds(r, c + 1))
                connect(die, dieAt(r, c + 1));
            if (torus_) {
                if (rows_ > 2) {
                    connect(die, dieAt((r + 1) % rows_, c));
                    connect(die, dieAt((r + rows_ - 1) % rows_, c));
                }
                if (cols_ > 2) {
                    connect(die, dieAt(r, (c + 1) % cols_));
                    connect(die, dieAt(r, (c + cols_ - 1) % cols_));
                }
            }
        }
    }
}

DieCoord
MeshTopology::coordOf(DieId die) const
{
    if (die < 0 || die >= dieCount())
        panic("MeshTopology::coordOf: die %d out of range", die);
    return DieCoord{die / cols_, die % cols_};
}

DieId
MeshTopology::dieAt(int row, int col) const
{
    if (!inBounds(row, col))
        panic("MeshTopology::dieAt: (%d,%d) out of %dx%d", row, col, rows_,
              cols_);
    return row * cols_ + col;
}

int
MeshTopology::hopDistance(DieId src, DieId dst) const
{
    const DieCoord a = coordOf(src);
    const DieCoord b = coordOf(dst);
    int dr = std::abs(a.row - b.row);
    int dc = std::abs(a.col - b.col);
    if (torus_) {
        dr = std::min(dr, rows_ - dr);
        dc = std::min(dc, cols_ - dc);
    }
    return dr + dc;
}

std::string
MeshTopology::dieName(DieId die) const
{
    const DieCoord coord = coordOf(die);
    return "D" + std::to_string(die) + "(" + std::to_string(coord.row) + "," +
           std::to_string(coord.col) + ")";
}

double
MeshTopology::physicalDistanceMm(DieId src, DieId dst, double die_width_mm,
                                 double die_height_mm) const
{
    const DieCoord a = coordOf(src);
    const DieCoord b = coordOf(dst);
    const double dx = (a.col - b.col) * die_width_mm;
    const double dy = (a.row - b.row) * die_height_mm;
    return std::sqrt(dx * dx + dy * dy);
}

SwitchTopology::SwitchTopology(int endpoint_count) : endpoints_(endpoint_count)
{
    if (endpoint_count < 1)
        fatal("SwitchTopology: invalid endpoint count %d", endpoint_count);
    neighbors_.resize(endpoints_);
    // Links 2i (uplink) and 2i+1 (downlink) per endpoint. The switch core
    // is modelled as non-blocking, so only endpoint links are registered.
    for (DieId die = 0; die < endpoints_; ++die) {
        addLink(die, -1);
        addLink(-1, die);
        for (DieId other = 0; other < endpoints_; ++other)
            if (other != die)
                neighbors_[die].push_back(other);
    }
}

std::string
SwitchTopology::dieName(DieId die) const
{
    return "GPU" + std::to_string(die);
}

}  // namespace temp::hw
