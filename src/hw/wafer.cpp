#include "hw/wafer.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

namespace temp::hw {

Wafer::Wafer(WaferConfig config, FaultMap faults)
    : config_(config),
      topology_(std::make_unique<MeshTopology>(config.rows, config.cols)),
      faults_(std::move(faults))
{
}

std::vector<DieId>
Wafer::usableDies() const
{
    // BFS over usable links; keep the largest connected component of
    // dies that still have working compute.
    const int n = dieCount();
    std::vector<int> component(n, -1);
    std::vector<DieId> best;
    int next_component = 0;
    for (DieId start = 0; start < n; ++start) {
        if (component[start] >= 0 ||
            faults_.computeDerate(start) <= 0.0) {
            continue;
        }
        std::vector<DieId> members;
        std::deque<DieId> queue{start};
        component[start] = next_component;
        while (!queue.empty()) {
            const DieId cur = queue.front();
            queue.pop_front();
            members.push_back(cur);
            for (DieId other : topology_->neighbors(cur)) {
                if (component[other] >= 0 ||
                    faults_.computeDerate(other) <= 0.0 ||
                    faults_.linkFailed(topology_->linkId(cur, other))) {
                    continue;
                }
                component[other] = next_component;
                queue.push_back(other);
            }
        }
        if (members.size() > best.size())
            best = std::move(members);
        ++next_component;
    }
    std::sort(best.begin(), best.end());
    return best;
}

bool
Wafer::directLinkFeasible(DieId src, DieId dst) const
{
    // Interposer traces are routed rectilinearly, so the wiring length of
    // a hypothetical direct link is the Manhattan distance between die
    // centres, not the Euclidean one. This is what rules out diagonal
    // links (25.0 + 33.3 = 58.2 mm > 50 mm) as Sec. III-B requires.
    const hw::DieCoord a = topology_->coordOf(src);
    const hw::DieCoord b = topology_->coordOf(dst);
    const double wire_mm = std::abs(a.col - b.col) * kDieWidthMm +
                           std::abs(a.row - b.row) * kDieHeightMm;
    return wire_mm <= kMaxInterconnectMm;
}

}  // namespace temp::hw
