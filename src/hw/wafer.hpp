/**
 * @file
 * The Wafer object: configuration + topology + fault state, the physical
 * substrate every higher layer (routing, mapping, cost model) queries.
 */
#pragma once

#include <memory>

#include "hw/config.hpp"
#include "hw/fault.hpp"
#include "hw/topology.hpp"

namespace temp::hw {

/**
 * A single wafer-scale chip instance.
 *
 * Owns the mesh topology built from the configuration and applies the
 * fault map to expose *effective* per-die compute and per-link
 * availability/bandwidth.
 */
class Wafer
{
  public:
    explicit Wafer(WaferConfig config, FaultMap faults = FaultMap());

    const WaferConfig &config() const { return config_; }
    const MeshTopology &topology() const { return *topology_; }
    const FaultMap &faults() const { return faults_; }

    int dieCount() const { return topology_->dieCount(); }

    /// Effective peak FLOPs of a die after core-fault derating.
    double effectiveFlops(DieId die) const
    {
        return config_.die.peak_flops * faults_.computeDerate(die);
    }

    /// True if the directed link can carry traffic.
    bool linkUsable(LinkId link) const { return !faults_.linkFailed(link); }

    /// Peak bandwidth of a usable link; zero for a failed link.
    double linkBandwidth(LinkId link) const
    {
        return linkUsable(link) ? config_.d2d.bandwidth_bytes_per_s : 0.0;
    }

    /// Replaces the fault state (used by fault-injection sweeps). The
    /// fault epoch strictly increases so fault-sensitive caches see the
    /// swap even when the new map's own revision is small.
    void setFaults(FaultMap faults)
    {
        const std::uint64_t floor = faults_.revision() + 1;
        faults_ = std::move(faults);
        faults_.advanceRevision(floor);
    }

    /**
     * Monotonic fault epoch of this wafer: changes whenever the fault
     * state does (construction-time map included). Caches keyed on
     * lowered schedules or per-link bandwidth compare this instead of
     * hashing the fault set per lookup.
     */
    std::uint64_t faultEpoch() const { return faults_.revision(); }

    /**
     * The dies the framework can actually use: the largest connected
     * component of the usable-link graph, excluding dies whose compute
     * is fully dead. Fault-tolerant re-optimisation (Sec. VIII-F) maps
     * work onto this set and leaves stranded dies idle.
     */
    std::vector<DieId> usableDies() const;

    /// Size of usableDies().
    int usableDieCount() const
    {
        return static_cast<int>(usableDies().size());
    }

    /**
     * True if a hypothetical direct link between the two dies would meet
     * the signal-integrity length limit (50 mm, Sec. III-B / Fig. 7b).
     * Adjacent dies pass; anything longer (diagonals, wrap links) fails.
     */
    bool directLinkFeasible(DieId src, DieId dst) const;

    /// The signal-integrity distance limit in millimetres.
    static constexpr double kMaxInterconnectMm = 50.0;

    /// Die footprint from Fig. 3 (24.99 mm x 33.25 mm).
    static constexpr double kDieWidthMm = 24.99;
    static constexpr double kDieHeightMm = 33.25;

  private:
    WaferConfig config_;
    std::unique_ptr<MeshTopology> topology_;
    FaultMap faults_;
};

}  // namespace temp::hw
