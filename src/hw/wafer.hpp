/**
 * @file
 * The Wafer object: configuration + topology + fault state, the physical
 * substrate every higher layer (routing, mapping, cost model) queries.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "hw/config.hpp"
#include "hw/fault.hpp"
#include "hw/topology.hpp"

namespace temp::hw {

/**
 * A single wafer-scale chip instance.
 *
 * Owns the mesh topology built from the configuration and applies the
 * fault map to expose *effective* per-die compute and per-link
 * availability/bandwidth.
 */
class Wafer
{
  public:
    explicit Wafer(WaferConfig config, FaultMap faults = FaultMap());

    const WaferConfig &config() const { return config_; }
    const MeshTopology &topology() const { return *topology_; }
    const FaultMap &faults() const { return faults_; }

    int dieCount() const { return topology_->dieCount(); }

    /// Effective peak FLOPs of a die after core-fault derating.
    double effectiveFlops(DieId die) const
    {
        return config_.die.peak_flops * faults_.computeDerate(die);
    }

    /// True if the directed link can carry traffic.
    bool linkUsable(LinkId link) const { return !faults_.linkFailed(link); }

    /// Peak bandwidth of a usable link; zero for a failed link.
    double linkBandwidth(LinkId link) const
    {
        return linkUsable(link) ? config_.d2d.bandwidth_bytes_per_s : 0.0;
    }

    /// Replaces the fault state (used by fault-injection sweeps). The
    /// fault epoch strictly increases so fault-sensitive caches see the
    /// swap even when the new map's own revision is small. Epoch
    /// listeners fire before this returns, so fault-sensitive caches
    /// flush their dead-epoch entries eagerly instead of holding them
    /// until (unless) a next lookup arrives.
    void setFaults(FaultMap faults)
    {
        const std::uint64_t floor = faults_.revision() + 1;
        faults_ = std::move(faults);
        faults_.advanceRevision(floor);
        notifyEpochListeners(faults_.revision());
    }

    /**
     * Applies an incremental fault change: copy current map, apply the
     * delta, swap through setFaults() — so the epoch-floor and
     * listener-notification contract of a full swap holds verbatim for
     * storm deltas, and back-to-back deltas observe strictly
     * increasing faultEpoch() values.
     */
    void applyFaultDelta(const FaultDelta &delta)
    {
        FaultMap next = faults_;
        next.applyDelta(delta);
        setFaults(std::move(next));
    }

    /**
     * Registers a callback invoked with the new epoch on every
     * setFaults(). Callers whose lifetime is shorter than the wafer's
     * (per-call simulators, degraded-solve cost models) MUST
     * removeEpochListener() the returned id before they die. Const:
     * observation does not change the wafer's physical state, and the
     * registrants hold const references.
     */
    std::uint64_t addEpochListener(
        std::function<void(std::uint64_t)> listener) const
    {
        std::lock_guard<std::mutex> lock(listeners_->mutex);
        const std::uint64_t id = listeners_->next_id++;
        listeners_->entries.emplace_back(id, std::move(listener));
        return id;
    }

    void removeEpochListener(std::uint64_t id) const
    {
        std::lock_guard<std::mutex> lock(listeners_->mutex);
        auto &entries = listeners_->entries;
        for (std::size_t i = 0; i < entries.size(); ++i) {
            if (entries[i].first == id) {
                entries.erase(entries.begin() +
                              static_cast<std::ptrdiff_t>(i));
                return;
            }
        }
    }

    /**
     * Monotonic fault epoch of this wafer: changes whenever the fault
     * state does (construction-time map included). Caches keyed on
     * lowered schedules or per-link bandwidth compare this instead of
     * hashing the fault set per lookup.
     */
    std::uint64_t faultEpoch() const { return faults_.revision(); }

    /**
     * The dies the framework can actually use: the largest connected
     * component of the usable-link graph, excluding dies whose compute
     * is fully dead. Fault-tolerant re-optimisation (Sec. VIII-F) maps
     * work onto this set and leaves stranded dies idle.
     */
    std::vector<DieId> usableDies() const;

    /// Size of usableDies().
    int usableDieCount() const
    {
        return static_cast<int>(usableDies().size());
    }

    /**
     * True if a hypothetical direct link between the two dies would meet
     * the signal-integrity length limit (50 mm, Sec. III-B / Fig. 7b).
     * Adjacent dies pass; anything longer (diagonals, wrap links) fails.
     */
    bool directLinkFeasible(DieId src, DieId dst) const;

    /// The signal-integrity distance limit in millimetres.
    static constexpr double kMaxInterconnectMm = 50.0;

    /// Die footprint from Fig. 3 (24.99 mm x 33.25 mm).
    static constexpr double kDieWidthMm = 24.99;
    static constexpr double kDieHeightMm = 33.25;

  private:
    /// Heap-allocated so the wafer stays movable despite the mutex.
    struct EpochListeners
    {
        std::mutex mutex;
        std::uint64_t next_id = 1;
        std::vector<
            std::pair<std::uint64_t, std::function<void(std::uint64_t)>>>
            entries;
    };

    void notifyEpochListeners(std::uint64_t epoch)
    {
        // Invoked under the registry lock so removeEpochListener()
        // synchronizes with in-flight callbacks: once remove()
        // returns, the listener can never fire again, which is what
        // lets ~WaferCostModel race a concurrent setFaults() safely.
        // Consequence: listeners must not register/unregister
        // listeners or call setFaults() from inside the callback
        // (they flush their own caches, nothing more).
        std::lock_guard<std::mutex> lock(listeners_->mutex);
        for (const auto &[id, listener] : listeners_->entries)
            listener(epoch);
    }

    WaferConfig config_;
    std::unique_ptr<MeshTopology> topology_;
    FaultMap faults_;
    std::unique_ptr<EpochListeners> listeners_ =
        std::make_unique<EpochListeners>();
};

}  // namespace temp::hw
