#include "hw/fault.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace temp::hw {

FaultMap::FaultMap(int die_count, int link_count)
    : core_fault_fraction_(die_count, 0.0)
{
    (void)link_count;
}

void
FaultMap::setCoreFaultFraction(DieId die, double fraction)
{
    if (die < 0)
        panic("FaultMap::setCoreFaultFraction: bad die %d", die);
    if (static_cast<std::size_t>(die) >= core_fault_fraction_.size())
        core_fault_fraction_.resize(die + 1, 0.0);
    core_fault_fraction_[die] = std::clamp(fraction, 0.0, 1.0);
    ++revision_;
}

double
FaultMap::coreFaultFraction(DieId die) const
{
    if (die < 0 || static_cast<std::size_t>(die) >= core_fault_fraction_.size())
        return 0.0;
    return core_fault_fraction_[die];
}

std::vector<LinkId>
FaultMap::failedLinks() const
{
    std::vector<LinkId> links(failed_links_.begin(),
                              failed_links_.end());
    std::sort(links.begin(), links.end());
    return links;
}

bool
FaultMap::healthy() const
{
    if (!failed_links_.empty())
        return false;
    return std::all_of(core_fault_fraction_.begin(),
                       core_fault_fraction_.end(),
                       [](double f) { return f == 0.0; });
}

FaultMap
FaultMap::randomLinkFaults(const Topology &topo, double rate, Rng &rng)
{
    FaultMap map(topo.dieCount(), topo.linkCount());
    for (LinkId id = 0; id < topo.linkCount(); ++id) {
        const Link &link = topo.link(id);
        // Visit each undirected channel once (src < dst) and fail both
        // directions together.
        if (link.src >= link.dst)
            continue;
        if (rng.bernoulli(rate)) {
            map.failLink(id);
            if (topo.hasLink(link.dst, link.src))
                map.failLink(topo.linkId(link.dst, link.src));
        }
    }
    return map;
}

FaultMap
FaultMap::randomCoreFaults(const Topology &topo, double rate, Rng &rng)
{
    FaultMap map(topo.dieCount(), topo.linkCount());
    if (rate <= 0.0)
        return map;
    for (DieId die = 0; die < topo.dieCount(); ++die) {
        // Mean `rate`, spread 0.5x..1.5x, clamped so the die stays usable.
        const double f = rate * rng.uniformReal(0.5, 1.5);
        map.setCoreFaultFraction(die, std::min(f, 0.9));
    }
    return map;
}

}  // namespace temp::hw
