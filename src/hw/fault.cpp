#include "hw/fault.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace temp::hw {

FaultMap::FaultMap(int die_count, int link_count)
    : core_fault_fraction_(die_count, 0.0)
{
    (void)link_count;
}

void
FaultMap::setCoreFaultFraction(DieId die, double fraction)
{
    if (die < 0)
        panic("FaultMap::setCoreFaultFraction: bad die %d", die);
    if (static_cast<std::size_t>(die) >= core_fault_fraction_.size())
        core_fault_fraction_.resize(die + 1, 0.0);
    core_fault_fraction_[die] = std::clamp(fraction, 0.0, 1.0);
    ++revision_;
}

double
FaultMap::coreFaultFraction(DieId die) const
{
    if (die < 0 || static_cast<std::size_t>(die) >= core_fault_fraction_.size())
        return 0.0;
    return core_fault_fraction_[die];
}

std::vector<LinkId>
FaultMap::failedLinks() const
{
    std::vector<LinkId> links(failed_links_.begin(),
                              failed_links_.end());
    std::sort(links.begin(), links.end());
    return links;
}

void
FaultMap::applyDelta(const FaultDelta &delta)
{
    for (LinkId link : delta.fail_links)
        failLink(link);
    for (LinkId link : delta.restore_links)
        restoreLink(link);
    for (const auto &[die, fraction] : delta.core_fractions)
        setCoreFaultFraction(die, fraction);
}

FaultDelta
FaultMap::deltaBetween(const FaultMap &from, const FaultMap &to)
{
    FaultDelta delta;
    for (LinkId link : to.failedLinks())
        if (!from.linkFailed(link))
            delta.fail_links.push_back(link);
    for (LinkId link : from.failedLinks())
        if (!to.linkFailed(link))
            delta.restore_links.push_back(link);
    const int dies = std::max(from.dieCount(), to.dieCount());
    for (DieId die = 0; die < dies; ++die) {
        const double want = to.coreFaultFraction(die);
        if (from.coreFaultFraction(die) != want)
            delta.core_fractions.emplace_back(die, want);
    }
    return delta;
}

namespace {

/// Local FNV-1a (hw sits below the persist layer's codec helpers).
std::uint64_t
fnv1a(std::uint64_t hash, const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 1099511628211ULL;
    }
    return hash;
}

}  // namespace

std::uint64_t
FaultMap::contentFingerprint() const
{
    std::uint64_t hash = 14695981039346656037ULL;
    const std::vector<LinkId> links = failedLinks();
    for (LinkId link : links) {
        const std::uint64_t id = static_cast<std::uint64_t>(link);
        hash = fnv1a(hash, &id, sizeof(id));
    }
    // Trailing zero fractions are excluded so a map resized by a probe
    // of a healthy die fingerprints like one never probed.
    std::size_t last = core_fault_fraction_.size();
    while (last > 0 && core_fault_fraction_[last - 1] == 0.0)
        --last;
    for (std::size_t die = 0; die < last; ++die)
        hash = fnv1a(hash, &core_fault_fraction_[die],
                     sizeof(core_fault_fraction_[die]));
    // Separate the two sections so N links / 0 fractions never
    // collides with N-1 links / 1 fraction by concatenation.
    hash = fnv1a(hash, &last, sizeof(last));
    return hash;
}

bool
FaultMap::healthy() const
{
    if (!failed_links_.empty())
        return false;
    return std::all_of(core_fault_fraction_.begin(),
                       core_fault_fraction_.end(),
                       [](double f) { return f == 0.0; });
}

FaultMap
FaultMap::randomLinkFaults(const Topology &topo, double rate, Rng &rng)
{
    FaultMap map(topo.dieCount(), topo.linkCount());
    for (LinkId id = 0; id < topo.linkCount(); ++id) {
        const Link &link = topo.link(id);
        // Visit each undirected channel once (src < dst) and fail both
        // directions together.
        if (link.src >= link.dst)
            continue;
        if (rng.bernoulli(rate)) {
            map.failLink(id);
            if (topo.hasLink(link.dst, link.src))
                map.failLink(topo.linkId(link.dst, link.src));
        }
    }
    return map;
}

FaultMap
FaultMap::randomCoreFaults(const Topology &topo, double rate, Rng &rng)
{
    FaultMap map(topo.dieCount(), topo.linkCount());
    if (rate <= 0.0)
        return map;
    for (DieId die = 0; die < topo.dieCount(); ++die) {
        // Mean `rate`, spread 0.5x..1.5x, clamped so the die stays usable.
        const double f = rate * rng.uniformReal(0.5, 1.5);
        map.setCoreFaultFraction(die, std::min(f, 0.9));
    }
    return map;
}

}  // namespace temp::hw
