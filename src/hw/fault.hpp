/**
 * @file
 * Fault models for wafer-scale deployments (Sec. VIII-F).
 *
 * Two fault classes are modelled:
 *  - link faults: a D2D link is unusable and traffic must route around it;
 *  - core faults: a fraction of a die's compute cores are disabled,
 *    derating that die's throughput but leaving it reachable.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "hw/topology.hpp"

namespace temp::hw {

/**
 * An incremental change to a FaultMap — the currency of scenario fault
 * storms. Applying a delta touches only the listed links/dies, so
 * back-to-back storm events stay O(changes) instead of O(fabric), and
 * every mutation bumps the map's revision, keeping fault epochs
 * strictly increasing across a storm.
 */
struct FaultDelta
{
    /// Directed links to mark failed.
    std::vector<LinkId> fail_links;
    /// Directed links to mark healthy again.
    std::vector<LinkId> restore_links;
    /// (die, fraction) pairs to overwrite (absolute, not increments).
    std::vector<std::pair<DieId, double>> core_fractions;

    bool empty() const
    {
        return fail_links.empty() && restore_links.empty() &&
               core_fractions.empty();
    }
};

/// The fault state of one wafer.
class FaultMap
{
  public:
    FaultMap() = default;

    /// Creates an all-healthy map for a fabric of the given size.
    FaultMap(int die_count, int link_count);

    /// Marks the directed link (and typically its reverse) as failed.
    void failLink(LinkId link)
    {
        failed_links_.insert(link);
        ++revision_;
    }

    /// Marks the directed link healthy again (a repaired lane). Bumps
    /// the revision like failLink(), mutation attempted == mutation.
    void restoreLink(LinkId link)
    {
        failed_links_.erase(link);
        ++revision_;
    }

    /// True if the link is unusable.
    bool linkFailed(LinkId link) const
    {
        return failed_links_.count(link) > 0;
    }

    /// Applies an incremental change: fails, restores, then overwrites
    /// core fractions, in that order. Each mutation bumps the revision.
    void applyDelta(const FaultDelta &delta);

    /**
     * The delta transforming `from` into `to`: applyDelta(deltaBetween(
     * from, to)) on a copy of `from` yields a map content-equal to
     * `to` (fingerprints match; revisions are bookkeeping and differ).
     */
    static FaultDelta deltaBetween(const FaultMap &from,
                                   const FaultMap &to);

    /// Sets the fraction of failed compute cores on a die, in [0,1].
    void setCoreFaultFraction(DieId die, double fraction);

    /// Fraction of failed compute cores on a die.
    double coreFaultFraction(DieId die) const;

    /// Multiplier on the die's peak compute (1 - core fault fraction).
    double computeDerate(DieId die) const
    {
        return 1.0 - coreFaultFraction(die);
    }

    /// Number of failed directed links.
    int failedLinkCount() const
    {
        return static_cast<int>(failed_links_.size());
    }

    /// Dies tracked by the core-fault vector (its size).
    int dieCount() const
    {
        return static_cast<int>(core_fault_fraction_.size());
    }

    /// The failed directed links, sorted ascending — the deterministic
    /// order the wire format and canonical request keys rely on.
    std::vector<LinkId> failedLinks() const;

    /// Per-die core fault fractions (index = DieId).
    const std::vector<double> &coreFaultFractions() const
    {
        return core_fault_fraction_;
    }

    /// True if no faults are present.
    bool healthy() const;

    /**
     * Content fingerprint (FNV-1a over the sorted failed links and the
     * core-fraction bit patterns, trailing zeros excluded). Two maps
     * with equal fault content fingerprint equally regardless of how
     * they were built (bulk draw vs. accumulated deltas) and of their
     * revision counters — the scenario engine keys its degraded solve
     * contexts on this.
     */
    std::uint64_t contentFingerprint() const;

    /**
     * Monotonic mutation counter: bumped by every failLink() /
     * setCoreFaultFraction() call. Fault-sensitive caches (route pools,
     * schedule caches, per-link bandwidth snapshots) compare revisions
     * instead of hashing the fault set per lookup.
     */
    std::uint64_t revision() const { return revision_; }

    /// Raises the revision to at least `floor` (hw::Wafer uses this to
    /// keep epochs monotonic when a whole map is swapped in).
    void advanceRevision(std::uint64_t floor)
    {
        revision_ = std::max(revision_, floor);
    }

    /**
     * Generates random symmetric link faults: each undirected mesh link
     * fails independently with probability rate (both directions fail
     * together, as a physical lane fault takes out the channel).
     */
    static FaultMap randomLinkFaults(const Topology &topo, double rate,
                                     Rng &rng);

    /**
     * Generates random core faults: every die loses an i.i.d. fraction of
     * cores with mean rate (clamped to [0, 0.9] so dies stay usable).
     */
    static FaultMap randomCoreFaults(const Topology &topo, double rate,
                                     Rng &rng);

  private:
    std::unordered_set<LinkId> failed_links_;
    std::vector<double> core_fault_fraction_;
    std::uint64_t revision_ = 0;
};

}  // namespace temp::hw
