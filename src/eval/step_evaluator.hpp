/**
 * @file
 * StepEvaluator: the full-step sibling of CostEvaluator.
 *
 * The level-2 refinement of the DLS (and anything else that scores a
 * complete per-operator assignment) reduces to one primitive:
 * (graph, per-op assignment) -> PerfReport via the *full* training-step
 * simulation. That call captures cross-operator effects the additive
 * (op, strategy) matrix cannot — merged gradient-sync bucketing,
 * contention, memory pressure — and is therefore the hottest loop of
 * the whole search. This layer owns the primitive:
 *
 *  - reports are memoized behind a content key (graph fingerprint +
 *    the exact per-op spec sequence), so recurring genomes across GA
 *    generations, annealing proposals and repeat optimize() calls on a
 *    shared framework simulate once and hit the memo after;
 *  - evaluateBatch deduplicates a whole generation of assignments and
 *    fans the misses out over a ThreadPool with deterministic result
 *    placement — simulations are independent, so results are bit-exact
 *    across thread counts (same contract as CostEvaluator's
 *    evaluateBatch);
 *  - StepStats carries the honest accounting: a report is *simulated*
 *    exactly once, every further request for it is a cache hit.
 */
#pragma once

#include <atomic>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bounded_cache.hpp"
#include "common/budget.hpp"
#include "common/thread_pool.hpp"
#include "sim/trainer_sim.hpp"

namespace temp::eval {

/// Full-step simulation counters. sims + cache_hits equals the queries
/// issued through the evaluator.
struct StepStats
{
    long sims = 0;        ///< unique full-step simulations run
    long cache_hits = 0;  ///< queries served from the memo
    /**
     * Collective-schedule accounting inside the simulations this
     * evaluator handled (lowerings vs. net::ScheduleCache hits). A
     * memo-served report charges its schedule work as hits, mirroring
     * the CostEvaluator convention.
     */
    long schedule_lowerings = 0;
    long schedule_cache_hits = 0;
    /// Entries dropped to honour a budget across the layers a step
    /// query touches: the report memo plus the simulator's layout
    /// cache (0 under the default unbounded budgets; evicted genomes
    /// re-simulate and recount as sims on return).
    long evictions = 0;

    StepStats operator-(const StepStats &other) const
    {
        return {sims - other.sims, cache_hits - other.cache_hits,
                schedule_lowerings - other.schedule_lowerings,
                schedule_cache_hits - other.schedule_cache_hits,
                evictions - other.evictions};
    }
};

/// Cache key of one per-op assignment under a graph fingerprint.
std::string stepKey(std::uint64_t graph_fp,
                    const std::vector<parallel::ParallelSpec> &specs);

/**
 * Memoizing, batch-parallel front end over TrainingSimulator::simulate.
 * Thread-safe; one instance can be shared by every search phase (GA
 * fitness, annealing proposals, uniform seeding, the final report) and
 * across repeated solves on a long-lived framework.
 */
class StepEvaluator
{
  public:
    /**
     * @param simulator The full-step simulator to wrap.
     * @param pool Optional pool for evaluateBatch (nullptr = serial).
     */
    explicit StepEvaluator(const sim::TrainingSimulator &simulator,
                           ThreadPool *pool = nullptr);

    /**
     * Simulates (or serves from the memo) one per-op assignment.
     * @param gauge Optional solve-budget meter; charged one quantum per
     *        query (memo-served or not, so warm and cold solves charge
     *        identically). The evaluator never *checks* the gauge —
     *        budget decisions belong to the callers, which observe it
     *        only between queries/batches so results stay bit-exact.
     */
    sim::PerfReport evaluate(
        const model::ComputeGraph &graph,
        const std::vector<parallel::ParallelSpec> &per_op_specs,
        common::BudgetGauge *gauge = nullptr);

    /// Uniform-spec convenience overload; keyed as the broadcast
    /// assignment, so it shares entries with per-op callers.
    sim::PerfReport evaluate(const model::ComputeGraph &graph,
                             const parallel::ParallelSpec &spec,
                             common::BudgetGauge *gauge = nullptr);

    /**
     * Evaluates a batch of assignments; result[i] always corresponds to
     * assignments[i] regardless of thread count. Duplicate assignments
     * within one batch simulate once (the rest are hits), and cached
     * assignments are served without re-simulation.
     *
     * A batch is atomic with respect to solve budgets: @p gauge is
     * charged one quantum per assignment after the whole batch
     * completes, and never consulted mid-batch.
     */
    std::vector<sim::PerfReport> evaluateBatch(
        const model::ComputeGraph &graph,
        const std::vector<std::vector<parallel::ParallelSpec>>
            &assignments,
        common::BudgetGauge *gauge = nullptr);

    /// Cumulative counters since construction.
    StepStats stats() const;

    /// Entry budget of the report memo (0 = unbounded). Eviction
    /// never changes reported values — a dropped genome re-simulates
    /// bit-identically and recounts as a sim.
    void setMaxEntries(long max_entries)
    {
        cache_.setCapacity(max_entries);
    }

    /// Byte budget of the report memo (0 = unbounded); entries carry
    /// an honest estimate including the strategy_desc heap payload.
    void setMaxBytes(long max_bytes) { cache_.setMaxBytes(max_bytes); }

    /// Governance counters for CacheStatsRequest reporting.
    common::CacheStats cacheStats() const { return cache_.stats(); }

    /// Visits every resident (key, report) pair — the persist layer's
    /// export hook (keys are stepKey() content keys).
    template <typename Fn>
    void forEachCached(Fn &&fn) const
    {
        cache_.forEach(std::forward<Fn>(fn));
    }

    /// Seeds the memo with one persisted report (warm start); the
    /// resident value wins, and imports touch no honest counter.
    void importCached(const std::string &key,
                      const sim::PerfReport &report)
    {
        cache_.insert(key, report);
    }

    const sim::TrainingSimulator &simulator() const { return sim_; }

  private:
    const sim::TrainingSimulator &sim_;
    ThreadPool *pool_;
    common::BoundedCache<std::string, sim::PerfReport> cache_;
    std::atomic<long> sims_{0};
    std::atomic<long> cache_hits_{0};
    std::atomic<long> schedule_lowerings_{0};
    std::atomic<long> schedule_cache_hits_{0};
};

}  // namespace temp::eval
