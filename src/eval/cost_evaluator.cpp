#include "eval/cost_evaluator.hpp"

#include <algorithm>

namespace temp::eval {

using parallel::GroupLayout;
using parallel::ParallelSpec;

namespace {

std::uint64_t
fnv1a(std::uint64_t hash, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        hash ^= (value >> (8 * i)) & 0xff;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

std::uint64_t
fnv1a(std::uint64_t hash, const std::string &text)
{
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

}  // namespace

void
markScheduleServed(cost::OpCostBreakdown &breakdown)
{
    breakdown.schedule_cache_hits += breakdown.schedule_lowerings;
    breakdown.schedule_lowerings = 0;
}

void
appendSpecKey(std::string &key, const ParallelSpec &spec)
{
    key += std::to_string(spec.dp);
    key += ',';
    key += std::to_string(spec.fsdp);
    key += ',';
    key += std::to_string(spec.tp);
    key += ',';
    key += std::to_string(spec.sp);
    key += ',';
    key += std::to_string(spec.cp);
    key += ',';
    key += std::to_string(spec.tatp);
    key += ',';
    key += std::to_string(spec.pp);
    key += spec.coupled_sp ? ",c" : ",n";
}

std::uint64_t
graphFingerprint(const model::ComputeGraph &graph)
{
    const model::ModelConfig &cfg = graph.config();
    std::uint64_t hash = 0xcbf29ce484222325ull;
    hash = fnv1a(hash, cfg.name);
    hash = fnv1a(hash, static_cast<std::uint64_t>(cfg.heads));
    hash = fnv1a(hash, static_cast<std::uint64_t>(cfg.batch));
    hash = fnv1a(hash, static_cast<std::uint64_t>(cfg.hidden));
    hash = fnv1a(hash, static_cast<std::uint64_t>(cfg.layers));
    hash = fnv1a(hash, static_cast<std::uint64_t>(cfg.seq));
    hash = fnv1a(hash, static_cast<std::uint64_t>(cfg.ffn_mult));
    hash = fnv1a(hash, static_cast<std::uint64_t>(cfg.vocab));
    hash = fnv1a(hash, static_cast<std::uint64_t>(graph.opCount()));
    hash = fnv1a(hash, static_cast<std::uint64_t>(graph.layerCount()));
    return hash;
}

std::string
evalKey(std::uint64_t graph_fp, const EvalRequest &request)
{
    std::string key = std::to_string(graph_fp);
    key += '|';
    key += std::to_string(request.op_id);
    key += '|';
    appendSpecKey(key, request.spec);
    key += request.include_step ? "|s" : "|m";
    return key;
}

std::string
layoutKey(std::uint64_t graph_fp, const ParallelSpec &spec)
{
    std::string key = std::to_string(graph_fp);
    key += '|';
    appendSpecKey(key, spec);
    return key;
}

// ---------------------------------------------------------------------
// LayoutCache
// ---------------------------------------------------------------------

LayoutCache::LayoutCache(const cost::WaferCostModel &model) : model_(model)
{
    // Honest byte estimate: the default sizeof(shared_ptr) would make
    // a layout byte budget meaningless.
    cache_.setByteEstimate(
        [](const std::string &key,
           const std::shared_ptr<const GroupLayout> &layout) {
            long bytes = common::cacheByteEstimate(key) +
                         static_cast<long>(sizeof(layout));
            if (layout != nullptr)
                bytes += layout->byteEstimate();
            return bytes;
        });
}

std::shared_ptr<const GroupLayout>
LayoutCache::layoutFor(const model::ComputeGraph &graph,
                       const ParallelSpec &spec)
{
    const std::string key = layoutKey(graphFingerprint(graph), spec);
    if (auto cached = cache_.get(key)) {
        ++hits_;
        return *cached;
    }
    // Build outside the cache lock (construction dominates); on a
    // concurrent duplicate build, the first insert wins so callers
    // share one instance.
    auto layout =
        std::make_shared<const GroupLayout>(model_.buildLayout(graph, spec));
    auto [resident, inserted] = cache_.insert(key, std::move(layout));
    if (inserted)
        ++builds_;
    else
        ++hits_;
    return resident;
}

namespace {

/**
 * The shared dedup machinery of the batched evaluators: each distinct
 * key gets one slot; every request maps to a slot. With `dedup` off
 * (non-memoizing backends, where served-from-memo accounting would be
 * a lie) every request is its own slot.
 */
struct BatchPlan
{
    std::vector<std::string> distinct_keys;
    /// Index of the first request referencing each slot.
    std::vector<std::size_t> distinct_request;
    std::vector<std::size_t> request_slot;

    BatchPlan(std::uint64_t graph_fp,
              const std::vector<EvalRequest> &requests, bool dedup)
    {
        request_slot.resize(requests.size());
        if (!dedup) {
            distinct_keys.resize(requests.size());
            distinct_request.resize(requests.size());
            for (std::size_t i = 0; i < requests.size(); ++i) {
                distinct_request[i] = i;
                request_slot[i] = i;
            }
            return;
        }
        std::unordered_map<std::string, std::size_t> slot_of;
        for (std::size_t i = 0; i < requests.size(); ++i) {
            std::string key = evalKey(graph_fp, requests[i]);
            auto [it, inserted] =
                slot_of.emplace(std::move(key), distinct_keys.size());
            if (inserted) {
                distinct_keys.push_back(it->first);
                distinct_request.push_back(i);
            }
            request_slot[i] = it->second;
        }
    }

    /**
     * Expands slot values into request order, counting a hit for every
     * request beyond the first reference of an uncached slot (and for
     * every reference of a pre-cached one). Served results get their
     * schedule accounting rewritten to hits; the schedule aggregates
     * accumulate one charge per request.
     */
    long
    assemble(const std::vector<cost::OpCostBreakdown> &slot_value,
             std::vector<bool> &slot_cached,
             std::vector<cost::OpCostBreakdown> &results,
             long &sched_lowerings, long &sched_hits) const
    {
        long hits = 0;
        for (std::size_t i = 0; i < request_slot.size(); ++i) {
            const std::size_t s = request_slot[i];
            results[i] = slot_value[s];
            if (slot_cached[s]) {
                ++hits;
                markScheduleServed(results[i]);
                sched_hits += results[i].schedule_cache_hits;
            } else {
                slot_cached[s] = true;  // first reference measured it
                sched_lowerings += results[i].schedule_lowerings;
                sched_hits += results[i].schedule_cache_hits;
            }
        }
        return hits;
    }
};

}  // namespace

// ---------------------------------------------------------------------
// CostEvaluator default batch
// ---------------------------------------------------------------------

std::vector<cost::OpCostBreakdown>
CostEvaluator::evaluateBatch(const model::ComputeGraph &graph,
                             const std::vector<EvalRequest> &requests,
                             common::BudgetGauge *gauge)
{
    std::vector<cost::OpCostBreakdown> results(requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i)
        results[i] = evaluate(graph, requests[i]);
    // Matrix batches are atomic and charge no quanta; polling the
    // gauge after the batch latches a wall/token expiry at this
    // quantum boundary (see the interface contract).
    if (gauge != nullptr)
        gauge->exhausted();
    return results;
}

// ---------------------------------------------------------------------
// ExactEvaluator
// ---------------------------------------------------------------------

ExactEvaluator::ExactEvaluator(const cost::WaferCostModel &model,
                               ThreadPool *pool, bool memoize_breakdowns)
    : model_(model), pool_(pool), memoize_(memoize_breakdowns),
      layouts_(model)
{
}

cost::OpCostBreakdown
ExactEvaluator::compute(const model::ComputeGraph &graph,
                        const EvalRequest &request)
{
    const std::shared_ptr<const GroupLayout> layout =
        layouts_.layoutFor(graph, request.spec);
    return model_.opCost(graph.op(request.op_id), *layout,
                         request.include_step);
}

cost::OpCostBreakdown
ExactEvaluator::evaluate(const model::ComputeGraph &graph,
                         const EvalRequest &request)
{
    if (!memoize_) {
        ++measurements_;
        const cost::OpCostBreakdown breakdown = compute(graph, request);
        schedule_lowerings_ += breakdown.schedule_lowerings;
        schedule_cache_hits_ += breakdown.schedule_cache_hits;
        return breakdown;
    }
    const std::string key = evalKey(graphFingerprint(graph), request);
    if (auto cached = cache_.get(key)) {
        ++cache_hits_;
        cost::OpCostBreakdown served = *cached;
        markScheduleServed(served);
        schedule_cache_hits_ += served.schedule_cache_hits;
        return served;
    }
    const cost::OpCostBreakdown breakdown = compute(graph, request);
    auto [resident, inserted] = cache_.insert(key, breakdown);
    if (inserted) {
        ++measurements_;
        schedule_lowerings_ += breakdown.schedule_lowerings;
        schedule_cache_hits_ += breakdown.schedule_cache_hits;
        return resident;
    }
    ++cache_hits_;
    cost::OpCostBreakdown served = resident;
    markScheduleServed(served);
    schedule_cache_hits_ += served.schedule_cache_hits;
    return served;
}

std::vector<cost::OpCostBreakdown>
ExactEvaluator::evaluateBatch(const model::ComputeGraph &graph,
                              const std::vector<EvalRequest> &requests,
                              common::BudgetGauge *gauge)
{
    std::vector<cost::OpCostBreakdown> results(requests.size());
    if (requests.empty())
        return results;
    const std::uint64_t graph_fp = graphFingerprint(graph);
    // Without the memo there is nothing to serve duplicates from, so
    // every request is its own slot and no hit is ever reported.
    const BatchPlan plan(graph_fp, requests, /*dedup=*/memoize_);
    const std::size_t n_slots = plan.distinct_request.size();

    // Serve cached slots; collect the misses.
    std::vector<cost::OpCostBreakdown> slot_value(n_slots);
    std::vector<bool> slot_cached(n_slots, false);
    std::vector<std::size_t> missing;
    if (memoize_) {
        for (std::size_t s = 0; s < n_slots; ++s) {
            if (auto cached = cache_.get(plan.distinct_keys[s])) {
                slot_value[s] = *cached;
                slot_cached[s] = true;
            } else {
                missing.push_back(s);
            }
        }
    } else {
        for (std::size_t s = 0; s < n_slots; ++s)
            missing.push_back(s);
    }
    auto slot_request = [&](std::size_t s) -> const EvalRequest & {
        return requests[plan.distinct_request[s]];
    };

    // Phase 1: build the missing specs' layouts, one task per distinct
    // spec, keeping the shared_ptr at hand so phase 2 reads it without
    // re-keying or touching the cache mutex per cell.
    std::unordered_map<std::string, std::size_t> spec_slot;
    std::vector<const ParallelSpec *> spec_list;
    std::vector<std::size_t> missing_spec(missing.size());
    for (std::size_t m = 0; m < missing.size(); ++m) {
        const ParallelSpec &spec = slot_request(missing[m]).spec;
        std::string key = layoutKey(graph_fp, spec);
        auto [it, inserted] =
            spec_slot.emplace(std::move(key), spec_list.size());
        if (inserted)
            spec_list.push_back(&spec);
        missing_spec[m] = it->second;
    }
    std::vector<std::shared_ptr<const GroupLayout>> layout_list(
        spec_list.size());
    auto build_layout = [&](std::size_t i) {
        layout_list[i] = layouts_.layoutFor(graph, *spec_list[i]);
    };
    if (pool_ != nullptr)
        pool_->parallelFor(spec_list.size(), build_layout);
    else
        for (std::size_t i = 0; i < spec_list.size(); ++i)
            build_layout(i);

    // Phase 2: compute the missing breakdowns in parallel. Each cell is
    // independent, so values are bit-exact for any thread count.
    auto compute_missing = [&](std::size_t m) {
        const EvalRequest &request = slot_request(missing[m]);
        slot_value[missing[m]] =
            model_.opCost(graph.op(request.op_id),
                          *layout_list[missing_spec[m]],
                          request.include_step);
    };
    if (pool_ != nullptr)
        pool_->parallelFor(missing.size(), compute_missing);
    else
        for (std::size_t m = 0; m < missing.size(); ++m)
            compute_missing(m);
    measurements_ += static_cast<long>(missing.size());

    if (memoize_ && !missing.empty()) {
        for (std::size_t s : missing)
            cache_.insert(plan.distinct_keys[s], slot_value[s]);
    }

    long sched_lowerings = 0;
    long sched_hits = 0;
    cache_hits_ += plan.assemble(slot_value, slot_cached, results,
                                 sched_lowerings, sched_hits);
    schedule_lowerings_ += sched_lowerings;
    schedule_cache_hits_ += sched_hits;
    // Batch complete: latch any wall/token expiry at this boundary.
    if (gauge != nullptr)
        gauge->exhausted();
    return results;
}

EvalStats
ExactEvaluator::stats() const
{
    return {measurements_.load(),
            cache_hits_.load(),
            layouts_.builds(),
            layouts_.hits(),
            schedule_lowerings_.load(),
            schedule_cache_hits_.load(),
            cache_.stats().evictions + layouts_.cacheStats().evictions};
}

void
ExactEvaluator::setCacheBudget(const common::CacheBudget &budget)
{
    cache_.setCapacity(budget.max_eval_entries);
    cache_.setMaxBytes(budget.max_eval_bytes);
    layouts_.setMaxEntries(budget.max_layout_entries);
    layouts_.setMaxBytes(budget.max_layout_bytes);
}

// ---------------------------------------------------------------------
// CachingEvaluator
// ---------------------------------------------------------------------

CachingEvaluator::CachingEvaluator(CostEvaluator &inner) : inner_(inner)
{
}

cost::OpCostBreakdown
CachingEvaluator::evaluate(const model::ComputeGraph &graph,
                           const EvalRequest &request)
{
    const std::string key = evalKey(graphFingerprint(graph), request);
    if (auto cached = cache_.get(key)) {
        ++cache_hits_;
        cost::OpCostBreakdown served = *cached;
        markScheduleServed(served);
        schedule_cache_hits_ += served.schedule_cache_hits;
        return served;
    }
    const cost::OpCostBreakdown breakdown = inner_.evaluate(graph, request);
    auto [resident, inserted] = cache_.insert(key, breakdown);
    if (inserted) {
        ++measurements_;
        schedule_lowerings_ += breakdown.schedule_lowerings;
        schedule_cache_hits_ += breakdown.schedule_cache_hits;
        return resident;
    }
    ++cache_hits_;
    cost::OpCostBreakdown served = resident;
    markScheduleServed(served);
    schedule_cache_hits_ += served.schedule_cache_hits;
    return served;
}

std::vector<cost::OpCostBreakdown>
CachingEvaluator::evaluateBatch(const model::ComputeGraph &graph,
                                const std::vector<EvalRequest> &requests,
                                common::BudgetGauge *gauge)
{
    std::vector<cost::OpCostBreakdown> results(requests.size());
    if (requests.empty())
        return results;
    const std::uint64_t graph_fp = graphFingerprint(graph);
    const BatchPlan plan(graph_fp, requests, /*dedup=*/true);
    const std::size_t n_slots = plan.distinct_request.size();

    std::vector<cost::OpCostBreakdown> slot_value(n_slots);
    std::vector<bool> slot_cached(n_slots, false);
    std::vector<std::size_t> missing;
    for (std::size_t s = 0; s < n_slots; ++s) {
        if (auto cached = cache_.get(plan.distinct_keys[s])) {
            slot_value[s] = *cached;
            slot_cached[s] = true;
        } else {
            missing.push_back(s);
        }
    }

    std::vector<EvalRequest> miss_requests;
    miss_requests.reserve(missing.size());
    for (std::size_t s : missing)
        miss_requests.push_back(requests[plan.distinct_request[s]]);
    const std::vector<cost::OpCostBreakdown> computed =
        inner_.evaluateBatch(graph, miss_requests);
    for (std::size_t m = 0; m < missing.size(); ++m) {
        slot_value[missing[m]] = computed[m];
        cache_.insert(plan.distinct_keys[missing[m]], computed[m]);
    }
    measurements_ += static_cast<long>(missing.size());

    long sched_lowerings = 0;
    long sched_hits = 0;
    cache_hits_ += plan.assemble(slot_value, slot_cached, results,
                                 sched_lowerings, sched_hits);
    schedule_lowerings_ += sched_lowerings;
    schedule_cache_hits_ += sched_hits;
    if (gauge != nullptr)
        gauge->exhausted();
    return results;
}

EvalStats
CachingEvaluator::stats() const
{
    const EvalStats inner = inner_.stats();
    return {measurements_.load(),
            cache_hits_.load(),
            inner.layouts_built,
            inner.layout_hits,
            schedule_lowerings_.load(),
            schedule_cache_hits_.load(),
            cache_.stats().evictions + inner.evictions};
}

}  // namespace temp::eval
