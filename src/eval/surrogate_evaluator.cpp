#include "eval/surrogate_evaluator.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.hpp"
#include "cost/breakdown_reduce.hpp"

namespace temp::eval {

using parallel::ParallelSpec;

OpCostSurrogate::OpCostSurrogate(std::uint64_t seed) : dnn_(seed)
{
    dnn_.epochs = epochs;
}

std::vector<double>
OpCostSurrogate::features(const model::Operator &op,
                          const ParallelSpec &spec)
{
    auto lg = [](double v) { return std::log2(std::max(1.0, v)); };
    return {
        lg(op.b),
        lg(op.m),
        lg(op.n),
        lg(op.k),
        op.isGemm() ? 1.0 : 0.0,
        op.has_weight ? 1.0 : 0.0,
        static_cast<double>(static_cast<int>(op.tp_role)),
        lg(spec.dp),
        lg(spec.fsdp),
        lg(spec.tp),
        lg(spec.sp),
        lg(spec.cp),
        lg(spec.tatp),
        lg(spec.totalDegree()),
        lg(op.forwardFlops() / spec.totalDegree()),
    };
}

void
OpCostSurrogate::fit(const std::vector<cost::CostSample> &samples)
{
    dnn_.epochs = epochs;
    dnn_.fit(samples);
}

double
OpCostSurrogate::predict(const model::Operator &op,
                         const ParallelSpec &spec) const
{
    return dnn_.predict(features(op, spec));
}

cost::FidelityReport
OpCostSurrogate::validate(const std::vector<cost::CostSample> &samples) const
{
    return cost::evaluatePredictor(dnn_, samples);
}

// ---------------------------------------------------------------------
// SurrogateEvaluator
// ---------------------------------------------------------------------

SurrogateEvaluator::SurrogateEvaluator(CostEvaluator &exact,
                                       double sample_fraction)
    : exact_(exact), sample_fraction_(sample_fraction)
{
}

SurrogateEvaluator::MatrixFill
SurrogateEvaluator::fillMatrix(const model::ComputeGraph &graph,
                               const std::vector<ParallelSpec> &candidates,
                               Rng &rng)
{
    const int n_ops = graph.opCount();
    const int n_cand = static_cast<int>(candidates.size());

    MatrixFill fill;
    fill.cost.assign(n_ops, std::vector<double>(n_cand, 0.0));

    // Sampling decisions are drawn sequentially in row-major order
    // *before* any measurement, so the rng stream (and therefore the
    // sampled set) is identical for every thread count.
    std::vector<EvalRequest> sampled;
    std::vector<std::pair<int, int>> sampled_cells;
    std::vector<std::pair<int, int>> pending;
    for (int i = 0; i < n_ops; ++i) {
        for (int s = 0; s < n_cand; ++s) {
            const bool measure =
                i == 0 || rng.bernoulli(sample_fraction_);
            if (measure) {
                sampled.push_back({i, candidates[s], true});
                sampled_cells.emplace_back(i, s);
            } else {
                pending.emplace_back(i, s);
            }
        }
    }

    const std::vector<cost::OpCostBreakdown> measured =
        exact_.evaluateBatch(graph, sampled);
    fill.sampled = static_cast<long>(sampled.size());

    std::vector<double> measured_totals(measured.size());
    cost::breakdownTotals(measured, measured_totals.data());

    std::vector<cost::CostSample> train;
    for (std::size_t k = 0; k < sampled_cells.size(); ++k) {
        const auto [i, s] = sampled_cells[k];
        const double exact = measured_totals[k];
        fill.cost[i][s] = exact;
        if (std::isfinite(exact)) {
            cost::CostSample sample;
            sample.features =
                OpCostSurrogate::features(graph.op(i), candidates[s]);
            sample.latency_s = exact;
            train.push_back(std::move(sample));
        }
    }
    if (train.empty())
        fatal("SurrogateEvaluator: no finite training samples");

    surrogate_.fit(train);
    fitted_ = true;

    // The MLP can only ever predict finite costs, so infeasibility must
    // come from measurement: a candidate with any measured-infeasible
    // cell (faults partition its routes) is suspect, and its remaining
    // cells are measured exactly instead of predicted. Degenerate
    // predictions (non-finite / non-positive) fall back the same way.
    std::vector<bool> column_suspect(n_cand, false);
    const std::uint64_t graph_fp = graphFingerprint(graph);
    for (const auto &[i, s] : sampled_cells) {
        if (std::isinf(fill.cost[i][s])) {
            column_suspect[s] = true;
            suspect_specs_.insert(layoutKey(graph_fp, candidates[s]));
        }
    }

    std::vector<std::pair<int, int>> fallback_cells;
    for (const auto &[i, s] : pending) {
        if (column_suspect[s]) {
            fallback_cells.emplace_back(i, s);
            continue;
        }
        const double predicted =
            surrogate_.predict(graph.op(i), candidates[s]);
        if (std::isfinite(predicted) && predicted > 0.0) {
            fill.cost[i][s] = predicted;
            ++fill.predicted;
        } else {
            fallback_cells.emplace_back(i, s);
        }
    }

    if (!fallback_cells.empty()) {
        std::vector<EvalRequest> requests;
        requests.reserve(fallback_cells.size());
        for (const auto &[i, s] : fallback_cells)
            requests.push_back({i, candidates[s], true});
        const std::vector<cost::OpCostBreakdown> exact =
            exact_.evaluateBatch(graph, requests);
        std::vector<double> fallback_totals(exact.size());
        cost::breakdownTotals(exact, fallback_totals.data());
        for (std::size_t k = 0; k < fallback_cells.size(); ++k) {
            const auto [i, s] = fallback_cells[k];
            fill.cost[i][s] = fallback_totals[k];
        }
        fill.exact_fallbacks +=
            static_cast<long>(fallback_cells.size());
    }
    return fill;
}

cost::OpCostBreakdown
SurrogateEvaluator::evaluate(const model::ComputeGraph &graph,
                             const EvalRequest &request)
{
    // Suspect strategies must never receive a fabricated feasible
    // breakdown — the MLP can only predict finite costs.
    if (!fitted_ ||
        suspect_specs_.count(
            layoutKey(graphFingerprint(graph), request.spec)) > 0) {
        return exact_.evaluate(graph, request);
    }
    const double predicted =
        surrogate_.predict(graph.op(request.op_id), request.spec);
    if (!std::isfinite(predicted) || predicted <= 0.0)
        return exact_.evaluate(graph, request);
    cost::OpCostBreakdown breakdown;
    breakdown.fwd_time = predicted;
    return breakdown;
}

}  // namespace temp::eval
