/**
 * @file
 * The unified cost-evaluation layer.
 *
 * Every search phase of the Dual-Level Wafer Solver — the DP matrix
 * fill, GA fitness, the exhaustive baseline and the surrogate's sampled
 * cells — reduces to the same primitive: (operator, strategy) ->
 * OpCostBreakdown. This layer owns that primitive so callers stop
 * hand-rolling buildLayout + opCost loops:
 *
 *  - ExactEvaluator wraps WaferCostModel and memoizes both GroupLayout
 *    construction (per spec) and breakdowns (per op/spec/include_step)
 *    behind hash-keyed caches; evaluateBatch fans the misses out over a
 *    ThreadPool with deterministic result placement.
 *  - CachingEvaluator is a decorator adding the same memo over *any*
 *    backend, so one cache can be shared across solver phases (DP, GA,
 *    final simulation) and future backends (learned cost models, remote
 *    evaluation) plug in under it.
 *  - SurrogateEvaluator (surrogate_evaluator.hpp) measures a sampled
 *    subset through an underlying evaluator and predicts the rest.
 *
 * Caches key on a content fingerprint of the graph (not its address),
 * so one evaluator safely serves many graphs/models.
 */
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bounded_cache.hpp"
#include "common/budget.hpp"
#include "common/thread_pool.hpp"
#include "cost/cost_model.hpp"

namespace temp::eval {

/// One (operator, strategy) evaluation request.
struct EvalRequest
{
    int op_id = 0;
    parallel::ParallelSpec spec;
    /// Include per-step gradient-sync collectives (the additive matrix
    /// wants them; the simulator merges them across the layer instead).
    bool include_step = true;
};

/// Evaluation-layer counters. Honest accounting: a breakdown is
/// *measured* exactly once; every further request for it is a cache hit.
struct EvalStats
{
    long measurements = 0;   ///< unique breakdowns computed
    long cache_hits = 0;     ///< requests served from the memo
    long layouts_built = 0;  ///< unique GroupLayout constructions
    long layout_hits = 0;    ///< layout lookups served from the memo
    /**
     * Collective-schedule accounting one layer down: lowerings run vs.
     * served from the shared net::ScheduleCache across the breakdowns
     * this evaluator handled. A breakdown served from the breakdown
     * memo charges its schedule work as hits — recomputing it would
     * have hit the schedule cache on every lookup.
     */
    long schedule_lowerings = 0;
    long schedule_cache_hits = 0;
    /**
     * Entries the evaluator's own memos (breakdowns + layouts) dropped
     * to honour a cache budget. Zero under the default unbounded
     * budgets; nonzero eviction with unchanged results is the bounded
     * mode working as designed (evicted keys recount as misses).
     */
    long evictions = 0;

    EvalStats operator-(const EvalStats &other) const
    {
        return {measurements - other.measurements,
                cache_hits - other.cache_hits,
                layouts_built - other.layouts_built,
                layout_hits - other.layout_hits,
                schedule_lowerings - other.schedule_lowerings,
                schedule_cache_hits - other.schedule_cache_hits,
                evictions - other.evictions};
    }
};

/// Content fingerprint of a graph for cache keys (FNV-1a over the model
/// configuration and graph shape).
std::uint64_t graphFingerprint(const model::ComputeGraph &graph);

/// Cache key of one request under a graph fingerprint.
std::string evalKey(std::uint64_t graph_fp, const EvalRequest &request);

/// Cache key of one spec's layout under a graph fingerprint.
std::string layoutKey(std::uint64_t graph_fp,
                      const parallel::ParallelSpec &spec);

/// Appends one spec's content encoding to a cache key (shared by the
/// matrix, layout and full-step key builders).
void appendSpecKey(std::string &key, const parallel::ParallelSpec &spec);

/**
 * Thread-safe memo of (graph, spec) -> GroupLayout for one cost model.
 * Shared by the evaluators and the training simulator so a layout is
 * built once per solve instead of once per phase (the GA alone calls
 * the simulator hundreds of times with recurring specs).
 */
class LayoutCache
{
  public:
    explicit LayoutCache(const cost::WaferCostModel &model);

    /// Returns the (possibly cached) layout of a spec for a graph.
    std::shared_ptr<const parallel::GroupLayout> layoutFor(
        const model::ComputeGraph &graph,
        const parallel::ParallelSpec &spec);

    long builds() const { return builds_.load(); }
    long hits() const { return hits_.load(); }

    /// Entry budget (0 = unbounded). Evicted layouts rebuild (and
    /// recount as builds) on return; callers hold shared_ptrs, so
    /// in-flight layouts survive their own eviction.
    void setMaxEntries(long max_entries)
    {
        cache_.setCapacity(max_entries);
    }

    /// Byte budget over the layouts' honest heap estimates
    /// (0 = unbounded).
    void setMaxBytes(long max_bytes) { cache_.setMaxBytes(max_bytes); }

    /// Governance counters for CacheStatsRequest reporting.
    common::CacheStats cacheStats() const { return cache_.stats(); }

    const cost::WaferCostModel &costModel() const { return model_; }

  private:
    const cost::WaferCostModel &model_;
    common::BoundedCache<std::string,
                         std::shared_ptr<const parallel::GroupLayout>>
        cache_;
    std::atomic<long> builds_{0};
    std::atomic<long> hits_{0};
};

/// The evaluation interface every backend implements.
class CostEvaluator
{
  public:
    virtual ~CostEvaluator() = default;

    /// Evaluates one request.
    virtual cost::OpCostBreakdown evaluate(const model::ComputeGraph &graph,
                                           const EvalRequest &request) = 0;

    /**
     * Evaluates a batch; result[i] always corresponds to requests[i]
     * regardless of thread count (deterministic ordering — cells are
     * independent, so values are bit-exact across pool sizes). The
     * default implementation is the serial loop.
     *
     * Solve-budget contract: a matrix batch is atomic — it always
     * completes (the DP needs the whole matrix, so the budgeted solve
     * path treats the fill as mandatory preamble) and charges no
     * quanta (quanta meter full-step fitness queries). The optional
     * @p gauge is polled once *after* the batch, so a wall-clock cap
     * or cancel token that expired during the fill latches at this
     * quantum boundary instead of one batch later.
     */
    virtual std::vector<cost::OpCostBreakdown> evaluateBatch(
        const model::ComputeGraph &graph,
        const std::vector<EvalRequest> &requests,
        common::BudgetGauge *gauge = nullptr);

    /// Cumulative counters (zero for stateless backends).
    virtual EvalStats stats() const { return {}; }
};

/**
 * The exact backend: WaferCostModel with memoized layouts and
 * breakdowns, parallel batch evaluation over an optional ThreadPool.
 */
class ExactEvaluator : public CostEvaluator
{
  public:
    /**
     * @param model The wafer cost model to wrap.
     * @param pool Optional pool for evaluateBatch (nullptr = serial).
     * @param memoize_breakdowns Disable when an outer CachingEvaluator
     *        already memoizes, so hits are counted exactly once.
     */
    explicit ExactEvaluator(const cost::WaferCostModel &model,
                            ThreadPool *pool = nullptr,
                            bool memoize_breakdowns = true);

    cost::OpCostBreakdown evaluate(const model::ComputeGraph &graph,
                                   const EvalRequest &request) override;

    std::vector<cost::OpCostBreakdown> evaluateBatch(
        const model::ComputeGraph &graph,
        const std::vector<EvalRequest> &requests,
        common::BudgetGauge *gauge = nullptr) override;

    EvalStats stats() const override;

    /// Applies the evaluator-level budgets: breakdown memo
    /// (max_eval_entries) and layout memo (max_layout_entries).
    void setCacheBudget(const common::CacheBudget &budget);

    /// Governance counters of the breakdown memo.
    common::CacheStats breakdownCacheStats() const
    {
        return cache_.stats();
    }

    LayoutCache &layoutCache() { return layouts_; }
    const LayoutCache &layoutCache() const { return layouts_; }
    const cost::WaferCostModel &costModel() const { return model_; }

  private:
    /// Computes one breakdown (no breakdown-memo interaction).
    cost::OpCostBreakdown compute(const model::ComputeGraph &graph,
                                  const EvalRequest &request);

    const cost::WaferCostModel &model_;
    ThreadPool *pool_;
    bool memoize_;
    LayoutCache layouts_;
    common::BoundedCache<std::string, cost::OpCostBreakdown> cache_;
    std::atomic<long> measurements_{0};
    std::atomic<long> cache_hits_{0};
    std::atomic<long> schedule_lowerings_{0};
    std::atomic<long> schedule_cache_hits_{0};
};

/**
 * Memoizing decorator over any backend. The framework shares one
 * instance across all solver phases so the DP matrix, GA fitness
 * costing and the final simulation never re-measure a cell.
 */
class CachingEvaluator : public CostEvaluator
{
  public:
    explicit CachingEvaluator(CostEvaluator &inner);

    cost::OpCostBreakdown evaluate(const model::ComputeGraph &graph,
                                   const EvalRequest &request) override;

    std::vector<cost::OpCostBreakdown> evaluateBatch(
        const model::ComputeGraph &graph,
        const std::vector<EvalRequest> &requests,
        common::BudgetGauge *gauge = nullptr) override;

    /// Own hit/measure counters plus the inner backend's layout
    /// counters.
    EvalStats stats() const override;

    /// Entry budget of the shared breakdown memo (0 = unbounded).
    void setMaxEntries(long max_entries)
    {
        cache_.setCapacity(max_entries);
    }

    /// Byte budget of the shared breakdown memo (0 = unbounded).
    void setMaxBytes(long max_bytes) { cache_.setMaxBytes(max_bytes); }

    /// Governance counters of the shared breakdown memo.
    common::CacheStats cacheStats() const { return cache_.stats(); }

    /// Visits every resident (key, breakdown) pair — the persist
    /// layer's export hook. Keys are evalKey() content keys, so the
    /// visited pairs are valid in any process with the same options.
    template <typename Fn>
    void forEachCached(Fn &&fn) const
    {
        cache_.forEach(std::forward<Fn>(fn));
    }

    /**
     * Seeds the memo with one persisted entry (warm start). A resident
     * value wins over the import, so a live memo is never overwritten;
     * imports count as neither measurements nor hits — the honest
     * counters track only what *this* process computed or served.
     */
    void importCached(const std::string &key,
                      const cost::OpCostBreakdown &breakdown)
    {
        cache_.insert(key, breakdown);
    }

    CostEvaluator &inner() { return inner_; }
    const CostEvaluator &inner() const { return inner_; }

  private:
    CostEvaluator &inner_;
    common::BoundedCache<std::string, cost::OpCostBreakdown> cache_;
    std::atomic<long> measurements_{0};
    std::atomic<long> cache_hits_{0};
    std::atomic<long> schedule_lowerings_{0};
    std::atomic<long> schedule_cache_hits_{0};
};

/**
 * Rewrites a memo-served breakdown's schedule accounting: none of its
 * lowerings re-ran, so they all count as (would-be) schedule-cache
 * hits. Keeps "repeat solves report schedule_lowerings == 0" honest
 * all the way up to SolverResult.
 */
void markScheduleServed(cost::OpCostBreakdown &breakdown);

}  // namespace temp::eval
