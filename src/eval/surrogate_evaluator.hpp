/**
 * @file
 * Surrogate-accelerated cost evaluation (Sec. VII-A + VIII-G).
 *
 * The paper trains a DNN on simulator samples and drives the DLS search
 * with surrogate lookups ("100-1000x more efficient than
 * simulation-based approaches"). OpCostSurrogate featurises an
 * (operator, strategy) pair and fits the MLP; SurrogateEvaluator plugs
 * that into the CostEvaluator layer: a sampled subset of the cost
 * matrix is measured through an underlying (usually caching) evaluator,
 * the surrogate is fitted on those cells, and the rest are predicted —
 * with exact fallback where prediction cannot apply (infeasible
 * strategies, degenerate predictions).
 */
#pragma once

#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "cost/surrogate.hpp"
#include "eval/cost_evaluator.hpp"

namespace temp::eval {

/// Learns the per-(operator, strategy) cost surface from samples.
class OpCostSurrogate
{
  public:
    explicit OpCostSurrogate(std::uint64_t seed = 29);

    /**
     * Feature vector of one (operator, strategy) pair: log-scale
     * operator dimensions, operator class, and the log-degrees of every
     * parallel axis (the quantities the analytic cost is built from).
     */
    static std::vector<double> features(const model::Operator &op,
                                        const parallel::ParallelSpec &spec);

    /// Fits the MLP on measured (features -> cost seconds) samples.
    void fit(const std::vector<cost::CostSample> &samples);

    /// Predicted cost of one pair; fit() must have run.
    double predict(const model::Operator &op,
                   const parallel::ParallelSpec &spec) const;

    /// Fidelity of the fitted surrogate on held-out samples.
    cost::FidelityReport validate(
        const std::vector<cost::CostSample> &samples) const;

    /// Training epochs (smaller = faster fit; default tuned for the
    /// in-search use where the dataset is a few hundred cells).
    int epochs = 800;

  private:
    cost::DnnCostModel dnn_;
};

/**
 * The surrogate backend of the evaluation layer. fillMatrix() is the
 * batch entry the solver uses; evaluate() serves ad-hoc requests with
 * the fitted model (exact until fitted).
 */
class SurrogateEvaluator : public CostEvaluator
{
  public:
    /**
     * @param exact Underlying evaluator for measured cells (share the
     *        solver's caching evaluator so samples are never re-run).
     * @param sample_fraction Fraction of cells measured exactly, in
     *        (0, 1]. The first operator's row is always measured so
     *        every candidate appears in training.
     */
    SurrogateEvaluator(CostEvaluator &exact, double sample_fraction);

    /// Outcome of one matrix fill. Every cell is counted exactly once:
    /// sampled + predicted + exact_fallbacks == ops * candidates.
    struct MatrixFill
    {
        /// [op][candidate] total cost in seconds; +inf = infeasible.
        std::vector<std::vector<double>> cost;
        long sampled = 0;    ///< cells measured in the sampling pass
        long predicted = 0;  ///< cells filled by the fitted MLP
        /// Cells measured exactly instead of predicted: columns with a
        /// measured-infeasible cell, plus degenerate predictions.
        long exact_fallbacks = 0;
    };

    /**
     * Fills the (operator, candidate) cost matrix: measures a sampled
     * subset (deterministically drawn from `rng` in row-major order,
     * exactly one Bernoulli draw per cell outside the always-measured
     * first row), fits the surrogate, predicts the rest. The MLP only
     * ever predicts finite costs, so candidates with any
     * measured-infeasible cell are suspect (faults partition their
     * routes) and their remaining cells fall back to exact measurement
     * instead of prediction.
     */
    MatrixFill fillMatrix(const model::ComputeGraph &graph,
                          const std::vector<parallel::ParallelSpec>
                              &candidates,
                          Rng &rng);

    /// Exact until fitted; afterwards, prediction packed into
    /// fwd_time (predictions carry no per-phase split). Specs that
    /// fillMatrix saw a measured-infeasible cell for, and degenerate
    /// predictions, are evaluated exactly — a prediction can never
    /// fabricate a feasible breakdown for a suspect strategy.
    cost::OpCostBreakdown evaluate(const model::ComputeGraph &graph,
                                   const EvalRequest &request) override;

    /// Forwards the underlying evaluator's counters.
    EvalStats stats() const override { return exact_.stats(); }

    bool fitted() const { return fitted_; }

  private:
    CostEvaluator &exact_;
    double sample_fraction_;
    OpCostSurrogate surrogate_;
    bool fitted_ = false;
    /// Layout keys of strategies with a measured-infeasible cell.
    std::unordered_set<std::string> suspect_specs_;
};

}  // namespace temp::eval
