#include "eval/step_evaluator.hpp"

#include "eval/cost_evaluator.hpp"

namespace temp::eval {

using parallel::ParallelSpec;

namespace {

/// Memo-served reports charge their schedule work as hits (see
/// markScheduleServed for the breakdown-level twin).
void
markReportServed(sim::PerfReport &report)
{
    report.schedule_cache_hits += report.schedule_lowerings;
    report.schedule_lowerings = 0;
}

}  // namespace

std::string
stepKey(std::uint64_t graph_fp, const std::vector<ParallelSpec> &specs)
{
    std::string key = std::to_string(graph_fp);
    for (const ParallelSpec &spec : specs) {
        key += '|';
        appendSpecKey(key, spec);
    }
    return key;
}

StepEvaluator::StepEvaluator(const sim::TrainingSimulator &simulator,
                             ThreadPool *pool)
    : sim_(simulator), pool_(pool)
{
    // Honest byte estimate: PerfReport owns a heap string
    // (strategy_desc) the default sizeof-based estimate would miss.
    cache_.setByteEstimate(
        [](const std::string &key, const sim::PerfReport &report) {
            return common::cacheByteEstimate(key) +
                   static_cast<long>(sizeof(report) +
                                     report.strategy_desc.capacity());
        });
}

sim::PerfReport
StepEvaluator::evaluate(const model::ComputeGraph &graph,
                        const std::vector<ParallelSpec> &per_op_specs,
                        common::BudgetGauge *gauge)
{
    if (gauge != nullptr)
        gauge->charge(1);
    const std::string key =
        stepKey(graphFingerprint(graph), per_op_specs);
    if (auto cached = cache_.get(key)) {
        ++cache_hits_;
        sim::PerfReport served = *cached;
        markReportServed(served);
        schedule_cache_hits_ += served.schedule_cache_hits;
        return served;
    }
    const sim::PerfReport report = sim_.simulate(graph, per_op_specs);
    auto [resident, inserted] = cache_.insert(key, report);
    if (inserted) {
        ++sims_;
        schedule_lowerings_ += report.schedule_lowerings;
        schedule_cache_hits_ += report.schedule_cache_hits;
        return resident;
    }
    ++cache_hits_;
    sim::PerfReport served = resident;
    markReportServed(served);
    schedule_cache_hits_ += served.schedule_cache_hits;
    return served;
}

sim::PerfReport
StepEvaluator::evaluate(const model::ComputeGraph &graph,
                        const ParallelSpec &spec,
                        common::BudgetGauge *gauge)
{
    return evaluate(graph,
                    std::vector<ParallelSpec>(
                        static_cast<std::size_t>(graph.opCount()), spec),
                    gauge);
}

std::vector<sim::PerfReport>
StepEvaluator::evaluateBatch(
    const model::ComputeGraph &graph,
    const std::vector<std::vector<ParallelSpec>> &assignments,
    common::BudgetGauge *gauge)
{
    // The batch is a solve-budget quantum: charge it whole (one
    // quantum per assignment, memo-served or not) and never look at
    // the gauge mid-batch — callers check between batches, which is
    // what keeps budget-truncated runs bit-exact.
    if (gauge != nullptr)
        gauge->charge(static_cast<long>(assignments.size()));
    std::vector<sim::PerfReport> results(assignments.size());
    if (assignments.empty())
        return results;
    const std::uint64_t graph_fp = graphFingerprint(graph);

    // Dedup: one slot per distinct assignment, every request maps to a
    // slot (the same machinery as the matrix evaluators' BatchPlan).
    std::vector<std::string> slot_key;
    std::vector<std::size_t> slot_request;
    std::vector<std::size_t> request_slot(assignments.size());
    std::unordered_map<std::string, std::size_t> slot_of;
    for (std::size_t i = 0; i < assignments.size(); ++i) {
        std::string key = stepKey(graph_fp, assignments[i]);
        auto [it, inserted] =
            slot_of.emplace(std::move(key), slot_key.size());
        if (inserted) {
            slot_key.push_back(it->first);
            slot_request.push_back(i);
        }
        request_slot[i] = it->second;
    }
    const std::size_t n_slots = slot_key.size();

    // Serve cached slots; collect the misses.
    std::vector<sim::PerfReport> slot_value(n_slots);
    std::vector<bool> slot_cached(n_slots, false);
    std::vector<std::size_t> missing;
    for (std::size_t s = 0; s < n_slots; ++s) {
        if (auto cached = cache_.get(slot_key[s])) {
            slot_value[s] = *cached;
            slot_cached[s] = true;
        } else {
            missing.push_back(s);
        }
    }

    // Simulate the misses in parallel. Each simulation is independent
    // and the simulator is thread-safe (its layout memo is locked, the
    // rest is stateless), so slot s always holds the same bits for any
    // thread count.
    auto simulate_missing = [&](std::size_t m) {
        const std::size_t s = missing[m];
        slot_value[s] = sim_.simulate(graph, assignments[slot_request[s]]);
    };
    if (pool_ != nullptr)
        pool_->parallelFor(missing.size(), simulate_missing);
    else
        for (std::size_t m = 0; m < missing.size(); ++m)
            simulate_missing(m);
    sims_ += static_cast<long>(missing.size());

    for (std::size_t s : missing)
        cache_.insert(slot_key[s], slot_value[s]);

    // Expand slots into request order: every request beyond the first
    // reference of an uncached slot (and every reference of a
    // pre-cached one) is a hit, and served reports charge their
    // schedule work as hits.
    long hits = 0;
    long sched_lowerings = 0;
    long sched_hits = 0;
    for (std::size_t i = 0; i < assignments.size(); ++i) {
        const std::size_t s = request_slot[i];
        results[i] = slot_value[s];
        if (slot_cached[s]) {
            ++hits;
            markReportServed(results[i]);
            sched_hits += results[i].schedule_cache_hits;
        } else {
            slot_cached[s] = true;
            sched_lowerings += results[i].schedule_lowerings;
            sched_hits += results[i].schedule_cache_hits;
        }
    }
    cache_hits_ += hits;
    schedule_lowerings_ += sched_lowerings;
    schedule_cache_hits_ += sched_hits;
    return results;
}

StepStats
StepEvaluator::stats() const
{
    // Evictions cover the layers a step query touches: the report
    // memo plus the simulator's own layout cache (the matrix side's
    // layout cache is counted by EvalStats, not here).
    return {sims_.load(), cache_hits_.load(), schedule_lowerings_.load(),
            schedule_cache_hits_.load(),
            cache_.stats().evictions +
                sim_.layoutCache().cacheStats().evictions};
}

}  // namespace temp::eval
