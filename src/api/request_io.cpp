#include "api/request_io.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "api/serialize.hpp"
#include "common/json.hpp"
#include "core/config_io.hpp"

namespace temp::api {

namespace {

using common::JsonValue;

/// Internal control flow only; parseRequest converts it (and
/// core::ConfigError) to the (false, message) return contract.
struct ParseError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/**
 * Hostile-input allocation caps. Server-originated requests size real
 * allocations and topology builds from these fields (FaultMap's
 * per-die vector, the rows x cols mesh), so each is bounded far above
 * any plausible wafer: the paper's system is 4x8 dies, pods a handful
 * of wafers. Without the caps a one-line request
 * ({"faults":{"die_count":2000000000}}) drives a multi-GB allocation
 * during parsing.
 */
constexpr long long kMaxWaferDies = 1 << 16;
constexpr int kMaxWaferCount = 1024;
/// A timeline is replayed sequentially, one solve per event; the cap
/// keeps a one-line hostile request from queueing unbounded work.
constexpr std::size_t kMaxScenarioEvents = 4096;

[[noreturn]] void
fail(const std::string &message)
{
    throw ParseError(message);
}

double
asNumber(const JsonValue &v, const std::string &what)
{
    if (!v.isNumber())
        fail("request: " + what + " must be a number, got " +
             v.typeName());
    return v.number;
}

int
asInt(const JsonValue &v, const std::string &what)
{
    const double n = asNumber(v, what);
    if (n != std::floor(n) || n < -2147483648.0 || n > 2147483647.0)
        fail("request: " + what + " must be an integer");
    return static_cast<int>(n);
}

bool
asBool(const JsonValue &v, const std::string &what)
{
    if (!v.isBool())
        fail("request: " + what + " must be a boolean, got " +
             v.typeName());
    return v.bool_value;
}

std::string
asString(const JsonValue &v, const std::string &what)
{
    if (!v.isString())
        fail("request: " + what + " must be a string, got " +
             v.typeName());
    return v.text;
}

const JsonValue &
asObject(const JsonValue &v, const std::string &what)
{
    if (!v.isObject())
        fail("request: " + what + " must be an object, got " +
             v.typeName());
    return v;
}

/**
 * Flattens a JSON object into the string-valued ConfigMap the
 * config_io builders consume. Numbers keep their raw lexeme (so a
 * %.17g-rendered double survives the trip exactly), booleans become
 * the canonical "1"/"0", strings pass through.
 */
core::ConfigMap
configMapOf(const JsonValue &v, const std::string &what)
{
    asObject(v, what);
    core::ConfigMap config;
    for (const auto &[key, value] : v.members) {
        switch (value.type) {
        case JsonValue::Type::Number: config[key] = value.text; break;
        case JsonValue::Type::Bool:
            config[key] = value.bool_value ? "1" : "0";
            break;
        case JsonValue::Type::String: config[key] = value.text; break;
        default:
            fail("request: " + what + " key '" + key +
                 "' must be a scalar, got " + value.typeName());
        }
    }
    return config;
}

/// Inverse of toJson(WaferConfig): raw-SI field names, unknown keys
/// rejected. Starts from the Table I default like the request structs.
hw::WaferConfig
waferOf(const JsonValue &v, const std::string &what)
{
    asObject(v, what);
    hw::WaferConfig w = hw::WaferConfig::paperDefault();
    for (const auto &[key, value] : v.members) {
        const std::string name = what + " key '" + key + "'";
        if (key == "rows")
            w.rows = asInt(value, name);
        else if (key == "cols")
            w.cols = asInt(value, name);
        else if (key == "die_area_mm2")
            w.die.area_mm2 = asNumber(value, name);
        else if (key == "die_sram_bytes")
            w.die.sram_bytes = asNumber(value, name);
        else if (key == "die_frequency_hz")
            w.die.frequency_hz = asNumber(value, name);
        else if (key == "die_peak_flops")
            w.die.peak_flops = asNumber(value, name);
        else if (key == "die_flops_per_watt")
            w.die.flops_per_watt = asNumber(value, name);
        else if (key == "hbm_area_mm2")
            w.hbm.area_mm2 = asNumber(value, name);
        else if (key == "hbm_stacks_per_die")
            w.hbm.stacks_per_die = asInt(value, name);
        else if (key == "hbm_capacity_bytes")
            w.hbm.capacity_bytes = asNumber(value, name);
        else if (key == "hbm_bandwidth_bytes_per_s")
            w.hbm.bandwidth_bytes_per_s = asNumber(value, name);
        else if (key == "hbm_latency_s")
            w.hbm.latency_s = asNumber(value, name);
        else if (key == "hbm_energy_pj_per_bit")
            w.hbm.energy_pj_per_bit = asNumber(value, name);
        else if (key == "d2d_bandwidth_bytes_per_s")
            w.d2d.bandwidth_bytes_per_s = asNumber(value, name);
        else if (key == "d2d_latency_s")
            w.d2d.latency_s = asNumber(value, name);
        else if (key == "d2d_energy_pj_per_bit")
            w.d2d.energy_pj_per_bit = asNumber(value, name);
        else if (key == "d2d_efficient_transfer_bytes")
            w.d2d.efficient_transfer_bytes = asNumber(value, name);
        else
            fail("request: unknown " + what + " key '" + key + "'");
    }
    if (w.rows < 1 || w.cols < 1)
        fail("request: " + what + " grid must be at least 1x1");
    if (static_cast<long long>(w.rows) * w.cols > kMaxWaferDies)
        fail("request: " + what + " grid exceeds " +
             std::to_string(kMaxWaferDies) + " dies");
    return w;
}

parallel::ParallelSpec
specOf(const JsonValue &v, const std::string &what)
{
    asObject(v, what);
    parallel::ParallelSpec spec;
    for (const auto &[key, value] : v.members) {
        const std::string name = what + " key '" + key + "'";
        if (key == "dp")
            spec.dp = asInt(value, name);
        else if (key == "fsdp")
            spec.fsdp = asInt(value, name);
        else if (key == "tp")
            spec.tp = asInt(value, name);
        else if (key == "sp")
            spec.sp = asInt(value, name);
        else if (key == "cp")
            spec.cp = asInt(value, name);
        else if (key == "tatp")
            spec.tatp = asInt(value, name);
        else if (key == "pp")
            spec.pp = asInt(value, name);
        else if (key == "coupled_sp")
            spec.coupled_sp = asBool(value, name);
        else
            fail("request: unknown " + what + " key '" + key + "'");
    }
    return spec;
}

hw::FaultMap
faultsOf(const JsonValue &v)
{
    asObject(v, "faults");
    int die_count = 0;
    const JsonValue *links = nullptr;
    const JsonValue *fractions = nullptr;
    for (const auto &[key, value] : v.members) {
        if (key == "die_count")
            die_count = asInt(value, "faults.die_count");
        else if (key == "failed_links")
            links = &value;
        else if (key == "core_fault_fractions")
            fractions = &value;
        else
            fail("request: unknown faults key '" + key + "'");
    }
    if (die_count < 0)
        fail("request: faults.die_count must be >= 0");
    if (die_count > kMaxWaferDies)
        fail("request: faults.die_count exceeds " +
             std::to_string(kMaxWaferDies) + " dies");
    hw::FaultMap faults(die_count, 0);
    if (links != nullptr) {
        if (!links->isArray())
            fail("request: faults.failed_links must be an array");
        for (const JsonValue &link : links->items) {
            const int id = asInt(link, "faults.failed_links entry");
            if (id < 0)
                fail("request: faults.failed_links entries must be "
                     ">= 0");
            faults.failLink(id);
        }
    }
    if (fractions != nullptr) {
        if (!fractions->isArray())
            fail("request: faults.core_fault_fractions must be an "
                 "array");
        if (static_cast<int>(fractions->items.size()) != die_count)
            fail("request: faults.core_fault_fractions must have "
                 "die_count entries");
        for (std::size_t i = 0; i < fractions->items.size(); ++i)
            faults.setCoreFaultFraction(
                static_cast<int>(i),
                asNumber(fractions->items[i],
                         "faults.core_fault_fractions entry"));
    }
    return faults;
}

hw::MultiWaferConfig
podOf(const JsonValue &v)
{
    asObject(v, "pod");
    hw::MultiWaferConfig pod;
    for (const auto &[key, value] : v.members) {
        const std::string name = "pod key '" + key + "'";
        if (key == "wafer")
            pod.wafer = waferOf(value, "pod.wafer");
        else if (key == "wafer_count")
            pod.wafer_count = asInt(value, name);
        else if (key == "inter_wafer_bandwidth_bytes_per_s")
            pod.inter_wafer_bandwidth_bytes_per_s =
                asNumber(value, name);
        else if (key == "inter_wafer_latency_s")
            pod.inter_wafer_latency_s = asNumber(value, name);
        else
            fail("request: unknown pod key '" + key + "'");
    }
    if (pod.wafer_count > kMaxWaferCount)
        fail("request: pod.wafer_count exceeds " +
             std::to_string(kMaxWaferCount));
    return pod;
}

/// Seeds are uint64 and must not round through double: the raw decimal
/// lexeme is re-parsed with strtoull.
std::uint64_t
seedOf(const JsonValue &v, const std::string &what)
{
    if (!v.isNumber())
        fail("request: " + what + " must be a number, got " +
             v.typeName());
    for (const char c : v.text)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            fail("request: " + what +
                 " must be a non-negative integer, got '" + v.text +
                 "'");
    if (v.text.empty() || v.text.size() > 20)
        fail("request: " + what + " out of uint64 range");
    return std::strtoull(v.text.c_str(), nullptr, 10);
}

/**
 * Timeline events: an array of {"type": ..., payload} objects. Unknown
 * event types and unknown keys are rejected like every other request
 * field — a misspelled event must not silently replay as a no-op.
 */
std::vector<scenario::Event>
eventsOf(const JsonValue &v)
{
    if (!v.isArray())
        fail("request: events must be an array, got " +
             std::string(v.typeName()));
    if (v.items.size() > kMaxScenarioEvents)
        fail("request: events exceeds " +
             std::to_string(kMaxScenarioEvents) + " entries");
    std::vector<scenario::Event> events;
    events.reserve(v.items.size());
    for (std::size_t i = 0; i < v.items.size(); ++i) {
        const std::string what = "events[" + std::to_string(i) + "]";
        const JsonValue &entry = asObject(v.items[i], what);
        scenario::Event event;
        bool have_type = false;
        bool have_fault_payload = false;
        const JsonValue *model = nullptr;
        for (const auto &[key, value] : entry.members) {
            const std::string name = what + " key '" + key + "'";
            if (key == "type") {
                const std::string type = asString(value, name);
                if (!scenario::eventKindFromName(type, &event.kind))
                    fail("request: unknown " + what + " type '" +
                         type +
                         "' (use set_faults/clear_faults/"
                         "model_switch/reoptimize/wafer_join/"
                         "wafer_leave)");
                have_type = true;
            } else if (key == "at_s") {
                event.at_s = asNumber(value, name);
            } else if (key == "link_fault_rate") {
                event.link_fault_rate = asNumber(value, name);
                have_fault_payload = true;
            } else if (key == "core_fault_rate") {
                event.core_fault_rate = asNumber(value, name);
                have_fault_payload = true;
            } else if (key == "fault_seed") {
                event.fault_seed = seedOf(value, name);
                have_fault_payload = true;
            } else if (key == "kill_dies") {
                if (!value.isArray())
                    fail("request: " + name + " must be an array, "
                         "got " + std::string(value.typeName()));
                if (value.items.size() >
                    static_cast<std::size_t>(kMaxWaferDies))
                    fail("request: " + name + " exceeds " +
                         std::to_string(kMaxWaferDies) + " dies");
                for (std::size_t k = 0; k < value.items.size(); ++k) {
                    const int die = asInt(
                        value.items[k],
                        name + "[" + std::to_string(k) + "]");
                    if (die < 0)
                        fail("request: " + name + " entries must be "
                             ">= 0");
                    event.kill_dies.push_back(die);
                }
                have_fault_payload = true;
            } else if (key == "model") {
                model = &value;
            } else {
                fail("request: unknown " + what + " key '" + key +
                     "'");
            }
        }
        if (!have_type)
            fail("request: " + what + " is missing 'type'");
        // Payload fields are per-type: accepting a fault draw on a
        // reoptimize (or a model on a wafer_join) would parse into a
        // request whose canonical key and re-serialization disagree
        // with what the client sent.
        if (have_fault_payload &&
            event.kind != scenario::Event::Kind::SetFaults)
            fail("request: " + what +
                 " carries a fault payload but is not a set_faults");
        if (event.kind == scenario::Event::Kind::ModelSwitch) {
            if (model == nullptr)
                fail("request: " + what +
                     " (model_switch) requires 'model'");
            event.model = core::modelFromConfigOrThrow(
                configMapOf(*model, what + ".model"));
        } else if (model != nullptr) {
            fail("request: " + what +
                 " carries 'model' but is not a model_switch");
        }
        events.push_back(std::move(event));
    }
    return events;
}

baselines::BaselineKind
baselineKindOf(const JsonValue &v)
{
    const std::string name = asString(v, "baseline_kind");
    if (name == "mega")
        return baselines::BaselineKind::Megatron1;
    if (name == "mesp")
        return baselines::BaselineKind::MegatronSP;
    if (name == "fsdp")
        return baselines::BaselineKind::Fsdp;
    fail("request: unknown baseline_kind '" + name +
         "' (use mega/mesp/fsdp)");
}

tcme::MappingEngineKind
mappingEngineOf(const JsonValue &v)
{
    const std::string name = asString(v, "mapping_engine");
    if (name == "smap")
        return tcme::MappingEngineKind::SMap;
    if (name == "gmap")
        return tcme::MappingEngineKind::GMap;
    if (name == "tcme")
        return tcme::MappingEngineKind::TCME;
    fail("request: unknown mapping_engine '" + name +
         "' (use smap/gmap/tcme)");
}

const char *
policyName(tcme::MappingEngineKind kind)
{
    switch (kind) {
    case tcme::MappingEngineKind::SMap: return "smap";
    case tcme::MappingEngineKind::GMap: return "gmap";
    case tcme::MappingEngineKind::TCME: return "tcme";
    }
    return "?";
}

const char *
baselineWireName(baselines::BaselineKind kind)
{
    switch (kind) {
    case baselines::BaselineKind::Megatron1: return "mega";
    case baselines::BaselineKind::MegatronSP: return "mesp";
    case baselines::BaselineKind::Fsdp: return "fsdp";
    }
    return "?";
}

std::string
specJson(const parallel::ParallelSpec &spec)
{
    return JsonObject()
        .add("dp", spec.dp)
        .add("fsdp", spec.fsdp)
        .add("tp", spec.tp)
        .add("sp", spec.sp)
        .add("cp", spec.cp)
        .add("tatp", spec.tatp)
        .add("pp", spec.pp)
        .add("coupled_sp", spec.coupled_sp)
        .str();
}

/**
 * One envelope walker shared by every kind: the caller passes a
 * handler for its kind-specific keys (returning false = key unknown);
 * `kind` and `tenant` are always accepted, everything else unknown is
 * rejected with the kind in the message.
 */
template <typename Handler>
void
walkEnvelope(const JsonValue &root, const std::string &kind,
             std::string *tenant, Handler &&handler)
{
    for (const auto &[key, value] : root.members) {
        if (key == "kind")
            continue;
        if (key == "tenant") {
            *tenant = asString(value, "tenant");
            continue;
        }
        if (!handler(key, value))
            fail("request: unknown key '" + key + "' for kind '" +
                 kind + "'");
    }
}

model::ModelConfig
requireModel(const JsonValue *model, const std::string &kind)
{
    if (model == nullptr)
        fail("request: 'model' is required for kind '" + kind + "'");
    return core::modelFromConfigOrThrow(
        configMapOf(*model, "model"));
}

}  // namespace

bool
parseRequest(const std::string &json_text, ParsedRequest *out,
             std::string *error)
{
    try {
        JsonValue root;
        std::string parse_error;
        if (!common::parseJson(json_text, &root, &parse_error))
            fail("request: " + parse_error);
        if (!root.isObject())
            fail("request: document must be an object, got " +
                 std::string(root.typeName()));
        const JsonValue *kind_value = root.find("kind");
        if (kind_value == nullptr)
            fail("request: 'kind' is required");
        const std::string kind = asString(*kind_value, "kind");

        std::string tenant;
        if (kind == "optimize") {
            OptimizeRequest request;
            const JsonValue *model = nullptr;
            walkEnvelope(root, kind, &tenant,
                         [&](const std::string &key,
                             const JsonValue &value) {
                             if (key == "model") {
                                 model = &value;
                             } else if (key == "wafer") {
                                 request.wafer =
                                     waferOf(value, "wafer");
                             } else if (key == "options") {
                                 request.options =
                                     core::
                                         frameworkOptionsFromConfigOrThrow(
                                             configMapOf(value,
                                                         "options"));
                             } else {
                                 return false;
                             }
                             return true;
                         });
            request.model = requireModel(model, kind);
            out->request = std::move(request);
        } else if (kind == "baseline") {
            BaselineRequest request;
            const JsonValue *model = nullptr;
            walkEnvelope(root, kind, &tenant,
                         [&](const std::string &key,
                             const JsonValue &value) {
                             if (key == "model") {
                                 model = &value;
                             } else if (key == "wafer") {
                                 request.wafer =
                                     waferOf(value, "wafer");
                             } else if (key == "options") {
                                 request.options =
                                     core::
                                         frameworkOptionsFromConfigOrThrow(
                                             configMapOf(value,
                                                         "options"));
                             } else if (key == "baseline_kind") {
                                 request.kind = baselineKindOf(value);
                             } else if (key == "mapping_engine") {
                                 request.engine =
                                     mappingEngineOf(value);
                             } else {
                                 return false;
                             }
                             return true;
                         });
            request.model = requireModel(model, kind);
            out->request = std::move(request);
        } else if (kind == "strategy") {
            StrategyRequest request;
            const JsonValue *model = nullptr;
            walkEnvelope(root, kind, &tenant,
                         [&](const std::string &key,
                             const JsonValue &value) {
                             if (key == "model") {
                                 model = &value;
                             } else if (key == "wafer") {
                                 request.wafer =
                                     waferOf(value, "wafer");
                             } else if (key == "options") {
                                 request.options =
                                     core::
                                         frameworkOptionsFromConfigOrThrow(
                                             configMapOf(value,
                                                         "options"));
                             } else if (key == "spec") {
                                 request.spec = specOf(value, "spec");
                             } else {
                                 return false;
                             }
                             return true;
                         });
            request.model = requireModel(model, kind);
            out->request = std::move(request);
        } else if (kind == "fault") {
            FaultRequest request;
            const JsonValue *model = nullptr;
            walkEnvelope(
                root, kind, &tenant,
                [&](const std::string &key, const JsonValue &value) {
                    if (key == "model") {
                        model = &value;
                    } else if (key == "wafer") {
                        request.wafer = waferOf(value, "wafer");
                    } else if (key == "options") {
                        request.options =
                            core::frameworkOptionsFromConfigOrThrow(
                                configMapOf(value, "options"));
                    } else if (key == "link_fault_rate") {
                        request.link_fault_rate =
                            asNumber(value, "link_fault_rate");
                    } else if (key == "core_fault_rate") {
                        request.core_fault_rate =
                            asNumber(value, "core_fault_rate");
                    } else if (key == "fault_seed") {
                        request.fault_seed =
                            seedOf(value, "fault_seed");
                    } else if (key == "faults") {
                        request.faults = faultsOf(value);
                    } else {
                        return false;
                    }
                    return true;
                });
            request.model = requireModel(model, kind);
            out->request = std::move(request);
        } else if (kind == "multiwafer") {
            MultiWaferRequest request;
            const JsonValue *model = nullptr;
            walkEnvelope(
                root, kind, &tenant,
                [&](const std::string &key, const JsonValue &value) {
                    if (key == "model") {
                        model = &value;
                    } else if (key == "pod") {
                        request.pod = podOf(value);
                    } else if (key == "options") {
                        request.options =
                            core::frameworkOptionsFromConfigOrThrow(
                                configMapOf(value, "options"));
                    } else if (key == "pp") {
                        request.pp = asInt(value, "pp");
                    } else if (key == "microbatches") {
                        request.microbatches =
                            asInt(value, "microbatches");
                    } else if (key == "intra_spec") {
                        request.intra_spec =
                            specOf(value, "intra_spec");
                    } else {
                        return false;
                    }
                    return true;
                });
            request.model = requireModel(model, kind);
            out->request = std::move(request);
        } else if (kind == "cache-stats") {
            walkEnvelope(root, kind, &tenant,
                         [&](const std::string &,
                             const JsonValue &) { return false; });
            out->request = CacheStatsRequest{};
        } else if (kind == "scenario") {
            ScenarioRequest request;
            const JsonValue *model = nullptr;
            bool have_events = false;
            walkEnvelope(
                root, kind, &tenant,
                [&](const std::string &key, const JsonValue &value) {
                    if (key == "model") {
                        model = &value;
                    } else if (key == "wafer") {
                        request.wafer = waferOf(value, "wafer");
                    } else if (key == "options") {
                        request.options =
                            core::frameworkOptionsFromConfigOrThrow(
                                configMapOf(value, "options"));
                    } else if (key == "warm_seed") {
                        request.warm_seed =
                            asBool(value, "warm_seed");
                    } else if (key == "events") {
                        request.events = eventsOf(value);
                        have_events = true;
                    } else {
                        return false;
                    }
                    return true;
                });
            request.model = requireModel(model, kind);
            if (!have_events)
                fail("request: 'events' is required for kind "
                     "'scenario'");
            out->request = std::move(request);
        } else {
            fail("request: unknown kind '" + kind +
                 "' (use optimize/baseline/strategy/fault/multiwafer/"
                 "cache-stats/scenario)");
        }
        out->tenant = std::move(tenant);
        return true;
    } catch (const ParseError &e) {
        *error = e.what();
        return false;
    } catch (const core::ConfigError &e) {
        *error = e.what();
        return false;
    } catch (const std::exception &e) {
        // Defense in depth for network-supplied documents: anything
        // else (std::bad_alloc above all) must not escape a session
        // thread and terminate the process.
        *error = std::string("request: ") + e.what();
        return false;
    }
}

std::string
toJson(const model::ModelConfig &m)
{
    return JsonObject()
        .add("name", m.name)
        .add("heads", m.heads)
        .add("batch", m.batch)
        .add("hidden", m.hidden)
        .add("layers", m.layers)
        .add("seq", m.seq)
        .add("ffn_mult", m.ffn_mult)
        .add("vocab", m.vocab)
        .str();
}

std::string
toJson(const hw::WaferConfig &w)
{
    return JsonObject()
        .add("rows", w.rows)
        .add("cols", w.cols)
        .addRaw("die_area_mm2", jsonNumberExact(w.die.area_mm2))
        .addRaw("die_sram_bytes", jsonNumberExact(w.die.sram_bytes))
        .addRaw("die_frequency_hz",
                jsonNumberExact(w.die.frequency_hz))
        .addRaw("die_peak_flops", jsonNumberExact(w.die.peak_flops))
        .addRaw("die_flops_per_watt",
                jsonNumberExact(w.die.flops_per_watt))
        .addRaw("hbm_area_mm2", jsonNumberExact(w.hbm.area_mm2))
        .add("hbm_stacks_per_die", w.hbm.stacks_per_die)
        .addRaw("hbm_capacity_bytes",
                jsonNumberExact(w.hbm.capacity_bytes))
        .addRaw("hbm_bandwidth_bytes_per_s",
                jsonNumberExact(w.hbm.bandwidth_bytes_per_s))
        .addRaw("hbm_latency_s", jsonNumberExact(w.hbm.latency_s))
        .addRaw("hbm_energy_pj_per_bit",
                jsonNumberExact(w.hbm.energy_pj_per_bit))
        .addRaw("d2d_bandwidth_bytes_per_s",
                jsonNumberExact(w.d2d.bandwidth_bytes_per_s))
        .addRaw("d2d_latency_s", jsonNumberExact(w.d2d.latency_s))
        .addRaw("d2d_energy_pj_per_bit",
                jsonNumberExact(w.d2d.energy_pj_per_bit))
        .addRaw("d2d_efficient_transfer_bytes",
                jsonNumberExact(w.d2d.efficient_transfer_bytes))
        .str();
}

std::string
toJson(const core::FrameworkOptions &o)
{
    return JsonObject()
        .add("policy", policyName(o.policy.kind))
        .add("eval_threads", o.eval_threads)
        .add("training.flash_attention", o.training.flash_attention)
        .add("training.zero1_optimizer", o.training.zero1_optimizer)
        .addRaw("training.weight_bytes_per_elem",
                jsonNumberExact(o.training.weight_bytes_per_elem))
        .addRaw("training.act_bytes_per_elem",
                jsonNumberExact(o.training.act_bytes_per_elem))
        .addRaw("training.grad_bytes_per_elem",
                jsonNumberExact(o.training.grad_bytes_per_elem))
        .addRaw("training.optimizer_bytes_per_param",
                jsonNumberExact(o.training.optimizer_bytes_per_param))
        .add("solver.enable_ga", o.solver.enable_ga)
        .add("solver.engine", solver::searchEngineName(o.solver.engine))
        .add("solver.annealing.iterations",
             o.solver.annealing.iterations)
        .add("solver.annealing.proposals", o.solver.annealing.proposals)
        .addRaw("solver.annealing.initial_temp",
                jsonNumberExact(o.solver.annealing.initial_temp))
        .addRaw("solver.annealing.cooling",
                jsonNumberExact(o.solver.annealing.cooling))
        .add("solver.ga_population", o.solver.ga_population)
        .add("solver.ga_generations", o.solver.ga_generations)
        .addRaw("solver.ga_mutation_rate",
                jsonNumberExact(o.solver.ga_mutation_rate))
        .addRaw("solver.seed", std::to_string(o.solver.seed))
        .addRaw("solver.deadline.quanta",
                std::to_string(o.solver.deadline.max_quanta))
        .addRaw("solver.deadline.wall_ms",
                jsonNumberExact(o.solver.deadline.max_wall_ms))
        .add("solver.use_surrogate", o.solver.use_surrogate)
        .addRaw("solver.surrogate_sample_fraction",
                jsonNumberExact(o.solver.surrogate_sample_fraction))
        .add("solver.space.allow_dp", o.solver.space.allow_dp)
        .add("solver.space.allow_fsdp", o.solver.space.allow_fsdp)
        .add("solver.space.allow_tp", o.solver.space.allow_tp)
        .add("solver.space.allow_sp", o.solver.space.allow_sp)
        .add("solver.space.allow_cp", o.solver.space.allow_cp)
        .add("solver.space.allow_tatp", o.solver.space.allow_tatp)
        .add("solver.space.max_tp", o.solver.space.max_tp)
        .add("solver.space.max_tatp", o.solver.space.max_tatp)
        .add("solver.space.full_occupancy",
             o.solver.space.full_occupancy)
        .add("service.cache.max_frameworks", o.cache.max_frameworks)
        .add("service.cache.max_pods", o.cache.max_pods)
        .add("eval.cache.max_entries", o.cache.max_eval_entries)
        .add("eval.cache.max_step_entries", o.cache.max_step_entries)
        .add("eval.cache.max_layouts", o.cache.max_layout_entries)
        .add("net.schedule_cache.max_entries",
             o.cache.max_schedule_entries)
        .add("net.route_pool.max_entries", o.cache.max_route_entries)
        .add("eval.cache.max_bytes", o.cache.max_eval_bytes)
        .add("eval.cache.max_step_bytes", o.cache.max_step_bytes)
        .add("eval.cache.max_layout_bytes", o.cache.max_layout_bytes)
        .add("net.schedule_cache.max_bytes", o.cache.max_schedule_bytes)
        .add("net.route_pool.max_bytes", o.cache.max_route_bytes)
        .str();
}

std::string
toJson(const hw::MultiWaferConfig &pod)
{
    return JsonObject()
        .addRaw("wafer", toJson(pod.wafer))
        .add("wafer_count", pod.wafer_count)
        .addRaw("inter_wafer_bandwidth_bytes_per_s",
                jsonNumberExact(pod.inter_wafer_bandwidth_bytes_per_s))
        .addRaw("inter_wafer_latency_s",
                jsonNumberExact(pod.inter_wafer_latency_s))
        .str();
}

std::string
toJson(const hw::FaultMap &faults)
{
    std::vector<std::string> links;
    for (const hw::LinkId link : faults.failedLinks())
        links.push_back(std::to_string(link));
    std::vector<std::string> fractions;
    for (const double fraction : faults.coreFaultFractions())
        fractions.push_back(jsonNumberExact(fraction));
    return JsonObject()
        .add("die_count", faults.dieCount())
        .addRaw("failed_links", jsonArray(links))
        .addRaw("core_fault_fractions", jsonArray(fractions))
        .str();
}

namespace {

struct RequestJsonVisitor
{
    const std::string &tenant;

    JsonObject envelope(const char *kind) const
    {
        JsonObject json;
        json.add("kind", kind).add("tenant", tenant);
        return json;
    }

    std::string operator()(const OptimizeRequest &r) const
    {
        return envelope("optimize")
            .addRaw("model", toJson(r.model))
            .addRaw("wafer", toJson(r.wafer))
            .addRaw("options", toJson(r.options))
            .str();
    }

    std::string operator()(const BaselineRequest &r) const
    {
        return envelope("baseline")
            .addRaw("model", toJson(r.model))
            .addRaw("wafer", toJson(r.wafer))
            .addRaw("options", toJson(r.options))
            .add("baseline_kind", baselineWireName(r.kind))
            .add("mapping_engine", policyName(r.engine))
            .str();
    }

    std::string operator()(const StrategyRequest &r) const
    {
        return envelope("strategy")
            .addRaw("model", toJson(r.model))
            .addRaw("wafer", toJson(r.wafer))
            .addRaw("options", toJson(r.options))
            .addRaw("spec", specJson(r.spec))
            .str();
    }

    std::string operator()(const FaultRequest &r) const
    {
        JsonObject json = envelope("fault");
        json.addRaw("model", toJson(r.model))
            .addRaw("wafer", toJson(r.wafer))
            .addRaw("options", toJson(r.options))
            .addRaw("link_fault_rate",
                    jsonNumberExact(r.link_fault_rate))
            .addRaw("core_fault_rate",
                    jsonNumberExact(r.core_fault_rate))
            .addRaw("fault_seed", std::to_string(r.fault_seed));
        if (r.faults)
            json.addRaw("faults", toJson(*r.faults));
        return json.str();
    }

    std::string operator()(const MultiWaferRequest &r) const
    {
        return envelope("multiwafer")
            .addRaw("model", toJson(r.model))
            .addRaw("pod", toJson(r.pod))
            .addRaw("options", toJson(r.options))
            .add("pp", r.pp)
            .add("microbatches", r.microbatches)
            .addRaw("intra_spec", specJson(r.intra_spec))
            .str();
    }

    std::string operator()(const CacheStatsRequest &) const
    {
        return envelope("cache-stats").str();
    }

    std::string operator()(const ScenarioRequest &r) const
    {
        std::vector<std::string> events;
        events.reserve(r.events.size());
        for (const scenario::Event &event : r.events) {
            JsonObject json;
            json.add("type", scenario::eventKindName(event.kind))
                .addRaw("at_s", jsonNumberExact(event.at_s));
            if (event.kind == scenario::Event::Kind::SetFaults) {
                std::vector<std::string> kills;
                kills.reserve(event.kill_dies.size());
                for (int die : event.kill_dies)
                    kills.push_back(std::to_string(die));
                json.addRaw("link_fault_rate",
                            jsonNumberExact(event.link_fault_rate))
                    .addRaw("core_fault_rate",
                            jsonNumberExact(event.core_fault_rate))
                    .addRaw("fault_seed",
                            std::to_string(event.fault_seed))
                    .addRaw("kill_dies", jsonArray(kills));
            }
            if (event.kind == scenario::Event::Kind::ModelSwitch)
                json.addRaw("model", toJson(event.model));
            events.push_back(json.str());
        }
        return envelope("scenario")
            .addRaw("model", toJson(r.model))
            .addRaw("wafer", toJson(r.wafer))
            .addRaw("options", toJson(r.options))
            .add("warm_seed", r.warm_seed)
            .addRaw("events", jsonArray(events))
            .str();
    }
};

}  // namespace

std::string
toJson(const Request &request, const std::string &tenant)
{
    return std::visit(RequestJsonVisitor{tenant}, request);
}

}  // namespace temp::api
