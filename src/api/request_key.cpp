#include "api/request_key.hpp"

#include <cstdio>

namespace temp::api {

namespace {

/// Appends one canonicalized field to a cache key. %.17g round-trips
/// doubles, so two configs share a key iff they are value-identical.
void
field(std::string &key, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g|", v);
    key += buf;
}

void
field(std::string &key, int v)
{
    key += std::to_string(v);
    key += '|';
}

void
field(std::string &key, bool v)
{
    key += v ? "1|" : "0|";
}

/// Free-form strings (model names, tenant-adjacent data) are
/// length-prefixed so concatenated keys cannot alias across field
/// boundaries no matter what bytes the string holds.
void
field(std::string &key, const std::string &v)
{
    key += std::to_string(v.size());
    key += ':';
    key += v;
    key += '|';
}

}  // namespace

std::string
waferKey(const hw::WaferConfig &w)
{
    std::string key;
    field(key, w.rows);
    field(key, w.cols);
    field(key, w.die.area_mm2);
    field(key, w.die.sram_bytes);
    field(key, w.die.frequency_hz);
    field(key, w.die.peak_flops);
    field(key, w.die.flops_per_watt);
    field(key, w.hbm.area_mm2);
    field(key, w.hbm.stacks_per_die);
    field(key, w.hbm.capacity_bytes);
    field(key, w.hbm.bandwidth_bytes_per_s);
    field(key, w.hbm.latency_s);
    field(key, w.hbm.energy_pj_per_bit);
    field(key, w.d2d.bandwidth_bytes_per_s);
    field(key, w.d2d.latency_s);
    field(key, w.d2d.energy_pj_per_bit);
    field(key, w.d2d.efficient_transfer_bytes);
    return key;
}

std::string
policyTrainingKey(const core::FrameworkOptions &o)
{
    std::string key;
    field(key, static_cast<int>(o.policy.kind));
    field(key, o.training.flash_attention);
    field(key, o.training.zero1_optimizer);
    field(key, o.training.weight_bytes_per_elem);
    field(key, o.training.act_bytes_per_elem);
    field(key, o.training.grad_bytes_per_elem);
    field(key, o.training.optimizer_bytes_per_param);
    return key;
}

std::string
optionsKey(const core::FrameworkOptions &o)
{
    std::string key = policyTrainingKey(o);
    field(key, o.solver.space.allow_dp);
    field(key, o.solver.space.allow_fsdp);
    field(key, o.solver.space.allow_tp);
    field(key, o.solver.space.allow_sp);
    field(key, o.solver.space.allow_cp);
    field(key, o.solver.space.allow_tatp);
    field(key, o.solver.space.max_tp);
    field(key, o.solver.space.max_tatp);
    field(key, o.solver.space.full_occupancy);
    field(key, o.solver.enable_ga);
    field(key, static_cast<int>(o.solver.engine));
    field(key, o.solver.ga_population);
    field(key, o.solver.ga_generations);
    field(key, o.solver.ga_mutation_rate);
    field(key, o.solver.annealing.iterations);
    field(key, o.solver.annealing.proposals);
    field(key, o.solver.annealing.initial_temp);
    field(key, o.solver.annealing.cooling);
    key += std::to_string(o.solver.seed);  // uint64: no double rounding
    key += '|';
    // Both deadline caps are result-determining configuration (the
    // quantum cap deterministically, the wall cap by rounding down to
    // a quantum boundary), so requests differing only in deadline must
    // not alias. The runtime budget the dispatcher merges in (a
    // request's remaining queue deadline) stays out — it is per-call
    // state, not options identity. Quanta rendered like seed
    // (long -> no double rounding).
    key += std::to_string(o.solver.deadline.max_quanta);
    key += '|';
    field(key, o.solver.deadline.max_wall_ms);
    field(key, o.solver.use_surrogate);
    field(key, o.solver.surrogate_sample_fraction);
    field(key, o.eval_threads);
    // Framework-level cache budgets are applied at construction, so
    // they are part of the framework's identity. The service-level
    // budgets (max_frameworks/max_pods) re-tune the service maps and
    // deliberately stay out of the key — they do not change what a
    // framework computes or caches. PersistOptions stays out too:
    // where a process saves/loads snapshots must not fragment the
    // framework cache (two processes pointed at different snapshot
    // paths share identical results). ServeOptions likewise: how long
    // a process queues a request is front-end policy, not framework
    // identity. Budgets are long: rendered
    // directly (like solver.seed) so no narrowing can alias keys.
    for (const long budget :
         {o.cache.max_eval_entries, o.cache.max_step_entries,
          o.cache.max_layout_entries, o.cache.max_schedule_entries,
          o.cache.max_route_entries, o.cache.max_eval_bytes,
          o.cache.max_step_bytes, o.cache.max_layout_bytes,
          o.cache.max_schedule_bytes, o.cache.max_route_bytes}) {
        key += std::to_string(budget);
        key += '|';
    }
    return key;
}

std::string
podKey(const hw::MultiWaferConfig &pod, const core::FrameworkOptions &o)
{
    std::string key = waferKey(pod.wafer);
    field(key, pod.wafer_count);
    field(key, pod.inter_wafer_bandwidth_bytes_per_s);
    field(key, pod.inter_wafer_latency_s);
    key += policyTrainingKey(o);
    return key;
}

std::string
modelKey(const model::ModelConfig &m)
{
    std::string key;
    field(key, m.name);
    field(key, m.heads);
    field(key, m.batch);
    field(key, m.hidden);
    field(key, m.layers);
    field(key, m.seq);
    field(key, m.ffn_mult);
    field(key, m.vocab);
    return key;
}

std::string
specKey(const parallel::ParallelSpec &spec)
{
    std::string key;
    field(key, spec.dp);
    field(key, spec.fsdp);
    field(key, spec.tp);
    field(key, spec.sp);
    field(key, spec.cp);
    field(key, spec.tatp);
    field(key, spec.pp);
    field(key, spec.coupled_sp);
    return key;
}

namespace {

std::string
faultMapKey(const hw::FaultMap &faults)
{
    std::string key;
    field(key, faults.dieCount());
    const auto links = faults.failedLinks();
    field(key, static_cast<int>(links.size()));
    for (const hw::LinkId link : links)
        field(key, link);
    for (const double fraction : faults.coreFaultFractions())
        field(key, fraction);
    return key;
}

struct RequestKeyVisitor
{
    std::string operator()(const OptimizeRequest &r) const
    {
        return "optimize|" + modelKey(r.model) + waferKey(r.wafer) +
               optionsKey(r.options);
    }

    std::string operator()(const BaselineRequest &r) const
    {
        std::string key = "baseline|" + modelKey(r.model) +
                          waferKey(r.wafer) + optionsKey(r.options);
        field(key, static_cast<int>(r.kind));
        field(key, static_cast<int>(r.engine));
        return key;
    }

    std::string operator()(const StrategyRequest &r) const
    {
        return "strategy|" + modelKey(r.model) + waferKey(r.wafer) +
               optionsKey(r.options) + specKey(r.spec);
    }

    std::string operator()(const FaultRequest &r) const
    {
        std::string key = "fault|" + modelKey(r.model) +
                          waferKey(r.wafer) + optionsKey(r.options);
        // An explicit map replaces the (rates, seed) triple entirely —
        // mirroring run(), which ignores them when faults is set.
        if (r.faults) {
            key += "map|";
            key += faultMapKey(*r.faults);
            return key;
        }
        key += "rng|";
        field(key, r.link_fault_rate);
        field(key, r.core_fault_rate);
        key += std::to_string(r.fault_seed);
        key += '|';
        return key;
    }

    std::string operator()(const MultiWaferRequest &r) const
    {
        std::string key = "multiwafer|" + modelKey(r.model) +
                          podKey(r.pod, r.options) +
                          optionsKey(r.options) + specKey(r.intra_spec);
        field(key, r.pp);
        field(key, r.microbatches);
        return key;
    }

    std::string operator()(const CacheStatsRequest &) const
    {
        return "cache-stats|";
    }

    std::string operator()(const ScenarioRequest &r) const
    {
        std::string key = "scenario|" + modelKey(r.model) +
                          waferKey(r.wafer) + optionsKey(r.options);
        field(key, r.warm_seed);
        field(key, static_cast<int>(r.events.size()));
        for (const scenario::Event &event : r.events) {
            key += scenario::eventKindName(event.kind);
            key += '|';
            field(key, event.at_s);
            field(key, event.link_fault_rate);
            field(key, event.core_fault_rate);
            key += std::to_string(event.fault_seed);  // uint64
            key += '|';
            field(key, static_cast<int>(event.kill_dies.size()));
            for (int die : event.kill_dies)
                field(key, die);
            if (event.kind == scenario::Event::Kind::ModelSwitch)
                key += modelKey(event.model);
        }
        return key;
    }
};

}  // namespace

std::string
requestKey(const Request &request)
{
    return std::visit(RequestKeyVisitor{}, request);
}

}  // namespace temp::api
