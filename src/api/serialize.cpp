#include "api/serialize.hpp"

#include <cmath>
#include <cstdio>

namespace temp::api {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

std::string
jsonNumberExact(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

JsonObject &
JsonObject::addRaw(const std::string &key, const std::string &json)
{
    if (!body_.empty())
        body_ += ',';
    body_ += '"';
    body_ += jsonEscape(key);
    body_ += "\":";
    body_ += json;
    return *this;
}

JsonObject &
JsonObject::add(const std::string &key, const std::string &value)
{
    return addRaw(key, "\"" + jsonEscape(value) + "\"");
}

JsonObject &
JsonObject::add(const std::string &key, const char *value)
{
    return add(key, std::string(value));
}

JsonObject &
JsonObject::add(const std::string &key, double value)
{
    return addRaw(key, jsonNumber(value));
}

JsonObject &
JsonObject::add(const std::string &key, long value)
{
    return addRaw(key, std::to_string(value));
}

JsonObject &
JsonObject::add(const std::string &key, int value)
{
    return addRaw(key, std::to_string(value));
}

JsonObject &
JsonObject::add(const std::string &key, bool value)
{
    return addRaw(key, value ? "true" : "false");
}

std::string
JsonObject::str() const
{
    return "{" + body_ + "}";
}

std::string
jsonArray(const std::vector<std::string> &elements)
{
    std::string out = "[";
    for (std::size_t i = 0; i < elements.size(); ++i) {
        if (i)
            out += ',';
        out += elements[i];
    }
    out += ']';
    return out;
}

std::string
toJson(const sim::PerfReport &r)
{
    return JsonObject()
        .add("feasible", r.feasible)
        .add("oom", r.oom)
        .add("step_time_s", r.step_time)
        .add("comp_time_s", r.comp_time)
        .add("collective_time_s", r.collective_time)
        .add("stream_comm_time_s", r.stream_comm_time)
        .add("exposed_comm_s", r.exposed_comm)
        .add("reshard_time_s", r.reshard_time)
        .add("bubble_time_s", r.bubble_time)
        .add("grad_sync_time_s", r.grad_sync_time)
        .add("grad_accum", r.grad_accum)
        .add("recompute", r.recompute)
        .add("peak_mem_bytes", r.peak_mem_bytes)
        .add("avg_power_w", r.avg_power_w)
        .add("power_efficiency_flops_per_j", r.power_efficiency)
        .add("bw_utilization", r.bw_utilization)
        .add("total_flops", r.total_flops)
        .add("throughput_tokens_per_s", r.throughput_tokens_per_s)
        .add("strategy", r.strategy_desc)
        .str();
}

std::string
toJson(const parallel::ParallelSpec &spec)
{
    return JsonObject()
        .add("dp", spec.dp)
        .add("fsdp", spec.fsdp)
        .add("tp", spec.tp)
        .add("sp", spec.sp)
        .add("cp", spec.cp)
        .add("tatp", spec.tatp)
        .add("pp", spec.pp)
        .add("coupled_sp", spec.coupled_sp)
        .add("str", spec.str())
        .str();
}

std::string
toJson(const baselines::TunedBaseline &baseline)
{
    return JsonObject()
        .addRaw("spec", toJson(baseline.spec))
        .add("all_oom", baseline.all_oom)
        .addRaw("report", toJson(baseline.report))
        .str();
}

std::string
toJson(const solver::SolverResult &result,
       const std::vector<std::string> &op_names)
{
    std::vector<std::string> per_op;
    per_op.reserve(result.per_op_specs.size());
    for (std::size_t i = 0; i < result.per_op_specs.size(); ++i) {
        if (i < op_names.size()) {
            per_op.push_back(JsonObject()
                                 .add("op", op_names[i])
                                 .add("spec",
                                      result.per_op_specs[i].str())
                                 .str());
        } else {
            per_op.push_back("\"" +
                             jsonEscape(result.per_op_specs[i].str()) +
                             "\"");
        }
    }
    return JsonObject()
        .add("feasible", result.feasible)
        .add("step_time_s", result.step_time_s)
        .add("search_time_s", result.search_time_s)
        .add("evaluations", result.evaluations)
        .add("matrix_measurements", result.matrix_measurements)
        .add("cache_hits", result.cache_hits)
        .add("step_sims", result.step_sims)
        .add("step_cache_hits", result.step_cache_hits)
        .add("schedule_lowerings", result.schedule_lowerings)
        .add("schedule_cache_hits", result.schedule_cache_hits)
        .add("cache_evictions", result.cache_evictions)
        .add("candidate_count", result.candidate_count)
        .add("budget_exhausted", result.budget_exhausted)
        .add("quanta_used", result.quanta_used)
        .addRaw("engine_accounts",
                jsonArray([&] {
                    std::vector<std::string> accounts;
                    accounts.reserve(result.engine_accounts.size());
                    for (const solver::EngineAccount &a :
                         result.engine_accounts) {
                        accounts.push_back(
                            JsonObject()
                                .add("engine", a.engine)
                                .add("steps", a.steps)
                                .add("fitness_queries",
                                     a.fitness_queries)
                                .add("best_fitness", a.best_fitness)
                                .add("feasible", a.feasible)
                                .add("winner", a.winner)
                                .str());
                    }
                    return accounts;
                }()))
        .addRaw("per_op_specs", jsonArray(per_op))
        .addRaw("report", toJson(result.report))
        .str();
}

std::string
toJson(const eval::EvalStats &stats)
{
    return JsonObject()
        .add("measurements", stats.measurements)
        .add("cache_hits", stats.cache_hits)
        .add("layouts_built", stats.layouts_built)
        .add("layout_hits", stats.layout_hits)
        .add("schedule_lowerings", stats.schedule_lowerings)
        .add("schedule_cache_hits", stats.schedule_cache_hits)
        .add("evictions", stats.evictions)
        .str();
}

std::string
toJson(const eval::StepStats &stats)
{
    return JsonObject()
        .add("sims", stats.sims)
        .add("cache_hits", stats.cache_hits)
        .add("schedule_lowerings", stats.schedule_lowerings)
        .add("schedule_cache_hits", stats.schedule_cache_hits)
        .add("evictions", stats.evictions)
        .str();
}

std::string
toJson(const common::CacheStats &stats)
{
    return JsonObject()
        .add("entries", stats.entries)
        .add("bytes_est", stats.bytes_est)
        .add("hits", stats.hits)
        .add("misses", stats.misses)
        .add("evictions", stats.evictions)
        .str();
}

std::string
toJson(const Response &response)
{
    JsonObject json;
    json.add("kind", requestKindName(response.kind))
        .add("ok", response.ok)
        .add("error", response.error)
        .add("wall_time_s", response.wall_time_s)
        .add("queue_time_s", response.queue_time_s)
        .add("framework_reused", response.framework_reused)
        .add("tenant", response.tenant)
        .add("coalesced", response.coalesced)
        .add("coalesced_requests", response.coalesced_requests)
        .add("shed", response.shed)
        .add("deadline_exceeded", response.deadline_exceeded)
        .add("budget_exhausted", response.budget_exhausted)
        .add("quanta_used", response.quanta_used)
        .addRaw("evaluator", toJson(response.evaluator_stats))
        .addRaw("step_evaluator", toJson(response.step_stats));
    switch (response.kind) {
    case RequestKind::Optimize:
        json.addRaw("result", toJson(response.solver,
                                     response.op_names));
        break;
    case RequestKind::Fault:
        json.add("usable_dies", response.usable_dies)
            .addRaw("result", toJson(response.solver,
                                     response.op_names));
        break;
    case RequestKind::Baseline:
        json.addRaw("result", toJson(response.baseline));
        break;
    case RequestKind::Strategy:
        json.addRaw("result", toJson(response.report));
        break;
    case RequestKind::MultiWafer:
        json.addRaw("stage_fabric",
                    JsonObject()
                        .add("rows", response.stage_fabric.rows)
                        .add("cols", response.stage_fabric.cols)
                        .str())
            .addRaw("result", toJson(response.report));
        break;
    case RequestKind::Scenario: {
        std::vector<std::string> events;
        events.reserve(response.scenario.events.size());
        for (const scenario::EventReport &er :
             response.scenario.events) {
            events.push_back(
                JsonObject()
                    .add("index", er.index)
                    .add("at_s", er.at_s)
                    .add("type", scenario::eventKindName(er.kind))
                    .add("recovery_wall_s", er.recovery_wall_s)
                    .add("step_sims", er.step_sims)
                    .add("matrix_measurements",
                         er.matrix_measurements)
                    .add("step_cache_hits", er.step_cache_hits)
                    .add("matrix_cache_hits", er.matrix_cache_hits)
                    .add("throughput_before", er.throughput_before)
                    .add("throughput_after", er.throughput_after)
                    .add("step_time_s", er.step_time_s)
                    .add("usable_dies", er.usable_dies)
                    .add("failed_links", er.failed_links)
                    .add("wafer_count", er.wafer_count)
                    // String: uint64 does not survive a double-typed
                    // JSON number field.
                    .add("fault_fingerprint",
                         std::to_string(er.fault_fingerprint))
                    .add("resolved", er.resolved)
                    .add("warm_seeded", er.warm_seeded)
                    .add("budget_exhausted", er.budget_exhausted)
                    .add("quanta_used", er.quanta_used)
                    .add("context_reused", er.context_reused)
                    .add("fallback_to_last_feasible",
                         er.fallback_to_last_feasible)
                    .add("degradation", er.degradation)
                    .str());
        }
        json.addRaw(
            "result",
            JsonObject()
                .addRaw("events", jsonArray(events))
                .add("replay_digest",
                     std::to_string(response.scenario.replay_digest))
                .add("total_step_sims",
                     response.scenario.total_step_sims)
                .add("total_matrix_measurements",
                     response.scenario.total_matrix_measurements)
                .add("infeasible_events",
                     response.scenario.infeasible_events)
                .add("fallback_events",
                     response.scenario.fallback_events)
                .add("budget_exhausted_events",
                     response.scenario.budget_exhausted_events)
                .add("total_quanta", response.scenario.total_quanta)
                .add("total_wall_s", response.scenario.total_wall_s)
                .str());
        break;
    }
    case RequestKind::CacheStats: {
        std::vector<std::string> layers;
        layers.reserve(response.cache_layers.size());
        for (const CacheLayerStats &layer : response.cache_layers)
            layers.push_back(JsonObject()
                                 .add("layer", layer.layer)
                                 .addRaw("stats", toJson(layer.stats))
                                 .str());
        json.addRaw("layers", jsonArray(layers));
        break;
    }
    }
    return json.str();
}

}  // namespace temp::api
