/**
 * @file
 * The typed request/response surface of the TEMP service layer.
 *
 * Every workflow the framework supports — full DLWS optimisation,
 * baseline tuning, explicit-strategy evaluation, degraded-wafer
 * re-optimisation and multi-wafer pipeline planning — is described by
 * one plain-data request struct carrying the model, the hardware and
 * the framework options. A request is self-contained: two requests
 * with equal fields are the same computation, which is what lets
 * TempService key its framework cache on request content and serve
 * repeats from the shared evaluator memo.
 *
 * The unified Response carries status, timing, cache provenance and
 * the kind-specific result payload; serialize.hpp renders it to JSON.
 */
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "core/framework.hpp"
#include "hw/fault.hpp"
#include "scenario/scenario.hpp"

namespace temp::api {

/// Full DLWS pipeline: strategy space -> DP -> GA -> simulation.
struct OptimizeRequest
{
    model::ModelConfig model;
    hw::WaferConfig wafer = hw::WaferConfig::paperDefault();
    core::FrameworkOptions options;
};

/// Tune one baseline partitioning scheme under a mapping engine.
struct BaselineRequest
{
    model::ModelConfig model;
    hw::WaferConfig wafer = hw::WaferConfig::paperDefault();
    core::FrameworkOptions options;
    baselines::BaselineKind kind = baselines::BaselineKind::MegatronSP;
    tcme::MappingEngineKind engine = tcme::MappingEngineKind::TCME;
};

/// Simulate one explicit uniform strategy (ablations, sweeps).
struct StrategyRequest
{
    model::ModelConfig model;
    hw::WaferConfig wafer = hw::WaferConfig::paperDefault();
    core::FrameworkOptions options;
    parallel::ParallelSpec spec;
};

/// Re-optimise on a degraded wafer (the Fig. 20a three-step pipeline).
struct FaultRequest
{
    model::ModelConfig model;
    hw::WaferConfig wafer = hw::WaferConfig::paperDefault();
    core::FrameworkOptions options;
    /// Random fault injection (matching examples/fault_aware_training):
    /// link faults are drawn first, core faults second, from one RNG
    /// seeded with fault_seed — so (rates, seed) reproduce a scenario.
    double link_fault_rate = 0.0;
    double core_fault_rate = 0.0;
    std::uint64_t fault_seed = 1;
    /// Explicit fault state; when set, the rates and seed are ignored.
    std::optional<hw::FaultMap> faults;
};

/// Pipeline-parallel training across a wafer pod (Sec. VIII-E).
struct MultiWaferRequest
{
    model::ModelConfig model;
    hw::MultiWaferConfig pod;
    core::FrameworkOptions options;  ///< policy + training options apply
    parallel::ParallelSpec intra_spec;
    int pp = 2;
    int microbatches = 8;
};

/**
 * Observability: a snapshot of every memo layer's governance counters
 * — the service's framework/pod maps plus, aggregated across all
 * cached frameworks, the breakdown memo, step-report memo, layout
 * caches, schedule cache and route pool. The `temp_cli cache-stats`
 * subcommand is the CLI face of this request.
 */
struct CacheStatsRequest
{
};

/**
 * Replay a virtual-time event timeline (fault storms, repairs, model
 * switches, spot re-optimisation, pod churn) against the service —
 * the continuous-operation version of FaultRequest. Deterministic:
 * the same request replays bit-identically (every EventReport field
 * except wall-clock times); see src/scenario/README.md.
 */
struct ScenarioRequest
{
    model::ModelConfig model;  ///< the model training when replay starts
    hw::WaferConfig wafer = hw::WaferConfig::paperDefault();
    core::FrameworkOptions options;
    /// Warm-seed post-fault re-solves with the previous assignment
    /// (false replays every event cold — the comparison baseline).
    bool warm_seed = true;
    std::vector<scenario::Event> events;
};

/// Any request the service accepts (the submit() currency).
using Request = std::variant<OptimizeRequest, BaselineRequest,
                             StrategyRequest, FaultRequest,
                             MultiWaferRequest, CacheStatsRequest,
                             ScenarioRequest>;

/// Which request produced a response. The enumerator order mirrors the
/// Request variant's alternative order (the dispatcher maps index() to
/// kind with one static_cast).
enum class RequestKind
{
    Optimize,
    Baseline,
    Strategy,
    Fault,
    MultiWafer,
    CacheStats,
    Scenario,
};

/// One memo layer's counters in a CacheStats response.
struct CacheLayerStats
{
    std::string layer;  ///< e.g. "service_frameworks", "schedules"
    common::CacheStats stats;
};

/// Printable request-kind name ("optimize", "baseline", ...).
const char *requestKindName(RequestKind kind);

/**
 * The unified service response. `ok` means the request was executed
 * (a search may still report an infeasible outcome in its payload);
 * `!ok` means the request itself was invalid and `error` says why —
 * invalid requests never terminate the service, unlike the library's
 * fatal() paths.
 */
struct Response
{
    RequestKind kind = RequestKind::Optimize;
    bool ok = false;
    std::string error;
    /**
     * True end-to-end wall-clock time of the request. For run() this
     * is the execution span; for submit()ed requests it is measured
     * from the enqueue, so queue wait is no longer silently dropped
     * from the latency a client observes.
     */
    double wall_time_s = 0.0;
    /// Time a submit()ed request waited in the service queue before
    /// execution began (0 for synchronous run()).
    double queue_time_s = 0.0;
    /// True when a cached framework (and its evaluator memo) served
    /// the request instead of a freshly built one.
    bool framework_reused = false;
    /// @{ Service-front-end provenance (src/serve). The defaults are
    /// chosen so a Response produced by the in-process run() path is
    /// byte-identical to one the server produces for a lone request:
    /// not coalesced, not shed, answered by a solve shared with exactly
    /// one request (itself), anonymous tenant.
    /// Client-supplied tenant id the admission controller fairly
    /// dequeued this request under ("" = anonymous).
    std::string tenant;
    /// True when this response was answered from another in-flight
    /// identical request's solve rather than its own.
    bool coalesced = false;
    /// How many requests the solve behind this response answered
    /// (1 = no coalescing happened).
    long coalesced_requests = 1;
    /// True when admission control rejected the request (queue full);
    /// ok is false and error says so.
    bool shed = false;
    /// True when the request sat in the dispatcher queue past its
    /// per-request deadline (serve.deadline_ms) and was shed with this
    /// explicit response instead of holding a session slot; implies
    /// shed, ok is false and error says so.
    bool deadline_exceeded = false;
    /**
     * True when the solve behind this response stopped at a budget
     * boundary (quantum/wall deadline or in-flight cancel) and
     * returned its best-so-far partial result. Top-level mirror of
     * SolverResult::budget_exhausted / the scenario report's
     * per-event flags, so clients and the dispatcher's accounting
     * need not reach into kind-specific payloads.
     */
    bool budget_exhausted = false;
    /// Budget quanta (full-step fitness queries) the solve charged
    /// (0 for kinds that never solve).
    long quanta_used = 0;
    /// @}
    /// Cumulative evaluator counters of the serving framework, read
    /// after the request (Optimize/Baseline/Strategy/Fault kinds).
    /// Note: per-solve deltas (SolverResult's matrix_measurements /
    /// cache_hits) are exact when requests against one framework do
    /// not overlap in time; concurrent solves on the same framework
    /// blur each other's deltas (results stay bit-identical — the
    /// shared cache is additive — only the counters interleave).
    eval::EvalStats evaluator_stats;
    /// Cumulative full-step simulation counters of the serving
    /// framework's StepEvaluator (same caveats as evaluator_stats);
    /// per-solve deltas live in SolverResult::step_sims /
    /// step_cache_hits.
    eval::StepStats step_stats;

    /// @{ Kind-specific payloads.
    solver::SolverResult solver;         ///< Optimize, Fault
    baselines::TunedBaseline baseline;   ///< Baseline
    /// The step report of whatever the request produced, for uniform
    /// access: solver.report / baseline.report mirrored, or the direct
    /// simulation result (Strategy, MultiWafer).
    sim::PerfReport report;
    /// Operator names of the searched graph (Optimize, Fault), aligned
    /// with solver.per_op_specs.
    std::vector<std::string> op_names;
    int usable_dies = 0;                 ///< Fault
    hw::WaferConfig stage_fabric;        ///< MultiWafer
    /// Per-layer governance counters (CacheStats kind), in a fixed
    /// layer order so the JSON stays byte-stable.
    std::vector<CacheLayerStats> cache_layers;
    /// Timeline replay report (Scenario kind).
    scenario::ScenarioReport scenario;
    /// @}
};

}  // namespace temp::api
