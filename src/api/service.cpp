#include "api/service.hpp"

#include <chrono>

#include "api/request_key.hpp"
#include "model/graph.hpp"

namespace temp::api {

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Validates an explicit uniform spec against a die budget; returns an
/// error message or empty.
std::string
checkSpec(const parallel::ParallelSpec &spec, int die_count)
{
    if (!spec.valid())
        return "invalid spec " + spec.str() +
               " (degrees must be >= 1; dp and fsdp are exclusive)";
    if (spec.totalDegree() > die_count)
        return "spec " + spec.str() + " needs " +
               std::to_string(spec.totalDegree()) + " dies, wafer has " +
               std::to_string(die_count);
    return "";
}

std::vector<std::string>
opNames(const model::ComputeGraph &graph)
{
    std::vector<std::string> names;
    names.reserve(static_cast<std::size_t>(graph.opCount()));
    for (int i = 0; i < graph.opCount(); ++i)
        names.push_back(graph.op(i).name);
    return names;
}

}  // namespace

const char *
requestKindName(RequestKind kind)
{
    switch (kind) {
    case RequestKind::Optimize: return "optimize";
    case RequestKind::Baseline: return "baseline";
    case RequestKind::Strategy: return "strategy";
    case RequestKind::Fault: return "fault";
    case RequestKind::MultiWafer: return "multiwafer";
    case RequestKind::CacheStats: return "cache-stats";
    case RequestKind::Scenario: return "scenario";
    }
    return "unknown";
}

TempService::TempService(ServiceOptions options)
    : frameworks_(options.cache.max_frameworks),
      pods_(options.cache.max_pods), pool_(options.request_threads)
{
}

void
TempService::applyServiceBudget(const common::CacheBudget &budget)
{
    if (budget.max_frameworks > 0)
        frameworks_.setCapacity(budget.max_frameworks);
    if (budget.max_pods > 0)
        pods_.setCapacity(budget.max_pods);
}

std::shared_ptr<core::TempFramework>
TempService::framework(const hw::WaferConfig &wafer,
                       const core::FrameworkOptions &options)
{
    bool reused = false;
    return frameworkFor(wafer, options, &reused);
}

std::shared_ptr<core::TempFramework>
TempService::frameworkFor(const hw::WaferConfig &wafer,
                          const core::FrameworkOptions &options,
                          bool *reused)
{
    applyServiceBudget(options.cache);
    const std::string key = waferKey(wafer) + optionsKey(options);
    if (auto cached = frameworks_.get(key)) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.framework_cache_hits;
        }
        *reused = true;
        // A block staged after this framework was built (load-after-
        // solve) still warms it: consumption is keyed by content, not
        // by build order.
        consumePendingBlock(key, **cached);
        return *cached;
    }
    // Build outside the cache lock so a slow construction never stalls
    // cache hits for other requests; if two threads race on the same
    // key, the loser's copy is discarded and the winner's is shared.
    auto fw = std::make_shared<core::TempFramework>(wafer, options);
    auto [resident, inserted] = frameworks_.insert(key, std::move(fw));
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (inserted)
            ++stats_.frameworks_built;
        else
            ++stats_.framework_cache_hits;
    }
    *reused = !inserted;
    consumePendingBlock(key, *resident);
    return resident;
}

void
TempService::consumePendingBlock(const std::string &key,
                                 const core::TempFramework &fw)
{
    persist::MemoBlock block;
    {
        std::lock_guard<std::mutex> lock(persist_mutex_);
        auto it = pending_blocks_.find(key);
        if (it == pending_blocks_.end())
            return;
        // Erase before importing: exactly one caller wins the block,
        // and a concurrent saveSnapshot() never double-writes it (the
        // framework it warmed re-exports the same memos).
        block = std::move(it->second);
        pending_blocks_.erase(it);
        ++persist_stats_.frameworks_warmed;
    }
    // Import outside the lock: schedule replay lowers real schedules.
    fw.importMemos(block);
}

bool
TempService::warmStart(const std::string &path, std::string *error)
{
    persist::Snapshot snapshot;
    std::string why;
    if (!persist::loadSnapshotFile(path, &snapshot, &why)) {
        std::lock_guard<std::mutex> lock(persist_mutex_);
        ++persist_stats_.load_failures;
        if (error)
            *error = why;
        return false;
    }
    std::lock_guard<std::mutex> lock(persist_mutex_);
    for (persist::MemoBlock &block : snapshot.blocks) {
        // First stage wins on key collision (self-merge of repeated
        // loads); resident frameworks win over both at import time.
        if (pending_blocks_.emplace(block.framework_key,
                                    std::move(block)).second)
            ++persist_stats_.blocks_staged;
    }
    ++persist_stats_.loads;
    return true;
}

bool
TempService::saveSnapshot(const std::string &path, std::string *error)
{
    persist::Snapshot snapshot;
    frameworks_.forEach(
        [&](const std::string &key,
            const std::shared_ptr<core::TempFramework> &fw) {
            persist::MemoBlock block = fw->exportMemos();
            block.framework_key = key;
            if (!block.empty())
                snapshot.blocks.push_back(std::move(block));
        });
    {
        // Carry unconsumed staged blocks so load -> save round-trips
        // losslessly even when the matching wafer was never requested.
        std::lock_guard<std::mutex> lock(persist_mutex_);
        for (const auto &[key, block] : pending_blocks_) {
            bool exported = false;
            for (const persist::MemoBlock &b : snapshot.blocks)
                if (b.framework_key == key) {
                    exported = true;
                    break;
                }
            if (!exported)
                snapshot.blocks.push_back(block);
        }
    }
    if (!persist::saveSnapshotFile(path, snapshot, error))
        return false;
    std::lock_guard<std::mutex> lock(persist_mutex_);
    ++persist_stats_.saves;
    return true;
}

TempService::PersistStats
TempService::persistStats() const
{
    std::lock_guard<std::mutex> lock(persist_mutex_);
    return persist_stats_;
}

std::shared_ptr<sim::MultiWaferSimulator>
TempService::podFor(const hw::MultiWaferConfig &pod,
                    const core::FrameworkOptions &options, bool *reused)
{
    applyServiceBudget(options.cache);
    const std::string key = podKey(pod, options);
    if (auto cached = pods_.get(key)) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.pod_cache_hits;
        *reused = true;
        return *cached;
    }
    auto sim = std::make_shared<sim::MultiWaferSimulator>(
        pod, options.policy, options.training);
    auto [resident, inserted] = pods_.insert(key, std::move(sim));
    std::lock_guard<std::mutex> lock(mutex_);
    if (inserted) {
        ++stats_.pods_built;
        *reused = false;
    } else {
        ++stats_.pod_cache_hits;
        *reused = true;
    }
    return resident;
}

Response
TempService::finish(Response response, double start_time)
{
    response.wall_time_s = now() - start_time;
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requests;
    return response;
}

Response
TempService::run(const OptimizeRequest &request)
{
    return run(request, solver::SolveBudget{});
}

Response
TempService::run(const OptimizeRequest &request,
                 const solver::SolveBudget &budget)
{
    const double t0 = now();
    Response response;
    response.kind = RequestKind::Optimize;
    auto fw = frameworkFor(request.wafer, request.options,
                           &response.framework_reused);
    response.solver = fw->optimize(request.model, budget);
    response.budget_exhausted = response.solver.budget_exhausted;
    response.quanta_used = response.solver.quanta_used;
    response.report = response.solver.report;
    response.op_names =
        opNames(model::ComputeGraph::transformer(request.model));
    response.evaluator_stats = fw->evaluatorStats();
    response.step_stats = fw->stepStats();
    response.ok = true;
    return finish(std::move(response), t0);
}

Response
TempService::run(const BaselineRequest &request)
{
    const double t0 = now();
    Response response;
    response.kind = RequestKind::Baseline;
    auto fw = frameworkFor(request.wafer, request.options,
                           &response.framework_reused);
    response.baseline =
        fw->evaluateBaseline(request.kind, request.engine, request.model);
    response.report = response.baseline.report;
    response.evaluator_stats = fw->evaluatorStats();
    response.step_stats = fw->stepStats();
    response.ok = true;
    return finish(std::move(response), t0);
}

Response
TempService::run(const StrategyRequest &request)
{
    const double t0 = now();
    Response response;
    response.kind = RequestKind::Strategy;
    response.error = checkSpec(request.spec, request.wafer.dieCount());
    if (!response.error.empty())
        return finish(std::move(response), t0);
    auto fw = frameworkFor(request.wafer, request.options,
                           &response.framework_reused);
    response.report = fw->evaluateStrategy(request.model, request.spec);
    response.evaluator_stats = fw->evaluatorStats();
    response.step_stats = fw->stepStats();
    response.ok = true;
    return finish(std::move(response), t0);
}

Response
TempService::run(const FaultRequest &request)
{
    return run(request, solver::SolveBudget{});
}

Response
TempService::run(const FaultRequest &request,
                 const solver::SolveBudget &budget)
{
    const double t0 = now();
    Response response;
    response.kind = RequestKind::Fault;
    auto fw = frameworkFor(request.wafer, request.options,
                           &response.framework_reused);

    // Fault localisation input: the caller's explicit map, or random
    // injection drawn exactly like examples/fault_aware_training (one
    // RNG, links first, cores second).
    const hw::Wafer &healthy = fw->wafer();
    hw::FaultMap faults(healthy.dieCount(),
                        healthy.topology().linkCount());
    if (request.faults) {
        faults = *request.faults;
    } else {
        Rng rng(request.fault_seed);
        if (request.link_fault_rate > 0.0)
            faults = hw::FaultMap::randomLinkFaults(
                healthy.topology(), request.link_fault_rate, rng);
        if (request.core_fault_rate > 0.0) {
            const hw::FaultMap cores = hw::FaultMap::randomCoreFaults(
                healthy.topology(), request.core_fault_rate, rng);
            for (hw::DieId die = 0; die < healthy.dieCount(); ++die)
                faults.setCoreFaultFraction(
                    die, cores.coreFaultFraction(die));
        }
    }

    const hw::Wafer degraded(request.wafer, faults);
    response.usable_dies = degraded.usableDieCount();
    response.solver =
        fw->optimizeWithFaults(request.model, faults, budget);
    response.budget_exhausted = response.solver.budget_exhausted;
    response.quanta_used = response.solver.quanta_used;
    response.report = response.solver.report;
    response.op_names =
        opNames(model::ComputeGraph::transformer(request.model));
    response.evaluator_stats = fw->evaluatorStats();
    response.step_stats = fw->stepStats();
    response.ok = true;
    return finish(std::move(response), t0);
}

Response
TempService::run(const MultiWaferRequest &request)
{
    const double t0 = now();
    Response response;
    response.kind = RequestKind::MultiWafer;

    // Pre-validate everything MultiWaferSimulator would fatal() on, so
    // a malformed request degrades to an error response instead of
    // terminating the service.
    const int wafers = request.pod.wafer_count;
    const int pp = request.pp;
    const int micro = request.microbatches;
    if (wafers < 1 || pp < 1 || micro < 1) {
        response.error = "pod wafer_count, pp and microbatches must be "
                         "positive";
        return finish(std::move(response), t0);
    }
    if (pp <= wafers ? wafers % pp != 0
                     : (pp % wafers != 0 ||
                        request.pod.wafer.cols % (pp / wafers) != 0)) {
        response.error =
            "pp=" + std::to_string(pp) + " incompatible with " +
            std::to_string(wafers) + " wafers of " +
            std::to_string(request.pod.wafer.cols) + " cols";
        return finish(std::move(response), t0);
    }
    if (request.model.layers % pp != 0) {
        response.error = std::to_string(request.model.layers) +
                         " layers not divisible by pp=" +
                         std::to_string(pp);
        return finish(std::move(response), t0);
    }
    if (request.model.batch % micro != 0) {
        response.error = "batch " + std::to_string(request.model.batch) +
                         " not divisible by m=" + std::to_string(micro);
        return finish(std::move(response), t0);
    }

    auto pod = podFor(request.pod, request.options,
                      &response.framework_reused);
    response.stage_fabric = pod->stageFabric(pp);
    response.error = checkSpec(request.intra_spec,
                               response.stage_fabric.dieCount());
    if (!response.error.empty())
        return finish(std::move(response), t0);

    const model::ComputeGraph graph =
        model::ComputeGraph::transformer(request.model);
    response.report =
        pod->simulate(graph, request.intra_spec, pp, micro);
    response.ok = true;
    return finish(std::move(response), t0);
}

Response
TempService::run(const CacheStatsRequest &)
{
    const double t0 = now();
    Response response;
    response.kind = RequestKind::CacheStats;

    // Service-level maps first, then the per-framework layers
    // aggregated across every cached framework in a fixed order so
    // the JSON stays byte-stable.
    response.cache_layers.push_back(
        {"service_frameworks", frameworks_.stats()});
    response.cache_layers.push_back({"service_pods", pods_.stats()});
    const std::size_t first_layer = response.cache_layers.size();
    frameworks_.forEach(
        [&](const std::string &,
            const std::shared_ptr<core::TempFramework> &fw) {
            const auto layers = fw->cacheStats();
            if (response.cache_layers.size() == first_layer) {
                for (const auto &[name, stats] : layers)
                    response.cache_layers.push_back({name, stats});
                return;
            }
            for (std::size_t i = 0; i < layers.size(); ++i)
                response.cache_layers[first_layer + i].stats +=
                    layers[i].second;
        });
    response.ok = true;
    return finish(std::move(response), t0);
}

Response
TempService::run(const ScenarioRequest &request)
{
    return run(request, solver::SolveBudget{});
}

Response
TempService::run(const ScenarioRequest &request,
                 const solver::SolveBudget &budget)
{
    const double t0 = now();
    Response response;
    response.kind = RequestKind::Scenario;
    if (request.events.empty()) {
        response.error = "scenario: empty event timeline";
        return finish(std::move(response), t0);
    }
    auto fw = frameworkFor(request.wafer, request.options,
                           &response.framework_reused);
    scenario::ScenarioEngine::Options opts;
    opts.warm_seed = request.warm_seed;
    // The caller's budget bounds EACH re-solve in the replay (bounded
    // recovery per fault event), not the whole timeline — a storm of
    // N events gets N bounded recoveries.
    opts.solve_budget = budget;
    scenario::ScenarioEngine engine(fw, opts);
    response.scenario = engine.replay(request.model, request.events);
    response.budget_exhausted =
        response.scenario.budget_exhausted_events > 0;
    response.quanta_used = response.scenario.total_quanta;
    response.evaluator_stats = fw->evaluatorStats();
    response.step_stats = fw->stepStats();
    response.ok = true;
    return finish(std::move(response), t0);
}

Response
TempService::run(const Request &request)
{
    return std::visit([this](const auto &r) { return run(r); }, request);
}

Response
TempService::run(const Request &request,
                 const solver::SolveBudget &budget)
{
    return std::visit(
        [&](const auto &r) -> Response {
            using T = std::decay_t<decltype(r)>;
            if constexpr (std::is_same_v<T, OptimizeRequest> ||
                          std::is_same_v<T, FaultRequest> ||
                          std::is_same_v<T, ScenarioRequest>)
                return run(r, budget);
            else
                return run(r);
        },
        request);
}

std::future<Response>
TempService::submit(Request request)
{
    // Stamp the enqueue time here: a submit()ed request's latency is
    // queue wait + execution, and reporting only the execution span
    // (the historical bug) under-reports exactly when the service is
    // busiest.
    const double enqueued = now();
    return pool_.submit([this, enqueued,
                         request = std::move(request)] {
        const double started = now();
        Response response = run(request);
        response.queue_time_s = started - enqueued;
        response.wall_time_s = now() - enqueued;
        return response;
    });
}

TempService::Stats
TempService::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

}  // namespace temp::api
