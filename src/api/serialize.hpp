/**
 * @file
 * JSON rendering of the service surface, following the BENCH_JSON
 * convention the benches already emit: flat snake_case keys, seconds
 * and bytes as raw doubles, one document per render. Field order is
 * fixed (insertion-ordered builder), so equal values serialize to
 * byte-identical documents — trajectories and tests can diff them.
 */
#pragma once

#include <string>
#include <vector>

#include "api/requests.hpp"

namespace temp::api {

/// Escapes a string for embedding inside a JSON string literal.
std::string jsonEscape(const std::string &s);

/// Renders a double as a JSON number; non-finite values become null
/// (JSON has no inf/nan).
std::string jsonNumber(double v);

/// Round-trip-exact variant (%.17g): a double rendered with this and
/// parsed back compares bit-equal. Request serialization uses it so
/// serialize -> parse -> requestKey is an identity.
std::string jsonNumberExact(double v);

/// Minimal insertion-ordered JSON object builder.
class JsonObject
{
  public:
    JsonObject &add(const std::string &key, const std::string &value);
    JsonObject &add(const std::string &key, const char *value);
    JsonObject &add(const std::string &key, double value);
    JsonObject &add(const std::string &key, long value);
    JsonObject &add(const std::string &key, int value);
    JsonObject &add(const std::string &key, bool value);
    /// Embeds pre-rendered JSON (an object or array) verbatim.
    JsonObject &addRaw(const std::string &key, const std::string &json);

    /// The rendered document, e.g. {"a":1,"b":"x"}.
    std::string str() const;

  private:
    std::string body_;
};

/// Renders a JSON array from pre-rendered element documents.
std::string jsonArray(const std::vector<std::string> &elements);

/// @{ Result-type renderers.
std::string toJson(const sim::PerfReport &report);
std::string toJson(const parallel::ParallelSpec &spec);
std::string toJson(const baselines::TunedBaseline &baseline);
/// @param op_names When non-empty, per-op specs are emitted as
///        {"op","spec"} pairs; otherwise as bare spec strings.
std::string toJson(const solver::SolverResult &result,
                   const std::vector<std::string> &op_names = {});
std::string toJson(const eval::EvalStats &stats);
std::string toJson(const eval::StepStats &stats);
std::string toJson(const common::CacheStats &stats);
std::string toJson(const Response &response);
/// @}

}  // namespace temp::api
