/**
 * @file
 * TempService: the long-lived entry point a server process (or CLI)
 * holds onto instead of hand-constructing TempFramework per request.
 *
 * The service owns a cache of TempFramework instances keyed by the
 * canonicalized (WaferConfig, FrameworkOptions) content, so every
 * request against the same wafer shares one framework — and with it
 * the CachingEvaluator and its memos. A repeated OptimizeRequest is
 * served entirely from cache: its SolverResult reports zero new
 * matrix_measurements and pure cache_hits. Multi-wafer pods are cached
 * the same way (MultiWaferSimulator keeps per-pp stage contexts).
 *
 * run() executes synchronously on the caller's thread; submit()
 * enqueues onto the service's ThreadPool and returns a future, so a
 * front end can keep many heterogeneous requests in flight against
 * the shared caches (all cached components are thread-safe).
 */
#pragma once

#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "api/requests.hpp"
#include "common/bounded_cache.hpp"
#include "persist/snapshot.hpp"

namespace temp::api {

/// Service-level tuning.
struct ServiceOptions
{
    /// Worker threads executing submit()ed requests (0 = hardware
    /// concurrency). With a single-thread pool submit() degrades to
    /// inline execution; futures always resolve.
    int request_threads = 0;
    /**
     * Initial cache budgets. max_frameworks/max_pods bound the
     * service's own maps (LRU over whole frameworks — evicting one
     * drops its entire memo stack, so budget the heaviest layer
     * first); the framework-level budgets here act as defaults only
     * in the sense that a request's FrameworkOptions carries its own
     * CacheBudget into the frameworks it builds. A request whose
     * options set max_frameworks/max_pods re-budgets the service maps
     * on the fly (0 leaves them unchanged).
     */
    common::CacheBudget cache;
};

/// Serves typed TEMP requests over cached frameworks.
class TempService
{
  public:
    explicit TempService(ServiceOptions options = ServiceOptions());

    /// @{ Synchronous execution of one request.
    Response run(const OptimizeRequest &request);
    Response run(const BaselineRequest &request);
    Response run(const StrategyRequest &request);
    Response run(const FaultRequest &request);
    Response run(const MultiWaferRequest &request);
    Response run(const CacheStatsRequest &request);
    Response run(const ScenarioRequest &request);
    Response run(const Request &request);
    /// @}

    /// @{ Budget-carrying execution: the caller's SolveBudget (e.g.
    /// the dispatcher's remaining per-request deadline plus its cancel
    /// token) is merged with the request's own solver.deadline inside
    /// the solver — the tighter cap wins per dimension. Kinds that
    /// solve (Optimize, Fault, Scenario — per re-solve there) honour
    /// it and mirror SolverResult::budget_exhausted / quanta_used into
    /// the Response; other kinds ignore it. The plain run() overloads
    /// delegate here with an unlimited budget.
    Response run(const OptimizeRequest &request,
                 const solver::SolveBudget &budget);
    Response run(const FaultRequest &request,
                 const solver::SolveBudget &budget);
    Response run(const ScenarioRequest &request,
                 const solver::SolveBudget &budget);
    Response run(const Request &request,
                 const solver::SolveBudget &budget);
    /// @}

    /// Asynchronous execution: queues the request on the service pool
    /// and returns the eventual response.
    std::future<Response> submit(Request request);

    /// Service-level counters.
    struct Stats
    {
        long requests = 0;          ///< responses produced (ok or not)
        long frameworks_built = 0;  ///< distinct (wafer, options) seen
        long framework_cache_hits = 0;
        long pods_built = 0;        ///< distinct multi-wafer pods seen
        long pod_cache_hits = 0;
    };
    Stats stats() const;

    /// Persistent-tier counters (warm-start snapshot traffic).
    struct PersistStats
    {
        long loads = 0;          ///< successful warmStart() calls
        long load_failures = 0;  ///< corrupt/mismatched snapshots rejected
        long saves = 0;          ///< successful saveSnapshot() calls
        long blocks_staged = 0;  ///< memo blocks staged by warmStart()
        long frameworks_warmed = 0;  ///< staged blocks consumed by a
                                     ///< matching framework
    };
    PersistStats persistStats() const;

    /**
     * Stages a snapshot's memo blocks for lazy, content-addressed
     * consumption: each block waits under its canonical framework key
     * until frameworkFor() builds (or re-serves) the matching
     * framework, then imports exactly once. Blocks whose key never
     * matches (different wafer, different options) stay staged — a
     * clean cold start, never a wrong answer. A corrupt, truncated or
     * version/fingerprint-mismatched file is rejected whole: returns
     * false, sets @p error, bumps load_failures, stages nothing.
     */
    bool warmStart(const std::string &path, std::string *error = nullptr);

    /**
     * Writes every cached framework's memo layers — plus any staged
     * blocks not yet consumed (so load+save round-trips losslessly
     * even when the matching wafer was never requested) — to @p path
     * atomically (tmp + rename). Returns false and sets @p error on
     * I/O failure.
     */
    bool saveSnapshot(const std::string &path,
                      std::string *error = nullptr);

    /**
     * The cached framework serving (wafer, options), built on first
     * use — for advanced callers needing the underlying simulator or
     * evaluator (benches, the exhaustive baseline). Shares the cache
     * with request execution.
     */
    std::shared_ptr<core::TempFramework> framework(
        const hw::WaferConfig &wafer,
        const core::FrameworkOptions &options);

  private:
    std::shared_ptr<core::TempFramework> frameworkFor(
        const hw::WaferConfig &wafer,
        const core::FrameworkOptions &options, bool *reused);
    std::shared_ptr<sim::MultiWaferSimulator> podFor(
        const hw::MultiWaferConfig &pod,
        const core::FrameworkOptions &options, bool *reused);

    /// Records bookkeeping shared by every run() overload.
    Response finish(Response response, double start_time);

    /// Applies a request's service-level budgets (0 = leave as-is).
    void applyServiceBudget(const common::CacheBudget &budget);

    /// Imports the staged warm-start block matching @p key into @p fw
    /// (exactly once; no-op when none is staged).
    void consumePendingBlock(const std::string &key,
                             const core::TempFramework &fw);

    mutable std::mutex mutex_;  ///< guards stats_
    /// Framework/pod caches: bounded LRU (0 = unbounded). Evicting a
    /// framework drops its whole memo stack; in-flight requests keep
    /// theirs alive through the shared_ptr.
    common::BoundedCache<std::string,
                         std::shared_ptr<core::TempFramework>>
        frameworks_;
    common::BoundedCache<std::string,
                         std::shared_ptr<sim::MultiWaferSimulator>>
        pods_;
    Stats stats_;
    /// Guards pending_blocks_ + persist_stats_. Ordered after the
    /// framework build (taken only briefly; never while holding
    /// mutex_ or a cache shard lock).
    mutable std::mutex persist_mutex_;
    /// Warm-start blocks staged by warmStart(), keyed by canonical
    /// framework key; frameworkFor() consumes a match exactly once.
    std::unordered_map<std::string, persist::MemoBlock> pending_blocks_;
    PersistStats persist_stats_;
    /// Declared last: destroyed first, so queued submit() tasks drain
    /// (and stop touching the members above) before they go away.
    ThreadPool pool_;
};

}  // namespace temp::api
