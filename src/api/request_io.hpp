/**
 * @file
 * The inbound half of the service wire format: JSON -> Request.
 *
 * A request document is an envelope
 *
 *   {"kind": "optimize", "tenant": "team-a",
 *    "model": {...}, "wafer": {...}, "options": {...}, ...}
 *
 * where `model` and `options` use exactly the config_io key vocabulary
 * (the same names a .conf file uses, so one mental model covers files
 * and wire), and `wafer` uses the raw-SI field names of WaferConfig
 * (rows, die_peak_flops, hbm_latency_s, ...) rendered at %.17g so a
 * serialize -> parse round trip reproduces every double bit-for-bit.
 * Kind-specific fields ride alongside: baseline_kind/mapping_engine
 * (baseline), spec (strategy), link_fault_rate/core_fault_rate/
 * fault_seed/faults (fault), pod/pp/microbatches/intra_spec
 * (multiwafer).
 *
 * Parsing is strict the way config_io is strict: unknown keys are
 * errors, not warnings — a typo must never silently configure the
 * default. Unlike config_io's CLI entry points, nothing here ever
 * fatal()s: every malformed document becomes (false, error message),
 * because the caller is a server answering hostile input.
 *
 * The contract the round-trip test pins: for every request,
 * parseRequest(toJson(request)) succeeds and yields a request with an
 * identical requestKey() — the wire format is lossless with respect to
 * what a request computes.
 */
#pragma once

#include <string>

#include "api/requests.hpp"

namespace temp::api {

/// A successfully parsed request plus its envelope metadata.
struct ParsedRequest
{
    Request request;
    /// Client-supplied tenant id ("" = anonymous); the admission
    /// controller's fair-dequeue key.
    std::string tenant;
};

/**
 * Parses one request document.
 *
 * @return false with *error set (parse errors carry a byte offset,
 *         semantic errors name the offending key) on any malformed
 *         input; never terminates the process.
 */
bool parseRequest(const std::string &json_text, ParsedRequest *out,
                  std::string *error);

/// @{ Wire-format renderers (the outbound half; inverse of
/// parseRequest). Every field is emitted, defaults included, so
/// documents are self-contained and byte-stable.
std::string toJson(const model::ModelConfig &model);
std::string toJson(const hw::WaferConfig &wafer);
std::string toJson(const core::FrameworkOptions &options);
std::string toJson(const hw::MultiWaferConfig &pod);
std::string toJson(const hw::FaultMap &faults);
std::string toJson(const Request &request,
                   const std::string &tenant = "");
/// @}

}  // namespace temp::api
