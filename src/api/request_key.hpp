/**
 * @file
 * Canonical content keys for requests and their configuration slices.
 *
 * A key renders every field of a config with %.17g (doubles round-trip
 * at that precision), so two values share a key iff they are
 * bit-for-bit the same computation. TempService keys its framework and
 * pod caches on these; the serve-layer dispatcher keys its in-flight
 * coalescing map on requestKey(), which additionally tags the request
 * kind and the kind-specific fields — two requests with equal keys are
 * interchangeable and can legally share one Response.
 */
#pragma once

#include <string>

#include "api/requests.hpp"

namespace temp::api {

/// All 17 WaferConfig fields (die, HBM, D2D).
std::string waferKey(const hw::WaferConfig &wafer);

/// The (policy, training) slice of the options — all a simulator
/// consumes; pods key on this so solver-only knobs don't evict them.
std::string policyTrainingKey(const core::FrameworkOptions &options);

/// Full FrameworkOptions: policy + training + solver + eval_threads +
/// framework-level cache budgets (service-level budgets excluded — they
/// re-tune the service maps without changing what a framework computes).
std::string optionsKey(const core::FrameworkOptions &options);

/// Pod fabric + the policy/training slice (what MultiWaferSimulator
/// construction consumes).
std::string podKey(const hw::MultiWaferConfig &pod,
                   const core::FrameworkOptions &options);

/// Model hyper-parameters; the name is length-prefixed so no two
/// distinct (name, fields) pairs can collide by concatenation.
std::string modelKey(const model::ModelConfig &model);

/// All ParallelSpec axes plus coupled_sp.
std::string specKey(const parallel::ParallelSpec &spec);

/**
 * Whole-request canonical key: kind tag + every field that affects the
 * response payload. Responses are deterministic functions of this key
 * (timing fields aside), which is what makes in-flight coalescing
 * sound. CacheStats requests key on the tag alone but are never
 * coalesced by the dispatcher — their answer depends on when they run.
 */
std::string requestKey(const Request &request);

}  // namespace temp::api
