/**
 * @file
 * Little-endian byte codec for the persist layer.
 *
 * Header-only on purpose: the snapshot writer, the SearchEngine
 * checkpoint serializer and their tests all speak this one dialect
 * without a link dependency. The encoding is fixed-width
 * little-endian regardless of host order; doubles travel as raw IEEE
 * bit patterns (std::bit_cast), so a value round-trips bit-identically
 * — the property every warm-start and resume guarantee in this repo
 * reduces to.
 *
 * ByteReader is a bounds-checked cursor: any out-of-range read flips a
 * sticky ok() flag and returns zero values instead of touching memory,
 * so a truncated or hostile payload degrades to "load failed", never
 * to UB. Callers check ok() once at the end of a decode.
 */
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>

namespace temp::persist {

/// FNV-1a over a byte range (the snapshot's section checksum).
inline std::uint64_t
fnv1aBytes(const void *data, std::size_t size,
           std::uint64_t hash = 0xcbf29ce484222325ull)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

/// Appends fixed-width little-endian primitives to a byte string.
class ByteWriter
{
  public:
    void u8(std::uint8_t value) { buf_.push_back(static_cast<char>(value)); }

    void u32(std::uint32_t value)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
    }

    void u64(std::uint64_t value)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
    }

    void i32(std::int32_t value)
    {
        u32(static_cast<std::uint32_t>(value));
    }

    void i64(std::int64_t value)
    {
        u64(static_cast<std::uint64_t>(value));
    }

    /// Raw IEEE-754 bits: bit-identical round trip, NaN payloads and
    /// signed zeros included.
    void f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }

    /// Length-prefixed byte string (u32 length + payload).
    void str(const std::string &value)
    {
        u32(static_cast<std::uint32_t>(value.size()));
        buf_.append(value);
    }

    const std::string &bytes() const { return buf_; }
    std::string take() { return std::move(buf_); }

  private:
    std::string buf_;
};

/// Bounds-checked little-endian cursor with a sticky failure flag.
class ByteReader
{
  public:
    ByteReader(const char *data, std::size_t size)
        : data_(data), size_(size)
    {
    }
    explicit ByteReader(const std::string &bytes)
        : ByteReader(bytes.data(), bytes.size())
    {
    }

    bool ok() const { return ok_; }
    std::size_t pos() const { return pos_; }
    std::size_t remaining() const { return ok_ ? size_ - pos_ : 0; }
    bool atEnd() const { return pos_ == size_; }

    std::uint8_t u8()
    {
        if (!take(1))
            return 0;
        return static_cast<std::uint8_t>(data_[pos_ - 1]);
    }

    std::uint32_t u32()
    {
        if (!take(4))
            return 0;
        std::uint32_t value = 0;
        for (int i = 0; i < 4; ++i)
            value |= static_cast<std::uint32_t>(
                         static_cast<unsigned char>(data_[pos_ - 4 + i]))
                     << (8 * i);
        return value;
    }

    std::uint64_t u64()
    {
        if (!take(8))
            return 0;
        std::uint64_t value = 0;
        for (int i = 0; i < 8; ++i)
            value |= static_cast<std::uint64_t>(
                         static_cast<unsigned char>(data_[pos_ - 8 + i]))
                     << (8 * i);
        return value;
    }

    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64() { return std::bit_cast<double>(u64()); }

    std::string str()
    {
        const std::uint32_t size = u32();
        if (!take(size))
            return {};
        return std::string(data_ + pos_ - size, size);
    }

    /// Marks the decode failed (semantic validation, not just bounds).
    void fail() { ok_ = false; }

    /**
     * Advances past n bytes and returns a pointer to their start
     * (nullptr with the sticky flag set when out of range) — the
     * zero-copy carve the section framing uses.
     */
    const char *skip(std::size_t n)
    {
        if (!take(n))
            return nullptr;
        return data_ + pos_ - n;
    }

    const char *data() const { return data_; }

  private:
    bool take(std::size_t n)
    {
        if (!ok_ || size_ - pos_ < n) {
            ok_ = false;
            return false;
        }
        pos_ += n;
        return true;
    }

    const char *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

}  // namespace temp::persist
