/**
 * @file
 * The persistent memo tier: content-addressed warm-start snapshots.
 *
 * A snapshot is the on-disk image of the memo stack a long-lived
 * TempService accumulates — evaluator breakdown memos, full-step
 * report memos and the lowered-schedule cache — keyed by the same
 * canonical content keys the live caches use, so a fresh process
 * imports it and serves repeat work without re-measuring (the restart
 * counterpart of the in-process framework cache).
 *
 * File layout (all integers little-endian; see codec.hpp):
 *
 *   magic   "TEMPSNP\x01"                      8 bytes
 *   u32     format version (kFormatVersion)
 *   u64     contract fingerprint (kernel/SIMD numeric contract)
 *   u32     block count
 *   blocks  repeated:
 *     str   framework key  (api::waferKey + api::optionsKey)
 *     3 sections, each:
 *       u32  section tag ('BRKD' | 'STEP' | 'SCHD')
 *       u64  payload size
 *       u64  FNV-1a checksum of the payload
 *       payload bytes
 *
 * One block per framework: breakdowns and step reports are persisted
 * by value under their content keys; the schedule cache is persisted
 * as *task signatures only* and re-lowered at import time (routes bake
 * the fault state in, so import-by-replay is always correct under the
 * importing process's fault epoch).
 *
 * Validation contract: decode verifies magic, version, contract
 * fingerprint, per-section checksums and exact payload consumption.
 * Any mismatch — truncation, bit flips, a snapshot written by an
 * incompatible build — fails the whole load; callers degrade to a cold
 * start and bump a counter. A valid snapshot from a *different wafer*
 * simply carries framework keys no request ever matches: it stages
 * harmlessly and the process cold-starts, never imports wrong values.
 */
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cost/cost_model.hpp"
#include "net/collective.hpp"
#include "sim/perf_report.hpp"

namespace temp::persist {

/// Format version; bump on any layout change (old files cold-start).
inline constexpr std::uint32_t kFormatVersion = 1;

/// The serialized memo contents of one framework, addressed by the
/// same canonical key the service's framework cache uses.
struct MemoBlock
{
    std::string framework_key;
    /// CachingEvaluator memo: evalKey -> breakdown, by value.
    std::vector<std::pair<std::string, cost::OpCostBreakdown>> breakdowns;
    /// StepEvaluator memo: stepKey -> report, by value.
    std::vector<std::pair<std::string, sim::PerfReport>> step_reports;
    /// ScheduleCache contents as content signatures (re-lowered at
    /// import under the live fault epoch).
    std::vector<net::CollectiveTask> schedule_tasks;

    bool empty() const
    {
        return breakdowns.empty() && step_reports.empty() &&
               schedule_tasks.empty();
    }
};

/// A full snapshot: one block per framework the process had warm.
struct Snapshot
{
    std::vector<MemoBlock> blocks;
};

/**
 * Fingerprint of the numeric contract a snapshot's values were
 * computed under. The repo's kernels guarantee bit-identical results
 * across SIMD on/off and thread counts, so runtime dispatch state is
 * deliberately *not* part of it — only properties that would make the
 * persisted bit patterns non-portable (double width/format, byte
 * order, the persist contract revision).
 */
std::uint64_t contractFingerprint();

/// Serializes a snapshot to its byte image.
std::string encodeSnapshot(const Snapshot &snapshot);

/**
 * Parses and validates a byte image.
 *
 * @return false with *error describing the first failure (magic,
 *         version, fingerprint, checksum, truncation); *out is left
 *         empty then — a failed load never yields partial contents.
 */
bool decodeSnapshot(const std::string &bytes, Snapshot *out,
                    std::string *error);

/// Writes a snapshot to a file (atomically: temp file + rename, so a
/// crash mid-write never corrupts an existing snapshot).
bool saveSnapshotFile(const std::string &path, const Snapshot &snapshot,
                      std::string *error);

/// Reads and validates a snapshot file.
bool loadSnapshotFile(const std::string &path, Snapshot *out,
                      std::string *error);

}  // namespace temp::persist
