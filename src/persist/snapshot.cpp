#include "persist/snapshot.hpp"

#include <bit>
#include <cstdio>
#include <cstring>

#include "persist/codec.hpp"

namespace temp::persist {

namespace {

constexpr char kMagic[8] = {'T', 'E', 'M', 'P', 'S', 'N', 'P', '\x01'};

// Section tags read as their ASCII name in a little-endian hex dump.
constexpr std::uint32_t kTagBreakdowns = 0x444b5242;   // "BRKD"
constexpr std::uint32_t kTagStepReports = 0x50455453;  // "STEP"
constexpr std::uint32_t kTagSchedules = 0x44484353;    // "SCHD"

/// Ceiling on any count field before allocating: a corrupt or hostile
/// file must not size containers from garbage bytes. Every persisted
/// entry is multiple bytes, so a count beyond the remaining payload is
/// always invalid.
bool
plausibleCount(std::uint64_t count, std::size_t min_entry_bytes,
               const ByteReader &r)
{
    return count <= r.remaining() / min_entry_bytes;
}

void
putBreakdown(ByteWriter &w, const cost::OpCostBreakdown &b)
{
    w.u8(b.feasible ? 1 : 0);
    w.f64(b.fwd_time);
    w.f64(b.bwd_time);
    w.f64(b.step_comm_time);
    w.f64(b.comp_time);
    w.f64(b.collective_time);
    w.f64(b.stream_comm_time);
    w.f64(b.exposed_comm);
    w.f64(b.tail_latency);
    w.f64(b.d2d_link_bytes);
    w.f64(b.dram_bytes);
    w.f64(b.flops);
    w.f64(b.bw_utilization);
    w.i64(b.schedule_lowerings);
    w.i64(b.schedule_cache_hits);
}

cost::OpCostBreakdown
getBreakdown(ByteReader &r)
{
    cost::OpCostBreakdown b;
    b.feasible = r.u8() != 0;
    b.fwd_time = r.f64();
    b.bwd_time = r.f64();
    b.step_comm_time = r.f64();
    b.comp_time = r.f64();
    b.collective_time = r.f64();
    b.stream_comm_time = r.f64();
    b.exposed_comm = r.f64();
    b.tail_latency = r.f64();
    b.d2d_link_bytes = r.f64();
    b.dram_bytes = r.f64();
    b.flops = r.f64();
    b.bw_utilization = r.f64();
    b.schedule_lowerings = r.i64();
    b.schedule_cache_hits = r.i64();
    return b;
}

void
putReport(ByteWriter &w, const sim::PerfReport &p)
{
    w.u8(p.feasible ? 1 : 0);
    w.u8(p.oom ? 1 : 0);
    w.f64(p.step_time);
    w.f64(p.comp_time);
    w.f64(p.collective_time);
    w.f64(p.stream_comm_time);
    w.f64(p.exposed_comm);
    w.f64(p.reshard_time);
    w.f64(p.bubble_time);
    w.f64(p.grad_sync_time);
    w.f64(p.grad_sync_collective_time);
    w.f64(p.grad_sync_link_bytes);
    w.i32(p.grad_accum);
    w.u8(p.recompute ? 1 : 0);
    w.f64(p.tail_latency);
    w.f64(p.peak_mem_bytes);
    w.u32(static_cast<std::uint32_t>(p.peak_footprint.bytes.size()));
    for (double bytes : p.peak_footprint.bytes)
        w.f64(bytes);
    w.f64(p.energy.compute_j);
    w.f64(p.energy.dram_j);
    w.f64(p.energy.d2d_j);
    w.f64(p.energy.static_j);
    w.f64(p.avg_power_w);
    w.f64(p.power_efficiency);
    w.f64(p.bw_utilization);
    w.f64(p.total_flops);
    w.f64(p.throughput_tokens_per_s);
    w.i64(p.schedule_lowerings);
    w.i64(p.schedule_cache_hits);
    w.str(p.strategy_desc);
}

sim::PerfReport
getReport(ByteReader &r)
{
    sim::PerfReport p;
    p.feasible = r.u8() != 0;
    p.oom = r.u8() != 0;
    p.step_time = r.f64();
    p.comp_time = r.f64();
    p.collective_time = r.f64();
    p.stream_comm_time = r.f64();
    p.exposed_comm = r.f64();
    p.reshard_time = r.f64();
    p.bubble_time = r.f64();
    p.grad_sync_time = r.f64();
    p.grad_sync_collective_time = r.f64();
    p.grad_sync_link_bytes = r.f64();
    p.grad_accum = r.i32();
    p.recompute = r.u8() != 0;
    p.tail_latency = r.f64();
    p.peak_mem_bytes = r.f64();
    // A MemClass-count mismatch means the writer's memory taxonomy
    // differs from ours: the report cannot be represented here.
    if (r.u32() != p.peak_footprint.bytes.size()) {
        r.fail();
        return p;
    }
    for (double &bytes : p.peak_footprint.bytes)
        bytes = r.f64();
    p.energy.compute_j = r.f64();
    p.energy.dram_j = r.f64();
    p.energy.d2d_j = r.f64();
    p.energy.static_j = r.f64();
    p.avg_power_w = r.f64();
    p.power_efficiency = r.f64();
    p.bw_utilization = r.f64();
    p.total_flops = r.f64();
    p.throughput_tokens_per_s = r.f64();
    p.schedule_lowerings = r.i64();
    p.schedule_cache_hits = r.i64();
    p.strategy_desc = r.str();
    return p;
}

void
putTask(ByteWriter &w, const net::CollectiveTask &task)
{
    w.u8(static_cast<std::uint8_t>(task.kind));
    w.i32(task.tag);
    w.f64(task.bytes);
    w.u32(static_cast<std::uint32_t>(task.group.size()));
    for (net::DieId die : task.group)
        w.i32(die);
}

net::CollectiveTask
getTask(ByteReader &r)
{
    net::CollectiveTask task;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(net::CollectiveKind::P2P)) {
        r.fail();
        return task;
    }
    task.kind = static_cast<net::CollectiveKind>(kind);
    task.tag = r.i32();
    task.bytes = r.f64();
    const std::uint32_t members = r.u32();
    if (!plausibleCount(members, sizeof(std::int32_t), r)) {
        r.fail();
        return task;
    }
    task.group.reserve(members);
    for (std::uint32_t i = 0; i < members; ++i)
        task.group.push_back(r.i32());
    return task;
}

std::string
encodeBreakdownSection(const MemoBlock &block)
{
    ByteWriter w;
    w.u64(block.breakdowns.size());
    for (const auto &[key, breakdown] : block.breakdowns) {
        w.str(key);
        putBreakdown(w, breakdown);
    }
    return w.take();
}

std::string
encodeStepSection(const MemoBlock &block)
{
    ByteWriter w;
    w.u64(block.step_reports.size());
    for (const auto &[key, report] : block.step_reports) {
        w.str(key);
        putReport(w, report);
    }
    return w.take();
}

std::string
encodeScheduleSection(const MemoBlock &block)
{
    ByteWriter w;
    w.u64(block.schedule_tasks.size());
    for (const net::CollectiveTask &task : block.schedule_tasks)
        putTask(w, task);
    return w.take();
}

/// Frames one section: tag, payload size, checksum, payload bytes.
void
putSection(ByteWriter &w, std::uint32_t tag, const std::string &payload)
{
    w.u32(tag);
    w.u64(payload.size());
    w.u64(fnv1aBytes(payload.data(), payload.size()));
    for (char c : payload)
        w.u8(static_cast<std::uint8_t>(c));
}

/**
 * Unframes one section: checks the tag, carves the payload out of the
 * outer reader and verifies its checksum. Returns a reader over the
 * payload; any failure poisons the outer reader.
 */
ByteReader
getSection(ByteReader &r, std::uint32_t expected_tag)
{
    const std::uint32_t tag = r.u32();
    const std::uint64_t size = r.u64();
    const std::uint64_t checksum = r.u64();
    if (tag != expected_tag || size > r.remaining()) {
        r.fail();
        return ByteReader(nullptr, 0);
    }
    // Carve the payload span out of the outer buffer (no copy).
    const char *base = r.skip(size);
    if (base == nullptr ||
        fnv1aBytes(base, size) != checksum) {
        r.fail();
        return ByteReader(nullptr, 0);
    }
    return ByteReader(base, size);
}

bool
decodeBlock(ByteReader &r, MemoBlock *block)
{
    block->framework_key = r.str();

    ByteReader brkd = getSection(r, kTagBreakdowns);
    const std::uint64_t n_breakdowns = brkd.u64();
    // One breakdown entry is at least its fixed fields plus the key's
    // length prefix.
    if (!plausibleCount(n_breakdowns, 4 + 1 + 12 * 8 + 2 * 8, brkd))
        return false;
    block->breakdowns.reserve(n_breakdowns);
    for (std::uint64_t i = 0; i < n_breakdowns && brkd.ok(); ++i) {
        std::string key = brkd.str();
        block->breakdowns.emplace_back(std::move(key),
                                       getBreakdown(brkd));
    }
    if (!brkd.ok() || !brkd.atEnd() || !r.ok())
        return false;

    ByteReader step = getSection(r, kTagStepReports);
    const std::uint64_t n_reports = step.u64();
    if (!plausibleCount(n_reports, 4 + 3 + 10 * 8, step))
        return false;
    block->step_reports.reserve(n_reports);
    for (std::uint64_t i = 0; i < n_reports && step.ok(); ++i) {
        std::string key = step.str();
        block->step_reports.emplace_back(std::move(key),
                                         getReport(step));
    }
    if (!step.ok() || !step.atEnd() || !r.ok())
        return false;

    ByteReader schd = getSection(r, kTagSchedules);
    const std::uint64_t n_tasks = schd.u64();
    if (!plausibleCount(n_tasks, 1 + 4 + 8 + 4, schd))
        return false;
    block->schedule_tasks.reserve(n_tasks);
    for (std::uint64_t i = 0; i < n_tasks && schd.ok(); ++i)
        block->schedule_tasks.push_back(getTask(schd));
    return schd.ok() && schd.atEnd() && r.ok();
}

}  // namespace

std::uint64_t
contractFingerprint()
{
    // Only properties that would make persisted bit patterns
    // non-portable: the contract revision, double width, byte order
    // and the MemClass taxonomy size. Runtime SIMD mode and thread
    // count are excluded by design — the kernels guarantee
    // bit-identical values across them.
    std::uint64_t hash = fnv1aBytes("temp-persist-contract-v1", 24);
    const std::uint8_t probe[3] = {
        static_cast<std::uint8_t>(sizeof(double)),
        static_cast<std::uint8_t>(
            std::endian::native == std::endian::little ? 1 : 2),
        static_cast<std::uint8_t>(mem::MemoryFootprint{}.bytes.size()),
    };
    return fnv1aBytes(probe, sizeof(probe), hash);
}

std::string
encodeSnapshot(const Snapshot &snapshot)
{
    ByteWriter w;
    for (char c : kMagic)
        w.u8(static_cast<std::uint8_t>(c));
    w.u32(kFormatVersion);
    w.u64(contractFingerprint());
    w.u32(static_cast<std::uint32_t>(snapshot.blocks.size()));
    for (const MemoBlock &block : snapshot.blocks) {
        w.str(block.framework_key);
        putSection(w, kTagBreakdowns, encodeBreakdownSection(block));
        putSection(w, kTagStepReports, encodeStepSection(block));
        putSection(w, kTagSchedules, encodeScheduleSection(block));
    }
    return w.take();
}

bool
decodeSnapshot(const std::string &bytes, Snapshot *out,
               std::string *error)
{
    out->blocks.clear();
    auto failed = [&](const char *why) {
        out->blocks.clear();
        if (error != nullptr)
            *error = why;
        return false;
    };

    ByteReader r(bytes);
    char magic[8] = {};
    for (char &c : magic)
        c = static_cast<char>(r.u8());
    if (!r.ok() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return failed("bad magic (not a TEMP snapshot)");
    if (r.u32() != kFormatVersion)
        return failed("format version mismatch");
    if (r.u64() != contractFingerprint())
        return failed("numeric-contract fingerprint mismatch");
    const std::uint32_t n_blocks = r.u32();
    if (!r.ok() || !plausibleCount(n_blocks, 4 + 3 * (4 + 8 + 8), r))
        return failed("truncated snapshot header");
    out->blocks.resize(n_blocks);
    for (std::uint32_t i = 0; i < n_blocks; ++i) {
        if (!decodeBlock(r, &out->blocks[i]))
            return failed("corrupt snapshot block (checksum or "
                          "structure mismatch)");
    }
    if (!r.atEnd())
        return failed("trailing bytes after last block");
    return true;
}

bool
saveSnapshotFile(const std::string &path, const Snapshot &snapshot,
                 std::string *error)
{
    const std::string bytes = encodeSnapshot(snapshot);
    const std::string tmp = path + ".tmp";
    std::FILE *file = std::fopen(tmp.c_str(), "wb");
    if (file == nullptr) {
        if (error != nullptr)
            *error = "cannot open " + tmp + " for writing";
        return false;
    }
    const bool written =
        std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size();
    const bool closed = std::fclose(file) == 0;
    if (!written || !closed) {
        std::remove(tmp.c_str());
        if (error != nullptr)
            *error = "short write to " + tmp;
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        if (error != nullptr)
            *error = "cannot rename " + tmp + " to " + path;
        return false;
    }
    return true;
}

bool
loadSnapshotFile(const std::string &path, Snapshot *out,
                 std::string *error)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
        if (error != nullptr)
            *error = "cannot open " + path;
        return false;
    }
    std::string bytes;
    char buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0)
        bytes.append(buf, n);
    const bool read_ok = std::ferror(file) == 0;
    std::fclose(file);
    if (!read_ok) {
        if (error != nullptr)
            *error = "read error on " + path;
        return false;
    }
    return decodeSnapshot(bytes, out, error);
}

}  // namespace temp::persist
