/**
 * @file
 * HBM timing and energy model (Ramulator-lite).
 *
 * The paper integrates Ramulator for "fast and scalable DRAM modeling" of
 * memory occupancy and access latency. For the cost model's purposes what
 * matters is sustained bandwidth, first-access latency, access-pattern
 * efficiency and energy per byte — all captured here analytically.
 */
#pragma once

#include "hw/config.hpp"

namespace temp::mem {

/// How an operator walks DRAM; determines sustained-bandwidth efficiency.
enum class AccessPattern
{
    Sequential,  ///< streaming reads/writes, near-peak bandwidth
    Strided,     ///< blocked GEMM operand fetches, partial row-buffer hits
    Random,      ///< gather/scatter, row-buffer thrashing
};

/// Timing/energy estimates for one HBM stack.
class HbmModel
{
  public:
    explicit HbmModel(const hw::HbmConfig &config) : config_(config) {}

    /// Sustained bandwidth under the given access pattern.
    double sustainedBandwidth(AccessPattern pattern) const;

    /// Time to transfer `bytes` to/from DRAM under the given pattern.
    double accessTime(double bytes,
                      AccessPattern pattern = AccessPattern::Sequential) const;

    /// Energy to move `bytes` across the HBM interface.
    double accessEnergy(double bytes) const
    {
        return bytes * config_.joulesPerByte();
    }

    const hw::HbmConfig &config() const { return config_; }

    /// Row-buffer efficiency factors applied to peak bandwidth.
    static constexpr double kSequentialEfficiency = 0.92;
    static constexpr double kStridedEfficiency = 0.62;
    static constexpr double kRandomEfficiency = 0.18;

  private:
    hw::HbmConfig config_;
};

}  // namespace temp::mem
