/**
 * @file
 * Per-die memory accounting with OOM detection.
 *
 * Training state is tracked in the categories the paper's Fig. 4(c)
 * breaks memory down into: weights, gradients, optimizer state,
 * activations, plus communication buffers introduced by the parallelism
 * (replicas, streaming buffers).
 */
#pragma once

#include <array>
#include <string>
#include <vector>

#include "hw/topology.hpp"

namespace temp::mem {

/// Memory categories mirrored from Fig. 4(c).
enum class MemClass
{
    Weights = 0,
    Gradients,
    OptimizerState,
    Activations,
    CommBuffers,
    Count
};

/// Returns the printable name of a memory class.
const char *memClassName(MemClass cls);

/// Byte totals per memory class for one die (or averaged per die).
struct MemoryFootprint
{
    std::array<double, static_cast<std::size_t>(MemClass::Count)> bytes{};

    double &operator[](MemClass cls)
    {
        return bytes[static_cast<std::size_t>(cls)];
    }
    double operator[](MemClass cls) const
    {
        return bytes[static_cast<std::size_t>(cls)];
    }

    /// Sum across all classes.
    double total() const;

    /// Element-wise sum.
    MemoryFootprint operator+(const MemoryFootprint &other) const;

    /// Element-wise scaling (e.g. layers * per-layer footprint).
    MemoryFootprint scaled(double factor) const;
};

/**
 * Tracks live and peak memory per die against a capacity, flagging OOM.
 *
 * The simulator allocates/releases as it walks the training step
 * (activations grow through forward, shrink through backward); the peak
 * is what Fig. 13's memory-usage bars report.
 */
class MemoryLedger
{
  public:
    MemoryLedger(int die_count, double capacity_bytes);

    /// Allocates bytes of the given class on a die.
    void allocate(hw::DieId die, MemClass cls, double bytes);

    /// Releases bytes of the given class on a die.
    void release(hw::DieId die, MemClass cls, double bytes);

    /// Current live bytes on a die.
    double liveBytes(hw::DieId die) const;

    /// Peak live bytes seen on a die.
    double peakBytes(hw::DieId die) const;

    /// Highest per-die peak across the wafer.
    double maxPeakBytes() const;

    /// Per-class breakdown at the moment of a die's peak.
    const MemoryFootprint &peakFootprint(hw::DieId die) const;

    /// True if any die ever exceeded capacity.
    bool oom() const { return oom_; }

    /// Dies that exceeded capacity.
    std::vector<hw::DieId> oomDies() const;

    double capacity() const { return capacity_; }
    int dieCount() const { return static_cast<int>(live_.size()); }

  private:
    double capacity_;
    std::vector<MemoryFootprint> live_;
    std::vector<MemoryFootprint> peak_snapshot_;
    std::vector<double> peak_;
    bool oom_ = false;
};

}  // namespace temp::mem
