#include "mem/hbm_model.hpp"

namespace temp::mem {

double
HbmModel::sustainedBandwidth(AccessPattern pattern) const
{
    double efficiency = kSequentialEfficiency;
    switch (pattern) {
      case AccessPattern::Sequential:
        efficiency = kSequentialEfficiency;
        break;
      case AccessPattern::Strided:
        efficiency = kStridedEfficiency;
        break;
      case AccessPattern::Random:
        efficiency = kRandomEfficiency;
        break;
    }
    return config_.bandwidth_bytes_per_s * efficiency;
}

double
HbmModel::accessTime(double bytes, AccessPattern pattern) const
{
    if (bytes <= 0.0)
        return 0.0;
    return config_.latency_s + bytes / sustainedBandwidth(pattern);
}

}  // namespace temp::mem
