#include "mem/memory_ledger.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace temp::mem {

const char *
memClassName(MemClass cls)
{
    switch (cls) {
      case MemClass::Weights: return "weights";
      case MemClass::Gradients: return "gradients";
      case MemClass::OptimizerState: return "optimizer";
      case MemClass::Activations: return "activations";
      case MemClass::CommBuffers: return "comm-buffers";
      case MemClass::Count: break;
    }
    return "?";
}

double
MemoryFootprint::total() const
{
    double sum = 0.0;
    for (double b : bytes)
        sum += b;
    return sum;
}

MemoryFootprint
MemoryFootprint::operator+(const MemoryFootprint &other) const
{
    MemoryFootprint out;
    for (std::size_t i = 0; i < bytes.size(); ++i)
        out.bytes[i] = bytes[i] + other.bytes[i];
    return out;
}

MemoryFootprint
MemoryFootprint::scaled(double factor) const
{
    MemoryFootprint out;
    for (std::size_t i = 0; i < bytes.size(); ++i)
        out.bytes[i] = bytes[i] * factor;
    return out;
}

MemoryLedger::MemoryLedger(int die_count, double capacity_bytes)
    : capacity_(capacity_bytes),
      live_(die_count),
      peak_snapshot_(die_count),
      peak_(die_count, 0.0)
{
}

void
MemoryLedger::allocate(hw::DieId die, MemClass cls, double bytes)
{
    if (die < 0 || die >= dieCount())
        panic("MemoryLedger::allocate: die %d out of range", die);
    if (bytes < 0.0)
        panic("MemoryLedger::allocate: negative bytes");
    live_[die][cls] += bytes;
    const double total = live_[die].total();
    if (total > peak_[die]) {
        peak_[die] = total;
        peak_snapshot_[die] = live_[die];
    }
    if (total > capacity_)
        oom_ = true;
}

void
MemoryLedger::release(hw::DieId die, MemClass cls, double bytes)
{
    if (die < 0 || die >= dieCount())
        panic("MemoryLedger::release: die %d out of range", die);
    live_[die][cls] = std::max(0.0, live_[die][cls] - bytes);
}

double
MemoryLedger::liveBytes(hw::DieId die) const
{
    return live_[die].total();
}

double
MemoryLedger::peakBytes(hw::DieId die) const
{
    return peak_[die];
}

double
MemoryLedger::maxPeakBytes() const
{
    double best = 0.0;
    for (double p : peak_)
        best = std::max(best, p);
    return best;
}

const MemoryFootprint &
MemoryLedger::peakFootprint(hw::DieId die) const
{
    return peak_snapshot_[die];
}

std::vector<hw::DieId>
MemoryLedger::oomDies() const
{
    std::vector<hw::DieId> dies;
    for (int die = 0; die < dieCount(); ++die)
        if (peak_[die] > capacity_)
            dies.push_back(die);
    return dies;
}

}  // namespace temp::mem
