/**
 * @file
 * Bidirectional tensor-stream orchestration (Alg. 1 / Fig. 8).
 *
 * The paper's pseudocode contains off-by-one index errors (sends
 * addressed to die -1 / die N); this implementation re-derives the
 * schedule from first principles and matches the paper's worked N=4
 * example (Fig. 8c) exactly:
 *
 *  - `subT[i]` starts on chain slot i;
 *  - at round t, slot s computes with `subT[(s+t) mod N]` when
 *    s < N/2, else with `subT[(s-t+N) mod N]`;
 *  - concurrently, slot s relays `subT[s+t]` downward to s-1 (when
 *    s >= 1 and s+t <= N-1) and `subT[s-t]` upward to s+1 (when
 *    s <= N-2 and s-t >= 0).
 *
 * Properties (validated by simulation in validate() and the tests):
 * every transfer is exactly one chain hop; each slot computes one
 * distinct sub-output per round; per round each directed chain link
 * carries exactly one sub-tensor; after N rounds every slot has used
 * all N sub-tensors. No wrap-around (torus) link is ever needed — the
 * whole point of TATP on a wafer (Sec. V).
 */
#pragma once

#include <string>
#include <vector>

namespace temp::tatp {

/// A compute assignment: chain slot s works on sub-tensor `subtensor`.
struct ComputeTask
{
    int slot = 0;
    int subtensor = 0;
};

/// A one-hop relay between adjacent chain slots.
struct TransferTask
{
    int from_slot = 0;
    int to_slot = 0;
    int subtensor = 0;
};

/// All activity of one round.
struct RoundSchedule
{
    std::vector<ComputeTask> computes;
    std::vector<TransferTask> transfers;
};

/// Result of the buffer-accurate feasibility simulation.
struct ValidationResult
{
    bool ok = false;
    /// Highest number of sub-tensors simultaneously buffered on any slot
    /// (including the slot's own resident shard).
    int peak_buffers = 0;
    /// Peak buffers on each slot.
    std::vector<int> per_slot_peak;
    std::string error;
};

/**
 * Generates and validates the bidirectional relay schedule for an
 * N-slot chain.
 */
class BidirectionalOrchestrator
{
  public:
    explicit BidirectionalOrchestrator(int n);

    int degree() const { return n_; }

    /// The N rounds of the schedule.
    const std::vector<RoundSchedule> &rounds() const { return rounds_; }

    /// The sub-tensor slot s computes with at round t.
    static int computeSubtensor(int n, int slot, int t);

    /**
     * Simulates buffer contents round by round: verifies that every
     * computed/sent sub-tensor is present when needed, that transfers
     * are one hop, and reports peak buffering (drives the comm-buffer
     * memory model).
     */
    ValidationResult validate() const;

    /// Peak buffers for a given degree (cached convenience wrapper).
    static int peakBuffersForDegree(int n);

  private:
    int n_;
    std::vector<RoundSchedule> rounds_;
};

/**
 * The naive unidirectional ring orchestration (Fig. 8b top): slot s
 * forwards its current sub-tensor to slot (s+1) mod N every round.
 * On a physical chain the wrap transfer N-1 -> 0 spans N-1 hops — the
 * tail-latency pathology TATP eliminates.
 */
class NaiveRingOrchestrator
{
  public:
    explicit NaiveRingOrchestrator(int n);

    int degree() const { return n_; }
    const std::vector<RoundSchedule> &rounds() const { return rounds_; }

  private:
    int n_;
    std::vector<RoundSchedule> rounds_;
};

}  // namespace temp::tatp
