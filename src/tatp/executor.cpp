#include "tatp/executor.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace temp::tatp {

TatpExecutor::TatpExecutor(hw::D2dConfig d2d) : d2d_(d2d) {}

double
TatpExecutor::hopTransferTime(double bytes, int hops) const
{
    if (bytes <= 0.0 || hops <= 0)
        return 0.0;
    const double per_hop =
        bytes / d2d_.effectiveBandwidth(bytes) + d2d_.latency_s;
    return hops * per_hop;
}

TatpTiming
TatpExecutor::timePass(double flops_per_round, double bytes_per_round,
                       int rounds, const ChainInfo &chain,
                       double flops_per_s) const
{
    TatpTiming timing;
    if (rounds <= 0)
        return timing;
    if (flops_per_s <= 0.0)
        panic("TatpExecutor::timePass: non-positive compute rate");

    const double comp_round = flops_per_round / flops_per_s;
    // Per round, every chain step relays one sub-tensor in each
    // direction; the slowest (longest) step gates the round. Adjacent
    // (1-hop) relays pipeline across rounds, so their propagation
    // latency is a one-time fill, not a per-round charge; multi-hop
    // relays store-and-forward inside the round and cannot pipeline.
    double comm_round = 0.0;
    double fill = 0.0;
    if (rounds > 1) {
        const int worst_hop = std::max(1, chain.max_hop);
        if (worst_hop == 1) {
            comm_round = bytes_per_round /
                         d2d_.effectiveBandwidth(bytes_per_round);
            fill = hopTransferTime(bytes_per_round, 1);
        } else {
            comm_round = hopTransferTime(bytes_per_round, worst_hop);
        }
    }
    const double comm_round_ideal =
        rounds > 1 ? bytes_per_round /
                         d2d_.effectiveBandwidth(bytes_per_round)
                   : 0.0;

    timing.round_time_s =
        std::max(comp_round, comm_round) + kRoundOverheadS;
    timing.time_s = rounds * timing.round_time_s + fill;
    timing.comp_time_s = rounds * comp_round;
    timing.comm_time_s = rounds * comm_round;
    timing.exposed_comm_s =
        rounds * std::max(0.0, comm_round - comp_round);
    timing.tail_latency_s =
        rounds * std::max(0.0, std::max(comp_round, comm_round) -
                                   std::max(comp_round, comm_round_ideal));
    // Relay waves: sub-tensor k travels k hops down and N-1-k hops up,
    // so total sub-tensor-hops = N(N-1); scale by the chain's average
    // physical hops per step.
    const double n = rounds;
    const double avg_step_hops =
        chain.hops.empty()
            ? 1.0
            : static_cast<double>(chain.total_hops) /
                  static_cast<double>(chain.hops.size());
    timing.link_bytes =
        bytes_per_round * n * (n - 1.0) * std::max(1.0, avg_step_hops);
    timing.overlap_efficiency =
        timing.time_s > 0.0 ? timing.comp_time_s / timing.time_s : 1.0;
    return timing;
}

TatpTiming
TatpExecutor::timeNaiveRingPass(double flops_per_round,
                                double bytes_per_round, int rounds,
                                const RingInfo &ring,
                                double flops_per_s) const
{
    TatpTiming timing;
    if (rounds <= 0)
        return timing;

    const double comp_round = flops_per_round / flops_per_s;
    double comm_round = 0.0;
    if (rounds > 1) {
        const int worst_hop =
            std::max({1, ring.chain.max_hop, ring.wrap_hops});
        comm_round = hopTransferTime(bytes_per_round, worst_hop);
    }
    const double comm_round_ideal =
        rounds > 1 ? hopTransferTime(bytes_per_round, 1) : 0.0;

    timing.round_time_s =
        std::max(comp_round, comm_round) + kRoundOverheadS;
    timing.time_s = rounds * timing.round_time_s;
    timing.comp_time_s = rounds * comp_round;
    timing.comm_time_s = rounds * comm_round;
    timing.exposed_comm_s =
        rounds * std::max(0.0, comm_round - comp_round);
    timing.tail_latency_s =
        rounds * std::max(0.0, std::max(comp_round, comm_round) -
                                   std::max(comp_round, comm_round_ideal));
    const double n = rounds;
    const double ring_hops = static_cast<double>(ring.chain.total_hops +
                                                 ring.wrap_hops);
    const double steps = std::max<std::size_t>(1, ring.chain.hops.size() + 1);
    timing.link_bytes = bytes_per_round * n * (n - 1.0) *
                        std::max(1.0, ring_hops / steps);
    timing.overlap_efficiency =
        timing.time_s > 0.0 ? timing.comp_time_s / timing.time_s : 1.0;
    return timing;
}

net::CommSchedule
TatpExecutor::streamFlows(const parallel::TatpStream &stream,
                          const std::vector<ChainInfo> &groups,
                          const net::Router &router, bool backward) const
{
    net::CommSchedule sched;
    if (!stream.active || stream.degree <= 1)
        return sched;

    const double bytes =
        stream.bytes_per_round * (backward ? 2.0 : 1.0);
    const BidirectionalOrchestrator orch(stream.degree);

    for (std::size_t t = 0; t < orch.rounds().size(); ++t) {
        for (const ChainInfo &group : groups) {
            if (static_cast<int>(group.chain.size()) != stream.degree)
                panic("TatpExecutor::streamFlows: chain size %zu != degree "
                      "%d",
                      group.chain.size(), stream.degree);
            for (const TransferTask &x : orch.rounds()[t].transfers) {
                net::Flow flow;
                flow.src = group.chain[x.from_slot];
                flow.dst = group.chain[x.to_slot];
                flow.bytes = bytes;
                flow.route = router.safeRouteRef(flow.src, flow.dst);
                if (!flow.route.valid())
                    sched.feasible = false;
                flow.tag = parallel::axisTag(parallel::Axis::TATP);
                sched.addFlow(std::move(flow));
                sched.payload_bytes += bytes;
            }
        }
        sched.sealRound();
    }
    return sched;
}

}  // namespace temp::tatp
