#include "tatp/chain_mapper.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace temp::tatp {

ChainMapper::ChainMapper(const hw::MeshTopology &mesh) : mesh_(mesh) {}

ChainInfo
ChainMapper::analyzeChain(const std::vector<hw::DieId> &ordered) const
{
    ChainInfo info;
    info.chain = ordered;
    for (std::size_t i = 0; i + 1 < ordered.size(); ++i) {
        const int hops = mesh_.hopDistance(ordered[i], ordered[i + 1]);
        info.hops.push_back(hops);
        info.max_hop = std::max(info.max_hop, hops);
        info.total_hops += hops;
        if (hops != 1)
            info.contiguous = false;
    }
    return info;
}

RingInfo
ChainMapper::analyzeRing(const std::vector<hw::DieId> &ordered) const
{
    RingInfo info;
    info.chain = analyzeChain(ordered);
    if (ordered.size() >= 2) {
        info.wrap_hops = mesh_.hopDistance(ordered.back(), ordered.front());
        info.physical_ring = info.chain.contiguous && info.wrap_hops == 1;
        info.max_hop = std::max(info.chain.max_hop, info.wrap_hops);
    }
    return info;
}

std::vector<hw::DieId>
ChainMapper::orderAsChain(std::vector<hw::DieId> dies) const
{
    if (dies.size() <= 2)
        return dies;

    // Greedy nearest neighbour starting from the die with the fewest
    // in-set neighbours (an endpoint of the eventual chain).
    auto in_set_degree = [&](hw::DieId die) {
        int deg = 0;
        for (hw::DieId other : dies)
            if (other != die && mesh_.hopDistance(die, other) == 1)
                ++deg;
        return deg;
    };
    std::size_t start = 0;
    for (std::size_t i = 1; i < dies.size(); ++i)
        if (in_set_degree(dies[i]) < in_set_degree(dies[start]))
            start = i;

    std::vector<hw::DieId> chain;
    std::vector<bool> used(dies.size(), false);
    chain.push_back(dies[start]);
    used[start] = true;
    while (chain.size() < dies.size()) {
        const hw::DieId cur = chain.back();
        int best = -1;
        int best_dist = 0;
        for (std::size_t i = 0; i < dies.size(); ++i) {
            if (used[i])
                continue;
            const int dist = mesh_.hopDistance(cur, dies[i]);
            if (best < 0 || dist < best_dist) {
                best = static_cast<int>(i);
                best_dist = dist;
            }
        }
        chain.push_back(dies[best]);
        used[best] = true;
    }

    // 2-opt: reverse segments while that shortens the total hop length.
    auto seg_cost = [&](const std::vector<hw::DieId> &c) {
        int cost = 0;
        for (std::size_t i = 0; i + 1 < c.size(); ++i)
            cost += mesh_.hopDistance(c[i], c[i + 1]);
        return cost;
    };
    bool improved = true;
    int guard = 0;
    while (improved && guard++ < 64) {
        improved = false;
        for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
            for (std::size_t j = i + 1; j < chain.size(); ++j) {
                std::vector<hw::DieId> candidate = chain;
                std::reverse(candidate.begin() + i,
                             candidate.begin() + j + 1);
                if (seg_cost(candidate) < seg_cost(chain)) {
                    chain = std::move(candidate);
                    improved = true;
                }
            }
        }
    }
    return chain;
}

bool
ChainMapper::physicalRingExists(int rows, int cols)
{
    if (rows < 2 || cols < 2)
        return false;
    return (rows * cols) % 2 == 0;
}

}  // namespace temp::tatp
