/**
 * @file
 * Mapping TATP chains (and naive-TSPP rings) onto the physical mesh.
 *
 * TATP's bidirectional orchestration needs a physical *chain* of
 * adjacent dies (1 hop between consecutive slots). The GroupLayout's
 * snake enumeration produces such chains for the innermost axis, but
 * arbitrary groups (tetris-shaped allocations, Fig. 7a) and fault-broken
 * wafers do not — this module quantifies the resulting multi-hop
 * penalty and re-orders scattered groups into the best achievable chain.
 */
#pragma once

#include <vector>

#include "hw/topology.hpp"
#include "net/route.hpp"

namespace temp::tatp {

/// Physical realisation quality of an ordered chain of dies.
struct ChainInfo
{
    std::vector<hw::DieId> chain;
    /// Physical hops between consecutive chain slots (size N-1).
    std::vector<int> hops;
    /// True when every consecutive pair is physically adjacent.
    bool contiguous = true;
    /// Largest inter-slot hop count (tail-latency driver).
    int max_hop = 0;
    /// Sum of inter-slot hops (fabric occupancy driver).
    int total_hops = 0;
};

/// Physical realisation quality of an ordered logical ring (naive TSPP).
struct RingInfo
{
    ChainInfo chain;
    /// Hops of the wrap-around transfer (last -> first slot).
    int wrap_hops = 0;
    /// True when the wrap is also a single physical hop (physical ring).
    bool physical_ring = false;
    /// Largest hop count including the wrap.
    int max_hop = 0;
};

/// Chain/ring feasibility analysis on a mesh.
class ChainMapper
{
  public:
    explicit ChainMapper(const hw::MeshTopology &mesh);

    /// Analyses an ordered group as a TATP chain.
    ChainInfo analyzeChain(const std::vector<hw::DieId> &ordered) const;

    /// Analyses an ordered group as a logical ring (wrap included).
    RingInfo analyzeRing(const std::vector<hw::DieId> &ordered) const;

    /**
     * Re-orders an arbitrary die set into a short chain: greedy
     * nearest-neighbour construction followed by 2-opt improvement.
     * For a contiguous rectangular block this recovers a snake path
     * (all 1-hop); for tetris-shaped groups it minimises but cannot
     * eliminate multi-hop steps.
     */
    std::vector<hw::DieId> orderAsChain(std::vector<hw::DieId> dies) const;

    /**
     * True if a contiguous physical ring (Hamiltonian cycle) exists on
     * an r x c sub-grid: requires both sides >= 2 and an even cell
     * count. A 1 x N chain has no physical ring — the Fig. 7(b) case.
     */
    static bool physicalRingExists(int rows, int cols);

  private:
    const hw::MeshTopology &mesh_;
};

}  // namespace temp::tatp
