#include "tatp/orchestrator.hpp"

#include <algorithm>
#include <set>

#include "common/logging.hpp"

namespace temp::tatp {

int
BidirectionalOrchestrator::computeSubtensor(int n, int slot, int t)
{
    if (slot < n / 2)
        return (slot + t) % n;
    return (slot - t + n) % n;
}

BidirectionalOrchestrator::BidirectionalOrchestrator(int n) : n_(n)
{
    if (n < 1)
        fatal("BidirectionalOrchestrator: degree must be >= 1, got %d", n);

    rounds_.resize(n_);
    for (int t = 0; t < n_; ++t) {
        RoundSchedule &round = rounds_[t];
        for (int s = 0; s < n_; ++s) {
            round.computes.push_back(
                ComputeTask{s, computeSubtensor(n_, s, t)});
            // Downward relay wave: subT[k] departs slot k at t=0 and
            // moves one hop toward slot 0 per round.
            if (s >= 1 && s + t <= n_ - 1)
                round.transfers.push_back(TransferTask{s, s - 1, s + t});
            // Upward relay wave, mirror image.
            if (s <= n_ - 2 && s - t >= 0)
                round.transfers.push_back(TransferTask{s, s + 1, s - t});
        }
    }
}

ValidationResult
BidirectionalOrchestrator::validate() const
{
    ValidationResult result;
    result.per_slot_peak.assign(n_, 1);

    // Last round at which each (slot, subtensor) pair is needed, either
    // for compute or as a relay source; afterwards the buffer may drop it.
    std::vector<std::vector<int>> last_use(n_, std::vector<int>(n_, -1));
    for (int t = 0; t < n_; ++t) {
        for (const ComputeTask &c : rounds_[t].computes)
            last_use[c.slot][c.subtensor] =
                std::max(last_use[c.slot][c.subtensor], t);
        for (const TransferTask &x : rounds_[t].transfers)
            last_use[x.from_slot][x.subtensor] =
                std::max(last_use[x.from_slot][x.subtensor], t);
    }

    std::vector<std::set<int>> buffers(n_);
    for (int s = 0; s < n_; ++s)
        buffers[s].insert(s);

    for (int t = 0; t < n_; ++t) {
        const RoundSchedule &round = rounds_[t];
        // Every compute operand must already be resident.
        for (const ComputeTask &c : round.computes) {
            if (!buffers[c.slot].count(c.subtensor)) {
                result.error = "round " + std::to_string(t) + ": slot " +
                               std::to_string(c.slot) + " misses subT[" +
                               std::to_string(c.subtensor) + "]";
                return result;
            }
        }
        // Transfers must be one hop and source-resident; they deliver at
        // the end of the round.
        std::vector<std::pair<int, int>> deliveries;
        for (const TransferTask &x : round.transfers) {
            if (std::abs(x.from_slot - x.to_slot) != 1) {
                result.error = "multi-hop transfer in round " +
                               std::to_string(t);
                return result;
            }
            if (!buffers[x.from_slot].count(x.subtensor)) {
                result.error = "round " + std::to_string(t) + ": slot " +
                               std::to_string(x.from_slot) +
                               " relays absent subT[" +
                               std::to_string(x.subtensor) + "]";
                return result;
            }
            deliveries.emplace_back(x.to_slot, x.subtensor);
        }
        for (const auto &[slot, sub] : deliveries)
            buffers[slot].insert(sub);
        // Evict sub-tensors with no remaining use.
        for (int s = 0; s < n_; ++s) {
            for (auto it = buffers[s].begin(); it != buffers[s].end();) {
                if (last_use[s][*it] <= t)
                    it = buffers[s].erase(it);
                else
                    ++it;
            }
            result.per_slot_peak[s] = std::max(
                result.per_slot_peak[s], static_cast<int>(buffers[s].size()));
        }
    }

    // Completeness: every slot must have computed all N sub-outputs,
    // one per round (balance is implied by construction).
    for (int s = 0; s < n_; ++s) {
        std::set<int> computed;
        for (int t = 0; t < n_; ++t)
            computed.insert(computeSubtensor(n_, s, t));
        if (static_cast<int>(computed.size()) != n_) {
            result.error = "slot " + std::to_string(s) +
                           " computed only " +
                           std::to_string(computed.size()) + " sub-outputs";
            return result;
        }
    }

    result.peak_buffers =
        *std::max_element(result.per_slot_peak.begin(),
                          result.per_slot_peak.end());
    result.ok = true;
    return result;
}

int
BidirectionalOrchestrator::peakBuffersForDegree(int n)
{
    if (n <= 1)
        return 1;
    const BidirectionalOrchestrator orch(n);
    const ValidationResult result = orch.validate();
    if (!result.ok)
        panic("peakBuffersForDegree(%d): invalid schedule: %s", n,
              result.error.c_str());
    return result.peak_buffers;
}

NaiveRingOrchestrator::NaiveRingOrchestrator(int n) : n_(n)
{
    if (n < 1)
        fatal("NaiveRingOrchestrator: degree must be >= 1, got %d", n);
    rounds_.resize(n_);
    for (int t = 0; t < n_; ++t) {
        RoundSchedule &round = rounds_[t];
        for (int s = 0; s < n_; ++s) {
            // Slot s computes with the sub-tensor that has rotated to it.
            round.computes.push_back(ComputeTask{s, (s - t % n_ + n_) % n_});
            // And forwards it around the logical ring (wrap included).
            if (t + 1 < n_) {
                round.transfers.push_back(
                    TransferTask{s, (s + 1) % n_, (s - t % n_ + n_) % n_});
            }
        }
    }
}

}  // namespace temp::tatp
