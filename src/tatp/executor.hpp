/**
 * @file
 * TATP stream execution timing and flow generation.
 *
 * Transfers on the wafer are store-and-forward at message granularity
 * (each die's DMA receives a sub-tensor, then forwards it), so a
 * transfer spanning h physical hops costs h x (bytes/bw + latency) —
 * which is exactly why non-contiguous chains and naive-ring wrap
 * transfers produce the paper's O(N)-hop tail latency (Fig. 5a), and
 * why the bidirectional 1-hop relay eliminates it.
 */
#pragma once

#include "hw/config.hpp"
#include "net/collective.hpp"
#include "parallel/partitioner.hpp"
#include "tatp/chain_mapper.hpp"
#include "tatp/orchestrator.hpp"

namespace temp::tatp {

/// Timing of one TATP pass (forward or backward) on one group.
struct TatpTiming
{
    double time_s = 0.0;          ///< end-to-end pass time
    double comp_time_s = 0.0;     ///< pure compute (all rounds)
    double comm_time_s = 0.0;     ///< per-round comm x rounds
    double exposed_comm_s = 0.0;  ///< comm not hidden behind compute
    double round_time_s = 0.0;    ///< max(comp, comm) per round
    /// Extra time caused by multi-hop chain steps vs. a contiguous chain.
    double tail_latency_s = 0.0;
    /// Payload bytes x hops deposited on the fabric (energy accounting).
    double link_bytes = 0.0;
    /// comp_time / time: 1.0 means full communication hiding.
    double overlap_efficiency = 0.0;
};

/// Times TATP streams and lowers them to flows for contention analysis.
class TatpExecutor
{
  public:
    explicit TatpExecutor(hw::D2dConfig d2d);

    /**
     * Times one bidirectional streaming pass.
     *
     * @param flops_per_round Per-die FLOPs per round.
     * @param bytes_per_round One sub-tensor's size.
     * @param rounds Stream degree N.
     * @param chain Physical chain quality (hop counts).
     * @param flops_per_s Effective per-die compute throughput.
     */
    TatpTiming timePass(double flops_per_round, double bytes_per_round,
                        int rounds, const ChainInfo &chain,
                        double flops_per_s) const;

    /**
     * Times one naive unidirectional ring pass (the TSPP strawman): the
     * wrap transfer spans ring.wrap_hops hops and every round waits for
     * the slowest transfer.
     */
    TatpTiming timeNaiveRingPass(double flops_per_round,
                                 double bytes_per_round, int rounds,
                                 const RingInfo &ring,
                                 double flops_per_s) const;

    /**
     * Lowers a stream onto concrete flows (per round, per group) for
     * the traffic-conscious optimizer's global contention analysis.
     *
     * @param stream Partitioner-produced stream descriptor.
     * @param groups One ordered chain per TATP group.
     * @param router Route builder for the (possibly faulty) mesh.
     * @param backward Doubles the per-round volume (dO and W^T streams).
     */
    net::CommSchedule streamFlows(const parallel::TatpStream &stream,
                                  const std::vector<ChainInfo> &groups,
                                  const net::Router &router,
                                  bool backward) const;

    /// Store-and-forward time for one sub-tensor over h hops.
    double hopTransferTime(double bytes, int hops) const;

    /// Per-round software/DMA synchronisation overhead: issuing the
    /// round's transfer descriptors and synchronising the compute
    /// wavefront. This is what makes very high stream degrees (tiny
    /// rounds) lose throughput — the Fig. 9 decline beyond N ~ 16.
    static constexpr double kRoundOverheadS = 1.0e-6;

    const hw::D2dConfig &d2d() const { return d2d_; }

  private:
    hw::D2dConfig d2d_;
};

}  // namespace temp::tatp
