/**
 * @file
 * Training-step performance report: the record every evaluation figure
 * of the paper is plotted from (latency breakdown, memory, power,
 * bandwidth utilisation, throughput).
 */
#pragma once

#include <string>

#include "cost/power_model.hpp"
#include "mem/memory_ledger.hpp"

namespace temp::sim {

/// Result of simulating one training step of a model on a wafer system.
struct PerfReport
{
    bool feasible = true;  ///< false when faults partition required routes
    bool oom = false;      ///< peak per-die memory exceeded HBM capacity

    /// @{ Latency breakdown (seconds per training step).
    double step_time = 0.0;
    double comp_time = 0.0;        ///< pure compute
    double collective_time = 0.0;  ///< blocking collectives
    double stream_comm_time = 0.0; ///< TATP stream transfers (overlapped)
    double exposed_comm = 0.0;     ///< all communication not hidden
    double reshard_time = 0.0;     ///< inter-op spec transitions (Eq. 3)
    double bubble_time = 0.0;      ///< pipeline bubbles (multi-wafer)
    double grad_sync_time = 0.0;   ///< exposed gradient-sync share
    /// Full (unoverlapped) gradient-sync collective time and fabric
    /// occupancy; needed to compose gradient accumulation correctly
    /// (sync happens once per step, not per microbatch).
    double grad_sync_collective_time = 0.0;
    double grad_sync_link_bytes = 0.0;
    /// Gradient-accumulation factor chosen to fit activations in HBM.
    int grad_accum = 1;
    /// True when activation checkpointing (full recompute) was needed
    /// to fit; adds ~1/3 extra compute during backward.
    bool recompute = false;
    double tail_latency = 0.0;     ///< multi-hop stream penalties
    /// @}

    /// @{ Memory (worst die).
    double peak_mem_bytes = 0.0;
    mem::MemoryFootprint peak_footprint;
    /// @}

    /// @{ Power/energy.
    cost::EnergyBreakdown energy;
    double avg_power_w = 0.0;
    double power_efficiency = 0.0;  ///< useful FLOPs per joule
    /// @}

    double bw_utilization = 0.0;       ///< during comm phases
    double total_flops = 0.0;          ///< useful FLOPs per step
    double throughput_tokens_per_s = 0.0;

    /**
     * Schedule-cache accounting of producing this report: collective
     * lowerings performed vs. served from the shared ScheduleCache
     * across every op costing and the merged grad-sync timing. The
     * split is thread-schedule dependent (see OpCostBreakdown); only
     * the sum is deterministic.
     */
    long schedule_lowerings = 0;
    long schedule_cache_hits = 0;

    std::string strategy_desc;  ///< human-readable strategy summary

    /// Relative throughput vs. a reference report (>1 means faster).
    double speedupOver(const PerfReport &reference) const
    {
        if (step_time <= 0.0 || reference.step_time <= 0.0)
            return 0.0;
        return reference.step_time / step_time;
    }
};

}  // namespace temp::sim
