#include "sim/trainer_sim.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.hpp"
#include "cost/breakdown_reduce.hpp"

namespace temp::sim {

using parallel::GroupLayout;
using parallel::OpExecution;
using parallel::ParallelSpec;

TrainingSimulator::TrainingSimulator(const hw::Wafer &wafer,
                                     tcme::MappingPolicy policy,
                                     parallel::TrainingOptions options)
    : wafer_(wafer), cost_model_(wafer, policy, options),
      layout_cache_(cost_model_)
{
}

PerfReport
TrainingSimulator::simulate(const model::ComputeGraph &graph,
                            const ParallelSpec &spec) const
{
    return simulate(graph,
                    std::vector<ParallelSpec>(graph.opCount(), spec));
}

PerfReport
TrainingSimulator::simulate(const model::ComputeGraph &graph,
                            const std::vector<ParallelSpec> &per_op_specs)
    const
{
    if (static_cast<int>(per_op_specs.size()) != graph.opCount())
        fatal("TrainingSimulator: %zu specs for %d ops",
              per_op_specs.size(), graph.opCount());

    const model::ModelConfig &cfg = graph.config();
    const double full_tokens =
        static_cast<double>(cfg.batch) * cfg.seq;

    // Largest batch-splitting degree bounds the accumulation factor
    // (every DP/FSDP replica needs at least one sample per microbatch).
    int max_bsplit = 1;
    for (const ParallelSpec &spec : per_op_specs)
        max_bsplit = std::max(max_bsplit, spec.dp * spec.fsdp);
    const int max_accum = std::max(1, cfg.batch / max_bsplit);

    // Schedule-cache accounting spans every microbatch probe this call
    // runs, including the ones whose composition is discarded.
    long sched_lowerings = 0;
    long sched_hits = 0;
    const auto charge_sched = [&](PerfReport &report) {
        sched_lowerings += report.schedule_lowerings;
        sched_hits += report.schedule_cache_hits;
        report.schedule_lowerings = sched_lowerings;
        report.schedule_cache_hits = sched_hits;
    };

    PerfReport micro = simulateMicro(graph, per_op_specs);
    if (!micro.feasible) {
        charge_sched(micro);
        return micro;
    }
    PerfReport full = composeAccum(micro, 1, full_tokens);
    charge_sched(full);
    if (!full.oom || max_accum == 1)
        return full;

    // Activations shrink ~1/accum; static state does not. Jump straight
    // to the smallest power-of-two factor that can fit, then verify.
    const double capacity = wafer_.config().hbm.capacity_bytes;
    const double static_bytes =
        full.peak_mem_bytes -
        full.peak_footprint[mem::MemClass::Activations];
    int accum = 1;
    if (static_bytes < capacity) {
        const double act = full.peak_footprint[mem::MemClass::Activations];
        const double needed = act / (capacity - static_bytes);
        while (accum < max_accum &&
               static_cast<double>(accum) < needed &&
               cfg.batch % (accum * 2) == 0) {
            accum *= 2;
        }
    } else {
        accum = max_accum;  // cannot fit regardless; report honestly
    }
    if (accum == 1)
        return full;

    const model::ComputeGraph micro_graph = model::ComputeGraph::transformer(
        cfg.withSeqBatch(cfg.seq, cfg.batch / accum));
    PerfReport micro2 = simulateMicro(micro_graph, per_op_specs);
    if (!micro2.feasible) {
        charge_sched(micro2);
        return micro2;
    }
    PerfReport full2 = composeAccum(micro2, accum, full_tokens);
    charge_sched(full2);
    if (!full2.oom)
        return full2;

    // Last resort: activation checkpointing at maximum accumulation.
    const int final_accum = std::max(accum, max_accum);
    const model::ComputeGraph ckpt_graph = model::ComputeGraph::transformer(
        cfg.withSeqBatch(cfg.seq, cfg.batch / final_accum));
    PerfReport micro3 =
        simulateMicro(ckpt_graph, per_op_specs, /*recompute=*/true);
    if (!micro3.feasible) {
        charge_sched(micro3);
        return micro3;
    }
    PerfReport full3 = composeAccum(micro3, final_accum, full_tokens);
    charge_sched(full3);
    full2.schedule_lowerings = sched_lowerings;
    full2.schedule_cache_hits = sched_hits;
    // Keep whichever picture is honest: if checkpointing fits, use it.
    return full3.oom && full3.step_time > full2.step_time ? full2 : full3;
}

PerfReport
TrainingSimulator::composeAccum(const PerfReport &micro, int accum,
                                double full_tokens) const
{
    PerfReport full = micro;
    const double a = accum;
    full.grad_accum = accum;
    full.step_time =
        (micro.step_time - micro.grad_sync_time) * a + micro.grad_sync_time;
    full.comp_time = micro.comp_time * a;
    full.collective_time =
        (micro.collective_time - micro.grad_sync_collective_time) * a +
        micro.grad_sync_collective_time;
    full.stream_comm_time = micro.stream_comm_time * a;
    full.exposed_comm =
        (micro.exposed_comm - micro.grad_sync_time) * a +
        micro.grad_sync_time;
    full.tail_latency = micro.tail_latency * a;
    full.reshard_time = micro.reshard_time * a;
    full.total_flops = micro.total_flops * a;

    // Gradient-sync fabric traffic happens once per step, the rest per
    // microbatch.
    const double sync_j = micro.grad_sync_link_bytes *
                          wafer_.config().d2d.joulesPerByte();
    full.energy.compute_j = micro.energy.compute_j * a;
    full.energy.dram_j = micro.energy.dram_j * a;
    full.energy.d2d_j = (micro.energy.d2d_j - sync_j) * a + sync_j;
    full.energy.static_j = cost_model_.powerModel().staticPowerPerDie() *
                           wafer_.dieCount() * full.step_time;
    full.avg_power_w = cost_model_.powerModel().averagePower(
        full.energy, full.step_time);
    full.power_efficiency = cost_model_.powerModel().powerEfficiency(
        full.total_flops, full.energy);

    full.throughput_tokens_per_s =
        full.step_time > 0.0 ? full_tokens / full.step_time : 0.0;
    // Memory (peak per die) is the microbatch picture; re-evaluate OOM.
    full.oom = full.peak_mem_bytes > wafer_.config().hbm.capacity_bytes;
    return full;
}

PerfReport
TrainingSimulator::simulateMicro(const model::ComputeGraph &graph,
                                 const std::vector<ParallelSpec>
                                     &per_op_specs,
                                 bool recompute) const
{
    PerfReport report;
    report.recompute = recompute;

    // Layouts are shared between ops with identical specs and, via the
    // simulator's persistent content-keyed cache, across simulate()
    // calls (the GA fitness loop re-simulates recurring specs). The
    // shared_ptrs are pinned for the whole simulation: under a finite
    // layout budget the cache may evict an entry while this pass still
    // uses it, so borrowing a bare reference out of the lookup would
    // dangle.
    std::vector<std::shared_ptr<const GroupLayout>> pinned_layouts;
    auto layout_for = [&](const ParallelSpec &spec) -> const GroupLayout & {
        pinned_layouts.push_back(layout_cache_.layoutFor(graph, spec));
        return *pinned_layouts.back();
    };

    // ---- One representative layer -------------------------------------
    double layer_wall = 0.0;      // fwd+bwd wall time of all ops
    double layer_comp = 0.0;
    double layer_coll = 0.0;      // blocking collectives
    double layer_stream = 0.0;
    double layer_exposed = 0.0;   // op-level exposed communication
    double layer_tail = 0.0;
    double layer_reshard = 0.0;
    double layer_flops = 0.0;
    double layer_dram = 0.0;
    double layer_d2d = 0.0;

    mem::MemoryFootprint static_mem;  // weights/grads/optimizer/buffers
    double act_per_layer = 0.0;       // activations stored per layer
    std::vector<net::CollectiveTask> step_tasks;
    double util_acc = 0.0, util_weight = 0.0;

    // Breakdown cells are collected and reduced in one batched pass
    // after the loop (cost::reduceBreakdowns — bit-identical to the
    // former per-cell accumulation); the loop keeps only the work that
    // needs op identity: feasibility early-outs, footprints, step-task
    // collection and resharding.
    std::vector<cost::OpCostBreakdown> cells;
    cells.reserve(graph.opCount());

    for (int i = 0; i < graph.opCount(); ++i) {
        const model::Operator &op = graph.op(i);
        const ParallelSpec &spec = per_op_specs[i];
        if (!spec.valid() ||
            spec.totalDegree() > wafer_.usableDieCount()) {
            report.feasible = false;
            return report;
        }
        const GroupLayout &layout = layout_for(spec);
        const OpExecution exec =
            cost_model_.partitioner().analyze(op, layout);
        const cost::OpCostBreakdown c =
            cost_model_.opCost(exec, op, layout, /*include_step=*/false);
        report.schedule_lowerings += c.schedule_lowerings;
        report.schedule_cache_hits += c.schedule_cache_hits;
        if (!c.feasible) {
            report.feasible = false;
            return report;
        }

        cells.push_back(c);

        const mem::MemoryFootprint fp = exec.footprint();
        static_mem[mem::MemClass::Weights] += fp[mem::MemClass::Weights];
        static_mem[mem::MemClass::Gradients] +=
            fp[mem::MemClass::Gradients];
        static_mem[mem::MemClass::OptimizerState] +=
            fp[mem::MemClass::OptimizerState];
        // Gather/stream buffers are per-op transient; the peak is the
        // largest single op's buffer (double-buffered prefetch at most).
        static_mem[mem::MemClass::CommBuffers] =
            std::max(static_mem[mem::MemClass::CommBuffers],
                     fp[mem::MemClass::CommBuffers]);
        act_per_layer += fp[mem::MemClass::Activations];

        step_tasks.insert(step_tasks.end(), exec.step_collectives.begin(),
                          exec.step_collectives.end());

        // Inter-op resharding (Eq. 3).
        if (i + 1 < graph.opCount() && !(per_op_specs[i + 1] == spec)) {
            layer_reshard +=
                cost_model_.interOpTime(op, spec, per_op_specs[i + 1]);
        }
    }

    const cost::BreakdownSums sums = cost::reduceBreakdowns(cells);
    layer_wall = sums.wall;
    layer_comp = sums.comp;
    layer_coll = sums.collective;
    layer_stream = sums.stream;
    layer_exposed = sums.exposed;
    layer_tail = sums.tail;
    layer_flops = sums.flops;
    layer_dram = sums.dram;
    layer_d2d = sums.d2d;
    util_acc = sums.util_acc;
    util_weight = sums.util_weight;

    if (recompute) {
        // Activation checkpointing: store only the layer-boundary
        // activation (the first op's input tensor) and re-run the
        // forward pass during backward.
        const GroupLayout &first_layout = layout_for(per_op_specs[0]);
        const OpExecution first =
            cost_model_.partitioner().analyze(graph.op(0), first_layout);
        act_per_layer = first.activation_bytes;
        const double extra = layer_comp / 3.0;  // one extra forward
        layer_wall += extra;
        layer_comp += extra;
        layer_flops += layer_flops / 3.0;
    }

    // Merged gradient synchronisation: all the layer's grad-sync
    // collectives execute as one bucketed phase, partially overlapped
    // with backward compute.
    double step_link_bytes = 0.0;
    net::ScheduleCacheStats step_sched_stats;
    const net::PhaseTiming step_timing = cost_model_.timeCollectiveTasks(
        step_tasks, &step_link_bytes, &step_sched_stats);
    report.schedule_lowerings += step_sched_stats.lowerings;
    report.schedule_cache_hits += step_sched_stats.hits;
    if (std::isinf(step_timing.time_s)) {
        report.feasible = false;
        return report;
    }
    const double step_exposed =
        step_timing.time_s *
        (1.0 - cost::WaferCostModel::kGradSyncOverlap);
    if (step_timing.total_bytes > 0.0 && step_link_bytes > 0.0) {
        util_acc += step_timing.bandwidth_utilization * step_link_bytes;
        util_weight += step_link_bytes;
    }

    // ---- Scale the layer to the model (Eq. 4) --------------------------
    const double layers = graph.layerCount();
    report.step_time =
        (layer_wall + layer_reshard + step_exposed) * layers;
    report.comp_time = layer_comp * layers;
    report.collective_time = (layer_coll + step_timing.time_s) * layers;
    report.stream_comm_time = layer_stream * layers;
    report.exposed_comm = (layer_exposed + step_exposed) * layers;
    report.tail_latency = layer_tail * layers;
    report.reshard_time = layer_reshard * layers;
    report.grad_sync_time = step_exposed * layers;
    report.grad_sync_collective_time = step_timing.time_s * layers;
    report.grad_sync_link_bytes = step_link_bytes * layers;
    report.total_flops = layer_flops * layers;

    // ---- Memory ---------------------------------------------------------
    const double capacity = wafer_.config().hbm.capacity_bytes;
    mem::MemoryFootprint peak = static_mem.scaled(layers);
    // Gather/stream buffers are transient: only one layer's worth is
    // ever live (FSDP re-gathers layer by layer; TATP streams in-place).
    peak[mem::MemClass::CommBuffers] =
        static_mem[mem::MemClass::CommBuffers];
    peak[mem::MemClass::Activations] = act_per_layer * layers;
    report.peak_footprint = peak;
    report.peak_mem_bytes = peak.total();
    report.oom = report.peak_mem_bytes > capacity;

    // ---- Energy and derived metrics --------------------------------------
    report.energy = cost_model_.powerModel().stepEnergy(
        report.total_flops, layer_dram * layers,
        (layer_d2d + step_link_bytes) * layers, report.step_time,
        wafer_.dieCount());
    report.avg_power_w = cost_model_.powerModel().averagePower(
        report.energy, report.step_time);
    report.power_efficiency = cost_model_.powerModel().powerEfficiency(
        report.total_flops, report.energy);
    report.bw_utilization =
        util_weight > 0.0 ? util_acc / util_weight : 0.0;

    const double tokens = static_cast<double>(graph.config().batch) *
                          graph.config().seq;
    report.throughput_tokens_per_s =
        report.step_time > 0.0 ? tokens / report.step_time : 0.0;
    report.strategy_desc = per_op_specs.front().str();
    return report;
}

}  // namespace temp::sim
