/**
 * @file
 * End-to-end single-wafer training-step simulator.
 *
 * Walks the representative transformer layer under per-operator
 * parallel specs, times every operator with the wafer cost model
 * (Eq. 2), adds inter-operator resharding (Eq. 3), jointly times the
 * layer's merged gradient-sync collectives, accounts memory against
 * HBM capacity, and scales by the layer count (Eq. 4).
 */
#pragma once

#include "cost/cost_model.hpp"
#include "eval/cost_evaluator.hpp"
#include "sim/perf_report.hpp"

namespace temp::sim {

/// Simulates training steps of a model on one wafer.
class TrainingSimulator
{
  public:
    TrainingSimulator(const hw::Wafer &wafer, tcme::MappingPolicy policy,
                      parallel::TrainingOptions options =
                          parallel::TrainingOptions());

    /**
     * Simulates one training step.
     *
     * Real systems train a global batch as a sequence of microbatches
     * (gradient accumulation), so stored activations scale with the
     * *micro*batch. The simulator picks the smallest power-of-two
     * accumulation factor whose activations fit in HBM (static state
     * permitting) and composes the full step from the microbatch
     * simulation — gradient synchronisation happens once per step.
     *
     * @param graph The model's representative layer (+ repeat count).
     * @param per_op_specs One spec per operator, or a single spec
     *        applied uniformly to all operators.
     */
    PerfReport simulate(const model::ComputeGraph &graph,
                        const std::vector<parallel::ParallelSpec>
                            &per_op_specs) const;

    /// Uniform-spec convenience overload.
    PerfReport simulate(const model::ComputeGraph &graph,
                        const parallel::ParallelSpec &spec) const;

    const cost::WaferCostModel &costModel() const { return cost_model_; }
    const hw::Wafer &wafer() const { return wafer_; }

    /**
     * The simulator's persistent layout memo. Layouts are content-keyed
     * on (graph, spec), so repeated simulations — the GA fitness loop
     * alone issues hundreds with recurring specs — build each layout
     * once across calls instead of once per call. Thread-safe, which
     * also makes concurrent simulate() calls safe (the rest of the
     * simulator is stateless).
     */
    const eval::LayoutCache &layoutCache() const { return layout_cache_; }

    /// Mutable access for cache governance (budget application).
    eval::LayoutCache &layoutCache() { return layout_cache_; }

  private:
    /// Simulates one microbatch pass (no accumulation logic).
    /// @param recompute Activation checkpointing: only the layer input
    ///        is stored; backward re-runs the forward (+~1/3 compute).
    PerfReport simulateMicro(const model::ComputeGraph &graph,
                             const std::vector<parallel::ParallelSpec>
                                 &per_op_specs,
                             bool recompute = false) const;

    /// Composes a full step from a microbatch report.
    PerfReport composeAccum(const PerfReport &micro, int accum,
                            double full_tokens) const;

    const hw::Wafer &wafer_;
    cost::WaferCostModel cost_model_;
    mutable eval::LayoutCache layout_cache_;
};

}  // namespace temp::sim
