#include "sim/multi_wafer.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace temp::sim {

MultiWaferSimulator::MultiWaferSimulator(hw::MultiWaferConfig config,
                                         tcme::MappingPolicy policy,
                                         parallel::TrainingOptions options)
    : config_(config), policy_(policy), options_(options)
{
}

MultiWaferSimulator::StageContext &
MultiWaferSimulator::stageContext(int pp) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = stages_.find(pp);
    if (it == stages_.end()) {
        it = stages_
                 .emplace(pp, std::make_unique<StageContext>(
                                  stageFabric(pp), policy_, options_))
                 .first;
    }
    return *it->second;
}

hw::WaferConfig
MultiWaferSimulator::stageFabric(int pp) const
{
    const hw::WaferConfig &wafer = config_.wafer;
    const int wafers = config_.wafer_count;
    if (pp <= 0)
        fatal("MultiWaferSimulator: pp must be positive");
    if (pp <= wafers) {
        if (wafers % pp != 0)
            fatal("MultiWaferSimulator: pp=%d does not divide %d wafers",
                  pp, wafers);
        // Stage spans wafers/pp wafers laid side by side.
        return wafer.withGrid(wafer.rows, wafer.cols * (wafers / pp));
    }
    const int slices = pp / wafers;
    if (pp % wafers != 0 || wafer.cols % slices != 0)
        fatal("MultiWaferSimulator: pp=%d incompatible with %d wafers of "
              "%d cols",
              pp, wafers, wafer.cols);
    return wafer.withGrid(wafer.rows, wafer.cols / slices);
}

PerfReport
MultiWaferSimulator::simulate(const model::ComputeGraph &graph,
                              const parallel::ParallelSpec &intra_spec,
                              int pp, int microbatches) const
{
    const model::ModelConfig &cfg = graph.config();
    if (cfg.layers % pp != 0)
        fatal("MultiWaferSimulator: %d layers not divisible by pp=%d",
              cfg.layers, pp);
    if (cfg.batch % microbatches != 0)
        fatal("MultiWaferSimulator: batch %d not divisible by m=%d",
              cfg.batch, microbatches);

    // One pipeline stage trains layers/pp layers on one microbatch.
    model::ModelConfig stage_cfg = cfg;
    stage_cfg.layers = cfg.layers / pp;
    stage_cfg.batch = cfg.batch / microbatches;
    const model::ComputeGraph stage_graph =
        model::ComputeGraph::transformer(stage_cfg);

    const StageContext &stage_ctx = stageContext(pp);

    PerfReport stage = stage_ctx.sim.simulate(stage_graph, intra_spec);
    if (!stage.feasible) {
        PerfReport bad;
        bad.feasible = false;
        return bad;
    }

    // Gradient sync happens once per step, not per microbatch.
    const double micro_time = stage.step_time - stage.grad_sync_time;

    // Inter-stage activation transfer per microbatch over the
    // inter-wafer (or intra-wafer) fabric: [b_micro, seq, hidden] FP16,
    // sharded across the stage's parallel dies.
    const double boundary_bytes =
        static_cast<double>(stage_cfg.batch) * cfg.seq * cfg.hidden *
        kBytesFp16 / std::max(1, intra_spec.totalDegree());
    const double stage_link_bw =
        pp <= config_.wafer_count
            ? config_.inter_wafer_bandwidth_bytes_per_s /
                  std::max(1, intra_spec.totalDegree())
            : config_.wafer.d2d.bandwidth_bytes_per_s;
    const double p2p_time =
        pp > 1 ? boundary_bytes / stage_link_bw +
                     config_.inter_wafer_latency_s
               : 0.0;

    const double slot_time = micro_time + 2.0 * p2p_time;  // fwd + bwd

    // 1F1B pipeline: m + pp - 1 slots, plus the once-per-step sync.
    const double m = microbatches;
    const double total_time =
        (m + pp - 1.0) * slot_time + stage.grad_sync_time;

    PerfReport report = stage;
    report.step_time = total_time;
    report.bubble_time = (pp - 1.0) * slot_time;
    report.reshard_time += 2.0 * p2p_time * m;

    // Scale per-stage activity to the full system and step.
    report.comp_time = stage.comp_time * m;  // per stage, m microbatches
    report.collective_time *= m;
    report.stream_comm_time *= m;
    report.exposed_comm = (stage.exposed_comm - stage.grad_sync_time) * m +
                          stage.grad_sync_time;
    report.total_flops = stage.total_flops * m * pp;
    report.energy = stage.energy.scaled(m * pp);
    report.avg_power_w = report.step_time > 0.0
                             ? report.energy.total() / report.step_time
                             : 0.0;
    report.power_efficiency =
        report.energy.total() > 0.0
            ? report.total_flops / report.energy.total()
            : 0.0;

    // 1F1B in-flight activations: min(m, pp) microbatches resident.
    const double inflight = std::min<double>(m, pp);
    report.peak_footprint[mem::MemClass::Activations] *= inflight;
    report.peak_mem_bytes = report.peak_footprint.total();
    report.oom =
        report.peak_mem_bytes > config_.wafer.hbm.capacity_bytes;

    const double tokens = static_cast<double>(cfg.batch) * cfg.seq;
    report.throughput_tokens_per_s =
        report.step_time > 0.0 ? tokens / report.step_time : 0.0;
    report.strategy_desc =
        intra_spec.str() + ",pp=" + std::to_string(pp);
    return report;
}

}  // namespace temp::sim
