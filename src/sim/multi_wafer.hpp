/**
 * @file
 * Multi-wafer training simulation (Sec. VIII-E, Fig. 19).
 *
 * Pipeline parallelism distributes layers across pipeline stages; the
 * stage fabric is either a whole wafer, several wafers joined by
 * inter-wafer links (pp < wafer count), or a fraction of a wafer
 * (pp > wafer count). The classic 1F1B bubble model applies:
 *   bubble fraction = (pp - 1) / (m + pp - 1)
 * with m microbatches, plus inter-stage activation transfers.
 */
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "sim/trainer_sim.hpp"

namespace temp::sim {

/// Simulates PP-over-wafers training of large models.
class MultiWaferSimulator
{
  public:
    MultiWaferSimulator(hw::MultiWaferConfig config,
                        tcme::MappingPolicy policy,
                        parallel::TrainingOptions options =
                            parallel::TrainingOptions());

    /**
     * Simulates one training step.
     *
     * @param graph Whole-model graph.
     * @param intra_spec Parallelism within one pipeline stage.
     * @param pp Pipeline-stage count; layers must divide by it, and it
     *        must be compatible with the wafer count (multiple or
     *        divisor).
     * @param microbatches Gradient-accumulation microbatches.
     */
    PerfReport simulate(const model::ComputeGraph &graph,
                        const parallel::ParallelSpec &intra_spec, int pp,
                        int microbatches) const;

    /**
     * The die grid available to one pipeline stage. pp <= wafers: the
     * stage spans wafers/pp wafers side by side (inter-wafer links are
     * Dojo-class, Sec. VIII-E); pp > wafers: the wafer is column-split
     * into pp/wafers stage slices.
     */
    hw::WaferConfig stageFabric(int pp) const;

    const hw::MultiWaferConfig &config() const { return config_; }

  private:
    /// One pipeline stage's wafer + simulator. Cached per pp so sweeps
    /// over (pp, m, spec) reuse the stage simulator — and with it its
    /// persistent layout cache — instead of rebuilding both per call.
    struct StageContext
    {
        StageContext(const hw::WaferConfig &cfg, tcme::MappingPolicy policy,
                     parallel::TrainingOptions options)
            : wafer(cfg), sim(wafer, policy, options)
        {
        }

        hw::Wafer wafer;
        TrainingSimulator sim;
    };

    /// Returns (building on first use) the stage context for pp.
    StageContext &stageContext(int pp) const;

    hw::MultiWaferConfig config_;
    tcme::MappingPolicy policy_;
    parallel::TrainingOptions options_;
    mutable std::mutex mutex_;
    mutable std::map<int, std::unique_ptr<StageContext>> stages_;
};

}  // namespace temp::sim
