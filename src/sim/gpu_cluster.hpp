/**
 * @file
 * A100 GPU-cluster reference simulator (Fig. 15).
 *
 * The cluster's NVSwitch fabric is contention-free all-to-all, so
 * collectives hit their analytic ring bounds at NIC bandwidth — no
 * topology mapping problem exists. That is precisely the contrast the
 * paper draws: the wafer has 6x the link bandwidth but a rigid mesh;
 * the GPU cluster has flexible switching but far less bandwidth.
 */
#pragma once

#include "cost/compute_model.hpp"
#include "hw/config.hpp"
#include "model/graph.hpp"
#include "parallel/partitioner.hpp"
#include "sim/perf_report.hpp"

namespace temp::sim {

/// Simulates training steps on a switch-connected GPU cluster.
class GpuClusterSimulator
{
  public:
    explicit GpuClusterSimulator(hw::GpuClusterConfig config,
                                 parallel::TrainingOptions options =
                                     parallel::TrainingOptions());

    /// Simulates one training step under a uniform parallel spec.
    PerfReport simulate(const model::ComputeGraph &graph,
                        const parallel::ParallelSpec &spec) const;

    const hw::GpuClusterConfig &config() const { return config_; }

  private:
    /// Ring-collective time at NIC bandwidth (contention-free switch).
    double collectiveTime(const net::CollectiveTask &task) const;

    hw::GpuClusterConfig config_;
    parallel::TrainingOptions options_;
    parallel::Partitioner partitioner_;
};

}  // namespace temp::sim
