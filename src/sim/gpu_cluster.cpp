#include "sim/gpu_cluster.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "hw/topology.hpp"
#include "mem/hbm_model.hpp"
#include "net/collective.hpp"
#include "parallel/layout.hpp"

namespace temp::sim {

using parallel::ParallelSpec;

GpuClusterSimulator::GpuClusterSimulator(hw::GpuClusterConfig config,
                                         parallel::TrainingOptions options)
    : config_(config), options_(options), partitioner_(options)
{
}

double
GpuClusterSimulator::collectiveTime(const net::CollectiveTask &task) const
{
    // Megatron deployment convention: TP groups live inside one
    // NVSwitch node; any group larger than a node (or any replica-axis
    // group, which interleaves across nodes) rides the inter-node tier.
    const bool intra_node =
        task.tag == parallel::axisTag(parallel::Axis::TP) &&
        static_cast<int>(task.group.size()) <= config_.gpus_per_node;
    const double bw = intra_node
                          ? config_.nic_bandwidth_bytes_per_s
                          : config_.inter_node_bandwidth_bytes_per_s;
    return net::collectiveLowerBoundTime(
        task.kind, static_cast<int>(task.group.size()), task.bytes, bw,
        config_.nic_latency_s);
}

PerfReport
GpuClusterSimulator::simulate(const model::ComputeGraph &graph,
                              const ParallelSpec &spec) const
{
    PerfReport report;
    if (!spec.valid() || spec.totalDegree() > config_.gpu_count) {
        report.feasible = false;
        return report;
    }

    // Group structure is topology-independent on a switch; reuse the
    // mesh layout machinery purely for group bookkeeping.
    int rows = 1;
    for (int r = static_cast<int>(std::sqrt(config_.gpu_count)); r >= 1;
         --r) {
        if (config_.gpu_count % r == 0) {
            rows = r;
            break;
        }
    }
    const hw::MeshTopology fake_mesh(rows, config_.gpu_count / rows);
    const parallel::GroupLayout layout(fake_mesh, spec);

    // A100-style compute/memory roofline.
    hw::DieConfig gpu_die;
    gpu_die.peak_flops = config_.peak_flops;
    gpu_die.flops_per_watt = config_.flops_per_watt;
    hw::HbmConfig gpu_hbm;
    gpu_hbm.capacity_bytes = config_.mem_capacity_bytes;
    gpu_hbm.bandwidth_bytes_per_s = config_.mem_bandwidth_bytes_per_s;
    const cost::ComputeModel compute(gpu_die, gpu_hbm);

    double layer_time = 0.0;
    double step_sync = 0.0;
    mem::MemoryFootprint static_mem;
    double act_per_layer = 0.0;

    for (const model::Operator &op : graph.ops()) {
        const parallel::OpExecution exec = partitioner_.analyze(op, layout);

        const double comp_fwd = compute.opTime(
            exec.fwd_flops_per_die, exec.dram_bytes_fwd, op.isGemm());
        const double comp_bwd = compute.opTime(
            exec.bwd_flops_per_die, exec.dram_bytes_bwd, op.isGemm());
        report.comp_time += comp_fwd + comp_bwd;

        double coll = 0.0;
        // Concurrent groups on a non-blocking switch do not contend; one
        // group's time is the phase time.
        auto first_group_time =
            [&](const std::vector<net::CollectiveTask> &tasks) {
                double worst = 0.0;
                for (const net::CollectiveTask &t : tasks)
                    worst = std::max(worst, collectiveTime(t));
                return worst;
            };
        coll += first_group_time(exec.fwd_collectives);
        coll += first_group_time(exec.bwd_collectives);
        const double overlap = first_group_time(exec.overlap_collectives);
        step_sync += first_group_time(exec.step_collectives);
        report.collective_time += coll;

        double stream_time = 0.0;
        if (exec.tatp.active) {
            // All switch hops are single-hop; the stream works but at
            // NIC bandwidth.
            const int g = exec.tatp.degree;
            const double comm_round =
                exec.tatp.bytes_per_round /
                    config_.nic_bandwidth_bytes_per_s +
                config_.nic_latency_s;
            const double comp_round = comp_fwd / g;
            const double bwd_round =
                std::max(comp_bwd / g,
                         2.0 * exec.tatp.bytes_per_round /
                                 config_.nic_bandwidth_bytes_per_s +
                             config_.nic_latency_s);
            stream_time = g * (std::max(comp_round, comm_round) +
                               bwd_round) -
                          (comp_fwd + comp_bwd);
            report.stream_comm_time +=
                g * (comm_round + bwd_round - comp_bwd / g);
        }

        layer_time += comp_fwd + comp_bwd + coll +
                      std::max(0.0, overlap - comp_fwd) +
                      std::max(0.0, stream_time);
        report.exposed_comm += coll + std::max(0.0, overlap - comp_fwd);

        report.total_flops +=
            (exec.fwd_flops_per_die + exec.bwd_flops_per_die) *
            layout.usedDies();

        const mem::MemoryFootprint fp = exec.footprint();
        for (mem::MemClass cls :
             {mem::MemClass::Weights, mem::MemClass::Gradients,
              mem::MemClass::OptimizerState})
            static_mem[cls] += fp[cls];
        static_mem[mem::MemClass::CommBuffers] =
            std::max(static_mem[mem::MemClass::CommBuffers],
                     fp[mem::MemClass::CommBuffers]);
        act_per_layer += fp[mem::MemClass::Activations];
    }

    const double layers = graph.layerCount();
    const double step_exposed = 0.5 * step_sync;  // bucketed overlap
    report.step_time = (layer_time + step_exposed) * layers;
    report.comp_time *= layers;
    report.collective_time = (report.collective_time + step_sync) * layers;
    report.exposed_comm = (report.exposed_comm + step_exposed) * layers;
    report.grad_sync_time = step_exposed * layers;
    report.total_flops *= layers;

    mem::MemoryFootprint peak = static_mem.scaled(layers);
    peak[mem::MemClass::CommBuffers] =
        static_mem[mem::MemClass::CommBuffers];
    peak[mem::MemClass::Activations] = act_per_layer * layers;
    report.peak_footprint = peak;
    report.peak_mem_bytes = peak.total();
    report.oom = report.peak_mem_bytes > config_.mem_capacity_bytes;

    const double tokens = static_cast<double>(graph.config().batch) *
                          graph.config().seq;
    report.throughput_tokens_per_s =
        report.step_time > 0.0 ? tokens / report.step_time : 0.0;
    report.strategy_desc = "GPU:" + spec.str();
    return report;
}

}  // namespace temp::sim
