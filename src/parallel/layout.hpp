/**
 * @file
 * Spatial layout of parallel groups on the wafer mesh (Fig. 10 steps
 * 2 and 4).
 *
 * Dies are enumerated in boustrophedon ("snake") order so that
 * consecutive indices are physically adjacent. Parallelism axes are then
 * laid out as a mixed-radix number over snake positions: the innermost
 * axis varies fastest, so its groups occupy contiguous snake segments —
 * i.e. contiguous physical chains, exactly what TATP needs (Sec. V).
 * Outer axes form strided (scattered) groups, which is what makes their
 * collectives contend — the effect TCME optimises.
 */
#pragma once

#include <vector>

#include "hw/topology.hpp"
#include "parallel/spec.hpp"

namespace temp::parallel {

/// Default inner-to-outer axis order (TATP innermost).
std::vector<Axis> defaultAxisOrder();

/**
 * Assignment of a ParallelSpec's groups to physical dies.
 *
 * The spec's total degree may be smaller than the wafer (surplus dies
 * stay idle); it must never exceed it.
 */
class GroupLayout
{
  public:
    /**
     * @param mesh The wafer's mesh topology.
     * @param spec Parallel degrees to lay out.
     * @param inner_to_outer Axis order; defaults to defaultAxisOrder().
     */
    GroupLayout(const hw::MeshTopology &mesh, const ParallelSpec &spec,
                std::vector<Axis> inner_to_outer = defaultAxisOrder());

    /**
     * Layout over an explicit die enumeration (e.g. the snake order
     * filtered to a fault-free connected component). The first
     * spec.totalDegree() entries carry work.
     */
    GroupLayout(std::vector<hw::DieId> die_order, const ParallelSpec &spec,
                std::vector<Axis> inner_to_outer = defaultAxisOrder());

    /// Dies in snake order (size = spec.totalDegree()).
    const std::vector<hw::DieId> &activeDies() const { return active_; }

    /// Number of dies carrying work.
    int usedDies() const { return static_cast<int>(active_.size()); }

    /**
     * All groups of one axis. Each group is ordered by the axis
     * coordinate; group count = totalDegree / degree(axis). For a degree-1
     * axis this returns an empty vector (no communication groups).
     */
    const std::vector<std::vector<hw::DieId>> &groups(Axis axis) const;

    /// The group of `axis` containing a given die.
    const std::vector<hw::DieId> &groupOf(Axis axis, hw::DieId die) const;

    /// The spec this layout realises.
    const ParallelSpec &spec() const { return spec_; }

    /// The axis order used (inner to outer).
    const std::vector<Axis> &axisOrder() const { return order_; }

    /**
     * Boustrophedon enumeration of an R x C mesh: row 0 left-to-right,
     * row 1 right-to-left, ... Consecutive entries are always adjacent.
     */
    static std::vector<hw::DieId> snakeOrder(const hw::MeshTopology &mesh);

    /// Estimated heap bytes held by this layout (feeds the layout
    /// cache's byte budget; object size excluded, the cache adds it).
    long byteEstimate() const;

  private:
    ParallelSpec spec_;
    std::vector<Axis> order_;
    std::vector<hw::DieId> active_;
    /// groups_[axis] -> list of groups.
    std::vector<std::vector<std::vector<hw::DieId>>> groups_;
    /// group_of_[axis][die] -> index into groups_[axis], or -1.
    std::vector<std::vector<int>> group_of_;
};

}  // namespace temp::parallel
