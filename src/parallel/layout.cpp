#include "parallel/layout.hpp"

#include "common/logging.hpp"

namespace temp::parallel {

std::vector<Axis>
defaultAxisOrder()
{
    return {Axis::TATP, Axis::TP, Axis::SP, Axis::CP, Axis::FSDP, Axis::DP};
}

std::vector<hw::DieId>
GroupLayout::snakeOrder(const hw::MeshTopology &mesh)
{
    std::vector<hw::DieId> order;
    order.reserve(mesh.dieCount());
    for (int r = 0; r < mesh.rows(); ++r) {
        if (r % 2 == 0) {
            for (int c = 0; c < mesh.cols(); ++c)
                order.push_back(mesh.dieAt(r, c));
        } else {
            for (int c = mesh.cols() - 1; c >= 0; --c)
                order.push_back(mesh.dieAt(r, c));
        }
    }
    return order;
}

GroupLayout::GroupLayout(const hw::MeshTopology &mesh,
                         const ParallelSpec &spec,
                         std::vector<Axis> inner_to_outer)
    : GroupLayout(snakeOrder(mesh), spec, std::move(inner_to_outer))
{
}

GroupLayout::GroupLayout(std::vector<hw::DieId> die_order,
                         const ParallelSpec &spec,
                         std::vector<Axis> inner_to_outer)
    : spec_(spec), order_(std::move(inner_to_outer))
{
    if (!spec.valid())
        fatal("GroupLayout: invalid spec %s", spec.str().c_str());
    const int total = spec.totalDegree();
    if (total > static_cast<int>(die_order.size()))
        fatal("GroupLayout: spec %s needs %d dies, fabric has %zu",
              spec.str().c_str(), total, die_order.size());
    if (order_.size() != static_cast<std::size_t>(Axis::Count))
        fatal("GroupLayout: axis order must list all %d axes",
              static_cast<int>(Axis::Count));

    active_.assign(die_order.begin(), die_order.begin() + total);

    // Strides of each axis in the mixed-radix snake index.
    std::vector<int> stride(static_cast<std::size_t>(Axis::Count), 1);
    int running = 1;
    for (Axis axis : order_) {
        stride[static_cast<std::size_t>(axis)] = running;
        running *= spec.degree(axis);
    }

    int max_die = 0;
    for (hw::DieId die : die_order)
        max_die = std::max(max_die, die);
    groups_.resize(static_cast<std::size_t>(Axis::Count));
    group_of_.assign(static_cast<std::size_t>(Axis::Count),
                     std::vector<int>(max_die + 1, -1));

    for (std::size_t ai = 0; ai < static_cast<std::size_t>(Axis::Count);
         ++ai) {
        const Axis axis = static_cast<Axis>(ai);
        const int degree = spec.degree(axis);
        if (degree <= 1)
            continue;
        const int s = stride[ai];
        const int group_count = total / degree;
        groups_[ai].reserve(group_count);
        // Enumerate groups: iterate all snake indices whose axis
        // coordinate is zero; the group walks the axis coordinate.
        for (int base = 0; base < total; ++base) {
            const int coord = (base / s) % degree;
            if (coord != 0)
                continue;
            std::vector<hw::DieId> group;
            group.reserve(degree);
            for (int x = 0; x < degree; ++x)
                group.push_back(active_[base + x * s]);
            const int gi = static_cast<int>(groups_[ai].size());
            for (hw::DieId die : group)
                group_of_[ai][die] = gi;
            groups_[ai].push_back(std::move(group));
        }
    }
}

const std::vector<std::vector<hw::DieId>> &
GroupLayout::groups(Axis axis) const
{
    return groups_[static_cast<std::size_t>(axis)];
}

const std::vector<hw::DieId> &
GroupLayout::groupOf(Axis axis, hw::DieId die) const
{
    const auto &index = group_of_[static_cast<std::size_t>(axis)];
    if (die < 0 || die >= static_cast<int>(index.size()) || index[die] < 0)
        panic("GroupLayout::groupOf: die %d not in a %s group", die,
              axisName(axis));
    return groups_[static_cast<std::size_t>(axis)][index[die]];
}

long
GroupLayout::byteEstimate() const
{
    long bytes = static_cast<long>(
        order_.capacity() * sizeof(Axis) +
        active_.capacity() * sizeof(hw::DieId));
    for (const auto &axis_groups : groups_) {
        bytes += static_cast<long>(
            sizeof(axis_groups) +
            axis_groups.capacity() * sizeof(std::vector<hw::DieId>));
        for (const auto &group : axis_groups)
            bytes += static_cast<long>(group.capacity() *
                                       sizeof(hw::DieId));
    }
    for (const auto &index : group_of_)
        bytes += static_cast<long>(sizeof(index) +
                                   index.capacity() * sizeof(int));
    return bytes;
}

}  // namespace temp::parallel
