/**
 * @file
 * Parallelism specifications: per-operator degrees of every axis the
 * framework supports (DP, FSDP, TP, SP, CP, TATP, plus PP at wafer
 * granularity), following the paper's (DP, TP, SP, TATP)-tuple notation
 * from Figs. 17/18.
 */
#pragma once

#include <string>
#include <vector>

namespace temp::parallel {

/// Parallelism axes; the order here is the default inner-to-outer layout
/// order on the wafer (TATP innermost so its groups map to contiguous
/// physical chains).
enum class Axis
{
    TATP = 0,
    TP,
    SP,
    CP,
    FSDP,
    DP,
    Count
};

/// Returns the printable axis name.
const char *axisName(Axis axis);

/**
 * Degrees of each parallelism axis applied to an operator (or a whole
 * layer). The product of all on-wafer degrees must divide the die count.
 *
 * Semantics:
 *  - dp: replica data parallelism (splits batch B, replicates state);
 *  - fsdp: sharded data parallelism (splits B, shards weights/grads/
 *    optimizer, all-gathers weights on use);
 *  - tp: Megatron tensor parallelism (splits weights, all-reduces
 *    row-parallel outputs);
 *  - sp: sequence parallelism (splits every activation along M,
 *    replicates weights, all-gathers KV for attention — the
 *    independent-axis SP of the paper's (DP,TP,SP,TATP) tuples);
 *  - cp: context parallelism (splits M for attention with ring-style
 *    overlappable KV exchange instead of SP's exposed all-gather);
 *  - tatp: the paper's tensor-stream partition degree;
 *  - pp: pipeline stages (multi-wafer; no intra-wafer use, Sec. II-A).
 */
struct ParallelSpec
{
    int dp = 1;
    int fsdp = 1;
    int tp = 1;
    int sp = 1;
    int cp = 1;
    int tatp = 1;
    int pp = 1;
    /**
     * Megatron-3 style TP-coupled sequence parallelism: the
     * norm/residual region is sharded along M across the *TP group*
     * (no extra dies), and the TP all-reduce is reorganised into
     * reduce-scatter + all-gather of equal volume. Orthogonal to the
     * independent `sp` axis of the paper's (DP,TP,SP,TATP) tuples.
     */
    bool coupled_sp = false;

    /// Degree of one axis.
    int degree(Axis axis) const;

    /// Sets the degree of one axis.
    void setDegree(Axis axis, int value);

    /// Product of all on-wafer degrees (excludes pp).
    int totalDegree() const { return dp * fsdp * tp * sp * cp * tatp; }

    /**
     * Structural validity: all degrees >= 1 and dp/fsdp not combined
     * (fsdp *is* sharded dp).
     */
    bool valid() const;

    /// Paper-style tuple string "(dp,tp,sp,tatp)" plus extras if used.
    std::string str() const;

    bool operator==(const ParallelSpec &other) const = default;

    /// The no-parallelism spec.
    static ParallelSpec serial() { return ParallelSpec{}; }
};

}  // namespace temp::parallel
