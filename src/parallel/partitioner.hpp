/**
 * @file
 * The unified parallelism representation (Sec. VI-A, Fig. 10).
 *
 * The Partitioner projects one operator under one ParallelSpec onto the
 * wafer: per-die compute, the per-die memory footprint of every training
 * state class, the collective communication the spec induces (with
 * concrete die groups from the GroupLayout) and, when TATP is active,
 * the tensor-stream descriptor the TATP executor consumes.
 *
 * This is the representation through which "precise identification of
 * communication contention both across parallel strategies and among
 * parallel groups" (paper) becomes possible: every collective task names
 * physical dies, so all flows can be analysed jointly.
 */
#pragma once

#include <vector>

#include "mem/memory_ledger.hpp"
#include "model/operator.hpp"
#include "net/collective.hpp"
#include "parallel/layout.hpp"
#include "parallel/spec.hpp"

namespace temp::parallel {

/// Global training recipe knobs (Sec. VIII-A).
struct TrainingOptions
{
    /// FlashAttention + online softmax (Fig. 12 ops 4-7): S^2 score and
    /// softmax tensors are neither stored for backward nor spilled to
    /// DRAM — they live in SRAM tiles and are recomputed.
    bool flash_attention = true;
    /// ZeRO-1 style distributed optimizer: optimizer state is
    /// additionally sharded across the data/sequence/context replicas
    /// (modern Megatron-3/FSDP default; Megatron-1 predates it).
    bool zero1_optimizer = true;
    double weight_bytes_per_elem = kBytesFp16;
    double act_bytes_per_elem = kBytesFp16;
    double grad_bytes_per_elem = kBytesFp16;
    /// FP32 master weights + FP32 Adam moments (4+4+4 bytes/param),
    /// the classic mixed-precision Adam recipe of Sec. VIII-A.
    double optimizer_bytes_per_param = 12.0;
};

/// TATP tensor-stream descriptor for one operator (consumed by tatp::).
struct TatpStream
{
    bool active = false;
    /// Stream degree == number of rounds == chain length.
    int degree = 1;
    /// Selective transfer policy outcome: stream weights or inputs
    /// (whichever is smaller, Sec. V).
    bool stream_weights = true;
    /// Bytes of the streamed tensor per TATP group (all sub-tensors).
    double group_tensor_bytes = 0.0;
    /// Per-round, per-link stream volume (one sub-tensor).
    double bytes_per_round = 0.0;
    /// Per-die compute per round, forward pass.
    double fwd_flops_per_round = 0.0;
    /// Per-die compute per round, backward pass.
    double bwd_flops_per_round = 0.0;
};

/**
 * Everything the cost model and simulator need to know about executing
 * one operator under one spec. All quantities are per *representative*
 * die (the layout is symmetric) and per single layer instance.
 */
struct OpExecution
{
    ParallelSpec spec;

    /// @{ Per-die FLOPs.
    double fwd_flops_per_die = 0.0;
    double bwd_flops_per_die = 0.0;
    /// @}

    /// @{ Per-die memory contributions of this operator (bytes).
    double weight_bytes = 0.0;
    double grad_bytes = 0.0;
    double optimizer_bytes = 0.0;
    double activation_bytes = 0.0;   ///< stored for backward
    double comm_buffer_bytes = 0.0;  ///< replicas/stream buffers
    /// @}

    /// @{ Per-die DRAM traffic (roofline memory term).
    double dram_bytes_fwd = 0.0;
    double dram_bytes_bwd = 0.0;
    /// @}

    /// Blocking collectives in the forward pass (all groups).
    std::vector<net::CollectiveTask> fwd_collectives;
    /// Blocking collectives in the backward pass (all groups).
    std::vector<net::CollectiveTask> bwd_collectives;
    /// Per-step gradient synchronisation (DP/SP/CP all-reduce, FSDP RS).
    std::vector<net::CollectiveTask> step_collectives;
    /// Collectives that overlap with this op's compute (CP's ring-style
    /// KV exchange): the cost model takes max(comp, overlap) not a sum.
    std::vector<net::CollectiveTask> overlap_collectives;

    /// TATP stream descriptor (active iff spec.tatp > 1 and op is GEMM).
    TatpStream tatp;

    /// Sum of per-die memory classes as a footprint record.
    mem::MemoryFootprint footprint() const;

    /// Total bytes crossing D2D links for energy accounting, excluding
    /// the TATP stream (which the TATP executor reports itself).
    double collectivePayloadBytes() const;
};

/// Communication tags used to attribute flows to parallel axes.
int axisTag(Axis axis);

/// The partitioner: stateless analysis of (operator, spec, layout).
class Partitioner
{
  public:
    explicit Partitioner(TrainingOptions options = TrainingOptions());

    /**
     * Analyses one operator under the layout's spec.
     *
     * @param op     The operator (one layer instance).
     * @param layout Spatial realisation of the spec on the wafer.
     */
    OpExecution analyze(const model::Operator &op,
                        const GroupLayout &layout) const;

    const TrainingOptions &options() const { return options_; }

    /**
     * Factor by which this op's *output activation* is sharded across
     * the wafer under the spec (used for memory and resharding).
     */
    double activationShardFactor(const model::Operator &op,
                                 const ParallelSpec &spec) const;

  private:
    TrainingOptions options_;
};

/**
 * Resharding cost between two consecutive operators with different
 * specs: the producer's output must be redistributed to match the
 * consumer's expected sharding (Eq. 3's inter-operator P2P term).
 * Returns the per-die P2P byte volume (zero when specs agree).
 */
double reshardBytesPerDie(const model::Operator &producer,
                          const ParallelSpec &from, const ParallelSpec &to,
                          const TrainingOptions &options);

}  // namespace temp::parallel
