#include "parallel/partitioner.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace temp::parallel {

using model::OpType;
using model::Operator;
using model::TpRole;
using net::CollectiveKind;
using net::CollectiveTask;

mem::MemoryFootprint
OpExecution::footprint() const
{
    mem::MemoryFootprint fp;
    fp[mem::MemClass::Weights] = weight_bytes;
    fp[mem::MemClass::Gradients] = grad_bytes;
    fp[mem::MemClass::OptimizerState] = optimizer_bytes;
    fp[mem::MemClass::Activations] = activation_bytes;
    fp[mem::MemClass::CommBuffers] = comm_buffer_bytes;
    return fp;
}

double
OpExecution::collectivePayloadBytes() const
{
    double total = 0.0;
    auto add = [&total](const std::vector<CollectiveTask> &tasks) {
        for (const CollectiveTask &task : tasks) {
            const double n = static_cast<double>(task.group.size());
            if (n <= 1.0)
                continue;
            switch (task.kind) {
              case CollectiveKind::AllReduce:
                total += 2.0 * (n - 1.0) * task.bytes;
                break;
              case CollectiveKind::AllGather:
              case CollectiveKind::ReduceScatter:
                total += (n - 1.0) * task.bytes;
                break;
              case CollectiveKind::Broadcast:
                total += (n - 1.0) * task.bytes;
                break;
              case CollectiveKind::P2P:
                total += task.bytes;
                break;
            }
        }
    };
    add(fwd_collectives);
    add(bwd_collectives);
    add(step_collectives);
    return total;
}

int
axisTag(Axis axis)
{
    return 1000 + static_cast<int>(axis);
}

Partitioner::Partitioner(TrainingOptions options) : options_(options) {}

double
Partitioner::activationShardFactor(const Operator &op,
                                   const ParallelSpec &spec) const
{
    // Batch/sequence-style splits shard every activation.
    double factor =
        spec.dp * spec.fsdp * spec.sp * spec.cp * spec.tatp;
    switch (op.tp_role) {
      case TpRole::ColumnParallel:
      case TpRole::HeadParallel:
        factor *= spec.tp;  // output lives K-split / head-split
        break;
      case TpRole::RowParallel:
      case TpRole::SequenceRegion:
        // Row-parallel outputs are replicated across TP after the
        // all-reduce; the norm/residual region likewise — unless
        // Megatron-3 coupled SP reduce-scatters them along M.
        if (spec.coupled_sp)
            factor *= spec.tp;
        break;
    }
    return factor;
}

OpExecution
Partitioner::analyze(const Operator &op, const GroupLayout &layout) const
{
    const ParallelSpec &spec = layout.spec();
    OpExecution exec;
    exec.spec = spec;

    const double d = spec.dp;
    const double f = spec.fsdp;
    const double t = spec.tp;
    const double s = spec.sp;
    const double c = spec.cp;
    const double g = spec.tatp;

    // --- Compute split -------------------------------------------------
    // Batch-style axes (dp/fsdp/sp/cp/tatp) split every operator's work;
    // tp additionally splits GEMM-family work but leaves the
    // norm/residual region replicated across the TP group (the
    // redundancy Megatron-3 pointed out).
    double comp_split = d * f * s * c * g;
    if (op.tp_role != TpRole::SequenceRegion || spec.coupled_sp)
        comp_split *= t;
    exec.fwd_flops_per_die = op.forwardFlops() / comp_split;
    exec.bwd_flops_per_die = op.backwardFlops() / comp_split;

    // --- Parameter state -----------------------------------------------
    const double weight_shards = t * g * f;
    if (op.has_weight) {
        const double params = op.n * op.k;
        exec.weight_bytes =
            params * options_.weight_bytes_per_elem / weight_shards;
        exec.grad_bytes =
            params * options_.grad_bytes_per_elem / weight_shards;
        // ZeRO-1 shards optimizer state across the replica axes too.
        const double opt_shards =
            weight_shards * (options_.zero1_optimizer ? d * s * c : 1.0);
        exec.optimizer_bytes =
            params * options_.optimizer_bytes_per_param / opt_shards;
    }

    // --- Activations stored for backward -------------------------------
    const bool flash_skipped =
        options_.flash_attention &&
        (op.type == OpType::Softmax || op.type == OpType::AttentionScore);
    if (!flash_skipped) {
        exec.activation_bytes =
            op.outputBytes(options_.act_bytes_per_elem) /
            activationShardFactor(op, spec);
    }

    // --- DRAM traffic (roofline term) -----------------------------------
    // With FlashAttention the S^2 score/softmax tensors never leave
    // SRAM: attention ops only stream their Q/K/V-sized operands.
    double dram_fwd =
        op.forwardDramBytes(options_.act_bytes_per_elem) / comp_split;
    if (options_.flash_attention) {
        const double bpe = options_.act_bytes_per_elem;
        if (op.type == OpType::Softmax) {
            dram_fwd = 0.0;  // fused into the attention SRAM loop
        } else if (op.type == OpType::AttentionScore) {
            // Read Q [b,m,n] and K [b,n,k]; the S^2 output stays local.
            dram_fwd = (op.b * op.m * op.n + op.b * op.n * op.k) * bpe /
                       comp_split;
        } else if (op.type == OpType::AttentionContext) {
            // Read V [b,n,k], write O [b,m,k]; S^2 input stays local.
            dram_fwd = (op.b * op.n * op.k + op.b * op.m * op.k) * bpe /
                       comp_split;
        }
    }
    exec.dram_bytes_fwd = dram_fwd;
    exec.dram_bytes_bwd = 2.0 * dram_fwd;

    // --- Collectives ----------------------------------------------------
    // Per-group activation bytes: the tensor slice a single parallel
    // group works on (other axes already sharded it).
    const double batch_split = d * f * s * c * g;
    const double out_bytes_group =
        op.outputBytes(options_.act_bytes_per_elem) / batch_split;
    const double in_bytes_group =
        op.inputBytes(options_.act_bytes_per_elem) / batch_split;

    auto emit = [](std::vector<CollectiveTask> &dst, CollectiveKind kind,
                   const std::vector<std::vector<hw::DieId>> &groups,
                   double bytes, Axis axis) {
        if (bytes <= 0.0)
            return;
        for (const auto &group : groups) {
            CollectiveTask task;
            task.kind = kind;
            task.group = group;
            task.bytes = bytes;
            task.tag = axisTag(axis);
            dst.push_back(std::move(task));
        }
    };

    if (spec.tp > 1) {
        const auto &tp_groups = layout.groups(Axis::TP);
        if (op.tp_role == TpRole::RowParallel) {
            // Megatron "g" operator: sum partial products forward.
            emit(exec.fwd_collectives, CollectiveKind::AllReduce, tp_groups,
                 out_bytes_group, Axis::TP);
        } else if (op.tp_role == TpRole::ColumnParallel) {
            // Megatron "f" operator: reduce input gradients backward.
            emit(exec.bwd_collectives, CollectiveKind::AllReduce, tp_groups,
                 in_bytes_group, Axis::TP);
        }
    }

    // Attention needs the full K/V sequence; SP gathers it with an
    // exposed all-gather, CP exchanges it ring-style overlapped with the
    // attention compute (Sec. II-A / Fig. 17 discussion).
    const bool attention_op = op.type == OpType::AttentionScore ||
                              op.type == OpType::AttentionContext;
    if (attention_op && (spec.sp > 1 || spec.cp > 1)) {
        // The K (resp. V) operand is the op's [b, n, k] "weight side";
        // dp/fsdp/tatp shard its batch, tp shards its heads.
        const double kv_operand_bytes =
            op.b * op.n * op.k * options_.act_bytes_per_elem /
            (d * f * g * t);
        if (spec.sp > 1) {
            emit(exec.fwd_collectives, CollectiveKind::AllGather,
                 layout.groups(Axis::SP), kv_operand_bytes / (s * c),
                 Axis::SP);
            emit(exec.bwd_collectives, CollectiveKind::ReduceScatter,
                 layout.groups(Axis::SP), kv_operand_bytes / c, Axis::SP);
        }
        if (spec.cp > 1) {
            emit(exec.overlap_collectives, CollectiveKind::AllGather,
                 layout.groups(Axis::CP), kv_operand_bytes / (s * c),
                 Axis::CP);
        }
    }

    if (spec.fsdp > 1 && op.has_weight) {
        // Un-shard weights before use (fwd) and again for backward;
        // reduce-scatter the gradients at step end.
        const double weight_shard_bytes =
            op.n * op.k * options_.weight_bytes_per_elem / (t * g * f);
        emit(exec.fwd_collectives, CollectiveKind::AllGather,
             layout.groups(Axis::FSDP), weight_shard_bytes, Axis::FSDP);
        emit(exec.bwd_collectives, CollectiveKind::AllGather,
             layout.groups(Axis::FSDP), weight_shard_bytes, Axis::FSDP);
        emit(exec.step_collectives, CollectiveKind::ReduceScatter,
             layout.groups(Axis::FSDP),
             op.n * op.k * options_.grad_bytes_per_elem / (t * g),
             Axis::FSDP);
        // Transient full-weight buffer while the op executes.
        exec.comm_buffer_bytes +=
            op.n * op.k * options_.weight_bytes_per_elem / (t * g) *
            (1.0 - 1.0 / f);
    }

    // Weights are replicated across dp, sp and cp; each of those axes
    // needs a gradient all-reduce at step end (this is "CP's weight
    // replication" cost the paper contrasts TATP against).
    if (op.has_weight) {
        const double grad_shard_bytes =
            op.n * op.k * options_.grad_bytes_per_elem / (t * g * f);
        for (Axis axis : {Axis::DP, Axis::SP, Axis::CP}) {
            if (spec.degree(axis) <= 1)
                continue;
            emit(exec.step_collectives, CollectiveKind::AllReduce,
                 layout.groups(axis), grad_shard_bytes, axis);
        }
    }

    // --- TATP stream -----------------------------------------------------
    if (spec.tatp > 1 && op.isGemm()) {
        TatpStream &stream = exec.tatp;
        stream.active = true;
        stream.degree = spec.tatp;

        // Selective transfer policy (Sec. V): stream whichever operand
        // is smaller once the other axes have sharded it. Activations
        // are sharded by batch-style axes; weights by tp/fsdp only.
        const double input_group_bytes =
            op.inputBytes(options_.act_bytes_per_elem) / (d * f * c * s);
        const double wside_full =
            (op.has_weight ? op.n * op.k : op.b * op.n * op.k) *
            options_.weight_bytes_per_elem;
        const double wside_group_bytes =
            wside_full / (op.has_weight ? (t * f) : (d * f * c * s * t));
        stream.stream_weights = wside_group_bytes <= input_group_bytes;
        stream.group_tensor_bytes =
            std::min(wside_group_bytes, input_group_bytes);
        stream.bytes_per_round = stream.group_tensor_bytes / g;
        stream.fwd_flops_per_round = exec.fwd_flops_per_die / g;
        stream.bwd_flops_per_round = exec.bwd_flops_per_die / g;

        // Bidirectional relay holds up to ~half the streamed tensor in
        // flight on the worst die (validated against the orchestrator
        // simulation in tests/tatp_test.cpp), plus double buffering.
        const double held_shards =
            std::floor(static_cast<double>(spec.tatp) / 2.0 - 1.0) + 2.0;
        exec.comm_buffer_bytes +=
            std::max(0.0, held_shards) * stream.bytes_per_round;
    }

    return exec;
}

double
reshardBytesPerDie(const Operator &producer, const ParallelSpec &from,
                   const ParallelSpec &to, const TrainingOptions &options)
{
    if (from == to)
        return 0.0;
    // The producer's output is laid out by `from`; the consumer expects
    // `to`. In the worst case every die exchanges its full local shard;
    // the overlap of the two shardings reduces the moved fraction. We
    // approximate the moved fraction by the normalised difference of the
    // shard factors (identical factors with different axis mixes still
    // move about half the tensor).
    const double out_bytes = producer.outputBytes(options.act_bytes_per_elem);
    const double fa = std::max(1.0, static_cast<double>(from.totalDegree()));
    const double fb = std::max(1.0, static_cast<double>(to.totalDegree()));
    const double per_die_from = out_bytes / fa;
    const double per_die_to = out_bytes / fb;
    const double moved = 0.5 * (per_die_from + per_die_to);
    return moved;
}

}  // namespace temp::parallel
