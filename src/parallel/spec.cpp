#include "parallel/spec.hpp"

#include <cstdio>

#include "common/logging.hpp"

namespace temp::parallel {

const char *
axisName(Axis axis)
{
    switch (axis) {
      case Axis::TATP: return "tatp";
      case Axis::TP: return "tp";
      case Axis::SP: return "sp";
      case Axis::CP: return "cp";
      case Axis::FSDP: return "fsdp";
      case Axis::DP: return "dp";
      case Axis::Count: break;
    }
    return "?";
}

int
ParallelSpec::degree(Axis axis) const
{
    switch (axis) {
      case Axis::TATP: return tatp;
      case Axis::TP: return tp;
      case Axis::SP: return sp;
      case Axis::CP: return cp;
      case Axis::FSDP: return fsdp;
      case Axis::DP: return dp;
      case Axis::Count: break;
    }
    panic("ParallelSpec::degree: bad axis");
}

void
ParallelSpec::setDegree(Axis axis, int value)
{
    switch (axis) {
      case Axis::TATP: tatp = value; return;
      case Axis::TP: tp = value; return;
      case Axis::SP: sp = value; return;
      case Axis::CP: cp = value; return;
      case Axis::FSDP: fsdp = value; return;
      case Axis::DP: dp = value; return;
      case Axis::Count: break;
    }
    panic("ParallelSpec::setDegree: bad axis");
}

bool
ParallelSpec::valid() const
{
    if (dp < 1 || fsdp < 1 || tp < 1 || sp < 1 || cp < 1 || tatp < 1 ||
        pp < 1) {
        return false;
    }
    if (dp > 1 && fsdp > 1)
        return false;
    return true;
}

std::string
ParallelSpec::str() const
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "(dp=%d,tp=%d,sp=%d,tatp=%d", dp, tp, sp,
                  tatp);
    std::string out(buf);
    if (fsdp > 1)
        out += ",fsdp=" + std::to_string(fsdp);
    if (cp > 1)
        out += ",cp=" + std::to_string(cp);
    if (pp > 1)
        out += ",pp=" + std::to_string(pp);
    if (coupled_sp)
        out += ",csp";
    out += ")";
    return out;
}

}  // namespace temp::parallel
