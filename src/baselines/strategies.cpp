#include "baselines/strategies.hpp"

#include <algorithm>
#include <limits>

#include "common/logging.hpp"

namespace temp::baselines {

using parallel::ParallelSpec;

const char *
baselineName(BaselineKind kind)
{
    switch (kind) {
      case BaselineKind::Megatron1: return "Mega";
      case BaselineKind::MegatronSP: return "MeSP";
      case BaselineKind::Fsdp: return "FSDP";
    }
    return "?";
}

BaselineGenerator::BaselineGenerator(const sim::TrainingSimulator &simulator,
                                     ThreadPool *pool)
    : sim_(simulator), pool_(pool)
{
}

std::vector<ParallelSpec>
BaselineGenerator::candidateFamily(BaselineKind kind,
                                   const model::ModelConfig &model) const
{
    solver::StrategySpaceOptions space;
    space.allow_tatp = false;
    switch (kind) {
      case BaselineKind::Megatron1:
        space.allow_sp = false;
        space.allow_cp = false;
        space.allow_fsdp = false;
        space.max_tp = 8;  // NVLink-domain-era TP limit
        break;
      case BaselineKind::MegatronSP:
        // Megatron-3's SP is TP-coupled (applied below), so the
        // independent SP axis stays off; CP is its long-sequence tool.
        space.allow_sp = false;
        space.allow_cp = true;
        space.allow_fsdp = false;
        space.max_tp = 32;
        break;
      case BaselineKind::Fsdp:
        space.allow_dp = false;
        space.allow_fsdp = true;
        space.allow_tp = false;
        space.allow_sp = false;
        space.allow_cp = false;
        break;
    }
    std::vector<ParallelSpec> family =
        solver::enumerateStrategies(sim_.wafer().dieCount(), model, space);
    if (kind == BaselineKind::MegatronSP) {
        for (ParallelSpec &spec : family)
            spec.coupled_sp = spec.tp > 1;
    }
    return family;
}

TunedBaseline
BaselineGenerator::tune(BaselineKind kind,
                        const model::ComputeGraph &graph) const
{
    const std::vector<ParallelSpec> family =
        candidateFamily(kind, graph.config());
    if (family.empty())
        fatal("BaselineGenerator: empty family for %s",
              baselineName(kind));

    // Simulate the whole family up front — in parallel when a pool is
    // available (the simulator is thread-safe) — then select serially
    // in family order so the chosen config never depends on timing.
    std::vector<sim::PerfReport> reports(family.size());
    auto simulate_one = [&](std::size_t k) {
        reports[k] = sim_.simulate(graph, family[k]);
    };
    if (pool_ != nullptr)
        pool_->parallelFor(family.size(), simulate_one);
    else
        for (std::size_t k = 0; k < family.size(); ++k)
            simulate_one(k);

    TunedBaseline best;
    bool have_fit = false;
    double best_time = std::numeric_limits<double>::infinity();
    double best_mem = std::numeric_limits<double>::infinity();

    for (std::size_t k = 0; k < family.size(); ++k) {
        const ParallelSpec &spec = family[k];
        const sim::PerfReport &report = reports[k];
        if (!report.feasible)
            continue;
        if (!report.oom) {
            if (!have_fit || report.step_time < best_time) {
                have_fit = true;
                best_time = report.step_time;
                best.spec = spec;
                best.report = report;
            }
        } else if (!have_fit && report.peak_mem_bytes < best_mem) {
            // Track the least-infeasible configuration for OOM bars.
            best_mem = report.peak_mem_bytes;
            best.spec = spec;
            best.report = report;
        }
    }
    best.all_oom = !have_fit;
    return best;
}

}  // namespace temp::baselines
