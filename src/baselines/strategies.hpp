/**
 * @file
 * Baseline training-system strategy generators (Sec. VIII-A).
 *
 * The paper's six baselines combine three partitioning schemes with two
 * mapping engines:
 *  - Megatron-1: hierarchical DP x TP (PP excluded intra-wafer,
 *    Sec. II-A);
 *  - Megatron-3 ("MeSP"): DP x TP x SP/CP;
 *  - FSDP: fully-sharded data parallelism (optionally with a small TP
 *    factor);
 * each tuned to its best configuration per model by the same simulator
 * that evaluates it — exactly how the baselines would self-tune.
 */
#pragma once

#include "common/thread_pool.hpp"
#include "sim/trainer_sim.hpp"
#include "solver/strategy_space.hpp"

namespace temp::baselines {

/// The partitioning schemes of the paper's baseline matrix.
enum class BaselineKind
{
    Megatron1,
    MegatronSP,
    Fsdp,
};

/// Returns the paper's short name ("Mega", "MeSP", "FSDP").
const char *baselineName(BaselineKind kind);

/// Outcome of tuning one baseline on one model.
struct TunedBaseline
{
    parallel::ParallelSpec spec;
    sim::PerfReport report;
    /// True when every configuration in the family runs out of memory
    /// (the "OOM" bars of Fig. 13).
    bool all_oom = false;
};

/// Tunes baseline partitioning schemes with a given mapping engine.
class BaselineGenerator
{
  public:
    /**
     * @param pool Optional pool: the tuning sweep simulates the whole
     *        configuration family in parallel (selection stays serial
     *        in family order, so the result is thread-count
     *        independent).
     */
    explicit BaselineGenerator(const sim::TrainingSimulator &simulator,
                               ThreadPool *pool = nullptr);

    /// The configuration family a baseline scheme may choose from.
    std::vector<parallel::ParallelSpec> candidateFamily(
        BaselineKind kind, const model::ModelConfig &model) const;

    /**
     * Picks the family member with the best simulated step time among
     * memory-feasible configurations; falls back to the lowest-memory
     * configuration (flagged all_oom) when none fits.
     */
    TunedBaseline tune(BaselineKind kind,
                       const model::ComputeGraph &graph) const;

  private:
    const sim::TrainingSimulator &sim_;
    ThreadPool *pool_;
};

}  // namespace temp::baselines
