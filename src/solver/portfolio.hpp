/**
 * @file
 * The engine-racing side of the level-2 refinement layer:
 *
 *  - BeamTabuRefiner: deterministic beam search over the genome
 *    encoding with a tabu set of genome hashes, so no plan is ever
 *    simulated twice within a run (every fitness batch is pure
 *    exploration).
 *  - ExactChainEngine: branch-and-bound over the RAW additive
 *    (op, candidate) matrix — the same enumeration ExhaustiveSolver
 *    performs, behind the SearchEngine seam — for chains small enough
 *    to certify the heuristics' optimality gap.
 *  - PortfolioEngine: races member engines round-robin, one quantum
 *    slice per turn, under one shared budget gauge; the best member's
 *    incumbent wins, and per-member EngineAccounts report who did.
 *
 * All three observe the RefineRun quantum-slicing contract: budgets are
 * checked between slices only, so a budgeted run is the bit-exact
 * prefix of the unbudgeted one.
 */
#pragma once

#include <memory>
#include <vector>

#include "solver/search_engine.hpp"

namespace temp::solver {

/**
 * Deterministic beam search with tabu memory. Each round mutates every
 * beam member into a fixed number of neighbour proposals (drawn before
 * any fitness is known), drops proposals whose genome hash was already
 * scored this run, scores the survivors as ONE StepEvaluator batch,
 * then keeps the best `width` plans of beam ∪ proposals.
 *
 * Checkpoints capture only the incumbent (the tabu set is not
 * serialised), so beginFrom() degrades to a cold begin(): resume()
 * re-runs the identical deterministic search — bit-identical final
 * plan, recomputed rather than continued.
 */
class BeamTabuRefiner : public SearchEngine
{
  public:
    BeamTabuRefiner(int rounds, std::uint64_t seed);

    const char *name() const override { return "beamtabu"; }
    std::unique_ptr<RefineRun> begin(
        const RefineContext &ctx,
        eval::StepEvaluator &steps) const override;
    std::unique_ptr<RefineRun> beginFrom(
        const RefineContext &ctx, eval::StepEvaluator &steps,
        const RefineCheckpoint &checkpoint) const override;

    /// Beam width (plans kept per round).
    static constexpr int kWidth = 6;
    /// Neighbour proposals drawn per beam member per round.
    static constexpr int kProposals = 4;

  private:
    class Run;
    struct BeamState;
    BeamState seedState(const RefineContext &ctx,
                        eval::StepEvaluator &steps) const;
    void stepRound(const RefineContext &ctx, eval::StepEvaluator &steps,
                   BeamState &state) const;

    int rounds_;
    std::uint64_t seed_;
};

/**
 * Exact branch-and-bound over the RAW additive cost matrix
 * (RefineContext::op_cost) plus inter-op resharding transitions — the
 * identical enumeration ExhaustiveSolver::solve() performs (candidate
 * index order, strict `partial >= best` pruning), so on chains both
 * can finish, the two agree bit-for-bit on the additive objective.
 *
 * The engine gates itself: it only searches when the context carries
 * the matrix and cost model, the chain has at most kMaxOps ops and
 * kMaxCands candidates, and the node budget suffices; otherwise it
 * keeps the DP incumbent (a completed run, zero slices). The whole
 * B&B is ONE quantum slice — deterministic by the node budget, never
 * wall-clock — followed by one full-step simulation of the exact
 * additive optimum, so the returned incumbent is scored in the same
 * currency as every other engine's.
 */
class ExactChainEngine : public SearchEngine
{
  public:
    ExactChainEngine() = default;

    const char *name() const override { return "exact"; }
    std::unique_ptr<RefineRun> begin(
        const RefineContext &ctx,
        eval::StepEvaluator &steps) const override;
    std::unique_ptr<RefineRun> beginFrom(
        const RefineContext &ctx, eval::StepEvaluator &steps,
        const RefineCheckpoint &checkpoint) const override;

    /// Gate thresholds: beyond either, the engine keeps the DP plan.
    static constexpr int kMaxOps = 12;
    static constexpr int kMaxCands = 48;
    /// Deterministic search budget (dfs nodes), replacing the
    /// exhaustive baseline's wall-clock timeout.
    static constexpr long kMaxNodes = 4'000'000;

    /// Result of the additive branch-and-bound (testable directly).
    struct BnbResult
    {
        std::vector<int> assignment;  ///< empty when nothing feasible
        double additive_cost = 0.0;   ///< objective of `assignment`
        long nodes = 0;               ///< dfs nodes expanded
        bool complete = false;        ///< search ran to exhaustion
    };

    /**
     * The search itself: minimises sum(op_cost[i][g_i]) plus
     * model.interOpTime(op(i-1), cand[g_{i-1}], cand[g_i]) whenever
     * the spec changes across an edge. Aborts (complete=false) when
     * max_nodes is exceeded; an aborted search's incumbent is still
     * valid, just not certified optimal.
     */
    static BnbResult branchAndBound(
        const model::ComputeGraph &graph,
        const std::vector<parallel::ParallelSpec> &candidates,
        const std::vector<std::vector<double>> &op_cost,
        const cost::WaferCostModel &model, long max_nodes);

  private:
    class Run;
};

/**
 * Races member engines round-robin under one budget: each portfolio
 * slice advances exactly one member by one of *its* slices (a member's
 * lazily-issued seed batch counts as its first slice). The incumbent
 * is the best member outcome so far — ties break toward the
 * earlier-registered member — and accounts() reports one EngineAccount
 * per member that ran, with `winner` marking the incumbent's engine.
 *
 * Checkpoints cannot capture multi-member state, so beginFrom()
 * degrades to a cold begin(): resume() re-races deterministically and
 * lands on the bit-identical final plan.
 */
class PortfolioEngine : public SearchEngine
{
  public:
    explicit PortfolioEngine(
        std::vector<std::unique_ptr<SearchEngine>> members);

    const char *name() const override { return "portfolio"; }
    std::unique_ptr<RefineRun> begin(
        const RefineContext &ctx,
        eval::StepEvaluator &steps) const override;
    std::unique_ptr<RefineRun> beginFrom(
        const RefineContext &ctx, eval::StepEvaluator &steps,
        const RefineCheckpoint &checkpoint) const override;

  private:
    class Run;
    std::vector<std::unique_ptr<SearchEngine>> members_;
};

}  // namespace temp::solver
