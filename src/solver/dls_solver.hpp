/**
 * @file
 * The Dual-Level Search (DLS) algorithm of the Dual-Level Wafer Solver
 * (Sec. VII-B, Fig. 12b).
 *
 * Level structure:
 *  - graph partition: the operator chain is cut at residual-free
 *    boundaries into sub-graphs, shrinking the per-instance space;
 *  - level 1, dynamic programming: per sub-chain, an exact DP over
 *    (operator, strategy) states with inter-operator resharding
 *    transition costs (Eq. 3) localises decisions;
 *  - level 2, pluggable refinement (solver/search_engine.hpp): genomes
 *    encode the per-operator strategy choices; fitness is the *full*
 *    training-step simulation (which captures cross-operator effects
 *    the additive DP model cannot: merged gradient-sync bucketing,
 *    contention, memory), memoized and batch-parallel behind the
 *    shared eval::StepEvaluator. The default engine is the paper's
 *    genetic refinement; annealing and DP-only engines plug into the
 *    same seam.
 */
#pragma once

#include <memory>

#include "eval/cost_evaluator.hpp"
#include "eval/step_evaluator.hpp"
#include "sim/trainer_sim.hpp"
#include "solver/search_engine.hpp"
#include "solver/solve_budget.hpp"
#include "solver/strategy_space.hpp"

namespace temp::solver {

/// Tuning of the dual-level search.
struct SolverConfig
{
    StrategySpaceOptions space;
    /// Legacy master switch: false forces the NoRefine engine
    /// regardless of `engine` (kept for existing configs/call sites).
    bool enable_ga = true;
    /// Which level-2 refinement runs after the DP.
    SearchEngineKind engine = SearchEngineKind::Genetic;
    int ga_population = 16;
    int ga_generations = 20;
    double ga_mutation_rate = 0.25;
    /// Tuning of the annealing engine (used when engine == Annealing).
    AnnealingConfig annealing;
    std::uint64_t seed = 1;
    /**
     * Fill the (operator, strategy) cost matrix with the DNN surrogate
     * (Sec. VII-A): only `surrogate_sample_fraction` of the cells are
     * measured with the simulator, the rest are predicted. The paper's
     * "100-1000x more efficient than simulation" search mode.
     */
    bool use_surrogate = false;
    double surrogate_sample_fraction = 0.3;
    /**
     * Threads for the evaluator's batch matrix fill when the solver
     * owns its evaluator (an injected evaluator brings its own pool).
     * 0 means hardware concurrency. Results are bit-exact across
     * thread counts.
     */
    int eval_threads = 0;
    /**
     * The solve budget (solver.deadline.* config keys). The quantum
     * cap is part of the result-determining configuration — two solves
     * with equal quantum budgets return bit-identical results on any
     * machine — while the wall-clock cap and cancel token only ever
     * round a run *down* to a quantum boundary. Zero caps and an
     * unarmed token mean unbudgeted (the default).
     */
    SolveBudget deadline;
};

/**
 * Warm-start hints for an incremental re-solve — the scenario engine's
 * post-fault recovery path. A hinted solve differs from a cold solve
 * in two deterministic ways: the previous winning plan is injected
 * into the level-2 seed pool, and the uniform-seeding batch is capped
 * to the additive matrix's top-K candidates instead of full-step
 * simulating every candidate. Both are pure functions of (graph,
 * hints, config, seed), so a hinted solve replays bit-identically.
 */
struct SolveHints
{
    /**
     * The previous winning per-op specs, injected into the level-2
     * seed pool as a genome. Ops whose old spec is no longer in the
     * candidate set (the degraded wafer changed the space) fall back
     * to the fresh DP choice for that op; an empty or length-mismatched
     * vector injects nothing.
     */
    std::vector<parallel::ParallelSpec> seed_specs;
    /**
     * Cap on the uniform-seeding batch: only the top-K candidates
     * ranked by the already-filled additive cost matrix are full-step
     * simulated (<= 0 simulates every candidate, the cold behaviour).
     * The cap is what makes a warm re-solve run strictly fewer step
     * sims than a cold solve of the same event whenever the candidate
     * set is larger than K.
     */
    int uniform_top_k = 8;
};

/// Outcome of a search.
struct SolverResult
{
    bool feasible = false;
    std::vector<parallel::ParallelSpec> per_op_specs;
    /// Simulated step time of the best strategy.
    double step_time_s = 0.0;
    /// Full report of the best strategy.
    sim::PerfReport report;
    /// Wall-clock search time.
    double search_time_s = 0.0;
    /**
     * Total (op, strategy) cost queries the search issued: matrix
     * cells (measured, cached or predicted), DP transition
     * evaluations and uniform-candidate simulations. The work the
     * *algorithm* asked for, independent of caching.
     */
    long evaluations = 0;
    /**
     * Unique exact measurements of (op, strategy) matrix cells — cache
     * misses only, counted once (what surrogate mode and the shared
     * evaluator cache reduce). `evaluations - cache served` accounting
     * stays honest: matrix_measurements + cache_hits + predicted cells
     * add up to the matrix queries issued.
     */
    long matrix_measurements = 0;
    /// Matrix queries served from the evaluator cache.
    long cache_hits = 0;
    /**
     * Unique full-step simulations this solve ran (uniform seeding,
     * refiner fitness, the final report) — the full-step mirror of
     * matrix_measurements. step_sims + step_cache_hits equals the
     * step queries issued, and every one of them is also counted in
     * `evaluations`; a repeat solve on a shared StepEvaluator reports
     * step_sims == 0.
     */
    long step_sims = 0;
    /// Step queries served from the StepEvaluator memo.
    long step_cache_hits = 0;
    /**
     * Collective-schedule lowerings this solve ran — the network-layer
     * mirror of matrix_measurements/step_sims. Lowerings are unique
     * (task, fault-epoch) schedules built; every further need for one
     * is a schedule_cache_hit (queries absorbed by the higher-level
     * breakdown/step memos charge their schedule work as hits too, so
     * a repeat solve on a shared framework reports
     * schedule_lowerings == 0 with schedule_cache_hits > 0).
     */
    long schedule_lowerings = 0;
    /// Schedule queries served by (or absorbed above) the cache.
    long schedule_cache_hits = 0;
    /**
     * Memo entries (breakdowns, layouts, step reports) evicted during
     * this solve to honour a finite cache budget. Zero under the
     * default unbounded budgets. Nonzero eviction with bit-identical
     * results is bounded mode working as designed; the re-measurement
     * cost it induces shows up honestly in matrix_measurements /
     * step_sims instead of being hidden.
     */
    long cache_evictions = 0;
    /// Number of candidate specs per operator.
    int candidate_count = 0;
    /**
     * True when the solve budget tripped before the search completed:
     * the result is the best-feasible-so-far at the quantum boundary
     * where the budget latched (never a torn mid-batch state). The
     * mandatory preamble — matrix fill, uniform seeding, DP, DP-plan
     * simulation — always runs, so even an exhausted solve returns a
     * fully simulated plan.
     */
    bool budget_exhausted = false;
    /// Budget quanta (full-step fitness queries) this solve charged.
    long quanta_used = 0;
    /// Per-engine refinement accounting (one entry for single engines,
    /// one per raced member under the portfolio; empty when level 2
    /// never ran — single candidate or budget exhausted in preamble).
    std::vector<EngineAccount> engine_accounts;
};

/// The DLS solver.
class DlsSolver
{
  public:
    /**
     * @param simulator Full-step simulator (refiner fitness, final
     *        report).
     * @param config Search tuning.
     * @param evaluator Optional shared evaluation backend; when null
     *        the solver owns a caching exact evaluator over the
     *        simulator's cost model (config.eval_threads wide).
     * @param steps Optional shared full-step evaluator (uniform
     *        seeding, refiner fitness, final report); when null the
     *        solver owns one over `simulator` (config.eval_threads
     *        wide). Sharing it across solves is what makes repeat
     *        optimisations re-simulate nothing.
     */
    DlsSolver(const sim::TrainingSimulator &simulator,
              SolverConfig config = SolverConfig{},
              eval::CostEvaluator *evaluator = nullptr,
              eval::StepEvaluator *steps = nullptr);

    /// Finds the best per-operator strategy assignment for the graph.
    SolverResult solve(const model::ComputeGraph &graph) const
    {
        return solve(graph, nullptr);
    }

    /**
     * Finds the best assignment, warm-started from @p hints (see
     * SolveHints; null hints is exactly the cold solve).
     */
    SolverResult solve(const model::ComputeGraph &graph,
                       const SolveHints *hints) const
    {
        return solve(graph, hints, SolveBudget{});
    }

    /**
     * Finds the best assignment under the tighter of @p budget and the
     * configured deadline (the serving layer passes a request's
     * remaining deadline and cancel token here). Budget checks happen
     * only at quantum boundaries, so a budgeted solve returns the
     * bit-exact prefix of the unbudgeted one, flagged via
     * SolverResult::budget_exhausted.
     */
    SolverResult solve(const model::ComputeGraph &graph,
                       const SolveHints *hints,
                       const SolveBudget &budget) const;

    const SolverConfig &config() const { return config_; }

    /// The evaluation backend this solver queries.
    eval::CostEvaluator &evaluator() const { return *eval_; }

    /// The full-step evaluation backend this solver queries.
    eval::StepEvaluator &stepEvaluator() const { return *steps_; }

  private:
    /// DP over one sub-chain [begin, end); returns per-op candidate ids.
    std::vector<int> solveChainDp(
        const model::ComputeGraph &graph, int begin, int end,
        const std::vector<parallel::ParallelSpec> &candidates,
        const std::vector<std::vector<double>> &op_cost,
        long *evaluations) const;

    const sim::TrainingSimulator &sim_;
    SolverConfig config_;
    /// Owned backends when none are injected.
    std::unique_ptr<ThreadPool> owned_pool_;
    std::unique_ptr<eval::ExactEvaluator> owned_exact_;
    std::unique_ptr<eval::CachingEvaluator> owned_eval_;
    std::unique_ptr<eval::StepEvaluator> owned_steps_;
    eval::CostEvaluator *eval_ = nullptr;
    eval::StepEvaluator *steps_ = nullptr;
    /// The level-2 refinement engine config_ selects.
    std::unique_ptr<SearchEngine> engine_;
};

/**
 * The ILP-substitute baseline for the Sec. VIII-H search-time
 * comparison: branch-and-bound exhaustive enumeration over the same
 * additive objective the DP optimises. Exponential in operator count.
 */
class ExhaustiveSolver
{
  public:
    /// @param evaluator Optional shared backend (as in DlsSolver).
    ExhaustiveSolver(const sim::TrainingSimulator &simulator,
                     StrategySpaceOptions space,
                     eval::CostEvaluator *evaluator = nullptr);

    /**
     * Solves by full enumeration.
     *
     * @param op_limit Optional cap on the number of leading operators
     *        considered (<=0 means all); keeps bench runtimes sane.
     * @param time_budget_s Abort (marking infeasible) past this budget.
     */
    SolverResult solve(const model::ComputeGraph &graph, int op_limit = 0,
                       double time_budget_s = 300.0) const;

  private:
    const sim::TrainingSimulator &sim_;
    StrategySpaceOptions space_;
    std::unique_ptr<eval::ExactEvaluator> owned_eval_;
    eval::CostEvaluator *eval_ = nullptr;
};

}  // namespace temp::solver
