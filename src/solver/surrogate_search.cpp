#include "solver/surrogate_search.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace temp::solver {

using parallel::ParallelSpec;

OpCostSurrogate::OpCostSurrogate(std::uint64_t seed) : dnn_(seed)
{
    dnn_.epochs = epochs;
}

std::vector<double>
OpCostSurrogate::features(const model::Operator &op,
                          const ParallelSpec &spec)
{
    auto lg = [](double v) { return std::log2(std::max(1.0, v)); };
    return {
        lg(op.b),
        lg(op.m),
        lg(op.n),
        lg(op.k),
        op.isGemm() ? 1.0 : 0.0,
        op.has_weight ? 1.0 : 0.0,
        static_cast<double>(static_cast<int>(op.tp_role)),
        lg(spec.dp),
        lg(spec.fsdp),
        lg(spec.tp),
        lg(spec.sp),
        lg(spec.cp),
        lg(spec.tatp),
        lg(spec.totalDegree()),
        lg(op.forwardFlops() / spec.totalDegree()),
    };
}

void
OpCostSurrogate::fit(const std::vector<cost::CostSample> &samples)
{
    dnn_.epochs = epochs;
    dnn_.fit(samples);
}

double
OpCostSurrogate::predict(const model::Operator &op,
                         const ParallelSpec &spec) const
{
    return dnn_.predict(features(op, spec));
}

cost::FidelityReport
OpCostSurrogate::validate(const std::vector<cost::CostSample> &samples) const
{
    return cost::evaluatePredictor(dnn_, samples);
}

long
fillCostMatrixWithSurrogate(
    const model::ComputeGraph &graph,
    const std::vector<ParallelSpec> &candidates, double sample_fraction,
    const std::function<double(int, int)> &measure, Rng &rng,
    std::vector<std::vector<double>> &out_matrix)
{
    const int n_ops = graph.opCount();
    const int n_cand = static_cast<int>(candidates.size());
    out_matrix.assign(n_ops, std::vector<double>(n_cand, 0.0));

    std::vector<cost::CostSample> train;
    std::vector<std::pair<int, int>> pending;
    long measured = 0;

    for (int i = 0; i < n_ops; ++i) {
        for (int s = 0; s < n_cand; ++s) {
            // Measure the whole first operator row (so every candidate
            // appears in training) plus a random sample of the rest.
            const bool sampled =
                i == 0 || rng.bernoulli(sample_fraction);
            if (sampled) {
                const double exact = measure(i, s);
                ++measured;
                out_matrix[i][s] = exact;
                if (std::isfinite(exact)) {
                    cost::CostSample sample;
                    sample.features =
                        OpCostSurrogate::features(graph.op(i),
                                                  candidates[s]);
                    sample.latency_s = exact;
                    train.push_back(std::move(sample));
                }
            } else {
                pending.emplace_back(i, s);
            }
        }
    }

    if (train.empty())
        fatal("fillCostMatrixWithSurrogate: no finite training samples");

    OpCostSurrogate surrogate;
    surrogate.fit(train);
    for (const auto &[i, s] : pending)
        out_matrix[i][s] = surrogate.predict(graph.op(i), candidates[s]);
    return measured;
}

}  // namespace temp::solver
