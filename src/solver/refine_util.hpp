/**
 * @file
 * Internal helpers shared by the search-engine implementations
 * (search_engine.cpp, portfolio.cpp). Not part of the public solver
 * API — everything here assumes a RefineContext whose views outlive
 * the call, exactly as SearchEngine::begin() documents.
 */
#pragma once

#include <memory>
#include <vector>

#include "solver/search_engine.hpp"

namespace temp::solver::detail {

/// Scores one genome through the step memo (one budget quantum).
double fitnessOf(const RefineContext &ctx, eval::StepEvaluator &steps,
                 const std::vector<int> &genome);

/// Scores a set of genomes as one deterministic parallel batch (the
/// batch is one atomic charge against the context's budget gauge).
std::vector<double> batchFitness(
    const RefineContext &ctx, eval::StepEvaluator &steps,
    const std::vector<std::vector<int>> &genomes);

/// True when the context's gauge has tripped (checked by the drivers
/// between quantum slices only).
bool gaugeExhausted(const RefineContext &ctx);

/// Candidate indices worth drawing from: the feasible uniform plans,
/// or every candidate when none is uniformly feasible.
std::vector<int> drawOrder(const RefineContext &ctx);

/// The warm-start genomes of a context that pass validation (length ==
/// opCount, every gene a valid candidate index); invalid genomes drop.
std::vector<std::vector<int>> validSeeds(const RefineContext &ctx);

/// A run that is already over: holds a fixed incumbent (used by the
/// base beginFrom(), NoRefine, and engines that gate themselves off).
std::unique_ptr<RefineRun> makeFixedRun(const char *engine,
                                        int steps_done,
                                        RefineOutcome outcome);

}  // namespace temp::solver::detail
