#include "solver/dls_solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>

#include "common/kernels.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "cost/breakdown_reduce.hpp"
#include "eval/surrogate_evaluator.hpp"

namespace temp::solver {

using parallel::ParallelSpec;

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

DlsSolver::DlsSolver(const sim::TrainingSimulator &simulator,
                     SolverConfig config, eval::CostEvaluator *evaluator,
                     eval::StepEvaluator *steps)
    : sim_(simulator), config_(config),
      engine_(makeSearchEngine(config_))
{
    if (evaluator == nullptr || steps == nullptr)
        owned_pool_ = std::make_unique<ThreadPool>(config_.eval_threads);
    if (evaluator != nullptr) {
        eval_ = evaluator;
    } else {
        owned_exact_ = std::make_unique<eval::ExactEvaluator>(
            sim_.costModel(), owned_pool_.get(),
            /*memoize_breakdowns=*/false);
        owned_eval_ =
            std::make_unique<eval::CachingEvaluator>(*owned_exact_);
        eval_ = owned_eval_.get();
    }
    if (steps != nullptr) {
        steps_ = steps;
    } else {
        owned_steps_ = std::make_unique<eval::StepEvaluator>(
            sim_, owned_pool_.get());
        steps_ = owned_steps_.get();
    }
}

std::vector<int>
DlsSolver::solveChainDp(const model::ComputeGraph &graph, int begin, int end,
                        const std::vector<ParallelSpec> &candidates,
                        const std::vector<std::vector<double>> &op_cost,
                        long *evaluations) const
{
    const int n_ops = end - begin;
    const int n_cand = static_cast<int>(candidates.size());
    const double inf = std::numeric_limits<double>::infinity();

    // Two flat DP rows (previous / current op) plus a flat back-pointer
    // matrix: the fill walks dense contiguous strides, and the per-state
    // minimisation runs through the vectorized min-plus kernel over a
    // dense transition row built per state. Results are bit-identical
    // to the former nested loops: the kernel keeps the
    // (prev + transition) + cost association, the strictly-less
    // first-minimum tie-break, and +inf entries (infeasible
    // predecessors) lose every strict comparison exactly like the old
    // `continue` skips.
    std::vector<double> dp_prev(n_cand), dp_cur(n_cand, inf);
    std::vector<int> back(static_cast<std::size_t>(n_ops) * n_cand, -1);
    std::vector<double> trans_row(n_cand);

    for (int s = 0; s < n_cand; ++s)
        dp_prev[s] = op_cost[begin][s];

    const cost::WaferCostModel &model = sim_.costModel();
    for (int i = 1; i < n_ops; ++i) {
        const model::Operator &producer = graph.op(begin + i - 1);
        const double *row_cost = op_cost[begin + i].data();
        // The former loops counted one evaluation per (feasible state,
        // feasible predecessor) pair; the predecessor count is shared
        // by every state of this op.
        long finite_prev = 0;
        for (int p = 0; p < n_cand; ++p)
            finite_prev += std::isinf(dp_prev[p]) ? 0 : 1;
        for (int s = 0; s < n_cand; ++s) {
            const double c = row_cost[s];
            if (std::isinf(c)) {
                dp_cur[s] = inf;
                continue;
            }
            for (int p = 0; p < n_cand; ++p) {
                trans_row[p] =
                    p != s ? model.interOpTime(producer, candidates[p],
                                               candidates[s])
                           : 0.0;
            }
            *evaluations += finite_prev;
            const kernels::MinPlus r = kernels::minPlusArgmin(
                dp_prev.data(), trans_row.data(), c, n_cand);
            dp_cur[s] = r.value;
            back[static_cast<std::size_t>(i) * n_cand + s] = r.index;
        }
        std::swap(dp_prev, dp_cur);
    }

    // Trace back from the best terminal state (dp_prev holds the last
    // filled row after the final swap).
    int best = 0;
    for (int s = 1; s < n_cand; ++s)
        if (dp_prev[s] < dp_prev[best])
            best = s;

    std::vector<int> assignment(n_ops, 0);
    int cur = best;
    for (int i = n_ops - 1; i >= 0; --i) {
        assignment[i] = cur;
        cur = i > 0 ? back[static_cast<std::size_t>(i) * n_cand + cur]
                    : cur;
    }
    return assignment;
}

SolverResult
DlsSolver::solve(const model::ComputeGraph &graph,
                 const SolveHints *hints,
                 const SolveBudget &budget) const
{
    const double t_start = now();
    SolverResult result;

    // One gauge per solve, metering the tighter of the configured
    // deadline and the caller's budget (the serving layer passes a
    // request's remaining deadline + cancel token). Constructed first
    // so the wall-clock cap measures the whole solve. The preamble —
    // matrix fill, uniform seeding, DP, DP-plan simulation — is
    // mandatory regardless of the budget (an exhausted solve still
    // returns a fully simulated plan); only level-2 refinement yields.
    const SolveBudget effective = config_.deadline.mergedWith(budget);
    common::BudgetGauge gauge = effective.gauge();

    // On a degraded wafer the die budget is the largest usable
    // component; power-of-two degrees then cannot cover every die, so
    // occupancy is relaxed and near-full strategies are kept
    // (Fig. 20a step 2).
    const int die_budget = sim_.wafer().usableDieCount();
    StrategySpaceOptions space = config_.space;
    if (die_budget < sim_.wafer().dieCount())
        space.full_occupancy = false;
    std::vector<ParallelSpec> candidates =
        enumerateStrategies(die_budget, graph.config(), space);
    if (!space.full_occupancy) {
        std::erase_if(candidates, [&](const ParallelSpec &s) {
            return s.totalDegree() <= die_budget / 2;
        });
    }
    result.candidate_count = static_cast<int>(candidates.size());
    if (candidates.empty())
        return result;

    // Per-(op, candidate) cost matrix under the additive model
    // (Eq. 2's T_intra with the per-op share of step communication),
    // filled through the shared evaluation layer: layouts and
    // breakdowns are memoized, misses run in parallel, and the
    // measurement/hit split keeps the accounting honest.
    const double inf = std::numeric_limits<double>::infinity();
    const eval::EvalStats stats_before = eval_->stats();
    const eval::StepStats step_stats_before = steps_->stats();
    std::vector<std::vector<double>> op_cost;
    if (config_.use_surrogate) {
        eval::SurrogateEvaluator surrogate(
            *eval_, config_.surrogate_sample_fraction);
        Rng sample_rng(config_.seed + 97);
        const eval::SurrogateEvaluator::MatrixFill fill =
            surrogate.fillMatrix(graph, candidates, sample_rng);
        op_cost = fill.cost;
        result.evaluations +=
            fill.sampled + fill.predicted + fill.exact_fallbacks;
        // Same boundary poll the budget-aware evaluateBatch performs:
        // a wall cap or cancel that expired during the fill latches
        // here, at the quantum boundary after the atomic batch.
        gauge.exhausted();
    } else {
        std::vector<eval::EvalRequest> requests;
        requests.reserve(static_cast<std::size_t>(graph.opCount()) *
                         candidates.size());
        for (int i = 0; i < graph.opCount(); ++i)
            for (const ParallelSpec &spec : candidates)
                requests.push_back({i, spec, true});
        const std::vector<cost::OpCostBreakdown> cells =
            eval_->evaluateBatch(graph, requests, &gauge);
        op_cost.assign(graph.opCount(),
                       std::vector<double>(candidates.size(), inf));
        // Row-major cells -> per-op rows through the batched totals
        // kernel (feasible ? total() : inf).
        std::vector<double> totals(cells.size());
        cost::breakdownTotals(cells, totals.data());
        for (int i = 0; i < graph.opCount(); ++i) {
            const double *row =
                totals.data() +
                static_cast<std::size_t>(i) * candidates.size();
            op_cost[i].assign(row, row + candidates.size());
        }
        result.evaluations += static_cast<long>(requests.size());
    }
    const eval::EvalStats matrix_stats = eval_->stats() - stats_before;
    result.matrix_measurements = matrix_stats.measurements;
    result.cache_hits = matrix_stats.cache_hits;

    // Memory awareness: evaluate each candidate as a uniform layer spec
    // through the full simulator — one deterministic StepEvaluator
    // batch, memoized across solves; specs whose uniform assignment
    // blows HBM get a soft penalty in the additive matrix so the DP
    // prefers memory-feasible plans. The best uniform results also
    // seed the refinement engine.
    // Warm re-solves (scenario recovery) cap this batch: the uniform
    // sweep is the dominant step-sim cost of a solve, and the additive
    // matrix — already filled above — ranks candidates well enough to
    // pick the K worth full-step simulating. Candidates outside the
    // cap get an explicit infeasible placeholder report so they never
    // enter the uniform seeding order.
    const bool cap_uniform =
        hints != nullptr && hints->uniform_top_k > 0 &&
        static_cast<std::size_t>(hints->uniform_top_k) <
            candidates.size();
    std::vector<std::size_t> uniform_set;
    if (cap_uniform) {
        std::vector<std::pair<double, std::size_t>> ranked;
        ranked.reserve(candidates.size());
        for (std::size_t s = 0; s < candidates.size(); ++s) {
            double sum = 0.0;
            for (int i = 0; i < graph.opCount(); ++i)
                sum += op_cost[i][s];
            ranked.emplace_back(sum, s);
        }
        // (sum, index) pairs: infeasible (inf) sums rank last, equal
        // sums break deterministically by candidate index.
        std::sort(ranked.begin(), ranked.end());
        uniform_set.reserve(
            static_cast<std::size_t>(hints->uniform_top_k));
        for (int k = 0; k < hints->uniform_top_k; ++k)
            uniform_set.push_back(ranked[k].second);
        std::sort(uniform_set.begin(), uniform_set.end());
    } else {
        uniform_set.resize(candidates.size());
        for (std::size_t s = 0; s < candidates.size(); ++s)
            uniform_set[s] = s;
    }

    std::vector<std::vector<ParallelSpec>> uniform_assignments;
    uniform_assignments.reserve(uniform_set.size());
    for (std::size_t s : uniform_set)
        uniform_assignments.emplace_back(
            static_cast<std::size_t>(graph.opCount()), candidates[s]);
    const std::vector<sim::PerfReport> simulated =
        steps_->evaluateBatch(graph, uniform_assignments, &gauge);
    sim::PerfReport unsimulated;
    unsimulated.feasible = false;
    unsimulated.step_time = inf;
    std::vector<sim::PerfReport> uniform_reports(candidates.size(),
                                                 unsimulated);
    for (std::size_t k = 0; k < uniform_set.size(); ++k)
        uniform_reports[uniform_set[k]] = simulated[k];
    // The RAW additive matrix — before the memory-pressure penalties
    // below — is what the exact branch-and-bound engine certifies
    // against (it replays ExhaustiveSolver's enumeration, which never
    // penalises).
    const std::vector<std::vector<double>> raw_op_cost = op_cost;
    std::vector<std::size_t> uniform_order;
    for (std::size_t s : uniform_set) {
        ++result.evaluations;
        if (uniform_reports[s].feasible)
            uniform_order.push_back(s);
        if (uniform_reports[s].oom || !uniform_reports[s].feasible) {
            // Memory pressure comes from parameter state (weights,
            // grads, optimizer); penalise only the ops that own it so
            // weight-less ops stay free to pick their best spec.
            for (int i = 0; i < graph.opCount(); ++i)
                if (graph.op(i).has_weight)
                    op_cost[i][s] *= 50.0;
        }
    }
    std::sort(uniform_order.begin(), uniform_order.end(),
              [&](std::size_t a, std::size_t b) {
                  const auto &ra = uniform_reports[a];
                  const auto &rb = uniform_reports[b];
                  const double fa = ra.step_time * (ra.oom ? 1e3 : 1.0);
                  const double fb = rb.step_time * (rb.oom ? 1e3 : 1.0);
                  return fa < fb;
              });

    // --- Graph partition + per-sub-chain DP -----------------------------
    std::vector<int> cuts = graph.residualFreeCutPoints();
    std::vector<int> boundaries{0};
    for (int c : cuts)
        boundaries.push_back(c);
    boundaries.push_back(graph.opCount());
    std::sort(boundaries.begin(), boundaries.end());
    boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                     boundaries.end());

    std::vector<int> assignment;
    for (std::size_t b = 0; b + 1 < boundaries.size(); ++b) {
        const std::vector<int> chain =
            solveChainDp(graph, boundaries[b], boundaries[b + 1],
                         candidates, op_cost, &result.evaluations);
        assignment.insert(assignment.end(), chain.begin(), chain.end());
    }

    auto specs_of = [&](const std::vector<int> &a) {
        std::vector<ParallelSpec> specs;
        specs.reserve(a.size());
        for (int idx : a)
            specs.push_back(candidates[idx]);
        return specs;
    };

    // Fitness = full simulated step time (captures merged grad sync,
    // contention and memory); OOM strategies are heavily penalised so
    // the search prefers memory-feasible plans. Every query flows
    // through the shared StepEvaluator memo.
    std::vector<int> best = assignment;
    double best_fitness = stepFitness(
        steps_->evaluate(graph, specs_of(best), &gauge));
    ++result.evaluations;

    // Warm-start genome: the previous winning plan mapped into the
    // current candidate space. An op whose old spec no longer
    // enumerates (the degraded wafer changed the space) falls back to
    // the fresh DP choice for that op; if nothing maps the hint
    // injects nothing and the solve proceeds cold.
    std::vector<std::vector<int>> warm_seeds;
    if (hints != nullptr &&
        hints->seed_specs.size() ==
            static_cast<std::size_t>(graph.opCount())) {
        std::vector<int> genome = assignment;
        bool mapped_any = false;
        for (int i = 0; i < graph.opCount(); ++i) {
            const auto it =
                std::find(candidates.begin(), candidates.end(),
                          hints->seed_specs[static_cast<std::size_t>(i)]);
            if (it != candidates.end()) {
                genome[i] = static_cast<int>(it - candidates.begin());
                mapped_any = true;
            }
        }
        if (mapped_any)
            warm_seeds.push_back(std::move(genome));
    }

    // --- Level-2 refinement (pluggable engine) ---------------------------
    // The only yield point of the solve: a budget that tripped during
    // the mandatory preamble skips refinement entirely, and the engine
    // drivers observe the gauge between quantum slices, so the result
    // is always the bit-exact prefix of the unbudgeted solve.
    if (candidates.size() > 1) {
        if (gauge.exhausted()) {
            result.budget_exhausted = true;
        } else {
            const RefineContext ctx{graph,           candidates,
                                    boundaries,      uniform_reports,
                                    uniform_order,   assignment,
                                    best_fitness,
                                    warm_seeds.empty() ? nullptr
                                                       : &warm_seeds,
                                    &gauge,          &raw_op_cost,
                                    &sim_.costModel()};
            RefineOutcome refined = engine_->refine(ctx, *steps_);
            result.evaluations += refined.fitness_queries;
            result.budget_exhausted = refined.budget_exhausted;
            result.engine_accounts = std::move(refined.accounts);
            best = std::move(refined.assignment);
            best_fitness = refined.fitness;
        }
    }

    const auto record_steps = [&] {
        const eval::StepStats step_delta =
            steps_->stats() - step_stats_before;
        result.step_sims = step_delta.sims;
        result.step_cache_hits = step_delta.cache_hits;
        // Schedule-cache accounting spans both query layers: the
        // matrix fill's breakdowns and the full-step simulations.
        const eval::EvalStats matrix_delta = eval_->stats() - stats_before;
        result.schedule_lowerings = matrix_delta.schedule_lowerings +
                                    step_delta.schedule_lowerings;
        result.schedule_cache_hits = matrix_delta.schedule_cache_hits +
                                     step_delta.schedule_cache_hits;
        result.cache_evictions =
            matrix_delta.evictions + step_delta.evictions;
        result.quanta_used = gauge.used();
    };

    if (std::isinf(best_fitness)) {
        record_steps();
        return result;
    }

    result.feasible = true;
    result.per_op_specs = specs_of(best);
    // The final report is mandatory epilogue (the winning plan is
    // always fully simulated — usually a memo hit on the refiner's
    // best), charged like any other full-step query.
    result.report = steps_->evaluate(graph, result.per_op_specs, &gauge);
    ++result.evaluations;
    result.step_time_s = result.report.step_time;
    result.search_time_s = now() - t_start;
    record_steps();
    return result;
}

ExhaustiveSolver::ExhaustiveSolver(const sim::TrainingSimulator &simulator,
                                   StrategySpaceOptions space,
                                   eval::CostEvaluator *evaluator)
    : sim_(simulator), space_(space)
{
    if (evaluator != nullptr) {
        eval_ = evaluator;
        return;
    }
    owned_eval_ =
        std::make_unique<eval::ExactEvaluator>(sim_.costModel());
    eval_ = owned_eval_.get();
}

SolverResult
ExhaustiveSolver::solve(const model::ComputeGraph &graph, int op_limit,
                        double time_budget_s) const
{
    const double t_start = now();
    SolverResult result;

    const std::vector<ParallelSpec> candidates = enumerateStrategies(
        sim_.wafer().dieCount(), graph.config(), space_);
    result.candidate_count = static_cast<int>(candidates.size());
    if (candidates.empty())
        return result;

    const int n_ops = op_limit > 0
                          ? std::min(op_limit, graph.opCount())
                          : graph.opCount();

    const cost::WaferCostModel &model = sim_.costModel();
    const double inf = std::numeric_limits<double>::infinity();
    const eval::EvalStats stats_before = eval_->stats();
    std::vector<eval::EvalRequest> requests;
    requests.reserve(static_cast<std::size_t>(n_ops) *
                     candidates.size());
    for (int i = 0; i < n_ops; ++i)
        for (const ParallelSpec &spec : candidates)
            requests.push_back({i, spec, true});
    const std::vector<cost::OpCostBreakdown> cells =
        eval_->evaluateBatch(graph, requests);
    std::vector<std::vector<double>> op_cost(
        n_ops, std::vector<double>(candidates.size(), inf));
    std::vector<double> totals(cells.size());
    cost::breakdownTotals(cells, totals.data());
    for (int i = 0; i < n_ops; ++i) {
        const double *row = totals.data() +
                            static_cast<std::size_t>(i) *
                                candidates.size();
        op_cost[i].assign(row, row + candidates.size());
    }
    result.evaluations += static_cast<long>(requests.size());
    const eval::EvalStats matrix_stats = eval_->stats() - stats_before;
    result.matrix_measurements = matrix_stats.measurements;
    result.cache_hits = matrix_stats.cache_hits;
    result.schedule_lowerings = matrix_stats.schedule_lowerings;
    result.schedule_cache_hits = matrix_stats.schedule_cache_hits;
    result.cache_evictions = matrix_stats.evictions;

    std::vector<int> current(n_ops, 0);
    std::vector<int> best;
    double best_cost = inf;
    bool timed_out = false;

    // Depth-first enumeration with branch-and-bound pruning on the
    // additive objective (the same objective the DP solves exactly).
    std::function<void(int, double)> dfs = [&](int depth, double partial) {
        if (timed_out || partial >= best_cost)
            return;
        if ((result.evaluations & 0xfff) == 0 &&
            now() - t_start > time_budget_s) {
            timed_out = true;
            return;
        }
        if (depth == n_ops) {
            best_cost = partial;
            best = current;
            return;
        }
        for (std::size_t s = 0; s < candidates.size(); ++s) {
            ++result.evaluations;
            double cost = op_cost[depth][s];
            if (std::isinf(cost))
                continue;
            if (depth > 0 && current[depth - 1] != static_cast<int>(s)) {
                cost += model.interOpTime(graph.op(depth - 1),
                                          candidates[current[depth - 1]],
                                          candidates[s]);
            }
            current[depth] = static_cast<int>(s);
            dfs(depth + 1, partial + cost);
        }
    };
    dfs(0, 0.0);

    result.search_time_s = now() - t_start;
    if (best.empty() || timed_out)
        return result;

    result.feasible = true;
    result.per_op_specs.reserve(graph.opCount());
    for (int i = 0; i < graph.opCount(); ++i)
        result.per_op_specs.push_back(
            candidates[best[std::min(i, n_ops - 1)]]);
    // Objective value of the solved sub-problem (additive model).
    result.step_time_s = best_cost;
    return result;
}

}  // namespace temp::solver
