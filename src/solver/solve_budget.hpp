/**
 * @file
 * SolveBudget: the deadline a solve runs under, threaded from the
 * config / CLI / dispatcher down to the refinement engines.
 *
 * A budget combines three independent caps (each 0 / unarmed =
 * unlimited):
 *
 *  - max_quanta: deterministic cap on full-step fitness queries. The
 *    portable, reproducible deadline — equal (request, max_quanta)
 *    yields bit-identical results on any machine or thread count.
 *  - max_wall_ms: wall-clock cap, observed only at quantum boundaries,
 *    so it rounds the run down to a boundary the quantum cap could
 *    have produced.
 *  - cancel: cooperative cancel token (the dispatcher's in-flight
 *    deadline channel), same boundary rule.
 *
 * solver.deadline.* config keys populate the quanta/wall caps;
 * runtime callers (serve::Dispatcher) merge their remaining deadline
 * and token in via mergedWith().
 */
#pragma once

#include <algorithm>

#include "common/budget.hpp"

namespace temp::solver {

struct SolveBudget
{
    /// Cap on full-step fitness queries (0 = unlimited). The
    /// deterministic deadline: part of the framework identity.
    long max_quanta = 0;
    /// Wall-clock cap in milliseconds (0 = unlimited). Only rounds a
    /// run down to a quantum boundary — never changes what any
    /// boundary's partial result contains.
    double max_wall_ms = 0.0;
    /// Cooperative cancel channel (unarmed by default).
    common::CancelToken cancel;

    /// True when any cap binds.
    bool limited() const
    {
        return max_quanta > 0 || max_wall_ms > 0.0 || cancel.armed();
    }

    /**
     * The tighter of two budgets: per-cap minimum over the armed caps.
     * The other budget's cancel token wins when armed (a runtime
     * caller's token must stay observable through a config deadline).
     */
    SolveBudget mergedWith(const SolveBudget &other) const
    {
        auto tighter = [](auto a, auto b) {
            if (a <= 0)
                return b;
            if (b <= 0)
                return a;
            return std::min(a, b);
        };
        SolveBudget merged;
        merged.max_quanta = tighter(max_quanta, other.max_quanta);
        merged.max_wall_ms = tighter(max_wall_ms, other.max_wall_ms);
        merged.cancel = other.cancel.armed() ? other.cancel : cancel;
        return merged;
    }

    /// A gauge metering this budget, started now.
    common::BudgetGauge gauge() const
    {
        return common::BudgetGauge(max_quanta, max_wall_ms, cancel);
    }
};

}  // namespace temp::solver
