#include "solver/strategy_space.hpp"

#include <functional>

namespace temp::solver {

using parallel::Axis;
using parallel::ParallelSpec;

std::vector<ParallelSpec>
enumerateStrategies(int die_count, const model::ModelConfig &model,
                    const StrategySpaceOptions &options)
{
    std::vector<ParallelSpec> specs;

    // Candidate degrees per axis: powers of two up to the cap.
    auto degrees = [&](bool allowed, int cap) {
        std::vector<int> out{1};
        if (!allowed)
            return out;
        for (int d = 2; d <= cap; d *= 2)
            out.push_back(d);
        return out;
    };

    std::vector<int> dp_degrees =
        degrees(options.allow_dp, std::min(die_count, model.batch));
    if (!options.full_occupancy && options.allow_dp) {
        // Degraded fabrics have odd die budgets; dense DP degrees let
        // strategies cover nearly all surviving dies.
        dp_degrees.clear();
        for (int d = 1; d <= std::min(die_count, model.batch); ++d)
            dp_degrees.push_back(d);
    }
    const std::vector<int> fsdp_degrees =
        degrees(options.allow_fsdp, std::min(die_count, model.batch));
    const std::vector<int> tp_degrees = degrees(
        options.allow_tp,
        std::min({die_count, model.heads, options.max_tp}));
    // SP/CP slices must keep a reasonable sequence chunk per die.
    const int seq_cap = std::min(die_count, model.seq / 128);
    const std::vector<int> sp_degrees =
        degrees(options.allow_sp, std::max(1, seq_cap));
    const std::vector<int> cp_degrees =
        degrees(options.allow_cp, std::max(1, seq_cap));
    const std::vector<int> tatp_degrees =
        degrees(options.allow_tatp,
                std::min(die_count, options.max_tatp));

    auto emit_all = [&](bool require_full) {
      for (int dp : dp_degrees) {
        for (int fsdp : fsdp_degrees) {
            for (int tp : tp_degrees) {
                for (int sp : sp_degrees) {
                    for (int cp : cp_degrees) {
                        for (int tatp : tatp_degrees) {
                            ParallelSpec spec;
                            spec.dp = dp;
                            spec.fsdp = fsdp;
                            spec.tp = tp;
                            spec.sp = sp;
                            spec.cp = cp;
                            spec.tatp = tatp;
                            if (!spec.valid())
                                continue;
                            const int total = spec.totalDegree();
                            if (total > die_count)
                                continue;
                            if (require_full && total != die_count)
                                continue;
                            if (!require_full &&
                                total <= die_count / 2)
                                continue;
                            specs.push_back(spec);
                        }
                    }
                }
            }
        }
      }
    };

    emit_all(options.full_occupancy);
    if (specs.empty() && options.full_occupancy) {
        // Die counts that are not products of the allowed degrees
        // (e.g. 48 dies, or a degraded 31-die component) cannot be
        // fully covered; fall back to near-full occupancy so the
        // search space is never empty.
        emit_all(false);
    }
    return specs;
}

}  // namespace temp::solver
