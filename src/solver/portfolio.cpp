#include "solver/portfolio.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_set>
#include <utility>

#include "common/rng.hpp"
#include "cost/cost_model.hpp"
#include "solver/refine_util.hpp"

namespace temp::solver {

using detail::batchFitness;
using detail::drawOrder;
using detail::fitnessOf;
using detail::makeFixedRun;
using detail::validSeeds;

namespace {

const double kInf = std::numeric_limits<double>::infinity();

/// FNV-1a over a genome's gene values — the tabu key. Collisions are
/// deterministic (same build, same hashes), so a collision at worst
/// deterministically skips one proposal; it never breaks bit-exactness
/// across runs.
std::uint64_t
genomeHash(const std::vector<int> &genome)
{
    std::uint64_t h = 14695981039346656037ULL;
    for (int g : genome) {
        h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(g));
        h *= 1099511628211ULL;
    }
    return h;
}

}  // namespace

// ---------------------------------------------------------------------
// BeamTabuRefiner
// ---------------------------------------------------------------------

BeamTabuRefiner::BeamTabuRefiner(int rounds, std::uint64_t seed)
    : rounds_(rounds), seed_(seed)
{
}

/// The beam's between-round state. The tabu set lives only for the
/// run (it is exactly "what this run has already scored"), which is
/// why checkpoints cannot continue a beam run — see the header.
struct BeamTabuRefiner::BeamState
{
    Rng rng;
    std::vector<std::vector<int>> beam;
    std::vector<double> beam_fitness;
    std::unordered_set<std::uint64_t> tabu;
    std::vector<int> best;
    double best_fitness = 0.0;
    long fitness_queries = 0;
    int rounds_done = 0;
};

BeamTabuRefiner::BeamState
BeamTabuRefiner::seedState(const RefineContext &ctx,
                           eval::StepEvaluator &steps) const
{
    BeamState state;
    state.rng = Rng(seed_);
    state.best = ctx.dp_assignment;
    state.best_fitness = ctx.dp_fitness;

    const std::size_t n_ops =
        static_cast<std::size_t>(ctx.graph.opCount());

    // Seed pool: the DP plan, the best uniform plans, and any warm
    // seeds — deduplicated through the tabu set, then scored as ONE
    // deterministic batch (the run's seed quantum).
    std::vector<std::vector<int>> pool;
    auto add = [&](std::vector<int> genome) {
        if (state.tabu.insert(genomeHash(genome)).second)
            pool.push_back(std::move(genome));
    };
    add(ctx.dp_assignment);
    for (std::size_t i = 0;
         i < ctx.uniform_order.size() &&
         i < static_cast<std::size_t>(kWidth);
         ++i)
        add(std::vector<int>(
            n_ops, static_cast<int>(ctx.uniform_order[i])));
    for (const std::vector<int> &seed : validSeeds(ctx))
        add(seed);

    const std::vector<double> scores = batchFitness(ctx, steps, pool);
    state.fitness_queries += static_cast<long>(pool.size());

    // Keep the best kWidth plans as the opening beam (stable order:
    // earlier pool entries win ties).
    std::vector<std::size_t> rank(pool.size());
    for (std::size_t i = 0; i < rank.size(); ++i)
        rank[i] = i;
    std::stable_sort(rank.begin(), rank.end(),
                     [&](std::size_t a, std::size_t b) {
                         return scores[a] < scores[b];
                     });
    const std::size_t keep =
        std::min<std::size_t>(static_cast<std::size_t>(kWidth),
                              rank.size());
    for (std::size_t i = 0; i < keep; ++i) {
        state.beam.push_back(pool[rank[i]]);
        state.beam_fitness.push_back(scores[rank[i]]);
    }
    if (!state.beam.empty() &&
        state.beam_fitness.front() < state.best_fitness) {
        state.best = state.beam.front();
        state.best_fitness = state.beam_fitness.front();
    }
    return state;
}

void
BeamTabuRefiner::stepRound(const RefineContext &ctx,
                           eval::StepEvaluator &steps,
                           BeamState &state) const
{
    Rng &rng = state.rng;
    const std::vector<int> order = drawOrder(ctx);
    const int n_ops = ctx.graph.opCount();

    // The same neighbour structure the annealer walks: biased single-op
    // re-draws plus occasional whole-sub-chain flips along the DP cuts.
    auto draw_strategy = [&]() -> int {
        if (rng.bernoulli(0.5))
            return order[rng.index(
                std::min<std::size_t>(8, order.size()))];
        return static_cast<int>(rng.index(ctx.candidates.size()));
    };
    auto mutate = [&](std::vector<int> &genome) {
        if (ctx.boundaries.size() > 2 && rng.bernoulli(0.25)) {
            const std::size_t b = rng.index(ctx.boundaries.size() - 1);
            const int s = draw_strategy();
            for (int i = ctx.boundaries[b]; i < ctx.boundaries[b + 1];
                 ++i)
                genome[i] = s;
            return;
        }
        genome[static_cast<std::size_t>(rng.index(
            static_cast<std::size_t>(n_ops)))] = draw_strategy();
        if (rng.bernoulli(0.3))
            genome[static_cast<std::size_t>(rng.index(
                static_cast<std::size_t>(n_ops)))] = draw_strategy();
    };

    // Every proposal of the round is drawn before any fitness is
    // known; tabu hits are dropped at draw time (the RNG stream still
    // advances identically — tabu contents are themselves
    // deterministic, so so is the drop pattern).
    std::vector<std::vector<int>> proposals;
    proposals.reserve(state.beam.size() *
                      static_cast<std::size_t>(kProposals));
    for (const std::vector<int> &member : state.beam) {
        for (int p = 0; p < kProposals; ++p) {
            std::vector<int> neighbour = member;
            mutate(neighbour);
            if (state.tabu.insert(genomeHash(neighbour)).second)
                proposals.push_back(std::move(neighbour));
        }
    }
    if (!proposals.empty()) {
        const std::vector<double> scores =
            batchFitness(ctx, steps, proposals);
        state.fitness_queries += static_cast<long>(proposals.size());

        // Beam ∪ proposals, keep the best kWidth (stable: the old beam
        // wins ties, preserving the incumbent's position).
        std::vector<std::vector<int>> merged = state.beam;
        std::vector<double> merged_fitness = state.beam_fitness;
        for (std::size_t p = 0; p < proposals.size(); ++p) {
            merged.push_back(std::move(proposals[p]));
            merged_fitness.push_back(scores[p]);
        }
        std::vector<std::size_t> rank(merged.size());
        for (std::size_t i = 0; i < rank.size(); ++i)
            rank[i] = i;
        std::stable_sort(rank.begin(), rank.end(),
                         [&](std::size_t a, std::size_t b) {
                             return merged_fitness[a] <
                                    merged_fitness[b];
                         });
        const std::size_t keep =
            std::min<std::size_t>(static_cast<std::size_t>(kWidth),
                                  rank.size());
        state.beam.clear();
        state.beam_fitness.clear();
        for (std::size_t i = 0; i < keep; ++i) {
            state.beam.push_back(merged[rank[i]]);
            state.beam_fitness.push_back(merged_fitness[rank[i]]);
        }
        if (!state.beam.empty() &&
            state.beam_fitness.front() < state.best_fitness) {
            state.best = state.beam.front();
            state.best_fitness = state.beam_fitness.front();
        }
    }
    ++state.rounds_done;
}

/// One in-flight beam run: a BeamState advanced one round per slice.
class BeamTabuRefiner::Run : public RefineRun
{
  public:
    Run(const BeamTabuRefiner &owner, const RefineContext &ctx,
        eval::StepEvaluator &steps, BeamState state)
        : owner_(owner), ctx_(ctx), steps_(steps),
          state_(std::move(state))
    {
    }

    const char *engine() const override { return owner_.name(); }
    int stepsDone() const override { return state_.rounds_done; }
    bool done() const override
    {
        return state_.rounds_done >= owner_.rounds_;
    }
    void step() override { owner_.stepRound(ctx_, steps_, state_); }
    RefineOutcome outcome() const override
    {
        return {state_.best, state_.best_fitness,
                state_.fitness_queries};
    }
    void writeCheckpoint(RefineCheckpoint *checkpoint) const override
    {
        // Incumbent-only capture: the tabu set is not serialisable
        // state (see class doc), so this checkpoint resumes cold.
        *checkpoint = RefineCheckpoint{};
        checkpoint->engine = owner_.name();
        checkpoint->steps_done = state_.rounds_done;
        checkpoint->fitness_queries = state_.fitness_queries;
        checkpoint->best = state_.best;
        checkpoint->best_fitness = state_.best_fitness;
    }

  private:
    const BeamTabuRefiner &owner_;
    const RefineContext &ctx_;
    eval::StepEvaluator &steps_;
    BeamState state_;
};

std::unique_ptr<RefineRun>
BeamTabuRefiner::begin(const RefineContext &ctx,
                       eval::StepEvaluator &steps) const
{
    return std::make_unique<Run>(*this, ctx, steps,
                                 seedState(ctx, steps));
}

std::unique_ptr<RefineRun>
BeamTabuRefiner::beginFrom(const RefineContext &ctx,
                           eval::StepEvaluator &steps,
                           const RefineCheckpoint & /*checkpoint*/) const
{
    // The tabu set cannot be reconstructed from a checkpoint, so a
    // continued run would diverge from the uninterrupted one. A cold
    // re-run is deterministic and lands on the bit-identical final
    // plan — slower, never wrong.
    return begin(ctx, steps);
}

// ---------------------------------------------------------------------
// ExactChainEngine
// ---------------------------------------------------------------------

ExactChainEngine::BnbResult
ExactChainEngine::branchAndBound(
    const model::ComputeGraph &graph,
    const std::vector<parallel::ParallelSpec> &candidates,
    const std::vector<std::vector<double>> &op_cost,
    const cost::WaferCostModel &model, long max_nodes)
{
    BnbResult result;
    const int n_ops = static_cast<int>(op_cost.size());
    std::vector<int> current(static_cast<std::size_t>(n_ops), 0);
    std::vector<int> best;
    double best_cost = kInf;
    bool aborted = false;

    // The identical enumeration ExhaustiveSolver::solve() runs —
    // candidate index order, strict >= pruning on the additive
    // objective — with a deterministic node budget in place of its
    // wall-clock timeout.
    std::function<void(int, double)> dfs = [&](int depth,
                                               double partial) {
        if (aborted || partial >= best_cost)
            return;
        if (depth == n_ops) {
            best_cost = partial;
            best = current;
            return;
        }
        for (std::size_t s = 0; s < candidates.size(); ++s) {
            if (++result.nodes > max_nodes) {
                aborted = true;
                return;
            }
            double cost = op_cost[depth][s];
            if (std::isinf(cost))
                continue;
            if (depth > 0 &&
                current[depth - 1] != static_cast<int>(s)) {
                cost += model.interOpTime(
                    graph.op(depth - 1),
                    candidates[current[depth - 1]], candidates[s]);
            }
            current[depth] = static_cast<int>(s);
            dfs(depth + 1, partial + cost);
        }
    };
    dfs(0, 0.0);

    result.complete = !aborted;
    if (!best.empty() && std::isfinite(best_cost)) {
        result.assignment = std::move(best);
        result.additive_cost = best_cost;
    }
    return result;
}

/// The whole branch-and-bound as one quantum slice, then one
/// full-step query to score the additive optimum in fitness currency.
class ExactChainEngine::Run : public RefineRun
{
  public:
    Run(const ExactChainEngine &owner, const RefineContext &ctx,
        eval::StepEvaluator &steps)
        : owner_(owner), ctx_(ctx), steps_(steps),
          best_(ctx.dp_assignment), best_fitness_(ctx.dp_fitness)
    {
    }

    const char *engine() const override { return owner_.name(); }
    int stepsDone() const override { return steps_done_; }
    bool done() const override { return steps_done_ >= 1; }
    void step() override
    {
        const BnbResult exact = branchAndBound(
            ctx_.graph, ctx_.candidates, *ctx_.op_cost,
            *ctx_.cost_model, kMaxNodes);
        if (!exact.assignment.empty()) {
            const double f =
                fitnessOf(ctx_, steps_, exact.assignment);
            ++fitness_queries_;
            if (f < best_fitness_) {
                best_ = exact.assignment;
                best_fitness_ = f;
            }
        }
        ++steps_done_;
    }
    RefineOutcome outcome() const override
    {
        return {best_, best_fitness_, fitness_queries_};
    }
    void writeCheckpoint(RefineCheckpoint *checkpoint) const override
    {
        *checkpoint = RefineCheckpoint{};
        checkpoint->engine = owner_.name();
        checkpoint->steps_done = steps_done_;
        checkpoint->fitness_queries = fitness_queries_;
        checkpoint->best = best_;
        checkpoint->best_fitness = best_fitness_;
    }

  private:
    const ExactChainEngine &owner_;
    const RefineContext &ctx_;
    eval::StepEvaluator &steps_;
    std::vector<int> best_;
    double best_fitness_;
    long fitness_queries_ = 0;
    int steps_done_ = 0;
};

std::unique_ptr<RefineRun>
ExactChainEngine::begin(const RefineContext &ctx,
                        eval::StepEvaluator &steps) const
{
    // Self-gating: without the raw matrix + cost model, or beyond the
    // size thresholds, certification is off the table — keep the DP
    // plan as a completed, zero-slice run.
    if (ctx.op_cost == nullptr || ctx.cost_model == nullptr ||
        ctx.graph.opCount() > kMaxOps ||
        static_cast<int>(ctx.candidates.size()) > kMaxCands)
        return makeFixedRun(
            name(), 0,
            RefineOutcome{ctx.dp_assignment, ctx.dp_fitness, 0});
    return std::make_unique<Run>(*this, ctx, steps);
}

std::unique_ptr<RefineRun>
ExactChainEngine::beginFrom(const RefineContext &ctx,
                            eval::StepEvaluator &steps,
                            const RefineCheckpoint & /*checkpoint*/) const
{
    // A checkpoint taken before the (single) exact slice carries no
    // searchable state; re-running the deterministic B&B is cheap and
    // bit-identical.
    return begin(ctx, steps);
}

// ---------------------------------------------------------------------
// PortfolioEngine
// ---------------------------------------------------------------------

PortfolioEngine::PortfolioEngine(
    std::vector<std::unique_ptr<SearchEngine>> members)
    : members_(std::move(members))
{
}

/// The race: one member slice per portfolio slice, round-robin over
/// members that still have work. Members begin lazily — the begin()
/// (its seed batch and the quanta that batch charges) IS the member's
/// first slice, so a tight budget that expires during member 0's
/// seeding never silently charges members 1..n.
class PortfolioEngine::Run : public RefineRun
{
  public:
    Run(const PortfolioEngine &owner, const RefineContext &ctx,
        eval::StepEvaluator &steps)
        : owner_(owner), ctx_(ctx), steps_(steps),
          runs_(owner.members_.size())
    {
    }

    const char *engine() const override { return owner_.name(); }
    int stepsDone() const override { return slices_; }
    bool done() const override
    {
        for (std::size_t i = 0; i < runs_.size(); ++i)
            if (runs_[i] == nullptr || !runs_[i]->done())
                return false;
        return true;
    }
    void step() override
    {
        const std::size_t n = runs_.size();
        for (std::size_t k = 0; k < n; ++k) {
            const std::size_t i = (cursor_ + k) % n;
            if (runs_[i] == nullptr) {
                runs_[i] = owner_.members_[i]->begin(ctx_, steps_);
            } else if (!runs_[i]->done()) {
                runs_[i]->step();
            } else {
                continue;
            }
            cursor_ = (i + 1) % n;
            ++slices_;
            return;
        }
    }
    RefineOutcome outcome() const override
    {
        RefineOutcome best{ctx_.dp_assignment, ctx_.dp_fitness, 0};
        long queries = 0;
        for (const std::unique_ptr<RefineRun> &run : runs_) {
            if (run == nullptr)
                continue;
            RefineOutcome member = run->outcome();
            queries += member.fitness_queries;
            // Strict < breaks ties toward the earlier member.
            if (member.fitness < best.fitness) {
                best.assignment = std::move(member.assignment);
                best.fitness = member.fitness;
            }
        }
        best.fitness_queries = queries;
        return best;
    }
    void writeCheckpoint(RefineCheckpoint *checkpoint) const override
    {
        // Incumbent-only: multi-member state has no checkpoint form,
        // so resume degrades to a cold re-race (see class doc).
        const RefineOutcome best = outcome();
        *checkpoint = RefineCheckpoint{};
        checkpoint->engine = owner_.name();
        checkpoint->steps_done = slices_;
        checkpoint->fitness_queries = best.fitness_queries;
        checkpoint->best = best.assignment;
        checkpoint->best_fitness = best.fitness;
    }
    std::vector<EngineAccount> accounts() const override
    {
        // One account per member that ran at least one slice; the
        // winner flag marks the member whose plan the portfolio
        // returns (none when the DP incumbent beat every member).
        std::size_t winner = runs_.size();
        double winner_fitness = ctx_.dp_fitness;
        for (std::size_t i = 0; i < runs_.size(); ++i) {
            if (runs_[i] == nullptr)
                continue;
            const double f = runs_[i]->outcome().fitness;
            if (f < winner_fitness) {
                winner = i;
                winner_fitness = f;
            }
        }
        std::vector<EngineAccount> out;
        for (std::size_t i = 0; i < runs_.size(); ++i) {
            if (runs_[i] == nullptr)
                continue;
            const RefineOutcome member = runs_[i]->outcome();
            EngineAccount account;
            account.engine = runs_[i]->engine();
            account.steps = runs_[i]->stepsDone();
            account.fitness_queries = member.fitness_queries;
            account.feasible = std::isfinite(member.fitness);
            account.best_fitness =
                account.feasible ? member.fitness : 0.0;
            account.winner = i == winner;
            out.push_back(std::move(account));
        }
        if (out.empty())
            return RefineRun::accounts();
        return out;
    }

  private:
    const PortfolioEngine &owner_;
    const RefineContext &ctx_;
    eval::StepEvaluator &steps_;
    std::vector<std::unique_ptr<RefineRun>> runs_;
    std::size_t cursor_ = 0;
    int slices_ = 0;
};

std::unique_ptr<RefineRun>
PortfolioEngine::begin(const RefineContext &ctx,
                       eval::StepEvaluator &steps) const
{
    if (members_.empty())
        return makeFixedRun(
            name(), 0,
            RefineOutcome{ctx.dp_assignment, ctx.dp_fitness, 0});
    return std::make_unique<Run>(*this, ctx, steps);
}

std::unique_ptr<RefineRun>
PortfolioEngine::beginFrom(const RefineContext &ctx,
                           eval::StepEvaluator &steps,
                           const RefineCheckpoint & /*checkpoint*/) const
{
    // Cold re-race: deterministic members make the re-run land on the
    // bit-identical final plan the uninterrupted race would have.
    return begin(ctx, steps);
}

}  // namespace temp::solver
