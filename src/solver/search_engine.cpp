#include "solver/search_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "common/rng.hpp"
#include "persist/codec.hpp"
#include "solver/dls_solver.hpp"
#include "solver/portfolio.hpp"
#include "solver/refine_util.hpp"

namespace temp::solver {

using parallel::ParallelSpec;

namespace {

const double kInf = std::numeric_limits<double>::infinity();

/// Expands a genome (candidate index per op) into per-op specs.
std::vector<ParallelSpec>
specsOf(const RefineContext &ctx, const std::vector<int> &genome)
{
    std::vector<ParallelSpec> specs;
    specs.reserve(genome.size());
    for (int idx : genome)
        specs.push_back(ctx.candidates[idx]);
    return specs;
}

}  // namespace

namespace detail {

double
fitnessOf(const RefineContext &ctx, eval::StepEvaluator &steps,
          const std::vector<int> &genome)
{
    return stepFitness(
        steps.evaluate(ctx.graph, specsOf(ctx, genome), ctx.gauge));
}

std::vector<double>
batchFitness(const RefineContext &ctx, eval::StepEvaluator &steps,
             const std::vector<std::vector<int>> &genomes)
{
    std::vector<std::vector<ParallelSpec>> assignments;
    assignments.reserve(genomes.size());
    for (const std::vector<int> &genome : genomes)
        assignments.push_back(specsOf(ctx, genome));
    const std::vector<sim::PerfReport> reports =
        steps.evaluateBatch(ctx.graph, assignments, ctx.gauge);
    std::vector<double> scores(reports.size());
    for (std::size_t i = 0; i < reports.size(); ++i)
        scores[i] = stepFitness(reports[i]);
    return scores;
}

bool
gaugeExhausted(const RefineContext &ctx)
{
    return ctx.gauge != nullptr && ctx.gauge->exhausted();
}

std::vector<int>
drawOrder(const RefineContext &ctx)
{
    std::vector<int> order;
    for (std::size_t s : ctx.uniform_order)
        order.push_back(static_cast<int>(s));
    if (order.empty())
        for (std::size_t s = 0; s < ctx.candidates.size(); ++s)
            order.push_back(static_cast<int>(s));
    return order;
}

/// Invalid genomes are dropped silently — a stale seed degrades to a
/// cold search, never an out-of-range candidates[] access.
std::vector<std::vector<int>>
validSeeds(const RefineContext &ctx)
{
    std::vector<std::vector<int>> out;
    if (ctx.seeds == nullptr)
        return out;
    const std::size_t n_ops =
        static_cast<std::size_t>(ctx.graph.opCount());
    const int n_cand = static_cast<int>(ctx.candidates.size());
    for (const std::vector<int> &genome : *ctx.seeds) {
        if (genome.size() != n_ops)
            continue;
        const bool in_range =
            std::all_of(genome.begin(), genome.end(), [&](int g) {
                return g >= 0 && g < n_cand;
            });
        if (in_range)
            out.push_back(genome);
    }
    return out;
}

}  // namespace detail

using detail::batchFitness;
using detail::drawOrder;
using detail::fitnessOf;
using detail::gaugeExhausted;
using detail::validSeeds;

namespace {

/// Serialises an Rng's full state (mt19937_64 stream capture; complete
/// because every Rng helper constructs its distribution per draw).
std::string
rngStateOf(Rng &rng)
{
    std::ostringstream os;
    os << rng.engine();
    return os.str();
}

/// Restores an Rng from a stream capture; false on parse failure.
bool
restoreRng(const std::string &state, Rng &rng)
{
    std::istringstream is(state);
    is >> rng.engine();
    return !is.fail();
}

void
putGenome(persist::ByteWriter &w, const std::vector<int> &genome)
{
    w.u32(static_cast<std::uint32_t>(genome.size()));
    for (int g : genome)
        w.i32(g);
}

bool
getGenome(persist::ByteReader &r, std::vector<int> *genome)
{
    const std::uint32_t count = r.u32();
    if (!r.ok() || count > r.remaining() / 4) {
        r.fail();
        return false;
    }
    genome->clear();
    genome->reserve(count);
    for (std::uint32_t i = 0; i < count; ++i)
        genome->push_back(r.i32());
    return r.ok();
}

constexpr std::uint32_t kCheckpointMagic = 0x504b4352;  // "RCKP"
constexpr std::uint32_t kCheckpointVersion = 1;

}  // namespace

std::string
encodeRefineCheckpoint(const RefineCheckpoint &cp)
{
    persist::ByteWriter payload;
    payload.str(cp.engine);
    payload.i32(cp.steps_done);
    payload.i64(cp.fitness_queries);
    putGenome(payload, cp.best);
    payload.f64(cp.best_fitness);
    payload.u32(static_cast<std::uint32_t>(cp.population.size()));
    for (const std::vector<int> &genome : cp.population)
        putGenome(payload, genome);
    for (double score : cp.scores)
        payload.f64(score);
    putGenome(payload, cp.current);
    payload.f64(cp.current_fitness);
    payload.f64(cp.temperature);
    payload.str(cp.rng_state);

    persist::ByteWriter w;
    w.u32(kCheckpointMagic);
    w.u32(kCheckpointVersion);
    const std::string body = payload.take();
    w.u64(persist::fnv1aBytes(body.data(), body.size()));
    w.u32(static_cast<std::uint32_t>(body.size()));
    std::string out = w.take();
    out += body;
    return out;
}

bool
decodeRefineCheckpoint(const std::string &bytes, RefineCheckpoint *out,
                       std::string *error)
{
    *out = RefineCheckpoint{};
    auto failed = [&](const char *why) {
        *out = RefineCheckpoint{};
        if (error)
            *error = why;
        return false;
    };
    persist::ByteReader r(bytes.data(), bytes.size());
    if (r.u32() != kCheckpointMagic || !r.ok())
        return failed("checkpoint: bad magic");
    if (r.u32() != kCheckpointVersion || !r.ok())
        return failed("checkpoint: unsupported version");
    const std::uint64_t checksum = r.u64();
    const std::uint32_t size = r.u32();
    const char *body = r.skip(size);
    if (!r.ok() || !r.atEnd())
        return failed("checkpoint: truncated");
    if (persist::fnv1aBytes(body, size) != checksum)
        return failed("checkpoint: checksum mismatch");

    persist::ByteReader pr(body, size);
    out->engine = pr.str();
    out->steps_done = pr.i32();
    out->fitness_queries = pr.i64();
    if (!getGenome(pr, &out->best))
        return failed("checkpoint: bad incumbent");
    out->best_fitness = pr.f64();
    const std::uint32_t pop = pr.u32();
    // Each member costs >= 4 (genome length) + 8 (score) bytes.
    if (!pr.ok() || pop > pr.remaining() / 12)
        return failed("checkpoint: implausible population");
    out->population.resize(pop);
    for (std::uint32_t i = 0; i < pop; ++i)
        if (!getGenome(pr, &out->population[i]))
            return failed("checkpoint: bad population genome");
    out->scores.resize(pop);
    for (std::uint32_t i = 0; i < pop; ++i)
        out->scores[i] = pr.f64();
    if (!getGenome(pr, &out->current))
        return failed("checkpoint: bad walk state");
    out->current_fitness = pr.f64();
    out->temperature = pr.f64();
    out->rng_state = pr.str();
    if (!pr.ok() || !pr.atEnd())
        return failed("checkpoint: truncated");
    return true;
}

std::vector<EngineAccount>
RefineRun::accounts() const
{
    const RefineOutcome out = outcome();
    EngineAccount account;
    account.engine = engine();
    account.steps = stepsDone();
    account.fitness_queries = out.fitness_queries;
    account.best_fitness = std::isfinite(out.fitness) ? out.fitness : 0.0;
    account.feasible = std::isfinite(out.fitness);
    account.winner = true;
    return {account};
}

namespace {

/// A run that is already over: holds a fixed incumbent (the base
/// beginFrom()'s answer to a same-engine checkpoint, and the degraded
/// portfolio resume).
class FixedRun : public RefineRun
{
  public:
    FixedRun(const char *engine, int steps_done, RefineOutcome outcome)
        : engine_(engine), steps_done_(steps_done),
          outcome_(std::move(outcome))
    {
    }

    const char *engine() const override { return engine_; }
    int stepsDone() const override { return steps_done_; }
    bool done() const override { return true; }
    void step() override {}
    RefineOutcome outcome() const override { return outcome_; }
    void writeCheckpoint(RefineCheckpoint *checkpoint) const override
    {
        *checkpoint = RefineCheckpoint{};
        checkpoint->engine = engine_;
        checkpoint->steps_done = steps_done_;
        checkpoint->fitness_queries = outcome_.fitness_queries;
        checkpoint->best = outcome_.assignment;
        checkpoint->best_fitness = outcome_.fitness;
    }

  private:
    const char *engine_;
    int steps_done_ = 0;
    RefineOutcome outcome_;
};

/// The shared driver: advance until the run completes, a slice cap is
/// reached, or the budget gauge trips at a slice boundary.
RefineOutcome
drive(const RefineContext &ctx, RefineRun &run, int max_slices)
{
    int slices = 0;
    while (!run.done() && slices < max_slices && !gaugeExhausted(ctx)) {
        run.step();
        ++slices;
    }
    RefineOutcome out = run.outcome();
    out.budget_exhausted = !run.done() && gaugeExhausted(ctx);
    out.accounts = run.accounts();
    return out;
}

constexpr int kAllSlices = std::numeric_limits<int>::max();

}  // namespace

std::unique_ptr<RefineRun>
detail::makeFixedRun(const char *engine, int steps_done,
                     RefineOutcome outcome)
{
    return std::make_unique<FixedRun>(engine, steps_done,
                                      std::move(outcome));
}

std::unique_ptr<RefineRun>
SearchEngine::beginFrom(const RefineContext &ctx,
                        eval::StepEvaluator &steps,
                        const RefineCheckpoint &checkpoint) const
{
    if (checkpoint.engine != name() || checkpoint.best.empty())
        return begin(ctx, steps);
    return std::make_unique<FixedRun>(
        name(), checkpoint.steps_done,
        RefineOutcome{checkpoint.best, checkpoint.best_fitness, 0});
}

RefineOutcome
SearchEngine::refine(const RefineContext &ctx,
                     eval::StepEvaluator &steps) const
{
    const std::unique_ptr<RefineRun> run = begin(ctx, steps);
    return drive(ctx, *run, kAllSlices);
}

RefineOutcome
SearchEngine::refinePartial(const RefineContext &ctx,
                            eval::StepEvaluator &steps, int max_steps,
                            RefineCheckpoint *checkpoint) const
{
    const std::unique_ptr<RefineRun> run = begin(ctx, steps);
    RefineOutcome outcome = drive(ctx, *run, std::max(0, max_steps));
    if (checkpoint != nullptr)
        run->writeCheckpoint(checkpoint);
    return outcome;
}

RefineOutcome
SearchEngine::resume(const RefineContext &ctx, eval::StepEvaluator &steps,
                     const RefineCheckpoint &checkpoint) const
{
    const std::unique_ptr<RefineRun> run =
        beginFrom(ctx, steps, checkpoint);
    return drive(ctx, *run, kAllSlices);
}

double
stepFitness(const sim::PerfReport &report)
{
    if (!report.feasible)
        return kInf;
    return report.step_time * (report.oom ? 1e3 : 1.0);
}

const char *
searchEngineName(SearchEngineKind kind)
{
    switch (kind) {
    case SearchEngineKind::NoRefine: return "none";
    case SearchEngineKind::Genetic: return "genetic";
    case SearchEngineKind::Annealing: return "annealing";
    case SearchEngineKind::BeamTabu: return "beamtabu";
    case SearchEngineKind::Exact: return "exact";
    case SearchEngineKind::Portfolio: return "portfolio";
    }
    return "unknown";
}

bool
searchEngineFromName(const std::string &name, SearchEngineKind *kind)
{
    if (name == "none" || name == "dp")
        *kind = SearchEngineKind::NoRefine;
    else if (name == "genetic" || name == "ga")
        *kind = SearchEngineKind::Genetic;
    else if (name == "annealing" || name == "anneal")
        *kind = SearchEngineKind::Annealing;
    else if (name == "beamtabu" || name == "beam")
        *kind = SearchEngineKind::BeamTabu;
    else if (name == "exact")
        *kind = SearchEngineKind::Exact;
    else if (name == "portfolio")
        *kind = SearchEngineKind::Portfolio;
    else
        return false;
    return true;
}

// ---------------------------------------------------------------------
// NoRefineEngine
// ---------------------------------------------------------------------

std::unique_ptr<RefineRun>
NoRefineEngine::begin(const RefineContext &ctx,
                      eval::StepEvaluator &steps) const
{
    // DP-only, but warm seeds still count: a scenario re-solve under
    // engine=none keeps the pre-fault plan whenever it beats the fresh
    // DP plan on the degraded wafer. The seed batch is the run's only
    // quantum; the run itself is born complete.
    const std::vector<std::vector<int>> seeds = validSeeds(ctx);
    RefineOutcome outcome{ctx.dp_assignment, ctx.dp_fitness, 0};
    if (!seeds.empty()) {
        const std::vector<double> scores =
            batchFitness(ctx, steps, seeds);
        outcome.fitness_queries = static_cast<long>(seeds.size());
        for (std::size_t i = 0; i < seeds.size(); ++i) {
            if (scores[i] < outcome.fitness) {
                outcome.assignment = seeds[i];
                outcome.fitness = scores[i];
            }
        }
    }
    return std::make_unique<FixedRun>(name(), 0, std::move(outcome));
}

// ---------------------------------------------------------------------
// GeneticRefiner
// ---------------------------------------------------------------------

GeneticRefiner::GeneticRefiner(int population, int generations,
                               double mutation_rate, std::uint64_t seed)
    : population_(population), generations_(generations),
      mutation_rate_(mutation_rate), seed_(seed)
{
}

/// The GA's between-generation state: everything refine() carries from
/// one generation to the next, so a checkpoint at a generation
/// boundary captures the run exactly.
struct GeneticRefiner::GaState
{
    Rng rng;
    std::vector<std::vector<int>> population;
    std::vector<double> scores;
    std::vector<int> best;
    double best_fitness = 0.0;
    long fitness_queries = 0;
    int generations_done = 0;
};

GeneticRefiner::GaState
GeneticRefiner::seedState(const RefineContext &ctx,
                          eval::StepEvaluator &steps) const
{
    GaState state;
    state.rng = Rng(seed_);
    state.best = ctx.dp_assignment;
    state.best_fitness = ctx.dp_fitness;
    Rng &rng = state.rng;
    const std::vector<int> order = drawOrder(ctx);

    // Ranking for the weight-less role ignores the OOM penalty:
    // norms/attention do not own parameter state, so a spec whose
    // *uniform* plan OOMs (e.g. pure DP on a huge model) is still an
    // excellent choice for them once the weighted ops shard state.
    std::vector<int> order_o = order;
    std::sort(order_o.begin(), order_o.end(), [&](int a, int b) {
        return ctx.uniform_reports[a].step_time <
               ctx.uniform_reports[b].step_time;
    });

    // Seeds: the DP plan, the best uniform plans, and *structured*
    // two-spec plans (one spec for weight-bearing GEMMs, one for the
    // weight-less rest). The structured family encodes the key
    // design insight: parameter state forces high sharding on the
    // weighted ops only, while norms/attention prefer cheap
    // batch-style splits that keep gradient accumulation free.
    const int n_ops = ctx.graph.opCount();
    std::vector<std::vector<int>> seeds;
    seeds.push_back(state.best);
    const int top = std::min<int>(6, static_cast<int>(order.size()));
    for (int k = 0; k < top; ++k)
        seeds.push_back(std::vector<int>(n_ops, order[k]));
    for (int wi = 0; wi < top; ++wi) {
        for (int oi = 0; oi < top; ++oi) {
            std::vector<int> genome(n_ops);
            for (int i = 0; i < n_ops; ++i)
                genome[i] = ctx.graph.op(i).has_weight ? order[wi]
                                                       : order_o[oi];
            seeds.push_back(std::move(genome));
        }
    }
    // Warm-start genomes (e.g. the pre-fault assignment a scenario
    // re-solve carries over) join the pool ahead of the mutated-DP
    // fill: they compete in the same generation-0 batch, and because
    // they are appended before any rng draw the stochastic stream —
    // and with it every cold run — is byte-for-byte unchanged.
    for (std::vector<int> &genome : validSeeds(ctx))
        seeds.push_back(std::move(genome));
    while (static_cast<int>(seeds.size()) < 2 * population_) {
        std::vector<int> genome = state.best;
        for (int &g : genome)
            if (rng.bernoulli(0.3))
                g = order[rng.index(
                    std::min<std::size_t>(8, order.size()))];
        seeds.push_back(std::move(genome));
    }

    // Score every seed as ONE deterministic parallel batch (the big
    // win of the StepEvaluator relayering: the whole generation-0 pool
    // simulates concurrently, recurring genomes hit the memo), then
    // keep the fittest as the population.
    const std::vector<double> seed_scores =
        batchFitness(ctx, steps, seeds);
    state.fitness_queries += static_cast<long>(seeds.size());
    std::vector<std::pair<double, std::size_t>> ranked;
    for (std::size_t i = 0; i < seeds.size(); ++i)
        ranked.emplace_back(seed_scores[i], i);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    for (int i = 0;
         i < population_ && i < static_cast<int>(ranked.size()); ++i) {
        state.population.push_back(seeds[ranked[i].second]);
        state.scores.push_back(ranked[i].first);
    }
    return state;
}

void
GeneticRefiner::stepGeneration(const RefineContext &ctx,
                               eval::StepEvaluator &steps,
                               GaState &state) const
{
    Rng &rng = state.rng;
    std::vector<std::vector<int>> &population = state.population;
    std::vector<double> &scores = state.scores;
    const int n_ops = ctx.graph.opCount();

    // Tournament selection of two parents.
    auto pick = [&]() -> const std::vector<int> & {
        const std::size_t a = rng.index(population.size());
        const std::size_t b = rng.index(population.size());
        return scores[a] < scores[b] ? population[a] : population[b];
    };
    const std::vector<int> &pa = pick();
    const std::vector<int> &pb = pick();
    // One-point crossover at a residual boundary when possible.
    std::vector<int> child = pa;
    const int cut = ctx.boundaries[rng.index(ctx.boundaries.size())];
    for (int i = cut; i < n_ops; ++i)
        child[i] = pb[i];
    // Mutation: re-draw individual op strategies.
    for (int &g : child)
        if (rng.bernoulli(mutation_rate_))
            g = static_cast<int>(rng.index(ctx.candidates.size()));

    // Children arrive one per generation and recur often late in
    // the run; the step memo serves repeats without a simulation.
    const double score = fitnessOf(ctx, steps, child);
    ++state.fitness_queries;
    // Elitist replacement of the worst member.
    std::size_t worst = 0;
    for (std::size_t i = 1; i < population.size(); ++i)
        if (scores[i] > scores[worst])
            worst = i;
    if (score < scores[worst]) {
        population[worst] = std::move(child);
        scores[worst] = score;
    }
    const std::size_t arg_best = static_cast<std::size_t>(
        std::min_element(scores.begin(), scores.end()) -
        scores.begin());
    if (scores[arg_best] < state.best_fitness) {
        state.best = population[arg_best];
        state.best_fitness = scores[arg_best];
    }
    ++state.generations_done;
}

/// One in-flight GA run: a GaState advanced one generation per slice.
class GeneticRefiner::Run : public RefineRun
{
  public:
    Run(const GeneticRefiner &owner, const RefineContext &ctx,
        eval::StepEvaluator &steps, GaState state)
        : owner_(owner), ctx_(ctx), steps_(steps),
          state_(std::move(state))
    {
    }

    const char *engine() const override { return owner_.name(); }
    int stepsDone() const override { return state_.generations_done; }
    bool done() const override
    {
        return state_.generations_done >= owner_.generations_;
    }
    void step() override
    {
        owner_.stepGeneration(ctx_, steps_, state_);
    }
    RefineOutcome outcome() const override
    {
        return {state_.best, state_.best_fitness,
                state_.fitness_queries};
    }
    void writeCheckpoint(RefineCheckpoint *checkpoint) const override
    {
        *checkpoint = RefineCheckpoint{};
        checkpoint->engine = owner_.name();
        checkpoint->steps_done = state_.generations_done;
        checkpoint->fitness_queries = state_.fitness_queries;
        checkpoint->best = state_.best;
        checkpoint->best_fitness = state_.best_fitness;
        checkpoint->population = state_.population;
        checkpoint->scores = state_.scores;
        // Serialised from a copy: streaming an mt19937_64 state needs
        // a mutable engine reference, but leaves the stream untouched.
        Rng rng = state_.rng;
        checkpoint->rng_state = rngStateOf(rng);
    }

  private:
    const GeneticRefiner &owner_;
    const RefineContext &ctx_;
    eval::StepEvaluator &steps_;
    GaState state_;
};

std::unique_ptr<RefineRun>
GeneticRefiner::begin(const RefineContext &ctx,
                      eval::StepEvaluator &steps) const
{
    return std::make_unique<Run>(*this, ctx, steps,
                                 seedState(ctx, steps));
}

std::unique_ptr<RefineRun>
GeneticRefiner::beginFrom(const RefineContext &ctx,
                          eval::StepEvaluator &steps,
                          const RefineCheckpoint &checkpoint) const
{
    GaState state;
    // A foreign or damaged checkpoint degrades to a cold run: the
    // resume then re-runs the identical deterministic search rather
    // than continuing from state it cannot trust.
    if (checkpoint.engine != name() || checkpoint.population.empty() ||
        checkpoint.population.size() != checkpoint.scores.size() ||
        !restoreRng(checkpoint.rng_state, state.rng))
        return begin(ctx, steps);
    state.population = checkpoint.population;
    state.scores = checkpoint.scores;
    state.best = checkpoint.best;
    state.best_fitness = checkpoint.best_fitness;
    state.fitness_queries = checkpoint.fitness_queries;
    state.generations_done = checkpoint.steps_done;
    return std::make_unique<Run>(*this, ctx, steps, std::move(state));
}

// ---------------------------------------------------------------------
// AnnealingRefiner
// ---------------------------------------------------------------------

AnnealingRefiner::AnnealingRefiner(AnnealingConfig config,
                                   std::uint64_t seed)
    : config_(config), seed_(seed)
{
}

/// The annealer's between-round state (checkpointed at round
/// boundaries, where no proposal batch is in flight).
struct AnnealingRefiner::AnnealState
{
    Rng rng;
    std::vector<int> current;
    double current_fitness = 0.0;
    std::vector<int> best;
    double best_fitness = 0.0;
    double temp = 0.0;
    long fitness_queries = 0;
    int rounds_done = 0;
};

AnnealingRefiner::AnnealState
AnnealingRefiner::initState(const RefineContext &ctx,
                            eval::StepEvaluator &steps) const
{
    AnnealState state;
    state.rng = Rng(seed_);
    state.current = ctx.dp_assignment;
    state.current_fitness = ctx.dp_fitness;
    // Warm-start genomes: score them as one batch (before any rng
    // draw, so the walk's stochastic stream is unchanged) and start
    // the walk from the best of {DP plan, injected seeds}.
    const std::vector<std::vector<int>> seeds = validSeeds(ctx);
    if (!seeds.empty()) {
        const std::vector<double> scores =
            batchFitness(ctx, steps, seeds);
        state.fitness_queries += static_cast<long>(seeds.size());
        for (std::size_t i = 0; i < seeds.size(); ++i) {
            if (scores[i] < state.current_fitness) {
                state.current = seeds[i];
                state.current_fitness = scores[i];
            }
        }
    }
    state.best = state.current;
    state.best_fitness = state.current_fitness;
    // Temperature in step-time units: a fraction of the incumbent's
    // step time (absolute fallback when the DP plan is infeasible).
    state.temp =
        std::isfinite(state.best_fitness) && state.best_fitness > 0.0
            ? config_.initial_temp * state.best_fitness
            : config_.initial_temp;
    return state;
}

void
AnnealingRefiner::stepRound(const RefineContext &ctx,
                            eval::StepEvaluator &steps,
                            AnnealState &state) const
{
    Rng &rng = state.rng;
    const std::vector<int> order = drawOrder(ctx);
    const int n_ops = ctx.graph.opCount();

    // Draws one neighbour move in place: mostly single-op re-draws,
    // occasionally a whole residual sub-chain flipped to one spec
    // (the move that matches the structure the DP cuts expose).
    auto mutate = [&](std::vector<int> &genome) {
        auto draw_strategy = [&]() -> int {
            if (rng.bernoulli(0.5))
                return order[rng.index(
                    std::min<std::size_t>(8, order.size()))];
            return static_cast<int>(rng.index(ctx.candidates.size()));
        };
        if (ctx.boundaries.size() > 2 && rng.bernoulli(0.25)) {
            const std::size_t b = rng.index(ctx.boundaries.size() - 1);
            const int s = draw_strategy();
            for (int i = ctx.boundaries[b]; i < ctx.boundaries[b + 1];
                 ++i)
                genome[i] = s;
            return;
        }
        genome[static_cast<std::size_t>(rng.index(
            static_cast<std::size_t>(n_ops)))] = draw_strategy();
        if (rng.bernoulli(0.3))
            genome[static_cast<std::size_t>(rng.index(
                static_cast<std::size_t>(n_ops)))] = draw_strategy();
    };

    // All proposals of a round neighbour the round's starting plan,
    // so the whole round is fixed before any fitness is known — and
    // scores as ONE deterministic parallel batch.
    std::vector<std::vector<int>> proposals;
    proposals.reserve(static_cast<std::size_t>(config_.proposals));
    for (int p = 0; p < config_.proposals; ++p) {
        std::vector<int> neighbour = state.current;
        mutate(neighbour);
        proposals.push_back(std::move(neighbour));
    }
    const std::vector<double> scores =
        batchFitness(ctx, steps, proposals);
    state.fitness_queries += static_cast<long>(proposals.size());

    // Metropolis walk over the round, in proposal order.
    for (std::size_t p = 0; p < proposals.size(); ++p) {
        const double f = scores[p];
        if (!std::isfinite(f))
            continue;
        bool accept = f < state.current_fitness;
        if (!accept && state.temp > 0.0 &&
            std::isfinite(state.current_fitness)) {
            const double delta = f - state.current_fitness;
            accept = rng.uniformReal(0.0, 1.0) <
                     std::exp(-delta / state.temp);
        }
        if (!accept)
            continue;
        state.current = proposals[p];
        state.current_fitness = f;
        if (f < state.best_fitness) {
            state.best = proposals[p];
            state.best_fitness = f;
        }
    }
    state.temp *= config_.cooling;
    ++state.rounds_done;
}

/// One in-flight annealing walk: an AnnealState advanced one
/// proposal round per slice.
class AnnealingRefiner::Run : public RefineRun
{
  public:
    Run(const AnnealingRefiner &owner, const RefineContext &ctx,
        eval::StepEvaluator &steps, AnnealState state)
        : owner_(owner), ctx_(ctx), steps_(steps),
          state_(std::move(state))
    {
    }

    const char *engine() const override { return owner_.name(); }
    int stepsDone() const override { return state_.rounds_done; }
    bool done() const override
    {
        return state_.rounds_done >= owner_.config_.iterations;
    }
    void step() override { owner_.stepRound(ctx_, steps_, state_); }
    RefineOutcome outcome() const override
    {
        return {state_.best, state_.best_fitness,
                state_.fitness_queries};
    }
    void writeCheckpoint(RefineCheckpoint *checkpoint) const override
    {
        *checkpoint = RefineCheckpoint{};
        checkpoint->engine = owner_.name();
        checkpoint->steps_done = state_.rounds_done;
        checkpoint->fitness_queries = state_.fitness_queries;
        checkpoint->best = state_.best;
        checkpoint->best_fitness = state_.best_fitness;
        checkpoint->current = state_.current;
        checkpoint->current_fitness = state_.current_fitness;
        checkpoint->temperature = state_.temp;
        Rng rng = state_.rng;
        checkpoint->rng_state = rngStateOf(rng);
    }

  private:
    const AnnealingRefiner &owner_;
    const RefineContext &ctx_;
    eval::StepEvaluator &steps_;
    AnnealState state_;
};

std::unique_ptr<RefineRun>
AnnealingRefiner::begin(const RefineContext &ctx,
                        eval::StepEvaluator &steps) const
{
    return std::make_unique<Run>(*this, ctx, steps,
                                 initState(ctx, steps));
}

std::unique_ptr<RefineRun>
AnnealingRefiner::beginFrom(const RefineContext &ctx,
                            eval::StepEvaluator &steps,
                            const RefineCheckpoint &checkpoint) const
{
    AnnealState state;
    if (checkpoint.engine != name() || checkpoint.best.empty() ||
        checkpoint.current.empty() ||
        !restoreRng(checkpoint.rng_state, state.rng))
        return begin(ctx, steps);
    state.current = checkpoint.current;
    state.current_fitness = checkpoint.current_fitness;
    state.best = checkpoint.best;
    state.best_fitness = checkpoint.best_fitness;
    state.temp = checkpoint.temperature;
    state.fitness_queries = checkpoint.fitness_queries;
    state.rounds_done = checkpoint.steps_done;
    return std::make_unique<Run>(*this, ctx, steps, std::move(state));
}

// ---------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------

std::unique_ptr<SearchEngine>
makeSearchEngine(const SolverConfig &config)
{
    const SearchEngineKind kind = config.enable_ga
                                      ? config.engine
                                      : SearchEngineKind::NoRefine;
    switch (kind) {
    case SearchEngineKind::NoRefine:
        return std::make_unique<NoRefineEngine>();
    case SearchEngineKind::Genetic:
        return std::make_unique<GeneticRefiner>(
            config.ga_population, config.ga_generations,
            config.ga_mutation_rate, config.seed);
    case SearchEngineKind::Annealing:
        return std::make_unique<AnnealingRefiner>(config.annealing,
                                                  config.seed);
    case SearchEngineKind::BeamTabu:
        return std::make_unique<BeamTabuRefiner>(config.ga_generations,
                                                 config.seed);
    case SearchEngineKind::Exact:
        return std::make_unique<ExactChainEngine>();
    case SearchEngineKind::Portfolio: {
        // The portfolio races the three metaheuristics round-robin on
        // one budget; every member sees the same warm-seed pool via
        // the shared RefineContext.
        std::vector<std::unique_ptr<SearchEngine>> members;
        members.push_back(std::make_unique<GeneticRefiner>(
            config.ga_population, config.ga_generations,
            config.ga_mutation_rate, config.seed));
        members.push_back(std::make_unique<AnnealingRefiner>(
            config.annealing, config.seed));
        members.push_back(std::make_unique<BeamTabuRefiner>(
            config.ga_generations, config.seed));
        return std::make_unique<PortfolioEngine>(std::move(members));
    }
    }
    return std::make_unique<NoRefineEngine>();
}

}  // namespace temp::solver
