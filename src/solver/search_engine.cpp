#include "solver/search_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/rng.hpp"
#include "solver/dls_solver.hpp"

namespace temp::solver {

using parallel::ParallelSpec;

namespace {

const double kInf = std::numeric_limits<double>::infinity();

/// Expands a genome (candidate index per op) into per-op specs.
std::vector<ParallelSpec>
specsOf(const RefineContext &ctx, const std::vector<int> &genome)
{
    std::vector<ParallelSpec> specs;
    specs.reserve(genome.size());
    for (int idx : genome)
        specs.push_back(ctx.candidates[idx]);
    return specs;
}

/// Scores one genome through the step memo.
double
fitnessOf(const RefineContext &ctx, eval::StepEvaluator &steps,
          const std::vector<int> &genome)
{
    return stepFitness(steps.evaluate(ctx.graph, specsOf(ctx, genome)));
}

/// Scores a set of genomes as one deterministic parallel batch.
std::vector<double>
batchFitness(const RefineContext &ctx, eval::StepEvaluator &steps,
             const std::vector<std::vector<int>> &genomes)
{
    std::vector<std::vector<ParallelSpec>> assignments;
    assignments.reserve(genomes.size());
    for (const std::vector<int> &genome : genomes)
        assignments.push_back(specsOf(ctx, genome));
    const std::vector<sim::PerfReport> reports =
        steps.evaluateBatch(ctx.graph, assignments);
    std::vector<double> scores(reports.size());
    for (std::size_t i = 0; i < reports.size(); ++i)
        scores[i] = stepFitness(reports[i]);
    return scores;
}

/// Candidate indices worth drawing from: the feasible uniform plans,
/// or every candidate when none is uniformly feasible.
std::vector<int>
drawOrder(const RefineContext &ctx)
{
    std::vector<int> order;
    for (std::size_t s : ctx.uniform_order)
        order.push_back(static_cast<int>(s));
    if (order.empty())
        for (std::size_t s = 0; s < ctx.candidates.size(); ++s)
            order.push_back(static_cast<int>(s));
    return order;
}

}  // namespace

double
stepFitness(const sim::PerfReport &report)
{
    if (!report.feasible)
        return kInf;
    return report.step_time * (report.oom ? 1e3 : 1.0);
}

const char *
searchEngineName(SearchEngineKind kind)
{
    switch (kind) {
    case SearchEngineKind::NoRefine: return "none";
    case SearchEngineKind::Genetic: return "genetic";
    case SearchEngineKind::Annealing: return "annealing";
    }
    return "unknown";
}

bool
searchEngineFromName(const std::string &name, SearchEngineKind *kind)
{
    if (name == "none" || name == "dp")
        *kind = SearchEngineKind::NoRefine;
    else if (name == "genetic" || name == "ga")
        *kind = SearchEngineKind::Genetic;
    else if (name == "annealing" || name == "anneal")
        *kind = SearchEngineKind::Annealing;
    else
        return false;
    return true;
}

// ---------------------------------------------------------------------
// NoRefineEngine
// ---------------------------------------------------------------------

RefineOutcome
NoRefineEngine::refine(const RefineContext &ctx,
                       eval::StepEvaluator &) const
{
    return {ctx.dp_assignment, ctx.dp_fitness, 0};
}

// ---------------------------------------------------------------------
// GeneticRefiner
// ---------------------------------------------------------------------

GeneticRefiner::GeneticRefiner(int population, int generations,
                               double mutation_rate, std::uint64_t seed)
    : population_(population), generations_(generations),
      mutation_rate_(mutation_rate), seed_(seed)
{
}

RefineOutcome
GeneticRefiner::refine(const RefineContext &ctx,
                       eval::StepEvaluator &steps) const
{
    RefineOutcome outcome{ctx.dp_assignment, ctx.dp_fitness, 0};
    std::vector<int> &best = outcome.assignment;
    double &best_fitness = outcome.fitness;

    Rng rng(seed_);
    const std::vector<int> order = drawOrder(ctx);

    // Ranking for the weight-less role ignores the OOM penalty:
    // norms/attention do not own parameter state, so a spec whose
    // *uniform* plan OOMs (e.g. pure DP on a huge model) is still an
    // excellent choice for them once the weighted ops shard state.
    std::vector<int> order_o = order;
    std::sort(order_o.begin(), order_o.end(), [&](int a, int b) {
        return ctx.uniform_reports[a].step_time <
               ctx.uniform_reports[b].step_time;
    });

    // Seeds: the DP plan, the best uniform plans, and *structured*
    // two-spec plans (one spec for weight-bearing GEMMs, one for the
    // weight-less rest). The structured family encodes the key
    // design insight: parameter state forces high sharding on the
    // weighted ops only, while norms/attention prefer cheap
    // batch-style splits that keep gradient accumulation free.
    const int n_ops = ctx.graph.opCount();
    std::vector<std::vector<int>> seeds;
    seeds.push_back(best);
    const int top = std::min<int>(6, static_cast<int>(order.size()));
    for (int k = 0; k < top; ++k)
        seeds.push_back(std::vector<int>(n_ops, order[k]));
    for (int wi = 0; wi < top; ++wi) {
        for (int oi = 0; oi < top; ++oi) {
            std::vector<int> genome(n_ops);
            for (int i = 0; i < n_ops; ++i)
                genome[i] = ctx.graph.op(i).has_weight ? order[wi]
                                                       : order_o[oi];
            seeds.push_back(std::move(genome));
        }
    }
    while (static_cast<int>(seeds.size()) < 2 * population_) {
        std::vector<int> genome = best;
        for (int &g : genome)
            if (rng.bernoulli(0.3))
                g = order[rng.index(
                    std::min<std::size_t>(8, order.size()))];
        seeds.push_back(std::move(genome));
    }

    // Score every seed as ONE deterministic parallel batch (the big
    // win of the StepEvaluator relayering: the whole generation-0 pool
    // simulates concurrently, recurring genomes hit the memo), then
    // keep the fittest as the population.
    const std::vector<double> seed_scores =
        batchFitness(ctx, steps, seeds);
    outcome.fitness_queries += static_cast<long>(seeds.size());
    std::vector<std::pair<double, std::size_t>> ranked;
    for (std::size_t i = 0; i < seeds.size(); ++i)
        ranked.emplace_back(seed_scores[i], i);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    std::vector<std::vector<int>> population;
    std::vector<double> scores;
    for (int i = 0;
         i < population_ && i < static_cast<int>(ranked.size()); ++i) {
        population.push_back(seeds[ranked[i].second]);
        scores.push_back(ranked[i].first);
    }

    for (int gen = 0; gen < generations_; ++gen) {
        // Tournament selection of two parents.
        auto pick = [&]() -> const std::vector<int> & {
            const std::size_t a = rng.index(population.size());
            const std::size_t b = rng.index(population.size());
            return scores[a] < scores[b] ? population[a]
                                         : population[b];
        };
        const std::vector<int> &pa = pick();
        const std::vector<int> &pb = pick();
        // One-point crossover at a residual boundary when possible.
        std::vector<int> child = pa;
        const int cut =
            ctx.boundaries[rng.index(ctx.boundaries.size())];
        for (int i = cut; i < n_ops; ++i)
            child[i] = pb[i];
        // Mutation: re-draw individual op strategies.
        for (int &g : child)
            if (rng.bernoulli(mutation_rate_))
                g = static_cast<int>(rng.index(ctx.candidates.size()));

        // Children arrive one per generation and recur often late in
        // the run; the step memo serves repeats without a simulation.
        const double score = fitnessOf(ctx, steps, child);
        ++outcome.fitness_queries;
        // Elitist replacement of the worst member.
        std::size_t worst = 0;
        for (std::size_t i = 1; i < population.size(); ++i)
            if (scores[i] > scores[worst])
                worst = i;
        if (score < scores[worst]) {
            population[worst] = std::move(child);
            scores[worst] = score;
        }
        const std::size_t arg_best = static_cast<std::size_t>(
            std::min_element(scores.begin(), scores.end()) -
            scores.begin());
        if (scores[arg_best] < best_fitness) {
            best = population[arg_best];
            best_fitness = scores[arg_best];
        }
    }
    return outcome;
}

// ---------------------------------------------------------------------
// AnnealingRefiner
// ---------------------------------------------------------------------

AnnealingRefiner::AnnealingRefiner(AnnealingConfig config,
                                   std::uint64_t seed)
    : config_(config), seed_(seed)
{
}

RefineOutcome
AnnealingRefiner::refine(const RefineContext &ctx,
                         eval::StepEvaluator &steps) const
{
    RefineOutcome outcome{ctx.dp_assignment, ctx.dp_fitness, 0};

    Rng rng(seed_);
    const std::vector<int> order = drawOrder(ctx);
    const int n_ops = ctx.graph.opCount();

    std::vector<int> current = ctx.dp_assignment;
    double current_fitness = ctx.dp_fitness;

    // Temperature in step-time units: a fraction of the incumbent's
    // step time (absolute fallback when the DP plan is infeasible).
    double temp = std::isfinite(ctx.dp_fitness) && ctx.dp_fitness > 0.0
                      ? config_.initial_temp * ctx.dp_fitness
                      : config_.initial_temp;

    // Draws one neighbour move in place: mostly single-op re-draws,
    // occasionally a whole residual sub-chain flipped to one spec
    // (the move that matches the structure the DP cuts expose).
    auto mutate = [&](std::vector<int> &genome) {
        auto draw_strategy = [&]() -> int {
            if (rng.bernoulli(0.5))
                return order[rng.index(
                    std::min<std::size_t>(8, order.size()))];
            return static_cast<int>(rng.index(ctx.candidates.size()));
        };
        if (ctx.boundaries.size() > 2 && rng.bernoulli(0.25)) {
            const std::size_t b =
                rng.index(ctx.boundaries.size() - 1);
            const int s = draw_strategy();
            for (int i = ctx.boundaries[b]; i < ctx.boundaries[b + 1];
                 ++i)
                genome[i] = s;
            return;
        }
        genome[static_cast<std::size_t>(rng.index(
            static_cast<std::size_t>(n_ops)))] = draw_strategy();
        if (rng.bernoulli(0.3))
            genome[static_cast<std::size_t>(rng.index(
                static_cast<std::size_t>(n_ops)))] = draw_strategy();
    };

    for (int iter = 0; iter < config_.iterations; ++iter) {
        // All proposals of a round neighbour the round's starting
        // plan, so the whole round is fixed before any fitness is
        // known — and scores as ONE deterministic parallel batch.
        std::vector<std::vector<int>> proposals;
        proposals.reserve(static_cast<std::size_t>(config_.proposals));
        for (int p = 0; p < config_.proposals; ++p) {
            std::vector<int> neighbour = current;
            mutate(neighbour);
            proposals.push_back(std::move(neighbour));
        }
        const std::vector<double> scores =
            batchFitness(ctx, steps, proposals);
        outcome.fitness_queries += static_cast<long>(proposals.size());

        // Metropolis walk over the round, in proposal order.
        for (std::size_t p = 0; p < proposals.size(); ++p) {
            const double f = scores[p];
            if (!std::isfinite(f))
                continue;
            bool accept = f < current_fitness;
            if (!accept && temp > 0.0 &&
                std::isfinite(current_fitness)) {
                const double delta = f - current_fitness;
                accept = rng.uniformReal(0.0, 1.0) <
                         std::exp(-delta / temp);
            }
            if (!accept)
                continue;
            current = proposals[p];
            current_fitness = f;
            if (f < outcome.fitness) {
                outcome.assignment = proposals[p];
                outcome.fitness = f;
            }
        }
        temp *= config_.cooling;
    }
    return outcome;
}

// ---------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------

std::unique_ptr<SearchEngine>
makeSearchEngine(const SolverConfig &config)
{
    const SearchEngineKind kind = config.enable_ga
                                      ? config.engine
                                      : SearchEngineKind::NoRefine;
    switch (kind) {
    case SearchEngineKind::NoRefine:
        return std::make_unique<NoRefineEngine>();
    case SearchEngineKind::Genetic:
        return std::make_unique<GeneticRefiner>(
            config.ga_population, config.ga_generations,
            config.ga_mutation_rate, config.seed);
    case SearchEngineKind::Annealing:
        return std::make_unique<AnnealingRefiner>(config.annealing,
                                                  config.seed);
    }
    return std::make_unique<NoRefineEngine>();
}

}  // namespace temp::solver
