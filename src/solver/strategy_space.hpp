/**
 * @file
 * Enumeration of candidate parallel specifications.
 *
 * The search space of the dual-level solver (Sec. VII): all power-of-two
 * factorisations of the die budget across the enabled axes, filtered by
 * model-shape divisibility (dp <= batch, sp/cp <= sequence granularity,
 * tp <= heads, tatp within its useful range).
 */
#pragma once

#include <vector>

#include "model/model_zoo.hpp"
#include "parallel/spec.hpp"

namespace temp::solver {

/// Which axes the enumeration may use, and their caps.
struct StrategySpaceOptions
{
    bool allow_dp = true;
    bool allow_fsdp = false;
    bool allow_tp = true;
    bool allow_sp = true;
    bool allow_cp = false;
    bool allow_tatp = true;
    /// Cap on the tensor-parallel degree (Megatron-1 practice capped TP
    /// at the 8-GPU NVLink domain; later stacks scale further).
    int max_tp = 1 << 20;
    /// TATP degrees beyond this are never useful (Sec. V sweet spot
    /// analysis tops out well below; 32 keeps the full Fig. 9 sweep
    /// representable).
    int max_tatp = 32;
    /// Require the spec to use every die (all production configs do).
    /// When relaxed (degraded wafers with non-power-of-two usable die
    /// counts), DP additionally enumerates non-power-of-two degrees so
    /// the surviving dies can still be covered.
    bool full_occupancy = true;
};

/**
 * Enumerates valid specs for a die budget and model.
 *
 * @param die_count Dies available on the wafer (a power of two times a
 *        small factor; degrees are powers of two).
 * @param model Shape constraints (batch, heads, sequence).
 * @param options Axis gating.
 */
std::vector<parallel::ParallelSpec> enumerateStrategies(
    int die_count, const model::ModelConfig &model,
    const StrategySpaceOptions &options);

}  // namespace temp::solver
