/**
 * @file
 * The pluggable level-2 refinement layer of the Dual-Level Search.
 *
 * Level 1 (the per-sub-chain DP over the additive cost matrix) is exact
 * for what it models, but blind to cross-operator effects — merged
 * gradient-sync bucketing, contention, memory pressure. Level 2 refines
 * the DP plan against the *full* training-step simulation. The paper
 * uses a genetic algorithm there; this layer generalises the slot into
 * a SearchEngine interface so alternative metaheuristics (simulated
 * annealing today; beam search tomorrow) drop in behind one seam, all
 * scoring genomes through the shared, memoized, batch-parallel
 * eval::StepEvaluator.
 *
 * Engines are deterministic: every stochastic choice comes from a
 * seeded Rng drawn *before* fitness batches dispatch, and the
 * StepEvaluator's batches are bit-exact across thread counts, so a
 * (config, seed) pair reproduces the same plan on any machine width.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "eval/step_evaluator.hpp"

namespace temp::solver {

struct SolverConfig;

/// Which level-2 refinement runs after the DP.
enum class SearchEngineKind
{
    /// DP-only: keep the level-1 plan (still fully simulated once).
    NoRefine,
    /// The paper's genetic refinement (Sec. VII-B, Fig. 12b).
    Genetic,
    /// Simulated annealing over the same genome encoding.
    Annealing,
};

/// Printable engine name ("none", "genetic", "annealing").
const char *searchEngineName(SearchEngineKind kind);

/**
 * Parses an engine name; accepts the canonical names plus the aliases
 * "dp" (NoRefine), "ga" (Genetic) and "anneal" (Annealing).
 * @return false when the name is unknown.
 */
bool searchEngineFromName(const std::string &name, SearchEngineKind *kind);

/// Tuning of the annealing engine (SolverConfig::annealing).
struct AnnealingConfig
{
    /// Temperature steps (one batched proposal round each).
    int iterations = 60;
    /// Neighbour proposals per round, evaluated as one StepEvaluator
    /// batch. All proposals of a round mutate the round's starting
    /// plan, so the batch is fixed before any fitness is known.
    int proposals = 8;
    /// Starting temperature as a fraction of the DP plan's step time.
    double initial_temp = 0.25;
    /// Geometric cooling factor per round.
    double cooling = 0.92;
};

/**
 * Fitness of a simulated plan: step time, with OOM plans heavily
 * penalised and infeasible plans infinite (the objective every engine
 * minimises — identical to the pre-refactor GA fitness).
 */
double stepFitness(const sim::PerfReport &report);

/// Everything level 1 hands to an engine (borrowed views; the solver
/// outlives the refine call).
struct RefineContext
{
    const model::ComputeGraph &graph;
    /// Candidate specs; genomes index into this.
    const std::vector<parallel::ParallelSpec> &candidates;
    /// Sub-chain boundaries (residual-free cuts, incl. 0 and opCount).
    const std::vector<int> &boundaries;
    /// Uniform-plan reports, indexed by candidate.
    const std::vector<sim::PerfReport> &uniform_reports;
    /// Candidates with feasible uniform plans, fastest (OOM-penalised)
    /// first.
    const std::vector<std::size_t> &uniform_order;
    /// The level-1 DP assignment (candidate index per op).
    const std::vector<int> &dp_assignment;
    /// Its full-step fitness (already simulated by the solver).
    double dp_fitness;
};

/// What a refinement returns.
struct RefineOutcome
{
    std::vector<int> assignment;
    double fitness = 0.0;
    /// Full-step fitness queries the engine issued (cache-served or
    /// not) — folded into SolverResult::evaluations.
    long fitness_queries = 0;
};

/// The level-2 refinement interface.
class SearchEngine
{
  public:
    virtual ~SearchEngine() = default;

    virtual const char *name() const = 0;

    /// Refines the DP plan; never returns a worse fitness than
    /// ctx.dp_fitness (engines keep the incumbent).
    virtual RefineOutcome refine(const RefineContext &ctx,
                                 eval::StepEvaluator &steps) const = 0;
};

/// DP-only engine: returns the level-1 plan untouched.
class NoRefineEngine : public SearchEngine
{
  public:
    const char *name() const override { return "none"; }
    RefineOutcome refine(const RefineContext &ctx,
                         eval::StepEvaluator &steps) const override;
};

/**
 * The paper's genetic refinement, relayered onto the StepEvaluator:
 * the seed pool (DP plan, best uniform plans, structured two-spec
 * plans, mutated DP variants) is scored as one deterministic parallel
 * batch; the per-generation child evaluations hit the step memo
 * whenever a genome recurs. Bit-identical to the pre-refactor GA at
 * equal (config, seed).
 */
class GeneticRefiner : public SearchEngine
{
  public:
    GeneticRefiner(int population, int generations, double mutation_rate,
                   std::uint64_t seed);

    const char *name() const override { return "genetic"; }
    RefineOutcome refine(const RefineContext &ctx,
                         eval::StepEvaluator &steps) const override;

  private:
    int population_;
    int generations_;
    double mutation_rate_;
    std::uint64_t seed_;
};

/**
 * Simulated annealing over the same genome encoding. Each round draws
 * `proposals` neighbours of the round's starting plan (single-op
 * re-draws plus occasional whole-sub-chain moves), scores them as one
 * StepEvaluator batch, then walks the Metropolis acceptance over them
 * in order; the temperature cools geometrically per round.
 */
class AnnealingRefiner : public SearchEngine
{
  public:
    AnnealingRefiner(AnnealingConfig config, std::uint64_t seed);

    const char *name() const override { return "annealing"; }
    RefineOutcome refine(const RefineContext &ctx,
                         eval::StepEvaluator &steps) const override;

  private:
    AnnealingConfig config_;
    std::uint64_t seed_;
};

/**
 * Builds the engine a SolverConfig selects: config.engine, demoted to
 * NoRefine when the legacy enable_ga switch is off.
 */
std::unique_ptr<SearchEngine> makeSearchEngine(const SolverConfig &config);

}  // namespace temp::solver
