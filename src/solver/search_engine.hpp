/**
 * @file
 * The pluggable level-2 refinement layer of the Dual-Level Search.
 *
 * Level 1 (the per-sub-chain DP over the additive cost matrix) is exact
 * for what it models, but blind to cross-operator effects — merged
 * gradient-sync bucketing, contention, memory pressure. Level 2 refines
 * the DP plan against the *full* training-step simulation. The paper
 * uses a genetic algorithm there; this layer generalises the slot into
 * a SearchEngine interface so alternative metaheuristics (simulated
 * annealing today; beam search tomorrow) drop in behind one seam, all
 * scoring genomes through the shared, memoized, batch-parallel
 * eval::StepEvaluator.
 *
 * Engines are deterministic: every stochastic choice comes from a
 * seeded Rng drawn *before* fitness batches dispatch, and the
 * StepEvaluator's batches are bit-exact across thread counts, so a
 * (config, seed) pair reproduces the same plan on any machine width.
 *
 * Quantum slicing: every engine runs as a sequence of deterministic
 * quantum slices (a GA generation, an annealing round, a beam-tabu
 * round, a portfolio member slice) behind the RefineRun interface.
 * Budgets (common::BudgetGauge via RefineContext::gauge) are observed
 * only *between* slices, never inside one, so a budget-truncated run
 * is always the bit-exact prefix of the unbudgeted run — the same
 * boundary rule the refinePartial()/resume() checkpoints use.
 */
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/budget.hpp"
#include "eval/step_evaluator.hpp"

namespace temp::cost {
class WaferCostModel;
}

namespace temp::solver {

struct SolverConfig;

/// Which level-2 refinement runs after the DP.
enum class SearchEngineKind
{
    /// DP-only: keep the level-1 plan (still fully simulated once).
    NoRefine,
    /// The paper's genetic refinement (Sec. VII-B, Fig. 12b).
    Genetic,
    /// Simulated annealing over the same genome encoding.
    Annealing,
    /// Deterministic beam search with a tabu set over genome hashes.
    BeamTabu,
    /// Exact branch-and-bound over the additive matrix (small chains);
    /// certifies the heuristics' optimality gap.
    Exact,
    /// Races Genetic/Annealing/BeamTabu round-robin under one budget.
    Portfolio,
};

/// Printable engine name ("none", "genetic", "annealing", "beamtabu",
/// "exact", "portfolio").
const char *searchEngineName(SearchEngineKind kind);

/**
 * Parses an engine name; accepts the canonical names plus the aliases
 * "dp" (NoRefine), "ga" (Genetic), "anneal" (Annealing) and "beam"
 * (BeamTabu).
 * @return false when the name is unknown.
 */
bool searchEngineFromName(const std::string &name, SearchEngineKind *kind);

/// Tuning of the annealing engine (SolverConfig::annealing).
struct AnnealingConfig
{
    /// Temperature steps (one batched proposal round each).
    int iterations = 60;
    /// Neighbour proposals per round, evaluated as one StepEvaluator
    /// batch. All proposals of a round mutate the round's starting
    /// plan, so the batch is fixed before any fitness is known.
    int proposals = 8;
    /// Starting temperature as a fraction of the DP plan's step time.
    double initial_temp = 0.25;
    /// Geometric cooling factor per round.
    double cooling = 0.92;
};

/**
 * Fitness of a simulated plan: step time, with OOM plans heavily
 * penalised and infeasible plans infinite (the objective every engine
 * minimises — identical to the pre-refactor GA fitness).
 */
double stepFitness(const sim::PerfReport &report);

/// Everything level 1 hands to an engine (borrowed views; the solver
/// outlives the refine call).
struct RefineContext
{
    const model::ComputeGraph &graph;
    /// Candidate specs; genomes index into this.
    const std::vector<parallel::ParallelSpec> &candidates;
    /// Sub-chain boundaries (residual-free cuts, incl. 0 and opCount).
    const std::vector<int> &boundaries;
    /// Uniform-plan reports, indexed by candidate.
    const std::vector<sim::PerfReport> &uniform_reports;
    /// Candidates with feasible uniform plans, fastest (OOM-penalised)
    /// first.
    const std::vector<std::size_t> &uniform_order;
    /// The level-1 DP assignment (candidate index per op).
    const std::vector<int> &dp_assignment;
    /// Its full-step fitness (already simulated by the solver).
    double dp_fitness;
    /**
     * Optional warm-start genomes injected into the engine's seed pool
     * (the scenario engine passes the pre-fault assignment here).
     * Engines validate each genome (length == opCount, indices in
     * candidate range) and drop invalid ones; injection happens before
     * any RNG-driven seeding so the engine's stochastic stream is
     * untouched and cold runs stay bit-identical to pre-injection
     * builds. Null when no warm seeds exist.
     */
    const std::vector<std::vector<int>> *seeds = nullptr;
    /**
     * Optional solve-budget meter. Engines charge every fitness query
     * through it (via the StepEvaluator) and the SearchEngine drivers
     * observe it between quantum slices only, so a budgeted refine is
     * the bit-exact prefix of the unbudgeted one. Null = unbudgeted.
     */
    common::BudgetGauge *gauge = nullptr;
    /**
     * The RAW additive (op, candidate) cost matrix — before the
     * solver's memory-pressure penalties — for engines that reason
     * about the additive objective directly (ExactChainEngine's
     * branch-and-bound matches ExhaustiveSolver bit-for-bit only on
     * the unpenalised matrix). Null when unavailable.
     */
    const std::vector<std::vector<double>> *op_cost = nullptr;
    /// Cost model for inter-op resharding transitions (with op_cost,
    /// what the exact engine needs). Null when unavailable.
    const cost::WaferCostModel *cost_model = nullptr;
};

/// Per-engine accounting of one refinement (every engine reports one;
/// the portfolio reports one per member that ran at least one slice).
struct EngineAccount
{
    std::string engine;        ///< engine name()
    int steps = 0;             ///< quantum slices completed
    long fitness_queries = 0;  ///< full-step queries issued
    double best_fitness = 0.0; ///< best fitness found (when feasible)
    bool feasible = false;     ///< best_fitness is finite
    bool winner = false;       ///< produced the returned assignment
};

/// What a refinement returns.
struct RefineOutcome
{
    std::vector<int> assignment;
    double fitness = 0.0;
    /// Full-step fitness queries the engine issued (cache-served or
    /// not) — folded into SolverResult::evaluations.
    long fitness_queries = 0;
    /// True when the run stopped at a quantum boundary because the
    /// budget gauge tripped; the outcome is the best-so-far prefix.
    bool budget_exhausted = false;
    /// Per-engine accounting (one entry for single engines, one per
    /// raced member for the portfolio).
    std::vector<EngineAccount> accounts;
};

/**
 * A mid-refinement checkpoint, taken only at generation (GA) / round
 * (annealing) boundaries so the in-flight batch structure never needs
 * serialising. Resuming from it continues the exact run: the RNG
 * stream, incumbent and engine-specific walk state are captured, so
 * refine(ctx) and refinePartial(k) + resume() produce bit-identical
 * final assignments at equal (config, seed).
 */
struct RefineCheckpoint
{
    std::string engine;      ///< name() of the engine that wrote it
    int steps_done = 0;      ///< generations / rounds completed
    long fitness_queries = 0;  ///< queries issued so far
    std::vector<int> best;   ///< incumbent assignment
    double best_fitness = 0.0;
    /// GA walk state (empty for other engines).
    std::vector<std::vector<int>> population;
    std::vector<double> scores;
    /// Annealing walk state (empty/zero for other engines).
    std::vector<int> current;
    double current_fitness = 0.0;
    double temperature = 0.0;
    /// The mt19937_64 stream (operator<< capture) — a complete state
    /// capture because engines construct distributions per draw.
    std::string rng_state;
};

/**
 * Serialises a checkpoint with the persist byte codec (versioned,
 * checksummed). decodeRefineCheckpoint() rejects truncated or
 * corrupted bytes — returns false with @p error set and leaves @p out
 * cleared, so a damaged checkpoint degrades to a cold refine, never a
 * wrong resume.
 */
std::string encodeRefineCheckpoint(const RefineCheckpoint &checkpoint);
bool decodeRefineCheckpoint(const std::string &bytes,
                            RefineCheckpoint *out,
                            std::string *error = nullptr);

/**
 * One in-flight refinement, sliced into deterministic quanta. A run is
 * created by SearchEngine::begin()/beginFrom() (which may already
 * issue the engine's seed batch) and advanced one quantum slice — one
 * GA generation, one annealing round, one beam round, one portfolio
 * member slice — per step() call. outcome() is valid between any two
 * slices: it returns the best-so-far incumbent, which is what makes
 * cancellation, deadlines and engine racing all fall out of the same
 * structure.
 */
class RefineRun
{
  public:
    virtual ~RefineRun() = default;

    /// name() of the engine that owns this run.
    virtual const char *engine() const = 0;

    /// Quantum slices completed so far (includes checkpointed ones
    /// when the run was resumed).
    virtual int stepsDone() const = 0;

    /// True when the engine has no more slices to run.
    virtual bool done() const = 0;

    /// Advances one quantum slice. Precondition: !done(). Budgets are
    /// never consulted inside a slice — callers check between calls.
    virtual void step() = 0;

    /// The incumbent so far (valid between any two slices; never worse
    /// than the DP plan the context carries).
    virtual RefineOutcome outcome() const = 0;

    /// Captures the run into a checkpoint at the current boundary.
    virtual void writeCheckpoint(RefineCheckpoint *checkpoint) const = 0;

    /// Per-engine accounting; single-engine runs report themselves.
    virtual std::vector<EngineAccount> accounts() const;
};

/**
 * The level-2 refinement interface. Engines implement begin() (and
 * optionally beginFrom()); the refine()/refinePartial()/resume()
 * entry points are shared drivers that advance the run slice by slice
 * under the context's budget gauge — every engine is budget-aware by
 * construction.
 */
class SearchEngine
{
  public:
    virtual ~SearchEngine() = default;

    virtual const char *name() const = 0;

    /// Starts a fresh run (seeding batches may already be issued and
    /// charged to ctx.gauge here — the seed pool is the run's first
    /// quantum).
    virtual std::unique_ptr<RefineRun> begin(
        const RefineContext &ctx, eval::StepEvaluator &steps) const = 0;

    /**
     * Starts a run continuing @p checkpoint. A checkpoint written by a
     * different engine kind (or with unparsable state) is ignored: the
     * engine degrades to a cold begin() — never a wrong answer. The
     * base implementation accepts any same-name checkpoint with an
     * incumbent and returns a completed run holding it.
     */
    virtual std::unique_ptr<RefineRun> beginFrom(
        const RefineContext &ctx, eval::StepEvaluator &steps,
        const RefineCheckpoint &checkpoint) const;

    /**
     * Refines the DP plan; never returns a worse fitness than
     * ctx.dp_fitness (engines keep the incumbent). Runs slices until
     * the engine completes or ctx.gauge trips; a tripped run returns
     * the best-so-far prefix with budget_exhausted set.
     */
    RefineOutcome refine(const RefineContext &ctx,
                         eval::StepEvaluator &steps) const;

    /**
     * Runs at most @p max_steps quantum slices, then captures the
     * in-flight state into @p checkpoint. The returned outcome is the
     * incumbent so far (usable as-is). Engines without internal steps
     * (NoRefine) complete immediately. max_steps >= the configured
     * total is a full refine whose checkpoint resumes as a no-op.
     */
    RefineOutcome refinePartial(const RefineContext &ctx,
                                eval::StepEvaluator &steps, int max_steps,
                                RefineCheckpoint *checkpoint) const;

    /**
     * Continues a checkpointed run to the configured total step count,
     * bit-identically to the uninterrupted refine(). A checkpoint
     * written by a different engine kind (or with an unparsable RNG
     * stream) is ignored: resume degrades to a full cold refine —
     * never a wrong answer.
     */
    RefineOutcome resume(const RefineContext &ctx,
                         eval::StepEvaluator &steps,
                         const RefineCheckpoint &checkpoint) const;
};

/// DP-only engine: returns the level-1 plan untouched (warm seeds
/// still compete — the seed batch is the run's only quantum).
class NoRefineEngine : public SearchEngine
{
  public:
    const char *name() const override { return "none"; }
    std::unique_ptr<RefineRun> begin(
        const RefineContext &ctx,
        eval::StepEvaluator &steps) const override;
};

/**
 * The paper's genetic refinement, relayered onto the StepEvaluator:
 * the seed pool (DP plan, best uniform plans, structured two-spec
 * plans, mutated DP variants) is scored as one deterministic parallel
 * batch; the per-generation child evaluations hit the step memo
 * whenever a genome recurs. Bit-identical to the pre-refactor GA at
 * equal (config, seed).
 */
class GeneticRefiner : public SearchEngine
{
  public:
    GeneticRefiner(int population, int generations, double mutation_rate,
                   std::uint64_t seed);

    const char *name() const override { return "genetic"; }
    std::unique_ptr<RefineRun> begin(
        const RefineContext &ctx,
        eval::StepEvaluator &steps) const override;
    std::unique_ptr<RefineRun> beginFrom(
        const RefineContext &ctx, eval::StepEvaluator &steps,
        const RefineCheckpoint &checkpoint) const override;

  private:
    class Run;
    struct GaState;
    GaState seedState(const RefineContext &ctx,
                      eval::StepEvaluator &steps) const;
    void stepGeneration(const RefineContext &ctx,
                        eval::StepEvaluator &steps, GaState &state) const;

    int population_;
    int generations_;
    double mutation_rate_;
    std::uint64_t seed_;
};

/**
 * Simulated annealing over the same genome encoding. Each round draws
 * `proposals` neighbours of the round's starting plan (single-op
 * re-draws plus occasional whole-sub-chain moves), scores them as one
 * StepEvaluator batch, then walks the Metropolis acceptance over them
 * in order; the temperature cools geometrically per round.
 */
class AnnealingRefiner : public SearchEngine
{
  public:
    AnnealingRefiner(AnnealingConfig config, std::uint64_t seed);

    const char *name() const override { return "annealing"; }
    std::unique_ptr<RefineRun> begin(
        const RefineContext &ctx,
        eval::StepEvaluator &steps) const override;
    std::unique_ptr<RefineRun> beginFrom(
        const RefineContext &ctx, eval::StepEvaluator &steps,
        const RefineCheckpoint &checkpoint) const override;

  private:
    class Run;
    struct AnnealState;
    AnnealState initState(const RefineContext &ctx,
                          eval::StepEvaluator &steps) const;
    void stepRound(const RefineContext &ctx, eval::StepEvaluator &steps,
                   AnnealState &state) const;

    AnnealingConfig config_;
    std::uint64_t seed_;
};

/**
 * Builds the engine a SolverConfig selects: config.engine, demoted to
 * NoRefine when the legacy enable_ga switch is off.
 */
std::unique_ptr<SearchEngine> makeSearchEngine(const SolverConfig &config);

}  // namespace temp::solver
