/**
 * @file
 * Surrogate-accelerated strategy search (Sec. VII-A + VIII-G).
 *
 * The sample-then-predict machinery now lives in the unified evaluation
 * layer (eval/surrogate_evaluator.hpp) so the solver, benches and any
 * future backend share one implementation; this header keeps the
 * solver-facing names stable.
 */
#pragma once

#include "eval/surrogate_evaluator.hpp"

namespace temp::solver {

/// Featurisation + MLP fit/predict for (operator, strategy) costs.
using OpCostSurrogate = eval::OpCostSurrogate;

}  // namespace temp::solver
