/**
 * @file
 * Surrogate-accelerated strategy search (Sec. VII-A + VIII-G).
 *
 * The paper trains a DNN on simulator samples and drives the DLS search
 * with surrogate lookups ("100-1000x more efficient than
 * simulation-based approaches"). This module provides exactly that
 * plumbing: featurise an (operator, strategy) pair, fit the MLP on a
 * sampled subset of the cost matrix, and predict the remaining cells.
 */
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cost/surrogate.hpp"
#include "model/graph.hpp"
#include "parallel/spec.hpp"

namespace temp::solver {

/// Learns the per-(operator, strategy) cost surface from samples.
class OpCostSurrogate
{
  public:
    explicit OpCostSurrogate(std::uint64_t seed = 29);

    /**
     * Feature vector of one (operator, strategy) pair: log-scale
     * operator dimensions, operator class, and the log-degrees of every
     * parallel axis (the quantities the analytic cost is built from).
     */
    static std::vector<double> features(const model::Operator &op,
                                        const parallel::ParallelSpec &spec);

    /// Fits the MLP on measured (features -> cost seconds) samples.
    void fit(const std::vector<cost::CostSample> &samples);

    /// Predicted cost of one pair; fit() must have run.
    double predict(const model::Operator &op,
                   const parallel::ParallelSpec &spec) const;

    /// Fidelity of the fitted surrogate on held-out samples.
    cost::FidelityReport validate(
        const std::vector<cost::CostSample> &samples) const;

    /// Training epochs (smaller = faster fit; default tuned for the
    /// in-search use where the dataset is a few hundred cells).
    int epochs = 800;

  private:
    cost::DnnCostModel dnn_;
};

/**
 * Fills a cost matrix using the surrogate: a `sample_fraction` of the
 * cells (always including every cell of the first operator, so each
 * candidate is seen at least once) is measured with `measure`, the
 * surrogate is fitted on those, and the remaining cells are predicted.
 *
 * @param graph The operator chain.
 * @param candidates Strategy candidates.
 * @param sample_fraction Fraction of cells measured exactly, in (0,1].
 * @param measure Callback returning the exact cost of (op_idx, cand_idx).
 * @param rng Sampling source.
 * @param out_matrix [op][candidate] costs (measured or predicted).
 * @return Number of exact measurements performed.
 */
long fillCostMatrixWithSurrogate(
    const model::ComputeGraph &graph,
    const std::vector<parallel::ParallelSpec> &candidates,
    double sample_fraction,
    const std::function<double(int, int)> &measure, Rng &rng,
    std::vector<std::vector<double>> &out_matrix);

}  // namespace temp::solver
