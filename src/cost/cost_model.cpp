#include "cost/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hpp"

namespace temp::cost {

using parallel::Axis;
using parallel::GroupLayout;
using parallel::OpExecution;
using parallel::ParallelSpec;

WaferCostModel::WaferCostModel(const hw::Wafer &wafer,
                               tcme::MappingPolicy policy,
                               parallel::TrainingOptions options)
    : wafer_(wafer),
      policy_(policy),
      partitioner_(options),
      compute_(wafer.config().die, wafer.config().hbm),
      power_(wafer.config()),
      router_(wafer.topology(), &wafer.faults()),
      scheduler_(router_),
      schedule_cache_(scheduler_),
      contention_(wafer, wafer.config().d2d.latency_s),
      chain_mapper_(wafer.topology()),
      tatp_executor_(wafer.config().d2d),
      optimizer_(router_)
{
    // Eager invalidation: a setFaults() on the live wafer flushes the
    // dead epoch's schedules and pooled routes immediately, instead of
    // retaining them until (unless) a next lookup notices the epoch
    // moved. The listener only touches this model's own thread-safe
    // caches, so it is safe from whichever thread injects the faults.
    epoch_listener_id_ =
        wafer_.addEpochListener([this](std::uint64_t epoch) {
            schedule_cache_.flushForEpoch(epoch);
            router_.dropStaleRoutes();
        });
}

WaferCostModel::~WaferCostModel()
{
    wafer_.removeEpochListener(epoch_listener_id_);
}

net::PhaseTiming
WaferCostModel::timeCollectiveTasks(
    const std::vector<net::CollectiveTask> &tasks, double *link_bytes,
    net::ScheduleCacheStats *sched_stats) const
{
    net::PhaseTiming timing;
    if (tasks.empty())
        return timing;

    // Lower every task through the shared schedule cache (content-keyed
    // on the task signature, invalidated by the wafer's fault epoch).
    const std::uint64_t epoch = wafer_.faultEpoch();
    std::vector<std::shared_ptr<const net::CommSchedule>> lowered;
    lowered.reserve(tasks.size());
    bool feasible = true;
    for (const net::CollectiveTask &task : tasks) {
        bool hit = false;
        lowered.push_back(schedule_cache_.lowered(task, epoch, &hit));
        feasible = feasible && lowered.back()->feasible;
        if (sched_stats != nullptr) {
            if (hit)
                ++sched_stats->hits;
            else
                ++sched_stats->lowerings;
        }
    }
    if (!feasible) {
        timing.time_s = std::numeric_limits<double>::infinity();
        return timing;
    }

    // Single-task fast path: no overlay combination needed, and when no
    // traffic optimisation runs the cached schedule is evaluated in
    // place — the common case of the matrix fill costs zero copies.
    if (tasks.size() == 1) {
        const net::CommSchedule &single = *lowered.front();
        if (!policy_.contentionOptimization()) {
            if (link_bytes != nullptr)
                *link_bytes += single.linkBytes();
            return contention_.evaluateSequence(single);
        }
        net::CommSchedule optimized = single;
        optimizer_.optimize(optimized);
        if (link_bytes != nullptr)
            *link_bytes += optimized.linkBytes();
        return contention_.evaluateSequence(optimized);
    }

    // Overlay same-kind rounds in one pass: groups of one axis run
    // concurrently, and different axes' collectives inside one op
    // contend for the same links (the Fig. 11 scenario).
    std::vector<const net::CommSchedule *> parts;
    parts.reserve(lowered.size());
    for (const auto &schedule : lowered)
        parts.push_back(schedule.get());
    net::CommSchedule combined = net::CommSchedule::combine(parts);

    if (policy_.contentionOptimization())
        optimizer_.optimize(combined);  // finalizes its rebuilt arena
    else
        combined.finalize();

    if (link_bytes != nullptr)
        *link_bytes += combined.linkBytes();
    return contention_.evaluateSequence(combined);
}

void
WaferCostModel::timeStream(const OpExecution &exec, const GroupLayout &layout,
                           OpCostBreakdown &out) const
{
    const parallel::TatpStream &stream = exec.tatp;
    const int g = stream.degree;

    // Build the physical chains this layout gives the stream. Engines
    // other than SMap re-order scattered groups into the best chain
    // (GMap is hop-aware; TCME is topology-aware by construction).
    std::vector<tatp::ChainInfo> chains;
    for (const auto &group : layout.groups(Axis::TATP)) {
        std::vector<hw::DieId> ordered = group;
        if (policy_.kind != tcme::MappingEngineKind::SMap)
            ordered = chain_mapper_.orderAsChain(ordered);
        chains.push_back(chain_mapper_.analyzeChain(ordered));
    }
    if (chains.empty())
        return;

    // Worst chain gates the bulk-synchronous stream.
    const tatp::ChainInfo *worst = &chains[0];
    for (const tatp::ChainInfo &c : chains)
        if (c.max_hop > worst->max_hop)
            worst = &c;

    double min_derate = 1.0;
    for (hw::DieId die : layout.activeDies())
        min_derate = std::min(min_derate,
                              wafer_.faults().computeDerate(die));
    // Per-round compute obeys the same roofline as any GEMM slice
    // (the streamed operand still transits DRAM); express it as an
    // effective FLOP rate so the TATP executor can overlap against it.
    const double dram_per_round_fwd =
        exec.dram_bytes_fwd / static_cast<double>(g);
    const double round_comp_fwd =
        compute_.opTime(stream.fwd_flops_per_round, dram_per_round_fwd,
                        true, min_derate);
    const double flops_rate =
        round_comp_fwd > 0.0 ? stream.fwd_flops_per_round / round_comp_fwd
                             : wafer_.config().die.peak_flops;

    // Cross-group contention: evaluate the densest stream round under
    // the contention model and take the worse of that and the
    // store-and-forward estimate.
    auto contended_round = [&](bool backward) {
        const net::CommSchedule flows =
            tatp_executor_.streamFlows(stream, chains, router_, backward);
        if (!flows.feasible)
            return std::numeric_limits<double>::infinity();
        if (flows.empty())
            return 0.0;
        return contention_.evaluate(flows.round(0)).time_s;
    };

    const tatp::TatpTiming fwd = tatp_executor_.timePass(
        stream.fwd_flops_per_round, stream.bytes_per_round, g, *worst,
        flops_rate);
    const tatp::TatpTiming bwd = tatp_executor_.timePass(
        stream.bwd_flops_per_round, 2.0 * stream.bytes_per_round, g, *worst,
        flops_rate);

    const double fwd_comm_round =
        std::max(fwd.comm_time_s / g, contended_round(false));
    const double bwd_comm_round =
        std::max(bwd.comm_time_s / g, contended_round(true));
    if (std::isinf(fwd_comm_round) || std::isinf(bwd_comm_round)) {
        out.feasible = false;
        return;
    }

    const double fwd_round = std::max(fwd.comp_time_s / g, fwd_comm_round);
    const double bwd_round = std::max(bwd.comp_time_s / g, bwd_comm_round);

    out.fwd_time += g * fwd_round;
    out.bwd_time += g * bwd_round;
    out.comp_time += fwd.comp_time_s + bwd.comp_time_s;
    out.stream_comm_time += g * (fwd_comm_round + bwd_comm_round);
    out.exposed_comm += g * (std::max(0.0, fwd_comm_round -
                                               fwd.comp_time_s / g) +
                             std::max(0.0, bwd_comm_round -
                                               bwd.comp_time_s / g));
    // Tail latency: whatever exceeds the contiguous-chain ideal.
    const double ideal_hop =
        tatp_executor_.hopTransferTime(stream.bytes_per_round, 1);
    const double ideal_hop_bwd =
        tatp_executor_.hopTransferTime(2.0 * stream.bytes_per_round, 1);
    out.tail_latency +=
        g * (std::max(0.0, fwd_round - std::max(fwd.comp_time_s / g,
                                                ideal_hop)) +
             std::max(0.0, bwd_round - std::max(bwd.comp_time_s / g,
                                                ideal_hop_bwd)));
    out.d2d_link_bytes +=
        (fwd.link_bytes + bwd.link_bytes) * chains.size();
}

OpCostBreakdown
WaferCostModel::opCost(const model::Operator &op, const GroupLayout &layout,
                       bool include_step) const
{
    return opCost(partitioner_.analyze(op, layout), op, layout,
                  include_step);
}

OpCostBreakdown
WaferCostModel::opCost(const OpExecution &exec, const model::Operator &op,
                       const GroupLayout &layout, bool include_step) const
{
    OpCostBreakdown out;
    const int dies = layout.usedDies();

    double min_derate = 1.0;
    for (hw::DieId die : layout.activeDies())
        min_derate = std::min(min_derate,
                              wafer_.faults().computeDerate(die));

    const double comp_fwd = compute_.opTime(
        exec.fwd_flops_per_die, exec.dram_bytes_fwd, op.isGemm(), min_derate);
    const double comp_bwd = compute_.opTime(
        exec.bwd_flops_per_die, exec.dram_bytes_bwd, op.isGemm(), min_derate);

    // Blocking collectives (Eq. 2's Collective term). One lookup-stat
    // accumulator for all phases; folded into the breakdown so callers
    // (evaluators, the simulator) inherit honest cache accounting.
    net::ScheduleCacheStats sched_stats;
    const net::PhaseTiming coll_fwd = timeCollectiveTasks(
        exec.fwd_collectives, &out.d2d_link_bytes, &sched_stats);
    const net::PhaseTiming coll_bwd = timeCollectiveTasks(
        exec.bwd_collectives, &out.d2d_link_bytes, &sched_stats);
    const net::PhaseTiming coll_step =
        include_step
            ? timeCollectiveTasks(exec.step_collectives,
                                  &out.d2d_link_bytes, &sched_stats)
            : net::PhaseTiming{};
    const net::PhaseTiming coll_overlap = timeCollectiveTasks(
        exec.overlap_collectives, &out.d2d_link_bytes, &sched_stats);
    out.schedule_lowerings = sched_stats.lowerings;
    out.schedule_cache_hits = sched_stats.hits;
    if (std::isinf(coll_fwd.time_s) || std::isinf(coll_bwd.time_s) ||
        std::isinf(coll_step.time_s) || std::isinf(coll_overlap.time_s)) {
        out.feasible = false;
        return out;
    }

    if (exec.tatp.active) {
        timeStream(exec, layout, out);
        if (!out.feasible)
            return out;
    } else {
        out.fwd_time += std::max(comp_fwd, coll_overlap.time_s);
        out.bwd_time += comp_bwd;
        out.comp_time += comp_fwd + comp_bwd;
        out.exposed_comm +=
            std::max(0.0, coll_overlap.time_s - comp_fwd);
    }

    out.fwd_time += coll_fwd.time_s;
    out.bwd_time += coll_bwd.time_s;
    out.collective_time += coll_fwd.time_s + coll_bwd.time_s;
    out.exposed_comm += coll_fwd.time_s + coll_bwd.time_s;

    // Gradient-sync collectives partially overlap backward compute.
    out.step_comm_time = coll_step.time_s * (1.0 - kGradSyncOverlap);
    out.exposed_comm += out.step_comm_time;

    out.dram_bytes = (exec.dram_bytes_fwd + exec.dram_bytes_bwd) * dies;
    out.flops = (exec.fwd_flops_per_die + exec.bwd_flops_per_die) * dies;

    // Utilisation: byte-weighted over the communication phases.
    double util_weight = 0.0;
    double util_acc = 0.0;
    for (const net::PhaseTiming *t :
         {&coll_fwd, &coll_bwd, &coll_step, &coll_overlap}) {
        if (t->total_bytes > 0.0) {
            util_acc += t->bandwidth_utilization * t->total_bytes;
            util_weight += t->total_bytes;
        }
    }
    out.bw_utilization = util_weight > 0.0 ? util_acc / util_weight : 0.0;
    return out;
}

double
WaferCostModel::interOpTime(const model::Operator &producer,
                            const ParallelSpec &from,
                            const ParallelSpec &to) const
{
    const double bytes = parallel::reshardBytesPerDie(
        producer, from, to, partitioner_.options());
    if (bytes <= 0.0)
        return 0.0;
    // Resharding is a bulk exchange between neighbouring shards; a die
    // moves its share at roughly one D2D link of bandwidth.
    const hw::D2dConfig &d2d = wafer_.config().d2d;
    return bytes / d2d.effectiveBandwidth(bytes) + d2d.latency_s;
}

tcme::AxisVolumes
WaferCostModel::estimateAxisVolumes(const model::ComputeGraph &graph,
                                    const ParallelSpec &spec) const
{
    tcme::AxisVolumes volumes{};
    std::vector<hw::DieId> probe_order =
        GroupLayout::snakeOrder(wafer_.topology());
    if (!wafer_.faults().healthy()) {
        const std::vector<hw::DieId> usable = wafer_.usableDies();
        if (static_cast<int>(usable.size()) >= spec.totalDegree()) {
            std::vector<bool> ok(wafer_.dieCount(), false);
            for (hw::DieId die : usable)
                ok[die] = true;
            std::erase_if(probe_order,
                          [&](hw::DieId die) { return !ok[die]; });
        }
    }
    GroupLayout probe(std::move(probe_order), spec,
                      parallel::defaultAxisOrder());
    for (const model::Operator &op : graph.ops()) {
        const OpExecution exec = partitioner_.analyze(op, probe);
        auto account = [&volumes](const std::vector<net::CollectiveTask>
                                      &tasks) {
            for (const net::CollectiveTask &task : tasks) {
                const int axis = task.tag - 1000;
                if (axis < 0 ||
                    axis >= static_cast<int>(parallel::Axis::Count))
                    continue;
                volumes[axis] +=
                    task.bytes * static_cast<double>(task.group.size());
            }
        };
        account(exec.fwd_collectives);
        account(exec.bwd_collectives);
        account(exec.step_collectives);
        account(exec.overlap_collectives);
        if (exec.tatp.active) {
            volumes[static_cast<std::size_t>(Axis::TATP)] +=
                exec.tatp.group_tensor_bytes * 2.0;
        }
    }
    return volumes;
}

GroupLayout
WaferCostModel::buildLayout(const model::ComputeGraph &graph,
                            const ParallelSpec &spec) const
{
    const tcme::AxisVolumes volumes = estimateAxisVolumes(graph, spec);
    if (wafer_.faults().healthy()) {
        return GroupLayout(wafer_.topology(), spec,
                           policy_.axisOrder(volumes));
    }
    // Fault-tolerant placement: keep the snake enumeration but drop
    // dies outside the largest usable component (Fig. 20a step 2:
    // re-balance partitioning around the faults). A spec too large for
    // the component is placed on the full snake instead; its routes
    // then cross the faults and the cost model reports infeasibility.
    const std::vector<hw::DieId> usable = wafer_.usableDies();
    if (static_cast<int>(usable.size()) < spec.totalDegree()) {
        return GroupLayout(wafer_.topology(), spec,
                           policy_.axisOrder(volumes));
    }
    std::vector<bool> ok(wafer_.dieCount(), false);
    for (hw::DieId die : usable)
        ok[die] = true;
    std::vector<hw::DieId> order;
    for (hw::DieId die : GroupLayout::snakeOrder(wafer_.topology()))
        if (ok[die])
            order.push_back(die);
    return GroupLayout(std::move(order), spec,
                       policy_.axisOrder(volumes));
}

}  // namespace temp::cost
