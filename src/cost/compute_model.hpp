/**
 * @file
 * Per-die compute timing: a roofline over the PE array and HBM.
 *
 * GEMM-family operators run at a size-dependent fraction of peak (small
 * or skinny tiles underutilise the PE array); element-wise operators are
 * memory-bound and ride the HBM bandwidth line.
 */
#pragma once

#include "hw/config.hpp"
#include "mem/hbm_model.hpp"

namespace temp::cost {

/// Roofline compute-time model for one die.
class ComputeModel
{
  public:
    ComputeModel(const hw::DieConfig &die, const hw::HbmConfig &hbm);

    /**
     * Execution time of an operator slice on one die.
     *
     * @param flops FLOPs assigned to the die.
     * @param dram_bytes DRAM traffic of the slice.
     * @param is_gemm GEMM-family (PE-array) vs. element-wise (vector).
     * @param derate Compute derating (core faults), in (0, 1].
     */
    double opTime(double flops, double dram_bytes, bool is_gemm,
                  double derate = 1.0) const;

    /**
     * PE-array utilisation for a GEMM of the given total FLOPs: ramps
     * from kMinGemmEfficiency for tiny problems to kMaxGemmEfficiency
     * once the problem saturates the array.
     */
    double gemmEfficiency(double flops) const;

    /// Vector-unit efficiency applied to element-wise operators.
    static constexpr double kVectorEfficiency = 0.30;
    static constexpr double kMinGemmEfficiency = 0.25;
    static constexpr double kMaxGemmEfficiency = 0.88;
    /// FLOP count at which a GEMM saturates the PE array (~10 GFLOPs,
    /// a few microseconds of work on a 1.8 PFLOPS die).
    static constexpr double kSaturatingFlops = 1.0e10;

    const hw::DieConfig &die() const { return die_; }
    const mem::HbmModel &hbm() const { return hbm_; }

  private:
    hw::DieConfig die_;
    mem::HbmModel hbm_;
};

}  // namespace temp::cost
