/**
 * @file
 * Batched reductions over OpCostBreakdown cells: the per-layer sums the
 * step simulator folds over every op, and the feasible-total column the
 * solvers' (op, strategy) matrices are filled from.
 *
 * Bit-exactness: each output accumulator keeps the exact per-cell
 * addition order of the former field-by-field loop; the SIMD variants
 * vectorize *across independent accumulators* (one lane per field) and
 * across independent cells (the totals column), never reassociating any
 * single accumulation chain. See common/kernels.hpp for the contract.
 */
#pragma once

#include <span>

#include "cost/cost_model.hpp"

namespace temp::cost {

/// Field sums over a batch of breakdown cells, in cell order per field.
struct BreakdownSums
{
    double wall = 0.0;        ///< sum of fwd_time + bwd_time
    double comp = 0.0;        ///< sum of comp_time
    double collective = 0.0;  ///< sum of collective_time
    double stream = 0.0;      ///< sum of stream_comm_time
    double exposed = 0.0;     ///< sum of exposed_comm
    double tail = 0.0;        ///< sum of tail_latency
    double flops = 0.0;       ///< sum of flops
    double dram = 0.0;        ///< sum of dram_bytes
    double d2d = 0.0;         ///< sum of d2d_link_bytes
    /// Link-byte-weighted bandwidth utilisation terms, accumulated only
    /// for cells with both bw_utilization > 0 and d2d_link_bytes > 0.
    double util_acc = 0.0;     ///< sum of bw_utilization * d2d_link_bytes
    double util_weight = 0.0;  ///< sum of d2d_link_bytes
};

BreakdownSums reduceBreakdownsScalar(std::span<const OpCostBreakdown> cells);
BreakdownSums reduceBreakdownsSimd(std::span<const OpCostBreakdown> cells);
/// Runtime-dispatched reduction (kernels::simdActive()).
BreakdownSums reduceBreakdowns(std::span<const OpCostBreakdown> cells);

/**
 * Fills `out[k] = cells[k].feasible ? cells[k].total() : +inf` — the
 * additive-model matrix column. `out` must hold cells.size() doubles.
 */
void breakdownTotalsScalar(std::span<const OpCostBreakdown> cells,
                           double *out);
void breakdownTotalsSimd(std::span<const OpCostBreakdown> cells,
                         double *out);
void breakdownTotals(std::span<const OpCostBreakdown> cells, double *out);

}  // namespace temp::cost
