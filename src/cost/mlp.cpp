#include "cost/mlp.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace temp::cost {

Mlp::Mlp(std::vector<int> layer_sizes, Rng &rng)
    : sizes_(std::move(layer_sizes))
{
    if (sizes_.size() < 2)
        fatal("Mlp: need at least input and output layers");
    for (std::size_t i = 0; i + 1 < sizes_.size(); ++i) {
        Layer layer;
        layer.in = sizes_[i];
        layer.out = sizes_[i + 1];
        layer.w.resize(layer.out * layer.in);
        layer.b.assign(layer.out, 0.0);
        const double scale = std::sqrt(2.0 / layer.in);
        for (double &w : layer.w)
            w = rng.gaussian(0.0, scale);
        layer.mw.assign(layer.w.size(), 0.0);
        layer.vw.assign(layer.w.size(), 0.0);
        layer.mb.assign(layer.b.size(), 0.0);
        layer.vb.assign(layer.b.size(), 0.0);
        layers_.push_back(std::move(layer));
    }
}

void
Mlp::forwardCached(const std::vector<double> &input,
                   std::vector<std::vector<double>> &acts,
                   std::vector<std::vector<double>> &pre) const
{
    acts.clear();
    pre.clear();
    acts.push_back(input);
    for (std::size_t li = 0; li < layers_.size(); ++li) {
        const Layer &layer = layers_[li];
        std::vector<double> z(layer.out, 0.0);
        const std::vector<double> &x = acts.back();
        for (int o = 0; o < layer.out; ++o) {
            double acc = layer.b[o];
            const double *wrow = &layer.w[o * layer.in];
            for (int i = 0; i < layer.in; ++i)
                acc += wrow[i] * x[i];
            z[o] = acc;
        }
        pre.push_back(z);
        // ReLU on hidden layers, identity on the output layer.
        if (li + 1 < layers_.size()) {
            for (double &v : z)
                v = v > 0.0 ? v : 0.0;
        }
        acts.push_back(std::move(z));
    }
}

std::vector<double>
Mlp::forward(const std::vector<double> &input) const
{
    std::vector<std::vector<double>> acts, pre;
    forwardCached(input, acts, pre);
    return acts.back();
}

double
Mlp::train(const std::vector<std::vector<double>> &inputs,
           const std::vector<double> &targets, int epochs, double lr)
{
    if (inputs.size() != targets.size() || inputs.empty())
        fatal("Mlp::train: dataset shape mismatch");

    const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
    const double n = static_cast<double>(inputs.size());
    double mse = 0.0;

    std::vector<std::vector<double>> acts, pre;
    for (int epoch = 1; epoch <= epochs; ++epoch) {
        // Accumulate full-batch gradients.
        std::vector<std::vector<double>> gw(layers_.size());
        std::vector<std::vector<double>> gb(layers_.size());
        for (std::size_t li = 0; li < layers_.size(); ++li) {
            gw[li].assign(layers_[li].w.size(), 0.0);
            gb[li].assign(layers_[li].b.size(), 0.0);
        }

        mse = 0.0;
        for (std::size_t s = 0; s < inputs.size(); ++s) {
            forwardCached(inputs[s], acts, pre);
            const double out = acts.back()[0];
            const double err = out - targets[s];
            mse += err * err;

            // Backprop: delta at output = dL/dz (identity activation).
            std::vector<double> delta{2.0 * err / n};
            for (std::size_t li = layers_.size(); li-- > 0;) {
                const Layer &layer = layers_[li];
                const std::vector<double> &x = acts[li];
                std::vector<double> next_delta(layer.in, 0.0);
                for (int o = 0; o < layer.out; ++o) {
                    const double d = delta[o];
                    if (d == 0.0)
                        continue;
                    gb[li][o] += d;
                    double *grow = &gw[li][o * layer.in];
                    const double *wrow = &layer.w[o * layer.in];
                    for (int i = 0; i < layer.in; ++i) {
                        grow[i] += d * x[i];
                        next_delta[i] += d * wrow[i];
                    }
                }
                if (li > 0) {
                    // Apply ReLU derivative of the previous layer.
                    const std::vector<double> &z = pre[li - 1];
                    for (int i = 0; i < layer.in; ++i)
                        if (z[i] <= 0.0)
                            next_delta[i] = 0.0;
                }
                delta = std::move(next_delta);
            }
        }
        mse /= n;

        // Adam update.
        const double bc1 = 1.0 - std::pow(beta1, epoch);
        const double bc2 = 1.0 - std::pow(beta2, epoch);
        for (std::size_t li = 0; li < layers_.size(); ++li) {
            Layer &layer = layers_[li];
            for (std::size_t k = 0; k < layer.w.size(); ++k) {
                layer.mw[k] = beta1 * layer.mw[k] + (1 - beta1) * gw[li][k];
                layer.vw[k] =
                    beta2 * layer.vw[k] + (1 - beta2) * gw[li][k] * gw[li][k];
                layer.w[k] -= lr * (layer.mw[k] / bc1) /
                              (std::sqrt(layer.vw[k] / bc2) + eps);
            }
            for (std::size_t k = 0; k < layer.b.size(); ++k) {
                layer.mb[k] = beta1 * layer.mb[k] + (1 - beta1) * gb[li][k];
                layer.vb[k] =
                    beta2 * layer.vb[k] + (1 - beta2) * gb[li][k] * gb[li][k];
                layer.b[k] -= lr * (layer.mb[k] / bc1) /
                              (std::sqrt(layer.vb[k] / bc2) + eps);
            }
        }
    }
    return mse;
}

}  // namespace temp::cost
