#include "cost/breakdown_reduce.hpp"

#include <limits>

#include "common/kernels.hpp"

namespace temp::cost {

TEMP_NO_AUTOVEC BreakdownSums
reduceBreakdownsScalar(std::span<const OpCostBreakdown> cells)
{
    BreakdownSums s;
    for (const OpCostBreakdown &c : cells) {
        s.wall += c.fwd_time + c.bwd_time;
        s.comp += c.comp_time;
        s.collective += c.collective_time;
        s.stream += c.stream_comm_time;
        s.exposed += c.exposed_comm;
        s.tail += c.tail_latency;
        s.flops += c.flops;
        s.dram += c.dram_bytes;
        s.d2d += c.d2d_link_bytes;
        if (c.bw_utilization > 0.0 && c.d2d_link_bytes > 0.0) {
            s.util_acc += c.bw_utilization * c.d2d_link_bytes;
            s.util_weight += c.d2d_link_bytes;
        }
    }
    return s;
}

BreakdownSums
reduceBreakdownsSimd(std::span<const OpCostBreakdown> cells)
{
    // The field sums are 11 independent accumulation chains, each
    // adding cells in order — reassociating any one of them across
    // cells would change bits, so the vector win here is *within* a
    // cell: branchless selects (the util blend is +0.0, the identity on
    // these non-negative accumulations) and adjacent-field grouping the
    // compiler can SLP-pack, with -ffp-contract=off keeping the util
    // product out of an FMA.
    BreakdownSums s;
    for (const OpCostBreakdown &c : cells) {
        const bool use_util =
            c.bw_utilization > 0.0 && c.d2d_link_bytes > 0.0;
        s.wall += c.fwd_time + c.bwd_time;
        s.comp += c.comp_time;
        s.collective += c.collective_time;
        s.stream += c.stream_comm_time;
        s.exposed += c.exposed_comm;
        s.tail += c.tail_latency;
        s.flops += c.flops;
        s.dram += c.dram_bytes;
        s.d2d += c.d2d_link_bytes;
        s.util_acc +=
            use_util ? c.bw_utilization * c.d2d_link_bytes : 0.0;
        s.util_weight += use_util ? c.d2d_link_bytes : 0.0;
    }
    return s;
}

BreakdownSums
reduceBreakdowns(std::span<const OpCostBreakdown> cells)
{
    return kernels::simdActive() ? reduceBreakdownsSimd(cells)
                                 : reduceBreakdownsScalar(cells);
}

TEMP_NO_AUTOVEC void
breakdownTotalsScalar(std::span<const OpCostBreakdown> cells, double *out)
{
    const double inf = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < cells.size(); ++k)
        out[k] = cells[k].feasible ? cells[k].total() : inf;
}

void
breakdownTotalsSimd(std::span<const OpCostBreakdown> cells, double *out)
{
    // Independent per-cell expressions; total() keeps its association
    // ((fwd + bwd) + step_comm).
    const double inf = std::numeric_limits<double>::infinity();
    const OpCostBreakdown *c = cells.data();
    const std::size_t n = cells.size();
    TEMP_PRAGMA_SIMD
    for (std::size_t k = 0; k < n; ++k) {
        const double total =
            (c[k].fwd_time + c[k].bwd_time) + c[k].step_comm_time;
        out[k] = c[k].feasible ? total : inf;
    }
}

void
breakdownTotals(std::span<const OpCostBreakdown> cells, double *out)
{
    return kernels::simdActive() ? breakdownTotalsSimd(cells, out)
                                 : breakdownTotalsScalar(cells, out);
}

}  // namespace temp::cost
