/**
 * @file
 * The wafer-centric cost model (Sec. VII-A).
 *
 * Implements the paper's Eq. (2)-(4):
 *   T_intra(Op)  = Collective(Op) + max(Comp(Op), P2P(Op))
 *   T_inter(a,b) = P2P(a, b)                 (resharding transfers)
 *   T_total      = sum T_intra + sum T_inter
 *
 * Collective times come from lowering the partitioner's tasks onto the
 * fabric (all groups concurrently, so cross-group and cross-axis
 * contention is captured) and evaluating them under the link-level
 * contention model; the TATP stream is the overlappable P2P term.
 */
#pragma once

#include <algorithm>
#include <memory>

#include "cost/compute_model.hpp"
#include "cost/power_model.hpp"
#include "hw/wafer.hpp"
#include "model/graph.hpp"
#include "net/collective.hpp"
#include "net/schedule_cache.hpp"
#include "parallel/partitioner.hpp"
#include "tatp/chain_mapper.hpp"
#include "tatp/executor.hpp"
#include "tcme/mapping_policy.hpp"
#include "tcme/optimizer.hpp"

namespace temp::cost {

/// Full timing/energy breakdown for one operator instance.
struct OpCostBreakdown
{
    bool feasible = true;  ///< false when faults partition a route

    double fwd_time = 0.0;        ///< forward wall time
    double bwd_time = 0.0;        ///< backward wall time
    double step_comm_time = 0.0;  ///< exposed share of grad-sync comm

    double comp_time = 0.0;        ///< pure compute, fwd+bwd
    double collective_time = 0.0;  ///< blocking collectives, fwd+bwd
    double stream_comm_time = 0.0; ///< TATP per-round comm (overlappable)
    double exposed_comm = 0.0;     ///< communication not hidden
    double tail_latency = 0.0;     ///< multi-hop stream penalty

    double d2d_link_bytes = 0.0;  ///< fabric occupancy (energy)
    double dram_bytes = 0.0;      ///< per-wafer DRAM traffic
    double flops = 0.0;           ///< per-wafer executed FLOPs
    double bw_utilization = 0.0;  ///< during communication phases

    /**
     * Schedule-cache accounting of computing this breakdown: collective
     * lowerings performed vs. served from the shared ScheduleCache.
     * Mirrors matrix_measurements/step_sims honesty one layer down.
     * Note: the lowerings/hits *split* depends on what other threads
     * populated first, so it is not bit-stable across thread counts —
     * only the sum is. Never compare these fields for determinism.
     */
    long schedule_lowerings = 0;
    long schedule_cache_hits = 0;

    /// Wall time of the operator in one training step.
    double total() const { return fwd_time + bwd_time + step_comm_time; }
};

/// The cost model: (operator, layout) -> OpCostBreakdown.
class WaferCostModel
{
  public:
    /**
     * @param wafer Physical substrate (faults included).
     * @param policy Mapping engine behaviour (axis order, optimizer).
     * @param options Training recipe.
     */
    WaferCostModel(const hw::Wafer &wafer, tcme::MappingPolicy policy,
                   parallel::TrainingOptions options =
                       parallel::TrainingOptions());

    /// Unregisters the fault-epoch listener (see constructor).
    ~WaferCostModel();

    WaferCostModel(const WaferCostModel &) = delete;
    WaferCostModel &operator=(const WaferCostModel &) = delete;

    /// Analyses and costs one operator under the layout's spec.
    /// @param include_step When false, per-step gradient-sync
    ///        collectives are left out (the simulator merges them
    ///        across the whole layer and times them jointly).
    OpCostBreakdown opCost(const model::Operator &op,
                           const parallel::GroupLayout &layout,
                           bool include_step = true) const;

    /// Costs an already-analysed execution (avoids re-partitioning).
    OpCostBreakdown opCost(const parallel::OpExecution &exec,
                           const model::Operator &op,
                           const parallel::GroupLayout &layout,
                           bool include_step = true) const;

    /**
     * Lowers a set of collective tasks (all groups concurrently),
     * applies the policy's traffic optimisation, and times the result
     * under link-level contention. Lowerings are served from the shared
     * ScheduleCache (content-keyed, fault-epoch invalidated).
     *
     * @param link_bytes Optional accumulator of bytes x hops (energy).
     * @param sched_stats Optional accumulator of this call's cache
     *        lookups (lowerings vs. hits).
     */
    net::PhaseTiming timeCollectiveTasks(
        const std::vector<net::CollectiveTask> &tasks,
        double *link_bytes = nullptr,
        net::ScheduleCacheStats *sched_stats = nullptr) const;

    /// Eq. (3): inter-operator resharding time between adjacent ops.
    double interOpTime(const model::Operator &producer,
                       const parallel::ParallelSpec &from,
                       const parallel::ParallelSpec &to) const;

    /**
     * Estimates per-axis communication volumes for a whole graph under a
     * spec (drives GMap/TCME axis ordering) without building layouts.
     */
    tcme::AxisVolumes estimateAxisVolumes(
        const model::ComputeGraph &graph,
        const parallel::ParallelSpec &spec) const;

    /// Builds the layout for a spec per the mapping policy.
    parallel::GroupLayout buildLayout(const model::ComputeGraph &graph,
                                      const parallel::ParallelSpec &spec)
        const;

    const hw::Wafer &wafer() const { return wafer_; }
    const parallel::Partitioner &partitioner() const { return partitioner_; }
    const ComputeModel &computeModel() const { return compute_; }
    const PowerModel &powerModel() const { return power_; }
    const net::Router &router() const { return router_; }
    const tcme::MappingPolicy &policy() const { return policy_; }

    /**
     * The shared collective-schedule cache: one per cost model, and the
     * framework owns one cost model, so the DP matrix fill, refiner
     * fitness simulations, surrogate sampling and baselines all hit the
     * same lowered schedules.
     */
    const net::ScheduleCache &scheduleCache() const
    {
        return schedule_cache_;
    }

    /// Cumulative schedule-cache counters since construction.
    net::ScheduleCacheStats scheduleStats() const
    {
        return schedule_cache_.stats();
    }

    /**
     * Applies the network-layer entry budgets (schedule cache and
     * route pool; 0 = unbounded). Const for the same reason the
     * caches are mutable: governance does not change what a cost
     * query computes, only what stays resident.
     */
    void setCacheBudgets(const common::CacheBudget &budget) const
    {
        // Negative budgets clamp to 0 (unbounded): a size_t wrap
        // would silently produce a never-evicting "bounded" cache
        // that still pays the exclusive-lock hit path.
        schedule_cache_.setMaxEntries(static_cast<std::size_t>(
            std::max(0L, budget.max_schedule_entries)));
        schedule_cache_.setMaxBytes(
            std::max(0L, budget.max_schedule_bytes));
        router_.setPoolBudget(static_cast<std::size_t>(
            std::max(0L, budget.max_route_entries)));
        router_.setPoolMaxBytes(std::max(0L, budget.max_route_bytes));
    }

    /**
     * Re-lowers persisted task signatures into the schedule cache
     * under the *current* fault epoch — the warm-start import. A
     * snapshot never carries lowered routes (they bake the fault
     * state in), so import-by-replay is correct under any fault
     * state; replays count as lowerings, honestly. Const for the same
     * reason the cache is mutable.
     */
    void prewarmSchedules(
        const std::vector<net::CollectiveTask> &tasks) const
    {
        for (const net::CollectiveTask &task : tasks)
            schedule_cache_.lowered(task, wafer_.faultEpoch());
    }

    /// Content signatures of every resident schedule (persist export).
    std::vector<net::CollectiveTask> exportScheduleTasks() const
    {
        return schedule_cache_.exportTasks();
    }

    /// Governance counters of the shared schedule cache.
    common::CacheStats scheduleCacheStats() const
    {
        return schedule_cache_.cacheStats();
    }

    /// Governance counters of the router's route pool.
    common::CacheStats routePoolStats() const
    {
        return router_.poolStats();
    }

    /// Fraction of grad-sync communication hidden behind backward
    /// compute (bucketed overlap, as Megatron/FSDP implement).
    static constexpr double kGradSyncOverlap = 0.5;

  private:
    /// Times the TATP stream of an execution (all groups concurrently).
    void timeStream(const parallel::OpExecution &exec,
                    const parallel::GroupLayout &layout,
                    OpCostBreakdown &out) const;

    const hw::Wafer &wafer_;
    tcme::MappingPolicy policy_;
    parallel::Partitioner partitioner_;
    ComputeModel compute_;
    PowerModel power_;
    net::Router router_;
    net::CollectiveScheduler scheduler_;
    /// Thread-safe; mutable because opCost() is const but memoizes.
    mutable net::ScheduleCache schedule_cache_;
    net::ContentionModel contention_;
    tatp::ChainMapper chain_mapper_;
    tatp::TatpExecutor tatp_executor_;
    tcme::TrafficOptimizer optimizer_;
    /// Registration id of the wafer epoch listener that eagerly
    /// flushes the schedule cache and route pool on setFaults().
    std::uint64_t epoch_listener_id_ = 0;
};

}  // namespace temp::cost
