#include "cost/compute_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace temp::cost {

ComputeModel::ComputeModel(const hw::DieConfig &die, const hw::HbmConfig &hbm)
    : die_(die), hbm_(hbm)
{
}

double
ComputeModel::gemmEfficiency(double flops) const
{
    if (flops <= 0.0)
        return kMaxGemmEfficiency;
    const double ramp = std::sqrt(flops / kSaturatingFlops);
    return std::clamp(kMinGemmEfficiency +
                          (kMaxGemmEfficiency - kMinGemmEfficiency) * ramp,
                      kMinGemmEfficiency, kMaxGemmEfficiency);
}

double
ComputeModel::opTime(double flops, double dram_bytes, bool is_gemm,
                     double derate) const
{
    if (flops <= 0.0 && dram_bytes <= 0.0)
        return 0.0;
    if (derate <= 0.0)
        panic("ComputeModel::opTime: die fully deratered");

    const double efficiency =
        is_gemm ? gemmEfficiency(flops) : kVectorEfficiency;
    const double compute_time =
        flops / (die_.peak_flops * efficiency * derate);
    const double memory_time = hbm_.accessTime(
        dram_bytes,
        is_gemm ? mem::AccessPattern::Strided : mem::AccessPattern::Sequential);
    return std::max(compute_time, memory_time);
}

}  // namespace temp::cost
