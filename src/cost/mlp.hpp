/**
 * @file
 * A small from-scratch multi-layer perceptron with Adam training, used
 * as the DNN-based cost model of Sec. VII-A / Fig. 21. No external ML
 * dependency: dense layers, ReLU activations, MSE loss.
 */
#pragma once

#include <vector>

#include "common/rng.hpp"

namespace temp::cost {

/// Dense feed-forward network: sizes = {in, hidden..., out}.
class Mlp
{
  public:
    /**
     * @param layer_sizes Layer widths, at least {in, out}.
     * @param rng Weight initialisation source (He init).
     */
    Mlp(std::vector<int> layer_sizes, Rng &rng);

    /// Forward pass; returns the output layer activations.
    std::vector<double> forward(const std::vector<double> &input) const;

    /// Single-output convenience wrapper.
    double predictScalar(const std::vector<double> &input) const
    {
        return forward(input)[0];
    }

    /**
     * Trains with full-batch Adam on MSE.
     *
     * @param inputs Feature rows.
     * @param targets Scalar targets (single-output network).
     * @param epochs Gradient steps.
     * @param lr Adam learning rate.
     * @return Final training MSE.
     */
    double train(const std::vector<std::vector<double>> &inputs,
                 const std::vector<double> &targets, int epochs = 2000,
                 double lr = 1e-2);

    int inputSize() const { return sizes_.front(); }
    int outputSize() const { return sizes_.back(); }

  private:
    struct Layer
    {
        int in = 0;
        int out = 0;
        std::vector<double> w;  ///< out x in, row-major
        std::vector<double> b;
        /// @{ Adam state
        std::vector<double> mw, vw, mb, vb;
        /// @}
    };

    /// Forward keeping intermediate activations for backprop.
    void forwardCached(const std::vector<double> &input,
                       std::vector<std::vector<double>> &acts,
                       std::vector<std::vector<double>> &pre) const;

    std::vector<int> sizes_;
    std::vector<Layer> layers_;
};

}  // namespace temp::cost
