/**
 * @file
 * Learned cost-model surrogates and their fidelity evaluation (Sec.
 * VII-A "DNN-based cost model", validated in Sec. VIII-G / Fig. 21).
 *
 * A dataset of (configuration features -> simulated latency) samples is
 * generated from the analytic wafer simulator for three target classes:
 * single-operator computation, collective/P2P communication, and
 * computation/communication overlap (the TATP stream). A small MLP is
 * trained per class (on log-latency, features z-scored); a multivariate
 * linear regression on the raw values is the paper's baseline.
 */
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "cost/cost_model.hpp"
#include "cost/mlp.hpp"

namespace temp::cost {

/// Which latency class a surrogate predicts (Fig. 21 a/b/c).
enum class CostTargetKind
{
    Computation,
    Communication,
    Overlap,
};

/// Returns the printable target-class name.
const char *costTargetName(CostTargetKind kind);

/// One training/evaluation sample.
struct CostSample
{
    std::vector<double> features;
    double latency_s = 0.0;
};

/// Surrogate fidelity metrics (the numbers Fig. 21 reports).
struct FidelityReport
{
    double correlation = 0.0;  ///< Pearson r between predicted/measured
    double mape = 0.0;         ///< mean absolute percentage error
};

/**
 * Generates surrogate datasets by sampling random operator/collective
 * configurations (batch size, sequence length, hidden size, group size —
 * the parameters Sec. VIII-G varies) and querying the analytic models.
 */
class CostDatasetGenerator
{
  public:
    explicit CostDatasetGenerator(const hw::Wafer &wafer);

    /// Generates `count` samples of the given class.
    std::vector<CostSample> generate(CostTargetKind kind, int count,
                                     Rng &rng) const;

  private:
    CostSample computationSample(Rng &rng) const;
    CostSample communicationSample(Rng &rng) const;
    CostSample overlapSample(Rng &rng) const;

    const hw::Wafer &wafer_;
    ComputeModel compute_;
    net::Router router_;
    net::CollectiveScheduler scheduler_;
    net::ContentionModel contention_;
    tatp::ChainMapper chain_mapper_;
    tatp::TatpExecutor tatp_executor_;
};

/// Common interface of the learned predictors.
class CostPredictor
{
  public:
    virtual ~CostPredictor() = default;

    /// Fits the predictor on the given samples.
    virtual void fit(const std::vector<CostSample> &samples) = 0;

    /// Predicted latency for a feature vector.
    virtual double predict(const std::vector<double> &features) const = 0;
};

/// The paper's DNN cost model: MLP on z-scored features, log target.
class DnnCostModel : public CostPredictor
{
  public:
    explicit DnnCostModel(std::uint64_t seed = 7);

    void fit(const std::vector<CostSample> &samples) override;
    double predict(const std::vector<double> &features) const override;

    /// Training epochs (exposed for tests to shorten).
    int epochs = 1500;

  private:
    std::vector<double> normalize(const std::vector<double> &features) const;

    Rng rng_;
    std::unique_ptr<Mlp> mlp_;
    std::vector<double> mean_;
    std::vector<double> std_;
};

/// The baseline: multivariate linear regression on raw features.
class LinearCostModel : public CostPredictor
{
  public:
    void fit(const std::vector<CostSample> &samples) override;
    double predict(const std::vector<double> &features) const override;

  private:
    std::vector<double> weights_;
};

/// Evaluates a fitted predictor on held-out samples.
FidelityReport evaluatePredictor(const CostPredictor &predictor,
                                 const std::vector<CostSample> &samples);

}  // namespace temp::cost
