#include "cost/power_model.hpp"

namespace temp::cost {

EnergyBreakdown
PowerModel::stepEnergy(double total_flops, double dram_bytes,
                       double d2d_link_bytes, double busy_time_s,
                       int active_dies) const
{
    EnergyBreakdown energy;
    energy.compute_j = total_flops * config_.die.joulesPerFlop();
    energy.dram_j = dram_bytes * config_.hbm.joulesPerByte();
    energy.d2d_j = d2d_link_bytes * config_.d2d.joulesPerByte();
    if (busy_time_s > 0.0 && active_dies > 0)
        energy.static_j =
            staticPowerPerDie() * active_dies * busy_time_s;
    return energy;
}

}  // namespace temp::cost
