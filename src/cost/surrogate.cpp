#include "cost/surrogate.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/stats.hpp"
#include "parallel/layout.hpp"

namespace temp::cost {

const char *
costTargetName(CostTargetKind kind)
{
    switch (kind) {
      case CostTargetKind::Computation: return "computation";
      case CostTargetKind::Communication: return "communication";
      case CostTargetKind::Overlap: return "overlap";
    }
    return "?";
}

CostDatasetGenerator::CostDatasetGenerator(const hw::Wafer &wafer)
    : wafer_(wafer),
      compute_(wafer.config().die, wafer.config().hbm),
      router_(wafer.topology()),
      scheduler_(router_),
      contention_(wafer.topology(),
                  wafer.config().d2d.bandwidth_bytes_per_s,
                  wafer.config().d2d.latency_s),
      chain_mapper_(wafer.topology()),
      tatp_executor_(wafer.config().d2d)
{
}

CostSample
CostDatasetGenerator::computationSample(Rng &rng) const
{
    // Random operator shapes over the Sec. VIII-G sweep ranges: batch,
    // sequence, hidden, plus GEMM/vector kind (GEMM, GEMV, softmax,
    // SiLU in the paper).
    const double b = std::pow(2.0, rng.uniformInt(0, 7));
    const double m = std::pow(2.0, rng.uniformInt(7, 14));
    const double n = std::pow(2.0, rng.uniformInt(9, 14));
    const bool is_gemm = rng.bernoulli(0.5);
    const double k = is_gemm ? std::pow(2.0, rng.uniformInt(9, 14)) : n;

    const double flops = is_gemm ? 2.0 * b * m * n * k : 6.0 * b * m * n;
    const double bytes = (b * m * n + (is_gemm ? n * k + b * m * k : 0.0)) *
                         kBytesFp16;

    CostSample sample;
    sample.features = {std::log2(b),  std::log2(m),
                       std::log2(n),  std::log2(k),
                       is_gemm ? 1.0 : 0.0, std::log2(flops),
                       std::log2(bytes)};
    sample.latency_s = compute_.opTime(flops, bytes, is_gemm);
    return sample;
}

CostSample
CostDatasetGenerator::communicationSample(Rng &rng) const
{
    // Random collective over a contiguous group (All-Reduce,
    // Reduce-Scatter, All-Gather, P2P — the Sec. VIII-G operator set).
    const int kind_idx = rng.uniformInt(0, 3);
    const net::CollectiveKind kinds[] = {
        net::CollectiveKind::AllReduce, net::CollectiveKind::ReduceScatter,
        net::CollectiveKind::AllGather, net::CollectiveKind::P2P};
    const net::CollectiveKind kind = kinds[kind_idx];

    const int max_group = wafer_.dieCount();
    int group_size =
        kind == net::CollectiveKind::P2P
            ? 2
            : std::min(max_group, 1 << rng.uniformInt(1, 5));
    const double bytes = std::pow(2.0, rng.uniformReal(18.0, 30.0));

    const auto snake =
        parallel::GroupLayout::snakeOrder(wafer_.topology());
    const int start = rng.uniformInt(0, max_group - group_size);
    std::vector<hw::DieId> group(snake.begin() + start,
                                 snake.begin() + start + group_size);

    net::CollectiveTask task;
    task.kind = kind;
    task.group = group;
    task.bytes = bytes;
    const net::CommSchedule sched = scheduler_.schedule(task);
    const double latency = contention_.evaluateSequence(sched).time_s;

    CostSample sample;
    const double n = group_size;
    // Ring-collective structure features: volume factor, round count,
    // per-kind one-hots, and interactions.
    const double volume_factor =
        kind == net::CollectiveKind::AllReduce ? 2.0 * (n - 1.0) / n
        : kind == net::CollectiveKind::P2P     ? 1.0
                                               : (n - 1.0) / n;
    sample.features = {
        static_cast<double>(kind_idx),
        n,
        std::log2(n),
        std::log2(bytes),
        std::log2(bytes * volume_factor),
        std::log2(n) * std::log2(bytes),
        kind == net::CollectiveKind::AllReduce ? 1.0 : 0.0,
        kind == net::CollectiveKind::P2P ? 1.0 : 0.0,
    };
    sample.latency_s = std::max(latency, 1e-9);
    return sample;
}

CostSample
CostDatasetGenerator::overlapSample(Rng &rng) const
{
    // GEMM overlapped with the TATP stream (the paper's overlap case).
    const int degree = 1 << rng.uniformInt(1, 5);
    const double b = std::pow(2.0, rng.uniformInt(0, 6));
    const double m = std::pow(2.0, rng.uniformInt(8, 13));
    const double n = std::pow(2.0, rng.uniformInt(10, 14));
    const double k = std::pow(2.0, rng.uniformInt(10, 14));

    const double total_flops = 2.0 * b * m * n * k;
    const double flops_per_round =
        total_flops / (static_cast<double>(degree) * degree);
    const double stream_bytes = n * k * kBytesFp16 / degree;

    parallel::ParallelSpec spec;
    spec.tatp = degree;
    parallel::GroupLayout layout(wafer_.topology(), spec);
    const tatp::ChainInfo chain =
        chain_mapper_.analyzeChain(layout.groups(parallel::Axis::TATP)[0]);

    const double rate = wafer_.config().die.peak_flops *
                        compute_.gemmEfficiency(flops_per_round);
    const tatp::TatpTiming timing = tatp_executor_.timePass(
        flops_per_round, stream_bytes, degree, chain, rate);

    CostSample sample;
    sample.features = {static_cast<double>(degree), std::log2(b),
                       std::log2(m), std::log2(n), std::log2(k),
                       std::log2(stream_bytes),
                       std::log2(flops_per_round)};
    sample.latency_s = std::max(timing.time_s, 1e-9);
    return sample;
}

std::vector<CostSample>
CostDatasetGenerator::generate(CostTargetKind kind, int count, Rng &rng)
    const
{
    std::vector<CostSample> samples;
    samples.reserve(count);
    for (int i = 0; i < count; ++i) {
        switch (kind) {
          case CostTargetKind::Computation:
            samples.push_back(computationSample(rng));
            break;
          case CostTargetKind::Communication:
            samples.push_back(communicationSample(rng));
            break;
          case CostTargetKind::Overlap:
            samples.push_back(overlapSample(rng));
            break;
        }
    }
    return samples;
}

DnnCostModel::DnnCostModel(std::uint64_t seed) : rng_(seed) {}

std::vector<double>
DnnCostModel::normalize(const std::vector<double> &features) const
{
    std::vector<double> out(features.size());
    for (std::size_t i = 0; i < features.size(); ++i)
        out[i] = (features[i] - mean_[i]) / std_[i];
    return out;
}

void
DnnCostModel::fit(const std::vector<CostSample> &samples)
{
    if (samples.empty())
        fatal("DnnCostModel::fit: empty dataset");
    const std::size_t dims = samples[0].features.size();

    mean_.assign(dims, 0.0);
    std_.assign(dims, 0.0);
    for (const CostSample &s : samples)
        for (std::size_t i = 0; i < dims; ++i)
            mean_[i] += s.features[i];
    for (double &v : mean_)
        v /= static_cast<double>(samples.size());
    for (const CostSample &s : samples)
        for (std::size_t i = 0; i < dims; ++i)
            std_[i] += (s.features[i] - mean_[i]) *
                       (s.features[i] - mean_[i]);
    for (double &v : std_)
        v = std::max(1e-9, std::sqrt(v / samples.size()));

    std::vector<std::vector<double>> inputs;
    std::vector<double> targets;
    for (const CostSample &s : samples) {
        inputs.push_back(normalize(s.features));
        targets.push_back(std::log(std::max(s.latency_s, 1e-12)));
    }

    mlp_ = std::make_unique<Mlp>(
        std::vector<int>{static_cast<int>(dims), 32, 32, 1}, rng_);
    mlp_->train(inputs, targets, epochs, 5e-3);
}

double
DnnCostModel::predict(const std::vector<double> &features) const
{
    if (!mlp_)
        panic("DnnCostModel::predict before fit");
    return std::exp(mlp_->predictScalar(normalize(features)));
}

void
LinearCostModel::fit(const std::vector<CostSample> &samples)
{
    if (samples.empty())
        fatal("LinearCostModel::fit: empty dataset");
    // Multivariate regression in log space (latencies span orders of
    // magnitude; a raw-space linear fit is useless). This matches the
    // respectable-but-limited baseline of Sec. VIII-G.
    const std::size_t dims = samples[0].features.size();
    Matrix x(samples.size(), dims + 1);
    std::vector<double> y(samples.size());
    for (std::size_t r = 0; r < samples.size(); ++r) {
        x.at(r, 0) = 1.0;
        for (std::size_t c = 0; c < dims; ++c)
            x.at(r, c + 1) = samples[r].features[c];
        y[r] = std::log(std::max(samples[r].latency_s, 1e-12));
    }
    weights_ = leastSquares(x, y, 1e-9);
}

double
LinearCostModel::predict(const std::vector<double> &features) const
{
    if (weights_.empty())
        panic("LinearCostModel::predict before fit");
    double acc = weights_[0];
    for (std::size_t i = 0; i < features.size(); ++i)
        acc += weights_[i + 1] * features[i];
    return std::exp(acc);
}

FidelityReport
evaluatePredictor(const CostPredictor &predictor,
                  const std::vector<CostSample> &samples)
{
    std::vector<double> predicted, measured;
    for (const CostSample &s : samples) {
        predicted.push_back(predictor.predict(s.features));
        measured.push_back(s.latency_s);
    }
    FidelityReport report;
    report.correlation = pearsonCorrelation(predicted, measured);
    report.mape = meanAbsPercentError(predicted, measured);
    return report;
}

}  // namespace temp::cost
