/**
 * @file
 * Energy and power accounting (Sec. VII-A "power consumption
 * estimation"): total power is the sum of compute, memory and
 * communication contributions, each derived from operation counts times
 * per-operation energy (Table I ratings).
 */
#pragma once

#include "hw/config.hpp"

namespace temp::cost {

/// Energy totals by subsystem for one training step (whole wafer).
struct EnergyBreakdown
{
    double compute_j = 0.0;
    double dram_j = 0.0;
    double d2d_j = 0.0;
    /// Leakage/clock-tree energy: static power x step time.
    double static_j = 0.0;

    double total() const
    {
        return compute_j + dram_j + d2d_j + static_j;
    }

    EnergyBreakdown &operator+=(const EnergyBreakdown &other)
    {
        compute_j += other.compute_j;
        dram_j += other.dram_j;
        d2d_j += other.d2d_j;
        static_j += other.static_j;
        return *this;
    }

    EnergyBreakdown scaled(double factor) const
    {
        return EnergyBreakdown{compute_j * factor, dram_j * factor,
                               d2d_j * factor, static_j * factor};
    }
};

/// Converts activity counts into energy using the wafer's ratings.
class PowerModel
{
  public:
    explicit PowerModel(const hw::WaferConfig &config) : config_(config) {}

    /**
     * Energy of a step given total activity across the wafer.
     *
     * @param total_flops FLOPs executed (all dies).
     * @param dram_bytes Bytes moved over HBM interfaces (all dies).
     * @param d2d_link_bytes Bytes x hops crossing D2D links.
     */
    /// @param busy_time_s Step wall time; with active_dies > 0 the
    ///        dies' static (leakage/clock) power accrues over it.
    EnergyBreakdown stepEnergy(double total_flops, double dram_bytes,
                               double d2d_link_bytes,
                               double busy_time_s = 0.0,
                               int active_dies = 0) const;

    /// Static power per die: leakage and clock trees burn a fraction of
    /// the die's max power regardless of utilisation.
    double staticPowerPerDie() const
    {
        return kStaticPowerFraction * config_.die.peak_flops /
               config_.die.flops_per_watt;
    }

    static constexpr double kStaticPowerFraction = 0.15;

    /// Average power over a step of the given duration.
    double averagePower(const EnergyBreakdown &energy, double step_time_s)
        const
    {
        return step_time_s > 0.0 ? energy.total() / step_time_s : 0.0;
    }

    /**
     * Power efficiency metric of Fig. 14: useful training throughput per
     * watt (FLOPs per joule here; any monotone transform preserves the
     * comparison).
     */
    double powerEfficiency(double useful_flops,
                           const EnergyBreakdown &energy) const
    {
        return energy.total() > 0.0 ? useful_flops / energy.total() : 0.0;
    }

  private:
    hw::WaferConfig config_;
};

}  // namespace temp::cost
