#include "net/schedule_cache.hpp"

#include <bit>
#include <mutex>

namespace temp::net {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t
fnv1a(std::uint64_t hash, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        hash ^= (value >> (8 * i)) & 0xff;
        hash *= kFnvPrime;
    }
    return hash;
}

std::size_t
hashSignature(CollectiveKind kind, int tag, std::uint64_t bytes_bits,
              const std::vector<hw::DieId> &group)
{
    std::uint64_t hash = kFnvOffset;
    hash = fnv1a(hash, static_cast<std::uint64_t>(kind));
    hash = fnv1a(hash,
                 static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));
    hash = fnv1a(hash, bytes_bits);
    for (hw::DieId die : group)
        hash = fnv1a(hash, static_cast<std::uint64_t>(
                               static_cast<std::uint32_t>(die)));
    return static_cast<std::size_t>(hash);
}

}  // namespace

std::size_t
ScheduleCache::KeyHash::operator()(const Key &key) const
{
    return hashSignature(key.kind, key.tag, key.bytes_bits, key.group);
}

std::size_t
ScheduleCache::KeyHash::operator()(const KeyView &key) const
{
    return hashSignature(key.kind, key.tag, key.bytes_bits, *key.group);
}

bool
ScheduleCache::KeyEqual::operator()(const Key &a, const Key &b) const
{
    return a.kind == b.kind && a.tag == b.tag &&
           a.bytes_bits == b.bytes_bits && a.group == b.group;
}

bool
ScheduleCache::KeyEqual::operator()(const Key &a, const KeyView &b) const
{
    return a.kind == b.kind && a.tag == b.tag &&
           a.bytes_bits == b.bytes_bits && a.group == *b.group;
}

bool
ScheduleCache::KeyEqual::operator()(const KeyView &a, const Key &b) const
{
    return (*this)(b, a);
}

ScheduleCache::ScheduleCache(const CollectiveScheduler &scheduler)
    : scheduler_(scheduler)
{
    cache_.setByteEstimate(
        [](const Key &key, const std::shared_ptr<const CommSchedule> &s) {
            long bytes = static_cast<long>(
                sizeof(Key) + key.group.capacity() * sizeof(DieId));
            if (s != nullptr)
                bytes += static_cast<long>(
                    sizeof(CommSchedule) +
                    s->flowCount() * sizeof(Flow) +
                    s->soaByteEstimate());
            return bytes;
        });
}

std::shared_ptr<const CommSchedule>
ScheduleCache::lowered(const CollectiveTask &task, std::uint64_t fault_epoch,
                       bool *hit)
{
    const KeyView view{task.kind, task.tag,
                       std::bit_cast<std::uint64_t>(task.bytes),
                       &task.group};

    // Hit path. Unbounded: shared lock, non-owning probe, no
    // allocation, no recency maintenance. Bounded (by entries or
    // bytes): the same probe under the exclusive lock so the LRU
    // order stays truthful.
    if (max_entries_.load(std::memory_order_relaxed) == 0 &&
        max_bytes_.load(std::memory_order_relaxed) == 0) {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        if (epoch_ == fault_epoch) {
            if (const auto *cached = cache_.peek(view)) {
                ++hits_;
                if (hit != nullptr)
                    *hit = true;
                return *cached;
            }
        }
    } else {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        if (epoch_ == fault_epoch) {
            if (auto *cached = cache_.touch(view)) {
                ++hits_;
                if (hit != nullptr)
                    *hit = true;
                return *cached;
            }
        }
    }

    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (fault_epoch != epoch_) {
        // Fault state moved since these schedules were lowered; their
        // routes are stale. Flush wholesale.
        cache_.clear();
        epoch_ = fault_epoch;
    }
    if (auto *cached = cache_.touch(view)) {
        // Another thread lowered it between our two lock scopes.
        ++hits_;
        if (hit != nullptr)
            *hit = true;
        return *cached;
    }
    // Lower under the exclusive lock: duplicates across threads would
    // break the "lowered exactly once" accounting, and each unique task
    // misses once per epoch (or per eviction under a finite budget).
    // Cache entries are evaluated many times, so finalize the SoA view
    // once here.
    CommSchedule built = scheduler_.schedule(task);
    built.finalize();
    auto schedule =
        std::make_shared<const CommSchedule>(std::move(built));
    ++lowerings_;
    if (hit != nullptr)
        *hit = false;
    return *cache_
                .insert(Key{task.kind, task.tag,
                            std::bit_cast<std::uint64_t>(task.bytes),
                            task.group},
                        std::move(schedule))
                .first;
}

common::CacheStats
ScheduleCache::cacheStats() const
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    common::CacheStats stats;
    stats.entries = static_cast<long>(cache_.size());
    stats.bytes_est = cache_.bytesEstimate();
    stats.hits = hits_.load();
    stats.misses = lowerings_.load();
    stats.evictions = cache_.evictions();
    return stats;
}

void
ScheduleCache::setMaxEntries(std::size_t max_entries)
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    max_entries_.store(max_entries, std::memory_order_relaxed);
    cache_.setCapacity(max_entries);
}

void
ScheduleCache::setMaxBytes(long max_bytes)
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    max_bytes_.store(max_bytes > 0 ? max_bytes : 0,
                     std::memory_order_relaxed);
    cache_.setMaxBytes(max_bytes);
}

std::vector<CollectiveTask>
ScheduleCache::exportTasks() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    std::vector<CollectiveTask> tasks;
    tasks.reserve(cache_.size());
    cache_.forEachResident(
        [&](const Key &key,
            const std::shared_ptr<const CommSchedule> &) {
            tasks.push_back(
                CollectiveTask{key.kind, key.group,
                               std::bit_cast<double>(key.bytes_bits),
                               key.tag});
        });
    return tasks;
}

void
ScheduleCache::flushForEpoch(std::uint64_t fault_epoch)
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (fault_epoch == epoch_)
        return;
    cache_.clear();
    epoch_ = fault_epoch;
}

std::size_t
ScheduleCache::size() const
{
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return cache_.size();
}

void
ScheduleCache::clear()
{
    std::unique_lock<std::shared_mutex> lock(mutex_);
    cache_.clear();
}

}  // namespace temp::net
