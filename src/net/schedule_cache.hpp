/**
 * @file
 * Content-keyed cache of lowered collective schedules.
 *
 * Every (op, strategy) cost query lowers its collective tasks into
 * CommSchedules — ring rounds, pooled routes, payload accounting. The
 * same tasks recur millions of times across a DP matrix fill, refiner
 * fitness simulations and repeat solves, so the lowering is memoized
 * here on the task's content signature (kind, group, bytes, tag).
 *
 * Fault handling: entries are valid only for the fault epoch they were
 * lowered under (routes bake the fault state in). The cache stores the
 * epoch of its contents and flushes wholesale when a lookup arrives
 * with a newer epoch — one integer compare per lookup instead of
 * hashing the fault set. flushForEpoch() is the eager twin: the cost
 * model wires it to hw::Wafer's epoch listeners so a setFaults() drops
 * the dead epoch's entries immediately instead of holding them until
 * (unless) a next lookup arrives.
 *
 * Eviction: setMaxEntries() bounds the cache *within* the live epoch
 * (long-lived services sweep many task signatures through one epoch).
 * The store is an LRU; evicted tasks simply re-lower on return and
 * recount as lowerings, so results stay bit-identical under any
 * budget. Default 0 = unbounded, the historical behaviour.
 *
 * Cached schedules are shared immutable snapshots: consumers that
 * mutate (the traffic optimizer rewrites routes in place) must copy
 * first. Flow copies are cheap — routes are pooled RouteRefs.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>

#include "common/bounded_cache.hpp"
#include "net/collective.hpp"

namespace temp::net {

/// Cumulative cache counters. `lowerings + hits` equals the lookups
/// issued; a task is lowered exactly once per fault epoch (eviction
/// under a finite budget honestly recounts a re-lowering).
struct ScheduleCacheStats
{
    long lowerings = 0;  ///< unique schedules lowered (cache misses)
    long hits = 0;       ///< lookups served from the cache

    ScheduleCacheStats operator-(const ScheduleCacheStats &other) const
    {
        return {lowerings - other.lowerings, hits - other.hits};
    }

    /// Hit fraction of all lookups (0 when none were issued).
    double hitRate() const
    {
        const long total = lowerings + hits;
        return total > 0 ? static_cast<double>(hits) /
                               static_cast<double>(total)
                         : 0.0;
    }
};

/// Thread-safe memo of CollectiveTask -> lowered CommSchedule.
class ScheduleCache
{
  public:
    explicit ScheduleCache(const CollectiveScheduler &scheduler);

    /**
     * Returns the (possibly cached) lowering of a task under the given
     * fault epoch. Unbounded hits take the lock shared and allocate
     * nothing (the task is probed through a non-owning key view;
     * bounded hits take it exclusive to refresh LRU order); misses
     * lower under the exclusive lock, so a task is lowered exactly
     * once regardless of thread count and the counters stay
     * deterministic.
     *
     * @param hit Optional out-flag: true when served from the cache.
     */
    std::shared_ptr<const CommSchedule> lowered(const CollectiveTask &task,
                                                std::uint64_t fault_epoch,
                                                bool *hit = nullptr);

    /**
     * Cumulative counters since construction (survive epoch flushes
     * and evictions). Snapshotted under the exclusive lock so the two
     * counters are mutually consistent — two independent atomic loads
     * could tear against a concurrent lookup (hits visible without its
     * sibling lowering), making interval deltas transiently dishonest.
     */
    ScheduleCacheStats stats() const
    {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        return {lowerings_.load(), hits_.load()};
    }

    /// Governance counters (entries/bytes gauges, hit/miss/eviction
    /// totals) for CacheStatsRequest reporting.
    common::CacheStats cacheStats() const;

    /// Entry budget within the live epoch (0 = unbounded).
    void setMaxEntries(std::size_t max_entries);

    /// Byte budget within the live epoch (0 = unbounded), over the
    /// honest per-entry estimate (key group + arena + SoA view).
    void setMaxBytes(long max_bytes);

    /**
     * Reconstructs the content signature of every resident schedule —
     * the persist layer's export hook. Signatures only: lowered
     * schedules bake the fault state into their routes, so snapshots
     * re-lower ("replay") tasks at import under the live epoch instead
     * of ever persisting routes.
     */
    std::vector<CollectiveTask> exportTasks() const;

    /**
     * Eagerly drops all entries when `fault_epoch` differs from the
     * contents' epoch (no-op otherwise). Wired to the wafer's epoch
     * listeners so fault-injection sweeps don't retain a dead epoch's
     * schedules between lookups.
     */
    void flushForEpoch(std::uint64_t fault_epoch);

    /// Entries currently cached (current epoch only).
    std::size_t size() const;

    /// Drops all entries (counters are kept).
    void clear();

    const CollectiveScheduler &scheduler() const { return scheduler_; }

  private:
    /// Owning map key: the task signature with its own group copy
    /// (materialized on the miss path only).
    struct Key
    {
        CollectiveKind kind;
        int tag;
        std::uint64_t bytes_bits;  ///< bit pattern of the double
        std::vector<DieId> group;
    };

    /// Non-owning probe key so the hit path never copies the group.
    struct KeyView
    {
        CollectiveKind kind;
        int tag;
        std::uint64_t bytes_bits;
        const std::vector<DieId> *group;
    };

    struct KeyHash
    {
        using is_transparent = void;
        std::size_t operator()(const Key &key) const;
        std::size_t operator()(const KeyView &key) const;
    };

    struct KeyEqual
    {
        using is_transparent = void;
        bool operator()(const Key &a, const Key &b) const;
        bool operator()(const Key &a, const KeyView &b) const;
        bool operator()(const KeyView &a, const Key &b) const;
    };

    const CollectiveScheduler &scheduler_;
    /// Unbounded hits read-lock; bounded hits, misses, budget changes
    /// and epoch flushes write-lock.
    mutable std::shared_mutex mutex_;
    std::uint64_t epoch_ = 0;
    /// Mirrors of the LruMap budgets, readable without the lock (the
    /// hit path branches on boundedness before locking).
    std::atomic<std::size_t> max_entries_{0};
    std::atomic<long> max_bytes_{0};
    common::LruMap<Key, std::shared_ptr<const CommSchedule>, KeyHash,
                   KeyEqual>
        cache_;
    std::atomic<long> lowerings_{0};
    std::atomic<long> hits_{0};
};

}  // namespace temp::net
