/**
 * @file
 * Routes and routing policies on the wafer mesh.
 *
 * The mesh offers little path diversity (Challenge 2, Sec. III-B); the
 * router exposes exactly the choices the traffic-conscious optimizer can
 * exploit: dimension-ordered XY and YX routes, plus single-waypoint
 * detours, all optionally avoiding failed links.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "common/bounded_cache.hpp"
#include "hw/fault.hpp"
#include "hw/topology.hpp"

namespace temp::net {

using hw::DieId;
using hw::LinkId;

/// An ordered sequence of directed links from src to dst.
struct Route
{
    DieId src = -1;
    DieId dst = -1;
    std::vector<LinkId> links;

    /// Number of link traversals.
    int hops() const { return static_cast<int>(links.size()); }

    bool empty() const { return links.empty(); }
};

/**
 * A shared handle to an immutable, pooled Route.
 *
 * Flows reference routes through this instead of owning a Route copy,
 * so copying a flow (schedule-cache reuse, overlay combination) costs a
 * reference count instead of a LinkId-vector allocation. A
 * default-constructed ref reads as an empty route (no links), the state
 * of an infeasible transfer.
 */
class RouteRef
{
  public:
    RouteRef() = default;
    RouteRef(std::shared_ptr<const Route> route) : route_(std::move(route))
    {
    }
    /// Pools a one-off route value (ad-hoc flows, tests).
    RouteRef(Route route)
        : route_(std::make_shared<const Route>(std::move(route)))
    {
    }

    /// True when a route is attached (even a trivial src==dst one).
    bool valid() const { return route_ != nullptr; }

    const Route &get() const;
    const Route &operator*() const { return get(); }
    const Route *operator->() const { return &get(); }

    int hops() const { return route_ ? route_->hops() : 0; }
    bool empty() const { return route_ == nullptr || route_->empty(); }
    const std::vector<LinkId> &links() const { return get().links; }

    /// Content equality of the underlying link sequences.
    bool sameLinks(const RouteRef &other) const
    {
        return route_ == other.route_ || links() == other.links();
    }

    /**
     * Number of RouteRefs sharing the underlying route (0 for an
     * invalid ref). The router's pool eviction uses this as its pin
     * check: a pooled route with a share count above the pool's own
     * reference is held by live flows and must not be dropped.
     */
    long shareCount() const
    {
        return route_ ? static_cast<long>(route_.use_count()) : 0;
    }

  private:
    std::shared_ptr<const Route> route_;
};

/// Dimension order used for deterministic mesh routing.
enum class RoutePolicy
{
    XY,  ///< traverse columns first, then rows
    YX,  ///< traverse rows first, then columns
};

/**
 * Computes routes on a mesh topology, optionally honouring a fault map.
 *
 * The router never fabricates links: every produced route uses only links
 * present (and usable) in the topology.
 */
class Router
{
  public:
    /// @param faults Optional fault map; failed links are avoided by
    ///        shortestPath() and reported unusable by routeUsable().
    explicit Router(const hw::MeshTopology &topo,
                    const hw::FaultMap *faults = nullptr);

    /// Dimension-ordered route; always exists on a healthy mesh.
    Route route(DieId src, DieId dst, RoutePolicy policy = RoutePolicy::XY)
        const;

    /// Route through an intermediate waypoint (detour for rerouting).
    Route routeVia(DieId src, DieId waypoint, DieId dst,
                   RoutePolicy first = RoutePolicy::XY,
                   RoutePolicy second = RoutePolicy::XY) const;

    /**
     * BFS shortest path avoiding failed links; empty optional when the
     * destination is unreachable (fabric partitioned by faults).
     */
    std::optional<Route> shortestPath(DieId src, DieId dst) const;

    /**
     * Dimension-ordered route with automatic fault fallback: returns the
     * XY/YX route when usable, otherwise the BFS detour, otherwise an
     * empty optional (fabric partitioned — the caller must treat the
     * transfer as infeasible).
     */
    std::optional<Route> safeRoute(DieId src, DieId dst,
                                   RoutePolicy policy = RoutePolicy::XY)
        const;

    /**
     * Memoized, pooled safeRoute(): the hot path of collective
     * lowering. Returns an invalid (empty) ref when the destination is
     * unreachable. Entries invalidate when the fault map's revision
     * changes; thread-safe.
     */
    RouteRef safeRouteRef(DieId src, DieId dst,
                          RoutePolicy policy = RoutePolicy::XY) const;

    /// Pooled single-link route (broadcast trees, multicast branches).
    /// Link routes are topology-only, so they never invalidate.
    RouteRef linkRoute(LinkId link) const;

    /**
     * Candidate routes for the traffic optimizer: XY, YX and one-bend
     * detours through neighbours of the source. Deduplicated; all usable
     * under the fault map.
     */
    std::vector<Route> candidateRoutes(DieId src, DieId dst) const;

    /// Memoized, pooled candidateRoutes() (same fault-revision
    /// invalidation contract as safeRouteRef). The returned vector is
    /// shared and immutable.
    std::shared_ptr<const std::vector<RouteRef>> candidateRouteRefs(
        DieId src, DieId dst) const;

    /// True if every link on the route is usable under the fault map.
    bool routeUsable(const Route &route) const;

    const hw::MeshTopology &topology() const { return topo_; }

    /// Current fault revision this router observes (0 when fault-free).
    std::uint64_t faultRevision() const
    {
        return faults_ != nullptr ? faults_->revision() : 0;
    }

    /**
     * Entry budget for each of the safe-route and candidate pools
     * (0 = unbounded). Eviction is LRU but refcount-aware: a route
     * (or candidate list) still referenced outside the pool — live
     * flows in cached schedules, callers iterating candidates — is
     * pinned and never dropped; consumers always keep their shared
     * handles alive regardless. The per-link pool is topology-sized
     * and stays unbudgeted.
     */
    void setPoolBudget(std::size_t max_entries) const;

    /// Byte budget for each pool (0 = unbounded), over the pools'
    /// honest route-footprint estimates; composes with the entry
    /// budget and the same refcount-aware pinning applies.
    void setPoolMaxBytes(long max_bytes) const;

    /**
     * Eagerly drops every pooled route computed under a superseded
     * fault revision (no-op when the pool is current). Without this,
     * the pool retains a dead epoch's routes until (unless) a next
     * pooled lookup arrives — wired to the wafer's epoch listeners by
     * the cost model so fault-injection sweeps don't accumulate them.
     */
    void dropStaleRoutes() const;

    /// Governance counters of the route pool (safe + candidate pools
    /// combined; hits/misses cover the pooled lookups).
    common::CacheStats poolStats() const;

  private:
    bool linkUsable(LinkId link) const;

    /// Drops memoized routes when the fault revision moved. Caller must
    /// hold pool_mutex_ exclusively.
    void refreshPoolLocked() const;

    const hw::MeshTopology &topo_;
    const hw::FaultMap *faults_;

    /// Route pool: memoized safe routes and optimizer candidates, keyed
    /// on (src, dst, policy), plus per-link single-hop routes. Reads
    /// take the lock shared when unbounded (the warm-pool hot path;
    /// bounded reads go exclusive to refresh LRU order); misses upgrade
    /// to exclusive. Cleared when faults_->revision() changes; a route
    /// computed while the revision moved is returned but never
    /// persisted, so stale routes cannot leak into the new epoch.
    mutable std::shared_mutex pool_mutex_;
    mutable std::uint64_t pool_revision_ = 0;
    /// Lockless mirrors of the pools' budgets (hit paths branch on
    /// boundedness before locking).
    mutable std::atomic<std::size_t> pool_budget_{0};
    mutable std::atomic<long> pool_max_bytes_{0};
    mutable common::LruMap<std::uint64_t, RouteRef> safe_pool_;
    mutable common::LruMap<
        std::uint64_t, std::shared_ptr<const std::vector<RouteRef>>>
        candidate_pool_;
    mutable std::vector<RouteRef> link_pool_;
    mutable std::atomic<long> pool_hits_{0};
    mutable std::atomic<long> pool_misses_{0};
};

}  // namespace temp::net
