/**
 * @file
 * Routes and routing policies on the wafer mesh.
 *
 * The mesh offers little path diversity (Challenge 2, Sec. III-B); the
 * router exposes exactly the choices the traffic-conscious optimizer can
 * exploit: dimension-ordered XY and YX routes, plus single-waypoint
 * detours, all optionally avoiding failed links.
 */
#pragma once

#include <optional>
#include <vector>

#include "hw/fault.hpp"
#include "hw/topology.hpp"

namespace temp::net {

using hw::DieId;
using hw::LinkId;

/// An ordered sequence of directed links from src to dst.
struct Route
{
    DieId src = -1;
    DieId dst = -1;
    std::vector<LinkId> links;

    /// Number of link traversals.
    int hops() const { return static_cast<int>(links.size()); }

    bool empty() const { return links.empty(); }
};

/// Dimension order used for deterministic mesh routing.
enum class RoutePolicy
{
    XY,  ///< traverse columns first, then rows
    YX,  ///< traverse rows first, then columns
};

/**
 * Computes routes on a mesh topology, optionally honouring a fault map.
 *
 * The router never fabricates links: every produced route uses only links
 * present (and usable) in the topology.
 */
class Router
{
  public:
    /// @param faults Optional fault map; failed links are avoided by
    ///        shortestPath() and reported unusable by routeUsable().
    explicit Router(const hw::MeshTopology &topo,
                    const hw::FaultMap *faults = nullptr);

    /// Dimension-ordered route; always exists on a healthy mesh.
    Route route(DieId src, DieId dst, RoutePolicy policy = RoutePolicy::XY)
        const;

    /// Route through an intermediate waypoint (detour for rerouting).
    Route routeVia(DieId src, DieId waypoint, DieId dst,
                   RoutePolicy first = RoutePolicy::XY,
                   RoutePolicy second = RoutePolicy::XY) const;

    /**
     * BFS shortest path avoiding failed links; empty optional when the
     * destination is unreachable (fabric partitioned by faults).
     */
    std::optional<Route> shortestPath(DieId src, DieId dst) const;

    /**
     * Dimension-ordered route with automatic fault fallback: returns the
     * XY/YX route when usable, otherwise the BFS detour, otherwise an
     * empty optional (fabric partitioned — the caller must treat the
     * transfer as infeasible).
     */
    std::optional<Route> safeRoute(DieId src, DieId dst,
                                   RoutePolicy policy = RoutePolicy::XY)
        const;

    /**
     * Candidate routes for the traffic optimizer: XY, YX and one-bend
     * detours through neighbours of the source. Deduplicated; all usable
     * under the fault map.
     */
    std::vector<Route> candidateRoutes(DieId src, DieId dst) const;

    /// True if every link on the route is usable under the fault map.
    bool routeUsable(const Route &route) const;

    const hw::MeshTopology &topology() const { return topo_; }

  private:
    bool linkUsable(LinkId link) const;

    const hw::MeshTopology &topo_;
    const hw::FaultMap *faults_;
};

}  // namespace temp::net
