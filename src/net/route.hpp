/**
 * @file
 * Routes and routing policies on the wafer mesh.
 *
 * The mesh offers little path diversity (Challenge 2, Sec. III-B); the
 * router exposes exactly the choices the traffic-conscious optimizer can
 * exploit: dimension-ordered XY and YX routes, plus single-waypoint
 * detours, all optionally avoiding failed links.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "hw/fault.hpp"
#include "hw/topology.hpp"

namespace temp::net {

using hw::DieId;
using hw::LinkId;

/// An ordered sequence of directed links from src to dst.
struct Route
{
    DieId src = -1;
    DieId dst = -1;
    std::vector<LinkId> links;

    /// Number of link traversals.
    int hops() const { return static_cast<int>(links.size()); }

    bool empty() const { return links.empty(); }
};

/**
 * A shared handle to an immutable, pooled Route.
 *
 * Flows reference routes through this instead of owning a Route copy,
 * so copying a flow (schedule-cache reuse, overlay combination) costs a
 * reference count instead of a LinkId-vector allocation. A
 * default-constructed ref reads as an empty route (no links), the state
 * of an infeasible transfer.
 */
class RouteRef
{
  public:
    RouteRef() = default;
    RouteRef(std::shared_ptr<const Route> route) : route_(std::move(route))
    {
    }
    /// Pools a one-off route value (ad-hoc flows, tests).
    RouteRef(Route route)
        : route_(std::make_shared<const Route>(std::move(route)))
    {
    }

    /// True when a route is attached (even a trivial src==dst one).
    bool valid() const { return route_ != nullptr; }

    const Route &get() const;
    const Route &operator*() const { return get(); }
    const Route *operator->() const { return &get(); }

    int hops() const { return route_ ? route_->hops() : 0; }
    bool empty() const { return route_ == nullptr || route_->empty(); }
    const std::vector<LinkId> &links() const { return get().links; }

    /// Content equality of the underlying link sequences.
    bool sameLinks(const RouteRef &other) const
    {
        return route_ == other.route_ || links() == other.links();
    }

  private:
    std::shared_ptr<const Route> route_;
};

/// Dimension order used for deterministic mesh routing.
enum class RoutePolicy
{
    XY,  ///< traverse columns first, then rows
    YX,  ///< traverse rows first, then columns
};

/**
 * Computes routes on a mesh topology, optionally honouring a fault map.
 *
 * The router never fabricates links: every produced route uses only links
 * present (and usable) in the topology.
 */
class Router
{
  public:
    /// @param faults Optional fault map; failed links are avoided by
    ///        shortestPath() and reported unusable by routeUsable().
    explicit Router(const hw::MeshTopology &topo,
                    const hw::FaultMap *faults = nullptr);

    /// Dimension-ordered route; always exists on a healthy mesh.
    Route route(DieId src, DieId dst, RoutePolicy policy = RoutePolicy::XY)
        const;

    /// Route through an intermediate waypoint (detour for rerouting).
    Route routeVia(DieId src, DieId waypoint, DieId dst,
                   RoutePolicy first = RoutePolicy::XY,
                   RoutePolicy second = RoutePolicy::XY) const;

    /**
     * BFS shortest path avoiding failed links; empty optional when the
     * destination is unreachable (fabric partitioned by faults).
     */
    std::optional<Route> shortestPath(DieId src, DieId dst) const;

    /**
     * Dimension-ordered route with automatic fault fallback: returns the
     * XY/YX route when usable, otherwise the BFS detour, otherwise an
     * empty optional (fabric partitioned — the caller must treat the
     * transfer as infeasible).
     */
    std::optional<Route> safeRoute(DieId src, DieId dst,
                                   RoutePolicy policy = RoutePolicy::XY)
        const;

    /**
     * Memoized, pooled safeRoute(): the hot path of collective
     * lowering. Returns an invalid (empty) ref when the destination is
     * unreachable. Entries invalidate when the fault map's revision
     * changes; thread-safe.
     */
    RouteRef safeRouteRef(DieId src, DieId dst,
                          RoutePolicy policy = RoutePolicy::XY) const;

    /// Pooled single-link route (broadcast trees, multicast branches).
    /// Link routes are topology-only, so they never invalidate.
    RouteRef linkRoute(LinkId link) const;

    /**
     * Candidate routes for the traffic optimizer: XY, YX and one-bend
     * detours through neighbours of the source. Deduplicated; all usable
     * under the fault map.
     */
    std::vector<Route> candidateRoutes(DieId src, DieId dst) const;

    /// Memoized, pooled candidateRoutes() (same fault-revision
    /// invalidation contract as safeRouteRef). The returned vector is
    /// shared and immutable.
    std::shared_ptr<const std::vector<RouteRef>> candidateRouteRefs(
        DieId src, DieId dst) const;

    /// True if every link on the route is usable under the fault map.
    bool routeUsable(const Route &route) const;

    const hw::MeshTopology &topology() const { return topo_; }

    /// Current fault revision this router observes (0 when fault-free).
    std::uint64_t faultRevision() const
    {
        return faults_ != nullptr ? faults_->revision() : 0;
    }

  private:
    bool linkUsable(LinkId link) const;

    /// Drops memoized routes when the fault revision moved. Caller must
    /// hold pool_mutex_ exclusively.
    void refreshPoolLocked() const;

    const hw::MeshTopology &topo_;
    const hw::FaultMap *faults_;

    /// Route pool: memoized safe routes and optimizer candidates, keyed
    /// on (src, dst, policy), plus per-link single-hop routes. Reads
    /// take the lock shared (the warm-pool hot path); misses upgrade to
    /// exclusive. Cleared when faults_->revision() changes; a route
    /// computed while the revision moved is returned but never
    /// persisted, so stale routes cannot leak into the new epoch.
    mutable std::shared_mutex pool_mutex_;
    mutable std::uint64_t pool_revision_ = 0;
    mutable std::unordered_map<std::uint64_t, RouteRef> safe_pool_;
    mutable std::unordered_map<
        std::uint64_t, std::shared_ptr<const std::vector<RouteRef>>>
        candidate_pool_;
    mutable std::vector<RouteRef> link_pool_;
};

}  // namespace temp::net
