#include "net/route.hpp"

#include <algorithm>
#include <deque>
#include <mutex>

#include "common/logging.hpp"

namespace temp::net {

namespace {

/// Pool key of one (src, dst, policy) endpoint pair.
std::uint64_t
endpointKey(DieId src, DieId dst, RoutePolicy policy)
{
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
            << 33) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst))
            << 1) |
           (policy == RoutePolicy::YX ? 1u : 0u);
}

}  // namespace

const Route &
RouteRef::get() const
{
    static const Route kEmpty;
    return route_ ? *route_ : kEmpty;
}

Router::Router(const hw::MeshTopology &topo, const hw::FaultMap *faults)
    : topo_(topo), faults_(faults)
{
    // Pin checks: the pool holds one reference itself, so anything
    // above it means live flows (cached schedules, iterating callers)
    // still use the route — never evict those.
    safe_pool_.setEvictable(
        [](const RouteRef &ref) { return ref.shareCount() <= 1; });
    candidate_pool_.setEvictable(
        [](const std::shared_ptr<const std::vector<RouteRef>> &refs) {
            return refs.use_count() <= 1;
        });
    safe_pool_.setByteEstimate([](std::uint64_t, const RouteRef &ref) {
        return static_cast<long>(sizeof(RouteRef) + sizeof(Route) +
                                 ref.links().size() * sizeof(LinkId));
    });
    candidate_pool_.setByteEstimate(
        [](std::uint64_t,
           const std::shared_ptr<const std::vector<RouteRef>> &refs) {
            long bytes = static_cast<long>(sizeof(refs) +
                                           sizeof(std::vector<RouteRef>));
            if (refs != nullptr)
                for (const RouteRef &ref : *refs)
                    bytes += static_cast<long>(
                        sizeof(RouteRef) + sizeof(Route) +
                        ref.links().size() * sizeof(LinkId));
            return bytes;
        });
}

bool
Router::linkUsable(LinkId link) const
{
    return faults_ == nullptr || !faults_->linkFailed(link);
}

Route
Router::route(DieId src, DieId dst, RoutePolicy policy) const
{
    Route out;
    out.src = src;
    out.dst = dst;
    if (src == dst)
        return out;

    hw::DieCoord cur = topo_.coordOf(src);
    const hw::DieCoord goal = topo_.coordOf(dst);

    auto step_col = [&]() {
        while (cur.col != goal.col) {
            const int next_col = cur.col + (goal.col > cur.col ? 1 : -1);
            const DieId from = topo_.dieAt(cur.row, cur.col);
            const DieId to = topo_.dieAt(cur.row, next_col);
            out.links.push_back(topo_.linkId(from, to));
            cur.col = next_col;
        }
    };
    auto step_row = [&]() {
        while (cur.row != goal.row) {
            const int next_row = cur.row + (goal.row > cur.row ? 1 : -1);
            const DieId from = topo_.dieAt(cur.row, cur.col);
            const DieId to = topo_.dieAt(next_row, cur.col);
            out.links.push_back(topo_.linkId(from, to));
            cur.row = next_row;
        }
    };

    if (policy == RoutePolicy::XY) {
        step_col();
        step_row();
    } else {
        step_row();
        step_col();
    }
    return out;
}

Route
Router::routeVia(DieId src, DieId waypoint, DieId dst, RoutePolicy first,
                 RoutePolicy second) const
{
    const Route a = route(src, waypoint, first);
    const Route b = route(waypoint, dst, second);
    Route out;
    out.src = src;
    out.dst = dst;
    out.links = a.links;
    out.links.insert(out.links.end(), b.links.begin(), b.links.end());
    return out;
}

std::optional<Route>
Router::shortestPath(DieId src, DieId dst) const
{
    Route out;
    out.src = src;
    out.dst = dst;
    if (src == dst)
        return out;

    std::vector<DieId> prev(topo_.dieCount(), -1);
    std::vector<bool> seen(topo_.dieCount(), false);
    std::deque<DieId> queue;
    queue.push_back(src);
    seen[src] = true;

    while (!queue.empty()) {
        const DieId cur = queue.front();
        queue.pop_front();
        if (cur == dst)
            break;
        for (DieId next : topo_.neighbors(cur)) {
            if (seen[next] || !linkUsable(topo_.linkId(cur, next)))
                continue;
            seen[next] = true;
            prev[next] = cur;
            queue.push_back(next);
        }
    }
    if (!seen[dst])
        return std::nullopt;

    std::vector<DieId> path;
    for (DieId cur = dst; cur != src; cur = prev[cur])
        path.push_back(cur);
    path.push_back(src);
    std::reverse(path.begin(), path.end());
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
        out.links.push_back(topo_.linkId(path[i], path[i + 1]));
    return out;
}

std::optional<Route>
Router::safeRoute(DieId src, DieId dst, RoutePolicy policy) const
{
    const Route direct = route(src, dst, policy);
    if (routeUsable(direct))
        return direct;
    const Route alt =
        route(src, dst,
              policy == RoutePolicy::XY ? RoutePolicy::YX : RoutePolicy::XY);
    if (routeUsable(alt))
        return alt;
    return shortestPath(src, dst);
}

std::vector<Route>
Router::candidateRoutes(DieId src, DieId dst) const
{
    std::vector<Route> candidates;

    // First-occurrence dedup over a flat vector: the candidate set is
    // tiny (XY + YX + a handful of one-bend detours), so a linear scan
    // beats the former std::set<std::vector<LinkId>>'s node allocation
    // per probe while preserving the insertion order the reroute
    // tie-breaking depends on.
    auto consider = [&](const Route &r) {
        if (r.src != src || r.dst != dst)
            return;
        if (!routeUsable(r))
            return;
        const bool seen =
            std::any_of(candidates.begin(), candidates.end(),
                        [&](const Route &c) { return c.links == r.links; });
        if (!seen)
            candidates.push_back(r);
    };

    consider(route(src, dst, RoutePolicy::XY));
    consider(route(src, dst, RoutePolicy::YX));
    // One-bend detours: step to a neighbour first, then route onward with
    // both dimension orders. This is the "idle neighbouring links" escape
    // hatch the Fig. 11 optimizer exploits.
    for (DieId mid : topo_.neighbors(src)) {
        if (mid == dst)
            continue;
        if (!linkUsable(topo_.linkId(src, mid)))
            continue;
        for (RoutePolicy second : {RoutePolicy::XY, RoutePolicy::YX}) {
            Route detour = routeVia(src, mid, dst, RoutePolicy::XY, second);
            consider(detour);
        }
    }
    if (candidates.empty()) {
        // Fabric has faults on all deterministic paths; fall back to BFS.
        if (auto bfs = shortestPath(src, dst))
            candidates.push_back(*bfs);
    }
    return candidates;
}

bool
Router::routeUsable(const Route &route) const
{
    return std::all_of(route.links.begin(), route.links.end(),
                       [this](LinkId l) { return linkUsable(l); });
}

void
Router::refreshPoolLocked() const
{
    const std::uint64_t revision = faultRevision();
    if (revision == pool_revision_)
        return;
    // Fault state moved: every memoized route may now cross a failed
    // link (or a better one may exist). Single-link routes survive —
    // their usability is checked by the consumer, not baked in.
    safe_pool_.clear();
    candidate_pool_.clear();
    pool_revision_ = revision;
}

RouteRef
Router::safeRouteRef(DieId src, DieId dst, RoutePolicy policy) const
{
    const std::uint64_t revision = faultRevision();
    const std::uint64_t key = endpointKey(src, dst, policy);
    const bool bounded =
        pool_budget_.load(std::memory_order_relaxed) > 0 ||
        pool_max_bytes_.load(std::memory_order_relaxed) > 0;
    if (!bounded) {
        std::shared_lock<std::shared_mutex> lock(pool_mutex_);
        if (pool_revision_ == revision) {
            if (const RouteRef *pooled = safe_pool_.peek(key)) {
                ++pool_hits_;
                return *pooled;
            }
        }
    } else {
        std::unique_lock<std::shared_mutex> lock(pool_mutex_);
        if (pool_revision_ == revision) {
            if (RouteRef *pooled = safe_pool_.touch(key)) {
                ++pool_hits_;
                return *pooled;
            }
        }
    }
    ++pool_misses_;
    std::optional<Route> found = safeRoute(src, dst, policy);
    RouteRef ref = found ? RouteRef(std::move(*found)) : RouteRef();
    std::unique_lock<std::shared_mutex> lock(pool_mutex_);
    refreshPoolLocked();
    // The fault map moved while this route was computed under the old
    // one: return it (the pre-pool race semantics) but never persist it
    // into the new epoch's pool.
    if (pool_revision_ != revision)
        return ref;
    return *safe_pool_.insert(key, std::move(ref)).first;
}

RouteRef
Router::linkRoute(LinkId link) const
{
    // Single-link routes depend only on the topology, never on faults.
    {
        std::shared_lock<std::shared_mutex> lock(pool_mutex_);
        if (!link_pool_.empty() && link_pool_[link].valid())
            return link_pool_[link];
    }
    std::unique_lock<std::shared_mutex> lock(pool_mutex_);
    if (link_pool_.empty())
        link_pool_.resize(topo_.linkCount());
    if (!link_pool_[link].valid()) {
        const hw::Link &l = topo_.link(link);
        Route r;
        r.src = l.src;
        r.dst = l.dst;
        r.links = {link};
        link_pool_[link] = RouteRef(std::move(r));
    }
    return link_pool_[link];
}

std::shared_ptr<const std::vector<RouteRef>>
Router::candidateRouteRefs(DieId src, DieId dst) const
{
    const std::uint64_t revision = faultRevision();
    const std::uint64_t key = endpointKey(src, dst, RoutePolicy::XY);
    const bool bounded =
        pool_budget_.load(std::memory_order_relaxed) > 0 ||
        pool_max_bytes_.load(std::memory_order_relaxed) > 0;
    if (!bounded) {
        std::shared_lock<std::shared_mutex> lock(pool_mutex_);
        if (pool_revision_ == revision) {
            if (const auto *pooled = candidate_pool_.peek(key)) {
                ++pool_hits_;
                return *pooled;
            }
        }
    } else {
        std::unique_lock<std::shared_mutex> lock(pool_mutex_);
        if (pool_revision_ == revision) {
            if (auto *pooled = candidate_pool_.touch(key)) {
                ++pool_hits_;
                return *pooled;
            }
        }
    }
    ++pool_misses_;
    std::vector<Route> routes = candidateRoutes(src, dst);
    auto refs = std::make_shared<std::vector<RouteRef>>();
    refs->reserve(routes.size());
    for (Route &r : routes)
        refs->emplace_back(std::move(r));
    std::unique_lock<std::shared_mutex> lock(pool_mutex_);
    refreshPoolLocked();
    if (pool_revision_ != revision)
        return refs;  // computed under a superseded fault map
    return *candidate_pool_.insert(key, std::move(refs)).first;
}

void
Router::setPoolBudget(std::size_t max_entries) const
{
    std::unique_lock<std::shared_mutex> lock(pool_mutex_);
    pool_budget_.store(max_entries, std::memory_order_relaxed);
    safe_pool_.setCapacity(max_entries);
    candidate_pool_.setCapacity(max_entries);
}

void
Router::setPoolMaxBytes(long max_bytes) const
{
    std::unique_lock<std::shared_mutex> lock(pool_mutex_);
    if (max_bytes < 0)
        max_bytes = 0;
    pool_max_bytes_.store(max_bytes, std::memory_order_relaxed);
    // The budget governs the combined pool footprint; split it evenly
    // (never handing either pool a 0 = unbounded slice), the same
    // partitioning the sharded caches use.
    safe_pool_.setMaxBytes(max_bytes == 0 ? 0
                                          : std::max(1L, max_bytes / 2));
    candidate_pool_.setMaxBytes(
        max_bytes == 0 ? 0 : std::max(1L, max_bytes - max_bytes / 2));
}

void
Router::dropStaleRoutes() const
{
    std::unique_lock<std::shared_mutex> lock(pool_mutex_);
    refreshPoolLocked();
}

common::CacheStats
Router::poolStats() const
{
    std::unique_lock<std::shared_mutex> lock(pool_mutex_);
    common::CacheStats stats;
    stats.entries = static_cast<long>(safe_pool_.size() +
                                      candidate_pool_.size());
    stats.bytes_est =
        safe_pool_.bytesEstimate() + candidate_pool_.bytesEstimate();
    stats.hits = pool_hits_.load();
    stats.misses = pool_misses_.load();
    stats.evictions = safe_pool_.evictions() + candidate_pool_.evictions();
    return stats;
}

}  // namespace temp::net
