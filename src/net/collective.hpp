/**
 * @file
 * Collective communication algorithms on the wafer fabric.
 *
 * Collectives are lowered to *schedules*: ordered rounds of concurrent
 * flows. The contention model evaluates schedules; the traffic-conscious
 * optimizer rewrites the routes inside them.
 */
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/contention.hpp"
#include "net/route.hpp"

namespace temp::net {

/// The collective operations the parallelism layer emits.
enum class CollectiveKind
{
    AllReduce,      ///< ring reduce-scatter + all-gather
    AllGather,      ///< ring all-gather
    ReduceScatter,  ///< ring reduce-scatter
    Broadcast,      ///< multicast tree from group[0]
    P2P,            ///< single point-to-point transfer group[0]->group[1]
};

/// Returns a printable name for a collective kind.
const char *collectiveKindName(CollectiveKind kind);

/**
 * One collective operation over an ordered group of dies.
 *
 * Byte semantics follow NCCL conventions:
 *  - AllReduce / ReduceScatter: bytes = full tensor size held per member;
 *  - AllGather / Broadcast: bytes = shard contributed by each member
 *    (Broadcast: the full payload sent by the root);
 *  - P2P: bytes = transfer size.
 */
struct CollectiveTask
{
    CollectiveKind kind = CollectiveKind::AllReduce;
    std::vector<DieId> group;
    double bytes = 0.0;
    int tag = 0;
};

/**
 * Structure-of-arrays view of a schedule's flow arena: parallel per-flow
 * `bytes`/`hops` columns plus all route links concatenated behind a
 * `link_begin` offset column (flow f's links are
 * links[link_begin[f] .. link_begin[f+1])). Contention evaluation walks
 * these contiguous arrays instead of chasing each flow's pooled Route
 * pointer; see src/net/README.md for the layout and dispatch rules.
 */
struct FlowSoa
{
    std::vector<double> bytes;              ///< per flow
    std::vector<std::int32_t> hops;         ///< per flow (route length)
    std::vector<std::uint32_t> link_begin;  ///< per flow + end sentinel
    std::vector<LinkId> links;              ///< concatenated route links

    /// Heap footprint (cache byte-budget accounting).
    std::size_t byteSize() const
    {
        return bytes.capacity() * sizeof(double) +
               hops.capacity() * sizeof(std::int32_t) +
               link_begin.capacity() * sizeof(std::uint32_t) +
               links.capacity() * sizeof(LinkId);
    }
};

/**
 * Ordered rounds of concurrent flows realising one or more collectives.
 *
 * Flows live in one contiguous arena; rounds are offset spans into it.
 * This keeps lowering, overlay combination and sequence evaluation free
 * of per-round vector allocations (the former vector<vector<Flow>>
 * shape), which matters because schedules are built and walked millions
 * of times across a DP matrix fill.
 *
 * A *finalized* schedule additionally carries a FlowSoa view of the
 * arena, the layout the contention model's deposit loop prefers. Any
 * arena mutation invalidates the view; long-lived schedules (schedule
 * cache entries, optimizer output) re-finalize once after building.
 */
class CommSchedule
{
  public:
    /// Payload bytes delivered (for energy accounting).
    double payload_bytes = 0.0;
    /// False when some transfer had no usable route (fabric partitioned
    /// by faults); the schedule's cost is then infinite.
    bool feasible = true;

    CommSchedule() = default;
    // Copies drop the SoA view instead of duplicating it: the only
    // copied schedules are cache entries about to be rewritten by the
    // traffic optimizer, which re-finalizes after its rebuild.
    CommSchedule(const CommSchedule &other)
        : payload_bytes(other.payload_bytes), feasible(other.feasible),
          flows_(other.flows_), round_end_(other.round_end_)
    {
    }
    CommSchedule &operator=(const CommSchedule &other)
    {
        if (this != &other) {
            payload_bytes = other.payload_bytes;
            feasible = other.feasible;
            flows_ = other.flows_;
            round_end_ = other.round_end_;
            soa_ = FlowSoa{};
            soa_valid_ = false;
        }
        return *this;
    }
    CommSchedule(CommSchedule &&) = default;
    CommSchedule &operator=(CommSchedule &&) = default;

    // --- building -----------------------------------------------------
    /// Appends a flow to the round under construction.
    void addFlow(Flow flow)
    {
        soa_valid_ = false;
        flows_.push_back(std::move(flow));
    }

    /// Seals the round under construction (flows added since the last
    /// seal); an empty round is legal but usually skipped by callers.
    void sealRound()
    {
        round_end_.push_back(static_cast<std::uint32_t>(flows_.size()));
    }

    /// Number of flows added since the last sealed round.
    std::size_t openFlowCount() const
    {
        return flows_.size() -
               (round_end_.empty() ? 0 : round_end_.back());
    }

    /// Reserves arena capacity (rounds * flows-per-round known upfront).
    void reserve(std::size_t flow_count, std::size_t round_count)
    {
        flows_.reserve(flow_count);
        round_end_.reserve(round_count);
    }

    /// Replaces the arena wholesale (the traffic optimizer's rebuild).
    void assign(std::vector<Flow> flows,
                std::vector<std::uint32_t> round_end)
    {
        soa_valid_ = false;
        flows_ = std::move(flows);
        round_end_ = std::move(round_end);
    }

    /**
     * Builds (or rebuilds) the SoA view of the current arena.
     * Idempotent; call once after the arena stops mutating. The AoS
     * arena stays authoritative — the view is a derived, redundant
     * layout, and evaluation of a non-finalized schedule simply walks
     * the arena.
     */
    void finalize();

    // --- access -------------------------------------------------------
    int roundCount() const { return static_cast<int>(round_end_.size()); }
    bool empty() const { return round_end_.empty(); }

    std::span<const Flow> round(int r) const
    {
        const std::uint32_t begin = r > 0 ? round_end_[r - 1] : 0;
        return {flows_.data() + begin, round_end_[r] - begin};
    }
    std::span<Flow> round(int r)
    {
        // Callers may rewrite flows through this span.
        soa_valid_ = false;
        const std::uint32_t begin = r > 0 ? round_end_[r - 1] : 0;
        return {flows_.data() + begin, round_end_[r] - begin};
    }

    /// Flow-index bounds of round r in the arena (and the SoA columns).
    std::uint32_t roundBegin(int r) const
    {
        return r > 0 ? round_end_[r - 1] : 0;
    }
    std::uint32_t roundEnd(int r) const { return round_end_[r]; }

    /// True when the SoA view matches the arena.
    bool soaReady() const { return soa_valid_; }
    /// The SoA view (meaningful only when soaReady()).
    const FlowSoa &soa() const { return soa_; }
    /// Heap bytes held by the SoA view (cache byte estimates).
    std::size_t soaByteEstimate() const
    {
        return soa_valid_ ? soa_.byteSize() : 0;
    }

    /// The whole flow arena (all rounds, in round order).
    const std::vector<Flow> &flows() const { return flows_; }
    std::size_t flowCount() const { return flows_.size(); }

    /// Appends another schedule's rounds after this one's.
    void append(const CommSchedule &other);

    /// Merges another schedule round-by-round (concurrent execution).
    void overlay(const CommSchedule &other);

    /**
     * Round-by-round merge of many schedules in one pass (one arena
     * allocation total instead of one rebuild per overlay).
     */
    static CommSchedule combine(
        std::span<const CommSchedule *const> schedules);

    /// Total bytes*hops deposited on the fabric.
    double linkBytes() const;

  private:
    std::vector<Flow> flows_;
    /// round r = flows_[round_end_[r-1] .. round_end_[r]).
    std::vector<std::uint32_t> round_end_;
    FlowSoa soa_;             ///< derived view, see finalize()
    bool soa_valid_ = false;  ///< soa_ matches flows_
};

/// A multicast tree: the union of routes from a root to many leaves.
struct MulticastTree
{
    DieId root = -1;
    std::vector<DieId> leaves;
    /// Each tree link appears exactly once (duplicates merged).
    std::vector<LinkId> links;
    int depth = 0;  ///< longest root-to-leaf hop count
    /// False when faults leave some leaf unreachable.
    bool complete = true;
};

/**
 * Builds a multicast tree as the deduplicated union of router paths from
 * the root to every leaf (Fig. 11's "redundant path merging" target).
 */
MulticastTree buildMulticastTree(const Router &router, DieId root,
                                 const std::vector<DieId> &leaves,
                                 RoutePolicy policy = RoutePolicy::XY);

/**
 * Lowers collective tasks into flow schedules using ring algorithms over
 * the group order given in the task (the caller is responsible for
 * choosing a topology-friendly order; see tatp::ChainMapper).
 */
class CollectiveScheduler
{
  public:
    explicit CollectiveScheduler(const Router &router,
                                 RoutePolicy policy = RoutePolicy::XY);

    /// Lowers one task according to its kind.
    CommSchedule schedule(const CollectiveTask &task) const;

    /// Ring all-gather: N-1 rounds, each member forwards a shard.
    CommSchedule ringAllGather(const std::vector<DieId> &group,
                               double shard_bytes, int tag = 0) const;

    /// Ring reduce-scatter: N-1 rounds of tensor/N-sized exchanges.
    CommSchedule ringReduceScatter(const std::vector<DieId> &group,
                                   double tensor_bytes, int tag = 0) const;

    /// Ring all-reduce = reduce-scatter then all-gather.
    CommSchedule ringAllReduce(const std::vector<DieId> &group,
                               double tensor_bytes, int tag = 0) const;

    /**
     * Binomial-tree all-reduce (reduce up, broadcast down): 2*ceil(log2
     * N) rounds carrying the full tensor per hop. Latency-optimal for
     * small payloads where the ring's 2(N-1) rounds dominate; the ring
     * wins on bandwidth for large payloads.
     */
    CommSchedule treeAllReduce(const std::vector<DieId> &group,
                               double tensor_bytes, int tag = 0) const;

    /**
     * Picks tree vs ring all-reduce by the analytic crossover for the
     * given fabric parameters (the adaptive algorithm selection NCCL
     * and the paper's collective substrate [38] perform).
     */
    CommSchedule bestAllReduce(const std::vector<DieId> &group,
                               double tensor_bytes, double link_bandwidth,
                               double hop_latency_s, int tag = 0) const;

    /// Store-and-forward broadcast along a multicast tree (one round,
    /// one flow per tree link).
    CommSchedule broadcast(const std::vector<DieId> &group, double bytes,
                           int tag = 0) const;

    /// A single point-to-point transfer.
    CommSchedule p2p(DieId src, DieId dst, double bytes, int tag = 0) const;

    const Router &router() const { return router_; }

  private:
    const Router &router_;
    RoutePolicy policy_;
};

/**
 * Analytic lower bound for a collective on an ideal fabric (used by
 * sanity tests and the cost model's feature extraction): ring algorithms
 * move 2(N-1)/N (all-reduce) or (N-1)/N (gather/scatter) of the tensor
 * over the slowest link.
 */
double collectiveLowerBoundTime(CollectiveKind kind, int group_size,
                                double bytes, double link_bandwidth,
                                double hop_latency_s);

}  // namespace temp::net
