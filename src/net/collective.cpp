#include "net/collective.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace temp::net {

const char *
collectiveKindName(CollectiveKind kind)
{
    switch (kind) {
      case CollectiveKind::AllReduce: return "all-reduce";
      case CollectiveKind::AllGather: return "all-gather";
      case CollectiveKind::ReduceScatter: return "reduce-scatter";
      case CollectiveKind::Broadcast: return "broadcast";
      case CollectiveKind::P2P: return "p2p";
    }
    return "?";
}

void
CommSchedule::finalize()
{
    if (soa_valid_)
        return;
    const std::size_t n = flows_.size();
    soa_.bytes.resize(n);
    soa_.hops.resize(n);
    soa_.link_begin.resize(n + 1);
    std::size_t total_links = 0;
    for (const Flow &flow : flows_)
        total_links += flow.route.links().size();
    soa_.links.clear();
    soa_.links.reserve(total_links);
    for (std::size_t f = 0; f < n; ++f) {
        const Flow &flow = flows_[f];
        const std::vector<LinkId> &links = flow.route.links();
        soa_.bytes[f] = flow.bytes;
        soa_.hops[f] = static_cast<std::int32_t>(links.size());
        soa_.link_begin[f] =
            static_cast<std::uint32_t>(soa_.links.size());
        soa_.links.insert(soa_.links.end(), links.begin(), links.end());
    }
    soa_.link_begin[n] = static_cast<std::uint32_t>(soa_.links.size());
    soa_valid_ = true;
}

void
CommSchedule::append(const CommSchedule &other)
{
    soa_valid_ = false;
    const std::uint32_t base = static_cast<std::uint32_t>(flows_.size());
    flows_.insert(flows_.end(), other.flows_.begin(), other.flows_.end());
    round_end_.reserve(round_end_.size() + other.round_end_.size());
    for (std::uint32_t end : other.round_end_)
        round_end_.push_back(base + end);
    payload_bytes += other.payload_bytes;
    feasible = feasible && other.feasible;
}

void
CommSchedule::overlay(const CommSchedule &other)
{
    const CommSchedule *pair[] = {this, &other};
    *this = combine(pair);
}

CommSchedule
CommSchedule::combine(std::span<const CommSchedule *const> schedules)
{
    CommSchedule out;
    std::size_t total_flows = 0;
    std::size_t total_rounds = 0;
    for (const CommSchedule *s : schedules) {
        total_flows += s->flowCount();
        total_rounds = std::max(
            total_rounds, static_cast<std::size_t>(s->roundCount()));
        out.payload_bytes += s->payload_bytes;
        out.feasible = out.feasible && s->feasible;
    }
    out.reserve(total_flows, total_rounds);
    for (std::size_t r = 0; r < total_rounds; ++r) {
        for (const CommSchedule *s : schedules) {
            if (static_cast<int>(r) >= s->roundCount())
                continue;
            const std::span<const Flow> round =
                s->round(static_cast<int>(r));
            out.flows_.insert(out.flows_.end(), round.begin(),
                              round.end());
        }
        out.sealRound();
    }
    return out;
}

double
CommSchedule::linkBytes() const
{
    double total = 0.0;
    for (const Flow &flow : flows_)
        total += flow.bytes * flow.route.hops();
    return total;
}

MulticastTree
buildMulticastTree(const Router &router, DieId root,
                   const std::vector<DieId> &leaves, RoutePolicy policy)
{
    MulticastTree tree;
    tree.root = root;
    tree.leaves = leaves;
    // Collect every path link into a flat vector, then sort+unique: no
    // tree-node allocation per link, same ascending order the former
    // std::set produced.
    std::vector<LinkId> links;
    for (DieId leaf : leaves) {
        if (leaf == root)
            continue;
        const RouteRef route = router.safeRouteRef(root, leaf, policy);
        if (!route.valid()) {
            tree.complete = false;
            continue;
        }
        tree.depth = std::max(tree.depth, route.hops());
        links.insert(links.end(), route.links().begin(),
                     route.links().end());
    }
    std::sort(links.begin(), links.end());
    links.erase(std::unique(links.begin(), links.end()), links.end());
    tree.links = std::move(links);
    return tree;
}

CollectiveScheduler::CollectiveScheduler(const Router &router,
                                         RoutePolicy policy)
    : router_(router), policy_(policy)
{
}

CommSchedule
CollectiveScheduler::schedule(const CollectiveTask &task) const
{
    switch (task.kind) {
      case CollectiveKind::AllReduce:
        return ringAllReduce(task.group, task.bytes, task.tag);
      case CollectiveKind::AllGather:
        return ringAllGather(task.group, task.bytes, task.tag);
      case CollectiveKind::ReduceScatter:
        return ringReduceScatter(task.group, task.bytes, task.tag);
      case CollectiveKind::Broadcast:
        return broadcast(task.group, task.bytes, task.tag);
      case CollectiveKind::P2P:
        if (task.group.size() != 2)
            panic("P2P task needs exactly 2 members, got %zu",
                  task.group.size());
        return p2p(task.group[0], task.group[1], task.bytes, task.tag);
    }
    panic("CollectiveScheduler::schedule: unknown kind");
}

CommSchedule
CollectiveScheduler::ringAllGather(const std::vector<DieId> &group,
                                   double shard_bytes, int tag) const
{
    CommSchedule sched;
    const int n = static_cast<int>(group.size());
    if (n <= 1 || shard_bytes <= 0.0)
        return sched;

    sched.reserve(static_cast<std::size_t>(n) * (n - 1), n - 1);
    // Every round reuses the same n ring hops; resolve the pooled
    // routes once instead of once per round.
    std::vector<RouteRef> hop_routes;
    hop_routes.reserve(n);
    for (int i = 0; i < n; ++i) {
        RouteRef route =
            router_.safeRouteRef(group[i], group[(i + 1) % n], policy_);
        if (!route.valid())
            sched.feasible = false;
        hop_routes.push_back(std::move(route));
    }

    for (int round = 0; round + 1 < n; ++round) {
        for (int i = 0; i < n; ++i) {
            Flow flow;
            flow.src = group[i];
            flow.dst = group[(i + 1) % n];
            flow.bytes = shard_bytes;
            flow.route = hop_routes[i];
            flow.tag = tag;
            sched.addFlow(std::move(flow));
        }
        sched.sealRound();
    }
    sched.payload_bytes = shard_bytes * n * (n - 1);
    return sched;
}

CommSchedule
CollectiveScheduler::ringReduceScatter(const std::vector<DieId> &group,
                                       double tensor_bytes, int tag) const
{
    const int n = static_cast<int>(group.size());
    if (n <= 1 || tensor_bytes <= 0.0)
        return CommSchedule{};
    // Same flow pattern as all-gather with tensor/N shards.
    return ringAllGather(group, tensor_bytes / n, tag);
}

CommSchedule
CollectiveScheduler::ringAllReduce(const std::vector<DieId> &group,
                                   double tensor_bytes, int tag) const
{
    CommSchedule sched = ringReduceScatter(group, tensor_bytes, tag);
    const int n = static_cast<int>(group.size());
    if (n > 1 && tensor_bytes > 0.0)
        sched.append(ringAllGather(group, tensor_bytes / n, tag));
    return sched;
}

CommSchedule
CollectiveScheduler::treeAllReduce(const std::vector<DieId> &group,
                                   double tensor_bytes, int tag) const
{
    CommSchedule sched;
    const int n = static_cast<int>(group.size());
    if (n <= 1 || tensor_bytes <= 0.0)
        return sched;

    auto emit_round = [&](int step, bool reduce_phase) {
        for (int i = 0; i < n; ++i) {
            // Reduce phase: nodes at odd multiples of `step` send to the
            // even multiple below; broadcast mirrors the transfers.
            if (i % (2 * step) != step)
                continue;
            const int peer = i - step;
            Flow flow;
            flow.src = reduce_phase ? group[i] : group[peer];
            flow.dst = reduce_phase ? group[peer] : group[i];
            flow.bytes = tensor_bytes;
            flow.route = router_.safeRouteRef(flow.src, flow.dst, policy_);
            if (!flow.route.valid())
                sched.feasible = false;
            flow.tag = tag;
            sched.addFlow(std::move(flow));
            sched.payload_bytes += tensor_bytes;
        }
        if (sched.openFlowCount() > 0)
            sched.sealRound();
    };

    for (int step = 1; step < n; step *= 2)
        emit_round(step, /*reduce_phase=*/true);
    int top = 1;
    while (top * 2 < n)
        top *= 2;
    for (int step = top; step >= 1; step /= 2)
        emit_round(step, /*reduce_phase=*/false);
    return sched;
}

CommSchedule
CollectiveScheduler::bestAllReduce(const std::vector<DieId> &group,
                                   double tensor_bytes,
                                   double link_bandwidth,
                                   double hop_latency_s, int tag) const
{
    const int n = static_cast<int>(group.size());
    if (n <= 1)
        return CommSchedule{};
    const double ring_time = collectiveLowerBoundTime(
        CollectiveKind::AllReduce, n, tensor_bytes, link_bandwidth,
        hop_latency_s);
    const double log2n = std::ceil(std::log2(static_cast<double>(n)));
    const double tree_time =
        2.0 * log2n * (tensor_bytes / link_bandwidth + hop_latency_s);
    return tree_time < ring_time ? treeAllReduce(group, tensor_bytes, tag)
                                 : ringAllReduce(group, tensor_bytes, tag);
}

CommSchedule
CollectiveScheduler::broadcast(const std::vector<DieId> &group, double bytes,
                               int tag) const
{
    CommSchedule sched;
    if (group.size() <= 1 || bytes <= 0.0)
        return sched;

    const DieId root = group[0];
    std::vector<DieId> leaves(group.begin() + 1, group.end());
    const MulticastTree tree =
        buildMulticastTree(router_, root, leaves, policy_);
    sched.feasible = tree.complete;

    sched.reserve(tree.links.size(), 1);
    for (LinkId link : tree.links) {
        const hw::Link &l = router_.topology().link(link);
        Flow flow;
        flow.src = l.src;
        flow.dst = l.dst;
        flow.bytes = bytes;
        flow.route = router_.linkRoute(link);
        flow.tag = tag;
        sched.addFlow(std::move(flow));
    }
    sched.sealRound();
    sched.payload_bytes = bytes * static_cast<double>(leaves.size());
    return sched;
}

CommSchedule
CollectiveScheduler::p2p(DieId src, DieId dst, double bytes, int tag) const
{
    CommSchedule sched;
    if (src == dst || bytes <= 0.0)
        return sched;
    Flow flow;
    flow.src = src;
    flow.dst = dst;
    flow.bytes = bytes;
    flow.route = router_.safeRouteRef(src, dst, policy_);
    if (!flow.route.valid())
        sched.feasible = false;
    flow.tag = tag;
    sched.addFlow(std::move(flow));
    sched.sealRound();
    sched.payload_bytes = bytes;
    return sched;
}

double
collectiveLowerBoundTime(CollectiveKind kind, int group_size, double bytes,
                         double link_bandwidth, double hop_latency_s)
{
    if (group_size <= 1 || bytes <= 0.0)
        return 0.0;
    const double n = static_cast<double>(group_size);
    switch (kind) {
      case CollectiveKind::AllReduce:
        return 2.0 * (n - 1.0) / n * bytes / link_bandwidth +
               2.0 * (n - 1.0) * hop_latency_s;
      case CollectiveKind::AllGather:
      case CollectiveKind::ReduceScatter:
        return (n - 1.0) * bytes / link_bandwidth +
               (n - 1.0) * hop_latency_s;
      case CollectiveKind::Broadcast:
        return bytes / link_bandwidth + hop_latency_s;
      case CollectiveKind::P2P:
        return bytes / link_bandwidth + hop_latency_s;
    }
    return 0.0;
}

}  // namespace temp::net
