/**
 * @file
 * Link-level flow contention model.
 *
 * A communication *phase* is a set of flows that are in flight
 * concurrently. Every flow deposits its byte volume on each link of its
 * route; a link with aggregated load L and bandwidth B is busy for L/B.
 * The phase completes when the most-loaded link drains, and each flow
 * additionally pays per-hop propagation latency. This is exactly the
 * granularity at which the paper reasons about contention (most congested
 * link `mcl`, link loads, Fig. 11).
 *
 * The model is on the innermost loop of every cost query, so it avoids
 * indirection: per-link bandwidth is a precomputed flat vector (rebuilt
 * when the wafer's fault epoch changes), not a callback per link; phase
 * evaluation deposits into a thread-local epoch-stamped scratch (no
 * per-phase zeroing or allocation) and finds the bottleneck with the
 * vectorized drain scan from common/kernels.hpp; and schedules that
 * carry a finalized SoA view (see CommSchedule::finalize) are walked
 * through contiguous arrays instead of per-flow route pointers.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "hw/config.hpp"
#include "hw/fault.hpp"
#include "hw/topology.hpp"
#include "hw/wafer.hpp"
#include "net/route.hpp"

namespace temp::net {

class CommSchedule;
struct FlowSoa;

/// One point-to-point transfer taking part in a phase.
struct Flow
{
    DieId src = -1;
    DieId dst = -1;
    double bytes = 0.0;
    /// Pooled, immutable route (invalid ref = no usable route).
    RouteRef route;
    /// Opaque tag identifying the parallel group / collective that owns
    /// this flow (used by the optimizer for redundant-path merging).
    int tag = 0;
};

/**
 * Per-link accumulated byte loads.
 *
 * Tracks the set of links that ever carried load so the stats queries
 * (maxLoadLink / maxLoad / totalLoad / activeLinkCount) scan O(active)
 * entries instead of the full linkCount() — the optimizer calls
 * maxLoadLink once per iteration while only a group's worth of links is
 * loaded. Results are identical to the former dense scans (totalLoad
 * sums in ascending link order; untouched links contribute exact +0.0).
 */
class LinkLoadMap
{
  public:
    explicit LinkLoadMap(int link_count)
        : loads_(link_count, 0.0), marked_(link_count, 0)
    {
    }

    /// Adds a flow's bytes to every link on its route.
    void add(const Route &route, double bytes);
    void add(const RouteRef &route, double bytes) { add(*route, bytes); }

    /// Removes a flow's bytes from every link on its route.
    void remove(const Route &route, double bytes);
    void remove(const RouteRef &route, double bytes)
    {
        remove(*route, bytes);
    }

    /// Current load on a link.
    double load(LinkId link) const { return loads_[link]; }

    /// The most-loaded link (`mcl` in the paper's Fig. 11 algorithm).
    LinkId maxLoadLink() const;

    /// The load of the most-loaded link.
    double maxLoad() const;

    /// Sum of loads across all links.
    double totalLoad() const;

    /// Number of links carrying non-zero load.
    int activeLinkCount() const;

    int linkCount() const { return static_cast<int>(loads_.size()); }

    /// Number of links that ever carried load (the stats-scan bound;
    /// a removed-to-zero link stays counted).
    int touchedLinkCount() const
    {
        return static_cast<int>(touched_.size());
    }

  private:
    std::vector<double> loads_;
    std::vector<std::uint8_t> marked_;  ///< 1 once a link carried load
    std::vector<LinkId> touched_;       ///< marked links, insertion order
};

/// Result of evaluating one communication phase.
struct PhaseTiming
{
    double time_s = 0.0;            ///< phase completion time
    double serial_time_s = 0.0;     ///< bandwidth term only (no latency)
    LinkId bottleneck_link = -1;    ///< most congested link
    double bottleneck_bytes = 0.0;  ///< load on that link
    double total_bytes = 0.0;       ///< payload bytes summed over flows
    double link_bytes = 0.0;        ///< bytes x hops (fabric occupancy)
    int max_hops = 0;               ///< longest route in the phase
    /// Fraction of aggregate fabric bandwidth actually used during the
    /// phase ("BW utilization" in Fig. 4b).
    double bandwidth_utilization = 0.0;
};

/**
 * Evaluates communication phases against a concrete fabric.
 *
 * Bandwidth may differ per link (failed links carry zero; switch fabrics
 * use NIC bandwidth). The per-link bandwidths are snapshotted into a
 * flat vector at construction; the wafer-bound constructor additionally
 * re-snapshots whenever the wafer's fault epoch changes, so fault
 * injection on a live wafer is observed without a callback per link.
 */
class ContentionModel
{
  public:
    /// Uniform-bandwidth fabric (healthy wafer mesh).
    ContentionModel(const hw::Topology &topo, double link_bandwidth,
                    double hop_latency_s);

    /**
     * Wafer-bound fabric: per-link bandwidth snapshots
     * wafer.linkBandwidth() and rebuilds when wafer.faultEpoch() moves
     * (fault injection zeroes failed links without reconstructing the
     * model).
     */
    ContentionModel(const hw::Wafer &wafer, double hop_latency_s);

    /// Evaluates a phase of concurrent flows.
    PhaseTiming evaluate(std::span<const Flow> flows) const;
    PhaseTiming evaluate(const std::vector<Flow> &flows) const
    {
        return evaluate(std::span<const Flow>(flows));
    }

    /// Evaluates a schedule's rounds as dependent phases. Takes the
    /// contiguous SoA deposit path when the schedule is finalized, the
    /// per-flow route-pointer path otherwise; both are bit-identical.
    PhaseTiming evaluateSequence(const CommSchedule &schedule) const;

    /// Evaluates a sequence of dependent phases (e.g. collective rounds).
    PhaseTiming evaluateSequence(
        const std::vector<std::vector<Flow>> &phases) const;

    /// Time for a single flow in isolation (no contention).
    double flowTime(const Flow &flow) const;

    double hopLatency() const { return hop_latency_s_; }

    const hw::Topology &topology() const { return topo_; }

    /// Bandwidth of one link under this model.
    double linkBandwidth(LinkId link) const
    {
        refresh();
        return link_bandwidth_[link];
    }

    /// Sum of all link bandwidths (the fabric's aggregate capacity).
    double fabricCapacity() const
    {
        refresh();
        return fabric_capacity_;
    }

  private:
    /// Evaluates one round of a finalized schedule through its SoA view.
    PhaseTiming evaluateSoaRound(const FlowSoa &soa, std::uint32_t begin,
                                 std::uint32_t end) const;

    /**
     * Re-snapshots per-link bandwidth when the bound wafer's fault
     * epoch moved. No-op (one relaxed load + compare) on the hot path.
     * Rebuilds are serialized, but are NOT synchronized against
     * concurrent evaluate() readers: fault injection must quiesce
     * evaluation (the existing setFaults() contract).
     */
    void refresh() const;

    void snapshot(const std::function<double(LinkId)> &bandwidth_of) const;

    const hw::Topology &topo_;
    const hw::Wafer *wafer_ = nullptr;  ///< bound wafer (may be null)
    mutable std::mutex rebuild_mutex_;
    mutable std::atomic<std::uint64_t> snapshot_epoch_{0};
    mutable std::vector<double> link_bandwidth_;
    mutable double fabric_capacity_ = 0.0;
    double hop_latency_s_;
};

}  // namespace temp::net
