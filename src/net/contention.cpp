#include "net/contention.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace temp::net {

void
LinkLoadMap::add(const Route &route, double bytes)
{
    for (LinkId link : route.links)
        loads_[link] += bytes;
}

void
LinkLoadMap::remove(const Route &route, double bytes)
{
    for (LinkId link : route.links) {
        loads_[link] -= bytes;
        if (loads_[link] < 0.0)
            loads_[link] = 0.0;
    }
}

LinkId
LinkLoadMap::maxLoadLink() const
{
    LinkId best = -1;
    double best_load = -1.0;
    for (LinkId link = 0; link < linkCount(); ++link) {
        if (loads_[link] > best_load) {
            best_load = loads_[link];
            best = link;
        }
    }
    return best;
}

double
LinkLoadMap::maxLoad() const
{
    double best = 0.0;
    for (double load : loads_)
        best = std::max(best, load);
    return best;
}

double
LinkLoadMap::totalLoad() const
{
    double total = 0.0;
    for (double load : loads_)
        total += load;
    return total;
}

int
LinkLoadMap::activeLinkCount() const
{
    int active = 0;
    for (double load : loads_)
        if (load > 0.0)
            ++active;
    return active;
}

ContentionModel::ContentionModel(const hw::Topology &topo,
                                 double link_bandwidth, double hop_latency_s)
    : topo_(topo),
      link_bandwidth_([link_bandwidth](LinkId) { return link_bandwidth; }),
      hop_latency_s_(hop_latency_s)
{
}

ContentionModel::ContentionModel(const hw::Topology &topo,
                                 std::function<double(LinkId)> link_bandwidth,
                                 double hop_latency_s)
    : topo_(topo),
      link_bandwidth_(std::move(link_bandwidth)),
      hop_latency_s_(hop_latency_s)
{
}

PhaseTiming
ContentionModel::evaluate(const std::vector<Flow> &flows) const
{
    PhaseTiming timing;
    if (flows.empty())
        return timing;

    LinkLoadMap loads(topo_.linkCount());
    for (const Flow &flow : flows) {
        if (flow.bytes <= 0.0)
            continue;
        loads.add(flow.route, flow.bytes);
        timing.total_bytes += flow.bytes;
        timing.link_bytes += flow.bytes * flow.route.hops();
        timing.max_hops = std::max(timing.max_hops, flow.route.hops());
    }

    // Drain time of the most congested link dictates the bandwidth term.
    double worst = 0.0;
    for (LinkId link = 0; link < loads.linkCount(); ++link) {
        const double load = loads.load(link);
        if (load <= 0.0)
            continue;
        const double bw = link_bandwidth_(link);
        if (bw <= 0.0)
            panic("ContentionModel: flow routed over dead link %d", link);
        const double drain = load / bw;
        if (drain > worst) {
            worst = drain;
            timing.bottleneck_link = link;
            timing.bottleneck_bytes = load;
        }
    }
    timing.serial_time_s = worst;
    timing.time_s = worst + timing.max_hops * hop_latency_s_;

    // Aggregate utilisation: bytes-hops actually moved vs. what the whole
    // fabric could move during the phase.
    double fabric_capacity = 0.0;
    for (LinkId link = 0; link < topo_.linkCount(); ++link)
        fabric_capacity += link_bandwidth_(link);
    if (timing.time_s > 0.0 && fabric_capacity > 0.0) {
        timing.bandwidth_utilization =
            timing.link_bytes / (fabric_capacity * timing.time_s);
    }
    return timing;
}

PhaseTiming
ContentionModel::evaluateSequence(
    const std::vector<std::vector<Flow>> &phases) const
{
    PhaseTiming total;
    double busy_capacity_time = 0.0;
    double fabric_capacity = 0.0;
    for (LinkId link = 0; link < topo_.linkCount(); ++link)
        fabric_capacity += link_bandwidth_(link);

    for (const auto &phase : phases) {
        const PhaseTiming t = evaluate(phase);
        total.time_s += t.time_s;
        total.serial_time_s += t.serial_time_s;
        total.total_bytes += t.total_bytes;
        total.link_bytes += t.link_bytes;
        total.max_hops = std::max(total.max_hops, t.max_hops);
        if (t.bottleneck_bytes > total.bottleneck_bytes) {
            total.bottleneck_bytes = t.bottleneck_bytes;
            total.bottleneck_link = t.bottleneck_link;
        }
        busy_capacity_time += t.time_s * fabric_capacity;
    }
    if (busy_capacity_time > 0.0)
        total.bandwidth_utilization = total.link_bytes / busy_capacity_time;
    return total;
}

double
ContentionModel::flowTime(const Flow &flow) const
{
    if (flow.bytes <= 0.0 || flow.route.empty())
        return 0.0;
    double min_bw = link_bandwidth_(flow.route.links.front());
    for (LinkId link : flow.route.links)
        min_bw = std::min(min_bw, link_bandwidth_(link));
    if (min_bw <= 0.0)
        panic("ContentionModel::flowTime: dead link on route");
    return flow.bytes / min_bw + flow.route.hops() * hop_latency_s_;
}

}  // namespace temp::net
