#include "net/contention.hpp"

#include <algorithm>

#include "common/kernels.hpp"
#include "common/logging.hpp"
#include "net/collective.hpp"

namespace temp::net {

void
LinkLoadMap::add(const Route &route, double bytes)
{
    for (LinkId link : route.links) {
        if (marked_[link] == 0) {
            marked_[link] = 1;
            touched_.push_back(link);
        }
        loads_[link] += bytes;
    }
}

void
LinkLoadMap::remove(const Route &route, double bytes)
{
    // The mark stays: dropping it would need an O(touched) membership
    // check per re-add, and a removed-to-zero link still contributes an
    // exact +0.0 to the stats scans.
    for (LinkId link : route.links) {
        loads_[link] -= bytes;
        if (loads_[link] < 0.0)
            loads_[link] = 0.0;
    }
}

LinkId
LinkLoadMap::maxLoadLink() const
{
    // The former dense scan returned the smallest link id among the
    // maxima (ascending order + strictly-greater). The touched list is
    // insertion-ordered, so ties break on the id explicitly.
    LinkId best = -1;
    double best_load = -1.0;
    for (LinkId link : touched_) {
        const double load = loads_[link];
        if (load > best_load || (load == best_load && link < best)) {
            best_load = load;
            best = link;
        }
    }
    // All-zero loads: the dense scan picked link 0 (0.0 > -1.0 at the
    // first link), whether or not anything was ever touched.
    if (best_load <= 0.0)
        return linkCount() > 0 ? 0 : -1;
    return best;
}

double
LinkLoadMap::maxLoad() const
{
    double best = 0.0;
    for (LinkId link : touched_)
        best = std::max(best, loads_[link]);
    return best;
}

double
LinkLoadMap::totalLoad() const
{
    // Summed in ascending link order, exactly like the former dense
    // scan: untouched links contributed +0.0, the identity on this
    // non-negative accumulation, so skipping them is bit-identical.
    std::vector<LinkId> ordered(touched_);
    std::sort(ordered.begin(), ordered.end());
    double total = 0.0;
    for (LinkId link : ordered)
        total += loads_[link];
    return total;
}

int
LinkLoadMap::activeLinkCount() const
{
    int active = 0;
    for (LinkId link : touched_)
        if (loads_[link] > 0.0)
            ++active;
    return active;
}

namespace {

/**
 * Per-thread scratch for phase evaluation: a dense load vector gated by
 * an epoch stamp per link. Depositing into a stale-stamped link claims
 * it (set, not add), so neither a zeroing pass nor a touched list is
 * needed between phases; the drain scan reads the stamps to skip
 * untouched links in id order (the same order the former
 * sort(touched) produced).
 */
struct PhaseScratch
{
    std::vector<double> loads;
    std::vector<std::uint32_t> stamp;
    std::uint32_t epoch = 0;

    void prepare(int link_count)
    {
        if (static_cast<int>(loads.size()) < link_count) {
            loads.resize(link_count, 0.0);
            stamp.resize(link_count, 0);
        }
        if (++epoch == 0) {
            // Stamp wraparound: clear so no stale stamp aliases the
            // recycled epoch value.
            std::fill(stamp.begin(), stamp.end(), 0u);
            epoch = 1;
        }
    }
};

PhaseScratch &
phaseScratch()
{
    static thread_local PhaseScratch scratch;
    return scratch;
}

}  // namespace

ContentionModel::ContentionModel(const hw::Topology &topo,
                                 double link_bandwidth, double hop_latency_s)
    : topo_(topo), hop_latency_s_(hop_latency_s)
{
    snapshot([link_bandwidth](LinkId) { return link_bandwidth; });
}

ContentionModel::ContentionModel(const hw::Wafer &wafer, double hop_latency_s)
    : topo_(wafer.topology()), wafer_(&wafer),
      hop_latency_s_(hop_latency_s)
{
    snapshot([&wafer](LinkId link) { return wafer.linkBandwidth(link); });
    snapshot_epoch_.store(wafer.faultEpoch(), std::memory_order_release);
}

void
ContentionModel::snapshot(
    const std::function<double(LinkId)> &bandwidth_of) const
{
    link_bandwidth_.resize(topo_.linkCount());
    fabric_capacity_ = 0.0;
    for (LinkId link = 0; link < topo_.linkCount(); ++link) {
        link_bandwidth_[link] = bandwidth_of(link);
        fabric_capacity_ += link_bandwidth_[link];
    }
}

void
ContentionModel::refresh() const
{
    if (wafer_ == nullptr)
        return;
    const std::uint64_t epoch = wafer_->faultEpoch();
    if (epoch == snapshot_epoch_.load(std::memory_order_acquire))
        return;
    std::lock_guard<std::mutex> lock(rebuild_mutex_);
    if (epoch == snapshot_epoch_.load(std::memory_order_acquire))
        return;
    snapshot(
        [this](LinkId link) { return wafer_->linkBandwidth(link); });
    snapshot_epoch_.store(epoch, std::memory_order_release);
}

namespace {

/// Folds the drain scan's result into a deposited phase's timing.
void
finishDrain(PhaseTiming &timing, const PhaseScratch &scratch,
            const double *bandwidth, int link_count,
            double hop_latency_s, double fabric_capacity)
{
    const kernels::MaxDrain r = kernels::maxDrainArgmax(
        scratch.loads.data(), scratch.stamp.data(), scratch.epoch,
        bandwidth, link_count);
    if (r.dead_link >= 0)
        panic("ContentionModel: flow routed over dead link %d",
              r.dead_link);
    timing.serial_time_s = r.worst;
    timing.bottleneck_link = r.link;
    timing.bottleneck_bytes = r.link_load;
    timing.time_s = r.worst + timing.max_hops * hop_latency_s;

    // Aggregate utilisation: bytes-hops actually moved vs. what the whole
    // fabric could move during the phase.
    if (timing.time_s > 0.0 && fabric_capacity > 0.0) {
        timing.bandwidth_utilization =
            timing.link_bytes / (fabric_capacity * timing.time_s);
    }
}

}  // namespace

PhaseTiming
ContentionModel::evaluate(std::span<const Flow> flows) const
{
    PhaseTiming timing;
    if (flows.empty())
        return timing;
    refresh();

    PhaseScratch &scratch = phaseScratch();
    scratch.prepare(topo_.linkCount());
    for (const Flow &flow : flows) {
        if (flow.bytes <= 0.0)
            continue;
        const std::vector<LinkId> &links = flow.route.links();
        kernels::depositLinks(scratch.loads.data(), scratch.stamp.data(),
                              scratch.epoch, links.data(),
                              static_cast<int>(links.size()), flow.bytes);
        timing.total_bytes += flow.bytes;
        timing.link_bytes += flow.bytes * flow.route.hops();
        timing.max_hops = std::max(timing.max_hops, flow.route.hops());
    }
    finishDrain(timing, scratch, link_bandwidth_.data(), topo_.linkCount(),
                hop_latency_s_, fabric_capacity_);
    return timing;
}

PhaseTiming
ContentionModel::evaluateSoaRound(const FlowSoa &soa, std::uint32_t begin,
                                  std::uint32_t end) const
{
    PhaseTiming timing;
    if (begin == end)
        return timing;

    PhaseScratch &scratch = phaseScratch();
    scratch.prepare(topo_.linkCount());
    for (std::uint32_t f = begin; f < end; ++f) {
        const double bytes = soa.bytes[f];
        if (bytes <= 0.0)
            continue;
        const std::uint32_t lb = soa.link_begin[f];
        const std::uint32_t le = soa.link_begin[f + 1];
        kernels::depositLinks(scratch.loads.data(), scratch.stamp.data(),
                              scratch.epoch, soa.links.data() + lb,
                              static_cast<int>(le - lb), bytes);
        timing.total_bytes += bytes;
        timing.link_bytes += bytes * soa.hops[f];
        timing.max_hops =
            std::max<int>(timing.max_hops, soa.hops[f]);
    }
    finishDrain(timing, scratch, link_bandwidth_.data(), topo_.linkCount(),
                hop_latency_s_, fabric_capacity_);
    return timing;
}

namespace {

/// Folds one phase's timing into a running sequence total.
void
accumulatePhase(PhaseTiming &total, const PhaseTiming &t,
                double fabric_capacity, double &busy_capacity_time)
{
    total.time_s += t.time_s;
    total.serial_time_s += t.serial_time_s;
    total.total_bytes += t.total_bytes;
    total.link_bytes += t.link_bytes;
    total.max_hops = std::max(total.max_hops, t.max_hops);
    if (t.bottleneck_bytes > total.bottleneck_bytes) {
        total.bottleneck_bytes = t.bottleneck_bytes;
        total.bottleneck_link = t.bottleneck_link;
    }
    busy_capacity_time += t.time_s * fabric_capacity;
}

}  // namespace

PhaseTiming
ContentionModel::evaluateSequence(const CommSchedule &schedule) const
{
    refresh();
    PhaseTiming total;
    double busy_capacity_time = 0.0;
    if (schedule.soaReady()) {
        const FlowSoa &soa = schedule.soa();
        for (int r = 0; r < schedule.roundCount(); ++r) {
            accumulatePhase(total,
                            evaluateSoaRound(soa, schedule.roundBegin(r),
                                             schedule.roundEnd(r)),
                            fabric_capacity_, busy_capacity_time);
        }
    } else {
        for (int r = 0; r < schedule.roundCount(); ++r) {
            accumulatePhase(total, evaluate(schedule.round(r)),
                            fabric_capacity_, busy_capacity_time);
        }
    }
    if (busy_capacity_time > 0.0)
        total.bandwidth_utilization = total.link_bytes / busy_capacity_time;
    return total;
}

PhaseTiming
ContentionModel::evaluateSequence(
    const std::vector<std::vector<Flow>> &phases) const
{
    refresh();
    PhaseTiming total;
    double busy_capacity_time = 0.0;
    for (const auto &phase : phases) {
        accumulatePhase(total, evaluate(phase), fabric_capacity_,
                        busy_capacity_time);
    }
    if (busy_capacity_time > 0.0)
        total.bandwidth_utilization = total.link_bytes / busy_capacity_time;
    return total;
}

double
ContentionModel::flowTime(const Flow &flow) const
{
    if (flow.bytes <= 0.0 || flow.route.empty())
        return 0.0;
    refresh();
    double min_bw = link_bandwidth_[flow.route.links().front()];
    for (LinkId link : flow.route.links())
        min_bw = std::min(min_bw, link_bandwidth_[link]);
    if (min_bw <= 0.0)
        panic("ContentionModel::flowTime: dead link on route");
    return flow.bytes / min_bw + flow.route.hops() * hop_latency_s_;
}

}  // namespace temp::net
